package jord_test

import (
	"errors"
	"testing"

	"jord"
)

// TestPublicAPIQuickstart exercises the README quick-start path through
// the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	helper := sys.MustRegister("helper", func(c *jord.Ctx) error {
		c.ExecNS(300)
		return nil
	})
	greet := sys.MustRegister("greet", func(c *jord.Ctx) error {
		c.ExecNS(500)
		buf, err := c.Mmap(4096, jord.PermRW)
		if err != nil {
			return err
		}
		defer c.Munmap(buf)
		ck, err := c.Async(helper, 2)
		if err != nil {
			return err
		}
		if err := c.Call(helper, 2); err != nil {
			return err
		}
		return c.Wait(ck)
	})

	req := sys.RunOnce(greet, 8)
	if req == nil || req.Trace.Exec == 0 {
		t.Fatal("request did not run")
	}
	if req.Trace.Isolation == 0 {
		t.Fatal("no isolation charged under the default (isolated) variant")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if got := jord.WorkloadNames(); len(got) != 4 {
		t.Fatalf("workloads = %v", got)
	}
	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := jord.BuildWorkload("hipster", sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.RunLoad(jord.LoadSpec{
		RPS: 500_000, Warmup: 50, Measure: 300,
		Root: w.Selector(),
	})
	if res.Completed != 300 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if _, err := jord.BuildWorkload("bogus", sys, 1); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestPublicAPIVariants(t *testing.T) {
	for _, variant := range []jord.Variant{
		jord.VariantPlainList, jord.VariantNoIsolation, jord.VariantBTree,
	} {
		cfg := jord.DefaultConfig()
		cfg.Variant = variant
		sys, err := jord.NewSystem(cfg)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		fn := sys.MustRegister("f", func(c *jord.Ctx) error { c.ExecNS(100); return nil })
		if r := sys.RunOnce(fn, 2); r == nil {
			t.Fatalf("%v: no completion", variant)
		}
		sys.Close()
	}
}

func TestPublicAPIFaults(t *testing.T) {
	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var probeErr error
	fn := sys.MustRegister("forger", func(c *jord.Ctx) error {
		probeErr = c.Load(0xdead0000)
		return nil
	})
	sys.RunOnce(fn, 1)
	var f *jord.Fault
	if !errors.As(probeErr, &f) {
		t.Fatalf("forged load: %v, want *jord.Fault", probeErr)
	}
}

func TestMachinePresets(t *testing.T) {
	for _, cfg := range []jord.MachineConfig{
		jord.MachineQFlex32(), jord.MachineFPGA2(),
		jord.MachineScale(64), jord.MachineDualSocket256(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}
