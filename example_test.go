package jord_test

import (
	"fmt"

	"jord"
)

// Example shows the Listing 1 programming model end to end: registering
// functions, invoking them with zero-copy ArgBufs, and the isolation a
// protection domain provides.
func Example() {
	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	var leakedHeap uint64
	tgt := sys.MustRegister("Tgt", func(c *jord.Ctx) error {
		leakedHeap = c.HeapVA() // leak our private heap's address
		c.ExecNS(400)
		return nil
	})
	src := sys.MustRegister("Src", func(c *jord.Ctx) error {
		// Synchronous nested invocation with a 2-cache-block ArgBuf.
		if err := c.Call(tgt, 2); err != nil {
			return err
		}
		// The callee is gone; forging its heap address must fault.
		if err := c.Load(leakedHeap); err != nil {
			fmt.Println("forged access:", err != nil)
		}
		// Our own allocations work.
		buf, err := c.Mmap(4096, jord.PermRW)
		if err != nil {
			return err
		}
		fmt.Println("own mmap ok:", buf != 0)
		return c.Munmap(buf)
	})

	req := sys.RunOnce(src, 8)
	fmt.Println("completed:", req != nil && req.Trace.Exec > 0)
	// Output:
	// forged access: true
	// own mmap ok: true
	// completed: true
}

// ExampleNewCluster runs a two-server deployment: the front-end spreads
// external requests, and saturated servers forward nested work to peers
// over the network (§3.3).
func ExampleNewCluster() {
	cfg := jord.DefaultClusterConfig()
	cfg.Servers = 2
	cluster, err := jord.NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	fn, err := cluster.RegisterAll("work", func(c *jord.Ctx) error {
		c.ExecNS(1000)
		return nil
	})
	if err != nil {
		panic(err)
	}
	res := cluster.RunLoad(jord.LoadSpec{
		RPS: 1_000_000, Warmup: 50, Measure: 500,
		Root: func() (jord.FuncID, int) { return fn, 8 },
	})
	fmt.Println("completed:", res.Completed)
	fmt.Println("both servers used:",
		cluster.Servers[0].Res.Completed > 0 && cluster.Servers[1].Res.Completed > 0)
	// Output:
	// completed: 500
	// both servers used: true
}
