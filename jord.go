// Package jord is the public API of the Jord reproduction: a
// single-address-space Function-as-a-Service runtime with hardware/
// software co-designed in-process memory isolation (Li et al.,
// "Single-Address-Space FaaS with Jord", ISCA 2025), built on a
// deterministic full-system simulation substrate.
//
// # Quick start
//
//	cfg := jord.DefaultConfig()
//	sys, err := jord.NewSystem(cfg)
//	...
//	hello := sys.MustRegister("hello", func(c *jord.Ctx) error {
//	    c.ExecNS(500)          // 500 ns of compute
//	    return nil
//	})
//	req := sys.RunOnce(hello, 4) // invoke with a 4-cache-block ArgBuf
//
// Functions run inside isolated protection domains: they can allocate
// VMAs (Ctx.Mmap), invoke other functions synchronously (Ctx.Call) or
// asynchronously (Ctx.Async/Ctx.Wait) with zero-copy ArgBuf handoff, and
// any access outside their domain faults (Ctx.Load/Ctx.Store).
//
// # Systems under study
//
// Config selects the paper's comparison systems: baseline Jord
// (VariantPlainList), the insecure no-isolation upper bound JordNI
// (VariantNoIsolation), the B-tree VMA table JordBT (VariantBTree), and
// the enhanced NightCore baseline (Config.NightCore).
//
// # Experiments
//
// The experiments subpackage (driven by cmd/jordsim) regenerates every
// table and figure of the paper's evaluation; see DESIGN.md and
// EXPERIMENTS.md at the repository root.
//
// # Live serving
//
// NewServer builds a live worker daemon (cmd/jordd) that runs the same
// runtime architecture on real goroutines behind an HTTP gateway —
// POST /invoke/{fn}, GET /healthz, GET /statsz — with functions written
// against LiveCtx instead of Ctx. The live runtime owns every request's
// lifecycle: deadlines and caller abandonment propagate to nested calls
// (observable in-body via LiveCtx.Err/Done), children a body never
// Waits on are reaped at its teardown, and draining leaks nothing even
// under panicking or stuck functions.
package jord

import (
	"jord/internal/core"
	"jord/internal/mem/vmatable"
	"jord/internal/privlib"
	"jord/internal/server"
	"jord/internal/server/router"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
	"jord/internal/workloads"
)

// Core runtime types.
type (
	// System is one Jord worker server: machine model, PrivLib,
	// orchestrators, executors, and a function registry.
	System = core.System
	// Config assembles a worker server.
	Config = core.Config
	// Ctx is the programming interface visible to a function body.
	Ctx = core.Ctx
	// FuncID names a registered function.
	FuncID = core.FuncID
	// Cookie identifies an asynchronous invocation.
	Cookie = core.Cookie
	// LoadSpec configures an open-loop load run.
	LoadSpec = core.LoadSpec
	// Results aggregates a run's measurements.
	Results = core.Results
	// Breakdown is a per-invocation mean service-time breakdown.
	Breakdown = core.Breakdown
	// RootSelector picks root functions for the load generator.
	RootSelector = core.RootSelector
	// Request is one function invocation request.
	Request = core.Request
)

// Memory / isolation types.
type (
	// Perm is a VMA permission mask.
	Perm = vmatable.Perm
	// PDID identifies a protection domain.
	PDID = vmatable.PDID
	// Fault is the hardware fault raised on an isolation violation.
	Fault = privlib.Fault
	// Variant selects the isolation implementation under study.
	Variant = privlib.Variant
	// MachineConfig describes the simulated machine (Table 2).
	MachineConfig = topo.Config
	// VLBConfig sizes the per-core I/D-VLBs.
	VLBConfig = vlb.Config
	// Workload is one of the paper's four applications deployed on a
	// system.
	Workload = workloads.Workload
)

// Permissions.
const (
	PermNone = vmatable.PermNone
	PermR    = vmatable.PermR
	PermW    = vmatable.PermW
	PermX    = vmatable.PermX
	PermRW   = vmatable.PermRW
	PermRX   = vmatable.PermRX
	PermRWX  = vmatable.PermRWX
)

// System variants (paper §5, plus the §2.2 MPK comparison point).
const (
	VariantPlainList   = privlib.PlainList
	VariantNoIsolation = privlib.NoIsolation
	VariantBTree       = privlib.BTree
	VariantMPK         = privlib.MPK
)

// DispatchPolicy selects the orchestrator's load balancer.
type DispatchPolicy = core.DispatchPolicy

// Dispatch policies (§3.3 uses JBSQ; the rest support the ablation).
const (
	DispatchJBSQ       = core.DispatchJBSQ
	DispatchJSQ        = core.DispatchJSQ
	DispatchRoundRobin = core.DispatchRoundRobin
	DispatchRandom     = core.DispatchRandom
)

// NewSystem builds and boots a worker server.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// DefaultConfig is the paper's 32-core evaluation setup (Table 2).
func DefaultConfig() Config { return core.DefaultConfig() }

// Multi-server deployment (§3.3's network path for internal requests).
type (
	// Cluster is a set of worker servers behind a front-end load
	// balancer, sharing one virtual timeline; saturated servers forward
	// nested requests to their peers over the network.
	Cluster = core.Cluster
	// ClusterConfig assembles a cluster.
	ClusterConfig = core.ClusterConfig
)

// NewCluster boots a multi-server deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.NewCluster(cfg) }

// DefaultClusterConfig is a 4-server cluster of 32-core machines.
func DefaultClusterConfig() ClusterConfig { return core.DefaultClusterConfig() }

// Machine presets.
var (
	// MachineQFlex32 is the paper's primary 32-core machine.
	MachineQFlex32 = topo.QFlex32
	// MachineFPGA2 models the two-core OpenXiangShan FPGA prototype.
	MachineFPGA2 = topo.FPGA2
	// MachineScale returns the 16-256 core scaling configurations.
	MachineScale = topo.Scale
	// MachineDualSocket256 is the 2x128-core system of §6.3.
	MachineDualSocket256 = topo.DualSocket256
)

// Live serving (cmd/jordd). Where System runs Jord's runtime architecture
// on the deterministic simulator to reproduce the paper's numbers, Server
// runs the same architecture — JBSQ orchestrators, suspendable executor
// continuations, internal/external queues, pmove/pcopy ArgBuf transfer —
// on real goroutines behind an HTTP gateway to serve real traffic.
type (
	// Server is one live Jord worker daemon.
	Server = server.Daemon
	// ServerConfig assembles a live daemon (gateway + pool sizing).
	ServerConfig = server.Config
	// LiveCtx is the programming interface visible to a live function
	// body (the live analogue of Ctx).
	LiveCtx = router.Ctx
	// LiveFunc is a live function body.
	LiveFunc = router.Body
	// LiveCookie identifies an asynchronous live invocation.
	LiveCookie = router.Cookie
	// StateScope selects the shared-state tier (function-local or
	// node-global) a key lives in.
	StateScope = router.StateScope
	// StateSnap is a zero-copy read snapshot of a shared-state value
	// (LiveCtx.StateGet): a pcopy R grant, or zero permission traffic for
	// globally promoted hot keys.
	StateSnap = router.StateSnap
	// StateTx is exclusive write ownership of a shared-state value
	// (LiveCtx.StateTake): the value's VMA pmoved RW into the invocation's
	// domain until Commit or Discard.
	StateTx = router.StateTx
)

// Shared-state tiers.
const (
	// StateLocal keys are private to the calling function's namespace.
	StateLocal = router.StateLocal
	// StateGlobal keys are shared across every function on the worker.
	StateGlobal = router.StateGlobal
)

// NewServer builds a live worker daemon. Register functions on it, then
// ListenAndServe:
//
//	d := jord.NewServer(jord.DefaultServerConfig())
//	d.MustRegister("echo", func(ctx jord.LiveCtx) ([]byte, error) {
//	    return ctx.Payload(), nil
//	})
//	log.Fatal(d.ListenAndServe())
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// DefaultServerConfig returns the default live daemon setup.
func DefaultServerConfig() ServerConfig { return server.DefaultConfig() }

// BuildWorkload deploys one of the paper's workloads ("hipster", "hotel",
// "media", "social") onto a system.
func BuildWorkload(name string, sys *System, seed uint64) (*Workload, error) {
	return workloads.Build(name, sys, seed)
}

// WorkloadNames lists the available workloads.
func WorkloadNames() []string { return workloads.Names() }
