// Command jordd is the live Jord worker daemon: the paper's runtime
// architecture — JBSQ orchestrators, suspendable executor continuations,
// internal/external queues, pmove/pcopy ArgBuf ownership transfer —
// running on real goroutines behind an HTTP gateway.
//
// Usage:
//
//	jordd [-addr :8034] [-executors N] [-orchestrators N] [-jbsq 4]
//	      [-queue-cap 256] [-num-pds 4096] [-max-inflight N]
//	      [-admit-target 5ms] [-admit-interval 100ms] [-shed-margin 0]
//	      [-breaker-window 10s] [-breaker-cooldown 2s] [-breaker-ratio 0.5]
//	      [-state-cap 67108864] [-state-global-ro-threshold 64]
//	      [-timeout 30s] [-exec-timeout 0] [-drain-timeout 30s]
//	      [-max-body 1048576] [-dedup-cache 4096] [-edge] [-pprof addr]
//
// Endpoints:
//
//	POST /invoke/{fn}  run a function; the body is its ArgBuf payload
//	GET  /healthz      200 while serving, 503 while draining
//	GET  /readyz       overload view: drain vs degraded vs open breakers
//	GET  /statsz       live JSON counters and latency percentiles
//	GET  /varz         runtime internals: pool config, PD supply, queues
//	GET  /tracez       per-invocation stage traces (slowest, errored, recent)
//	GET  /flightz      flight-recorder incidents frozen at overload events
//	GET  /metrics      the same counters in Prometheus text format
//
// Overload control (see README "Overload control & degraded modes"): the
// admission cap is steered adaptively by queue delay (-admit-target, 0 to
// pin the static cap), each function gets a circuit breaker
// (-breaker-window 0 to disable), and external requests are shed with 503
// while the free-PD supply nears the internal reserve (-shed-margin, -1
// to disable). Every 429/503 carries Retry-After.
//
// With -pprof addr, net/http/pprof is served on a separate listener (keep
// it off the public address), e.g. `-pprof localhost:6060` then
// `go tool pprof http://localhost:6060/debug/pprof/profile`.
//
// Shared state (see README "Stateful serverless"): functions share a
// two-tier KV whose values live in VMAs behind the permission model.
// -state-cap bounds its committed bytes (0 disables the tier entirely);
// -state-global-ro-threshold is the read count at which a hot key promotes
// to a global-RO mapping (the VTE G bit; 0 disables promotion). /statsz
// and /varz carry the store's counters under "state".
//
// Built-in functions (a demo function set exercising the runtime,
// including nested calls): echo, upper, hash, sleep, fanout, chain — plus,
// while shared state is enabled, the stateful social-network set
// social.follow / social.post / social.timeline / social.read /
// social.profile (drive it with jordload -mix social).
// SIGINT/SIGTERM drains gracefully: health goes 503, in-flight requests
// finish (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jord"
	"jord/internal/cliutil"
	"jord/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jordd: ")

	var (
		addr          = flag.String("addr", ":8034", "HTTP listen address")
		executors     = cliutil.NewNonNegInt(0)
		orchestrators = cliutil.NewNonNegInt(0)
		jbsq          = cliutil.NewNonNegInt(0)
		queueCap      = cliutil.NewNonNegInt(0)
		numPDs        = cliutil.NewNonNegInt(0)
		maxInflight   = cliutil.NewNonNegInt(0)
		admitTarget   = flag.Duration("admit-target", 5*time.Millisecond, "adaptive admission queue-delay SLO (0 = static cap only)")
		admitInterval = flag.Duration("admit-interval", 100*time.Millisecond, "adaptive admission AIMD window")
		shedMargin    = flag.Int("shed-margin", 0, "shed externals while free PDs <= reserve+margin (0 = auto, -1 = off)")
		brkWindow     = flag.Duration("breaker-window", 10*time.Second, "per-function circuit-breaker failure window (0 = breakers off)")
		brkCooldown   = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before the half-open probe")
		brkRatio      = flag.Float64("breaker-ratio", 0.5, "windowed failure ratio that trips a breaker")
		stateCap      = cliutil.NewNonNegInt(64 << 20)
		stateRO       = cliutil.NewNonNegInt(64)
		timeout       = flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
		execTimeout   = flag.Duration("exec-timeout", 0, "watchdog threshold for stuck invocations (0 = off)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
		maxBody       = flag.Int64("max-body", 1<<20, "max /invoke payload bytes")
		dedupCache    = flag.Int("dedup-cache", 4096, "idempotent-replay cache entries for X-Jord-Idempotency-Key (0 = off)")
		edge          = flag.Bool("edge", false, "serve through the zero-allocation HTTP edge instead of net/http")
		pprofAddr     = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	)
	flag.Var(executors, "executors", "executor goroutines (0 = GOMAXPROCS)")
	flag.Var(orchestrators, "orchestrators", "orchestrator goroutines (0 = executors/8)")
	flag.Var(jbsq, "jbsq", "JBSQ(k) per-executor queue bound (0 = 4)")
	flag.Var(queueCap, "queue-cap", "external queue capacity per orchestrator (0 = 256)")
	flag.Var(numPDs, "num-pds", "protection-domain space size (0 = 4096)")
	flag.Var(maxInflight, "max-inflight", "admission cap on concurrent requests (0 = auto)")
	flag.Var(stateCap, "state-cap", "shared-state tier byte cap (0 = disable the tier)")
	flag.Var(stateRO, "state-global-ro-threshold", "reads before a hot state key promotes to global-RO (0 = never promote)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jordd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	cfg := jord.DefaultServerConfig()
	cfg.Addr = *addr
	cfg.Pool.Executors = executors.Value()
	cfg.Pool.Orchestrators = orchestrators.Value()
	cfg.Pool.JBSQBound = jbsq.Value()
	cfg.Pool.ExternalQueueCap = queueCap.Value()
	cfg.Pool.NumPDs = numPDs.Value()
	// The watchdog flags (never kills — cancellation is cooperative)
	// invocations alive past the threshold, on /statsz and /varz counters.
	cfg.Pool.ExecTimeout = *execTimeout
	cfg.Pool.PDShedMargin = *shedMargin
	cfg.MaxInflight = maxInflight.Value()
	// 0 on the CLI means "off"; the server layer reads < 0 as off and 0 as
	// its own default, so translate.
	cfg.AdmitTarget = *admitTarget
	if *admitTarget == 0 {
		cfg.AdmitTarget = -1
	}
	cfg.AdmitInterval = *admitInterval
	cfg.BreakerWindow = *brkWindow
	if *brkWindow == 0 {
		cfg.BreakerWindow = -1
	}
	cfg.BreakerCooldown = *brkCooldown
	cfg.BreakerRatio = *brkRatio
	cfg.RequestTimeout = *timeout
	if *timeout == 0 {
		cfg.RequestTimeout = -1 // explicit "none"
	}
	cfg.DrainTimeout = *drainTimeout
	cfg.MaxBodyBytes = *maxBody
	// Same translation for the replay cache: 0 on the CLI means "off".
	cfg.DedupCache = *dedupCache
	if *dedupCache == 0 {
		cfg.DedupCache = -1
	}
	cfg.Edge = *edge
	// Same 0-means-off translation for the state knobs: the server layer
	// reads < 0 as off and 0 as its own default.
	cfg.StateCap = int64(stateCap.Value())
	if stateCap.Value() == 0 {
		cfg.StateCap = -1
	}
	cfg.StatePromoteAfter = stateRO.Value()
	if stateRO.Value() == 0 {
		cfg.StatePromoteAfter = -1
	}

	d := jord.NewServer(cfg)
	registerBuiltins(d)
	if cfg.StateCap >= 0 {
		// The stateful social-network set rides on the shared-state tier, so
		// it only deploys while the tier exists.
		workloads.RegisterSocialLive(d.Reg)
	}

	if *pprofAddr != "" {
		// pprof rides a DEDICATED mux on its own listener: registering on
		// DefaultServeMux (the blank-import pattern) would hand /debug/pprof
		// to any other code that serves the default mux, and profiling must
		// never share a surface with /invoke.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, pmux); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		log.Fatal(err)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	// Serve returns the moment Shutdown begins (ErrServerClosed), so main
	// must wait for the drain itself to finish before exiting or it would
	// kill the very requests Shutdown is waiting on.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s := <-sigs
		log.Printf("caught %v, draining (up to %v)", s, cfg.DrainTimeout)
		if err := d.Shutdown(context.Background()); err != nil {
			log.Printf("drain: %v", err)
		}
	}()

	pc := cfg.Pool.Normalized()
	log.Printf("serving on %s: %d executors / %d orchestrators, JBSQ(%d), %d PDs",
		ln.Addr(), pc.Executors, pc.Orchestrators, pc.JBSQBound, pc.NumPDs)
	if err := d.Serve(ln); err != nil {
		log.Fatal(err)
	}
	<-drained
	log.Print("drained")
}

// registerBuiltins deploys the demo function set. fanout and chain make
// nested calls, exercising the internal-queue path (§3.3) over HTTP.
func registerBuiltins(d *jord.Server) {
	d.MustRegister("echo", func(ctx jord.LiveCtx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	d.MustRegister("upper", func(ctx jord.LiveCtx) ([]byte, error) {
		return []byte(strings.ToUpper(string(ctx.Payload()))), nil
	})
	d.MustRegister("hash", func(ctx jord.LiveCtx) ([]byte, error) {
		sum := sha256.Sum256(ctx.Payload())
		return []byte(hex.EncodeToString(sum[:])), nil
	})
	// sleep demonstrates cooperative cancellation: it selects on Done, so
	// an abandoned or expired request releases its executor slot and PD
	// immediately instead of sleeping on.
	d.MustRegister("sleep", func(ctx jord.LiveCtx) ([]byte, error) {
		dur, err := time.ParseDuration(strings.TrimSpace(string(ctx.Payload())))
		if err != nil {
			return nil, fmt.Errorf("payload must be a duration like 5ms: %w", err)
		}
		if dur < 0 || dur > time.Second {
			return nil, fmt.Errorf("duration %v out of range [0, 1s]", dur)
		}
		select {
		case <-time.After(dur):
			return []byte(fmt.Sprintf("slept %v", dur)), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	// fanout hashes every whitespace-separated word of the payload in
	// parallel nested invocations and returns one digest per line.
	d.MustRegister("fanout", func(ctx jord.LiveCtx) ([]byte, error) {
		words := strings.Fields(string(ctx.Payload()))
		cookies := make([]jord.LiveCookie, len(words))
		for i, w := range words {
			ck, err := ctx.Async("hash", []byte(w))
			if err != nil {
				return nil, err
			}
			cookies[i] = ck
		}
		var out strings.Builder
		for _, ck := range cookies {
			b, err := ctx.Wait(ck)
			if err != nil {
				return nil, err
			}
			out.Write(b)
			out.WriteByte('\n')
		}
		return []byte(out.String()), nil
	})
	// chain runs upper -> hash sequentially: a two-deep call chain.
	d.MustRegister("chain", func(ctx jord.LiveCtx) ([]byte, error) {
		up, err := ctx.Call("upper", ctx.Payload())
		if err != nil {
			return nil, err
		}
		return ctx.Call("hash", up)
	})
}
