// Command jorddispatch is the cluster front end: a JBSQ(k) dispatcher
// that spreads POST /invoke/{fn} across N jordd workers — the paper's
// join-bounded-shortest-queue orchestrator policy applied one level up,
// across worker processes instead of executor goroutines.
//
// Usage:
//
//	jorddispatch -workers 127.0.0.1:8041,127.0.0.1:8042 [-addr :8040]
//	             [-bound 0] [-health-interval 250ms] [-timeout 60s]
//	             [-max-body 1048576] [-no-idempotency] [-hedge]
//	             [-hedge-delay 50ms] [-chaos SPEC] [-chaos-seed 1]
//	             [-chaos-latency 100ms]
//
// Placement: each worker may hold at most k outstanding dispatcher
// requests (-bound; 0 auto-sizes k per worker from its /readyz to
// 4 x executors x jbsq, matching the worker's own admission cap). A new
// request joins the ready worker with the fewest outstanding. When every
// ready worker sits at its bound, the dispatcher answers 429 with
// Retry-After — it never buffers unboundedly.
//
// Health: each worker's /readyz is polled every -health-interval;
// workers that stop being ready (draining, degraded) are ejected from
// placement and re-admitted when they recover. Transport failures eject
// instantly and re-place the request on another worker. A 503 carrying
// the X-Jord-Draining marker re-places too — worker drain is a placement
// problem, not an answer. Plain 429/503s (saturation, degradation,
// breakers) forward to the client verbatim, Retry-After included.
//
// Endpoints:
//
//	POST /invoke/{fn}        dispatch a function invocation
//	GET  /healthz /readyz    dispatcher liveness / aggregated readiness
//	GET  /statsz /varz       placement counters + aggregated worker stats
//	GET  /metrics            Prometheus text
//	GET  /workers            per-worker placement state
//	POST /workers/add?addr=     admit a new worker
//	POST /workers/drain?addr=   stop placing on a worker (in-flight finish);
//	                            &resume=1 undoes it
//	POST /workers/remove?addr=  remove an idle worker (&force=1 overrides)
//
// Fault tolerance: every invocation carries an X-Jord-Idempotency-Key
// (client-supplied wins), so a connection that breaks AFTER the request
// reached a worker replays against that worker's dedup cache instead of
// double-executing or surfacing a 502 (-no-idempotency restores the old
// at-least-once/502 split). -hedge places a duplicate on a second worker
// when the first has not answered within the function's adaptive hedge
// delay (clamped p95 of recent latencies; -hedge-delay sets the
// cold-start value); the first response wins and the loser is canceled.
//
// Chaos: -chaos injects deterministic transport faults against the
// workers for resilience drills, e.g.
//
//	-chaos 'refused:0.05,reset-after-write:0.01' -chaos-seed 7
//	-chaos '127.0.0.1:8041=stall x1'
//
// Faults: refused, reset-before-write, reset-after-write, reset-mid-body,
// latency (delay = -chaos-latency), stall. Each clause is
// [worker=]fault[:probability][xCount]. Health polls are never faulted,
// so /readyz verdicts stay truthful while invokes suffer.
//
// Worker replacement without dropped requests: drain, poll /workers until
// outstanding hits 0, remove, add the replacement.
// SIGINT/SIGTERM drains the dispatcher itself: /readyz goes 503 so an
// upstream balancer stops routing here, in-flight forwards finish, then
// the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jord/internal/cluster"
	"jord/internal/cluster/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jorddispatch: ")

	var (
		addr     = flag.String("addr", ":8040", "HTTP listen address")
		workers  = flag.String("workers", "", "comma-separated jordd worker addresses (host:port), required")
		bound    = flag.Int("bound", 0, "JBSQ k: max outstanding requests per worker (0 = auto from each worker's /readyz)")
		interval = flag.Duration("health-interval", 250*time.Millisecond, "worker /readyz polling period")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request deadline across all placement attempts (0 = none)")
		maxBody  = flag.Int64("max-body", 1<<20, "max /invoke payload bytes (bodies are buffered for re-placement)")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
		noIdem   = flag.Bool("no-idempotency", false, "do not stamp X-Jord-Idempotency-Key on invocations (post-delivery failures become 502s instead of idempotent replays)")
		hedge    = flag.Bool("hedge", false, "hedge tail latency: duplicate slow requests on a second worker, first response wins")
		hedgeD   = flag.Duration("hedge-delay", 0, "cold-start hedge delay before per-function latency is learned (0 = 50ms)")
		chaosS   = flag.String("chaos", "", "fault-injection spec, comma-separated [worker=]fault[:p][xN] clauses (see package doc); empty = off")
		chaosSd  = flag.Int64("chaos-seed", 1, "deterministic seed for -chaos probability rolls")
		chaosLat = flag.Duration("chaos-latency", 100*time.Millisecond, "injected delay for -chaos latency faults")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jorddispatch: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	var list []string
	for _, tok := range strings.Split(*workers, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			list = append(list, tok)
		}
	}
	if len(list) == 0 {
		fmt.Fprintln(os.Stderr, "jorddispatch: -workers is required (comma-separated host:port list)")
		flag.Usage()
		os.Exit(2)
	}
	if *bound < 0 {
		fmt.Fprintln(os.Stderr, "jorddispatch: -bound must be non-negative")
		flag.Usage()
		os.Exit(2)
	}

	// 0 on the CLI means "no deadline"; the library reads < 0 as none and
	// 0 as its own default.
	rt := *timeout
	if rt == 0 {
		rt = -1
	}
	cfg := cluster.Config{
		Workers:            list,
		Bound:              *bound,
		HealthInterval:     *interval,
		RequestTimeout:     rt,
		MaxBodyBytes:       *maxBody,
		DisableIdempotency: *noIdem,
		Hedge:              *hedge,
		HedgeDelay:         *hedgeD,
	}
	if *chaosS != "" {
		rules, err := chaos.ParseSpec(*chaosS, *chaosLat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jorddispatch: %v\n", err)
			os.Exit(2)
		}
		cfg.Client = &http.Client{
			Transport: chaos.New(&http.Transport{
				MaxIdleConns:        4096,
				MaxIdleConnsPerHost: 1024,
				IdleConnTimeout:     90 * time.Second,
			}, *chaosSd, rules...),
		}
		log.Printf("CHAOS ON: injecting %q (seed %d) — invokes will fail on purpose", *chaosS, *chaosSd)
	}
	d := cluster.New(cfg)
	d.Start()

	srv := &http.Server{Handler: d.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s := <-sigs
		log.Printf("caught %v, draining (up to %v)", s, *drainT)
		d.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		d.Stop()
	}()

	log.Printf("dispatching on %s over %d workers: %s (bound %s, health every %v)",
		ln.Addr(), len(list), strings.Join(list, ", "), boundDesc(*bound), *interval)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-drained
	log.Print("drained")
}

func boundDesc(b int) string {
	if b == 0 {
		return "auto"
	}
	return fmt.Sprintf("%d", b)
}
