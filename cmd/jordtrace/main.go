// Command jordtrace walks one function invocation through the runtime and
// prints the Figure 4 flow with measured virtual-time costs: dispatch, PD
// initialization, execution, nested invocation, teardown — plus the
// PrivLib operation totals the request generated.
//
// Usage:
//
//	jordtrace [-nested 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"jord"
	"jord/internal/cliutil"
	"jord/internal/core"
	"jord/internal/privlib"
)

func main() {
	nested := cliutil.NewNonNegInt(2)
	flag.Var(nested, "nested", "number of nested invocations the traced function makes (>= 0)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jordtrace: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	child := sys.MustRegister("child", func(c *jord.Ctx) error {
		c.ExecNS(400)
		return nil
	})
	root := sys.MustRegister("traced", func(c *jord.Ctx) error {
		c.ExecNS(800)
		for i := 0; i < nested.Value(); i++ {
			if err := c.Call(child, 4); err != nil {
				return err
			}
		}
		c.ExecNS(300)
		return nil
	})

	tracer := &core.Tracer{Limit: 400}
	sys.SetTracer(tracer)
	req := sys.RunOnce(root, 8)
	if req == nil {
		log.Fatal("request did not complete")
	}

	freq := sys.M.Cfg.FreqGHz
	ns := func(c int64) float64 { return float64(c) / freq }

	fmt.Printf("one external request through the Figure 4 flow (%d nested calls)\n\n", nested.Value())
	fmt.Println("orchestrator:  enqueue -> JBSQ dispatch -> enqueue into executor")
	fmt.Printf("  dispatch           %8.0f ns\n", ns(int64(req.Trace.Dispatch)))
	fmt.Println("executor:      cget, mmap stack/heap, pcopy code, pmove ArgBuf, ccall")
	fmt.Printf("  isolation          %8.0f ns\n", ns(int64(req.Trace.Isolation)))
	fmt.Printf("  allocation         %8.0f ns\n", ns(int64(req.Trace.Alloc)))
	fmt.Println("function:      execute in PD, nested call/cexit/center cycles")
	fmt.Printf("  execution          %8.0f ns\n", ns(int64(req.Trace.Exec)))
	fmt.Printf("  communication      %8.0f ns  (zero-copy ArgBuf + notifications)\n", ns(int64(req.Trace.Comm)))

	fmt.Println("\nPrivLib operations issued on behalf of this run:")
	fmt.Printf("  %-10s %8s %12s\n", "op", "count", "avg ns")
	for op := privlib.Op(0); op < privlib.NumOps; op++ {
		st := sys.Lib.Stats.Ops[op]
		if st.Count == 0 {
			continue
		}
		fmt.Printf("  %-10s %8d %12.1f\n", op, st.Count, ns(int64(st.Cycles))/float64(st.Count))
	}
	if sys.Lib.Stats.ShootdownCount > 0 {
		fmt.Printf("  VLB shootdowns with remote sharers: %d (avg %.1f ns)\n",
			sys.Lib.Stats.ShootdownCount,
			ns(int64(sys.Lib.Stats.ShootdownCycles))/float64(sys.Lib.Stats.ShootdownCount))
	}

	fmt.Println("\nevent timeline:")
	fmt.Print(tracer.Render(freq))
}
