// Command jordtrace walks one function invocation through the runtime and
// prints the Figure 4 flow with measured virtual-time costs: dispatch, PD
// initialization, execution, nested invocation, teardown — plus the
// PrivLib operation totals the request generated.
//
// Usage:
//
//	jordtrace [-nested 2]
//	jordtrace -live host:port [-fn name]
//
// With -live, instead of simulating, jordtrace pulls a REAL trace from a
// running jordd's /tracez (its slowest retained invocation, optionally
// filtered to one function) and renders the same Figure 4 flow from the
// measured wall-clock stage stamps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"jord"
	"jord/internal/cliutil"
	"jord/internal/core"
	"jord/internal/privlib"
)

func main() {
	nested := cliutil.NewNonNegInt(2)
	live := flag.String("live", "", "render a real trace pulled from this jordd host:port instead of simulating")
	liveFn := flag.String("fn", "", "with -live: restrict to one function")
	flag.Var(nested, "nested", "number of nested invocations the traced function makes (>= 0)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jordtrace: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	if *live != "" {
		if err := renderLive(*live, *liveFn); err != nil {
			log.Fatal(err)
		}
		return
	}

	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	child := sys.MustRegister("child", func(c *jord.Ctx) error {
		c.ExecNS(400)
		return nil
	})
	root := sys.MustRegister("traced", func(c *jord.Ctx) error {
		c.ExecNS(800)
		for i := 0; i < nested.Value(); i++ {
			if err := c.Call(child, 4); err != nil {
				return err
			}
		}
		c.ExecNS(300)
		return nil
	})

	tracer := &core.Tracer{Limit: 400}
	sys.SetTracer(tracer)
	req := sys.RunOnce(root, 8)
	if req == nil {
		log.Fatal("request did not complete")
	}

	freq := sys.M.Cfg.FreqGHz
	ns := func(c int64) float64 { return float64(c) / freq }

	fmt.Printf("one external request through the Figure 4 flow (%d nested calls)\n\n", nested.Value())
	fmt.Println("orchestrator:  enqueue -> JBSQ dispatch -> enqueue into executor")
	fmt.Printf("  dispatch           %8.0f ns\n", ns(int64(req.Trace.Dispatch)))
	fmt.Println("executor:      cget, mmap stack/heap, pcopy code, pmove ArgBuf, ccall")
	fmt.Printf("  isolation          %8.0f ns\n", ns(int64(req.Trace.Isolation)))
	fmt.Printf("  allocation         %8.0f ns\n", ns(int64(req.Trace.Alloc)))
	fmt.Println("function:      execute in PD, nested call/cexit/center cycles")
	fmt.Printf("  execution          %8.0f ns\n", ns(int64(req.Trace.Exec)))
	fmt.Printf("  communication      %8.0f ns  (zero-copy ArgBuf + notifications)\n", ns(int64(req.Trace.Comm)))

	fmt.Println("\nPrivLib operations issued on behalf of this run:")
	fmt.Printf("  %-10s %8s %12s\n", "op", "count", "avg ns")
	for op := privlib.Op(0); op < privlib.NumOps; op++ {
		st := sys.Lib.Stats.Ops[op]
		if st.Count == 0 {
			continue
		}
		fmt.Printf("  %-10s %8d %12.1f\n", op, st.Count, ns(int64(st.Cycles))/float64(st.Count))
	}
	if sys.Lib.Stats.ShootdownCount > 0 {
		fmt.Printf("  VLB shootdowns with remote sharers: %d (avg %.1f ns)\n",
			sys.Lib.Stats.ShootdownCount,
			ns(int64(sys.Lib.Stats.ShootdownCycles))/float64(sys.Lib.Stats.ShootdownCount))
	}

	fmt.Println("\nevent timeline:")
	fmt.Print(tracer.Render(freq))
}

// liveSpan mirrors the /tracez span wire form (see gateway /tracez).
type liveSpan struct {
	ID       uint64           `json:"id"`
	ParentID uint64           `json:"parent_id"`
	Func     string           `json:"func"`
	External bool             `json:"external"`
	Outcome  string           `json:"outcome"`
	Watchdog bool             `json:"watchdog"`
	DurNS    int64            `json:"dur_ns"`
	Children int32            `json:"children"`
	StateOps int32            `json:"state_ops"`
	Stages   map[string]int64 `json:"stages"`
	OtherNS  int64            `json:"other_ns"`
}

// renderLive pulls /tracez from a running jordd and renders its slowest
// retained invocation (optionally one function's) in the Figure 4 flow —
// the live twin of the simulated rendering, with wall-clock nanoseconds in
// place of virtual cycles.
func renderLive(addr, fn string) error {
	url := fmt.Sprintf("http://%s/tracez", addr)
	if fn != "" {
		url += "?fn=" + fn
	}
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("fetching /tracez: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching /tracez: %s", resp.Status)
	}
	var doc struct {
		Slow []struct {
			Func  string     `json:"func"`
			Spans []liveSpan `json:"spans"`
		} `json:"slow"`
		Recent []liveSpan `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decoding /tracez: %w", err)
	}

	// Pick the slowest retained external span; fall back to the most recent.
	var pick *liveSpan
	for i := range doc.Slow {
		for j := range doc.Slow[i].Spans {
			s := &doc.Slow[i].Spans[j]
			if s.External && (pick == nil || s.DurNS > pick.DurNS) {
				pick = s
			}
		}
	}
	if pick == nil {
		for i := range doc.Recent {
			s := &doc.Recent[i]
			if s.External && (pick == nil || s.DurNS > pick.DurNS) {
				pick = s
			}
		}
	}
	if pick == nil {
		return fmt.Errorf("no traced invocations retained yet — send some traffic first")
	}

	st := func(name string) int64 { return pick.Stages[name] }
	fmt.Printf("one live request through the Figure 4 flow: %s (%s, %.3f ms total",
		pick.Func, pick.Outcome, float64(pick.DurNS)/1e6)
	if pick.Children > 0 {
		fmt.Printf(", %d nested calls", pick.Children)
	}
	if pick.Watchdog {
		fmt.Print(", watchdog-flagged")
	}
	fmt.Print(")\n\n")
	row := func(label string, ns int64, note string) {
		if ns <= 0 {
			return
		}
		if note != "" {
			note = "  (" + note + ")"
		}
		fmt.Printf("  %-14s %10.0f ns%s\n", label, float64(ns), note)
	}
	fmt.Println("gateway:       parse request line, headers, body off the socket")
	row("parse", st("parse"), "")
	fmt.Println("admission:     breaker verdict + admission gate")
	row("admit", st("admit"), "")
	fmt.Println("orchestrator:  enqueue -> JBSQ dispatch -> enqueue into executor")
	row("queue", st("queue"), "")
	fmt.Println("executor:      cget PD, map stack/heap, pmove ArgBuf")
	row("init", st("init"), "")
	fmt.Println("function:      execute in PD, nested call cexit/center cycles")
	row("exec", st("exec"), "")
	row("wait", st("wait"), "suspended on nested calls")
	if n := st("state"); n > 0 {
		row("state", n, fmt.Sprintf("%d shared-state ops, inside exec", pick.StateOps))
	}
	fmt.Println("teardown:      write back output, release ArgBuf, cput PD")
	row("teardown", st("teardown"), "")
	fmt.Println("response:      writev head + VMA-backed body to the socket")
	row("resp", st("resp"), "")
	if pick.OtherNS > 0 {
		row("other", pick.OtherNS, "unattributed")
	}
	return nil
}
