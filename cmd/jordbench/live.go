package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"jord/internal/metrics"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// liveScenario is one measured workload against the in-process live pool.
type liveScenario struct {
	name string
	fn   string // root function to invoke
	desc string
}

// liveResult is one scenario's row in BENCH_live.json.
type liveResult struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Requests    int    `json:"requests"`
	Workers     int    `json:"workers"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	P999Us        float64 `json:"p999_us"`
	MeanUs        float64 `json:"mean_us"`

	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// liveReport is the whole BENCH_live.json document.
type liveReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Executors     int `json:"executors"`
	Orchestrators int `json:"orchestrators"`
	JBSQBound     int `json:"jbsq_bound"`
	NumPDs        int `json:"num_pds"`

	Scenarios []liveResult `json:"scenarios"`
}

// runLive benchmarks the live serving path in-process — no HTTP, no
// network — and writes BENCH_live.json. The scenarios mirror the Go
// benchmarks in internal/server/pool (BenchmarkInvoke, BenchmarkNestedCall)
// but measure end-to-end throughput, latency percentiles, and whole-process
// allocation cost under sustained concurrent load, which per-op Go
// benchmarks cannot see.
func runLive(out string, requests, workers int) {
	reg := router.New()
	reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	reg.MustRegister("chain", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Call("leaf", ctx.Payload())
	})
	reg.MustRegister("fanout2", func(ctx router.Ctx) ([]byte, error) {
		ck1, err := ctx.Async("leaf", ctx.Payload())
		if err != nil {
			return nil, err
		}
		ck2, err := ctx.Async("leaf", ctx.Payload())
		if err != nil {
			return nil, err
		}
		if _, err := ctx.Wait(ck1); err != nil {
			return nil, err
		}
		return ctx.Wait(ck2)
	})

	cfg := pool.Config{JBSQBound: 4}
	p := pool.New(cfg, reg)
	p.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := p.Drain(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
	}()
	eff := p.Config()

	report := liveReport{
		GeneratedBy:   "jordbench -live",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Executors:     eff.Executors,
		Orchestrators: eff.Orchestrators,
		JBSQBound:     eff.JBSQBound,
		NumPDs:        eff.NumPDs,
	}

	scenarios := []liveScenario{
		{name: "echo", fn: "echo", desc: "external invocation, no nesting (cget/pmove/run/pmove/cput)"},
		{name: "nested_chain", fn: "chain", desc: "root -> leaf synchronous call: one suspend/resume per request"},
		{name: "fanout2", fn: "fanout2", desc: "root with two async children waited in turn"},
	}
	payload := []byte("jordbench-live-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")

	for _, sc := range scenarios {
		res, err := runLiveScenario(p, sc, payload, requests, workers)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		log.Printf("%-12s %9.0f req/s  p50 %6.1fus  p99 %6.1fus  %6.2f allocs/op",
			sc.name, res.ThroughputRPS, res.P50Us, res.P99Us, res.AllocsPerOp)
		report.Scenarios = append(report.Scenarios, res)
	}

	if tab := p.Table(); tab.LivePDs() != 0 || tab.Faults() != 0 {
		log.Fatalf("pool not clean after load: live_pds=%d faults=%d", tab.LivePDs(), tab.Faults())
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}

func runLiveScenario(p *pool.Pool, sc liveScenario, payload []byte, requests, workers int) (liveResult, error) {
	ctx := context.Background()

	// Warm up: fills the PD caches, spins up parked runners, and populates
	// the request/continuation recycle pools so the measured window sees
	// steady state.
	warm := requests / 10
	if warm > 2000 {
		warm = 2000
	}
	for i := 0; i < warm; i++ {
		if _, err := p.Invoke(ctx, sc.fn, payload); err != nil {
			return liveResult{}, fmt.Errorf("warmup: %w", err)
		}
	}

	var (
		hist    metrics.ShardedHistogram
		errCh   = make(chan error, workers)
		perWork = requests / workers
	)
	hist.SetShards(workers)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWork; i++ {
				t0 := time.Now()
				if _, err := p.Invoke(ctx, sc.fn, payload); err != nil {
					errCh <- err
					return
				}
				hist.RecordShard(w, time.Since(t0).Nanoseconds())
			}
			errCh <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			return liveResult{}, err
		}
	}
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	n := perWork * workers
	snap := hist.Snapshot()
	return liveResult{
		Name:          sc.name,
		Description:   sc.desc,
		Requests:      n,
		Workers:       workers,
		ThroughputRPS: float64(n) / elapsed.Seconds(),
		P50Us:         float64(snap.P50) / 1e3,
		P99Us:         float64(snap.P99) / 1e3,
		P999Us:        float64(snap.P999) / 1e3,
		MeanUs:        snap.Mean / 1e3,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}
