package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"jord/internal/metrics"
	"jord/internal/server/admission"
	"jord/internal/server/gateway"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// liveScenario is one measured workload against the in-process live pool.
type liveScenario struct {
	name string
	fn   string // root function to invoke
	desc string
}

// liveResult is one scenario's row in BENCH_live.json.
type liveResult struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Requests    int    `json:"requests"`
	Workers     int    `json:"workers"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	P999Us        float64 `json:"p999_us"`
	MeanUs        float64 `json:"mean_us"`

	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// scalingPoint is one row of the multicore scaling curve: the echo
// workload against a pool sized for N cores with GOMAXPROCS pinned to N.
type scalingPoint struct {
	Cores         int `json:"cores"`
	Executors     int `json:"executors"`
	Orchestrators int `json:"orchestrators"`

	// EffectiveCores is min(Cores, NumCPU): the parallelism the machine
	// can actually grant this point. Efficiency is normalized by it, so a
	// 32-core sweep on a 4-core box reports the truth instead of a
	// fabricated 8-way speedup.
	EffectiveCores int `json:"effective_cores"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P99Us         float64 `json:"p99_us"`
	Speedup       float64 `json:"speedup"`    // vs the first (1-core) point
	Efficiency    float64 `json:"efficiency"` // Speedup / EffectiveCores
}

// traceOverhead is the tracing cost measurement: the echo scenario with
// the always-on trace plane vs with it disabled (Config.NoTrace), in
// paired alternating rounds. OverheadPct is the median of the per-round
// traced/untraced ratios.
type traceOverhead struct {
	TracedNSOp   float64 `json:"traced_ns_per_op"`
	UntracedNSOp float64 `json:"untraced_ns_per_op"`
	OverheadPct  float64 `json:"overhead_pct"`
	Rounds       int     `json:"rounds"`
}

// liveReport is the whole BENCH_live.json document.
type liveReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`

	Executors     int `json:"executors"`
	Orchestrators int `json:"orchestrators"`
	JBSQBound     int `json:"jbsq_bound"`
	NumPDs        int `json:"num_pds"`

	Scenarios     []liveResult   `json:"scenarios"`
	TraceOverhead *traceOverhead `json:"trace_overhead,omitempty"`
	Scaling       []scalingPoint `json:"scaling,omitempty"`
}

// newLiveRegistry builds the benchmark function set. A fresh registry per
// pool keeps sequential scaling points independent.
func newLiveRegistry() *router.Registry {
	reg := router.New()
	reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	reg.MustRegister("chain", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Call("leaf", ctx.Payload())
	})
	reg.MustRegister("fanout2", func(ctx router.Ctx) ([]byte, error) {
		ck1, err := ctx.Async("leaf", ctx.Payload())
		if err != nil {
			return nil, err
		}
		ck2, err := ctx.Async("leaf", ctx.Payload())
		if err != nil {
			return nil, err
		}
		if _, err := ctx.Wait(ck1); err != nil {
			return nil, err
		}
		return ctx.Wait(ck2)
	})
	return reg
}

// runLive benchmarks the live serving path — the in-process scenarios, the
// http_echo socket-to-function scenario over the zero-allocation edge, and
// the multicore scaling sweep — and writes BENCH_live.json. It returns
// whether the -live-gate checks failed (the caller exits nonzero).
func runLive(out string, requests, workers int, cores string, gate bool) bool {
	reg := newLiveRegistry()
	cfg := pool.Config{JBSQBound: 4}
	p := pool.New(cfg, reg)
	p.Start()
	eff := p.Config()

	report := liveReport{
		GeneratedBy:   "jordbench -live",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Executors:     eff.Executors,
		Orchestrators: eff.Orchestrators,
		JBSQBound:     eff.JBSQBound,
		NumPDs:        eff.NumPDs,
	}

	scenarios := []liveScenario{
		{name: "echo", fn: "echo", desc: "external invocation, no nesting (cget/pmove/run/pmove/cput)"},
		{name: "nested_chain", fn: "chain", desc: "root -> leaf synchronous call: one suspend/resume per request"},
		{name: "fanout2", fn: "fanout2", desc: "root with two async children waited in turn"},
	}
	payload := []byte("jordbench-live-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")

	for _, sc := range scenarios {
		res, err := runLiveScenario(p, sc, payload, requests, workers)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		logLiveResult(res)
		report.Scenarios = append(report.Scenarios, res)
	}

	if tab := p.Table(); tab.LivePDs() != 0 || tab.Faults() != 0 {
		log.Fatalf("pool not clean after load: live_pds=%d faults=%d", tab.LivePDs(), tab.Faults())
	}
	drainPool(p)

	// http_echo: the same echo workload, but entering through a real TCP
	// socket and the zero-allocation HTTP edge — request parse, admission,
	// body read into pooled VMA-bound memory, invoke, writev response. The
	// allocs/op it reports cover client AND server in this process, so the
	// raw-byte client below is written allocation-free too.
	httpRes, err := runLiveHTTPEcho(requests, workers, payload)
	if err != nil {
		log.Fatalf("http_echo: %v", err)
	}
	logLiveResult(httpRes)
	report.Scenarios = append(report.Scenarios, httpRes)

	// Tracing overhead: the echo scenario with the trace plane (the
	// default) vs without it, interleaved.
	ov, err := runTraceOverhead(requests, workers, payload)
	if err != nil {
		log.Fatalf("trace overhead: %v", err)
	}
	log.Printf("trace overhead: %.0f ns/op traced vs %.0f ns/op untraced (median %+.1f%%)",
		ov.TracedNSOp, ov.UntracedNSOp, ov.OverheadPct)
	report.TraceOverhead = &ov

	// Multicore scaling sweep: per point, pin GOMAXPROCS and size the pool
	// to the core count (one executor per core, one orchestrator per four
	// cores — the paper's dispatcher:worker proportion), then measure the
	// echo throughput.
	if cores != "" {
		points, err := parseCores(cores)
		if err != nil {
			log.Fatalf("-live-cores: %v", err)
		}
		var base float64
		for i, n := range points {
			pt, err := runScalingPoint(n, requests, workers, payload)
			if err != nil {
				log.Fatalf("scaling %d cores: %v", n, err)
			}
			if i == 0 {
				base = pt.ThroughputRPS
			}
			pt.Speedup = pt.ThroughputRPS / base
			pt.Efficiency = pt.Speedup / float64(pt.EffectiveCores)
			log.Printf("scaling %2d cores (%d effective): %9.0f req/s  speedup %.2fx  efficiency %.2f",
				pt.Cores, pt.EffectiveCores, pt.ThroughputRPS, pt.Speedup, pt.Efficiency)
			report.Scaling = append(report.Scaling, pt)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", out)
	}

	if gate {
		return !checkLiveGates(report)
	}
	return false
}

func logLiveResult(res liveResult) {
	log.Printf("%-12s %9.0f req/s  p50 %6.1fus  p99 %6.1fus  %6.2f allocs/op",
		res.Name, res.ThroughputRPS, res.P50Us, res.P99Us, res.AllocsPerOp)
}

func drainPool(p *pool.Pool) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", tok)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty core list")
	}
	return out, nil
}

// checkLiveGates evaluates the CI smoke gates against the report. It
// returns true when everything passes, logging each verdict.
func checkLiveGates(report liveReport) bool {
	ok := true
	// Allocation gates: the invariant is "no per-request allocation"; the
	// tolerances absorb runtime background noise (GC bookkeeping, timer
	// wheels, netpoll) that whole-process Mallocs deltas cannot exclude.
	allocGates := map[string]float64{"echo": 0.01, "http_echo": 0.05}
	for _, sc := range report.Scenarios {
		limit, gated := allocGates[sc.Name]
		if !gated {
			continue
		}
		if sc.AllocsPerOp > limit {
			log.Printf("GATE FAIL: %s allocates %.4f/op (limit %.2f)", sc.Name, sc.AllocsPerOp, limit)
			ok = false
		} else {
			log.Printf("gate ok: %s %.4f allocs/op (limit %.2f)", sc.Name, sc.AllocsPerOp, limit)
		}
	}

	// Tracing must stay within its latency budget: the always-on plane may
	// cost at most 5% of the untraced echo path.
	if ov := report.TraceOverhead; ov != nil {
		if ov.OverheadPct > 5.0 {
			log.Printf("GATE FAIL: tracing overhead %.1f%% (limit 5%%)", ov.OverheadPct)
			ok = false
		} else {
			log.Printf("gate ok: tracing overhead %.1f%% (limit 5%%)", ov.OverheadPct)
		}
	}

	// Scaling gates, clamped to the machine: only points the hardware can
	// actually parallelize count. On a 1-CPU box every point collapses to
	// one effective core and the efficiency gate is vacuous — which is the
	// honest outcome, not a failure; CI provides the multi-core machine.
	var best *scalingPoint
	for i := range report.Scaling {
		pt := &report.Scaling[i]
		if pt.Cores <= report.NumCPU && pt.Cores >= 2 && (best == nil || pt.Cores > best.Cores) {
			best = pt
		}
	}
	if best != nil {
		if best.Efficiency < 0.70 {
			log.Printf("GATE FAIL: scaling efficiency %.2f at %d cores (want >= 0.70)", best.Efficiency, best.Cores)
			ok = false
		} else {
			log.Printf("gate ok: scaling efficiency %.2f at %d cores", best.Efficiency, best.Cores)
		}
	} else {
		log.Printf("gate skipped: no scaling point with 2..%d cores on this machine", report.NumCPU)
	}
	if report.NumCPU >= 4 {
		for _, pt := range report.Scaling {
			if pt.Cores == 4 {
				if pt.Speedup < 2.0 {
					log.Printf("GATE FAIL: 4-core speedup %.2fx (want >= 2x)", pt.Speedup)
					ok = false
				} else {
					log.Printf("gate ok: 4-core speedup %.2fx", pt.Speedup)
				}
			}
		}
	}
	return ok
}

// runTraceOverhead measures the cost of the always-on trace plane: two
// pools — one default (traced), one with Config.NoTrace — run the echo
// scenario in alternating rounds, and each mode keeps its FASTEST round
// (min ns/op). Alternation means ambient noise (GC cycles, CPU frequency
// drift, a neighbor on the CI box) hits both modes alike instead of
// biasing whichever ran second.
func runTraceOverhead(requests, workers int, payload []byte) (traceOverhead, error) {
	// Paired rounds, order flipped each time. External noise (a shared
	// box, GC, another CI job) slows whole windows, so each round compares
	// the two modes back-to-back inside one window and yields one ratio;
	// the gate takes the median ratio, which a minority of noise-split
	// rounds cannot move.
	const rounds = 11
	// Triple the per-round request count: at ~1.5 us/op, the default CI
	// request count makes a ~30 ms window — short enough for one scheduler
	// hiccup to swing a round several percent. ~100 ms windows average the
	// hiccups out while keeping the whole measurement under two seconds.
	requests *= 3
	// Both pools carry the admission queue-delay observer, because jordd
	// always installs one: the overhead being gated is "tracing on vs off
	// in the deployed configuration", and the untraced pool's observer
	// pays clock reads at submit and dequeue that the traced pool folds
	// into its span stamps. A hookless baseline would bill those shared
	// reads to tracing.
	obs := func(time.Duration) {}
	traced := pool.New(pool.Config{JBSQBound: 4, ObserveQueueDelay: obs}, newLiveRegistry())
	traced.Start()
	defer drainPool(traced)
	untraced := pool.New(pool.Config{JBSQBound: 4, NoTrace: true, ObserveQueueDelay: obs}, newLiveRegistry())
	untraced.Start()
	defer drainPool(untraced)

	sc := liveScenario{name: "echo", fn: "echo"}
	best := map[*pool.Pool]float64{}
	var ratios []float64
	for r := 0; r < rounds; r++ {
		order := []*pool.Pool{traced, untraced}
		if r%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		nsOp := map[*pool.Pool]float64{}
		for _, p := range order {
			res, err := runLiveScenario(p, sc, payload, requests, workers)
			if err != nil {
				return traceOverhead{}, err
			}
			nsOp[p] = 1e9 / res.ThroughputRPS
			if cur, ok := best[p]; !ok || nsOp[p] < cur {
				best[p] = nsOp[p]
			}
		}
		ratios = append(ratios, nsOp[traced]/nsOp[untraced])
	}
	sort.Float64s(ratios)
	ov := traceOverhead{
		TracedNSOp:   best[traced],
		UntracedNSOp: best[untraced],
		Rounds:       rounds,
	}
	ov.OverheadPct = (ratios[len(ratios)/2] - 1) * 100
	return ov, nil
}

// runScalingPoint measures one core count: GOMAXPROCS pinned to n, a fresh
// pool with n executors and n/4 orchestrators, echo under enough workers
// to keep every executor fed.
func runScalingPoint(n, requests, workers int, payload []byte) (scalingPoint, error) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)

	orch := n / 4
	if orch < 1 {
		orch = 1
	}
	p := pool.New(pool.Config{Executors: n, Orchestrators: orch, JBSQBound: 4}, newLiveRegistry())
	p.Start()
	defer drainPool(p)

	w := workers
	if w < 2*n {
		w = 2 * n
	}
	res, err := runLiveScenario(p, liveScenario{name: "echo", fn: "echo"}, payload, requests, w)
	if err != nil {
		return scalingPoint{}, err
	}
	effCores := n
	if ncpu := runtime.NumCPU(); effCores > ncpu {
		effCores = ncpu
	}
	return scalingPoint{
		Cores:          n,
		Executors:      n,
		Orchestrators:  orch,
		EffectiveCores: effCores,
		ThroughputRPS:  res.ThroughputRPS,
		P99Us:          res.P99Us,
	}, nil
}

func runLiveScenario(p *pool.Pool, sc liveScenario, payload []byte, requests, workers int) (liveResult, error) {
	ctx := context.Background()

	// Warm up: fills the PD caches, spins up parked runners, and populates
	// the request/continuation recycle pools so the measured window sees
	// steady state.
	warm := requests / 10
	if warm > 2000 {
		warm = 2000
	}
	for i := 0; i < warm; i++ {
		if _, err := p.Invoke(ctx, sc.fn, payload); err != nil {
			return liveResult{}, fmt.Errorf("warmup: %w", err)
		}
	}

	var (
		hist    metrics.ShardedHistogram
		errCh   = make(chan error, workers)
		perWork = requests / workers
	)
	hist.SetShards(workers)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWork; i++ {
				t0 := time.Now()
				if _, err := p.Invoke(ctx, sc.fn, payload); err != nil {
					errCh <- err
					return
				}
				hist.RecordShard(w, time.Since(t0).Nanoseconds())
			}
			errCh <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			return liveResult{}, err
		}
	}
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	n := perWork * workers
	snap := hist.Snapshot()
	return liveResult{
		Name:          sc.name,
		Description:   sc.desc,
		Requests:      n,
		Workers:       workers,
		ThroughputRPS: float64(n) / elapsed.Seconds(),
		P50Us:         float64(snap.P50) / 1e3,
		P99Us:         float64(snap.P99) / 1e3,
		P999Us:        float64(snap.P999) / 1e3,
		MeanUs:        snap.Mean / 1e3,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}

// runLiveHTTPEcho measures the full socket-to-function path: a real edge
// server on loopback, raw-byte keep-alive clients, whole-process
// allocation accounting. The client side parses responses with the same
// no-allocation techniques as the edge so the measured delta isolates
// per-request cost, not client sloppiness.
func runLiveHTTPEcho(requests, workers int, payload []byte) (liveResult, error) {
	reg := newLiveRegistry()
	p := pool.New(pool.Config{JBSQBound: 4}, reg)
	p.Start()
	defer drainPool(p)
	g := &gateway.Gateway{
		Reg:            reg,
		Pool:           p,
		Adm:            admission.New(0),
		RequestTimeout: 30 * time.Second,
		MaxBodyBytes:   1 << 20,
	}
	e := gateway.NewEdge(g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return liveResult{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- e.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			log.Printf("edge shutdown: %v", err)
		}
		<-serveDone
	}()

	var reqBuf bytes.Buffer
	fmt.Fprintf(&reqBuf, "POST /invoke/echo HTTP/1.1\r\nHost: jordbench\r\nContent-Length: %d\r\n\r\n", len(payload))
	reqBuf.Write(payload)
	req := reqBuf.Bytes()

	clients := make([]*edgeClient, workers)
	for i := range clients {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return liveResult{}, err
		}
		defer c.Close()
		clients[i] = &edgeClient{conn: c, br: bufio.NewReaderSize(c, 16<<10)}
	}

	// Warm both sides to steady state before counting.
	warm := requests / 10
	if warm > 2000 {
		warm = 2000
	}
	perWarm := warm/workers + 1
	var wg sync.WaitGroup
	warmErr := make(chan error, workers)
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *edgeClient) {
			defer wg.Done()
			for i := 0; i < perWarm; i++ {
				if err := cl.roundtrip(req); err != nil {
					warmErr <- err
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	select {
	case err := <-warmErr:
		return liveResult{}, fmt.Errorf("warmup: %w", err)
	default:
	}

	var hist metrics.ShardedHistogram
	hist.SetShards(workers)
	perWork := requests / workers
	errCh := make(chan error, workers)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	for w, cl := range clients {
		go func(w int, cl *edgeClient) {
			for i := 0; i < perWork; i++ {
				t0 := time.Now()
				if err := cl.roundtrip(req); err != nil {
					errCh <- err
					return
				}
				hist.RecordShard(w, time.Since(t0).Nanoseconds())
			}
			errCh <- nil
		}(w, cl)
	}
	for range clients {
		if err := <-errCh; err != nil {
			return liveResult{}, err
		}
	}
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	n := perWork * workers
	snap := hist.Snapshot()
	return liveResult{
		Name:          "http_echo",
		Description:   "echo through the zero-allocation HTTP edge over loopback TCP: socket to function and back",
		Requests:      n,
		Workers:       workers,
		ThroughputRPS: float64(n) / elapsed.Seconds(),
		P50Us:         float64(snap.P50) / 1e3,
		P99Us:         float64(snap.P99) / 1e3,
		P999Us:        float64(snap.P999) / 1e3,
		MeanUs:        snap.Mean / 1e3,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}

// edgeClient is an allocation-free HTTP/1.1 client for the echo scenario:
// prebuilt request bytes out, ReadSlice-parsed response in.
type edgeClient struct {
	conn net.Conn
	br   *bufio.Reader
}

var clPrefix = []byte("Content-Length:")

func (c *edgeClient) roundtrip(req []byte) error {
	if _, err := c.conn.Write(req); err != nil {
		return err
	}
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(line, []byte("HTTP/1.1 200")) {
		return fmt.Errorf("edge answered %q", bytes.TrimSpace(line))
	}
	cl := -1
	for {
		line, err = c.br.ReadSlice('\n')
		if err != nil {
			return err
		}
		if len(line) <= 2 { // bare CRLF: end of headers
			break
		}
		if bytes.HasPrefix(line, clPrefix) {
			v := bytes.TrimSpace(line[len(clPrefix):])
			cl = 0
			for _, ch := range v {
				if ch < '0' || ch > '9' {
					return fmt.Errorf("bad content-length %q", v)
				}
				cl = cl*10 + int(ch-'0')
			}
		}
	}
	if cl < 0 {
		return fmt.Errorf("response missing content-length")
	}
	if _, err := c.br.Discard(cl); err != nil {
		return err
	}
	return nil
}
