package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"time"

	"jord/internal/metrics"
	"jord/internal/server/pool"
	"jord/internal/server/router"
	"jord/internal/server/state"
	"jord/internal/workloads"
)

// allocGateMax is the allocs/op ceiling for the snapshot read scenarios:
// nominally zero, with headroom only for whole-process noise (background GC
// bookkeeping), the same magnitude BENCH_live.json records for the 0-alloc
// invoke path. CI fails past it.
const allocGateMax = 0.5

// stateResult is one scenario's row in BENCH_state.json.
type stateResult struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Requests    int    `json:"requests"`
	Workers     int    `json:"workers"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	P999Us        float64 `json:"p999_us"`
	MeanUs        float64 `json:"mean_us"`

	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// CopiedBytesPerOp is what crossed a store boundary by value, per
	// request: always 0 for the shared-state tier (snapshots are aliases),
	// the full value size for the copying baseline.
	CopiedBytesPerOp float64 `json:"copied_bytes_per_op"`

	// Store counters over the measured window (absent for baseline-only
	// scenarios).
	State *state.Stats `json:"state,omitempty"`
}

// stateReport is the whole BENCH_state.json document.
type stateReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Scenarios []stateResult `json:"scenarios"`

	// Comparison is the headline criterion: snapshot reads vs the
	// copy-per-request baseline on the same read stream.
	Comparison struct {
		SharedReadCopiedPerOp   float64 `json:"shared_read_copied_bytes_per_op"`
		BaselineReadCopiedPerOp float64 `json:"baseline_read_copied_bytes_per_op"`
		SharedAvoidedPerOp      float64 `json:"shared_copy_bytes_avoided_per_op"`
		ReductionOK             bool    `json:"reduction_at_least_2x"`
	} `json:"comparison"`
}

// stateRig is one scenario's fresh runtime: pool + store (+ the copying
// baseline's counters when its functions are registered).
type stateRig struct {
	p    *pool.Pool
	st   *state.Store
	copy *workloads.CopyStats
}

func newStateRig(promoteAfter int, register func(*router.Registry, *stateRig)) *stateRig {
	r := &stateRig{}
	reg := router.New()
	register(reg, r)
	r.p = pool.New(pool.Config{JBSQBound: 4}, reg)
	st, err := state.New(state.Config{PromoteAfter: promoteAfter}, r.p.Table())
	if err != nil {
		log.Fatal(err)
	}
	r.st = st
	r.p.SetState(st)
	r.p.Start()
	return r
}

func (r *stateRig) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.p.Drain(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := r.st.VerifyIdle(); err != nil {
		log.Fatalf("store not idle after drain: %v", err)
	}
	if err := r.st.Close(); err != nil {
		log.Fatalf("store close: %v", err)
	}
	if tab := r.p.Table(); tab.LivePDs() != 0 || tab.Faults() != 0 {
		log.Fatalf("pool not clean after load: live_pds=%d faults=%d", tab.LivePDs(), tab.Faults())
	}
}

// runStateScenario measures a request stream where each worker draws its
// (function, payload) per iteration — the state analogue of
// runLiveScenario, generalized for mixed workloads.
func runStateScenario(r *stateRig, name, desc string, requests, workers int,
	pick func(w, i int) (fn string, payload []byte)) stateResult {
	ctx := context.Background()

	warm := requests / 10
	if warm > 2000 {
		warm = 2000
	}
	for i := 0; i < warm; i++ {
		fn, payload := pick(0, i)
		if _, err := r.p.Invoke(ctx, fn, payload); err != nil {
			log.Fatalf("%s warmup: %v", name, err)
		}
	}

	statsBefore := r.st.StatsSnapshot()
	var copiedBefore uint64
	if r.copy != nil {
		copiedBefore = r.copy.ReadBytes.Load() + r.copy.WriteBytes.Load()
	}

	var hist metrics.ShardedHistogram
	hist.SetShards(workers)
	errCh := make(chan error, workers)
	perWork := requests / workers

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWork; i++ {
				fn, payload := pick(w, i)
				t0 := time.Now()
				if _, err := r.p.Invoke(ctx, fn, payload); err != nil {
					errCh <- fmt.Errorf("%s(%s): %w", fn, payload, err)
					return
				}
				hist.RecordShard(w, time.Since(t0).Nanoseconds())
			}
			errCh <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	n := perWork * workers
	snap := hist.Snapshot()

	statsAfter := r.st.StatsSnapshot()
	window := diffStats(statsBefore, statsAfter)

	var copiedPerOp float64
	if r.copy != nil {
		copiedPerOp = float64(r.copy.ReadBytes.Load()+r.copy.WriteBytes.Load()-copiedBefore) / float64(n)
	}

	return stateResult{
		Name:          name,
		Description:   desc,
		Requests:      n,
		Workers:       workers,
		ThroughputRPS: float64(n) / elapsed.Seconds(),
		P50Us:         float64(snap.P50) / 1e3,
		P99Us:         float64(snap.P99) / 1e3,
		P999Us:        float64(snap.P999) / 1e3,
		MeanUs:        snap.Mean / 1e3,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(n),

		CopiedBytesPerOp: copiedPerOp,
		State:            &window,
	}
}

// diffStats returns the counter deltas over a measurement window (gauges —
// entries, bytes, outstanding — keep their end-of-window values).
func diffStats(a, b state.Stats) state.Stats {
	return state.Stats{
		Entries:          b.Entries,
		Bytes:            b.Bytes,
		Outstanding:      b.Outstanding,
		Gets:             b.Gets - a.Gets,
		FastGets:         b.FastGets - a.FastGets,
		StaleGets:        b.StaleGets - a.StaleGets,
		Takes:            b.Takes - a.Takes,
		Commits:          b.Commits - a.Commits,
		Discards:         b.Discards - a.Discards,
		Puts:             b.Puts - a.Puts,
		Creates:          b.Creates - a.Creates,
		Deletes:          b.Deletes - a.Deletes,
		Promotions:       b.Promotions - a.Promotions,
		Demotions:        b.Demotions - a.Demotions,
		CopyBytesAvoided: b.CopyBytesAvoided - a.CopyBytesAvoided,
		DegradedRefusals: b.DegradedRefusals - a.DegradedRefusals,
		CapacityRefusals: b.CapacityRefusals - a.CapacityRefusals,
	}
}

// socialPick returns a deterministic weighted social-mix draw for one
// variant prefix: 60% timeline / 25% post / 10% follow / 5% profile over a
// small skewed user set, seeded per worker.
func socialPick(prefix string, workers int) func(w, i int) (string, []byte) {
	rngs := make([]*rand.Rand, workers)
	zipfs := make([]*rand.Zipf, workers)
	for w := range rngs {
		rngs[w] = rand.New(rand.NewSource(int64(w + 1)))
		zipfs[w] = rand.NewZipf(rngs[w], 1.2, 1, 15)
	}
	return func(w, i int) (string, []byte) {
		rng, zipf := rngs[w], zipfs[w]
		u := fmt.Sprintf("u%d", zipf.Uint64())
		switch r := rng.Float64(); {
		case r < 0.60:
			return prefix + "timeline", []byte(u)
		case r < 0.85:
			return prefix + "post", []byte(fmt.Sprintf("%s musing %d on shared state", u, i))
		case r < 0.95:
			return prefix + "follow", []byte(fmt.Sprintf("%s u%d", u, rng.Intn(16)))
		default:
			return prefix + "profile", []byte(u)
		}
	}
}

// runState benchmarks the shared-state tier in-process and writes
// BENCH_state.json. It exits nonzero if the snapshot read path allocates
// (the 0-allocs/op gate) or the copy-reduction criterion fails.
func runState(out string, requests, workers int) {
	report := stateReport{
		GeneratedBy: "jordbench -state",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	blob := make([]byte, 4096)
	for i := range blob {
		blob[i] = byte(i)
	}

	// getBody registers a reader of the 4 KiB blob via the shared tier.
	getBody := func(reg *router.Registry, _ *stateRig) {
		reg.MustRegister("get4k", func(ctx router.Ctx) ([]byte, error) {
			sn, err := ctx.StateGet(router.StateGlobal, "blob")
			if err != nil {
				return nil, err
			}
			if len(sn.Bytes()) != len(blob) {
				return nil, fmt.Errorf("bad blob length %d", len(sn.Bytes()))
			}
			sn.Release()
			return nil, nil
		})
	}
	seedBlob := func(r *stateRig) {
		if _, err := r.p.Invoke(context.Background(), "seed", nil); err != nil {
			log.Fatalf("seeding blob: %v", err)
		}
	}
	seedBody := func(reg *router.Registry) {
		reg.MustRegister("seed", func(ctx router.Ctx) ([]byte, error) {
			_, err := ctx.StatePut(router.StateGlobal, "blob", blob)
			return nil, err
		})
	}
	fixed := func(fn string) func(int, int) (string, []byte) {
		return func(int, int) (string, []byte) { return fn, nil }
	}

	// 1. Granted snapshot path: pcopy R per reader PD, zero copies.
	r := newStateRig(-1, func(reg *router.Registry, rg *stateRig) { getBody(reg, rg); seedBody(reg) })
	seedBlob(r)
	res := runStateScenario(r, "state_get",
		"4 KiB snapshot read, promotion off: pcopy R grant per reader PD, zero-copy alias",
		requests, workers, fixed("get4k"))
	r.close()
	report.Scenarios = append(report.Scenarios, res)

	// 2. Global-RO fast path: G bit set, one atomic load per snapshot.
	r = newStateRig(8, func(reg *router.Registry, rg *stateRig) { getBody(reg, rg); seedBody(reg) })
	seedBlob(r)
	res = runStateScenario(r, "state_get_global_ro",
		"4 KiB snapshot read of a promoted key: VTE G bit, no PDs, no copies, no locks",
		requests, workers, fixed("get4k"))
	if res.State.FastGets == 0 {
		log.Fatalf("state_get_global_ro: key never promoted (fast_gets = 0)")
	}
	r.close()
	report.Scenarios = append(report.Scenarios, res)

	// 3. Exclusive-ownership read-modify-write: pmove out, commit, pmove back.
	r = newStateRig(-1, func(reg *router.Registry, _ *stateRig) {
		reg.MustRegister("bump", func(ctx router.Ctx) ([]byte, error) {
			tx, err := ctx.StateTake(router.StateGlobal, "ctr")
			if err != nil {
				return nil, err
			}
			n := uint64(0)
			if b := tx.Bytes(); len(b) == 8 {
				for _, c := range b {
					n = n<<8 | uint64(c)
				}
			}
			n++
			buf := make([]byte, 8)
			for i := 7; i >= 0; i-- {
				buf[i] = byte(n)
				n >>= 8
			}
			_, err = tx.Commit(buf)
			return nil, err
		})
	})
	res = runStateScenario(r, "state_rmw",
		"take/commit counter increment: pmove RW ownership out and back per request",
		requests, workers, func(w, i int) (string, []byte) { return "bump", nil })
	r.close()
	report.Scenarios = append(report.Scenarios, res)

	// 4 & 5. The social mix, shared state vs copy-per-request baseline.
	socialReqs := requests / 2 // post fan-out makes these heavier per request
	r = newStateRig(8, func(reg *router.Registry, _ *stateRig) { workloads.RegisterSocialLive(reg) })
	shared := runStateScenario(r, "social_shared",
		"social-network mix (60r/25p/10f/5p) over the shared-state tier",
		socialReqs, workers, socialPick("social.", workers))
	r.close()
	report.Scenarios = append(report.Scenarios, shared)

	r = newStateRig(-1, func(reg *router.Registry, rg *stateRig) {
		rg.copy = workloads.RegisterSocialCopy(reg)
	})
	baseline := runStateScenario(r, "social_copy",
		"identical mix over the copy-per-request baseline store (memcpy both ways)",
		socialReqs, workers, socialPick("socialcopy.", workers))
	r.close()
	report.Scenarios = append(report.Scenarios, baseline)

	// Headline comparison: bytes copied across the store boundary on the
	// read stream. The shared tier hands out aliases, so its number is zero
	// by construction; the criterion requires at least a 2x reduction.
	report.Comparison.SharedReadCopiedPerOp = 0
	report.Comparison.BaselineReadCopiedPerOp = baseline.CopiedBytesPerOp
	report.Comparison.SharedAvoidedPerOp =
		float64(shared.State.CopyBytesAvoided) / float64(shared.Requests)
	report.Comparison.ReductionOK =
		baseline.CopiedBytesPerOp >= 2*report.Comparison.SharedReadCopiedPerOp &&
			baseline.CopiedBytesPerOp > 0

	for _, sc := range report.Scenarios {
		log.Printf("%-20s %9.0f req/s  p50 %6.1fus  p99 %6.1fus  %6.2f allocs/op  %8.0f copied B/op",
			sc.Name, sc.ThroughputRPS, sc.P50Us, sc.P99Us, sc.AllocsPerOp, sc.CopiedBytesPerOp)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", out)
	}

	// Regression gates (CI smoke): the snapshot read path must stay
	// allocation-free, and the copy reduction must hold.
	failed := false
	for _, sc := range report.Scenarios {
		if (sc.Name == "state_get" || sc.Name == "state_get_global_ro") && sc.AllocsPerOp > allocGateMax {
			log.Printf("FAIL: %s allocates %.3f/op (gate %.1f)", sc.Name, sc.AllocsPerOp, allocGateMax)
			failed = true
		}
	}
	if !report.Comparison.ReductionOK {
		log.Printf("FAIL: copy reduction criterion: baseline %.0f B/op vs shared %.0f B/op",
			report.Comparison.BaselineReadCopiedPerOp, report.Comparison.SharedReadCopiedPerOp)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
