// Command jordbench runs custom load sweeps and emits TSV, for plotting
// or regression tracking beyond the fixed paper figures.
//
// Usage:
//
//	jordbench -workload hotel -system jord -loads 1,2,4,6 [-measure 5000]
//	jordbench -live [-live-out BENCH_live.json] [-live-requests 50000] [-live-workers 16]
//	          [-live-cores 1,2,4,8,16,32] [-live-gate]
//	jordbench -cluster [-cluster-out BENCH_cluster.json] [-cluster-nodes 1,2,4]
//	          [-cluster-requests 20000] [-cluster-workers 16] [-cluster-gate]
//	jordbench -state [-state-out BENCH_state.json] [-state-requests 30000] [-state-workers 16]
//	jordbench ... [-cpuprofile cpu.out] [-mutexprofile mutex.out] [-blockprofile block.out]
//
// Loads are in MRPS. Systems: jord | jordni | jordbt | nightcore.
//
// With -live, instead of sweeping the simulator, jordbench drives the live
// serving path (internal/server/pool) in-process under sustained concurrent
// load and writes BENCH_live.json: throughput, latency percentiles, and
// allocations per operation for an external echo, a nested synchronous
// chain, a two-way async fanout, and an http_echo scenario that runs the
// full zero-allocation HTTP edge over a loopback socket — socket to
// function and back. It then sweeps the -live-cores list, sizing
// GOMAXPROCS and the pool (one executor per core, one orchestrator per
// four) per point, and records the multicore scaling curve: throughput,
// speedup over the first point, and efficiency normalized to the cores the
// machine actually has (num_cpu is recorded so a 32-core sweep on a 4-core
// box reads honestly). This is the checked-in regression baseline for the
// hot-path engineering (PD caches, credit-cached free counters, VTE
// permission arrays, continuation recycling); regenerate it with
// `go run ./cmd/jordbench -live`.
//
// -live-gate turns the run into a CI smoke gate: the process exits nonzero
// if the echo or http_echo path allocates per request, if scaling
// efficiency at the largest machine-feasible point falls below 70%, or if
// a 4-core point (on a >= 4 CPU machine) fails to reach 2x the 1-core
// throughput.
//
// The -cpuprofile / -mutexprofile / -blockprofile flags write pprof
// profiles covering the whole run (mutex and block profiling are enabled
// at full rate when requested) — the tooling loop for finding cross-core
// contention in the live path.
//
// With -cluster, jordbench boots N in-process jordd workers on loopback
// behind the JBSQ(k) front-end dispatcher (internal/cluster) and measures
// the echo workload end to end — client → dispatcher → worker → back —
// per worker count in -cluster-nodes, writing the 1→N scaling curve to
// BENCH_cluster.json. -cluster-gate makes it a CI smoke gate: the sized
// load must see zero dispatcher rejections/retries, and the 2-worker
// point must reach a conservative scaling-efficiency floor when the
// machine has cores enough to grant it.
//
// With -state, jordbench drives the shared-state tier the same way and
// writes BENCH_state.json: the granted (pcopy R) and promoted (VTE G bit)
// snapshot read paths, exclusive-ownership read-modify-writes, and the
// stateful social-network mix against a copy-per-request baseline. It exits
// nonzero if the snapshot read path allocates or the shared tier does not
// beat the baseline's copied bytes per op by at least 2x — the CI smoke
// gate for the state subsystem.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"jord"
	"jord/internal/cliutil"
	"jord/internal/experiments"
)

// runSampled measures each load point over several independent seeds and
// prints means with 95% confidence intervals.
func runSampled(workload, system, loads string, warmup, measure, seed uint64, trials int) {
	kind, err := parseSystem(system)
	if err != nil {
		log.Fatal(err)
	}
	sc := experiments.Scale{Name: "bench", Warmup: warmup, Measure: measure, MaxPoints: 1}
	fmt.Println("workload\tsystem\tload_mrps\ttrials\tp99_us\tp99_ci_us\tmeasured_mrps\tmeasured_ci")
	for _, tok := range strings.Split(loads, ",") {
		mrps, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			log.Fatalf("bad load %q: %v", tok, err)
		}
		p, err := experiments.RunSampledPoint(kind, workload, mrps*1e6, sc, trials, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\t%s\t%.3f\t%d\t%.2f\t%.2f\t%.3f\t%.3f\n",
			workload, system, mrps, trials,
			p.P99NS.Mean/1000, p.P99NS.CI95/1000,
			p.TputMRPS.Mean, p.TputMRPS.CI95)
	}
}

func parseSystem(name string) (experiments.SystemKind, error) {
	switch name {
	case "jord":
		return experiments.Jord, nil
	case "jordni":
		return experiments.JordNI, nil
	case "jordbt":
		return experiments.JordBT, nil
	case "nightcore":
		return experiments.NightCore, nil
	default:
		return 0, fmt.Errorf("unknown system %q", name)
	}
}

func main() {
	var (
		workload = cliutil.NewChoice("hipster", "hipster", "hotel", "media", "social")
		system   = cliutil.NewChoice("jord", "jord", "jordni", "jordbt", "nightcore")
		loads    = flag.String("loads", "1,2,4,8", "comma-separated offered loads in MRPS")
		warmup   = flag.Uint64("warmup", 300, "warmup requests")
		measure  = flag.Uint64("measure", 3000, "measured requests")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		trials   = flag.Int("trials", 1, "independent trials per point (SimFlex-style sampling; >1 adds 95% CIs)")

		live         = flag.Bool("live", false, "benchmark the live serving path instead of the simulator")
		liveOut      = flag.String("live-out", "BENCH_live.json", "output file for -live ('-' = stdout)")
		liveRequests = flag.Int("live-requests", 50000, "measured requests per -live scenario")
		liveWorkers  = flag.Int("live-workers", 16, "concurrent clients for -live")
		liveCores    = flag.String("live-cores", "1,2,4,8,16,32", "comma-separated core counts for the -live scaling sweep ('' = skip)")
		liveGate     = flag.Bool("live-gate", false, "exit nonzero if -live misses the 0 allocs/op or scaling-efficiency gates")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file (enables full-rate mutex profiling)")
		blockprofile = flag.String("blockprofile", "", "write a blocking profile to this file (enables full-rate block profiling)")

		clusterBench    = flag.Bool("cluster", false, "benchmark the JBSQ dispatcher over N in-process workers on loopback")
		clusterOut      = flag.String("cluster-out", "BENCH_cluster.json", "output file for -cluster ('-' = stdout)")
		clusterRequests = flag.Int("cluster-requests", 20000, "measured requests per -cluster point")
		clusterClients  = flag.Int("cluster-workers", 16, "concurrent clients for -cluster")
		clusterNodes    = flag.String("cluster-nodes", "1,2,4", "comma-separated worker counts for the -cluster scaling sweep")
		clusterGate     = flag.Bool("cluster-gate", false, "exit nonzero if -cluster misses the no-rejection or 2-worker scaling-efficiency gates")

		stateBench    = flag.Bool("state", false, "benchmark the shared-state tier (snapshot reads, RMW, social mix vs copy baseline)")
		stateOut      = flag.String("state-out", "BENCH_state.json", "output file for -state ('-' = stdout)")
		stateRequests = flag.Int("state-requests", 30000, "measured requests per -state scenario")
		stateWorkers  = flag.Int("state-workers", 16, "concurrent clients for -state")
	)
	flag.Var(workload, "workload", workload.Allowed())
	flag.Var(system, "system", system.Allowed())
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jordbench: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	stopProfiles := startProfiles(*cpuprofile, *mutexprofile, *blockprofile)

	if *live {
		if *liveRequests < 1 || *liveWorkers < 1 {
			fmt.Fprintln(os.Stderr, "jordbench: -live-requests and -live-workers must be positive")
			flag.Usage()
			os.Exit(2)
		}
		gateFailed := runLive(*liveOut, *liveRequests, *liveWorkers, *liveCores, *liveGate)
		stopProfiles()
		if gateFailed {
			os.Exit(1)
		}
		return
	}

	if *clusterBench {
		if *clusterRequests < 1 || *clusterClients < 1 {
			fmt.Fprintln(os.Stderr, "jordbench: -cluster-requests and -cluster-workers must be positive")
			flag.Usage()
			os.Exit(2)
		}
		gateFailed := runCluster(*clusterOut, *clusterRequests, *clusterClients, *clusterNodes, *clusterGate)
		stopProfiles()
		if gateFailed {
			os.Exit(1)
		}
		return
	}

	if *stateBench {
		if *stateRequests < 1 || *stateWorkers < 1 {
			fmt.Fprintln(os.Stderr, "jordbench: -state-requests and -state-workers must be positive")
			flag.Usage()
			os.Exit(2)
		}
		runState(*stateOut, *stateRequests, *stateWorkers)
		stopProfiles()
		return
	}
	defer stopProfiles()

	if *trials > 1 {
		runSampled(workload.Value(), system.Value(), *loads, *warmup, *measure, *seed, *trials)
		return
	}

	fmt.Println("workload\tsystem\tload_mrps\tmeasured_mrps\tp50_us\tp99_us\tp999_us\tmean_service_us\toverhead_frac")
	for _, tok := range strings.Split(*loads, ",") {
		mrps, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			log.Fatalf("bad load %q: %v", tok, err)
		}
		cfg := jord.DefaultConfig()
		cfg.Seed = *seed
		switch system.Value() {
		case "jord":
			cfg.Variant = jord.VariantPlainList
		case "jordni":
			cfg.Variant = jord.VariantNoIsolation
		case "jordbt":
			cfg.Variant = jord.VariantBTree
		case "nightcore":
			cfg.NightCore = true
		default:
			log.Fatalf("unknown system %q", system.Value())
		}
		sys, err := jord.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		w, err := jord.BuildWorkload(workload.Value(), sys, *seed)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.RunLoad(jord.LoadSpec{
			RPS:     mrps * 1e6,
			Warmup:  *warmup,
			Measure: *measure,
			Root:    w.Selector(),
		})
		freq := sys.M.Cfg.FreqGHz
		fmt.Printf("%s\t%s\t%.3f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\n",
			workload.Value(), system.Value(), mrps, res.MeasuredRPS(freq)/1e6,
			float64(res.Latency.Percentile(50))/1000,
			float64(res.Latency.Percentile(99))/1000,
			float64(res.Latency.Percentile(99.9))/1000,
			res.MeanServiceNS()/1000,
			res.OverheadFraction())
	}
}
