package main

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles arms the requested pprof profiles and returns the function
// that stops and writes them. Mutex and block profiling run at full rate
// (fraction/rate 1) for the duration of the run: jordbench runs are short
// and the point is to see EVERY contention event on the live path, not a
// sample of them.
func startProfiles(cpu, mutex, block string) func() {
	var stops []func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
			log.Printf("wrote cpu profile to %s", cpu)
		})
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
		stops = append(stops, func() { writeProfile("mutex", mutex) })
	}
	if block != "" {
		runtime.SetBlockProfileRate(1)
		stops = append(stops, func() { writeProfile("block", block) })
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}
}

func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("%sprofile: %v", name, err)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		log.Fatalf("%sprofile: %v", name, err)
	}
	log.Printf("wrote %s profile to %s", name, path)
}
