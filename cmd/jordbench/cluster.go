package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"jord/internal/cluster"
	"jord/internal/metrics"
	"jord/internal/server"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// clusterExecutors is the pool size of each in-process worker. Small on
// purpose: the point of the sweep is dispatcher scaling across WORKERS,
// so each worker must be saturable without eating the whole machine —
// with 2 executors a 1,2,4 sweep needs 8 cores of function work at the
// top, which the CI runners have.
const clusterExecutors = 2

// clusterPoint is one row of the 1→N worker scaling curve through the
// JBSQ dispatcher.
type clusterPoint struct {
	Workers            int `json:"workers"`
	ExecutorsPerWorker int `json:"executors_per_worker"`

	// EffectiveCores is min(workers x executors, NumCPU): the function
	// parallelism the machine can actually grant this point (dispatcher
	// and clients need cores too, which is why the efficiency gate floor
	// is conservative). Efficiency normalizes speedup by the ratio of
	// effective cores to the first point's, so a sweep on a small box
	// reads honestly instead of fabricating linear scaling.
	EffectiveCores int `json:"effective_cores"`

	ThroughputRPS float64 `json:"throughput_rps"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	Speedup       float64 `json:"speedup"`    // vs the first point
	Efficiency    float64 `json:"efficiency"` // Speedup / (effN / eff1)

	// Dispatcher-side accounting for the measured window: every request
	// must be dispatched (no 429/503/retry under a correctly sized load).
	Dispatched uint64 `json:"dispatched"`
	Rejected   uint64 `json:"rejected"`
	Retries    uint64 `json:"retries"`
}

// clusterReport is the whole BENCH_cluster.json document.
type clusterReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`

	RequestsPerPoint int `json:"requests_per_point"`
	ClientWorkers    int `json:"client_workers"`

	Points []clusterPoint `json:"points"`
}

// clusterRig is one running point: N worker daemons on loopback, a
// dispatcher over them, and the dispatcher's own HTTP server.
type clusterRig struct {
	daemons []*server.Daemon
	serveCh []chan error
	disp    *cluster.Dispatcher
	front   *http.Server
	frontLn net.Listener
	addr    string
}

func startClusterRig(n int) (*clusterRig, error) {
	rig := &clusterRig{}
	var workerAddrs []string
	for i := 0; i < n; i++ {
		d := server.New(server.Config{
			Pool: pool.Config{Executors: clusterExecutors, JBSQBound: 4},
			// The zero-alloc edge keeps per-worker overhead out of the
			// scaling signal; management endpoints behave identically.
			Edge:           true,
			RequestTimeout: 30 * time.Second,
		})
		d.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Payload(), nil
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			rig.stop()
			return nil, err
		}
		ch := make(chan error, 1)
		go func() { ch <- d.Serve(ln) }()
		rig.daemons = append(rig.daemons, d)
		rig.serveCh = append(rig.serveCh, ch)
		workerAddrs = append(workerAddrs, ln.Addr().String())
	}

	rig.disp = cluster.New(cluster.Config{
		Workers:        workerAddrs,
		HealthInterval: 50 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
	})
	rig.disp.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rig.stop()
		return nil, err
	}
	rig.frontLn = ln
	rig.addr = ln.Addr().String()
	rig.front = &http.Server{Handler: rig.disp.Handler()}
	go func() { _ = rig.front.Serve(ln) }()

	// Wait for the health loop to admit every worker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + rig.addr + "/readyz")
		if err == nil {
			var doc cluster.Readyz
			derr := json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if derr == nil && doc.Ready && doc.ReadyWorkers == n {
				return rig, nil
			}
		}
		if time.Now().After(deadline) {
			rig.stop()
			return nil, fmt.Errorf("cluster rig: %d workers not ready within 5s", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (r *clusterRig) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if r.front != nil {
		_ = r.front.Shutdown(ctx)
	}
	if r.disp != nil {
		r.disp.Stop()
	}
	for i, d := range r.daemons {
		if err := d.Shutdown(ctx); err != nil {
			log.Printf("worker %d shutdown: %v", i, err)
		}
		<-r.serveCh[i]
	}
}

// dispatcherCounters scrapes the dispatcher's own placement counters.
func dispatcherCounters(addr string) (dispatched, rejected, retries uint64, err error) {
	resp, err := http.Get("http://" + addr + "/statsz")
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	var doc cluster.Statsz
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, 0, 0, err
	}
	return doc.Dispatched,
		doc.RejectedSaturated + doc.RejectedNoWorkers + doc.Exhausted + doc.Passthrough,
		doc.ErrRetries + doc.DrainRetries,
		nil
}

// runClusterPoint measures the echo workload through the dispatcher with
// n workers behind it.
func runClusterPoint(n, requests, clients int, payload []byte) (clusterPoint, error) {
	rig, err := startClusterRig(n)
	if err != nil {
		return clusterPoint{}, err
	}
	defer rig.stop()

	httpClient := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        clients * 2,
			MaxIdleConnsPerHost: clients * 2,
			IdleConnTimeout:     90 * time.Second,
		},
		Timeout: 30 * time.Second,
	}
	url := "http://" + rig.addr + "/invoke/echo"
	do := func() error {
		resp, err := httpClient.Post(url, "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("dispatcher answered %s", resp.Status)
		}
		return nil
	}

	// Warm the whole chain — client transports, dispatcher keep-alive
	// pool, worker PD caches — before the measured window.
	warm := requests / 10
	if warm > 2000 {
		warm = 2000
	}
	perWarm := warm/clients + 1
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func() {
			for i := 0; i < perWarm; i++ {
				if err := do(); err != nil {
					errCh <- fmt.Errorf("warmup: %w", err)
					return
				}
			}
			errCh <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			return clusterPoint{}, err
		}
	}

	d0, r0, t0, err := dispatcherCounters(rig.addr)
	if err != nil {
		return clusterPoint{}, err
	}

	var hist metrics.ShardedHistogram
	hist.SetShards(clients)
	perWork := requests / clients

	start := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			for i := 0; i < perWork; i++ {
				t := time.Now()
				if err := do(); err != nil {
					errCh <- err
					return
				}
				hist.RecordShard(c, time.Since(t).Nanoseconds())
			}
			errCh <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			return clusterPoint{}, err
		}
	}
	elapsed := time.Since(start)

	d1, r1, t1, err := dispatcherCounters(rig.addr)
	if err != nil {
		return clusterPoint{}, err
	}

	total := perWork * clients
	snap := hist.Snapshot()
	effCores := n * clusterExecutors
	if ncpu := runtime.NumCPU(); effCores > ncpu {
		effCores = ncpu
	}
	return clusterPoint{
		Workers:            n,
		ExecutorsPerWorker: clusterExecutors,
		EffectiveCores:     effCores,
		ThroughputRPS:      float64(total) / elapsed.Seconds(),
		P50Us:              float64(snap.P50) / 1e3,
		P99Us:              float64(snap.P99) / 1e3,
		Dispatched:         d1 - d0,
		Rejected:           r1 - r0,
		Retries:            t1 - t0,
	}, nil
}

func parseWorkerCounts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", tok)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker count list")
	}
	return out, nil
}

// runCluster sweeps the dispatcher over 1→N in-process workers on
// loopback and writes BENCH_cluster.json. It returns whether the
// -cluster-gate checks failed (the caller exits nonzero).
func runCluster(out string, requests, clients int, counts string, gate bool) bool {
	points, err := parseWorkerCounts(counts)
	if err != nil {
		log.Fatalf("-cluster-nodes: %v", err)
	}
	payload := []byte("jordbench-cluster-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxx")

	report := clusterReport{
		GeneratedBy:      "jordbench -cluster",
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		RequestsPerPoint: requests,
		ClientWorkers:    clients,
	}

	var base clusterPoint
	for i, n := range points {
		pt, err := runClusterPoint(n, requests, clients, payload)
		if err != nil {
			log.Fatalf("cluster %d workers: %v", n, err)
		}
		if i == 0 {
			base = pt
		}
		pt.Speedup = pt.ThroughputRPS / base.ThroughputRPS
		pt.Efficiency = pt.Speedup / (float64(pt.EffectiveCores) / float64(base.EffectiveCores))
		log.Printf("cluster %2d workers (%d effective cores): %9.0f req/s  p99 %7.1fus  speedup %.2fx  efficiency %.2f  (%d dispatched, %d rejected, %d retries)",
			pt.Workers, pt.EffectiveCores, pt.ThroughputRPS, pt.P99Us, pt.Speedup, pt.Efficiency,
			pt.Dispatched, pt.Rejected, pt.Retries)
		report.Points = append(report.Points, pt)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", out)
	}

	if gate {
		return !checkClusterGates(report)
	}
	return false
}

// checkClusterGates evaluates the CI smoke gates: the sized load must
// never be refused or retried, and the 2-worker point must scale with a
// conservative efficiency floor — conservative because the dispatcher
// hop, the HTTP clients, and all N workers share one process and one
// machine, unlike a real deployment.
func checkClusterGates(report clusterReport) bool {
	ok := true
	for _, pt := range report.Points {
		if pt.Rejected != 0 || pt.Retries != 0 {
			log.Printf("GATE FAIL: %d workers: %d rejected, %d retries under a sized load (want 0)",
				pt.Workers, pt.Rejected, pt.Retries)
			ok = false
		}
	}

	// Efficiency is only meaningful when the machine can actually grant
	// the 2-worker point more parallelism than the 1-worker point (plus
	// headroom for the dispatcher and clients). On a small box the gate
	// skips — the honest outcome; CI provides the multi-core machine.
	const floor = 0.55
	needCPU := 2*clusterExecutors + 2
	gated := false
	for _, pt := range report.Points {
		if pt.Workers != 2 {
			continue
		}
		gated = true
		if report.NumCPU < needCPU {
			log.Printf("gate skipped: 2-worker efficiency needs >= %d CPUs, machine has %d", needCPU, report.NumCPU)
			break
		}
		if pt.Efficiency < floor {
			log.Printf("GATE FAIL: 2-worker scaling efficiency %.2f (want >= %.2f)", pt.Efficiency, floor)
			ok = false
		} else {
			log.Printf("gate ok: 2-worker scaling efficiency %.2f (floor %.2f)", pt.Efficiency, floor)
		}
	}
	if !gated {
		log.Printf("gate skipped: no 2-worker point in the sweep")
	}
	return ok
}
