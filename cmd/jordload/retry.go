package main

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// backoffDelay computes one retry's wait: base * 2^attempt * jitter,
// clamped to max. The doubling runs in float64 and stops the moment it
// crosses max, so a large -retries value can never shift past 62 bits the
// way `int(1)<<attempt` did — that overflow produced a zero or negative
// delay and turned "backoff" into a hot retry loop against a server that
// was already telling us to go away.
func backoffDelay(base time.Duration, attempt int, jitter float64, max time.Duration) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if jitter <= 0 {
		jitter = 1
	}
	f := float64(base) * jitter
	for i := 0; i < attempt && f < float64(max); i++ {
		f *= 2
	}
	if f > float64(max) {
		f = float64(max)
	}
	d := time.Duration(f)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 §10.2.3
// form: delta-seconds ("7") or an HTTP-date ("Fri, 08 Aug 2026 17:00:00
// GMT"). Plain Atoi dropped every date-form hint on the floor, silently
// discarding the server's backoff guidance. The returned hint is raw;
// callers cap it (at the request timeout) so a bogus or far-future header
// cannot stall a worker goroutine.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// retryDelay combines the jittered exponential backoff with the server's
// Retry-After hint: never sooner than the hint, never longer than cap.
func retryDelay(base time.Duration, attempt int, jitter float64, retryAfter string, now time.Time, cap time.Duration) time.Duration {
	delay := backoffDelay(base, attempt, jitter, cap)
	if hint, ok := parseRetryAfter(retryAfter, now); ok {
		if cap > 0 && hint > cap {
			hint = cap
		}
		if hint > delay {
			delay = hint
		}
	}
	return delay
}
