package main

import (
	"math/rand"
	"strings"
	"testing"
)

// TestSocialMixNoSelfFollows is the regression test for the "redraw flat
// once" bug: the single flat redraw could re-collide with the follower,
// so self-follows still reached social.follow. users=2 maximizes the
// collision probability; no follow payload may ever pair a user with
// itself.
func TestSocialMixNoSelfFollows(t *testing.T) {
	for _, users := range []int{2, 3, 64} {
		m := newSocialMix(rand.New(rand.NewSource(1)), users)
		follows := 0
		for i := 0; i < 50_000; i++ {
			fn, payload := m.draw()
			if fn != "social.follow" {
				continue
			}
			follows++
			parts := strings.Fields(payload)
			if len(parts) != 2 {
				t.Fatalf("users=%d: follow payload %q not 'u v'", users, payload)
			}
			if parts[0] == parts[1] {
				t.Fatalf("users=%d: self-follow %q reached the mix", users, payload)
			}
		}
		if follows == 0 {
			t.Fatalf("users=%d: no follows drawn in 50k ops", users)
		}
	}
}

// TestSocialMixShape sanity-checks the operation weights and that every
// drawn function belongs to the social set.
func TestSocialMixShape(t *testing.T) {
	m := newSocialMix(rand.New(rand.NewSource(7)), 64)
	counts := map[string]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		fn, payload := m.draw()
		if payload == "" {
			t.Fatalf("empty payload for %s", fn)
		}
		counts[fn]++
	}
	want := map[string]float64{
		"social.timeline": 0.60,
		"social.post":     0.25,
		"social.follow":   0.10,
		"social.profile":  0.05,
	}
	for fn, frac := range want {
		got := float64(counts[fn]) / n
		if got < frac-0.02 || got > frac+0.02 {
			t.Errorf("%s: %.3f of draws, want ~%.2f", fn, got, frac)
		}
	}
	for fn := range counts {
		if _, ok := want[fn]; !ok {
			t.Errorf("unexpected function %s in mix", fn)
		}
	}
}

// TestSocialMixReproducible: the same seed must yield the same stream
// (the redraw loop draws from the same rng, so this also pins the fix's
// determinism).
func TestSocialMixReproducible(t *testing.T) {
	a := newSocialMix(rand.New(rand.NewSource(42)), 16)
	b := newSocialMix(rand.New(rand.NewSource(42)), 16)
	for i := 0; i < 10_000; i++ {
		fa, pa := a.draw()
		fb, pb := b.draw()
		if fa != fb || pa != pb {
			t.Fatalf("draw %d diverged: (%s,%q) vs (%s,%q)", i, fa, pa, fb, pb)
		}
	}
}
