package main

import (
	"testing"
	"time"
)

// TestBackoffDelayNeverNonPositive is the regression test for the
// unguarded `int(1)<<attempt`: past 62 the shift wrapped to zero or
// negative, collapsing the backoff into a hot retry loop. Every attempt
// number — including absurd -retries settings — must yield a positive,
// clamped delay.
func TestBackoffDelayNeverNonPositive(t *testing.T) {
	const max = 5 * time.Second
	for _, attempt := range []int{0, 1, 10, 31, 62, 63, 64, 100, 1 << 20} {
		d := backoffDelay(20*time.Millisecond, attempt, 1.0, max)
		if d <= 0 {
			t.Fatalf("attempt %d: delay %v <= 0 (overflowed shift)", attempt, d)
		}
		if d > max {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d, max)
		}
	}
}

func TestBackoffDelayGrowsThenClamps(t *testing.T) {
	base := 20 * time.Millisecond
	max := 10 * time.Second
	if got := backoffDelay(base, 0, 1.0, max); got != base {
		t.Fatalf("attempt 0 = %v, want %v", got, base)
	}
	if got := backoffDelay(base, 3, 1.0, max); got != 8*base {
		t.Fatalf("attempt 3 = %v, want %v", got, 8*base)
	}
	// 20ms * 2^10 = ~20.5s > max: clamp.
	if got := backoffDelay(base, 10, 1.0, max); got != max {
		t.Fatalf("attempt 10 = %v, want clamp to %v", got, max)
	}
	// Jitter scales below the clamp.
	lo := backoffDelay(base, 2, 0.5, max)
	hi := backoffDelay(base, 2, 1.5, max)
	if lo >= hi {
		t.Fatalf("jitter not applied: lo %v >= hi %v", lo, hi)
	}
}

func TestParseRetryAfterDeltaSeconds(t *testing.T) {
	now := time.Now()
	d, ok := parseRetryAfter("7", now)
	if !ok || d != 7*time.Second {
		t.Fatalf("delta-seconds: got (%v, %v), want (7s, true)", d, ok)
	}
	if _, ok := parseRetryAfter("-3", now); ok {
		t.Fatal("negative delta-seconds should be rejected")
	}
	if _, ok := parseRetryAfter("", now); ok {
		t.Fatal("empty header should be rejected")
	}
	if _, ok := parseRetryAfter("soon", now); ok {
		t.Fatal("garbage should be rejected")
	}
}

// TestParseRetryAfterHTTPDate is the regression test for the
// Atoi-only parse: RFC 9110 §10.2.3 allows an HTTP-date, and servers
// that send one were silently ignored.
func TestParseRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 8, 17, 0, 0, 0, time.UTC)
	hdr := now.Add(42 * time.Second).UTC().Format(time.RFC1123)
	// RFC1123 formats UTC as "UTC"; the wire format wants "GMT".
	hdr = hdr[:len(hdr)-3] + "GMT"
	d, ok := parseRetryAfter(hdr, now)
	if !ok {
		t.Fatalf("HTTP-date %q not parsed", hdr)
	}
	if d != 42*time.Second {
		t.Fatalf("HTTP-date hint = %v, want 42s", d)
	}
	// A date in the past means "retry now", not a negative wait.
	past := now.Add(-time.Hour).UTC().Format(time.RFC1123)
	past = past[:len(past)-3] + "GMT"
	if d, ok := parseRetryAfter(past, now); !ok || d != 0 {
		t.Fatalf("past HTTP-date = (%v, %v), want (0, true)", d, ok)
	}
}

// TestRetryDelayCapsBogusHint: a far-future HTTP-date (or huge
// delta-seconds) must not park the goroutine past the request timeout.
func TestRetryDelayCapsBogusHint(t *testing.T) {
	now := time.Now()
	cap := 5 * time.Second
	d := retryDelay(20*time.Millisecond, 0, 1.0, "86400", now, cap)
	if d != cap {
		t.Fatalf("huge delta-seconds hint: delay %v, want cap %v", d, cap)
	}
	far := now.Add(48 * time.Hour).UTC().Format(time.RFC1123)
	far = far[:len(far)-3] + "GMT"
	d = retryDelay(20*time.Millisecond, 0, 1.0, far, now, cap)
	if d != cap {
		t.Fatalf("far-future HTTP-date hint: delay %v, want cap %v", d, cap)
	}
	// And the hint still wins over a smaller backoff when reasonable.
	d = retryDelay(20*time.Millisecond, 0, 1.0, "2", now, cap)
	if d != 2*time.Second {
		t.Fatalf("reasonable hint: delay %v, want 2s", d)
	}
}
