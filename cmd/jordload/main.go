// Command jordload drives a running jordd with open-loop Poisson traffic —
// the same arrival model the simulator's load generator uses — and reports
// client-observed latency percentiles and status counts.
//
// Open loop means arrivals are scheduled by the Poisson process alone:
// slow responses do not slow the offered load, so saturation shows up as
// latency growth and 429s rather than a silently reduced request rate.
//
// Usage:
//
//	jordload [-addr 127.0.0.1:8034] [-fn echo] [-rps 100] [-duration 10s]
//	         [-payload hello] [-timeout 5s] [-abandon 0] [-seed 1]
//
// -abandon cancels that fraction of requests mid-flight (after a random
// delay up to half the client timeout) — impatient clients hanging up.
// The server answers those with 499 if the gateway notices in time;
// either way its /statsz Canceled counter should account for them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"jord/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jordload: ")

	var (
		addr     = flag.String("addr", "127.0.0.1:8034", "jordd host:port")
		fn       = flag.String("fn", "echo", "function to invoke")
		rps      = flag.Float64("rps", 100, "offered load in requests/second (open loop)")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		payload  = flag.String("payload", "hello", "request payload")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		abandon  = flag.Float64("abandon", 0, "fraction of requests canceled mid-flight [0,1]")
		seed     = flag.Uint64("seed", 1, "arrival-process seed")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jordload: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *rps <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "jordload: -rps and -duration must be positive")
		flag.Usage()
		os.Exit(2)
	}
	if *abandon < 0 || *abandon > 1 {
		fmt.Fprintln(os.Stderr, "jordload: -abandon must be in [0,1]")
		flag.Usage()
		os.Exit(2)
	}

	url := fmt.Sprintf("http://%s/invoke/%s", *addr, *fn)
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
		},
	}

	var (
		hist      metrics.Histogram // client-observed latency, ns (2xx only)
		mu        sync.Mutex
		statuses  = make(map[int]uint64)
		netErrs   uint64
		abandoned uint64
		sent      uint64
		inflight  sync.WaitGroup
	)
	// fire sends one request; abandonAfter > 0 cancels it after that delay
	// (the client walks away; the runtime finds out via the closed
	// connection / expired gateway context).
	fire := func(abandonAfter time.Duration) {
		defer inflight.Done()
		ctx := context.Background()
		if abandonAfter > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithCancel(ctx)
			defer cancel()
			stop := time.AfterFunc(abandonAfter, cancel)
			defer stop.Stop()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(*payload))
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			mu.Lock()
			if errors.Is(err, context.Canceled) {
				abandoned++
			} else {
				netErrs++
			}
			mu.Unlock()
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			hist.Record(time.Since(t0).Nanoseconds())
		}
		mu.Lock()
		statuses[resp.StatusCode]++
		mu.Unlock()
	}

	log.Printf("offering %.0f rps of %q to %s for %v", *rps, *fn, url, *duration)
	rng := rand.New(rand.NewSource(int64(*seed)))
	start := time.Now()
	next := start
	for {
		// Exponential inter-arrival gap: Poisson arrivals at -rps.
		next = next.Add(time.Duration(rng.ExpFloat64() / *rps * float64(time.Second)))
		if next.Sub(start) > *duration {
			break
		}
		time.Sleep(time.Until(next))
		sent++
		// The abandonment decision (and its delay) is drawn here, on the
		// arrival goroutine, so the run is reproducible from -seed.
		var abandonAfter time.Duration
		if *abandon > 0 && rng.Float64() < *abandon {
			abandonAfter = time.Duration(rng.Float64() * float64(*timeout) / 2)
			if abandonAfter <= 0 {
				abandonAfter = time.Millisecond
			}
		}
		inflight.Add(1)
		go fire(abandonAfter)
	}
	inflight.Wait()
	elapsed := time.Since(start)

	snap := hist.Snapshot()
	fmt.Printf("\nsent            %d (offered %.1f rps over %v)\n", sent, float64(sent)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	fmt.Printf("ok              %d (achieved %.1f rps)\n", snap.Count, float64(snap.Count)/elapsed.Seconds())
	codes := make([]int, 0, len(statuses))
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("status %d      %d\n", c, statuses[c])
	}
	if abandoned > 0 {
		fmt.Printf("abandoned       %d (canceled client-side)\n", abandoned)
	}
	if netErrs > 0 {
		fmt.Printf("network errors  %d\n", netErrs)
	}
	if snap.Count > 0 {
		fmt.Printf("latency (ms)    p50 %.3f   p99 %.3f   p99.9 %.3f   mean %.3f   max %.3f\n",
			float64(snap.P50)/1e6, float64(snap.P99)/1e6, float64(snap.P999)/1e6,
			snap.Mean/1e6, float64(snap.Max)/1e6)
	}
}
