// Command jordload drives a running jordd with open-loop Poisson traffic —
// the same arrival model the simulator's load generator uses — and reports
// client-observed latency percentiles and status counts.
//
// Open loop means arrivals are scheduled by the Poisson process alone:
// slow responses do not slow the offered load, so saturation shows up as
// latency growth and 429s rather than a silently reduced request rate.
//
// Usage:
//
//	jordload [-addr 127.0.0.1:8034] [-fn echo] [-rps 100] [-duration 10s]
//	         [-payload hello] [-mix none] [-users 64] [-timeout 5s]
//	         [-abandon 0] [-seed 1]
//	         [-retries 0] [-retry-budget 0.2] [-retry-base 20ms] [-idem]
//	         [-max-p99 0] [-min-ok 0] [-baseline-rps 0] [-trace]
//
// With -trace, jordload pulls the server's /tracez after the run and
// prints per-stage latency attribution (parse/admit/queue/exec/...) plus
// the slowest retained traces — pinpointing WHERE a slow p99 was spent.
//
// After the run jordload queries the server's /varz for its core and
// executor counts and prints a per-core throughput summary: achieved ok
// rps divided by the executors the server actually has cores for. With
// -baseline-rps (the measured single-core throughput, e.g. from the
// scaling curve in BENCH_live.json) it also prints scaling efficiency —
// achieved / (baseline x effective cores) — turning any load run into a
// multicore scaling check against a known 1-core reference.
//
// -mix social replaces the single -fn/-payload stream with the stateful
// social-network mix jordd deploys over the shared-state tier: 60%
// social.timeline reads, 25% social.post, 10% social.follow, 5%
// social.profile, over a Zipf-skewed population of -users users (hot users
// concentrate reads, so the store's global-RO promotion path lights up).
// The per-arrival draw comes from -seed, so a run is reproducible.
//
// -abandon cancels that fraction of requests mid-flight (after a random
// delay up to half the client timeout) — impatient clients hanging up.
// The server answers those with 499 if the gateway notices in time;
// either way its /statsz Canceled counter should account for them.
//
// Shed responses (429/503) may be retried with -retries > 0: jittered
// exponential backoff from -retry-base, never sooner than the server's
// Retry-After hint, and globally capped by -retry-budget — retries stop
// once they exceed that fraction of requests sent, so a storm of sheds
// cannot amplify itself into more offered load (the retry-budget rule
// from SRE practice).
//
// -max-p99 and -min-ok turn the run into a pass/fail smoke check: exit 1
// if the ok-latency p99 exceeds the bound or fewer requests succeeded.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/cliutil"
	"jord/internal/metrics"
	"jord/internal/server/gateway"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jordload: ")

	var (
		addr        = flag.String("addr", "127.0.0.1:8034", "jordd host:port")
		fn          = flag.String("fn", "echo", "function to invoke")
		rps         = flag.Float64("rps", 100, "offered load in requests/second (open loop)")
		duration    = flag.Duration("duration", 10*time.Second, "load duration")
		payload     = flag.String("payload", "hello", "request payload")
		mix         = cliutil.NewChoice("none", "none", "social")
		users       = cliutil.NewNonNegInt(64)
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		abandon     = flag.Float64("abandon", 0, "fraction of requests canceled mid-flight [0,1]")
		seed        = flag.Uint64("seed", 1, "arrival-process seed")
		retries     = flag.Int("retries", 0, "max retries per request on 429/503")
		retryBudget = flag.Float64("retry-budget", 0.2, "global retry cap as a fraction of requests sent")
		retryBase   = flag.Duration("retry-base", 20*time.Millisecond, "backoff base; attempt n waits ~base*2^n, jittered")
		tracez      = flag.Bool("trace", false, "after the run, pull the server's /tracez and print stage attribution")
		idem        = flag.Bool("idem", false, "stamp a stable X-Jord-Idempotency-Key per logical request, so retries replay server-side instead of re-executing")
		maxP99      = flag.Duration("max-p99", 0, "fail the run if ok-latency p99 exceeds this (0 = off)")
		minOK       = flag.Uint64("min-ok", 0, "fail the run if fewer requests succeed (0 = off)")
		baseline    = flag.Float64("baseline-rps", 0, "measured 1-core throughput for the scaling-efficiency summary (0 = skip)")
	)
	flag.Var(mix, "mix", "workload mix: none (single -fn) or social (stateful social-network mix)")
	flag.Var(users, "users", "user-population size for -mix social")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jordload: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *rps <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "jordload: -rps and -duration must be positive")
		flag.Usage()
		os.Exit(2)
	}
	if *abandon < 0 || *abandon > 1 {
		fmt.Fprintln(os.Stderr, "jordload: -abandon must be in [0,1]")
		flag.Usage()
		os.Exit(2)
	}
	if *retries < 0 || *retryBudget < 0 {
		fmt.Fprintln(os.Stderr, "jordload: -retries and -retry-budget must be non-negative")
		flag.Usage()
		os.Exit(2)
	}

	if mix.Value() == "social" && users.Value() < 2 {
		fmt.Fprintln(os.Stderr, "jordload: -mix social wants -users >= 2")
		flag.Usage()
		os.Exit(2)
	}

	invokeURL := func(fn string) string {
		return fmt.Sprintf("http://%s/invoke/%s", *addr, fn)
	}
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
		},
	}

	var (
		hist     metrics.Histogram // client-observed latency, ns (2xx only, includes retry waits)
		mu       sync.Mutex
		statuses = make(map[int]uint64)
		netErrs  uint64
		inflight sync.WaitGroup

		// Status classes and retry accounting (atomics: fire goroutines).
		ok2xx, shed429, closed499, shed503, other atomic.Uint64
		abandoned                                 atomic.Uint64
		sent                                      atomic.Uint64
		retriesIssued                             atomic.Uint64
		retriedOK                                 atomic.Uint64 // succeeded after >= 1 retry
	)
	countClass := func(status int) {
		switch {
		case status >= 200 && status < 300:
			ok2xx.Add(1)
		case status == http.StatusTooManyRequests:
			shed429.Add(1)
		case status == 499:
			closed499.Add(1)
		case status == http.StatusServiceUnavailable:
			shed503.Add(1)
		default:
			other.Add(1)
		}
	}
	// retryAllowed enforces the global budget: total retries stay under
	// -retry-budget x requests sent so far. Checked per retry, so the cap
	// tracks the live run, not a final tally.
	retryAllowed := func() bool {
		return float64(retriesIssued.Load()+1) <= *retryBudget*float64(sent.Load())
	}

	// fire sends one request (with retries); abandonAfter > 0 cancels it
	// after that delay (the client walks away; the runtime finds out via
	// the closed connection / expired gateway context).
	var idemSeq atomic.Uint64
	fire := func(url, payload string, abandonAfter time.Duration) {
		defer inflight.Done()
		ctx := context.Background()
		if abandonAfter > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithCancel(ctx)
			defer cancel()
			stop := time.AfterFunc(abandonAfter, cancel)
			defer stop.Stop()
		}
		// One key for ALL attempts of this logical request: a retry that
		// races a late completion replays the recorded answer.
		var idemKey string
		if *idem {
			idemKey = fmt.Sprintf("jordload-%d-%d", *seed, idemSeq.Add(1))
		}
		t0 := time.Now()
		for attempt := 0; ; attempt++ {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(payload))
			if err != nil {
				log.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/octet-stream")
			if idemKey != "" {
				req.Header.Set(gateway.IdempotencyKeyHeader, idemKey)
			}
			resp, err := client.Do(req)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					abandoned.Add(1)
				} else {
					mu.Lock()
					netErrs++
					mu.Unlock()
				}
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status := resp.StatusCode
			countClass(status)
			mu.Lock()
			statuses[status]++
			mu.Unlock()
			if status == http.StatusOK {
				hist.Record(time.Since(t0).Nanoseconds())
				if attempt > 0 {
					retriedOK.Add(1)
				}
				return
			}
			// Only shed responses are retryable — they are explicit "try
			// again later", unlike 4xx/5xx semantics.
			if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
				return
			}
			if attempt >= *retries || abandonAfter > 0 || !retryAllowed() {
				return
			}
			retriesIssued.Add(1)
			// Jittered exponential backoff, never sooner than the server's
			// Retry-After hint (delta-seconds or HTTP-date form), and never
			// longer than the client timeout — a bogus hint must not stall
			// this goroutine. rand's global source is goroutine-safe.
			delay := retryDelay(*retryBase, attempt, 0.5+rand.Float64(),
				resp.Header.Get("Retry-After"), time.Now(), *timeout)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				abandoned.Add(1)
				return
			}
		}
	}

	rng := rand.New(rand.NewSource(int64(*seed)))

	// draw picks the next request. The single-function mode always returns
	// (-fn, -payload); the social mix draws a weighted operation over a
	// Zipf-skewed user population (hot users get most of the traffic, so
	// their timelines/profiles cross the store's promotion threshold).
	draw := func() (string, string) { return *fn, *payload }
	if mix.Value() == "social" {
		draw = newSocialMix(rng, users.Value()).draw
		log.Printf("offering %.0f rps of the social mix (%d users) to %s for %v",
			*rps, users.Value(), *addr, *duration)
	} else {
		log.Printf("offering %.0f rps of %q to %s for %v", *rps, *fn, invokeURL(*fn), *duration)
	}

	start := time.Now()
	next := start
	for {
		// Exponential inter-arrival gap: Poisson arrivals at -rps.
		next = next.Add(time.Duration(rng.ExpFloat64() / *rps * float64(time.Second)))
		if next.Sub(start) > *duration {
			break
		}
		time.Sleep(time.Until(next))
		sent.Add(1)
		// The abandonment decision (and its delay) is drawn here, on the
		// arrival goroutine, so the run is reproducible from -seed.
		var abandonAfter time.Duration
		if *abandon > 0 && rng.Float64() < *abandon {
			abandonAfter = time.Duration(rng.Float64() * float64(*timeout) / 2)
			if abandonAfter <= 0 {
				abandonAfter = time.Millisecond
			}
		}
		reqFn, reqPayload := draw()
		inflight.Add(1)
		go fire(invokeURL(reqFn), reqPayload, abandonAfter)
	}
	inflight.Wait()
	elapsed := time.Since(start)

	snap := hist.Snapshot()
	nSent := sent.Load()
	fmt.Printf("\nsent            %d (offered %.1f rps over %v)\n", nSent, float64(nSent)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	fmt.Printf("ok              %d (achieved %.1f rps)\n", snap.Count, float64(snap.Count)/elapsed.Seconds())
	fmt.Printf("classes         2xx %d   429 %d   499 %d   503 %d   other %d\n",
		ok2xx.Load(), shed429.Load(), closed499.Load(), shed503.Load(), other.Load())
	fmt.Printf("shed            %d (429+503 responses)\n", shed429.Load()+shed503.Load())
	if *retries > 0 {
		fmt.Printf("retries         %d issued, %d requests recovered by retry\n",
			retriesIssued.Load(), retriedOK.Load())
	}
	codes := make([]int, 0, len(statuses))
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("status %d      %d\n", c, statuses[c])
	}
	if n := abandoned.Load(); n > 0 {
		fmt.Printf("abandoned       %d (canceled client-side)\n", n)
	}
	if netErrs > 0 {
		fmt.Printf("network errors  %d\n", netErrs)
	}
	if snap.Count > 0 {
		fmt.Printf("latency (ms)    p50 %.3f   p99 %.3f   p99.9 %.3f   mean %.3f   max %.3f\n",
			float64(snap.P50)/1e6, float64(snap.P99)/1e6, float64(snap.P999)/1e6,
			snap.Mean/1e6, float64(snap.Max)/1e6)
	}
	printCoreSummary(client, *addr, float64(snap.Count)/elapsed.Seconds(), *baseline)
	if *tracez {
		filter := *fn
		if mix.Value() != "none" {
			filter = "" // the mix spreads over many functions: show them all
		}
		printTraceSummary(client, *addr, filter)
	}

	// Smoke-check assertions for CI.
	failed := false
	if *maxP99 > 0 && snap.Count > 0 && time.Duration(snap.P99) > *maxP99 {
		log.Printf("FAIL: p99 %.3fms exceeds -max-p99 %v", float64(snap.P99)/1e6, *maxP99)
		failed = true
	}
	if *maxP99 > 0 && snap.Count == 0 {
		log.Printf("FAIL: -max-p99 set but no request succeeded")
		failed = true
	}
	if *minOK > 0 && snap.Count < *minOK {
		log.Printf("FAIL: %d ok responses, -min-ok wants >= %d", snap.Count, *minOK)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// printTraceSummary pulls the server's /tracez and prints where the time
// went: per-stage p50/p99/avg across every traced invocation, then the
// slowest retained traces with their stage breakdowns — the server-side
// answer to "the client saw a slow p99; which stage caused it?".
func printTraceSummary(client *http.Client, addr, fn string) {
	url := fmt.Sprintf("http://%s/tracez", addr)
	if fn != "" {
		url += "?fn=" + fn
	}
	resp, err := client.Get(url)
	if err != nil {
		log.Printf("trace summary unavailable (/tracez: %v)", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Printf("trace summary unavailable (/tracez: %s)", resp.Status)
		return
	}
	var doc struct {
		Stages []struct {
			Stage string `json:"stage"`
			Count uint64 `json:"count"`
			AvgNS int64  `json:"avg_ns"`
			P50NS int64  `json:"p50_ns"`
			P99NS int64  `json:"p99_ns"`
		} `json:"stages"`
		Slow []struct {
			Func  string `json:"func"`
			Spans []struct {
				Outcome string           `json:"outcome"`
				DurNS   int64            `json:"dur_ns"`
				Stages  map[string]int64 `json:"stages"`
				OtherNS int64            `json:"other_ns"`
			} `json:"spans"`
		} `json:"slow"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		log.Printf("trace summary unavailable (/tracez decode: %v)", err)
		return
	}
	if len(doc.Stages) == 0 {
		fmt.Printf("\ntrace           no spans recorded\n")
		return
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Printf("\nserver stages   %-9s %10s %12s %12s %12s\n", "stage", "count", "avg ms", "p50 ms", "p99 ms")
	for _, st := range doc.Stages {
		fmt.Printf("                %-9s %10d %12.4f %12.4f %12.4f\n",
			st.Stage, st.Count, ms(st.AvgNS), ms(st.P50NS), ms(st.P99NS))
	}
	for _, fs := range doc.Slow {
		for _, sp := range fs.Spans {
			if sp.DurNS <= 0 {
				continue
			}
			var parts []string
			for _, stage := range []string{"parse", "admit", "queue", "init", "exec", "wait", "state", "teardown", "resp"} {
				if d, ok := sp.Stages[stage]; ok && d > 0 {
					parts = append(parts, fmt.Sprintf("%s %.0f%%", stage, 100*float64(d)/float64(sp.DurNS)))
				}
			}
			if sp.OtherNS > 0 {
				parts = append(parts, fmt.Sprintf("other %.0f%%", 100*float64(sp.OtherNS)/float64(sp.DurNS)))
			}
			fmt.Printf("slowest %-8s %8.3fms %-8s %s\n", fs.Func, ms(sp.DurNS), sp.Outcome, strings.Join(parts, "  "))
		}
	}
}

// printCoreSummary asks the server (via /varz) how many cores and
// executors it runs, then reports the achieved throughput per core and —
// when a 1-core baseline is supplied — the scaling efficiency relative to
// it. The denominator is min(executors, num_cpu): executors beyond the
// machine's cores add no parallelism and must not flatter the number.
func printCoreSummary(client *http.Client, addr string, okRPS, baselineRPS float64) {
	resp, err := client.Get(fmt.Sprintf("http://%s/varz", addr))
	if err != nil {
		log.Printf("core summary unavailable (/varz: %v)", err)
		return
	}
	defer resp.Body.Close()
	var vz struct {
		NumCPU     int `json:"num_cpu"`
		GOMAXPROCS int `json:"gomaxprocs"`
		Executors  int `json:"executors"`
		Orch       int `json:"orchestrators"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vz); err != nil || vz.Executors == 0 {
		log.Printf("core summary unavailable (/varz decode: %v)", err)
		return
	}
	effCores := vz.Executors
	if vz.NumCPU > 0 && effCores > vz.NumCPU {
		effCores = vz.NumCPU
	}
	fmt.Printf("server          %d executors / %d orchestrators, %d CPUs (GOMAXPROCS %d)\n",
		vz.Executors, vz.Orch, vz.NumCPU, vz.GOMAXPROCS)
	fmt.Printf("per-core        %.1f ok rps per core (%.1f ok rps over %d effective cores)\n",
		okRPS/float64(effCores), okRPS, effCores)
	if baselineRPS > 0 {
		eff := okRPS / (baselineRPS * float64(effCores))
		fmt.Printf("scaling         %.2f efficiency vs 1-core baseline %.0f rps (speedup %.2fx over %d cores)\n",
			eff, baselineRPS, okRPS/baselineRPS, effCores)
	}
}
