package main

import (
	"fmt"
	"math/rand"
)

// socialMix draws the stateful social-network operation stream: 60%
// social.timeline reads, 25% social.post, 10% social.follow, 5%
// social.profile, over a Zipf-skewed population of users. One rng drives
// every draw, so a run is reproducible from -seed.
type socialMix struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	users int
}

func newSocialMix(rng *rand.Rand, users int) *socialMix {
	return &socialMix{
		rng:   rng,
		zipf:  rand.NewZipf(rng, 1.2, 1, uint64(users-1)),
		users: users,
	}
}

func (m *socialMix) user() string {
	return fmt.Sprintf("u%d", m.zipf.Uint64())
}

// draw picks the next (function, payload) pair. Follows are always
// between DISTINCT users: the follower redraws flat until the pair
// differs (the old "redraw flat once" could re-collide — rng.Intn can
// return the same user again — so self-follows still reached
// social.follow). With users >= 2 (enforced at flag parse) the loop
// terminates with probability 1 and in ~users/(users-1) expected draws.
func (m *socialMix) draw() (fn, payload string) {
	u := m.user()
	switch r := m.rng.Float64(); {
	case r < 0.60:
		return "social.timeline", u
	case r < 0.85:
		return "social.post", fmt.Sprintf("%s musing %d about single-address-space serverless", u, m.rng.Intn(1_000_000))
	case r < 0.95:
		v := m.user()
		for v == u {
			v = fmt.Sprintf("u%d", m.rng.Intn(m.users))
		}
		return "social.follow", u + " " + v
	default:
		return "social.profile", u
	}
}
