// Command jordsim regenerates the paper's tables and figures.
//
// Usage:
//
//	jordsim -experiment table4
//	jordsim -experiment fig9 [-workload hipster] [-scale full]
//	jordsim -experiment fig10|fig11|fig12|fig13|fig14|overheads|params|all
//
// Output is a plain-text rendering of the corresponding table/figure
// (rows and series, not graphics), with the paper's reported values shown
// alongside where applicable.
package main

import (
	"flag"
	"fmt"
	"os"

	"jord/internal/cliutil"
	"jord/internal/experiments"
	"jord/internal/sim/topo"
)

func main() {
	var (
		experiment = cliutil.NewChoice("all",
			"table4", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
			"overheads", "motivation", "coldstart", "dispatch", "mpk",
			"cluster", "params", "all")
		workload  = cliutil.NewChoice("", "", "hipster", "hotel", "media", "social")
		scaleName = cliutil.NewChoice("quick", "quick", "full")
		seed      = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Var(experiment, "experiment", experiment.Allowed())
	flag.Var(workload, "workload", "restrict fig9 to one workload ("+workload.Allowed()+")")
	flag.Var(scaleName, "scale", "measurement scale: "+scaleName.Allowed())
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jordsim: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	sc := experiments.Quick
	if scaleName.Value() == "full" {
		sc = experiments.Full
	}

	run := func(name string) error {
		switch name {
		case "table4":
			r, err := experiments.RunTable4()
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "fig9":
			r, err := experiments.RunFig9(sc, workload.Value(), *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "fig10":
			r, err := experiments.RunFig10(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "fig11":
			r, err := experiments.RunFig11(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "fig12":
			r, err := experiments.RunFig12(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "fig13":
			r, err := experiments.RunFig13(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "fig14":
			r, err := experiments.RunFig14(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "overheads":
			r, err := experiments.RunOverheads(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "motivation":
			r, err := experiments.RunMotivation()
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "coldstart":
			r, err := experiments.RunColdStart()
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "dispatch":
			r, err := experiments.RunDispatchAblation(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "mpk":
			r, err := experiments.RunMPKComparison(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "cluster":
			r, err := experiments.RunCluster(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "params":
			printParams()
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{experiment.Value()}
	if experiment.Value() == "all" {
		names = []string{
			"params", "motivation", "coldstart", "table4",
			"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
			"overheads", "dispatch", "mpk", "cluster",
		}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "jordsim: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// printParams echoes the Table 2 machine parameters in use.
func printParams() {
	cfg := topo.QFlex32()
	fmt.Println("Table 2: system parameters for simulation")
	fmt.Printf("  cores          %d (%dx%d mesh, %d socket)\n",
		cfg.TotalCores(), cfg.MeshX, cfg.MeshY, cfg.Sockets)
	fmt.Printf("  clock          %.0f GHz\n", cfg.FreqGHz)
	fmt.Printf("  L1             %d-cycle\n", cfg.L1Cycles)
	fmt.Printf("  LLC            %d-cycle/slice, directory-based MESI\n", cfg.LLCCycles)
	fmt.Printf("  NoC            %d cycles/hop, %d B links\n", cfg.HopCycles, cfg.LinkBytes)
	fmt.Printf("  DRAM           %d cycles at the controller, %d MCs\n", cfg.DRAMCycles, cfg.MemControllers)
	fmt.Printf("  inter-socket   %.0f ns\n", cfg.InterSocketNS)
	fmt.Println()
}
