// Socialnet deploys the DeathStarBench-style social-network workload on a
// 32-core Jord worker server, drives it with an open-loop Poisson load,
// and reports the latency profile and the per-function service-time
// breakdown — a miniature of the paper's Figures 9-11 for one workload.
// Run it with:
//
//	go run ./examples/socialnet [-mrps 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"jord"
)

func main() {
	mrps := flag.Float64("mrps", 0.5, "offered load in millions of requests/second")
	flag.Parse()

	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	w, err := jord.BuildWorkload("social", sys, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("social network on %d cores (%d orchestrators, %d executors), %.2f MRPS offered\n",
		sys.M.Cfg.TotalCores(), len(sys.Orchs), len(sys.Execs), *mrps)

	res := sys.RunLoad(jord.LoadSpec{
		RPS:     *mrps * 1e6,
		Warmup:  500,
		Measure: 5000,
		Root:    w.Selector(),
	})

	freq := sys.M.Cfg.FreqGHz
	fmt.Printf("\ncompleted %d requests at %.2f MRPS\n", res.Completed, res.MeasuredRPS(freq)/1e6)
	fmt.Printf("request latency: p50 %6.1f us   p99 %6.1f us   p99.9 %6.1f us\n",
		float64(res.Latency.Percentile(50))/1000,
		float64(res.Latency.Percentile(99))/1000,
		float64(res.Latency.Percentile(99.9))/1000)
	fmt.Printf("service time:    p50 %6.1f us   p99 %6.1f us   max   %6.1f us\n",
		float64(res.ServiceTime.Percentile(50))/1000,
		float64(res.ServiceTime.Percentile(99))/1000,
		float64(res.ServiceTime.Max())/1000)

	fmt.Printf("\nper-function breakdown (ns/invocation):\n")
	fmt.Printf("%-28s %8s %10s %10s %8s %8s %8s\n",
		"function", "count", "exec", "isolation", "alloc", "dispatch", "comm")
	for fn := jord.FuncID(0); int(fn) < 32; fn++ {
		fs, ok := res.PerFunc[fn]
		if !ok || fs.Count == 0 {
			continue
		}
		bd := res.MeanBreakdown(fn, freq)
		fmt.Printf("%-28s %8d %10.0f %10.0f %8.0f %8.0f %8.0f\n",
			fs.Name, fs.Count, bd.Exec, bd.Isolation, bd.Alloc, bd.Dispatch, bd.Comm)
	}
	fmt.Printf("\noverall overhead fraction (isolation+dispatch over busy time): %.1f%%\n",
		res.OverheadFraction()*100)
}
