// Quickstart mirrors the paper's Listing 1: a source function that
// invokes two target functions — one asynchronously, one synchronously —
// shares data with them zero-copy through ArgBufs, and allocates a
// scratch VMA with POSIX-style mmap/munmap. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jord"
)

func main() {
	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Tgt1 and Tgt2 are ordinary short-running functions.
	tgt1 := sys.MustRegister("Tgt1", func(c *jord.Ctx) error {
		c.ExecNS(400) // process r1->in, produce r1->out
		return nil
	})
	tgt2 := sys.MustRegister("Tgt2", func(c *jord.Ctx) error {
		c.ExecNS(650)
		return nil
	})

	// SrcFunc follows Listing 1: async(Tgt1), call(Tgt2), wait, then a
	// dynamic VMA allocation for the output post-processing.
	src := sys.MustRegister("SrcFunc", func(c *jord.Ctx) error {
		c.ExecNS(300) // pre(req->in1), pre(req->in2)

		// int c = jord::async(Tgt1, r1);
		cookie, err := c.Async(tgt1, 2)
		if err != nil {
			return err
		}
		// if ((r = jord::call(Tgt2, r2))) return r;
		if err := c.Call(tgt2, 2); err != nil {
			return err
		}
		// if ((r = jord::wait(c))) return r;
		if err := c.Wait(cookie); err != nil {
			return err
		}

		// void *buf = mmap(0, 0x1000, PROT_RW, 0, 0, 0);
		buf, err := c.Mmap(0x1000, jord.PermRW)
		if err != nil {
			return err
		}
		c.ExecNS(250) // req->out = post(buf, r1->out, r2->out)
		// munmap(buf, 0x1000);
		return c.Munmap(buf)
	})

	req := sys.RunOnce(src, 8)
	if req == nil || req.Trace.Exec == 0 {
		log.Fatal("request did not complete")
	}

	freq := sys.M.Cfg.FreqGHz
	ns := func(cycles int64) float64 { return float64(cycles) / freq }
	fmt.Println("SrcFunc completed through Jord's single-address-space runtime")
	fmt.Printf("  execution   %8.0f ns\n", ns(int64(req.Trace.Exec)))
	fmt.Printf("  isolation   %8.0f ns  (PD lifecycle + permission transfers)\n", ns(int64(req.Trace.Isolation)))
	fmt.Printf("  allocation  %8.0f ns  (stack/heap/ArgBuf VMAs)\n", ns(int64(req.Trace.Alloc)))
	fmt.Printf("  dispatch    %8.0f ns  (JBSQ orchestrator)\n", ns(int64(req.Trace.Dispatch)))
	fmt.Printf("  zero-copy   %8.0f ns  (ArgBuf coherence transfers)\n", ns(int64(req.Trace.Comm)))
	fmt.Println("\nAll three functions ran in isolated protection domains; the two")
	fmt.Println("nested invocations shared their ArgBufs by permission transfer,")
	fmt.Println("with no data copies and no OS involvement.")
}
