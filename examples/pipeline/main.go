// Pipeline builds a four-stage data-processing chain (ingest -> parse ->
// enrich -> store) where each stage hands a sizeable buffer to the next,
// and contrasts Jord's zero-copy permission transfers with the NightCore
// baseline's serialize/copy/pipe path — the data-flow overhead of §2.1
// made concrete. Run it with:
//
//	go run ./examples/pipeline [-kb 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"jord"
)

func main() {
	kb := flag.Int("kb", 16, "payload handed between stages (KiB)")
	flag.Parse()
	blocks := *kb * 1024 / 64

	fmt.Printf("four-stage pipeline, %d KiB handed stage-to-stage\n\n", *kb)
	fmt.Printf("%-12s %16s %16s %14s\n", "system", "latency (us)", "data-path (us)", "throughput*")
	jordLat, jordComm, jordTput := run(false, blocks)
	ncLat, ncComm, ncTput := run(true, blocks)
	fmt.Printf("%-12s %16.2f %16.2f %11.2f MRPS\n", "jord", jordLat, jordComm, jordTput)
	fmt.Printf("%-12s %16.2f %16.2f %11.2f MRPS\n", "nightcore", ncLat, ncComm, ncTput)
	fmt.Printf("\n  latency advantage:   %.1fx\n", ncLat/jordLat)
	fmt.Printf("  data-path advantage: %.1fx\n", ncComm/jordComm)
	fmt.Println("\n*saturation throughput of the 32-core worker at this payload size.")
	fmt.Println("Jord's stages exchange the buffer by pmove-ing one VMA's permission")
	fmt.Println("(16 ns) plus cache-coherent pulls of only the lines actually read;")
	fmt.Println("NightCore serializes, copies through SysV shm, and crosses a pipe")
	fmt.Println("per hop.")
}

// run builds the pipeline on a fresh system and returns the single-request
// latency, its data-path (comm) share, and the saturation throughput.
func run(nightcore bool, blocks int) (latUS, commUS, tputMRPS float64) {
	build := func() (*jord.System, jord.FuncID) {
		cfg := jord.DefaultConfig()
		cfg.NightCore = nightcore
		sys, err := jord.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		store := sys.MustRegister("store", func(c *jord.Ctx) error {
			c.ExecNS(700)
			return nil
		})
		enrich := sys.MustRegister("enrich", func(c *jord.Ctx) error {
			c.ExecNS(900)
			return c.Call(store, blocks)
		})
		parse := sys.MustRegister("parse", func(c *jord.Ctx) error {
			c.ExecNS(1200)
			return c.Call(enrich, blocks)
		})
		ingest := sys.MustRegister("ingest", func(c *jord.Ctx) error {
			c.ExecNS(500)
			return c.Call(parse, blocks)
		})
		return sys, ingest
	}

	// Single-request latency on an idle system.
	sys, ingest := build()
	req := sys.RunOnce(ingest, blocks)
	if req == nil {
		log.Fatal("pipeline request did not complete")
	}
	freq := sys.M.Cfg.FreqGHz
	latUS = float64(sys.Eng.Now()-req.Arrival) / freq / 1000
	commUS = float64(req.Trace.Comm) / freq / 1000
	sys.Close()

	// Saturation throughput under heavy offered load.
	sys2, ingest2 := build()
	res := sys2.RunLoad(jord.LoadSpec{
		RPS: 40e6, Warmup: 300, Measure: 3000,
		Root: func() (jord.FuncID, int) { return ingest2, blocks },
	})
	tputMRPS = res.MeasuredRPS(freq) / 1e6
	sys2.Close()
	return latUS, commUS, tputMRPS
}
