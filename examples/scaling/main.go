// Scaling walks the machine configurations of the paper's §6.3 — 16 to
// 256 cores and a dual-socket system — and shows how dispatch latency
// explodes when a single orchestrator manages every executor across a
// socket boundary, and how per-socket orchestrators (the paper's design
// implication) flatten it. Run it with:
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"jord"
)

func main() {
	type point struct {
		name string
		cfg  jord.MachineConfig
	}
	points := []point{
		{"16-core", jord.MachineScale(16)},
		{"64-core", jord.MachineScale(64)},
		{"256-core", jord.MachineScale(256)},
		{"2-socket (2x128)", jord.MachineDualSocket256()},
	}

	fmt.Printf("%-18s %22s %22s\n", "machine", "single orchestrator", "per-socket orchestrators")
	fmt.Printf("%-18s %22s %22s\n", "", "mean dispatch (us)", "mean dispatch (us)")
	for _, pt := range points {
		single := measure(pt.cfg, true)
		multi := measure(pt.cfg, false)
		fmt.Printf("%-18s %22.3f %22.3f\n", pt.name, single/1000, multi/1000)
	}
	fmt.Println("\nThe single-orchestrator dispatch latency grows with mesh distance")
	fmt.Println("and jumps across the socket boundary (260 ns per crossing, paid")
	fmt.Println("many times per JBSQ scan); per-socket orchestrators keep every")
	fmt.Println("probe on-die, which is the paper's design implication for")
	fmt.Println("multi-socket and chiplet systems.")
}

func measure(machine jord.MachineConfig, singleOrch bool) float64 {
	cfg := jord.DefaultConfig()
	cfg.Machine = machine
	if singleOrch {
		cfg.NumOrchestrators = 1
		cfg.PerSocketOrchestrators = false
	}
	sys, err := jord.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w, err := jord.BuildWorkload("hipster", sys, 7)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.RunLoad(jord.LoadSpec{
		RPS:     30_000, // light load: measure distance, not queueing
		Warmup:  100,
		Measure: 1000,
		Root:    w.Selector(),
	})
	return res.DispatchNS.Mean()
}
