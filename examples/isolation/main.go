// Isolation demonstrates Jord's threat model (paper §3.1): attackers may
// forge arbitrary memory addresses, call PrivLib arbitrarily, and attempt
// to reach privileged state — and every such attempt raises a hardware
// fault. Run it with:
//
//	go run ./examples/isolation
package main

import (
	"errors"
	"fmt"
	"log"

	"jord"
)

func main() {
	sys, err := jord.NewSystem(jord.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	report := func(attack string, err error) {
		var f *jord.Fault
		switch {
		case err == nil:
			fmt.Printf("  %-52s NOT BLOCKED (!)\n", attack)
		case errors.As(err, &f):
			fmt.Printf("  %-52s blocked: %v fault\n", attack, f.Kind)
		default:
			fmt.Printf("  %-52s blocked: %v\n", attack, err)
		}
	}

	// A victim function leaks the addresses of its private memory, then
	// invokes the attacker while those VMAs are still live.
	var victimHeap, victimStack uint64
	attacker := sys.MustRegister("attacker", func(c *jord.Ctx) error {
		fmt.Println("attacker running inside its own protection domain:")
		report("read the victim's live heap", c.Load(victimHeap))
		report("write the victim's live stack", c.Store(victimStack))
		report("read the VMA table", c.Load(sys.Lib.TableVA))
		report("write the VMA table", c.Store(sys.Lib.TableVA))
		report("read PrivLib's heap", c.Load(sys.Lib.PrivHeapVA))
		report("load a wild forged pointer", c.Load(0xdead_beef_0000))
		report("load an unmapped Jord-region address", c.Load(sys.Lib.Enc.Encode(3, 12345)))
		report("write uatp/uatc/ucid CSRs", sys.Lib.WriteCSR(c.Core(), c.PD(), false))
		report("jump into PrivLib bypassing the uatg gate",
			sys.Lib.DirectJumpIntoPrivLib(c.Core(), c.PD()))

		// Legitimate accesses keep working.
		own, err := c.Mmap(256, jord.PermRW)
		if err != nil {
			return err
		}
		fmt.Println("\nlegitimate accesses from the same domain:")
		if err := firstErr(c.Store(own), c.Load(own)); err != nil {
			fmt.Printf("  %-52s wrongly blocked: %v\n", "read/write the attacker's own VMA", err)
		} else {
			fmt.Printf("  %-52s allowed, as expected\n", "read/write the attacker's own VMA")
		}
		return c.Munmap(own)
	})

	victim := sys.MustRegister("victim", func(c *jord.Ctx) error {
		victimHeap = c.HeapVA()
		victimStack = c.StackVA()
		return c.Call(attacker, 2)
	})

	req := sys.RunOnce(victim, 4)
	if req == nil {
		log.Fatal("run did not complete")
	}
	fmt.Println("\nEvery violation was caught by the VLB/VTW permission checks or")
	fmt.Println("the P-bit/uatg privilege machinery — no OS involvement, and the")
	fmt.Println("victim function was never disturbed.")
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
