// Package ipc models the OS inter-process communication primitives that
// traditional FaaS systems pay for every cross-function hop (paper §2.1):
// pipe syscalls, scheduler wakeups of blocked readers, SysV shared-memory
// copies, and serialization. NightCore — even the enhanced single-address-
// space variant the paper compares against — funnels every dispatch,
// nested call, and completion through these, which is precisely the
// overhead Jord's zero-copy permission transfers eliminate.
//
// Costs are split into a CPU component (occupies the calling core and
// therefore limits throughput) and a latency-only component (the time
// until a blocked peer runs, which inflates response time but not
// utilization).
package ipc

import (
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// Costs computes IPC latencies for one machine configuration.
type Costs struct {
	Cfg topo.Config
}

// Model constants, drawn from the measured ranges the paper's §2.1 cites
// (pipe round trips and copies put FaaS overhead at ~10-70% of execution
// time; NightCore spends ~microseconds per hop).
const (
	writeSyscallNS  = 450    // pipe write: user->kernel->user, copy to pipe buffer
	readSyscallNS   = 450    // pipe read when data is ready
	wakeupNS        = 1200   // scheduler wakeup of a blocked reader (futex/epoll path)
	threadSwitchNS  = 600    // voluntary context switch of a blocked worker thread
	serdeFixedNS    = 300    // serialization/deserialization fixed cost per message
	serdePerByteNS  = 0.02   // ~50 GB/s serializer
	memcpyPerByteNS = 0.0125 // ~80 GB/s memcpy through the cache hierarchy
	mallocNS        = 60     // heap allocation for a message buffer
)

// PipeSendCPU is the sender-side cost of one pipe message of n bytes.
func (c Costs) PipeSendCPU(n int) engine.Time {
	return c.Cfg.NSToCycles(writeSyscallNS + memcpyPerByteNS*float64(n))
}

// PipeRecvCPU is the receiver-side cost of reading an n-byte message that
// has already arrived.
func (c Costs) PipeRecvCPU(n int) engine.Time {
	return c.Cfg.NSToCycles(readSyscallNS + memcpyPerByteNS*float64(n))
}

// WakeupLatency is the extra latency before a blocked reader runs after
// data arrives. Latency-only: the waiting core is free to do other work.
func (c Costs) WakeupLatency() engine.Time {
	return c.Cfg.NSToCycles(wakeupNS)
}

// ThreadSwitch is the cost of a worker thread blocking (or being switched
// back in) — NightCore's analogue of cexit/center.
func (c Costs) ThreadSwitch() engine.Time {
	return c.Cfg.NSToCycles(threadSwitchNS)
}

// Serialize is the cost of encoding or decoding an n-byte payload.
func (c Costs) Serialize(n int) engine.Time {
	return c.Cfg.NSToCycles(serdeFixedNS + serdePerByteNS*float64(n))
}

// ShmCopy is one copy of n bytes through SysV shared memory.
func (c Costs) ShmCopy(n int) engine.Time {
	return c.Cfg.NSToCycles(memcpyPerByteNS * float64(n))
}

// Malloc is a message-buffer allocation.
func (c Costs) Malloc() engine.Time { return c.Cfg.NSToCycles(mallocNS) }

// --- Composite flows ---

// MessageSendCPU is a full message handoff on the sender: allocate,
// serialize, copy into shm, pipe-notify.
func (c Costs) MessageSendCPU(payload int) engine.Time {
	return c.Malloc() + c.Serialize(payload) + c.ShmCopy(payload) + c.PipeSendCPU(64)
}

// MessageRecvCPU is the receiver's work once notified: pipe read,
// copy out of shm, deserialize.
func (c Costs) MessageRecvCPU(payload int) engine.Time {
	return c.PipeRecvCPU(64) + c.ShmCopy(payload) + c.Serialize(payload)
}

// VanillaWorkerPrepNS is unoptimized NightCore's per-function worker
// preparation cost the paper quotes (§6.2: "NightCore takes 0.8 ms to
// prepare a worker process to execute a function"). The enhanced baseline
// does not pay it; it is exposed for the cold-start ablation.
const VanillaWorkerPrepNS = 800_000
