package ipc

import (
	"testing"

	"jord/internal/sim/topo"
)

func costs() Costs { return Costs{Cfg: topo.QFlex32()} }

func TestCostsArePositiveAndOrdered(t *testing.T) {
	c := costs()
	if c.PipeSendCPU(64) <= 0 || c.PipeRecvCPU(64) <= 0 || c.WakeupLatency() <= 0 {
		t.Fatal("non-positive IPC cost")
	}
	// Bigger payloads cost more.
	if c.ShmCopy(64*1024) <= c.ShmCopy(64) {
		t.Fatal("copy cost not monotone in size")
	}
	if c.Serialize(4096) <= c.Serialize(64) {
		t.Fatal("serialization not monotone in size")
	}
}

func TestPipeHopIsMicrosecondScale(t *testing.T) {
	// §2.1's motivating gap: one pipe hop (send + wakeup + recv) costs
	// microseconds where Jord's pmove costs ~16 ns.
	c := costs()
	hop := c.PipeSendCPU(64) + c.WakeupLatency() + c.PipeRecvCPU(64)
	ns := c.Cfg.CyclesToNS(hop)
	if ns < 1000 || ns > 10_000 {
		t.Fatalf("pipe hop = %.0f ns, want microsecond scale", ns)
	}
}

func TestMessageFlowDominatedBySyscalls(t *testing.T) {
	c := costs()
	small := c.MessageSendCPU(64) + c.MessageRecvCPU(64)
	big := c.MessageSendCPU(64*1024) + c.MessageRecvCPU(64*1024)
	if big <= small {
		t.Fatal("payload size must matter")
	}
	// For small messages, fixed costs dominate: doubling payload changes
	// little.
	double := c.MessageSendCPU(128) + c.MessageRecvCPU(128)
	if float64(double) > float64(small)*1.1 {
		t.Fatal("small messages should be syscall-dominated")
	}
}

func TestVanillaPrepDwarfsEnhancedPath(t *testing.T) {
	c := costs()
	enhanced := c.Cfg.CyclesToNS(c.MessageSendCPU(960) + c.WakeupLatency() + c.MessageRecvCPU(960))
	if VanillaWorkerPrepNS < 50*enhanced {
		t.Fatalf("vanilla prep (%.0f ns) should dwarf one enhanced hop (%.0f ns)",
			float64(VanillaWorkerPrepNS), enhanced)
	}
}
