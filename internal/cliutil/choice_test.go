package cliutil

import (
	"flag"
	"io"
	"testing"
)

// TestChoiceSet is the table-driven contract for the enum flags every jord
// command uses: valid values parse, anything else errors (which flag turns
// into usage + exit 2).
func TestChoiceSet(t *testing.T) {
	cases := []struct {
		name    string
		def     string
		allowed []string
		set     string
		wantErr bool
		want    string
	}{
		{"valid member", "all", []string{"all", "fig9", "table4"}, "fig9", false, "fig9"},
		{"default kept without Set", "all", []string{"all", "fig9"}, "", true, "all"},
		{"unknown value", "all", []string{"all", "fig9"}, "fig8", true, "all"},
		{"case sensitive", "quick", []string{"quick", "full"}, "Full", true, "quick"},
		{"empty allowed when listed", "", []string{"", "hipster", "hotel"}, "", false, ""},
		{"whitespace not trimmed", "jord", []string{"jord", "nightcore"}, " jord", true, "jord"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewChoice(tc.def, tc.allowed...)
			err := c.Set(tc.set)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Set(%q) err = %v, wantErr %v", tc.set, err, tc.wantErr)
			}
			if c.Value() != tc.want {
				t.Fatalf("Value() = %q, want %q", c.Value(), tc.want)
			}
		})
	}
}

func TestChoicePanicsOnBadDefault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("default outside the allowed set should panic")
		}
	}()
	NewChoice("bogus", "a", "b")
}

func TestNonNegIntSet(t *testing.T) {
	cases := []struct {
		in      string
		wantErr bool
		want    int
	}{
		{"0", false, 0},
		{"17", false, 17},
		{"-1", true, 3},
		{"1.5", true, 3},
		{"x", true, 3},
	}
	for _, tc := range cases {
		n := NewNonNegInt(3)
		err := n.Set(tc.in)
		if (err != nil) != tc.wantErr {
			t.Fatalf("Set(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
		}
		if n.Value() != tc.want {
			t.Fatalf("Set(%q): Value() = %d, want %d", tc.in, n.Value(), tc.want)
		}
	}
}

// TestFlagSetIntegration proves the end-to-end behavior the commands rely
// on: an unknown enum value makes Parse fail (exit 2 + usage under
// ExitOnError), a valid one succeeds.
func TestFlagSetIntegration(t *testing.T) {
	newFS := func() (*flag.FlagSet, *Choice, *NonNegInt) {
		fs := flag.NewFlagSet("jordsim", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		exp := NewChoice("all", "all", "fig9", "table4")
		fs.Var(exp, "experiment", "table4|fig9|all")
		nested := NewNonNegInt(2)
		fs.Var(nested, "nested", "nested calls (>= 0)")
		return fs, exp, nested
	}

	fs, exp, _ := newFS()
	if err := fs.Parse([]string{"-experiment", "table4"}); err != nil || exp.Value() != "table4" {
		t.Fatalf("valid parse: err=%v value=%q", err, exp.Value())
	}

	fs, _, _ = newFS()
	if err := fs.Parse([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown -experiment value should fail Parse")
	}

	fs, _, _ = newFS()
	if err := fs.Parse([]string{"-nested", "-3"}); err == nil {
		t.Fatal("negative -nested should fail Parse")
	}

	fs, _, _ = newFS()
	if err := fs.Parse([]string{"-bogusflag"}); err == nil {
		t.Fatal("unknown flag should fail Parse")
	}
}
