// Package cliutil provides small flag helpers shared by the jord
// command-line tools, so every binary rejects invalid flag values at parse
// time — with usage and a non-zero exit — instead of discovering them (or
// silently misinterpreting them) mid-run.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// Choice is a flag.Value restricted to a fixed set of values. Set returns
// an error for anything outside the set, which the flag package reports
// alongside usage before exiting with status 2.
type Choice struct {
	value   string
	allowed []string
}

// NewChoice builds a Choice with a default value and its allowed set. The
// default must itself be allowed (programmer error otherwise — it panics).
func NewChoice(def string, allowed ...string) *Choice {
	c := &Choice{value: def, allowed: allowed}
	if !c.ok(def) {
		panic(fmt.Sprintf("cliutil: default %q not in allowed set %v", def, allowed))
	}
	return c
}

func (c *Choice) ok(s string) bool {
	for _, a := range c.allowed {
		if s == a {
			return true
		}
	}
	return false
}

// String returns the current value (flag.Value).
func (c *Choice) String() string {
	if c == nil {
		return ""
	}
	return c.value
}

// Set validates and stores a parsed value (flag.Value).
func (c *Choice) Set(s string) error {
	if !c.ok(s) {
		return fmt.Errorf("must be one of %s", c.Allowed())
	}
	c.value = s
	return nil
}

// Value returns the selected value.
func (c *Choice) Value() string { return c.value }

// Allowed renders the allowed set as "a|b|c" for usage strings; an empty
// string in the set renders as '' so optional choices stay visible.
func (c *Choice) Allowed() string {
	parts := make([]string, len(c.allowed))
	for i, a := range c.allowed {
		if a == "" {
			a = "''"
		}
		parts[i] = a
	}
	return strings.Join(parts, "|")
}

// NonNegInt is a flag.Value for integers that must be >= 0; negative or
// malformed input fails Set, so the flag package prints usage and exits 2.
type NonNegInt struct {
	value int
}

// NewNonNegInt builds a NonNegInt with a default (which must be >= 0).
func NewNonNegInt(def int) *NonNegInt {
	if def < 0 {
		panic(fmt.Sprintf("cliutil: negative default %d", def))
	}
	return &NonNegInt{value: def}
}

// String returns the current value (flag.Value).
func (n *NonNegInt) String() string {
	if n == nil {
		return "0"
	}
	return strconv.Itoa(n.value)
}

// Set validates and stores a parsed value (flag.Value).
func (n *NonNegInt) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("not an integer: %q", s)
	}
	if v < 0 {
		return fmt.Errorf("must be >= 0, got %d", v)
	}
	n.value = v
	return nil
}

// Value returns the parsed value.
func (n *NonNegInt) Value() int { return n.value }
