package workloads

import (
	"testing"

	"jord/internal/core"
)

func deploy(t *testing.T, name string) (*core.System, *Workload) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = 11
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	w, err := Build(name, sys, 11)
	if err != nil {
		t.Fatal(err)
	}
	return sys, w
}

func TestUnknownWorkload(t *testing.T) {
	sys, _ := deploy(t, "hipster")
	if _, err := Build("nope", sys, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllWorkloadsRunCleanly(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, w := deploy(t, name)
			res := sys.RunLoad(core.LoadSpec{
				RPS: 100_000, Warmup: 50, Measure: 300,
				Root: w.Selector(),
			})
			if res.Completed != 300 {
				t.Fatalf("completed = %d, want 300", res.Completed)
			}
			if res.Latency.Percentile(99) <= 0 {
				t.Fatal("no latencies recorded")
			}
		})
	}
}

func TestSelectedFunctionsRegistered(t *testing.T) {
	want := map[string][]string{
		"hipster": {"GC", "PO"},
		"hotel":   {"SN", "MR"},
		"media":   {"UU", "RP"},
		"social":  {"F", "CP"},
	}
	for name, abbrevs := range want {
		_, w := deploy(t, name)
		for _, a := range abbrevs {
			if _, ok := w.Selected[a]; !ok {
				t.Errorf("%s: selected function %s missing", name, a)
			}
		}
	}
}

func TestSelectorWeightsRespected(t *testing.T) {
	_, w := deploy(t, "hipster")
	sel := w.Selector()
	counts := map[core.FuncID]int{}
	for i := 0; i < 10000; i++ {
		fn, blocks := sel()
		counts[fn]++
		if blocks < 8 || blocks > 23 {
			t.Fatalf("blocks = %d, want [8,23]", blocks)
		}
	}
	// Browse has weight 0.50: expect roughly half.
	browse := counts[w.roots[2].fn]
	if browse < 4500 || browse > 5500 {
		t.Fatalf("browse share = %d/10000, want ~5000", browse)
	}
}

// TestNestingDepthShape verifies the paper's fan-out parameters: Media
// averages ~12 nested invocations per request, the other workloads ~2-4.
func TestNestingDepthShape(t *testing.T) {
	nested := func(name string) float64 {
		sys, w := deploy(t, name)
		res := sys.RunLoad(core.LoadSpec{
			RPS: 100_000, Warmup: 20, Measure: 400,
			Root: w.Selector(),
		})
		// AllInvocations counts roots + children.
		return float64(res.AllInvocations-res.Completed) / float64(res.Completed)
	}
	hip := nested("hipster")
	med := nested("media")
	if hip < 1.5 || hip > 4.5 {
		t.Errorf("hipster fan-out = %.1f, want ~2-3", hip)
	}
	if med < 9 || med > 16 {
		t.Errorf("media fan-out = %.1f, want ~12", med)
	}
	if med < 3*hip {
		t.Errorf("media (%.1f) should fan out far more than hipster (%.1f)", med, hip)
	}
}

// TestServiceTimeCDFShape checks Figure 10's headline properties: most
// invocations are a few microseconds; Social has a tail near 75 us.
func TestServiceTimeCDFShape(t *testing.T) {
	run := func(name string) *core.Results {
		sys, w := deploy(t, name)
		return sys.RunLoad(core.LoadSpec{
			RPS: 20_000, Warmup: 50, Measure: 600,
			Root: w.Selector(),
		})
	}
	hip := run("hipster")
	if p75 := hip.ServiceTime.Percentile(75); p75 > 5_000 {
		t.Errorf("hipster p75 service = %d ns, want < 5 us (Fig 10)", p75)
	}
	soc := run("social")
	p99 := soc.ServiceTime.Percentile(99)
	if p99 < 50_000 || p99 > 110_000 {
		t.Errorf("social p99 service = %d ns, want ~75 us tail", p99)
	}
	// Social's heavy functions are a minority: median stays small.
	if p50 := soc.ServiceTime.Percentile(50); p50 > 10_000 {
		t.Errorf("social p50 = %d ns, want light median", p50)
	}
}

// TestWorkloadDeterminism: same seed, same results.
func TestWorkloadDeterminism(t *testing.T) {
	run := func() int64 {
		cfg := core.DefaultConfig()
		cfg.Seed = 5
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		w := MustBuild("hotel", sys, 5)
		res := sys.RunLoad(core.LoadSpec{
			RPS: 500_000, Warmup: 50, Measure: 300,
			Root: w.Selector(),
		})
		return res.Latency.Percentile(99)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic workload run: %d vs %d", a, b)
	}
}
