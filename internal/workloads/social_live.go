package workloads

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"jord/internal/server/router"
	"jord/internal/server/state"
)

// This file ports the social-network graph (DeathStarBench's social app,
// the same graph buildSocial models on the simulator) to LIVE stateful
// functions over the shared-state tier: the graph, timelines, posts, and
// profiles live in store-owned VMAs and every access walks the permission
// model — pcopy R snapshots for reads, pmove RW ownership for updates,
// G-bit promotion for the hot read-mostly objects (profiles, hot posts).
//
// Two registrations exist so jordbench can compare them head-to-head:
//
//   - RegisterSocialLive ("social.*"): shared state. Reads are zero-copy
//     aliases of the committed value; read-modify-writes take exclusive
//     ownership of exactly the keys they touch.
//   - RegisterSocialCopy ("socialcopy.*"): the copy-per-request baseline a
//     conventional FaaS state service imposes — every read and every write
//     crosses the store boundary by value (memcpy), counted in CopyStats.
//
// The function bodies are identical; only the store behind them differs.

// Live social functions and their payloads (whitespace-separated tokens):
//
//	social.follow    "<user> <followee>"  update both graph directions
//	social.post      "<user> <text...>"   store post, fan out to timelines
//	social.timeline  "<user>"             assemble the user's feed
//	social.read      "<post-id>"          read one post (hot-key path)
//	social.profile   "<user>"             read-mostly profile blob

// timelineCap bounds each materialized timeline (newest first), like the
// bounded Redis lists real timeline services keep.
const timelineCap = 32

// feedPosts is how many posts social.timeline resolves per request.
const feedPosts = 10

// takeRetries bounds the bounded-spin on StateTake contention: the store
// never blocks a taker (ErrTaken is immediate), so contended updates yield
// and retry instead of parking an executor runner.
const takeRetries = 64

// socialStore is the tiny store seam the social bodies run over: the
// shared-state tier or the copying baseline.
type socialStore interface {
	// read returns the value (nil, false if absent) plus a release func for
	// zero-copy stores (nil when there is nothing to release).
	read(ctx router.Ctx, key string) (val []byte, ok bool, release func(), err error)
	// write creates or replaces key.
	write(ctx router.Ctx, key string, val []byte) error
	// update applies f to the current value (nil if absent) and commits the
	// result, returning it. Exclusive per key for the duration of f.
	update(ctx router.Ctx, key string, f func(old []byte) []byte) ([]byte, error)
}

// sharedStore backs the social bodies with the node-global tier of the
// shared-state store via the invocation's own LiveCtx — every operation is
// permission-checked against the invocation's protection domain.
type sharedStore struct{}

func (sharedStore) read(ctx router.Ctx, key string) ([]byte, bool, func(), error) {
	sn, err := ctx.StateGet(router.StateGlobal, key)
	if err != nil {
		if errors.Is(err, state.ErrNotFound) {
			return nil, false, nil, nil
		}
		return nil, false, nil, err
	}
	return sn.Bytes(), true, sn.Release, nil
}

func (sharedStore) write(ctx router.Ctx, key string, val []byte) error {
	_, err := ctx.StatePut(router.StateGlobal, key, val)
	return err
}

func (sharedStore) update(ctx router.Ctx, key string, f func(old []byte) []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		tx, err := ctx.StateTake(router.StateGlobal, key)
		if err != nil {
			// Another invocation owns the key this instant; yield and retry
			// rather than blocking an executor runner on state contention.
			if errors.Is(err, state.ErrTaken) && attempt < takeRetries {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				runtime.Gosched()
				continue
			}
			return nil, err
		}
		next := f(tx.Bytes())
		if _, err := tx.Commit(next); err != nil {
			tx.Discard()
			return nil, err
		}
		return next, nil
	}
}

// CopyStats counts the bytes the copying baseline moved across its store
// boundary — what the shared-state tier's copy_bytes_avoided counter is
// measured against.
type CopyStats struct {
	ReadBytes  atomic.Uint64 // copied out of the store on reads
	WriteBytes atomic.Uint64 // copied into the store on writes
}

// copyStore is the conventional baseline: a mutex-guarded map that copies
// every value in on write and out on read, as a store behind a serialization
// boundary (Redis, a state API) must.
type copyStore struct {
	mu    sync.RWMutex
	m     map[string][]byte
	stats *CopyStats
}

func (s *copyStore) read(_ router.Ctx, key string) ([]byte, bool, func(), error) {
	s.mu.RLock()
	v, ok := s.m[key]
	var out []byte
	if ok {
		out = append([]byte(nil), v...)
	}
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil, nil
	}
	s.stats.ReadBytes.Add(uint64(len(out)))
	return out, true, nil, nil
}

func (s *copyStore) write(_ router.Ctx, key string, val []byte) error {
	cp := append([]byte(nil), val...)
	s.stats.WriteBytes.Add(uint64(len(val)))
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

func (s *copyStore) update(_ router.Ctx, key string, f func(old []byte) []byte) ([]byte, error) {
	s.mu.Lock()
	old := s.m[key]
	// The copy out and copy back in are both real costs of the boundary.
	s.stats.ReadBytes.Add(uint64(len(old)))
	next := f(append([]byte(nil), old...))
	s.stats.WriteBytes.Add(uint64(len(next)))
	s.m[key] = append([]byte(nil), next...)
	s.mu.Unlock()
	return next, nil
}

// RegisterSocialLive deploys the social graph as live functions over the
// shared-state tier under the "social." prefix.
func RegisterSocialLive(reg *router.Registry) {
	registerSocialBodies(reg, "social.", sharedStore{})
}

// RegisterSocialCopy deploys the identical bodies over the copy-per-request
// baseline under the "socialcopy." prefix and returns its copy counters.
func RegisterSocialCopy(reg *router.Registry) *CopyStats {
	stats := &CopyStats{}
	registerSocialBodies(reg, "socialcopy.", &copyStore{m: make(map[string][]byte), stats: stats})
	return stats
}

// Key layout (all node-global: the graph is shared by every function):
//
//	sg:flw:<user>  newline list of users <user> follows
//	sg:fan:<user>  newline list of <user>'s followers (the fan-out set)
//	cnt:<user>     decimal post counter (post-id allocator)
//	post:<id>      post body; id = <user>/<n>
//	tl:<user>      newline list of post ids, newest first, capped
//	prof:<user>    profile blob (read-mostly; promotes under read load)

func registerSocialBodies(reg *router.Registry, prefix string, st socialStore) {
	reg.MustRegister(prefix+"follow", func(ctx router.Ctx) ([]byte, error) {
		user, followee, err := twoFields(ctx.Payload())
		if err != nil {
			return nil, err
		}
		// Both graph directions, each an exclusive-ownership RMW of exactly
		// one key. No cross-key transaction: the social graph tolerates the
		// one-sided window (DeathStarBench updates the two Redis sets
		// independently too).
		if _, err := st.update(ctx, "sg:flw:"+user, func(old []byte) []byte {
			return addLine(old, followee)
		}); err != nil {
			return nil, err
		}
		if _, err := st.update(ctx, "sg:fan:"+followee, func(old []byte) []byte {
			return addLine(old, user)
		}); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	})

	reg.MustRegister(prefix+"post", func(ctx router.Ctx) ([]byte, error) {
		user, text, err := twoFields(ctx.Payload()) // text = rest of payload
		if err != nil {
			return nil, err
		}
		// Allocate the post id from the author's counter (exclusive RMW).
		cnt, err := st.update(ctx, "cnt:"+user, func(old []byte) []byte {
			n, _ := strconv.ParseUint(string(old), 10, 64)
			return strconv.AppendUint(nil, n+1, 10)
		})
		if err != nil {
			return nil, err
		}
		id := user + "/" + string(cnt)
		if err := st.write(ctx, "post:"+id, []byte(text)); err != nil {
			return nil, err
		}
		// Fan out: the author's own timeline plus every follower's. The
		// follower set is a read snapshot, released before the timeline
		// updates (an invocation may not Take a key it holds a snapshot of —
		// and more to the point, holding it longer than needed pins a
		// permission slot).
		fans, ok, release, err := st.read(ctx, "sg:fan:"+user)
		if err != nil {
			return nil, err
		}
		targets := []string{user}
		if ok {
			for _, f := range strings.Fields(string(fans)) {
				if f != user {
					targets = append(targets, f)
				}
			}
		}
		if release != nil {
			release()
		}
		for _, t := range targets {
			if _, err := st.update(ctx, "tl:"+t, func(old []byte) []byte {
				return prependLine(old, id, timelineCap)
			}); err != nil {
				return nil, err
			}
		}
		return []byte(id), nil
	})

	reg.MustRegister(prefix+"timeline", func(ctx router.Ctx) ([]byte, error) {
		user := strings.TrimSpace(string(ctx.Payload()))
		if user == "" {
			return nil, fmt.Errorf("social: timeline wants a user name")
		}
		tl, ok, release, err := st.read(ctx, "tl:"+user)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		ids := strings.Fields(string(tl))
		if release != nil {
			release()
		}
		if len(ids) > feedPosts {
			ids = ids[:feedPosts]
		}
		// Resolve each post: the read-heavy inner loop the zero-copy
		// snapshot path exists for.
		var feed strings.Builder
		for _, id := range ids {
			body, ok, release, err := st.read(ctx, "post:"+id)
			if err != nil {
				return nil, err
			}
			if ok {
				feed.WriteString(id)
				feed.WriteByte(' ')
				feed.Write(body)
				feed.WriteByte('\n')
			}
			if release != nil {
				release()
			}
		}
		return []byte(feed.String()), nil
	})

	reg.MustRegister(prefix+"read", func(ctx router.Ctx) ([]byte, error) {
		id := strings.TrimSpace(string(ctx.Payload()))
		body, ok, release, err := st.read(ctx, "post:"+id)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
		// The result must outlive the body (it becomes the response ArgBuf),
		// so it is copied out of the snapshot alias — both variants pay this
		// equally; the store-boundary copy is what differs.
		out := append([]byte(nil), body...)
		if release != nil {
			release()
		}
		return out, nil
	})

	reg.MustRegister(prefix+"profile", func(ctx router.Ctx) ([]byte, error) {
		user := strings.TrimSpace(string(ctx.Payload()))
		if user == "" {
			return nil, fmt.Errorf("social: profile wants a user name")
		}
		for {
			prof, ok, release, err := st.read(ctx, "prof:"+user)
			if err != nil {
				return nil, err
			}
			if ok {
				out := append([]byte(nil), prof...)
				if release != nil {
					release()
				}
				return out, nil
			}
			// First sight of this user: materialize a default profile, then
			// reread (a racing creator may have won; either value is fine).
			if err := st.write(ctx, "prof:"+user, []byte("name="+user+" joined=2026 bio=jord")); err != nil {
				return nil, err
			}
		}
	})
}

// twoFields splits "<first> <rest...>"; rest keeps its internal spacing.
func twoFields(payload []byte) (first, rest string, err error) {
	s := strings.TrimSpace(string(payload))
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return "", "", fmt.Errorf("social: payload %q wants two fields", s)
	}
	return s[:i], strings.TrimSpace(s[i+1:]), nil
}

// addLine appends line to a newline-separated set if absent.
func addLine(old []byte, line string) []byte {
	for _, l := range strings.Fields(string(old)) {
		if l == line {
			return old
		}
	}
	out := make([]byte, 0, len(old)+len(line)+1)
	out = append(out, old...)
	if len(out) > 0 && out[len(out)-1] != '\n' {
		out = append(out, '\n')
	}
	out = append(out, line...)
	return out
}

// prependLine pushes line onto a newline list, newest first, capped at max.
func prependLine(old []byte, line string, max int) []byte {
	lines := strings.Fields(string(old))
	out := make([]byte, 0, len(old)+len(line)+1)
	out = append(out, line...)
	for i, l := range lines {
		if i >= max-1 {
			break
		}
		out = append(out, '\n')
		out = append(out, l...)
	}
	return out
}
