package workloads

import "jord/internal/core"

// buildHotel models DeathStarBench's hotel reservation service: search,
// recommendation, and reservation paths over geo/rate/profile backends.
// Compute per function is heavier than Hipster's (search scoring, rate
// plan filtering). Selected functions: SearchNearby (SN) and
// MakeReservation (MR).
func (w *Workload) buildHotel() {
	geo := w.leaf("hotel.Geo", 520)
	rate := w.leaf("hotel.Rate", 640)
	profile := w.leaf("hotel.Profile", 500)
	user := w.leaf("hotel.User", 380)
	reservation := w.leaf("hotel.Reservation", 620)

	// SearchNearby (SN): geo lookup, then rates and profiles in parallel.
	sn := w.addRoot("hotel.SearchNearby", 0.50, func(c *core.Ctx) error {
		w.exec(c, 900)
		if err := c.Call(geo, 6); err != nil {
			return err
		}
		if err := callPar(c, 8, rate, profile); err != nil {
			return err
		}
		w.exec(c, 800)
		return nil
	})
	w.Selected["SN"] = sn

	// MakeReservation (MR): authenticate, then book.
	mr := w.addRoot("hotel.MakeReservation", 0.30, func(c *core.Ctx) error {
		w.exec(c, 700)
		if err := callSeq(c, 6, user, reservation); err != nil {
			return err
		}
		w.exec(c, 500)
		return nil
	})
	w.Selected["MR"] = mr

	// CheckAvailability: a light rate probe.
	w.addRoot("hotel.CheckAvailability", 0.20, func(c *core.Ctx) error {
		w.exec(c, 600)
		if err := c.Call(rate, 6); err != nil {
			return err
		}
		w.exec(c, 200)
		return nil
	})
}
