package workloads

import "jord/internal/core"

// buildMedia models DeathStarBench's media service (movie reviews). Its
// distinguishing feature (§6.1) is deep composition: each function invokes
// an average of ~12 nested functions, and ReadPage (RP) composes a full
// page from over 100 component reads. Selected functions: UploadUniqueId
// (UU) and ReadPage (RP).
func (w *Workload) buildMedia() {
	uniqueID := w.scratchLeaf("media.UniqueIdService", 150, 2)
	movieID := w.scratchLeaf("media.MovieIdService", 180, 2)
	text := w.scratchLeaf("media.TextService", 200, 3)
	rating := w.scratchLeaf("media.RatingService", 160, 2)
	reviewStore := w.scratchLeaf("media.ReviewStorage", 220, 2)
	userReview := w.scratchLeaf("media.UserReviewService", 180, 2)
	movieReview := w.scratchLeaf("media.MovieReviewService", 180, 2)
	movieInfo := w.scratchLeaf("media.MovieInfoService", 200, 2)
	castInfo := w.scratchLeaf("media.CastInfoService", 190, 2)
	plot := w.scratchLeaf("media.PlotService", 170, 2)

	// UploadUniqueId (UU): mint an ID and register it in a few indices.
	uu := w.addRoot("media.UploadUniqueId", 0.25, func(c *core.Ctx) error {
		w.exec(c, 400)
		if err := callSeq(c, 4, uniqueID, movieID); err != nil {
			return err
		}
		if err := callPar(c, 4, text, rating); err != nil {
			return err
		}
		w.exec(c, 150)
		return nil
	})
	w.Selected["UU"] = uu

	// ComposeReview: fan a review out to every interested service —
	// sixteen nested calls, mixing sync and async (Media's functions
	// average ~12 nested invocations, §6.1).
	w.addRoot("media.ComposeReview", 0.52, func(c *core.Ctx) error {
		w.exec(c, 600)
		if err := callSeq(c, 4, uniqueID, movieID, text, rating); err != nil {
			return err
		}
		if err := callPar(c, 6, reviewStore, userReview, movieReview, movieInfo, castInfo, plot); err != nil {
			return err
		}
		if err := callPar(c, 4, text, rating, reviewStore, userReview, movieInfo, plot); err != nil {
			return err
		}
		w.exec(c, 200)
		return nil
	})

	// ReadPage (RP): compose a page from >100 component reads — the
	// paper's extreme nesting case, run as wide async fan-out. Each
	// collected component is rendered into the page (per-child compute),
	// so RP's own execution time is substantial too.
	// RP is a rare operation (~0.5% of traffic): its ~40 us compositions
	// sit far above the p99 of the common path, as in the paper's curves.
	rp := w.addRoot("media.ReadPage", 0.005, func(c *core.Ctx) error {
		w.exec(c, 800)
		components := []core.FuncID{
			movieInfo, castInfo, plot, rating, movieReview, userReview, reviewStore,
		}
		cookies := make([]core.Cookie, 0, 105)
		for i := 0; i < 105; i++ {
			ck, err := c.Async(components[i%len(components)], 2)
			if err != nil {
				return err
			}
			cookies = append(cookies, ck)
		}
		for _, ck := range cookies {
			if err := c.Wait(ck); err != nil {
				return err
			}
			w.exec(c, 250) // render the component into the page
		}
		w.exec(c, 400)
		return nil
	})
	w.Selected["RP"] = rp

	// UploadMovieId: register a movie across six indices.
	w.addRoot("media.UploadMovieId", 0.225, func(c *core.Ctx) error {
		w.exec(c, 400)
		if err := callSeq(c, 4, movieID, uniqueID); err != nil {
			return err
		}
		if err := callPar(c, 4, movieInfo, castInfo, plot, rating); err != nil {
			return err
		}
		return nil
	})
}
