// Package workloads defines the four microservice applications of the
// paper's evaluation (§5): Social, Media, and Hotel from DeathStarBench
// and OnlineBoutique (Hipster) from Google, ported to Jord's
// function-as-a-function paradigm.
//
// The original services are not available here, so each workload is a
// synthetic function DAG matching the shape parameters the paper reports:
// nested-call fan-outs (≈3 for Hipster/Hotel/Social, ≈12 on average for
// Media, >100 for ReadPage), the Figure 10 service-time distribution (75%
// of service times below ~5 us, Social's tail at ~75 us, Media's long
// tail), and ~15 cache blocks of ArgBuf payload per request (§6.3).
// Execution times are calibrated so the 32-core throughput-under-SLO
// numbers land near the paper's (Hipster ~12, Hotel ~7, Social ~0.9 MRPS).
package workloads

import (
	"fmt"
	"math"
	"math/rand/v2"

	"jord/internal/core"
	"jord/internal/mem/vmatable"
)

// Workload is one application deployed onto a system.
type Workload struct {
	Name string
	Sys  *core.System

	roots       []rootEntry
	totalWeight float64

	// Selected maps the Table 3 abbreviations (GC, PO, SN, MR, UU, RP, F,
	// CP) to function IDs for the Figure 11 breakdown.
	Selected map[string]core.FuncID

	rng *rand.Rand
}

type rootEntry struct {
	fn     core.FuncID
	weight float64
}

// Names lists the available workloads.
func Names() []string { return []string{"hipster", "hotel", "media", "social"} }

// Build deploys the named workload onto sys.
func Build(name string, sys *core.System, seed uint64) (*Workload, error) {
	w := &Workload{
		Name:     name,
		Sys:      sys,
		Selected: make(map[string]core.FuncID),
		rng:      rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb)),
	}
	switch name {
	case "hipster":
		w.buildHipster()
	case "hotel":
		w.buildHotel()
	case "media":
		w.buildMedia()
	case "social":
		w.buildSocial()
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// MustBuild is Build for static experiment setup.
func MustBuild(name string, sys *core.System, seed uint64) *Workload {
	w, err := Build(name, sys, seed)
	if err != nil {
		panic(err)
	}
	return w
}

// addRoot registers a root (externally invokable) function with a traffic
// weight.
func (w *Workload) addRoot(name string, weight float64, body func(*core.Ctx) error) core.FuncID {
	id := w.Sys.MustRegister(name, body)
	w.roots = append(w.roots, rootEntry{fn: id, weight: weight})
	w.totalWeight += weight
	return id
}

// Selector returns the root-picking function for the load generator:
// weighted function choice plus an ArgBuf payload of 8-23 cache blocks
// (mean ~15).
func (w *Workload) Selector() core.RootSelector {
	return func() (core.FuncID, int) {
		pick := w.rng.Float64() * w.totalWeight
		for _, r := range w.roots {
			pick -= r.weight
			if pick < 0 {
				return r.fn, w.blocks()
			}
		}
		return w.roots[len(w.roots)-1].fn, w.blocks()
	}
}

// blocks draws an ArgBuf payload size.
func (w *Workload) blocks() int { return 8 + w.rng.IntN(16) }

// execJitter scales a base execution time by a mild lognormal factor,
// giving realistic per-invocation variance without distorting means.
func (w *Workload) execJitter() float64 {
	f := math.Exp(w.rng.NormFloat64() * 0.18)
	if f < 0.6 {
		f = 0.6
	}
	if f > 2.2 {
		f = 2.2
	}
	return f
}

// exec charges base nanoseconds of compute, jittered.
func (w *Workload) exec(c *core.Ctx, baseNS float64) {
	c.ExecNS(baseNS * w.execJitter())
}

// execClamped charges base nanoseconds jittered within [lo, hi] factors —
// used where the paper pins the distribution's extremes (e.g. Social's
// ComposePost tail ending at ~75 us in Figure 10).
func (w *Workload) execClamped(c *core.Ctx, baseNS, lo, hi float64) {
	f := w.execJitter()
	if f < lo {
		f = lo
	}
	if f > hi {
		f = hi
	}
	c.ExecNS(baseNS * f)
}

// leaf registers a function that only computes.
func (w *Workload) leaf(name string, baseNS float64) core.FuncID {
	return w.Sys.MustRegister(name, func(c *core.Ctx) error {
		w.exec(c, baseNS)
		return nil
	})
}

// scratchLeaf registers a function that allocates scratch VMAs and
// computes over them — widening its D-VLB working set (stack + heap +
// ArgBuf + scratch). Media's components work over per-call buffers, which
// is why Media needs eight D-VLB entries where Hipster needs four (§6.2).
func (w *Workload) scratchLeaf(name string, baseNS float64, scratch int) core.FuncID {
	return w.Sys.MustRegister(name, func(c *core.Ctx) error {
		bufs := make([]uint64, 0, scratch)
		for i := 0; i < scratch; i++ {
			va, err := c.Mmap(512, vmatable.PermRW)
			if err != nil {
				return err
			}
			bufs = append(bufs, va)
		}
		w.exec(c, baseNS)
		for _, va := range bufs {
			if err := c.Munmap(va); err != nil {
				return err
			}
		}
		return nil
	})
}

// callSeq invokes children synchronously one after another.
func callSeq(c *core.Ctx, blocks int, fns ...core.FuncID) error {
	for _, fn := range fns {
		if err := c.Call(fn, blocks); err != nil {
			return err
		}
	}
	return nil
}

// callPar invokes children asynchronously and waits for all of them.
func callPar(c *core.Ctx, blocks int, fns ...core.FuncID) error {
	cookies := make([]core.Cookie, 0, len(fns))
	for _, fn := range fns {
		ck, err := c.Async(fn, blocks)
		if err != nil {
			return err
		}
		cookies = append(cookies, ck)
	}
	for _, ck := range cookies {
		if err := c.Wait(ck); err != nil {
			return err
		}
	}
	return nil
}
