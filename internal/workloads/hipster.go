package workloads

import "jord/internal/core"

// buildHipster models Google's OnlineBoutique (microservices-demo): an
// online shop whose request paths fan out to carts, catalogs, currency
// conversion, ads, payments, and shipping. Roots average ~3 nested calls;
// the Table 3 selected functions are GetCart (GC) and PlaceOrder (PO).
// Execution times are short — Hipster is the workload with the most
// frequent cross-function communication relative to compute (§6.1).
func (w *Workload) buildHipster() {
	cart := w.leaf("hipster.CartService", 250)
	catalog := w.leaf("hipster.ProductCatalog", 220)
	currency := w.leaf("hipster.CurrencyService", 150)
	ads := w.leaf("hipster.AdService", 200)
	payment := w.leaf("hipster.PaymentService", 320)
	shipping := w.leaf("hipster.ShippingService", 260)
	email := w.leaf("hipster.EmailService", 180)

	// GetCart (GC): frontend fetches the cart and converts prices.
	gc := w.addRoot("hipster.GetCart", 0.35, func(c *core.Ctx) error {
		w.exec(c, 350)
		if err := callSeq(c, 4, cart, currency); err != nil {
			return err
		}
		w.exec(c, 150)
		return nil
	})
	w.Selected["GC"] = gc

	// PlaceOrder (PO): checkout touches cart, payment, shipping, and fires
	// a confirmation email asynchronously.
	po := w.addRoot("hipster.PlaceOrder", 0.15, func(c *core.Ctx) error {
		w.exec(c, 500)
		if err := callSeq(c, 6, cart, payment); err != nil {
			return err
		}
		ck, err := c.Async(email, 4)
		if err != nil {
			return err
		}
		if err := c.Call(shipping, 6); err != nil {
			return err
		}
		w.exec(c, 200)
		return c.Wait(ck)
	})
	w.Selected["PO"] = po

	// Browse: the home/product page — catalog, currency, and ads.
	w.addRoot("hipster.Browse", 0.50, func(c *core.Ctx) error {
		w.exec(c, 400)
		if err := callPar(c, 4, catalog, currency, ads); err != nil {
			return err
		}
		w.exec(c, 150)
		return nil
	})
}
