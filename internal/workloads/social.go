package workloads

import "jord/internal/core"

// buildSocial models DeathStarBench's social network. Most operations are
// light (Follow), but ComposePost runs heavy text/media processing — the
// ~75 us tail of Figure 10 — which pulls the workload's mean service time
// up and its throughput ceiling down (~0.9 MRPS under SLO on 32 cores).
// Selected functions: Follow (F) and ComposePost (CP).
func (w *Workload) buildSocial() {
	socialGraph := w.leaf("social.SocialGraph", 350)
	userService := w.leaf("social.UserService", 280)
	timeline := w.leaf("social.TimelineService", 500)
	postStore := w.leaf("social.PostStorage", 400)
	userMention := w.leaf("social.UserMentionService", 300)
	urlShorten := w.leaf("social.UrlShortenService", 260)

	// Follow (F): update both directions of the social graph.
	f := w.addRoot("social.Follow", 0.45, func(c *core.Ctx) error {
		w.exec(c, 600)
		if err := callSeq(c, 4, socialGraph, userService); err != nil {
			return err
		}
		w.exec(c, 300)
		return nil
	})
	w.Selected["F"] = f

	// ComposePost (CP): heavy text processing, mention extraction, URL
	// shortening, storage, and timeline fan-out. The dominant compute
	// block (~55 us base, jittering toward ~75 us) is the long tail the
	// paper observes.
	cp := w.addRoot("social.ComposePost", 0.45, func(c *core.Ctx) error {
		// The heavy compute is interleaved with the nested calls (tokenize,
		// then extract mentions; render, then shorten URLs; ...), so the
		// executor can serve queued work during each suspension.
		w.execClamped(c, 18_000, 0.85, 1.25)
		if err := callPar(c, 8, userMention, urlShorten); err != nil {
			return err
		}
		w.execClamped(c, 18_000, 0.85, 1.25)
		if err := c.Call(postStore, 10); err != nil {
			return err
		}
		w.execClamped(c, 15_000, 0.85, 1.25)
		if err := c.Call(timeline, 10); err != nil {
			return err
		}
		w.execClamped(c, 8_000, 0.85, 1.25)
		return nil
	})
	w.Selected["CP"] = cp

	// ReadTimeline: assemble a user's feed.
	w.addRoot("social.ReadTimeline", 0.10, func(c *core.Ctx) error {
		w.exec(c, 1_500)
		if err := callPar(c, 8, timeline, postStore, socialGraph); err != nil {
			return err
		}
		w.exec(c, 800)
		return nil
	})
}
