package workloads

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jord/internal/server/pool"
	"jord/internal/server/router"
	"jord/internal/server/state"
)

// startSocialPool boots an in-process pool with the shared-state store and
// both social variants registered; cleanup drains and checks nothing leaked.
func startSocialPool(t *testing.T, promoteAfter int) (*pool.Pool, *state.Store) {
	t.Helper()
	reg := router.New()
	RegisterSocialLive(reg)
	RegisterSocialCopy(reg)
	p := pool.New(pool.Config{Executors: 4, Orchestrators: 1}, reg)
	st, err := state.New(state.Config{PromoteAfter: promoteAfter}, p.Table())
	if err != nil {
		t.Fatal(err)
	}
	p.SetState(st)
	p.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := p.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := st.VerifyIdle(); err != nil {
			t.Errorf("state after drain: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := p.Table().VerifyIdle(); err != nil {
			t.Errorf("table after close: %v", err)
		}
		if n := p.Table().Faults(); n != 0 {
			t.Errorf("%d isolation faults", n)
		}
	})
	return p, st
}

// TestSocialLiveFlow drives the follow/post/timeline graph end to end on
// both variants and checks they produce identical application behavior.
func TestSocialLiveFlow(t *testing.T) {
	p, st := startSocialPool(t, 4)
	ctx := context.Background()

	for _, prefix := range []string{"social.", "socialcopy."} {
		call := func(fn, payload string) string {
			t.Helper()
			out, err := p.Invoke(ctx, prefix+fn, []byte(payload))
			if err != nil {
				t.Fatalf("%s%s(%q): %v", prefix, fn, payload, err)
			}
			return string(out)
		}
		// bob and carol follow alice; alice posts twice.
		call("follow", "bob alice")
		call("follow", "carol alice")
		id1 := call("post", "alice hello world")
		id2 := call("post", "alice second post")
		if id1 != "alice/1" || id2 != "alice/2" {
			t.Fatalf("%s post ids = %q, %q", prefix, id1, id2)
		}
		// Both followers see both posts, newest first.
		for _, reader := range []string{"bob", "carol"} {
			feed := call("timeline", reader)
			lines := strings.Split(strings.TrimRight(feed, "\n"), "\n")
			if len(lines) != 2 ||
				!strings.HasPrefix(lines[0], "alice/2 ") ||
				!strings.HasPrefix(lines[1], "alice/1 ") {
				t.Fatalf("%s timeline(%s) = %q", prefix, reader, feed)
			}
		}
		if got := call("read", id1); got != "hello world" {
			t.Fatalf("%s read(%s) = %q", prefix, id1, got)
		}
		if got := call("profile", "alice"); !strings.Contains(got, "name=alice") {
			t.Fatalf("%s profile(alice) = %q", prefix, got)
		}
	}

	// The shared variant really went through the store: snapshots were
	// zero-copy and exclusive RMWs really took ownership.
	stats := st.StatsSnapshot()
	if stats.Gets == 0 || stats.Takes == 0 || stats.Commits == 0 || stats.CopyBytesAvoided == 0 {
		t.Fatalf("shared variant did not exercise the store: %+v", stats)
	}
}

// TestSocialLiveConcurrent hammers one hot author from concurrent posters
// and readers under -race: contended Take retries, fan-out RMWs, and hot
// post/profile reads crossing the promotion threshold.
func TestSocialLiveConcurrent(t *testing.T) {
	p, st := startSocialPool(t, 8)
	ctx := context.Background()

	// A small follower graph around the hot author.
	for i := 0; i < 4; i++ {
		fan := fmt.Sprintf("fan%d", i)
		if _, err := p.Invoke(ctx, "social.follow", []byte(fan+" star")); err != nil {
			t.Fatal(err)
		}
	}

	const posters, readers, rounds = 2, 6, 50
	var wg sync.WaitGroup
	errs := make(chan error, posters+readers)
	for i := 0; i < posters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				if _, err := p.Invoke(ctx, "social.post",
					[]byte(fmt.Sprintf("star post %d from %d", n, i))); err != nil {
					errs <- fmt.Errorf("post: %w", err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fan := fmt.Sprintf("fan%d", i%4)
			for n := 0; n < rounds; n++ {
				if _, err := p.Invoke(ctx, "social.timeline", []byte(fan)); err != nil {
					errs <- fmt.Errorf("timeline: %w", err)
					return
				}
				if _, err := p.Invoke(ctx, "social.profile", []byte("star")); err != nil {
					errs <- fmt.Errorf("profile: %w", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := st.StatsSnapshot()
	if stats.Commits < posters*rounds {
		t.Fatalf("commits = %d, want >= %d", stats.Commits, posters*rounds)
	}
	if stats.Promotions == 0 {
		t.Fatalf("no promotion under hot-profile read load: %+v", stats)
	}
}
