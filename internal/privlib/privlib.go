// Package privlib implements PrivLib, Jord's trusted user-level privileged
// library (paper §3.2, §4.4, Table 1). PrivLib is the only code allowed to
// touch the VMA table and the uatp/uatc/ucid CSRs; it manages protection
// domains and VMAs through POSIX-compatible APIs and keeps all protected
// resources on free lists. Untrusted code can reach it only through uatg
// call gates, and every API performs mandatory security policy checks.
//
// Each API returns the virtual-time cost of the call alongside its result.
// Costs are calibrated so the Table 4 microbenchmarks land on the paper's
// numbers for both machine models (see costs.go); dynamic components —
// VLB shootdowns with remote sharers, B-tree rebalancing in the JordBT
// variant, uat_config refills from the OS — are added on top from the
// hardware model.
package privlib

import (
	"fmt"

	"jord/internal/mem/btree"
	"jord/internal/mem/pagetable"
	"jord/internal/mem/physmem"
	"jord/internal/mem/va"
	"jord/internal/mem/vmatable"
	"jord/internal/sim/engine"
	"jord/internal/sim/memmodel"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// Variant selects the system under study (paper §5).
type Variant int

const (
	// PlainList is baseline Jord: PrivLib isolation over the plain-list
	// VMA table.
	PlainList Variant = iota
	// NoIsolation is JordNI: PrivLib still manages VMAs (memory has to
	// come from somewhere) but all isolation operations — PD management,
	// permission transfers, access checks — are bypassed. The insecure
	// upper bound.
	NoIsolation
	// BTree is JordBT: isolation as in Jord, but the VMA table is a
	// B-tree, so walks chase pointers and mutations rebalance.
	BTree
	// MPK models the memory-protection-key approach the paper argues
	// against (§2.2): protection-domain switches are cheap userspace
	// register writes, but only 15 keys exist concurrently, permission
	// changes must be propagated across cores in software (IPIs), and
	// memory allocation still goes through OS page-based VM at
	// microsecond scale.
	MPK
)

func (v Variant) String() string {
	switch v {
	case PlainList:
		return "jord"
	case NoIsolation:
		return "jord-ni"
	case BTree:
		return "jord-bt"
	case MPK:
		return "mpk"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// MPKKeys is the number of concurrently usable protection keys (x86 MPK:
// 16 keys, one reserved for the default domain).
const MPKKeys = 15

// mpkSwitchNS is a WRPKRU-style userspace permission-register write.
const mpkSwitchNS = 30

// mpkCrossCoreSyncNS is the software cross-core consistency path MPK
// systems need when a domain's view changes while its memory is shared
// with another core (an IPI round trip; §2.2: "they must rely on extra
// software modules to ensure the protection is consistent among all
// cores").
const mpkCrossCoreSyncNS = 1800

// Fault is the hardware fault surfaced to the runtime when untrusted code
// violates the isolation policy (paper §3.1 threat model).
type Fault struct {
	Kind vmatable.FaultKind
	Addr uint64
	PD   vmatable.PDID
}

func (f *Fault) Error() string {
	return fmt.Sprintf("privlib: %v fault at %#x in PD %d", f.Kind, f.Addr, f.PD)
}

// ExecutorPD is the protection domain of trusted runtime code (orchestrators
// and executors). It owns all code VMAs and ArgBufs between transfers.
const ExecutorPD vmatable.PDID = 0

// Lib is one worker server's PrivLib instance.
type Lib struct {
	Variant Variant
	Enc     va.Encoding
	M       *topo.Machine
	Sub     *vlb.Subsystem
	Table   *vmatable.Table
	Phys    *physmem.Allocator
	OS      pagetable.OSCosts
	BT      *btree.Tree // parallel timing structure; non-nil iff Variant == BTree

	// PD management (free lists shared among all threads, §4.4).
	pdFree []vmatable.PDID
	pdLive map[vmatable.PDID]bool
	grants map[vmatable.PDID]int // outstanding VMA grants per PD

	// Per-class VMA index allocation.
	idxFree [][]uint64
	idxNext []uint64

	// MPKKeyLimit caps concurrently live PDs in the MPK variant
	// (default MPKKeys; experiments can idealize it away to isolate the
	// key-scarcity effect from the OS-allocation effect).
	MPKKeyLimit int

	// Boot-time privileged VMAs, for demos and tests.
	TableVA    uint64 // the VMA table itself
	PrivHeapVA uint64 // PrivLib's own heap
	PrivCodeVA uint64 // PrivLib's code (uatg entry points live here)

	Stats Stats
}

// Stats aggregates per-operation counts and cycles plus shootdown totals.
type Stats struct {
	Ops             [NumOps]OpStat
	ShootdownCount  uint64
	ShootdownCycles engine.Time
	RefillCount     uint64
	RefillCycles    engine.Time
}

// OpStat is the count/cycle total for one API.
type OpStat struct {
	Count  uint64
	Cycles engine.Time
}

// record tracks one completed call.
func (l *Lib) record(op Op, lat engine.Time) {
	l.Stats.Ops[op].Count++
	l.Stats.Ops[op].Cycles += lat
}

// Boot initializes PrivLib for a machine, mirroring the uat_config
// bootstrap of §4.4: the OS loads PrivLib, initializes the VMA table,
// creates the initial privileged VMAs, and reserves virtual and physical
// memory.
func Boot(m *topo.Machine, vcfg vlb.Config, variant Variant) (*Lib, error) {
	enc := va.Default()
	tableClass, err := enc.ClassFor(vmatable.DefaultTableBytes)
	if err != nil {
		return nil, fmt.Errorf("privlib: table sizing: %w", err)
	}
	tableVA := enc.Encode(tableClass, 0)
	table, err := vmatable.New(enc, tableVA, vmatable.DefaultTableBytes)
	if err != nil {
		return nil, err
	}
	mm := memmodel.New(m)
	l := &Lib{
		Variant: variant,
		Enc:     enc,
		M:       m,
		Sub:     vlb.NewSubsystem(m, mm, table, vcfg),
		Table:   table,
		Phys:    physmem.New(enc, nil),
		OS:      pagetable.OSCosts{Cfg: m.Cfg},
		pdLive:  make(map[vmatable.PDID]bool),
		grants:  make(map[vmatable.PDID]int),
		idxFree: make([][]uint64, enc.NumClasses()),
		idxNext: make([]uint64, enc.NumClasses()),
		TableVA: tableVA,
	}
	if variant == BTree {
		l.BT = btree.New()
	}
	l.MPKKeyLimit = MPKKeys

	// PD free list: all IDs except the reserved executor domain, popped in
	// ascending order.
	l.pdFree = make([]vmatable.PDID, 0, vmatable.MaxPDs-1)
	for id := vmatable.MaxPDs - 1; id >= 1; id-- {
		l.pdFree = append(l.pdFree, vmatable.PDID(id))
	}
	l.pdLive[ExecutorPD] = true

	// The VMA table lives in a privileged, global VMA at a fixed position
	// (class tableClass, index 0); reserve that index.
	l.idxNext[tableClass] = 1
	tvte := &vmatable.VTE{
		Bound:      vmatable.DefaultTableBytes,
		Priv:       true,
		Global:     true,
		GlobalPerm: vmatable.PermRW,
	}
	pa, _, err := l.Phys.Alloc(tableClass)
	if err != nil {
		return nil, err
	}
	tvte.Offs = pa
	if err := table.Insert(tableClass, 0, tvte); err != nil {
		return nil, err
	}
	l.btInsert(tableClass, 0, tvte)

	// PrivLib's own heap and code: privileged VMAs untrusted code must
	// never read; the code VMA is entered only through uatg gates.
	heapVA, _, err := l.mapInternal(ExecutorPD, 1<<20, vmatable.PermRW, true)
	if err != nil {
		return nil, err
	}
	l.PrivHeapVA = heapVA
	codeVA, _, err := l.mapInternal(ExecutorPD, 64<<10, vmatable.PermRX, true)
	if err != nil {
		return nil, err
	}
	l.PrivCodeVA = codeVA
	return l, nil
}

// isolated reports whether isolation machinery is active.
func (l *Lib) isolated() bool { return l.Variant != NoIsolation }

// btInsert mirrors a VMA into the B-tree timing structure.
func (l *Lib) btInsert(class int, index uint64, vte *vmatable.VTE) btree.OpStats {
	if l.BT == nil {
		return btree.OpStats{}
	}
	st, err := l.BT.Insert(btree.Entry{
		Base:  l.Enc.Encode(class, index),
		Bound: l.Enc.ClassSize(class), // reserve the whole chunk range
		VTE:   vte,
	})
	if err != nil {
		// The plain-list path already validated; a B-tree failure here is
		// a programming error.
		panic(err)
	}
	return st
}

func (l *Lib) btDelete(class int, index uint64) btree.OpStats {
	if l.BT == nil {
		return btree.OpStats{}
	}
	st, ok := l.BT.Delete(l.Enc.Encode(class, index))
	if !ok {
		panic("privlib: B-tree out of sync with plain list")
	}
	return st
}

// btLookupCost returns the extra walk latency of the B-tree table: the
// walker chases Height pointer levels instead of computing one position
// (the paper's ~20 ns VLB miss penalty vs ~2 ns).
func (l *Lib) btLookupCost() engine.Time {
	if l.BT == nil {
		return 0
	}
	_, st, _ := l.BT.Lookup(l.TableVA) // representative traversal
	return engine.Time(st.NodesVisited) * btNodeFetchCycles
}

// btMutateCost converts B-tree structural work into cycles.
func btMutateCost(st btree.OpStats) engine.Time {
	return engine.Time(st.NodesVisited)*btNodeFetchCycles +
		engine.Time(st.Splits+st.Merges+st.Rotations)*btRebalanceCycles
}

// allocIndex pops a free index for a size class.
func (l *Lib) allocIndex(class int) (uint64, error) {
	if fl := l.idxFree[class]; len(fl) > 0 {
		idx := fl[len(fl)-1]
		l.idxFree[class] = fl[:len(fl)-1]
		return idx, nil
	}
	idx := l.idxNext[class]
	if idx >= l.Table.MaxIndex(class) {
		return 0, fmt.Errorf("privlib: class %d index space exhausted", class)
	}
	l.idxNext[class]++
	return idx, nil
}

func (l *Lib) freeIndex(class int, idx uint64) {
	l.idxFree[class] = append(l.idxFree[class], idx)
}

// LivePDs returns the number of live protection domains, excluding the
// executor domain.
func (l *Lib) LivePDs() int { return len(l.pdLive) - 1 }

// HasFreePDs reports whether a cget can currently succeed. Executors use
// it to stall (rather than fault) when a backlog of suspended functions
// exhausts the PD space — which for the MPK variant is just 15 keys.
func (l *Lib) HasFreePDs() bool {
	if !l.isolated() {
		return true
	}
	if l.Variant == MPK && l.LivePDs() >= l.MPKKeyLimit {
		return false
	}
	return len(l.pdFree) > 0
}

// resolve decodes addr and fetches its VTE, or faults.
func (l *Lib) resolve(addr uint64, pd vmatable.PDID) (*vmatable.VTE, va.Decoded, error) {
	d, ok := l.Enc.Decode(addr)
	if !ok {
		return nil, d, &Fault{Kind: vmatable.FaultUnmapped, Addr: addr, PD: pd}
	}
	vte := l.Table.Get(d.Class, d.Index)
	if vte == nil {
		return nil, d, &Fault{Kind: vmatable.FaultUnmapped, Addr: addr, PD: pd}
	}
	return vte, d, nil
}
