package privlib

import (
	"fmt"

	"jord/internal/mem/vmatable"
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// --- VMA management APIs (Table 1) ---

// Mmap allocates a new VMA of at least length bytes with the given
// permission into PD pd, returning its base address and the call's cost.
// POSIX-shaped per Listing 1: mmap(0, len, prot, ...).
func (l *Lib) Mmap(core topo.CoreID, pd vmatable.PDID, length uint64, perm vmatable.Perm) (addr uint64, lat engine.Time, err error) {
	addr, lat, err = l.mapInternal(pd, length, perm, false)
	if err != nil {
		return 0, lat, err
	}
	l.record(OpMmap, lat)
	return addr, lat, nil
}

// mapInternal is Mmap without stats recording, also used at boot for
// privileged VMAs.
func (l *Lib) mapInternal(pd vmatable.PDID, length uint64, perm vmatable.Perm, priv bool) (addr uint64, lat engine.Time, err error) {
	if !l.pdLive[pd] {
		return 0, 0, fmt.Errorf("privlib: mmap into dead PD %d", pd)
	}
	class, err := l.Enc.ClassFor(length)
	if err != nil {
		return 0, 0, err
	}
	idx, err := l.allocIndex(class)
	if err != nil {
		return 0, 0, err
	}
	pa, refilled, err := l.Phys.Alloc(class)
	if err != nil {
		l.freeIndex(class, idx)
		return 0, 0, err
	}
	vte := &vmatable.VTE{Bound: length, Offs: pa, Priv: priv}
	if priv {
		vte.Global = true
		vte.GlobalPerm = perm
	} else {
		vte.SetPerm(pd, perm)
		l.grants[pd]++
	}
	if err := l.Table.Insert(class, idx, vte); err != nil {
		l.freeIndex(class, idx)
		return 0, 0, err
	}
	btStats := l.btInsert(class, idx, vte)

	lat = l.instrCost(mmapInstr) + mmapHWCycles + btMutateCost(btStats)
	if l.Variant == MPK {
		// MPK does not help allocation: memory still comes from OS
		// page-based VM (§2.2).
		pages := int((length + 4095) / 4096)
		lat = l.OS.MmapCycles(pages)
	}
	if refilled {
		// The uat_config syscall path: ask the OS for more reserved
		// physical memory (paper §4.4).
		refill := l.OS.SyscallCycles() + l.OS.MmapCycles(int(l.Phys.RefillBytes>>12))
		lat += refill
		l.Stats.RefillCount++
		l.Stats.RefillCycles += refill
	}
	return l.Enc.Encode(class, idx), lat, nil
}

// Munmap deallocates the VMA at addr. The caller's PD must hold a grant on
// it (or it must be the executor domain).
func (l *Lib) Munmap(core topo.CoreID, pd vmatable.PDID, addr uint64) (lat engine.Time, err error) {
	vte, d, err := l.resolve(addr, pd)
	if err != nil {
		return 0, err
	}
	if vte.Priv {
		return 0, &Fault{Kind: vmatable.FaultPrivilege, Addr: addr, PD: pd}
	}
	if l.isolated() && pd != ExecutorPD {
		if _, held, _ := vte.PermFor(pd); !held {
			return 0, &Fault{Kind: vmatable.FaultPermission, Addr: addr, PD: pd}
		}
	}
	for _, sharer := range vte.Sharers() {
		l.grants[sharer]--
	}
	l.Table.Remove(d.Class, d.Index)
	btStats := l.btDelete(d.Class, d.Index)
	wlat, res := l.Sub.VTEDelete(core, d.Class, d.Index)
	if err := l.Phys.Free(d.Class, vte.Offs); err != nil {
		return 0, err
	}
	l.freeIndex(d.Class, d.Index)

	lat = l.instrCost(munmapInstr) + munmapHW + btMutateCost(btStats)
	if res.Sharers > 0 {
		lat += wlat
		l.Stats.ShootdownCount++
		l.Stats.ShootdownCycles += wlat
	}
	if l.Variant == MPK {
		// OS munmap: syscall, PTE teardown, IPI TLB shootdown.
		pages := int((vte.Bound + 4095) / 4096)
		lat = l.OS.MprotectCycles(pages, l.M.Cfg.TotalCores())
	}
	l.record(OpMunmap, lat)
	return lat, nil
}

// Mprotect changes the permission pd holds on the VMA at addr.
func (l *Lib) Mprotect(core topo.CoreID, pd vmatable.PDID, addr uint64, perm vmatable.Perm) (lat engine.Time, err error) {
	if !l.isolated() {
		return 0, nil // JordNI: permission changes are no-ops
	}
	vte, d, err := l.resolve(addr, pd)
	if err != nil {
		return 0, err
	}
	if vte.Priv {
		return 0, &Fault{Kind: vmatable.FaultPrivilege, Addr: addr, PD: pd}
	}
	_, held, _ := vte.PermFor(pd)
	if !held && pd != ExecutorPD {
		return 0, &Fault{Kind: vmatable.FaultPermission, Addr: addr, PD: pd}
	}
	if !held {
		l.grants[pd]++
	}
	old, _, _ := vte.PermFor(pd)
	vte.SetPerm(pd, perm)
	lat = l.vteUpdate(core, d.Class, d.Index, OpMprotect, perm.Has(old))
	return lat, nil
}

// vteUpdate charges a permission-changing VTE write: instruction work, the
// hardware store path, B-tree penalty, and — for revocations — the remote
// VLB shootdown. Monotonic grants skip the shootdown (grantOnly): remote
// cores' cached copies remain correct for the PDs they execute.
func (l *Lib) vteUpdate(core topo.CoreID, class int, index uint64, op Op, grantOnly bool) engine.Time {
	if l.Variant == MPK {
		// Update the permission register, then synchronize the other
		// cores' view in software.
		lat := l.M.Cfg.NSToCycles(mpkSwitchNS + mpkCrossCoreSyncNS)
		l.record(op, lat)
		return lat
	}
	lat := l.instrCost(updateInstr) + updateHW + l.btLookupCost()
	if grantOnly {
		l.Sub.VTEWriteGrant(core, class, index)
	} else {
		wlat, res := l.Sub.VTEWrite(core, class, index)
		if res.Sharers > 0 {
			lat += wlat
			l.Stats.ShootdownCount++
			l.Stats.ShootdownCycles += wlat
		}
	}
	l.record(op, lat)
	return lat
}

// Pmove atomically moves the permission the current PD holds on addr's VMA
// to PD cid, capped at perm (Table 1: pmove(addr, cid, prot)).
func (l *Lib) Pmove(core topo.CoreID, from vmatable.PDID, addr uint64, to vmatable.PDID, perm vmatable.Perm) (lat engine.Time, err error) {
	if !l.isolated() {
		return 0, nil
	}
	vte, d, err := l.resolve(addr, from)
	if err != nil {
		return 0, err
	}
	if vte.Priv {
		return 0, &Fault{Kind: vmatable.FaultPrivilege, Addr: addr, PD: from}
	}
	if !l.pdLive[to] {
		return 0, fmt.Errorf("privlib: pmove to dead PD %d", to)
	}
	_, toHeld, _ := vte.PermFor(to)
	if err := vte.MovePerm(from, to, perm); err != nil {
		return 0, &Fault{Kind: vmatable.FaultPermission, Addr: addr, PD: from}
	}
	l.grants[from]--
	if !toHeld {
		l.grants[to]++
	}
	// pmove revokes from's permission: stale remote translations must go.
	return l.vteUpdate(core, d.Class, d.Index, OpPmove, false), nil
}

// Pcopy duplicates the permission the current PD holds on addr's VMA to PD
// cid, capped at perm.
func (l *Lib) Pcopy(core topo.CoreID, from vmatable.PDID, addr uint64, to vmatable.PDID, perm vmatable.Perm) (lat engine.Time, err error) {
	if !l.isolated() {
		return 0, nil
	}
	vte, d, err := l.resolve(addr, from)
	if err != nil {
		return 0, err
	}
	if vte.Priv {
		return 0, &Fault{Kind: vmatable.FaultPrivilege, Addr: addr, PD: from}
	}
	if !l.pdLive[to] {
		return 0, fmt.Errorf("privlib: pcopy to dead PD %d", to)
	}
	_, toHeld, _ := vte.PermFor(to)
	if err := vte.CopyPerm(from, to, perm); err != nil {
		return 0, &Fault{Kind: vmatable.FaultPermission, Addr: addr, PD: from}
	}
	if !toHeld {
		l.grants[to]++
	}
	// pcopy only adds permission: a grant-only write, no shootdown.
	return l.vteUpdate(core, d.Class, d.Index, OpPcopy, true), nil
}

// --- PD management APIs (Table 1) ---

// Cget creates a new protection domain.
func (l *Lib) Cget(core topo.CoreID) (pd vmatable.PDID, lat engine.Time, err error) {
	if !l.isolated() {
		return ExecutorPD, 0, nil
	}
	if len(l.pdFree) == 0 || (l.Variant == MPK && l.LivePDs() >= l.MPKKeyLimit) {
		return 0, 0, fmt.Errorf("privlib: out of protection domains")
	}
	pd = l.pdFree[len(l.pdFree)-1]
	l.pdFree = l.pdFree[:len(l.pdFree)-1]
	l.pdLive[pd] = true
	lat = l.instrCost(cgetInstr) + cgetHW
	if l.Variant == MPK {
		lat = l.OS.SyscallCycles() // pkey_alloc
	}
	l.record(OpCget, lat)
	return pd, lat, nil
}

// Cput destroys a protection domain. All its VMA grants must have been
// transferred or unmapped first; leaking a grant is a policy violation.
func (l *Lib) Cput(core topo.CoreID, pd vmatable.PDID) (lat engine.Time, err error) {
	if !l.isolated() {
		return 0, nil
	}
	if pd == ExecutorPD {
		return 0, fmt.Errorf("privlib: cannot destroy the executor domain")
	}
	if !l.pdLive[pd] {
		return 0, fmt.Errorf("privlib: cput of dead PD %d", pd)
	}
	if l.grants[pd] != 0 {
		return 0, fmt.Errorf("privlib: cput of PD %d with %d live grants", pd, l.grants[pd])
	}
	delete(l.pdLive, pd)
	delete(l.grants, pd)
	l.pdFree = append(l.pdFree, pd)
	lat = l.instrCost(cputInstr) + cputHW
	if l.Variant == MPK {
		lat = l.OS.SyscallCycles() // pkey_free
	}
	l.record(OpCput, lat)
	return lat, nil
}

// Ccall switches the core into PD pd (writes ucid, saves the caller's
// registers, loads the function's). The runtime handles the actual control
// transfer; PrivLib charges and validates.
func (l *Lib) Ccall(core topo.CoreID, pd vmatable.PDID) (lat engine.Time, err error) {
	return l.pdSwitch(core, pd, OpCcall)
}

// Center resumes a previously suspended PD.
func (l *Lib) Center(core topo.CoreID, pd vmatable.PDID) (lat engine.Time, err error) {
	return l.pdSwitch(core, pd, OpCenter)
}

// Cexit suspends the current PD and switches back to the executor.
func (l *Lib) Cexit(core topo.CoreID) (lat engine.Time, err error) {
	return l.pdSwitch(core, ExecutorPD, OpCexit)
}

func (l *Lib) pdSwitch(core topo.CoreID, pd vmatable.PDID, op Op) (engine.Time, error) {
	if !l.isolated() {
		return 0, nil
	}
	if !l.pdLive[pd] {
		return 0, fmt.Errorf("privlib: %v into dead PD %d", op, pd)
	}
	lat := l.instrCost(switchInstr) + switchHW
	if l.Variant == MPK {
		lat = l.M.Cfg.NSToCycles(mpkSwitchNS) // WRPKRU
	}
	l.record(op, lat)
	return lat, nil
}

// --- Data path ---

// Access models one memory access by untrusted code running in PD pd:
// translation through the VLB/VTW and the permission check. In the JordNI
// variant the permission check is bypassed but translation still happens
// (memory still lives in VMAs); unmapped addresses fault in every variant.
func (l *Lib) Access(core topo.CoreID, pd vmatable.PDID, addr uint64, need vmatable.Perm, instr bool) (engine.Time, error) {
	preWalks := l.Sub.WalkCount
	lat, fault := l.Sub.Access(core, pd, addr, need, instr, false)
	if l.BT != nil && l.Sub.WalkCount > preWalks {
		// JordBT: the walker chases B-tree nodes instead of computing one
		// plain-list position (~20 ns vs ~2 ns miss penalty, §6.2).
		lat += l.btLookupCost()
	}
	switch {
	case fault == vmatable.FaultNone:
		return lat, nil
	case !l.isolated() && fault == vmatable.FaultPermission:
		return lat, nil // JordNI: isolation bypassed
	default:
		return lat, &Fault{Kind: fault, Addr: addr, PD: pd}
	}
}

// WalkPenalty returns the extra VLB miss latency the table organization
// imposes beyond the plain list (0 for plain list, the pointer-chase cost
// for the B-tree). The runtime adds it per VLB miss.
func (l *Lib) WalkPenalty() engine.Time { return l.btLookupCost() }

// DirectJumpIntoPrivLib models untrusted code transferring control into a
// privileged VMA without passing through a uatg gate: the decoder sees a
// 0->1 transition of the P bit whose first instruction is not uatg and
// raises an invalid instruction fault (§4.3).
func (l *Lib) DirectJumpIntoPrivLib(core topo.CoreID, pd vmatable.PDID) error {
	return &Fault{Kind: vmatable.FaultGate, Addr: l.PrivHeapVA, PD: pd}
}

// WriteCSR models untrusted code executing a CSR instruction on uatp,
// uatc, or ucid: the decoder requires the P bit and marks the instruction
// illegal otherwise (§4.3).
func (l *Lib) WriteCSR(core topo.CoreID, pd vmatable.PDID, privileged bool) error {
	if privileged {
		return nil
	}
	return &Fault{Kind: vmatable.FaultPrivilege, PD: pd}
}
