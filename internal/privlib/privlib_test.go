package privlib

import (
	"errors"
	"testing"

	"jord/internal/mem/vmatable"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

func boot(t *testing.T, variant Variant) *Lib {
	t.Helper()
	l, err := Boot(topo.MustMachine(topo.QFlex32()), vlb.DefaultConfig(), variant)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBootCreatesPrivilegedVMAs(t *testing.T) {
	l := boot(t, PlainList)
	vte, _, ok := l.Table.Lookup(l.TableVA)
	if !ok || !vte.Priv {
		t.Fatal("VMA table must live in a privileged VMA")
	}
	vte, _, ok = l.Table.Lookup(l.PrivHeapVA)
	if !ok || !vte.Priv {
		t.Fatal("PrivLib heap must be privileged")
	}
}

func TestMmapMunmapLifecycle(t *testing.T) {
	l := boot(t, PlainList)
	pd, _, err := l.Cget(0)
	if err != nil {
		t.Fatal(err)
	}
	addr, lat, err := l.Mmap(0, pd, 0x1000, vmatable.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("mmap should cost time")
	}
	// The PD can access its VMA...
	if _, err := l.Access(0, pd, addr, vmatable.PermW, false); err != nil {
		t.Fatalf("owner access: %v", err)
	}
	// ...another PD cannot.
	pd2, _, _ := l.Cget(0)
	if _, err := l.Access(0, pd2, addr, vmatable.PermR, false); err == nil {
		t.Fatal("foreign PD access succeeded")
	}
	if _, err := l.Munmap(0, pd, addr); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Access(0, pd, addr, vmatable.PermR, false); err == nil {
		t.Fatal("access after munmap succeeded")
	}
	// PDs are destroyable once their grants are gone.
	if _, err := l.Cput(0, pd); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Cput(0, pd2); err != nil {
		t.Fatal(err)
	}
}

func TestCputRejectsLiveGrants(t *testing.T) {
	l := boot(t, PlainList)
	pd, _, _ := l.Cget(0)
	addr, _, err := l.Mmap(0, pd, 256, vmatable.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Cput(0, pd); err == nil {
		t.Fatal("cput with a live grant succeeded")
	}
	l.Munmap(0, pd, addr)
	if _, err := l.Cput(0, pd); err != nil {
		t.Fatal(err)
	}
}

func TestPmoveTransfersAccess(t *testing.T) {
	l := boot(t, PlainList)
	src, _, _ := l.Cget(0)
	dst, _, _ := l.Cget(0)
	addr, _, err := l.Mmap(0, src, 512, vmatable.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Pmove(0, src, addr, dst, vmatable.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Access(0, src, addr, vmatable.PermR, false); err == nil {
		t.Fatal("source retained access after pmove")
	}
	if _, err := l.Access(0, dst, addr, vmatable.PermW, false); err != nil {
		t.Fatalf("target access after pmove: %v", err)
	}
	// Grant accounting moved with it: src is now destroyable, dst is not.
	if _, err := l.Cput(0, src); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Cput(0, dst); err == nil {
		t.Fatal("dst destroyable despite holding the moved grant")
	}
}

func TestPcopySharesAccess(t *testing.T) {
	l := boot(t, PlainList)
	src, _, _ := l.Cget(0)
	dst, _, _ := l.Cget(0)
	addr, _, _ := l.Mmap(0, src, 512, vmatable.PermRW)
	if _, err := l.Pcopy(0, src, addr, dst, vmatable.PermR); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Access(0, src, addr, vmatable.PermW, false); err != nil {
		t.Fatal("source lost access after pcopy")
	}
	if _, err := l.Access(0, dst, addr, vmatable.PermR, false); err != nil {
		t.Fatal("target did not gain read access")
	}
	if _, err := l.Access(0, dst, addr, vmatable.PermW, false); err == nil {
		t.Fatal("pcopy amplified permissions")
	}
}

func TestMprotect(t *testing.T) {
	l := boot(t, PlainList)
	pd, _, _ := l.Cget(0)
	addr, _, _ := l.Mmap(0, pd, 256, vmatable.PermRW)
	if _, err := l.Mprotect(0, pd, addr, vmatable.PermR); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Access(0, pd, addr, vmatable.PermW, false); err == nil {
		t.Fatal("write allowed after mprotect to r--")
	}
	if _, err := l.Access(0, pd, addr, vmatable.PermR, false); err != nil {
		t.Fatal("read denied after mprotect to r--")
	}
}

func TestThreatModelForgedAddresses(t *testing.T) {
	// §3.1: attackers forge arbitrary addresses; every such access must
	// fault.
	l := boot(t, PlainList)
	pd, _, _ := l.Cget(0)
	for _, addr := range []uint64{0, 0x1234, 1 << 47, l.Enc.Encode(3, 77)} {
		_, err := l.Access(0, pd, addr, vmatable.PermR, false)
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("forged address %#x: err = %v, want Fault", addr, err)
		}
	}
	// PrivLib state is unreachable.
	_, err := l.Access(0, pd, l.PrivHeapVA, vmatable.PermR, false)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != vmatable.FaultPrivilege {
		t.Fatalf("privlib heap access: %v, want privilege fault", err)
	}
	if _, err := l.Access(0, pd, l.TableVA, vmatable.PermW, false); err == nil {
		t.Fatal("VMA table writable by untrusted code")
	}
	// CSRs and gate bypass.
	if err := l.WriteCSR(0, pd, false); err == nil {
		t.Fatal("CSR write from unprivileged code succeeded")
	}
	if err := l.WriteCSR(0, pd, true); err != nil {
		t.Fatal("CSR write from PrivLib failed")
	}
	if err := l.DirectJumpIntoPrivLib(0, pd); err == nil {
		t.Fatal("gate bypass succeeded")
	}
}

func TestMunmapValidation(t *testing.T) {
	l := boot(t, PlainList)
	pd, _, _ := l.Cget(0)
	pd2, _, _ := l.Cget(0)
	addr, _, _ := l.Mmap(0, pd, 256, vmatable.PermRW)
	if _, err := l.Munmap(0, pd2, addr); err == nil {
		t.Fatal("munmap by non-holder succeeded")
	}
	if _, err := l.Munmap(0, pd, l.TableVA); err == nil {
		t.Fatal("munmap of privileged VMA succeeded")
	}
	if _, err := l.Munmap(0, pd, 0xdead); err == nil {
		t.Fatal("munmap of unmapped address succeeded")
	}
}

func TestPDLifecycleErrors(t *testing.T) {
	l := boot(t, PlainList)
	if _, err := l.Cput(0, ExecutorPD); err == nil {
		t.Fatal("destroyed the executor domain")
	}
	if _, err := l.Cput(0, 99); err == nil {
		t.Fatal("destroyed a dead PD")
	}
	if _, err := l.Ccall(0, 99); err == nil {
		t.Fatal("ccall into a dead PD succeeded")
	}
	pd, _, _ := l.Cget(0)
	if _, err := l.Cput(0, pd); err != nil {
		t.Fatal(err)
	}
	// The freed ID goes back on the free list and is reused.
	pd2, _, _ := l.Cget(0)
	if pd2 != pd {
		t.Fatalf("free list not LIFO: got %d, want %d", pd2, pd)
	}
}

func TestVMAAddressReuse(t *testing.T) {
	l := boot(t, PlainList)
	pd, _, _ := l.Cget(0)
	a1, _, _ := l.Mmap(0, pd, 256, vmatable.PermRW)
	l.Munmap(0, pd, a1)
	a2, _, _ := l.Mmap(0, pd, 256, vmatable.PermRW)
	if a1 != a2 {
		t.Fatalf("index free list not reused: %#x vs %#x", a1, a2)
	}
}

func TestNoIsolationBypassesChecks(t *testing.T) {
	l := boot(t, NoIsolation)
	pd, lat, err := l.Cget(0)
	if err != nil || lat != 0 || pd != ExecutorPD {
		t.Fatalf("JordNI cget: pd=%d lat=%d err=%v, want 0,0,nil", pd, lat, err)
	}
	addr, _, err := l.Mmap(0, ExecutorPD, 256, vmatable.PermR)
	if err != nil {
		t.Fatal(err)
	}
	// Writes with an r-- grant pass: isolation is bypassed.
	if _, err := l.Access(0, 77, addr, vmatable.PermW, false); err != nil {
		t.Fatalf("JordNI permission fault: %v", err)
	}
	// Unmapped addresses still fault (translation is needed regardless).
	if _, err := l.Access(0, 77, l.Enc.Encode(0, 999), vmatable.PermR, false); err == nil {
		t.Fatal("JordNI allowed an unmapped access")
	}
	// Isolation ops are free.
	if lat, err := l.Pmove(0, 1, addr, 2, vmatable.PermR); err != nil || lat != 0 {
		t.Fatalf("JordNI pmove: lat=%d err=%v", lat, err)
	}
	if lat, _ := l.Ccall(0, ExecutorPD); lat != 0 {
		t.Fatal("JordNI ccall should be free")
	}
}

func TestBTreeVariantCostsMore(t *testing.T) {
	plain := boot(t, PlainList)
	bt := boot(t, BTree)
	pdP, _, _ := plain.Cget(0)
	pdB, _, _ := bt.Cget(0)
	_, latP, err := plain.Mmap(0, pdP, 4096, vmatable.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	_, latB, err := bt.Mmap(0, pdB, 4096, vmatable.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if latB <= latP {
		t.Fatalf("B-tree mmap %d should cost more than plain list %d", latB, latP)
	}
	if bt.WalkPenalty() <= 0 {
		t.Fatal("B-tree walk penalty should be positive")
	}
	if plain.WalkPenalty() != 0 {
		t.Fatal("plain list should have no walk penalty")
	}
}

func TestStatsAccumulate(t *testing.T) {
	l := boot(t, PlainList)
	pd, _, _ := l.Cget(0)
	addr, _, _ := l.Mmap(0, pd, 256, vmatable.PermRW)
	l.Mprotect(0, pd, addr, vmatable.PermR)
	l.Munmap(0, pd, addr)
	l.Cput(0, pd)
	for _, op := range []Op{OpCget, OpMmap, OpMprotect, OpMunmap, OpCput} {
		if l.Stats.Ops[op].Count != 1 || l.Stats.Ops[op].Cycles <= 0 {
			t.Errorf("%v: count=%d cycles=%d", op, l.Stats.Ops[op].Count, l.Stats.Ops[op].Cycles)
		}
	}
}

// TestTable4Calibration pins the microbenchmark latencies to the paper's
// Table 4 for both machine models (±1 ns rounding slack).
func TestTable4Calibration(t *testing.T) {
	type row struct {
		name      string
		simNS     float64
		fpgaNS    float64
		tolerance float64
	}
	rows := []row{
		{"VMA update", 16, 33, 1.5},
		{"VMA insertion", 16, 37, 1.5},
		{"VMA deletion", 27, 39, 1.5},
		{"PD creation", 11, 25, 1.5},
		{"PD deletion", 14, 30, 1.5},
		{"PD switching", 12, 22, 1.5},
	}
	measure := func(cfg topo.Config) map[string]float64 {
		l, err := Boot(topo.MustMachine(cfg), vlb.DefaultConfig(), PlainList)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		pd, latCget, _ := l.Cget(0)
		out["PD creation"] = cfg.CyclesToNS(latCget)
		addr, latMmap, _ := l.Mmap(0, pd, 256, vmatable.PermRW)
		out["VMA insertion"] = cfg.CyclesToNS(latMmap)
		latUpd, _ := l.Mprotect(0, pd, addr, vmatable.PermR)
		out["VMA update"] = cfg.CyclesToNS(latUpd)
		latSwitch, _ := l.Ccall(0, pd)
		out["PD switching"] = cfg.CyclesToNS(latSwitch)
		latDel, _ := l.Munmap(0, pd, addr)
		out["VMA deletion"] = cfg.CyclesToNS(latDel)
		latCput, _ := l.Cput(0, pd)
		out["PD deletion"] = cfg.CyclesToNS(latCput)
		return out
	}
	sim := measure(topo.QFlex32())
	fpga := measure(topo.FPGA2())
	for _, r := range rows {
		if d := sim[r.name] - r.simNS; d > r.tolerance || d < -r.tolerance {
			t.Errorf("simulator %s = %.1f ns, want %.0f ns", r.name, sim[r.name], r.simNS)
		}
		if d := fpga[r.name] - r.fpgaNS; d > r.tolerance || d < -r.tolerance {
			t.Errorf("FPGA %s = %.1f ns, want %.0f ns", r.name, fpga[r.name], r.fpgaNS)
		}
	}
}

// TestIsolationOverheadWithinBudget checks the §6.2 claim that all PD and
// VMA operations complete within 30 ns (simulator) and that one function
// invocation's isolation work stays under 120 ns.
func TestIsolationOverheadWithinBudget(t *testing.T) {
	l := boot(t, PlainList)
	cfg := l.M.Cfg

	// One invocation (Figure 4): cget, 2x mmap (stack+heap), pcopy code,
	// pmove argbuf in, pmove argbuf out, ccall... then teardown.
	pd, lat, _ := l.Cget(0)
	total := lat
	stack, lat, _ := l.Mmap(0, pd, 8192, vmatable.PermRW)
	total += lat
	heap, lat, _ := l.Mmap(0, pd, 4096, vmatable.PermRW)
	total += lat
	// Individual op budget: every op <= 30 ns.
	if ns := cfg.CyclesToNS(total); ns > 90 {
		t.Fatalf("setup ops = %.0f ns, want each <= 30", ns)
	}
	lat, _ = l.Munmap(0, pd, stack)
	total += lat
	lat, _ = l.Munmap(0, pd, heap)
	total += lat
	lat, _ = l.Cput(0, pd)
	total += lat
	if ns := cfg.CyclesToNS(total); ns > 150 {
		t.Fatalf("full isolation lifecycle = %.0f ns, want ~120", ns)
	}
}
