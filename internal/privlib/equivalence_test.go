package privlib

import (
	"math/rand/v2"
	"testing"

	"jord/internal/mem/vmatable"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// TestVariantsSemanticallyEquivalent drives the same randomized operation
// sequence through the plain-list and B-tree variants and checks that
// every observable result matches: addresses handed out, successes,
// failures, and access decisions. The VMA table organization is a timing
// choice, never a semantic one (§5: "the PrivLib performs B-tree instead
// of plain list operations for VMAs").
func TestVariantsSemanticallyEquivalent(t *testing.T) {
	bootVariant := func(v Variant) *Lib {
		l, err := Boot(topo.MustMachine(topo.QFlex32()), vlb.DefaultConfig(), v)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	plain := bootVariant(PlainList)
	bt := bootVariant(BTree)

	rng := rand.New(rand.NewPCG(2024, 7))
	type vma struct {
		addr uint64
		pd   vmatable.PDID
	}
	var pdsP, pdsB []vmatable.PDID
	var vmasP, vmasB []vma

	step := func(op int) {
		switch {
		case op < 2 || len(pdsP) == 0: // cget
			p1, _, err1 := plain.Cget(0)
			p2, _, err2 := bt.Cget(0)
			if (err1 == nil) != (err2 == nil) || p1 != p2 {
				t.Fatalf("cget diverged: %v/%v %v/%v", p1, p2, err1, err2)
			}
			if err1 == nil {
				pdsP = append(pdsP, p1)
				pdsB = append(pdsB, p2)
			}
		case op < 6: // mmap
			i := rng.IntN(len(pdsP))
			size := uint64(rng.IntN(8192) + 1)
			perm := vmatable.Perm(rng.IntN(7) + 1)
			a1, _, err1 := plain.Mmap(0, pdsP[i], size, perm)
			a2, _, err2 := bt.Mmap(0, pdsB[i], size, perm)
			if (err1 == nil) != (err2 == nil) || a1 != a2 {
				t.Fatalf("mmap diverged: %#x/%#x %v/%v", a1, a2, err1, err2)
			}
			if err1 == nil {
				vmasP = append(vmasP, vma{a1, pdsP[i]})
				vmasB = append(vmasB, vma{a2, pdsB[i]})
			}
		case op < 8 && len(vmasP) > 0: // access probe
			i := rng.IntN(len(vmasP))
			pd := pdsP[rng.IntN(len(pdsP))]
			need := vmatable.Perm(1 << rng.IntN(3))
			_, f1 := access(plain, vmasP[i].addr, pd, need)
			_, f2 := access(bt, vmasB[i].addr, pd, need)
			if f1 != f2 {
				t.Fatalf("access diverged: %v vs %v", f1, f2)
			}
		case op < 9 && len(vmasP) > 0: // munmap
			i := rng.IntN(len(vmasP))
			_, err1 := plain.Munmap(0, vmasP[i].pd, vmasP[i].addr)
			_, err2 := bt.Munmap(0, vmasB[i].pd, vmasB[i].addr)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("munmap diverged: %v vs %v", err1, err2)
			}
			vmasP = append(vmasP[:i], vmasP[i+1:]...)
			vmasB = append(vmasB[:i], vmasB[i+1:]...)
		case len(vmasP) > 0: // pmove between PDs
			i := rng.IntN(len(vmasP))
			to := pdsP[rng.IntN(len(pdsP))]
			_, err1 := plain.Pmove(0, vmasP[i].pd, vmasP[i].addr, to, vmatable.PermR)
			_, err2 := bt.Pmove(0, vmasB[i].pd, vmasB[i].addr, to, vmatable.PermR)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("pmove diverged: %v vs %v", err1, err2)
			}
			if err1 == nil {
				vmasP[i].pd = to
				vmasB[i].pd = to
			}
		}
	}
	for i := 0; i < 3000; i++ {
		step(rng.IntN(10))
	}
	if plain.Table.Live() != bt.Table.Live() {
		t.Fatalf("live VTEs diverged: %d vs %d", plain.Table.Live(), bt.Table.Live())
	}
	// The B-tree mirror tracks the same population (minus the boot VMAs it
	// shares).
	if bt.BT.Len() != bt.Table.Live() {
		t.Fatalf("B-tree mirror out of sync: %d vs %d live", bt.BT.Len(), bt.Table.Live())
	}
	if err := bt.BT.Check(); err != nil {
		t.Fatalf("B-tree invariants broken after workload: %v", err)
	}
}

func access(l *Lib, addr uint64, pd vmatable.PDID, need vmatable.Perm) (bool, vmatable.FaultKind) {
	_, err := l.Access(0, pd, addr, need, false)
	if err == nil {
		return true, vmatable.FaultNone
	}
	f, ok := err.(*Fault)
	if !ok {
		return false, vmatable.FaultNone
	}
	return false, f.Kind
}

// TestRefillCostSurfacesInMmap checks that the uat_config OS path is
// charged when PrivLib's reserved memory runs out (§4.4).
func TestRefillCostSurfacesInMmap(t *testing.T) {
	l, err := Boot(topo.MustMachine(topo.QFlex32()), vlb.DefaultConfig(), PlainList)
	if err != nil {
		t.Fatal(err)
	}
	pd, _, _ := l.Cget(0)
	// A 4 MB allocation exceeds the 2 MB refill granularity: guaranteed to
	// hit the OS.
	_, lat, err := l.Mmap(0, pd, 4<<20, vmatable.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if l.Stats.RefillCount == 0 {
		t.Fatal("large mmap did not refill from the OS")
	}
	// The OS path costs microseconds; a free-list hit costs ~16 ns.
	if ns := l.M.Cfg.CyclesToNS(lat); ns < 500 {
		t.Fatalf("refilling mmap = %.0f ns, expected to include syscall cost", ns)
	}
	// Small allocations after the next refill come from the bump region /
	// free lists at full speed (the refill is amortized over thousands of
	// chunks).
	if _, _, err := l.Mmap(0, pd, 256, vmatable.PermRW); err != nil {
		t.Fatal(err) // this one may pay a fresh 2 MB refill
	}
	_, lat2, err := l.Mmap(0, pd, 256, vmatable.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if ns := l.M.Cfg.CyclesToNS(lat2); ns > 30 {
		t.Fatalf("free-list mmap = %.0f ns, want ~16", ns)
	}
}
