package privlib

import "jord/internal/sim/engine"

// Op enumerates the PrivLib APIs (Table 1) plus the hardware walk, for
// per-operation accounting.
type Op int

const (
	OpMmap Op = iota
	OpMunmap
	OpMprotect
	OpPmove
	OpPcopy
	OpCget
	OpCput
	OpCcall
	OpCenter
	OpCexit
	NumOps
)

func (o Op) String() string {
	switch o {
	case OpMmap:
		return "mmap"
	case OpMunmap:
		return "munmap"
	case OpMprotect:
		return "mprotect"
	case OpPmove:
		return "pmove"
	case OpPcopy:
		return "pcopy"
	case OpCget:
		return "cget"
	case OpCput:
		return "cput"
	case OpCcall:
		return "ccall"
	case OpCenter:
		return "center"
	case OpCexit:
		return "cexit"
	default:
		return "op?"
	}
}

// Per-operation cost decomposition. Each API costs
//
//	Instr(instrCount) + hwCycles [+ dynamic components]
//
// where the instruction part scales with the platform's IPC
// (InstrCycleFactor: 1.0 simulator, 2.4 FPGA RTL) and the hardware part —
// stores, CSR effects, local invalidations — does not. The split is
// calibrated so that the single-core microbenchmark of Table 4 reproduces
// both columns:
//
//	op            sim target   fpga target   instr  hw
//	VMA insertion   16 ns        37 ns         60     4
//	VMA update      16 ns        33 ns         48    16
//	VMA deletion    27 ns        39 ns         34    74
//	PD creation     11 ns        25 ns         40     4
//	PD deletion     14 ns        30 ns         46    10
//	PD switching    12 ns        22 ns         29    19
//
// (sim: instr + hw cycles at 4 GHz; fpga: 2.4*instr + hw.)
// Instruction counts below include the uatg gate entry and the mandatory
// security policy checks of each API.
const (
	mmapInstr    = 60 // gate, class calc, free-list pops, VTE fill
	mmapHWCycles = 4  // VTE store (L1 hit)
	updateInstr  = 48 // gate, policy checks, sub-array edit
	updateHW     = 16 // VTE store + local VLB invalidation path
	munmapInstr  = 34 // gate, free-list pushes
	munmapHW     = 74 // invalidation round trip through the VTD
	cgetInstr    = 40 // gate, PD free-list pop, PD metadata init
	cgetHW       = 4
	cputInstr    = 46 // gate, grant checks, free-list push
	cputHW       = 10
	switchInstr  = 29 // gate, register save/restore
	switchHW     = 19 // ucid CSR write + pipeline effects

	// B-tree variant (JordBT) dynamic costs: each traversed node is a
	// dependent pointer chase that usually misses L1 (~LLC latency with
	// queueing), each rebalance touches several lines and recomputes
	// separators. Calibrated so the B-tree walk penalty is ~20 ns vs the
	// plain list's 2 ns and PrivLib VMA management grows by ~167% (§6.2).
	btNodeFetchCycles = 45
	btRebalanceCycles = 150
)

// instrCost scales an API's instruction count by the platform IPC model.
func (l *Lib) instrCost(body int) engine.Time {
	return l.M.Cfg.Instr(body)
}
