package experiments

import "testing"

func TestDispatchAblationOrdering(t *testing.T) {
	r, err := RunDispatchAblation(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]DispatchRow{}
	for _, row := range r.Rows {
		byName[row.Policy.String()] = row
	}
	jbsq := byName["jbsq"].TputUnderSLO
	random := byName["random"].TputUnderSLO
	if jbsq <= 0 {
		t.Fatal("JBSQ achieved nothing")
	}
	// Queue-aware policies beat blind random placement under skewed
	// service times.
	if random >= jbsq {
		t.Errorf("random (%.2f) should trail JBSQ (%.2f)", random/1e6, jbsq/1e6)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestMPKComparisonReproducesSection22(t *testing.T) {
	r, err := RunMPKComparison(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MPKRow{}
	for _, row := range r.Rows {
		byName[row.System] = row
	}
	if byName["Jord"].TputUnderSLO <= 0 {
		t.Fatal("Jord achieved nothing")
	}
	// Real MPK deadlocks under nested invocations: 15 keys, all held by
	// suspended parents.
	if !byName["MPK-15keys"].Deadlocked {
		t.Error("MPK with 15 keys should stall under nested calls")
	}
	// Even idealized MPK (unlimited keys) cannot meet the SLO: allocation
	// still costs OS microseconds.
	if got := byName["MPK-ideal"].TputUnderSLO; got > byName["Jord"].TputUnderSLO/10 {
		t.Errorf("idealized MPK = %.2f MRPS, expected far below Jord's %.2f",
			got/1e6, byName["Jord"].TputUnderSLO/1e6)
	}
}
