package experiments

import (
	"fmt"
	"strings"

	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// OverheadRow is one workload's §6.2 overhead accounting.
type OverheadRow struct {
	Workload string
	// PerRequestOverheadNS is the mean dispatch+isolation overhead per
	// external request (paper: ~360 ns on average).
	PerRequestOverheadNS float64
	// OverheadFraction is (dispatch+isolation)/service across invocations
	// (paper: 8%/4%/3% for Hipster/Hotel/Social, ~30% for Media).
	OverheadFraction float64
	// IsolationPerInvocationNS (paper: total isolation below 120 ns;
	// our number also includes the VMA (de)allocations both Jord and
	// JordNI pay).
	IsolationPerInvocationNS float64
}

// OverheadsResult reproduces the §6.2 overhead claims.
type OverheadsResult struct {
	Rows []OverheadRow
}

// RunOverheads measures per-request and per-invocation overheads at light
// load on Jord.
func RunOverheads(sc Scale, seed uint64) (*OverheadsResult, error) {
	machine := topo.QFlex32()
	vcfg := vlb.DefaultConfig()
	res := &OverheadsResult{}
	for _, wl := range []string{"hipster", "hotel", "media", "social"} {
		r, freq, err := runPoint(Jord, machine, vcfg, wl, fig9Grid[wl][0], sc, seed)
		if err != nil {
			return nil, fmt.Errorf("overheads %s: %w", wl, err)
		}
		var isolCycles, dispCycles, invocations uint64
		for _, fs := range r.PerFunc {
			isolCycles += uint64(fs.Isolation)
			dispCycles += uint64(fs.Dispatch)
			invocations += fs.Count
		}
		if invocations == 0 {
			continue
		}
		perInvIsolNS := float64(isolCycles) / float64(invocations) / freq
		perReqNS := (float64(isolCycles) + float64(dispCycles)) / float64(r.Completed) / freq
		res.Rows = append(res.Rows, OverheadRow{
			Workload:                 wl,
			PerRequestOverheadNS:     perReqNS,
			OverheadFraction:         r.OverheadFraction(),
			IsolationPerInvocationNS: perInvIsolNS,
		})
	}
	return res, nil
}

// Render prints the overhead table.
func (r *OverheadsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6.2 overhead accounting (Jord, light load)\n")
	fmt.Fprintf(&b, "%-10s %22s %18s %24s\n",
		"workload", "overhead/request (ns)", "overhead fraction", "isolation/invocation(ns)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %22.0f %17.1f%% %24.0f\n",
			row.Workload, row.PerRequestOverheadNS,
			row.OverheadFraction*100, row.IsolationPerInvocationNS)
	}
	return b.String()
}
