package experiments

import (
	"fmt"
	"strings"

	"jord/internal/metrics"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// Fig12Series is one VLB size's latency-vs-load curve.
type Fig12Series struct {
	Entries      int
	Points       []metrics.LoadPoint
	TputUnderSLO float64
}

// Fig12Panel is one of the figure's two panels: I-VLB sizing on Hipster,
// D-VLB sizing on Media (the two most VLB-sensitive workloads, §6.2).
type Fig12Panel struct {
	Workload string
	VLBKind  string // "I-VLB" or "D-VLB"
	SLONS    float64
	Series   []Fig12Series
}

// Fig12Result reproduces Figure 12: sensitivity of performance to the
// number of I-VLB and D-VLB entries.
type Fig12Result struct {
	Panels []Fig12Panel
}

// RunFig12 sweeps VLB sizes {1, 2, 4, 8, 16}.
func RunFig12(sc Scale, seed uint64) (*Fig12Result, error) {
	machine := topo.QFlex32()
	res := &Fig12Result{}
	panels := []struct {
		workload string
		kind     string
	}{
		{"hipster", "I-VLB"},
		{"media", "D-VLB"},
	}
	sizes := []int{1, 2, 4, 8, 16}
	for _, pn := range panels {
		slo, err := sloFor(pn.workload, machine, vlb.DefaultConfig(), sc, seed)
		if err != nil {
			return nil, err
		}
		panel := Fig12Panel{Workload: pn.workload, VLBKind: pn.kind, SLONS: slo}
		grid := downsample(fig9Grid[pn.workload], sc.MaxPoints)
		for _, size := range sizes {
			vcfg := vlb.DefaultConfig()
			if pn.kind == "I-VLB" {
				vcfg.IVLBEntries = size
			} else {
				vcfg.DVLBEntries = size
			}
			series := Fig12Series{Entries: size}
			for _, rps := range grid {
				r, freq, err := runPoint(Jord, machine, vcfg, pn.workload, rps, sc, seed)
				if err != nil {
					return nil, fmt.Errorf("fig12 %s %d: %w", pn.workload, size, err)
				}
				series.Points = append(series.Points, metrics.LoadPoint{
					LoadRPS:     rps,
					P99NS:       r.P99LatencyNS(),
					MeasuredRPS: r.MeasuredRPS(freq),
				})
				if r.P99LatencyNS() > 4*slo {
					break
				}
			}
			series.TputUnderSLO = metrics.ThroughputUnderSLO(series.Points, slo)
			panel.Series = append(panel.Series, series)
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// Render prints throughput-under-SLO per size plus the latency curves.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: sensitivity to I-VLB and D-VLB entries\n")
	for _, panel := range r.Panels {
		fmt.Fprintf(&b, "\n[%s, %s]  SLO = %.1f us\n", panel.Workload, panel.VLBKind, panel.SLONS/1000)
		fmt.Fprintf(&b, "%-8s %22s\n", "entries", "tput under SLO (MRPS)")
		for _, s := range panel.Series {
			fmt.Fprintf(&b, "%-8d %22.2f\n", s.Entries, s.TputUnderSLO/1e6)
		}
	}
	return b.String()
}
