package experiments

import (
	"fmt"
	"strings"

	"jord/internal/metrics"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// SampledPoint is one (system, workload, load) point measured over
// independent trials — the SimFlex-style sampling methodology of the
// paper's simulator family (its ref [84]): several short windows with
// distinct seeds, reported with 95% confidence intervals, instead of one
// long window.
type SampledPoint struct {
	System   SystemKind
	Workload string
	RPS      float64
	Trials   int

	P99NS    metrics.Summary
	TputMRPS metrics.Summary
}

// RunSampledPoint measures the point `trials` times with seeds baseSeed,
// baseSeed+1, ...
func RunSampledPoint(kind SystemKind, workload string, rps float64, sc Scale, trials int, baseSeed uint64) (*SampledPoint, error) {
	if trials < 1 {
		trials = 1
	}
	machine := topo.QFlex32()
	vcfg := vlb.DefaultConfig()
	p99s := make([]float64, 0, trials)
	tputs := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		r, freq, err := runPoint(kind, machine, vcfg, workload, rps, sc, baseSeed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("sampled point trial %d: %w", i, err)
		}
		p99s = append(p99s, r.P99LatencyNS())
		tputs = append(tputs, r.MeasuredRPS(freq)/1e6)
	}
	return &SampledPoint{
		System:   kind,
		Workload: workload,
		RPS:      rps,
		Trials:   trials,
		P99NS:    metrics.Summarize(p99s),
		TputMRPS: metrics.Summarize(tputs),
	}, nil
}

// Render formats the sampled point.
func (p *SampledPoint) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s at %.2f MRPS over %d trials:\n",
		p.System, p.Workload, p.RPS/1e6, p.Trials)
	fmt.Fprintf(&b, "  p99 = %.1f +/- %.1f us (95%% CI; min %.1f, max %.1f)\n",
		p.P99NS.Mean/1000, p.P99NS.CI95/1000, p.P99NS.Min/1000, p.P99NS.Max/1000)
	fmt.Fprintf(&b, "  measured = %.2f +/- %.2f MRPS\n",
		p.TputMRPS.Mean, p.TputMRPS.CI95)
	return b.String()
}
