package experiments

import "testing"

func TestClusterScalingShape(t *testing.T) {
	r, err := RunCluster(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byLabel := map[string]ClusterRow{}
	for _, row := range r.Rows {
		byLabel[row.Label] = row
	}
	one, two, four := byLabel["1"], byLabel["2"], byLabel["4"]
	// One server saturates below the offered load; two absorb it.
	if one.MeasuredMRPS >= one.OfferedMRPS*0.9 {
		t.Errorf("1 server measured %.1f M at %.1f M offered: should saturate", one.MeasuredMRPS, one.OfferedMRPS)
	}
	if two.MeasuredMRPS < one.MeasuredMRPS*1.2 {
		t.Errorf("2 servers (%.1f M) should clearly beat 1 (%.1f M)", two.MeasuredMRPS, one.MeasuredMRPS)
	}
	if four.P99NS > two.P99NS*2 {
		t.Errorf("4 servers p99 %.1f us should not exceed 2 servers' %.1f us by 2x",
			four.P99NS/1000, two.P99NS/1000)
	}
	// The skewed front-end triggers §3.3 forwarding and still beats a
	// single server.
	skewed := byLabel["2-skewed"]
	if skewed.Forwarded == 0 {
		t.Error("skewed cluster forwarded nothing")
	}
	// External requests stay pinned to the hot server (only internals are
	// forwarded, per §3.3), so the skewed cluster sits between one
	// balanced server and two.
	if skewed.MeasuredMRPS < one.MeasuredMRPS*0.7 {
		t.Errorf("skewed 2-server (%.1f M) collapsed below a single server (%.1f M)",
			skewed.MeasuredMRPS, one.MeasuredMRPS)
	}
}
