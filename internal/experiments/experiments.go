// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Table 4 (operation latencies), Figure 9 (p99 vs load),
// Figure 10 (service-time CDF), Figure 11 (service-time breakdown),
// Figure 12 (VLB sizing), Figure 13 (plain list vs B-tree), and Figure 14
// (scalability), plus the §6.2 overhead accounting. Each experiment
// returns structured rows/series and can render itself as an aligned text
// table.
package experiments

import (
	"fmt"

	"jord/internal/core"
	"jord/internal/privlib"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
	"jord/internal/workloads"
)

// Scale selects measurement effort: Quick for tests/benches, Full for
// paper-grade sweeps.
type Scale struct {
	Name    string
	Warmup  uint64
	Measure uint64
	// MaxPoints caps sweep grids (downsampled evenly).
	MaxPoints int
}

var (
	Quick = Scale{Name: "quick", Warmup: 200, Measure: 2500, MaxPoints: 6}
	Full  = Scale{Name: "full", Warmup: 1000, Measure: 12000, MaxPoints: 12}
)

// SystemKind names the systems under comparison (§5).
type SystemKind int

const (
	Jord SystemKind = iota
	JordNI
	JordBT
	NightCore
)

func (k SystemKind) String() string {
	switch k {
	case Jord:
		return "Jord"
	case JordNI:
		return "JordNI"
	case JordBT:
		return "JordBT"
	case NightCore:
		return "NightCore"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// buildConfig assembles a core.Config for one system under test.
func buildConfig(kind SystemKind, machine topo.Config, vcfg vlb.Config, seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Machine = machine
	cfg.VLB = vcfg
	cfg.Seed = seed
	switch kind {
	case Jord:
		cfg.Variant = privlib.PlainList
	case JordNI:
		cfg.Variant = privlib.NoIsolation
	case JordBT:
		cfg.Variant = privlib.BTree
	case NightCore:
		cfg.NightCore = true
	}
	return cfg
}

// deploy builds a fresh system with a workload on it.
func deploy(kind SystemKind, machine topo.Config, vcfg vlb.Config, workload string, seed uint64) (*core.System, *workloads.Workload, error) {
	sys, err := core.NewSystem(buildConfig(kind, machine, vcfg, seed))
	if err != nil {
		return nil, nil, err
	}
	w, err := workloads.Build(workload, sys, seed)
	if err != nil {
		sys.Close()
		return nil, nil, err
	}
	return sys, w, nil
}

// runPoint measures one (system, workload, load) point.
func runPoint(kind SystemKind, machine topo.Config, vcfg vlb.Config, workload string, rps float64, sc Scale, seed uint64) (*core.Results, float64, error) {
	sys, w, err := deploy(kind, machine, vcfg, workload, seed)
	if err != nil {
		return nil, 0, err
	}
	res := sys.RunLoad(core.LoadSpec{
		RPS:     rps,
		Warmup:  sc.Warmup,
		Measure: sc.Measure,
		Root:    w.Selector(),
	})
	freq := sys.M.Cfg.FreqGHz
	return res, freq, nil
}

// downsample evenly reduces a grid to at most n points, always keeping
// the first and last.
func downsample(grid []float64, n int) []float64 {
	if n <= 0 || len(grid) <= n {
		return grid
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(grid) - 1) / (n - 1)
		out = append(out, grid[idx])
	}
	return out
}

// fig9Grid is each workload's offered-load axis in requests/second,
// following the paper's Figure 9 ranges.
var fig9Grid = map[string][]float64{
	"hipster": {1e6, 2e6, 4e6, 6e6, 8e6, 10e6, 11e6, 12e6, 13e6, 14e6, 16e6},
	"hotel":   {0.5e6, 1e6, 2e6, 3e6, 4e6, 5e6, 6e6, 6.5e6, 7e6, 7.5e6, 8e6},
	"media":   {0.5e6, 1e6, 2e6, 3e6, 3.5e6, 4e6, 4.5e6, 5e6, 6e6, 7e6},
	"social":  {0.1e6, 0.2e6, 0.4e6, 0.6e6, 0.8e6, 0.9e6, 1.0e6, 1.1e6, 1.2e6, 1.4e6},
}

// sloFor computes each workload's SLO per §5: 10x the minimal-load mean
// request latency on JordNI.
func sloFor(workload string, machine topo.Config, vcfg vlb.Config, sc Scale, seed uint64) (float64, error) {
	minLoad := fig9Grid[workload][0] / 2
	res, _, err := runPoint(JordNI, machine, vcfg, workload, minLoad, Scale{
		Name: "slo", Warmup: 100, Measure: 1500, MaxPoints: 1,
	}, seed)
	if err != nil {
		return 0, err
	}
	return 10 * res.Latency.Mean(), nil
}
