package experiments

import (
	"fmt"
	"strings"

	"jord/internal/core"
	"jord/internal/metrics"
	"jord/internal/privlib"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
	"jord/internal/workloads"
)

// DispatchRow is one dispatch policy's result.
type DispatchRow struct {
	Policy       core.DispatchPolicy
	TputUnderSLO float64
	P99AtMidNS   float64 // p99 at ~60% of JBSQ's capacity
}

// DispatchAblationResult compares orchestrator dispatch policies on the
// Hotel workload — the study the paper's §3.3 defers ("a further
// evaluation of dispatch policies is beyond the scope of this paper").
type DispatchAblationResult struct {
	Workload string
	SLONS    float64
	Rows     []DispatchRow
}

// RunDispatchAblation sweeps each policy over the Hotel load grid.
func RunDispatchAblation(sc Scale, seed uint64) (*DispatchAblationResult, error) {
	const wl = "hotel"
	machine := topo.QFlex32()
	vcfg := vlb.DefaultConfig()
	slo, err := sloFor(wl, machine, vcfg, sc, seed)
	if err != nil {
		return nil, err
	}
	res := &DispatchAblationResult{Workload: wl, SLONS: slo}
	grid := downsample(fig9Grid[wl], sc.MaxPoints)
	policies := []core.DispatchPolicy{
		core.DispatchJBSQ, core.DispatchJSQ, core.DispatchRoundRobin, core.DispatchRandom,
	}
	for _, policy := range policies {
		var points []metrics.LoadPoint
		var midP99 float64
		for i, rps := range grid {
			cfg := buildConfig(Jord, machine, vcfg, seed)
			cfg.Dispatch = policy
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			w, err := workloads.Build(wl, sys, seed)
			if err != nil {
				return nil, err
			}
			r := sys.RunLoad(core.LoadSpec{
				RPS: rps, Warmup: sc.Warmup, Measure: sc.Measure, Root: w.Selector(),
			})
			points = append(points, metrics.LoadPoint{LoadRPS: rps, P99NS: r.P99LatencyNS()})
			if i == len(grid)/2 {
				midP99 = r.P99LatencyNS()
			}
			if r.P99LatencyNS() > 4*slo {
				break
			}
		}
		res.Rows = append(res.Rows, DispatchRow{
			Policy:       policy,
			TputUnderSLO: metrics.ThroughputUnderSLO(points, slo),
			P99AtMidNS:   midP99,
		})
	}
	return res, nil
}

// Render prints the policy comparison.
func (r *DispatchAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dispatch policy ablation (%s, SLO %.1f us)\n", r.Workload, r.SLONS/1000)
	fmt.Fprintf(&b, "%-14s %22s %16s\n", "policy", "tput under SLO (MRPS)", "p99@mid (us)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %22.2f %16.1f\n",
			row.Policy, row.TputUnderSLO/1e6, row.P99AtMidNS/1000)
	}
	return b.String()
}

// MPKRow is one isolation mechanism's throughput.
type MPKRow struct {
	System       string
	TputUnderSLO float64
	P99AtLowNS   float64
	// Deadlocked marks a configuration that could not finish even the
	// lightest load (MPK's 15 keys all held by suspended parents of
	// nested calls).
	Deadlocked bool
}

// MPKComparisonResult quantifies §2.2's argument against MPK-based
// in-process isolation for microsecond FaaS: domain switches are cheap,
// but 15 concurrent keys cap parallelism, permission changes need
// software cross-core synchronization, and allocation still pays OS
// page-based VM costs.
type MPKComparisonResult struct {
	Workload string
	SLONS    float64
	Rows     []MPKRow
}

// RunMPKComparison sweeps Jord, MPK, and JordNI on Hotel.
func RunMPKComparison(sc Scale, seed uint64) (*MPKComparisonResult, error) {
	const wl = "hotel"
	machine := topo.QFlex32()
	vcfg := vlb.DefaultConfig()
	slo, err := sloFor(wl, machine, vcfg, sc, seed)
	if err != nil {
		return nil, err
	}
	res := &MPKComparisonResult{Workload: wl, SLONS: slo}
	grid := downsample(fig9Grid[wl], sc.MaxPoints)
	variants := []struct {
		name      string
		variant   privlib.Variant
		idealKeys bool
	}{
		{"JordNI", privlib.NoIsolation, false},
		{"Jord", privlib.PlainList, false},
		{"MPK-15keys", privlib.MPK, false},
		{"MPK-ideal", privlib.MPK, true}, // unlimited keys: isolates the OS-allocation cost
	}
	for _, v := range variants {
		var points []metrics.LoadPoint
		var lowP99 float64
		deadlocked := false
		// A dedicated very-light probe (0.1 MRPS) for the latency column:
		// MPK saturates below Hotel's lightest grid point.
		probeGrid := append([]float64{0.1e6}, grid...)
		for i, rps := range probeGrid {
			cfg := buildConfig(Jord, machine, vcfg, seed)
			cfg.Variant = v.variant
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			if v.idealKeys {
				sys.Lib.MPKKeyLimit = 1 << 20
			}
			w, err := workloads.Build(wl, sys, seed)
			if err != nil {
				return nil, err
			}
			r := sys.RunLoad(core.LoadSpec{
				RPS: rps, Warmup: sc.Warmup, Measure: sc.Measure, Root: w.Selector(),
				MaxVirtualSeconds: 0.5, // MPK can crawl or deadlock; bound the run
			})
			if i == 0 {
				lowP99 = r.P99LatencyNS()
			}
			if r.Completed < sc.Measure {
				// The run hit the virtual-time cap: effectively zero
				// throughput at this load.
				points = append(points, metrics.LoadPoint{LoadRPS: rps, P99NS: 1e12})
				if i == 0 {
					deadlocked = true
				}
				break
			}
			points = append(points, metrics.LoadPoint{LoadRPS: rps, P99NS: r.P99LatencyNS()})
			if r.P99LatencyNS() > 4*slo {
				break
			}
		}
		res.Rows = append(res.Rows, MPKRow{
			System:       v.name,
			TputUnderSLO: metrics.ThroughputUnderSLO(points, slo),
			P99AtLowNS:   lowP99,
			Deadlocked:   deadlocked,
		})
	}
	return res, nil
}

// Render prints the MPK comparison.
func (r *MPKComparisonResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MPK-based isolation vs Jord (%s, SLO %.1f us; paper SS2.2)\n", r.Workload, r.SLONS/1000)
	fmt.Fprintf(&b, "%-12s %22s %18s\n", "system", "tput under SLO (MRPS)", "p99 at low load (us)")
	for _, row := range r.Rows {
		note := ""
		if row.Deadlocked {
			note = "   (stalled: 15 keys < concurrent nested functions)"
		}
		fmt.Fprintf(&b, "%-12s %22.2f %18.1f%s\n",
			row.System, row.TputUnderSLO/1e6, row.P99AtLowNS/1000, note)
	}
	return b.String()
}
