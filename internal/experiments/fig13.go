package experiments

import (
	"fmt"
	"strings"

	"jord/internal/metrics"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// Fig13Result reproduces Figure 13: Jord (plain-list VMA table) vs JordBT
// (B-tree VMA table). The paper's text discusses Hotel while the figure is
// labelled Hipster; we generate both workloads and note the discrepancy in
// EXPERIMENTS.md.
type Fig13Result struct {
	Panels []Fig13Panel
}

// Fig13Panel is one workload's comparison.
type Fig13Panel struct {
	Workload string
	SLONS    float64
	Series   []Fig9Series // reuses the system/points/tput structure
}

// RunFig13 sweeps Jord and JordBT.
func RunFig13(sc Scale, seed uint64) (*Fig13Result, error) {
	machine := topo.QFlex32()
	vcfg := vlb.DefaultConfig()
	res := &Fig13Result{}
	for _, wl := range []string{"hotel", "hipster"} {
		slo, err := sloFor(wl, machine, vcfg, sc, seed)
		if err != nil {
			return nil, err
		}
		panel := Fig13Panel{Workload: wl, SLONS: slo}
		grid := downsample(fig9Grid[wl], sc.MaxPoints)
		for _, kind := range []SystemKind{Jord, JordBT} {
			series := Fig9Series{System: kind}
			for _, rps := range grid {
				r, freq, err := runPoint(kind, machine, vcfg, wl, rps, sc, seed)
				if err != nil {
					return nil, fmt.Errorf("fig13 %s %v: %w", wl, kind, err)
				}
				series.Points = append(series.Points, metrics.LoadPoint{
					LoadRPS:     rps,
					P99NS:       r.P99LatencyNS(),
					MeasuredRPS: r.MeasuredRPS(freq),
				})
				if r.P99LatencyNS() > 4*slo {
					break
				}
			}
			series.TputUnderSLO = metrics.ThroughputUnderSLO(series.Points, slo)
			panel.Series = append(panel.Series, series)
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// Render formats the comparison.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: Jord (plain list) vs JordBT (B-tree VMA table)\n")
	for _, panel := range r.Panels {
		fmt.Fprintf(&b, "\n[%s]  SLO = %.1f us\n", panel.Workload, panel.SLONS/1000)
		for _, s := range panel.Series {
			fmt.Fprintf(&b, "  %-8s tput under SLO = %6.2f MRPS;  p99 at lightest load = %.1f us\n",
				s.System, s.TputUnderSLO/1e6, s.Points[0].P99NS/1000)
		}
		if len(panel.Series) == 2 && panel.Series[0].TputUnderSLO > 0 {
			ratio := panel.Series[1].TputUnderSLO / panel.Series[0].TputUnderSLO
			fmt.Fprintf(&b, "  JordBT/Jord = %.0f%% (paper: ~60%%)\n", ratio*100)
		}
	}
	return b.String()
}
