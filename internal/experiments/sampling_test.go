package experiments

import "testing"

func TestSampledPointTightensWithTrials(t *testing.T) {
	p, err := RunSampledPoint(Jord, "hotel", 2e6, tiny, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.P99NS.N != 5 || p.TputMRPS.N != 5 {
		t.Fatalf("trials recorded: %d/%d", p.P99NS.N, p.TputMRPS.N)
	}
	if p.P99NS.Mean <= 0 || p.TputMRPS.Mean <= 0 {
		t.Fatal("zero means")
	}
	// Distinct seeds give distinct (but close) results: a nonzero CI far
	// smaller than the mean.
	if p.P99NS.StdDev == 0 {
		t.Fatal("identical trials across seeds: sampling is broken")
	}
	if p.P99NS.RelCI() > 0.5 {
		t.Fatalf("p99 CI %.0f%% of mean: trials too noisy", p.P99NS.RelCI()*100)
	}
	if p.Render() == "" {
		t.Fatal("empty render")
	}
}
