package experiments

import (
	"fmt"
	"strings"

	"jord/internal/core"
	"jord/internal/mem/va"
	"jord/internal/mem/vmatable"
	"jord/internal/sim/memmodel"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
	"jord/internal/workloads"
)

// Fig14Row is one system scale's measurements.
type Fig14Row struct {
	Scale               string
	Cores               int
	ServiceNS           float64 // average function service time
	ShootdownNS         float64 // average VLB shootdown latency
	DispatchNS          float64 // average dispatch latency (single orchestrator)
	DispatchPerSocketNS float64 // with the §6.3 per-socket mitigation (multi-orch)
}

// Fig14Result reproduces Figure 14: sensitivity of average function
// service time, VLB shootdown latency, and dispatch latency to system
// scale (16...256 cores, dual-socket). Dispatch is measured with a single
// orchestrator managing every executor — the configuration whose collapse
// motivates the paper's per-socket-orchestrator design implication — and,
// for contrast, with that mitigation applied.
type Fig14Result struct {
	Rows []Fig14Row
}

// RunFig14 measures each scale point at light fixed load (so latencies
// reflect hardware distance, not queueing).
func RunFig14(sc Scale, seed uint64) (*Fig14Result, error) {
	scales := []struct {
		name string
		cfg  topo.Config
	}{
		{"16-core", topo.Scale(16)},
		{"64-core", topo.Scale(64)},
		{"128-core", topo.Scale(128)},
		{"256-core", topo.Scale(256)},
		{"2-socket", topo.DualSocket256()},
	}
	res := &Fig14Result{}
	for _, s := range scales {
		row, err := runFig14Point(s.name, s.cfg, sc, seed)
		if err != nil {
			return nil, fmt.Errorf("fig14 %s: %w", s.name, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runFig14Point(name string, machine topo.Config, sc Scale, seed uint64) (*Fig14Row, error) {
	measure := func(singleOrch bool) (*core.System, *core.Results, error) {
		cfg := buildConfig(Jord, machine, vlb.DefaultConfig(), seed)
		if singleOrch {
			cfg.NumOrchestrators = 1
			cfg.PerSocketOrchestrators = false
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, nil, err
		}
		w, err := workloads.Build("hipster", sys, seed)
		if err != nil {
			sys.Close()
			return nil, nil, err
		}
		r := sys.RunLoad(core.LoadSpec{
			RPS:     30_000, // light: measure distances, not queueing
			Warmup:  sc.Warmup / 2,
			Measure: sc.Measure / 2,
			Root:    w.Selector(),
		})
		return sys, r, nil
	}

	_, r, err := measure(true)
	if err != nil {
		return nil, err
	}
	row := &Fig14Row{
		Scale:       name,
		Cores:       machine.TotalCores(),
		ServiceNS:   r.MeanServiceNS(),
		DispatchNS:  r.DispatchNS.Mean(),
		ShootdownNS: worstCaseShootdownNS(machine),
	}

	sysM, rM, err := measure(false)
	if err != nil {
		return nil, err
	}
	_ = sysM
	row.DispatchPerSocketNS = rM.DispatchNS.Mean()
	return row, nil
}

// worstCaseShootdownNS measures the paper's shootdown metric: the latency
// of invalidating a translation shared by *every* core ("in the worst
// case, a global cache invalidation on all executor cores", §6.3). The
// hardware parallelizes the invalidations, so latency is gated by the
// farthest core — sublinear in core count, with a jump at the socket
// boundary.
func worstCaseShootdownNS(machine topo.Config) float64 {
	m := topo.MustMachine(machine)
	mm := memmodel.New(m)
	tbl, err := vmatable.New(va.Default(), 0x4000_0000_0000, vmatable.DefaultTableBytes)
	if err != nil {
		panic(err)
	}
	sub := vlb.NewSubsystem(m, mm, tbl, vlb.DefaultConfig())
	vteAddr := tbl.VTEAddr(0, 1)
	for c := 0; c < machine.TotalCores(); c++ {
		sub.VTD.RegisterSharer(vteAddr, topo.CoreID(c))
	}
	res := sub.VTD.Shootdown(0, vteAddr, func(topo.CoreID) {})
	return machine.CyclesToNS(res.Latency)
}

// Render prints the scalability table.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: latency vs system scale (us)\n")
	fmt.Fprintf(&b, "%-10s %7s %10s %12s %12s %18s\n",
		"scale", "cores", "service", "shootdown", "dispatch", "dispatch(persock)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %7d %10.2f %12.3f %12.3f %18.3f\n",
			row.Scale, row.Cores, row.ServiceNS/1000, row.ShootdownNS/1000,
			row.DispatchNS/1000, row.DispatchPerSocketNS/1000)
	}
	return b.String()
}
