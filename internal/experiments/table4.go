package experiments

import (
	"fmt"
	"strings"

	"jord/internal/mem/vmatable"
	"jord/internal/privlib"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// Table4Row is one operation's latency on both platforms, with the
// paper's reported numbers alongside.
type Table4Row struct {
	Operation   string
	SimNS       float64
	FPGANS      float64
	PaperSimNS  float64
	PaperFPGANS float64
}

// Table4Result reproduces Table 4: VMA and PD operation latencies.
type Table4Result struct {
	Rows []Table4Row
}

// RunTable4 microbenchmarks every PrivLib operation on the cycle-accurate
// simulator model and the FPGA RTL model.
func RunTable4() (*Table4Result, error) {
	paper := map[string][2]float64{
		"VMA lookup":    {2, 2},
		"VMA update":    {16, 33},
		"VMA insertion": {16, 37},
		"VMA deletion":  {27, 39},
		"PD creation":   {11, 25},
		"PD deletion":   {14, 30},
		"PD switching":  {12, 22},
	}
	order := []string{
		"VMA lookup", "VMA update", "VMA insertion", "VMA deletion",
		"PD creation", "PD deletion", "PD switching",
	}

	measure := func(cfg topo.Config) (map[string]float64, error) {
		lib, err := privlib.Boot(topo.MustMachine(cfg), vlb.DefaultConfig(), privlib.PlainList)
		if err != nil {
			return nil, err
		}
		out := map[string]float64{}
		const iters = 64
		var lookup, update, insert, del, cget, cput, sw float64
		for i := 0; i < iters; i++ {
			pd, latCget, err := lib.Cget(0)
			if err != nil {
				return nil, err
			}
			addr, latMmap, err := lib.Mmap(0, pd, 256, vmatable.PermRW)
			if err != nil {
				return nil, err
			}
			// Warm walk, then the measured L1-hit walk (the common case).
			lib.Sub.Walk(0, decodeClass(lib, addr), decodeIndex(lib, addr), false)
			latWalk, _ := lib.Sub.Walk(0, decodeClass(lib, addr), decodeIndex(lib, addr), false)
			latUpd, err := lib.Mprotect(0, pd, addr, vmatable.PermR)
			if err != nil {
				return nil, err
			}
			latSwitch, err := lib.Ccall(0, pd)
			if err != nil {
				return nil, err
			}
			latDel, err := lib.Munmap(0, pd, addr)
			if err != nil {
				return nil, err
			}
			latCput, err := lib.Cput(0, pd)
			if err != nil {
				return nil, err
			}
			lookup += cfg.CyclesToNS(latWalk)
			update += cfg.CyclesToNS(latUpd)
			insert += cfg.CyclesToNS(latMmap)
			del += cfg.CyclesToNS(latDel)
			cget += cfg.CyclesToNS(latCget)
			cput += cfg.CyclesToNS(latCput)
			sw += cfg.CyclesToNS(latSwitch)
		}
		out["VMA lookup"] = lookup / iters
		out["VMA update"] = update / iters
		out["VMA insertion"] = insert / iters
		out["VMA deletion"] = del / iters
		out["PD creation"] = cget / iters
		out["PD deletion"] = cput / iters
		out["PD switching"] = sw / iters
		return out, nil
	}

	sim, err := measure(topo.QFlex32())
	if err != nil {
		return nil, err
	}
	fpga, err := measure(topo.FPGA2())
	if err != nil {
		return nil, err
	}

	res := &Table4Result{}
	for _, op := range order {
		res.Rows = append(res.Rows, Table4Row{
			Operation:   op,
			SimNS:       sim[op],
			FPGANS:      fpga[op],
			PaperSimNS:  paper[op][0],
			PaperFPGANS: paper[op][1],
		})
	}
	return res, nil
}

func decodeClass(lib *privlib.Lib, addr uint64) int {
	d, _ := lib.Enc.Decode(addr)
	return d.Class
}

func decodeIndex(lib *privlib.Lib, addr uint64) uint64 {
	d, _ := lib.Enc.Decode(addr)
	return d.Index
}

// Render formats the table.
func (r *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: VMA and PD operation latencies (ns)\n")
	fmt.Fprintf(&b, "%-15s %10s %10s %12s %12s\n",
		"Operation", "Simulator", "FPGA", "paper(sim)", "paper(fpga)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %10.0f %10.0f %12.0f %12.0f\n",
			row.Operation, row.SimNS, row.FPGANS, row.PaperSimNS, row.PaperFPGANS)
	}
	return b.String()
}
