package experiments

import (
	"fmt"
	"strings"

	"jord/internal/core"
	"jord/internal/workloads"
)

// ClusterRow is one cluster size's result under a fixed offered load.
type ClusterRow struct {
	Label        string
	Servers      int
	OfferedMRPS  float64
	MeasuredMRPS float64
	P99NS        float64
	Forwarded    uint64
	Completed    uint64
}

// ClusterResult evaluates the multi-server path of §3.3: a fixed offered
// load that saturates one worker server is spread over 1, 2, and 4
// servers; saturated servers forward nested requests to peers over the
// network.
type ClusterResult struct {
	Workload string
	Rows     []ClusterRow
}

// RunCluster drives the Hipster workload at ~1.5x one server's capacity
// across growing cluster sizes.
func RunCluster(sc Scale, seed uint64) (*ClusterResult, error) {
	const wl = "hipster"
	const offered = 15e6 // ~1.5x one 32-core server's capacity
	res := &ClusterResult{Workload: wl}
	type point struct {
		servers int
		skew    float64
		label   string
	}
	points := []point{
		{1, 0, "1"},
		{2, 0, "2"},
		{4, 0, "4"},
		// An imbalanced front-end overloads server 0, whose orchestrators
		// then forward nested requests to the idle peer (§3.3's network
		// path in action).
		{2, 0.85, "2-skewed"},
	}
	for _, pt := range points {
		servers := pt.servers
		cfg := core.DefaultClusterConfig()
		cfg.Servers = servers
		cfg.Seed = seed
		cfg.SkewFirst = pt.skew
		cfg.SpillQueueThreshold = 4 // spill once local queues reach the JBSQ bound
		c, err := core.NewCluster(cfg)
		if err != nil {
			return nil, err
		}
		// Deploy the workload identically on every server; the selector of
		// the first deployment drives the shared load generator.
		var sel core.RootSelector
		for i, s := range c.Servers {
			w, err := workloads.Build(wl, s, seed)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				sel = w.Selector()
			}
		}
		r := c.RunLoad(core.LoadSpec{
			RPS:               offered,
			Warmup:            sc.Warmup,
			Measure:           sc.Measure,
			Root:              sel,
			MaxVirtualSeconds: 0.05,
		})
		freq := c.Servers[0].M.Cfg.FreqGHz
		res.Rows = append(res.Rows, ClusterRow{
			Label:        pt.label,
			Servers:      servers,
			OfferedMRPS:  offered / 1e6,
			MeasuredMRPS: r.MeasuredRPS(freq) / 1e6,
			P99NS:        r.P99LatencyNS(),
			Forwarded:    c.Forwarded,
			Completed:    r.Completed,
		})
	}
	return res, nil
}

// Render prints the scaling table.
func (r *ClusterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-server scaling (%s, fixed offered load)\n", r.Workload)
	fmt.Fprintf(&b, "%-8s %10s %12s %10s %10s\n",
		"servers", "offered", "measured", "p99 (us)", "forwarded")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %7.1f M %9.2f M %10.1f %10d\n",
			row.Label, row.OfferedMRPS, row.MeasuredMRPS, row.P99NS/1000, row.Forwarded)
	}
	return b.String()
}
