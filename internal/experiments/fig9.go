package experiments

import (
	"fmt"
	"strings"

	"jord/internal/metrics"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// Fig9Series is one system's latency-vs-load curve for one workload.
type Fig9Series struct {
	System SystemKind
	Points []metrics.LoadPoint
	// TputUnderSLO is the derived throughput-under-SLO (requests/second).
	TputUnderSLO float64
}

// Fig9Workload is one workload's panel of Figure 9.
type Fig9Workload struct {
	Workload string
	SLONS    float64
	Series   []Fig9Series
}

// Fig9Result reproduces Figure 9: p99 latency across loads for Jord,
// JordNI, and NightCore on all four workloads, with SLO = 10x minimal-load
// JordNI service time (§5).
type Fig9Result struct {
	Panels []Fig9Workload
}

// RunFig9 sweeps all workloads. workloadFilter restricts to one workload
// ("" = all).
func RunFig9(sc Scale, workloadFilter string, seed uint64) (*Fig9Result, error) {
	machine := topo.QFlex32()
	vcfg := vlb.DefaultConfig()
	res := &Fig9Result{}
	for _, wl := range []string{"hipster", "hotel", "media", "social"} {
		if workloadFilter != "" && wl != workloadFilter {
			continue
		}
		slo, err := sloFor(wl, machine, vcfg, sc, seed)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s slo: %w", wl, err)
		}
		panel := Fig9Workload{Workload: wl, SLONS: slo}
		grid := downsample(fig9Grid[wl], sc.MaxPoints)
		for _, kind := range []SystemKind{JordNI, Jord, NightCore} {
			series := Fig9Series{System: kind}
			for _, rps := range grid {
				r, freq, err := runPoint(kind, machine, vcfg, wl, rps, sc, seed)
				if err != nil {
					return nil, fmt.Errorf("fig9 %s %v @%.1f: %w", wl, kind, rps/1e6, err)
				}
				series.Points = append(series.Points, metrics.LoadPoint{
					LoadRPS:     rps,
					P99NS:       r.P99LatencyNS(),
					MeasuredRPS: r.MeasuredRPS(freq),
				})
				// Past 4x SLO the curve is vertical; later points only
				// cost time.
				if r.P99LatencyNS() > 4*slo {
					break
				}
			}
			series.TputUnderSLO = metrics.ThroughputUnderSLO(series.Points, slo)
			panel.Series = append(panel.Series, series)
		}
		res.Panels = append(res.Panels, panel)
	}
	return res, nil
}

// Render formats each panel as a table of p99 latencies per load.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: p99 latency (us) vs offered load (MRPS)\n")
	for _, panel := range r.Panels {
		fmt.Fprintf(&b, "\n[%s]  SLO = %.1f us\n", panel.Workload, panel.SLONS/1000)
		fmt.Fprintf(&b, "%-10s", "load")
		for _, s := range panel.Series {
			fmt.Fprintf(&b, " %12s", s.System)
		}
		fmt.Fprintf(&b, "\n")
		// Union of loads across series (they share a grid prefix).
		maxLen := 0
		for _, s := range panel.Series {
			if len(s.Points) > maxLen {
				maxLen = len(s.Points)
			}
		}
		for i := 0; i < maxLen; i++ {
			var load float64
			for _, s := range panel.Series {
				if i < len(s.Points) {
					load = s.Points[i].LoadRPS
					break
				}
			}
			fmt.Fprintf(&b, "%-10.2f", load/1e6)
			for _, s := range panel.Series {
				if i < len(s.Points) {
					fmt.Fprintf(&b, " %12.1f", s.Points[i].P99NS/1000)
				} else {
					fmt.Fprintf(&b, " %12s", ">SLO")
				}
			}
			fmt.Fprintf(&b, "\n")
		}
		fmt.Fprintf(&b, "throughput under SLO (MRPS):")
		for _, s := range panel.Series {
			fmt.Fprintf(&b, "  %v=%.2f", s.System, s.TputUnderSLO/1e6)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
