package experiments

import (
	"fmt"
	"strings"

	"jord/internal/core"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// Fig11Bar is one selected function's service-time breakdown on one
// system (all values ns per invocation).
type Fig11Bar struct {
	Workload string
	Function string // Table 3 abbreviation
	System   SystemKind

	ExecNS     float64 // function execution (incl. zero-copy transfers)
	IsolNS     float64 // Jord: PrivLib isolation ops
	DispatchNS float64 // orchestrator dispatch
	PipeNS     float64 // NightCore: pipe + copy + serde
	ServiceNS  float64
}

// Fig11Result reproduces Figure 11: the service-time breakdown of the
// eight selected functions (Table 3) under Jord and NightCore.
type Fig11Result struct {
	Bars []Fig11Bar
}

// selectedOrder fixes the paper's x-axis: GC PO SN MR UU RP F CP.
var selectedOrder = []struct{ workload, fn string }{
	{"hipster", "GC"}, {"hipster", "PO"},
	{"hotel", "SN"}, {"hotel", "MR"},
	{"media", "UU"}, {"media", "RP"},
	{"social", "F"}, {"social", "CP"},
}

// RunFig11 measures per-function breakdowns at moderate load on Jord and
// NightCore.
func RunFig11(sc Scale, seed uint64) (*Fig11Result, error) {
	machine := topo.QFlex32()
	vcfg := vlb.DefaultConfig()
	res := &Fig11Result{}

	type measured struct {
		byFn map[string]Fig11Bar
	}
	runSystem := func(kind SystemKind, wl string) (map[string]Fig11Bar, error) {
		load := fig9Grid[wl][0] // light load so queueing does not pollute bars
		sys, w, err := deploy(kind, machine, vcfg, wl, seed)
		if err != nil {
			return nil, err
		}
		r := sys.RunLoad(core.LoadSpec{
			RPS:     load,
			Warmup:  sc.Warmup,
			Measure: sc.Measure,
			Root:    w.Selector(),
		})
		out := map[string]Fig11Bar{}
		for abbrev, fn := range w.Selected {
			bd := r.MeanBreakdown(fn, sys.M.Cfg.FreqGHz)
			bar := Fig11Bar{
				Workload:  wl,
				Function:  abbrev,
				System:    kind,
				ServiceNS: bd.Exec + bd.Isolation + bd.Alloc + bd.Dispatch + bd.Comm,
			}
			if kind == NightCore {
				bar.ExecNS = bd.Exec
				bar.PipeNS = bd.Comm
				bar.DispatchNS = bd.Dispatch
			} else {
				// Zero-copy transfers and VMA allocation count as part of
				// execution (JordNI pays them too); isolation is what the
				// insecure baseline skips.
				bar.ExecNS = bd.Exec + bd.Comm + bd.Alloc
				bar.IsolNS = bd.Isolation
				bar.DispatchNS = bd.Dispatch
			}
			out[abbrev] = bar
		}
		return out, nil
	}

	perWorkload := map[string]map[SystemKind]measured{}
	for _, wl := range []string{"hipster", "hotel", "media", "social"} {
		perWorkload[wl] = map[SystemKind]measured{}
		for _, kind := range []SystemKind{Jord, NightCore} {
			bars, err := runSystem(kind, wl)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s %v: %w", wl, kind, err)
			}
			perWorkload[wl][kind] = measured{byFn: bars}
		}
	}
	for _, sel := range selectedOrder {
		for _, kind := range []SystemKind{Jord, NightCore} {
			res.Bars = append(res.Bars, perWorkload[sel.workload][kind].byFn[sel.fn])
		}
	}
	return res, nil
}

// Render prints the grouped bars.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: service-time breakdown of selected functions (us/invocation)\n")
	fmt.Fprintf(&b, "%-4s %-10s %10s %10s %10s %10s %10s\n",
		"fn", "system", "exec", "isolation", "dispatch", "pipe", "service")
	for _, bar := range r.Bars {
		fmt.Fprintf(&b, "%-4s %-10s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			bar.Function, bar.System.String(),
			bar.ExecNS/1000, bar.IsolNS/1000, bar.DispatchNS/1000,
			bar.PipeNS/1000, bar.ServiceNS/1000)
	}
	return b.String()
}
