package experiments

import "testing"

func TestMotivationGapIsOrdersOfMagnitude(t *testing.T) {
	r, err := RunMotivation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The §2.2 claim: the OS path is orders of magnitude slower; Jord's
		// ops stay in the tens of nanoseconds.
		if row.JordNS > 30 {
			t.Errorf("%s: Jord = %.0f ns, want <= 30", row.Operation, row.JordNS)
		}
		if row.Ratio < 10 {
			t.Errorf("%s: OS/Jord ratio = %.0fx, want >= 10x", row.Operation, row.Ratio)
		}
	}
	// Permission changes carry the TLB shootdown and are the worst case.
	var protRatio, allocRatio float64
	for _, row := range r.Rows {
		switch row.Operation {
		case "change permission":
			protRatio = row.Ratio
		case "allocate 4 KB":
			allocRatio = row.Ratio
		}
	}
	if protRatio <= allocRatio {
		t.Errorf("mprotect ratio (%.0fx) should exceed mmap ratio (%.0fx): shootdowns dominate",
			protRatio, allocRatio)
	}
	// Zero-copy handoff vs one pipe hop: at least two orders of magnitude.
	if r.PipeHopNS < 100*r.PmoveNS {
		t.Errorf("pipe hop %.0f ns vs pmove %.0f ns: want >= 100x", r.PipeHopNS, r.PmoveNS)
	}
}

func TestColdStartLadder(t *testing.T) {
	r, err := RunColdStart()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The measured rungs are each at least an order of magnitude apart:
	// Jord PD << warm worker << worker prep << sandbox boot (the last two
	// literature rows are the same order of magnitude as each other).
	for i := 1; i < 4; i++ {
		if r.Rows[i].ReadyNS < 10*r.Rows[i-1].ReadyNS {
			t.Errorf("%s (%.0f ns) not >> %s (%.0f ns)",
				r.Rows[i].Mechanism, r.Rows[i].ReadyNS,
				r.Rows[i-1].Mechanism, r.Rows[i-1].ReadyNS)
		}
	}
	if r.Rows[4].ReadyNS < r.Rows[3].ReadyNS {
		t.Error("ladder not monotone")
	}
	// Jord's PD setup is nanosecond-scale (the paper's isolation budget).
	if r.Rows[0].ReadyNS > 200 {
		t.Errorf("Jord PD init = %.0f ns, want well under 200", r.Rows[0].ReadyNS)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}
