package experiments

import (
	"strings"
	"testing"
)

// tiny keeps test sweeps fast; shape assertions stay loose accordingly.
var tiny = Scale{Name: "tiny", Warmup: 100, Measure: 800, MaxPoints: 4}

func TestTable4MatchesPaper(t *testing.T) {
	r, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(r.Rows))
	}
	for _, row := range r.Rows {
		simErr := row.SimNS - row.PaperSimNS
		fpgaErr := row.FPGANS - row.PaperFPGANS
		if simErr > 2 || simErr < -2 {
			t.Errorf("%s: simulator %.1f ns vs paper %.0f ns", row.Operation, row.SimNS, row.PaperSimNS)
		}
		if fpgaErr > 3 || fpgaErr < -3 {
			t.Errorf("%s: FPGA %.1f ns vs paper %.0f ns", row.Operation, row.FPGANS, row.PaperFPGANS)
		}
		// §6.2: all PD and VMA operations complete within 30 ns on the
		// simulator.
		if row.SimNS > 30 {
			t.Errorf("%s: %.1f ns exceeds the 30 ns budget", row.Operation, row.SimNS)
		}
	}
	if !strings.Contains(r.Render(), "VMA lookup") {
		t.Error("render missing rows")
	}
}

func TestFig9HipsterShape(t *testing.T) {
	r, err := RunFig9(tiny, "hipster", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 1 {
		t.Fatalf("panels = %d", len(r.Panels))
	}
	p := r.Panels[0]
	if p.SLONS <= 0 {
		t.Fatal("no SLO computed")
	}
	var ni, jord, nc float64
	for _, s := range p.Series {
		switch s.System {
		case JordNI:
			ni = s.TputUnderSLO
		case Jord:
			jord = s.TputUnderSLO
		case NightCore:
			nc = s.TputUnderSLO
		}
	}
	// Headline claims: Jord within ~tens of percent of JordNI; NightCore
	// fails the SLO even at minimum load on Hipster; Jord > 2x NightCore.
	if jord <= 0 || ni <= 0 {
		t.Fatalf("jord=%.2f ni=%.2f, want positive", jord/1e6, ni/1e6)
	}
	if jord > ni*1.05 {
		t.Errorf("Jord (%.2f) should not beat the no-isolation bound (%.2f)", jord/1e6, ni/1e6)
	}
	if jord < ni*0.5 {
		t.Errorf("Jord (%.2f) too far below JordNI (%.2f); paper gap is ~16%%", jord/1e6, ni/1e6)
	}
	if nc != 0 {
		t.Errorf("NightCore meets the Hipster SLO (%.2f MRPS); the paper says it cannot", nc/1e6)
	}
	if !strings.Contains(r.Render(), "hipster") {
		t.Error("render missing panel")
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := RunFig10(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 4 {
		t.Fatalf("workloads = %d", len(r.Workloads))
	}
	byName := map[string]Fig10Workload{}
	for _, wl := range r.Workloads {
		byName[wl.Workload] = wl
	}
	// Fig 10: ~75% of service times below ~5 us.
	for _, name := range []string{"hipster", "hotel", "media"} {
		if p75 := byName[name].P75NS; p75 > 5000 {
			t.Errorf("%s p75 = %d ns, want < 5 us", name, p75)
		}
	}
	// Social's tail reaches ~75 us.
	soc := byName["social"]
	if soc.MaxNS < 50_000 || soc.MaxNS > 110_000 {
		t.Errorf("social max = %d ns, want ~75 us", soc.MaxNS)
	}
	// Media has the second-longest tail (long-tailed, per the paper).
	if byName["media"].P99NS <= byName["hipster"].P99NS {
		t.Error("media should have a longer tail than hipster")
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := RunFig11(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bars) != 16 { // 8 functions x 2 systems
		t.Fatalf("bars = %d, want 16", len(r.Bars))
	}
	jordBars := map[string]Fig11Bar{}
	ncBars := map[string]Fig11Bar{}
	for _, b := range r.Bars {
		if b.System == Jord {
			jordBars[b.Function] = b
		} else {
			ncBars[b.Function] = b
		}
	}
	for fn, jb := range jordBars {
		nb := ncBars[fn]
		// Jord: pipe bucket empty; NightCore: isolation bucket empty.
		if jb.PipeNS != 0 || nb.IsolNS != 0 {
			t.Errorf("%s: bucket mixing: jordPipe=%.0f ncIsol=%.0f", fn, jb.PipeNS, nb.IsolNS)
		}
		// §6.1: Jord averages ~48%+ less service time than NightCore.
		if jb.ServiceNS >= nb.ServiceNS {
			t.Errorf("%s: Jord service %.0f >= NightCore %.0f", fn, jb.ServiceNS, nb.ServiceNS)
		}
		// NightCore's overhead exceeds execution time in most cases; check
		// the communication-heavy ones explicitly.
		switch fn {
		case "GC", "PO", "UU", "F":
			if nb.PipeNS < nb.ExecNS {
				t.Errorf("%s: NightCore pipe %.0f < exec %.0f", fn, nb.PipeNS, nb.ExecNS)
			}
		}
	}
	// RP: NightCore overhead reaches several times the execution time.
	rp := ncBars["RP"]
	if rp.PipeNS < 2*rp.ExecNS {
		t.Errorf("RP: NightCore pipe %.0f should be multiples of exec %.0f", rp.PipeNS, rp.ExecNS)
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := RunFig13(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range r.Panels {
		if len(panel.Series) != 2 {
			t.Fatalf("%s: series = %d", panel.Workload, len(panel.Series))
		}
		jord := panel.Series[0].TputUnderSLO
		bt := panel.Series[1].TputUnderSLO
		if bt >= jord {
			t.Errorf("%s: JordBT (%.2f) should trail Jord (%.2f)", panel.Workload, bt/1e6, jord/1e6)
		}
		// Paper: ~60% on Hotel (the workload its text names); Hipster's
		// shorter functions amplify the VMA-management penalty, so only
		// Hotel gets the tight band.
		if panel.Workload == "hotel" && jord > 0 && (bt/jord < 0.35 || bt/jord > 0.85) {
			t.Errorf("%s: JordBT/Jord = %.0f%%, want roughly 40-80%%", panel.Workload, bt/jord*100)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	r, err := RunFig14(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
	// Dispatch latency grows with scale and explodes cross-socket (§6.3).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].DispatchNS <= r.Rows[i-1].DispatchNS {
			t.Errorf("dispatch not increasing at %s", r.Rows[i].Scale)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	if last.Scale != "2-socket" {
		t.Fatalf("last row = %s", last.Scale)
	}
	// Paper: ~12 us dispatch on the dual-socket system.
	if last.DispatchNS < 3000 || last.DispatchNS > 25_000 {
		t.Errorf("2-socket dispatch = %.1f us, want order ~10 us", last.DispatchNS/1000)
	}
	// Shootdown latency grows sublinearly: 256-core shootdown is far less
	// than 16x the 16-core one.
	if r.Rows[3].ShootdownNS >= 8*r.Rows[0].ShootdownNS {
		t.Errorf("shootdown growth not sublinear: %.1f -> %.1f ns",
			r.Rows[0].ShootdownNS, r.Rows[3].ShootdownNS)
	}
	// The per-socket mitigation keeps dispatch flat.
	if last.DispatchPerSocketNS > last.DispatchNS/10 {
		t.Errorf("per-socket dispatch %.0f ns should be a small fraction of %.0f ns",
			last.DispatchPerSocketNS, last.DispatchNS)
	}
	// Service time grows modestly (not with dispatch's slope).
	if last.ServiceNS > 4*r.Rows[0].ServiceNS {
		t.Errorf("service grew too fast: %.0f -> %.0f ns", r.Rows[0].ServiceNS, last.ServiceNS)
	}
}

func TestOverheadsShape(t *testing.T) {
	r, err := RunOverheads(tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	frac := map[string]float64{}
	for _, row := range r.Rows {
		frac[row.Workload] = row.OverheadFraction
		if row.IsolationPerInvocationNS <= 0 || row.IsolationPerInvocationNS > 600 {
			t.Errorf("%s isolation/invocation = %.0f ns", row.Workload, row.IsolationPerInvocationNS)
		}
	}
	// §6.2 ordering: Media has by far the largest overhead share (nested
	// calls), Social the smallest (compute-dominated).
	if frac["media"] <= frac["hotel"] || frac["media"] <= frac["social"] {
		t.Errorf("media overhead share should dominate: %+v", frac)
	}
	if frac["social"] >= frac["hipster"] {
		t.Errorf("social should have the smallest overhead share: %+v", frac)
	}
}

func TestDownsample(t *testing.T) {
	grid := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	out := downsample(grid, 4)
	if len(out) != 4 || out[0] != 1 || out[3] != 10 {
		t.Fatalf("downsample = %v", out)
	}
	if got := downsample(grid, 20); len(got) != len(grid) {
		t.Fatal("downsample should not upsample")
	}
	if got := downsample(grid, 0); len(got) != len(grid) {
		t.Fatal("downsample(0) should be identity")
	}
}
