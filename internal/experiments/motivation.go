package experiments

import (
	"fmt"
	"strings"

	"jord/internal/ipc"
	"jord/internal/mem/pagetable"
	"jord/internal/mem/vmatable"
	"jord/internal/privlib"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// MotivationRow contrasts one memory-management operation across
// mechanisms (ns).
type MotivationRow struct {
	Operation string
	JordNS    float64
	OSNS      float64
	Ratio     float64
}

// MotivationResult reproduces the §2.2 motivating comparison: updating
// VMA permissions through page-based virtual memory "involves multiple
// syscalls, traversal and modification of the page table, and TLB
// shootdowns, each of which can take tens to thousands of microseconds",
// versus Jord's nanosecond-scale user-level operations.
type MotivationResult struct {
	Rows []MotivationRow
	// PipeHopNS is one OS pipe hop (send+wakeup+recv), the baseline's
	// per-communication cost, vs Jord's pmove.
	PipeHopNS float64
	PmoveNS   float64
}

// RunMotivation measures both paths on the 32-core machine.
func RunMotivation() (*MotivationResult, error) {
	cfg := topo.QFlex32()
	lib, err := privlib.Boot(topo.MustMachine(cfg), vlb.DefaultConfig(), privlib.PlainList)
	if err != nil {
		return nil, err
	}
	os := pagetable.OSCosts{Cfg: cfg}
	cores := cfg.TotalCores()

	pd, _, err := lib.Cget(0)
	if err != nil {
		return nil, err
	}
	addr, latMmap, err := lib.Mmap(0, pd, 4096, vmatable.PermRW)
	if err != nil {
		return nil, err
	}
	latProt, err := lib.Mprotect(0, pd, addr, vmatable.PermR)
	if err != nil {
		return nil, err
	}
	latMunmap, err := lib.Munmap(0, pd, addr)
	if err != nil {
		return nil, err
	}
	latSwitch, _ := lib.Ccall(0, pd)

	res := &MotivationResult{}
	add := func(op string, jord, osCost float64) {
		res.Rows = append(res.Rows, MotivationRow{
			Operation: op, JordNS: jord, OSNS: osCost, Ratio: osCost / jord,
		})
	}
	add("allocate 4 KB", cfg.CyclesToNS(latMmap), cfg.CyclesToNS(os.MmapCycles(1)))
	add("change permission", cfg.CyclesToNS(latProt), cfg.CyclesToNS(os.MprotectCycles(1, cores)))
	add("deallocate 4 KB", cfg.CyclesToNS(latMunmap), cfg.CyclesToNS(os.MprotectCycles(1, cores)))
	add("switch domain", cfg.CyclesToNS(latSwitch), cfg.CyclesToNS(2*os.SyscallCycles()))

	ipcCosts := ipc.Costs{Cfg: cfg}
	res.PipeHopNS = cfg.CyclesToNS(ipcCosts.PipeSendCPU(64) + ipcCosts.WakeupLatency() + ipcCosts.PipeRecvCPU(64))
	pmoveLat, err := func() (float64, error) {
		a, _, err := lib.Mmap(0, pd, 256, vmatable.PermRW)
		if err != nil {
			return 0, err
		}
		pd2, _, err := lib.Cget(0)
		if err != nil {
			return 0, err
		}
		lat, err := lib.Pmove(0, pd, a, pd2, vmatable.PermRW)
		return cfg.CyclesToNS(lat), err
	}()
	if err != nil {
		return nil, err
	}
	res.PmoveNS = pmoveLat
	return res, nil
}

// Render prints the comparison.
func (r *MotivationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.2 motivation: OS page-based VM vs Jord's user-level VMAs (ns)\n")
	fmt.Fprintf(&b, "%-20s %12s %14s %10s\n", "operation", "Jord", "OS (32 cores)", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %12.0f %14.0f %9.0fx\n",
			row.Operation, row.JordNS, row.OSNS, row.Ratio)
	}
	fmt.Fprintf(&b, "\ncross-function data handoff: pipe hop %.0f ns vs pmove %.0f ns (%.0fx)\n",
		r.PipeHopNS, r.PmoveNS, r.PipeHopNS/r.PmoveNS)
	return b.String()
}

// ColdStartRow is one mechanism's invocation-readiness latency.
type ColdStartRow struct {
	Mechanism string
	ReadyNS   float64
	Source    string
}

// ColdStartResult reproduces the §2.1 cold-start comparison: what it takes
// to have an isolated execution environment ready for a function.
type ColdStartResult struct {
	Rows []ColdStartRow
}

// RunColdStart measures Jord's PD initialization and tabulates the
// baselines' published costs.
func RunColdStart() (*ColdStartResult, error) {
	cfg := topo.QFlex32()
	lib, err := privlib.Boot(topo.MustMachine(cfg), vlb.DefaultConfig(), privlib.PlainList)
	if err != nil {
		return nil, err
	}
	// Jord: cget + stack + heap + code pcopy + ccall — the Figure 4 setup.
	var total float64
	pd, lat, err := lib.Cget(0)
	if err != nil {
		return nil, err
	}
	total += cfg.CyclesToNS(lat)
	stack, lat, err := lib.Mmap(0, pd, 4096, vmatable.PermRW)
	if err != nil {
		return nil, err
	}
	total += cfg.CyclesToNS(lat)
	heap, lat, err := lib.Mmap(0, pd, 1024, vmatable.PermRW)
	if err != nil {
		return nil, err
	}
	total += cfg.CyclesToNS(lat)
	lat, _ = lib.Ccall(0, pd)
	total += cfg.CyclesToNS(lat)
	_ = stack
	_ = heap

	ipcCosts := ipc.Costs{Cfg: cfg}
	warmWorker := cfg.CyclesToNS(ipcCosts.WakeupLatency() + ipcCosts.MessageRecvCPU(960))

	return &ColdStartResult{Rows: []ColdStartRow{
		{"Jord PD initialization", total, "measured (this model)"},
		{"NightCore warm worker", warmWorker, "measured (this model)"},
		{"NightCore worker preparation", float64(ipc.VanillaWorkerPrepNS), "paper §6.2: 0.8 ms"},
		{"microVM cold boot", 125e6, "literature: ~125 ms (Firecracker-class)"},
		{"container cold start", 400e6, "literature: hundreds of ms (§2.1: up to 95% of execution)"},
	}}, nil
}

// Render prints the cold-start ladder.
func (r *ColdStartResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2.1: time until an isolated execution environment is ready\n")
	fmt.Fprintf(&b, "%-32s %14s   %s\n", "mechanism", "ready in", "source")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-32s %14s   %s\n", row.Mechanism, fmtNS(row.ReadyNS), row.Source)
	}
	return b.String()
}

func fmtNS(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1f us", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}
