package experiments

import (
	"fmt"
	"strings"

	"jord/internal/metrics"
	"jord/internal/sim/topo"
	"jord/internal/vlb"
)

// Fig10Result reproduces Figure 10: the CDF of function service time on
// Jord at light load, per workload.
type Fig10Result struct {
	Workloads []Fig10Workload
}

// Fig10Workload is one workload's service-time distribution.
type Fig10Workload struct {
	Workload string
	CDF      []metrics.CDFPoint
	MeanNS   float64
	P50NS    int64
	P75NS    int64
	P99NS    int64
	MaxNS    int64
}

// RunFig10 measures service-time CDFs at light load.
func RunFig10(sc Scale, seed uint64) (*Fig10Result, error) {
	machine := topo.QFlex32()
	vcfg := vlb.DefaultConfig()
	res := &Fig10Result{}
	for _, wl := range []string{"hipster", "hotel", "media", "social"} {
		lightLoad := fig9Grid[wl][0] / 2
		r, _, err := runPoint(Jord, machine, vcfg, wl, lightLoad, sc, seed)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", wl, err)
		}
		res.Workloads = append(res.Workloads, Fig10Workload{
			Workload: wl,
			CDF:      r.ServiceTime.CDF(),
			MeanNS:   r.ServiceTime.Mean(),
			P50NS:    r.ServiceTime.Percentile(50),
			P75NS:    r.ServiceTime.Percentile(75),
			P99NS:    r.ServiceTime.Percentile(99),
			MaxNS:    r.ServiceTime.Max(),
		})
	}
	return res, nil
}

// Render prints distribution summaries plus a coarse CDF per workload.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: CDF of function service time in Jord\n")
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s\n",
		"workload", "mean(us)", "p50(us)", "p75(us)", "p99(us)", "max(us)")
	for _, wl := range r.Workloads {
		fmt.Fprintf(&b, "%-10s %9.1f %9.1f %9.1f %9.1f %9.1f\n",
			wl.Workload, wl.MeanNS/1000, float64(wl.P50NS)/1000,
			float64(wl.P75NS)/1000, float64(wl.P99NS)/1000, float64(wl.MaxNS)/1000)
	}
	fmt.Fprintf(&b, "\nCDF fraction below a service time (us):\n%-10s", "workload")
	marks := []float64{1000, 2000, 5000, 10_000, 20_000, 50_000, 80_000}
	for _, m := range marks {
		fmt.Fprintf(&b, " %7.0fus", m/1000)
	}
	fmt.Fprintf(&b, "\n")
	for _, wl := range r.Workloads {
		fmt.Fprintf(&b, "%-10s", wl.Workload)
		for _, m := range marks {
			fmt.Fprintf(&b, " %9.2f", fractionBelow(wl.CDF, m))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

func fractionBelow(cdf []metrics.CDFPoint, ns float64) float64 {
	frac := 0.0
	for _, p := range cdf {
		if float64(p.Value) > ns {
			break
		}
		frac = p.Fraction
	}
	return frac
}
