// Package server assembles the live serving subsystem (jordd): the HTTP
// gateway, admission control, and the goroutine-backed worker pool that
// runs Jord's runtime architecture — JBSQ orchestrators, suspendable
// executor continuations, internal/external queues, and privlib-style
// per-invocation ArgBuf permission transfers — against real traffic.
//
// Where internal/core executes this architecture on the deterministic
// simulation engine to reproduce the paper's numbers, this package
// executes the same architecture on the Go runtime to serve requests:
//
//	d := server.New(server.DefaultConfig())
//	d.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
//	    return ctx.Payload(), nil
//	})
//	log.Fatal(d.ListenAndServe())
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/server/admission"
	"jord/internal/server/breaker"
	"jord/internal/server/gateway"
	"jord/internal/server/pool"
	"jord/internal/server/router"
	"jord/internal/server/state"
	"jord/internal/server/trace"
)

// Config assembles one live worker daemon.
type Config struct {
	// Addr is the HTTP listen address (default ":8034").
	Addr string

	// Pool sizes the worker runtime (see pool.Config).
	Pool pool.Config

	// MaxInflight caps concurrently admitted external requests; beyond it
	// the gateway answers 429 immediately (0 defaults to 4× the pool's
	// executor count × JBSQ bound — enough to keep every executor queue
	// full without unbounded buffering). With adaptive admission (see
	// AdmitTarget) this is the hard ceiling the AIMD limit lives under.
	MaxInflight int

	// AdmitTarget is the queue-delay SLO of the adaptive admission
	// controller: while even the minimum gateway→executor queue delay over
	// an AdmitInterval exceeds it, the admit limit shrinks
	// multiplicatively; healthy intervals recover it additively toward
	// MaxInflight. 0 defaults to 5ms; < 0 disables the AIMD loop (static
	// MaxInflight cap only).
	AdmitTarget time.Duration

	// AdmitInterval is the AIMD evaluation window (default 100ms).
	AdmitInterval time.Duration

	// BreakerWindow is the sliding window over which per-function failures
	// (panics, blown deadlines, watchdog flags) are counted toward
	// tripping that function's circuit breaker. 0 defaults to 10s; < 0
	// disables circuit breakers entirely.
	BreakerWindow time.Duration

	// BreakerCooldown is how long a tripped breaker refuses requests
	// before admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration

	// BreakerRatio is the windowed failure fraction that trips a breaker
	// (default 0.5).
	BreakerRatio float64

	// BreakerMinSamples is the minimum windowed outcome count before the
	// ratio can trip (default 20).
	BreakerMinSamples uint64

	// StateCap caps the shared-state tier's total committed bytes. 0
	// defaults to 64 MiB; < 0 disables the state store entirely (bodies
	// using Ctx.State* get pool.ErrNoState).
	StateCap int64

	// StatePromoteAfter is the reads-since-last-write threshold at which a
	// hot state key is promoted to a global-RO mapping (the VTE G-bit fast
	// path). 0 defaults to 64; < 0 disables promotion.
	StatePromoteAfter int

	// RequestTimeout is the per-request deadline (default 30s; <0 = none).
	RequestTimeout time.Duration

	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration

	// MaxBodyBytes bounds /invoke payloads (default 1 MiB).
	MaxBodyBytes int64

	// DedupCache sizes the idempotent-replay cache: completed /invoke
	// responses are remembered by X-Jord-Idempotency-Key, so a re-sent
	// invocation (a dispatcher retrying across a broken connection)
	// replays the recorded response instead of executing twice. 0
	// defaults to 4096 entries; < 0 disables replay.
	DedupCache int

	// Edge serves HTTP through the zero-allocation edge front end
	// (gateway.Edge) instead of net/http: the POST /invoke fast path runs
	// from socket to function and back without per-request heap
	// allocations. Management endpoints behave identically (they are
	// delegated to the same handlers). net/http remains the default for
	// its wider protocol surface (HTTP/2, chunked bodies, TLS).
	Edge bool
}

// DefaultConfig returns the default daemon setup.
func DefaultConfig() Config {
	return Config{
		Addr:           ":8034",
		RequestTimeout: 30 * time.Second,
		DrainTimeout:   30 * time.Second,
	}
}

func (c *Config) normalize() {
	if c.Addr == "" {
		c.Addr = ":8034"
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
}

// Daemon is one live Jord worker server.
type Daemon struct {
	Cfg Config
	Reg *router.Registry

	pool  *pool.Pool
	state *state.Store // nil when StateCap < 0
	gw    *gateway.Gateway
	http  *http.Server  // nil when Cfg.Edge
	edge  *gateway.Edge // nil unless Cfg.Edge

	addr    atomic.Value // string; set once serving
	started atomic.Bool

	// startMu orders start() against Shutdown: Serve assembles the stack
	// on its own goroutine, so a Shutdown racing with startup must wait
	// for the fields above to be fully built (or observe none of them).
	startMu sync.Mutex
}

// New builds a daemon. Register functions, then ListenAndServe or Serve.
func New(cfg Config) *Daemon {
	cfg.normalize()
	return &Daemon{Cfg: cfg, Reg: router.New()}
}

// Register deploys a function on the live path (cf. core.System.Register
// on the simulated path).
func (d *Daemon) Register(name string, body router.Body) error {
	_, err := d.Reg.Register(name, body)
	return err
}

// MustRegister is Register for static function sets.
func (d *Daemon) MustRegister(name string, body router.Body) {
	d.Reg.MustRegister(name, body)
}

// start freezes registration and builds the runtime stack: overload
// controls first (admission controller, per-function breakers), then the
// pool with its feedback hooks pointed at them, then the gateway.
func (d *Daemon) start() error {
	if !d.started.CompareAndSwap(false, true) {
		return fmt.Errorf("server: already started")
	}
	d.startMu.Lock()
	defer d.startMu.Unlock()
	pc := d.Cfg.Pool
	norm := pc.Normalized()

	// Tiered shedding defaults ON for the daemon (0 = auto-size to half
	// the PD reserve; pass < 0 to disable). The raw pool keeps it off so
	// small-PD test rigs and benchmarks see exhaustion, not shedding.
	if pc.PDShedMargin == 0 {
		pc.PDShedMargin = norm.PDReserve / 2
		if pc.PDShedMargin < 1 {
			pc.PDShedMargin = 1
		}
	}

	maxInflight := d.Cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 4 * norm.Executors * norm.JBSQBound
	}
	var adm *admission.Controller
	if d.Cfg.AdmitTarget < 0 {
		adm = admission.New(maxInflight)
	} else {
		// The decrease floor keeps one admitted request per executor, so
		// a collapsed limit still feeds the whole worker.
		adm = admission.NewAdaptive(maxInflight, norm.Executors, d.Cfg.AdmitTarget, d.Cfg.AdmitInterval)
		pc.ObserveQueueDelay = adm.Observe
	}

	var breakers *breaker.Set
	if d.Cfg.BreakerWindow >= 0 {
		breakers = breaker.NewSet(breaker.Config{
			Window:       d.Cfg.BreakerWindow,
			Cooldown:     d.Cfg.BreakerCooldown,
			FailureRatio: d.Cfg.BreakerRatio,
			MinSamples:   d.Cfg.BreakerMinSamples,
			// Freeze a flight-recorder incident at the moment of every trip.
			// The pool is built after this Set, so the closure reads d.pool
			// lazily; trips can only fire once traffic flows, well after
			// start() assigned it. Runs under the breaker mutex: TripBreaker
			// is rate-limited and touches only trace/atomic state.
			OnTrip: func(name string) {
				if p := d.pool; p != nil {
					if tr := p.Trace(); tr != nil {
						tr.TripBreaker(name)
					}
				}
			},
		}, d.Reg.Names())
		pc.OnWatchdog = breakers.RecordFault
	}

	d.pool = pool.New(pc, d.Reg)

	// Shared-state tier: built between pool.New and pool.Start so its
	// dedicated PD allocates before serving begins, with its mutation gate
	// wired to the pool's tiered-shedding band — state growth degrades
	// exactly when external admission does.
	if d.Cfg.StateCap >= 0 {
		p := d.pool
		st, err := state.New(state.Config{
			CapBytes:     d.Cfg.StateCap,
			PromoteAfter: d.Cfg.StatePromoteAfter,
			Degraded: func() bool {
				thr := p.ShedThreshold()
				return thr > 0 && p.Table().FreeCount() <= thr
			},
		}, d.pool.Table())
		if err != nil {
			return fmt.Errorf("server: building state store: %w", err)
		}
		d.state = st
		d.pool.SetState(st)
	}

	// Flight-recorder context: when an incident freezes (breaker trip, shed
	// burst, watchdog flag), snapshot the gauges an operator needs alongside
	// the frozen traces. Reads only atomics and lock-free views.
	if tr := d.pool.Trace(); tr != nil {
		p := d.pool
		tr.SetFlightStats(func() trace.FlightStats {
			ext, internal, execQ := p.QueueDepths()
			st := p.Stats()
			return trace.FlightStats{
				ExtQueue:     ext,
				IntQueue:     internal,
				ExecQueue:    execQ,
				FreePDs:      p.Table().FreeCountExact(),
				LivePDs:      p.Table().LivePDs(),
				Inflight:     adm.Inflight(),
				AdmitLimit:   int(adm.Limit()),
				Shed:         st.Shed.Load(),
				Rejected:     st.Rejected.Load(),
				OpenBreakers: breakers.NotClosed(),
			}
		})
	}

	d.pool.Start()
	var dedup *gateway.DedupCache
	if d.Cfg.DedupCache >= 0 {
		dedup = gateway.NewDedupCache(d.Cfg.DedupCache)
	}
	d.gw = &gateway.Gateway{
		Reg:            d.Reg,
		Pool:           d.pool,
		Store:          d.state,
		Adm:            adm,
		Breakers:       breakers,
		Dedup:          dedup,
		RequestTimeout: d.Cfg.RequestTimeout,
		MaxBodyBytes:   d.Cfg.MaxBodyBytes,
	}
	if d.Cfg.Edge {
		d.edge = gateway.NewEdge(d.gw)
	} else {
		d.http = &http.Server{Handler: d.gw.Handler()}
	}
	return nil
}

// Pool exposes the worker runtime (tests, stats).
func (d *Daemon) Pool() *pool.Pool {
	d.startMu.Lock()
	defer d.startMu.Unlock()
	return d.pool
}

// State exposes the shared-state tier (nil when disabled).
func (d *Daemon) State() *state.Store {
	d.startMu.Lock()
	defer d.startMu.Unlock()
	return d.state
}

// Gateway exposes the HTTP layer (tests, stats).
func (d *Daemon) Gateway() *gateway.Gateway {
	d.startMu.Lock()
	defer d.startMu.Unlock()
	return d.gw
}

// Edge exposes the zero-allocation front end (nil unless Config.Edge).
func (d *Daemon) Edge() *gateway.Edge {
	d.startMu.Lock()
	defer d.startMu.Unlock()
	return d.edge
}

// Addr returns the bound listen address once serving ("" before).
func (d *Daemon) Addr() string {
	if v := d.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Serve runs the daemon on an existing listener until Shutdown or error.
func (d *Daemon) Serve(ln net.Listener) error {
	if err := d.start(); err != nil {
		return err
	}
	d.addr.Store(ln.Addr().String())
	if d.edge != nil {
		return d.edge.Serve(ln)
	}
	err := d.http.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds Config.Addr and serves until Shutdown or error.
func (d *Daemon) ListenAndServe() error {
	ln, err := net.Listen("tcp", d.Cfg.Addr)
	if err != nil {
		return err
	}
	return d.Serve(ln)
}

// Shutdown drains gracefully: flip /healthz to 503 and refuse new
// invocations, finish everything in flight (bounded by DrainTimeout), then
// close the listener. Safe to call once serving.
func (d *Daemon) Shutdown(ctx context.Context) error {
	// Taking startMu means a concurrent start() has either fully built
	// the stack or not begun; the field snapshot below is never partial.
	d.startMu.Lock()
	gw, edge, httpSrv, p, st := d.gw, d.edge, d.http, d.pool, d.state
	d.startMu.Unlock()
	if gw == nil {
		return fmt.Errorf("server: not started")
	}
	gw.SetDraining(true)
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.Cfg.DrainTimeout)
		defer cancel()
	}
	// Stop accepting connections and wait for in-flight HTTP handlers —
	// each of which waits on its invocation — then drain the pool's
	// internal state and stop the runtime goroutines.
	if edge != nil {
		if err := edge.Shutdown(ctx); err != nil {
			return err
		}
	} else if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := p.Drain(ctx); err != nil {
		return err
	}
	// With the pool drained no invocation can hold a state handle; closing
	// the store frees every value VMA and returns its PD to the table.
	if st != nil {
		return st.Close()
	}
	return nil
}
