// Package server assembles the live serving subsystem (jordd): the HTTP
// gateway, admission control, and the goroutine-backed worker pool that
// runs Jord's runtime architecture — JBSQ orchestrators, suspendable
// executor continuations, internal/external queues, and privlib-style
// per-invocation ArgBuf permission transfers — against real traffic.
//
// Where internal/core executes this architecture on the deterministic
// simulation engine to reproduce the paper's numbers, this package
// executes the same architecture on the Go runtime to serve requests:
//
//	d := server.New(server.DefaultConfig())
//	d.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
//	    return ctx.Payload(), nil
//	})
//	log.Fatal(d.ListenAndServe())
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"jord/internal/server/admission"
	"jord/internal/server/gateway"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// Config assembles one live worker daemon.
type Config struct {
	// Addr is the HTTP listen address (default ":8034").
	Addr string

	// Pool sizes the worker runtime (see pool.Config).
	Pool pool.Config

	// MaxInflight caps concurrently admitted external requests; beyond it
	// the gateway answers 429 immediately (0 defaults to 4× the pool's
	// executor count × JBSQ bound — enough to keep every executor queue
	// full without unbounded buffering).
	MaxInflight int

	// RequestTimeout is the per-request deadline (default 30s; <0 = none).
	RequestTimeout time.Duration

	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration

	// MaxBodyBytes bounds /invoke payloads (default 1 MiB).
	MaxBodyBytes int64
}

// DefaultConfig returns the default daemon setup.
func DefaultConfig() Config {
	return Config{
		Addr:           ":8034",
		RequestTimeout: 30 * time.Second,
		DrainTimeout:   30 * time.Second,
	}
}

func (c *Config) normalize() {
	if c.Addr == "" {
		c.Addr = ":8034"
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
}

// Daemon is one live Jord worker server.
type Daemon struct {
	Cfg Config
	Reg *router.Registry

	pool *pool.Pool
	gw   *gateway.Gateway
	http *http.Server

	addr    atomic.Value // string; set once serving
	started atomic.Bool
}

// New builds a daemon. Register functions, then ListenAndServe or Serve.
func New(cfg Config) *Daemon {
	cfg.normalize()
	return &Daemon{Cfg: cfg, Reg: router.New()}
}

// Register deploys a function on the live path (cf. core.System.Register
// on the simulated path).
func (d *Daemon) Register(name string, body router.Body) error {
	_, err := d.Reg.Register(name, body)
	return err
}

// MustRegister is Register for static function sets.
func (d *Daemon) MustRegister(name string, body router.Body) {
	d.Reg.MustRegister(name, body)
}

// start freezes registration and builds the runtime stack.
func (d *Daemon) start() error {
	if !d.started.CompareAndSwap(false, true) {
		return fmt.Errorf("server: already started")
	}
	d.pool = pool.New(d.Cfg.Pool, d.Reg)
	d.pool.Start()
	maxInflight := d.Cfg.MaxInflight
	if maxInflight <= 0 {
		pc := d.pool.Config()
		maxInflight = 4 * pc.Executors * pc.JBSQBound
	}
	d.gw = &gateway.Gateway{
		Reg:            d.Reg,
		Pool:           d.pool,
		Adm:            admission.New(maxInflight),
		RequestTimeout: d.Cfg.RequestTimeout,
		MaxBodyBytes:   d.Cfg.MaxBodyBytes,
	}
	d.http = &http.Server{Handler: d.gw.Handler()}
	return nil
}

// Pool exposes the worker runtime (tests, stats).
func (d *Daemon) Pool() *pool.Pool { return d.pool }

// Gateway exposes the HTTP layer (tests, stats).
func (d *Daemon) Gateway() *gateway.Gateway { return d.gw }

// Addr returns the bound listen address once serving ("" before).
func (d *Daemon) Addr() string {
	if v := d.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Serve runs the daemon on an existing listener until Shutdown or error.
func (d *Daemon) Serve(ln net.Listener) error {
	if err := d.start(); err != nil {
		return err
	}
	d.addr.Store(ln.Addr().String())
	err := d.http.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds Config.Addr and serves until Shutdown or error.
func (d *Daemon) ListenAndServe() error {
	ln, err := net.Listen("tcp", d.Cfg.Addr)
	if err != nil {
		return err
	}
	return d.Serve(ln)
}

// Shutdown drains gracefully: flip /healthz to 503 and refuse new
// invocations, finish everything in flight (bounded by DrainTimeout), then
// close the listener. Safe to call once serving.
func (d *Daemon) Shutdown(ctx context.Context) error {
	if d.gw == nil {
		return fmt.Errorf("server: not started")
	}
	d.gw.SetDraining(true)
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.Cfg.DrainTimeout)
		defer cancel()
	}
	// Stop accepting connections and wait for in-flight HTTP handlers —
	// each of which waits on its invocation — then drain the pool's
	// internal state and stop the runtime goroutines.
	if err := d.http.Shutdown(ctx); err != nil {
		return err
	}
	return d.pool.Drain(ctx)
}
