package trace

import (
	"sync"
	"testing"
	"time"
)

func mkSpan(fid int32, start, end int64, out Outcome) Span {
	s := Span{FuncID: fid, External: true, StartNS: start, EndNS: end, Outcome: out}
	s.Stages[StageExec] = end - start
	return s
}

func TestPublishAssignsIDAndRetains(t *testing.T) {
	r := NewRecorder(2)
	r.InitFuncs([]string{"echo"})

	s := mkSpan(0, 100, 200, OutcomeOK)
	r.Publish(0, &s)
	if s.ID == 0 {
		t.Fatal("publish did not assign an ID")
	}
	if s.ID&publishedBase == 0 {
		t.Fatalf("publish-assigned ID %#x missing the namespace bit", s.ID)
	}
	if s.Shard != 0 {
		t.Fatalf("shard = %d, want 0", s.Shard)
	}

	// An explicit (Async-assigned) ID survives publication.
	s2 := mkSpan(0, 300, 400, OutcomeOK)
	s2.ID = r.NextID()
	want := s2.ID
	r.Publish(1, &s2)
	if s2.ID != want {
		t.Fatalf("explicit ID rewritten: %d -> %d", want, s2.ID)
	}

	doc := r.Tracez("", 0)
	if len(doc.Recent) != 2 {
		t.Fatalf("recent = %d spans, want 2", len(doc.Recent))
	}
	// Newest first: s2 ended at 400.
	if doc.Recent[0].ID != want {
		t.Fatalf("recent[0] = %d, want the newest span %d", doc.Recent[0].ID, want)
	}
}

func TestPublishOutOfRangeShard(t *testing.T) {
	r := NewRecorder(4)
	r.InitFuncs([]string{"echo"})
	for _, idx := range []int{-1, 99} {
		s := mkSpan(0, 0, 10, OutcomeOK)
		r.Publish(idx, &s)
		if s.Shard < 0 || int(s.Shard) >= 4 {
			t.Fatalf("publish(%d) landed on shard %d", idx, s.Shard)
		}
	}
}

func TestSlowestRetention(t *testing.T) {
	r := NewRecorder(1)
	r.InitFuncs([]string{"echo", "other"})

	// Publish spans of increasing duration; only the slowK slowest stay.
	for i := int64(1); i <= 10; i++ {
		s := mkSpan(0, 0, i*100, OutcomeOK)
		r.Publish(0, &s)
	}
	doc := r.Tracez("echo", 0)
	if len(doc.Slow) != 1 {
		t.Fatalf("slow funcs = %d, want 1", len(doc.Slow))
	}
	spans := doc.Slow[0].Spans
	if len(spans) != slowK {
		t.Fatalf("retained %d slow spans, want %d", len(spans), slowK)
	}
	// The four slowest are 700..1000.
	for _, v := range spans {
		if v.DurNS < 700 {
			t.Fatalf("retained span of %dns; slowest-%d should all be >= 700", v.DurNS, slowK)
		}
	}

	// A fast span once the floor is set must not displace anything.
	fast := mkSpan(0, 0, 1, OutcomeOK)
	r.Publish(0, &fast)
	doc = r.Tracez("echo", 0)
	for _, v := range doc.Slow[0].Spans {
		if v.DurNS == 1 {
			t.Fatal("fast span displaced a slower retained one")
		}
	}

	// Filtering by the other (unused) function returns nothing.
	if doc := r.Tracez("other", 0); len(doc.Slow) != 0 {
		t.Fatalf("filter leak: %d slow funcs for an idle function", len(doc.Slow))
	}
}

func TestErrRingRetainsNonOK(t *testing.T) {
	r := NewRecorder(1)
	r.InitFuncs([]string{"echo"})

	ok := mkSpan(0, 0, 50, OutcomeOK)
	r.Publish(0, &ok)
	bad := mkSpan(0, 60, 100, OutcomeError)
	r.Publish(0, &bad)
	flagged := mkSpan(0, 110, 150, OutcomeOK)
	flagged.Flagged = true
	r.Publish(0, &flagged)

	doc := r.Tracez("", 0)
	if len(doc.Errors) != 2 {
		t.Fatalf("errors = %d, want 2 (errored + watchdog-flagged)", len(doc.Errors))
	}
	if doc.Errors[0].Watchdog != true {
		t.Fatalf("errors not newest-first: %+v", doc.Errors[0])
	}
}

func TestErrRingWraps(t *testing.T) {
	r := NewRecorder(1)
	r.InitFuncs([]string{"echo"})
	for i := int64(0); i < errCap+10; i++ {
		s := mkSpan(0, i, i+1, OutcomeError)
		r.Publish(0, &s)
	}
	doc := r.Tracez("", errCap*2)
	if len(doc.Errors) != errCap {
		t.Fatalf("errors = %d, want the ring cap %d", len(doc.Errors), errCap)
	}
}

func TestFlightRecorderTripAndRateLimit(t *testing.T) {
	r := NewRecorder(1)
	r.InitFuncs([]string{"echo"})
	r.SetFlightStats(func() FlightStats {
		return FlightStats{ExtQueue: 7, FreePDs: 3}
	})

	s := mkSpan(0, 0, 100, OutcomeOK)
	r.Publish(0, &s)

	r.TripBreaker("echo")
	r.TripBreaker("echo") // same class, inside the cooldown: dropped
	r.TripWatchdog("echo")

	incs := r.Incidents()
	if len(incs) != 2 {
		t.Fatalf("incidents = %d, want 2 (breaker + watchdog; duplicate rate-limited)", len(incs))
	}
	// Newest first: the watchdog trip.
	if incs[0].Reason != "watchdog:echo" {
		t.Fatalf("incidents[0].Reason = %q", incs[0].Reason)
	}
	if !incs[0].HasStats || incs[0].Stats.ExtQueue != 7 {
		t.Fatalf("stats not frozen: %+v", incs[0].Stats)
	}
	if len(incs[1].Traces) != 1 {
		t.Fatalf("breaker incident froze %d traces, want 1", len(incs[1].Traces))
	}
}

func TestFlightRecorderBounded(t *testing.T) {
	r := NewRecorder(1)
	r.InitFuncs([]string{"echo"})
	for i := 0; i < flightCap+5; i++ {
		// Distinct classes bypass the per-class cooldown.
		r.Trip("class"+string(rune('a'+i)), "r")
	}
	if got := len(r.Incidents()); got != flightCap {
		t.Fatalf("incidents = %d, want the cap %d", got, flightCap)
	}
}

func TestNoteShedBurstTrips(t *testing.T) {
	r := NewRecorder(1)
	r.InitFuncs([]string{"echo"})
	for i := 0; i < shedBurst; i++ {
		r.NoteShed()
	}
	incs := r.Incidents()
	if len(incs) != 1 || incs[0].Reason != "shed_burst" {
		t.Fatalf("shed burst did not freeze exactly one incident: %+v", incs)
	}
	// The burst counter keeps counting past the threshold without
	// re-tripping (the class cooldown holds).
	for i := 0; i < shedBurst; i++ {
		r.NoteShed()
	}
	if got := len(r.Incidents()); got != 1 {
		t.Fatalf("incidents after second burst = %d, want 1 (cooldown)", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    int64
		want int
	}{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}, {1 << 45, nBuckets - 1}}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 0; i < nBuckets; i++ {
		if got := bucketOf(bucketUpperNS(i)); got != i {
			t.Errorf("bucketOf(bucketUpperNS(%d)) = %d", i, got)
		}
	}
}

func TestStageHistsAndQuantiles(t *testing.T) {
	r := NewRecorder(2)
	r.InitFuncs([]string{"echo"})
	// 100 spans, exec duration 1000ns each, split across both shards.
	for i := 0; i < 100; i++ {
		s := Span{FuncID: 0, StartNS: int64(i), EndNS: int64(i) + 1000}
		s.Stages[StageExec] = 1000
		s.Stages[StageQueue] = 100
		r.Publish(i%2, &s)
	}
	hists := r.StageHists()
	exec := hists[StageExec]
	if exec.Count != 100 || exec.SumNS != 100_000 {
		t.Fatalf("exec hist count=%d sum=%d", exec.Count, exec.SumNS)
	}
	// All samples sit in bucket log2(1000)=9, upper bound 1023.
	if p99 := exec.quantileNS(0.99); p99 != 1023 {
		t.Fatalf("exec p99 = %d, want 1023", p99)
	}
	if q := hists[StageQueue].quantileNS(0.5); q != 127 {
		t.Fatalf("queue p50 = %d, want 127", q)
	}
	if hists[StageParse].Count != 0 {
		t.Fatalf("parse hist picked up %d phantom samples", hists[StageParse].Count)
	}
}

func TestTracezFilterAndLimit(t *testing.T) {
	r := NewRecorder(1)
	r.InitFuncs([]string{"a", "b"})
	for i := int64(0); i < 10; i++ {
		s := mkSpan(int32(i%2), i*10, i*10+5, OutcomeOK)
		r.Publish(0, &s)
	}
	doc := r.Tracez("a", 3)
	if len(doc.Recent) != 3 {
		t.Fatalf("limit ignored: %d recent", len(doc.Recent))
	}
	for _, v := range doc.Recent {
		if v.Func != "a" {
			t.Fatalf("filter leak: got func %q", v.Func)
		}
	}
}

func TestViewOtherNSExcludesState(t *testing.T) {
	r := NewRecorder(1)
	r.InitFuncs([]string{"a"})
	s := Span{FuncID: 0, StartNS: 0, EndNS: 1000}
	s.Stages[StageExec] = 600
	s.Stages[StageState] = 500 // inside exec: must not count toward attribution
	s.Stages[StageQueue] = 300
	v := r.view(&s)
	if v.OtherNS != 100 {
		t.Fatalf("other_ns = %d, want 1000-600-300 = 100", v.OtherNS)
	}
}

func TestConcurrentPublishAndExport(t *testing.T) {
	r := NewRecorder(4)
	r.InitFuncs([]string{"a", "b"})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				out := OutcomeOK
				if i%7 == 0 {
					out = OutcomeError
				}
				s := mkSpan(int32(w%2), int64(i), int64(i+w+1), out)
				r.Publish(w%4, &s)
				if i%100 == 0 {
					r.NoteShed()
				}
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Tracez("", 16)
			_ = r.Flightz()
			_ = r.StageHists()
			r.TripBreaker("a")
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	hists := r.StageHists()
	if got := hists[StageExec].Count; got != 8*2000 {
		t.Fatalf("exec count = %d, want %d (no lost publishes)", got, 8*2000)
	}
}
