// Package trace is the live runtime's always-on, allocation-free
// per-invocation tracing layer. Every request carries a Span embedded by
// value in the pool's recycled request struct; the runtime stamps it with
// monotonic nanoseconds at each lifecycle stage (edge parse, admission
// verdict, queue wait, PD init, execution, nested-call waits, state-tier
// ops, teardown, response write) and publishes the completed span into a
// per-executor ring buffer. Publication is one uncontended mutex per
// finishing executor covering the ring-slot memcpy plus the per-stage
// log-bucket histogram increments — no allocation, no shared cache-line
// RMW storm, and no torn reads for /tracez readers.
//
// Retention is tail-based: each shard keeps its most recent spans, a
// global table keeps the slowest-N per function (gated by a per-function
// atomic duration floor so the hot path pays one atomic load), and every
// errored / shed / canceled / watchdog-flagged span lands in a dedicated
// incident ring. A flight recorder freezes the last spans plus queue/PD
// stats whenever a breaker trips, a shed burst fires, or the watchdog
// flags a request.
package trace

import (
	"math/bits"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one slot of a span's per-stage duration array — the live
// decomposition of the paper's Figure 4 invocation flow.
type Stage int

const (
	// StageParse is the edge's work before the runtime sees the request:
	// request-line/header parsing and the body read into the pooled
	// invoke buffer. Zero for requests arriving through the net/http
	// gateway or Pool.Invoke directly.
	StageParse Stage = iota
	// StageAdmit is the breaker check plus the admission-controller
	// verdict (edge path only).
	StageAdmit
	// StageQueue is submission -> executor dequeue: the orchestrator's
	// external (or internal) queue plus the JBSQ-bounded executor queue,
	// including any PD-stall requeues.
	StageQueue
	// StageInit is dequeue -> function entry: PD cget plus the ArgBuf
	// pmove (code is global-RX, so there is no per-invocation code copy).
	StageInit
	// StageExec is time the function body runs inside its PD (excludes
	// suspended waits; includes state-tier time, reported separately as
	// StageState).
	StageExec
	// StageWait is time suspended on nested calls (cexit -> center).
	StageWait
	// StageState is the summed duration of shared-state operations
	// (Get/Take/Put/Delete) — a subset of StageExec, broken out.
	StageState
	// StageTeardown is output write-back, ArgBuf pmove to the runtime
	// domain, state-handle release, and PD cput.
	StageTeardown
	// StageResp is the edge's response write (writev) back to the socket.
	StageResp

	// NumStages sizes the per-span duration array.
	NumStages = int(StageResp) + 1
)

// stageNames are the wire names used by /tracez and /metrics.
var stageNames = [NumStages]string{
	"parse", "admit", "queue", "init", "exec", "wait", "state", "teardown", "resp",
}

// Name returns the stage's wire name.
func (s Stage) Name() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Outcome classifies how an invocation ended. Stored as a small enum, not
// an error string, so publishing an errored span allocates nothing.
type Outcome uint8

const (
	OutcomeOK        Outcome = iota
	OutcomeError             // body returned an error
	OutcomePanicked          // body panicked (pool.ErrPanicked)
	OutcomeCanceled          // caller abandoned / parent orphaned
	OutcomeExpired           // deadline exceeded
	OutcomeShed              // tiered PD shedding refused it (pool.ErrDegraded)
	OutcomeSaturated         // external queue full (pool.ErrSaturated)
	OutcomeRefused           // edge refusal: unknown fn, breaker open, admission, draining
)

var outcomeNames = [...]string{
	"ok", "error", "panicked", "canceled", "expired", "shed", "saturated", "refused",
}

// Name returns the outcome's wire name.
func (o Outcome) Name() string {
	if int(o) >= len(outcomeNames) {
		return "unknown"
	}
	return outcomeNames[o]
}

// Span is one invocation's trace record. It is embedded by value in the
// pool's recycled request struct (and in the edge's per-connection state
// for refused requests), stamped in place, and published by memcpy into a
// shard ring — no per-span allocation, no ownership to leak.
//
// All timestamps are nanoseconds on the owning Recorder's monotonic clock
// (Recorder.Now); Stages holds per-stage durations. StageState overlaps
// StageExec (it is a break-out, not a sibling); the remaining stages are
// disjoint, and their sum may fall short of EndNS-StartNS when a request
// died between stamps (the gap is reported as "other" by /tracez).
type Span struct {
	ID       uint64 // assigned lazily: at publish, or at first child Async
	ParentID uint64 // parent invocation's ID for nested calls, else 0
	FuncID   int32  // router.Func.ID; -1 when unknown (pre-lookup refusals)
	Shard    int32  // publishing shard (finishing executor)
	Outcome  Outcome
	Flagged  bool // ExecTimeout watchdog flagged this invocation
	External bool
	StartNS  int64
	EndNS    int64
	Children int32 // nested calls issued
	StateOps int32 // state-tier operations performed
	Stages   [NumStages]int64
}

// Dur returns the span's total duration in nanoseconds.
func (s *Span) Dur() int64 { return s.EndNS - s.StartNS }

const (
	ringCap  = 256 // per-shard recent-span ring (power of two)
	errCap   = 128 // global errored/shed/canceled/watchdog ring (power of two)
	slowK    = 4   // slowest spans retained per function
	nBuckets = 40  // log2(ns) stage-histogram buckets: covers ~18 minutes

	flightCap     = 8                      // frozen incidents retained
	flightTraces  = 32                     // spans frozen per incident
	tripCooldown  = 2 * time.Second        // per-trigger-class incident rate limit
	shedWindow    = int64(1 * time.Second) // shed-burst detection window, ns
	shedBurst     = 32                     // sheds within the window that freeze an incident
	publishedBase = uint64(1) << 63        // namespace for publish-assigned span IDs
)

// shard is one executor's slice of the recorder: a recent-span ring plus
// per-stage log-bucket histograms, all guarded by one mutex that is
// uncontended in steady state (one finishing executor, or the one edge
// connection that carried the request, publishes here at a time).
type shard struct {
	_  [64]byte // keep neighbouring shards off this line
	mu sync.Mutex
	n  uint64 // spans ever published here
	// seq feeds publish-assigned span IDs: top bit set, shard in the next
	// 15 bits, per-shard sequence below — disjoint from NextID's range.
	seq     uint64
	ring    [ringCap]Span
	count   [NumStages]uint64
	sum     [NumStages]int64
	buckets [NumStages][nBuckets]uint32
	_       [64]byte
}

// funcSlow retains the slowest-K spans for one function. floor is the
// admission gate the hot path checks with a single atomic load: once the
// table is full it holds the smallest retained duration, so only spans
// that would actually displace an entry take the slow mutex.
type funcSlow struct {
	floor atomic.Int64
	n     int // guarded by Recorder.slowMu
	spans [slowK]Span
}

// FlightStats is the runtime gauge snapshot frozen into an incident —
// queue depths, PD/credit supply, admission limit, breaker states. The
// server wires a snapshot function (SetFlightStats); a bare pool freezes
// traces only.
type FlightStats struct {
	ExtQueue     int      `json:"ext_queue"`
	IntQueue     int      `json:"int_queue"`
	ExecQueue    int      `json:"exec_queue"`
	FreePDs      int      `json:"free_pds"`
	LivePDs      int      `json:"live_pds"`
	Inflight     int64    `json:"inflight"`
	AdmitLimit   int      `json:"admit_limit"`
	Shed         uint64   `json:"shed"`
	Rejected     uint64   `json:"rejected"`
	OpenBreakers []string `json:"open_breakers,omitempty"`
}

// Incident is one frozen flight-recorder snapshot.
type Incident struct {
	Seq      uint64
	Reason   string
	Wall     time.Time
	AtNS     int64
	Stats    FlightStats
	HasStats bool
	Traces   []Span // most recent spans across all shards, newest first
}

// Recorder owns the tracing plane for one pool: the clock epoch, the
// per-executor shards, retention, and the flight recorder.
type Recorder struct {
	epoch   time.Time
	tsc     bool  // TSC fast clock active (see clock_amd64.go)
	epochNS int64 // creation stamp on the process TSC clock (tsc only)
	shards  []*shard

	// funcs/names index per-function retention by router.Func.ID. Set
	// once by InitFuncs before traffic starts; read-only afterwards.
	funcs []*funcSlow
	names []string

	_   [56]byte
	ids atomic.Uint64 // explicit span IDs (nested-call linkage)
	_   [56]byte

	slowMu sync.Mutex // guards every funcSlow.spans/n

	errMu   sync.Mutex
	errN    uint64
	errRing [errCap]Span

	// Shed-burst detection: a coarse 1-second window of NoteShed calls.
	shedWinStart atomic.Int64
	shedWinCount atomic.Int64

	flightMu  sync.Mutex
	flightSeq uint64
	incidents []Incident       // newest last, at most flightCap
	lastTrip  map[string]int64 // per-trigger-class rate limit, ns
	statsFn   func() FlightStats
}

// NewRecorder builds a recorder with one shard per executor.
func NewRecorder(shards int) *Recorder {
	if shards < 1 {
		shards = 1
	}
	initFastClock()
	r := &Recorder{
		epoch:    time.Now(),
		lastTrip: make(map[string]int64),
	}
	if tscEnabled {
		r.tsc = true
		r.epochNS = tscNow()
	}
	r.shards = make([]*shard, shards)
	for i := range r.shards {
		r.shards[i] = &shard{}
	}
	return r
}

// InitFuncs registers the function names indexed by router.Func.ID. Must
// be called before traffic starts (pool.Start does).
func (r *Recorder) InitFuncs(names []string) {
	r.names = names
	r.funcs = make([]*funcSlow, len(names))
	for i := range r.funcs {
		r.funcs[i] = &funcSlow{}
	}
}

// SetFlightStats wires the gauge snapshot frozen into incidents. Must be
// set before traffic starts. The function is called from trigger sites
// that may hold executor or breaker locks: it must only read atomics or
// take locks that are never held while publishing/tripping (queue-depth
// and table counters qualify).
func (r *Recorder) SetFlightStats(fn func() FlightStats) { r.statsFn = fn }

// Now returns nanoseconds on the recorder's monotonic clock: the
// calibrated TSC fast path (~10 ns) where the kernel vouches for the TSC,
// else the runtime clock (see clock_amd64.go). Alloc-free.
func (r *Recorder) Now() int64 {
	if r.tsc {
		return tscNow() - r.epochNS
	}
	return time.Since(r.epoch).Nanoseconds()
}

// Wall converts a recorder timestamp back to wall time (export only).
// Anchored on the current instant — not the epoch — so TSC calibration
// error scales with how old the trace is, not how long the process has
// been up.
func (r *Recorder) Wall(ns int64) time.Time {
	return time.Now().Add(time.Duration(ns - r.Now()))
}

// NextID allocates an explicit span ID — taken lazily, only when a parent
// first needs linkable identity (its first Async), so the plain hot path
// pays no shared-counter RMW.
func (r *Recorder) NextID() uint64 { return r.ids.Add(1) }

// FuncName resolves a span's FuncID (export paths).
func (r *Recorder) FuncName(id int32) string {
	if id < 0 || int(id) >= len(r.names) {
		return "?"
	}
	return r.names[id]
}

// bucketOf maps a positive duration to its log2 bucket index.
func bucketOf(d int64) int {
	b := bits.Len64(uint64(d)) - 1
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b
}

// bucketUpperNS is the inclusive upper bound of bucket i.
func bucketUpperNS(i int) int64 { return (int64(1) << (uint(i) + 1)) - 1 }

// Publish records a completed span: memcpy into the shard ring, bump the
// per-stage histograms, then run the (atomically gated) retention checks.
// shardIdx is the finishing executor; out-of-range (sweeper finishes,
// edge refusals) spreads randomly. s is copied; the caller keeps ownership
// of the struct and may recycle it immediately. Allocation-free.
func (r *Recorder) Publish(shardIdx int, s *Span) {
	if shardIdx < 0 || shardIdx >= len(r.shards) {
		shardIdx = rand.IntN(len(r.shards))
	}
	s.Shard = int32(shardIdx)
	sh := r.shards[shardIdx]
	sh.mu.Lock()
	if s.ID == 0 {
		sh.seq++
		s.ID = publishedBase | uint64(shardIdx)<<48 | sh.seq
	}
	sh.ring[sh.n&(ringCap-1)] = *s
	sh.n++
	for st := 0; st < NumStages; st++ {
		d := s.Stages[st]
		if d <= 0 {
			continue
		}
		sh.count[st]++
		sh.sum[st] += d
		sh.buckets[st][bucketOf(d)]++
	}
	sh.mu.Unlock()

	if fid := int(s.FuncID); fid >= 0 && fid < len(r.funcs) {
		fs := r.funcs[fid]
		if d := s.Dur(); d > fs.floor.Load() {
			r.insertSlow(fs, s, d)
		}
	}
	if s.Outcome != OutcomeOK || s.Flagged {
		r.errMu.Lock()
		r.errRing[r.errN&(errCap-1)] = *s
		r.errN++
		r.errMu.Unlock()
	}
}

// insertSlow admits a span into a function's slowest-K table (rare: the
// floor gate already filtered it).
func (r *Recorder) insertSlow(fs *funcSlow, s *Span, d int64) {
	r.slowMu.Lock()
	if fs.n < slowK {
		fs.spans[fs.n] = *s
		fs.n++
		if fs.n == slowK {
			fs.floor.Store(fs.minDur())
		}
		r.slowMu.Unlock()
		return
	}
	mi, md := 0, fs.spans[0].Dur()
	for i := 1; i < slowK; i++ {
		if di := fs.spans[i].Dur(); di < md {
			mi, md = i, di
		}
	}
	if d > md {
		fs.spans[mi] = *s
		fs.floor.Store(fs.minDur())
	}
	r.slowMu.Unlock()
}

// minDur returns the smallest retained duration (slowMu held, table full).
func (fs *funcSlow) minDur() int64 {
	m := fs.spans[0].Dur()
	for i := 1; i < slowK; i++ {
		if d := fs.spans[i].Dur(); d < m {
			m = d
		}
	}
	return m
}

// NoteShed counts one tiered-shedding refusal toward burst detection: a
// shedBurst-sized run inside a one-second window freezes an incident.
// Called on the pool's shed path — a few atomics, no locks.
func (r *Recorder) NoteShed() {
	now := r.Now()
	ws := r.shedWinStart.Load()
	if now-ws > shedWindow {
		if r.shedWinStart.CompareAndSwap(ws, now) {
			r.shedWinCount.Store(1)
			return
		}
	}
	if r.shedWinCount.Add(1) == shedBurst {
		r.Trip("shed", "shed_burst")
	}
}

// TripBreaker freezes an incident for a circuit-breaker trip. Called with
// the breaker's lock held — the capture only reads atomics/queue gauges
// and takes trace-internal locks (see SetFlightStats).
func (r *Recorder) TripBreaker(fn string) { r.Trip("breaker", "breaker_trip:"+fn) }

// TripWatchdog freezes an incident for a watchdog-flagged invocation.
func (r *Recorder) TripWatchdog(fn string) { r.Trip("watchdog", "watchdog:"+fn) }

// Trip freezes a flight-recorder incident: the most recent spans across
// all shards plus the runtime gauge snapshot. Rate-limited per trigger
// class (the first trip of a storm is the interesting one); bounded at
// flightCap retained incidents. Allocates — trips are rare by design.
func (r *Recorder) Trip(class, reason string) {
	now := r.Now()
	r.flightMu.Lock()
	if last, ok := r.lastTrip[class]; ok && now-last < tripCooldown.Nanoseconds() {
		r.flightMu.Unlock()
		return
	}
	r.lastTrip[class] = now
	r.flightSeq++
	inc := Incident{
		Seq:    r.flightSeq,
		Reason: reason,
		Wall:   r.Wall(now),
		AtNS:   now,
		Traces: r.recentSpans(flightTraces),
	}
	if r.statsFn != nil {
		inc.Stats = r.statsFn()
		inc.HasStats = true
	}
	r.incidents = append(r.incidents, inc)
	if len(r.incidents) > flightCap {
		r.incidents = r.incidents[len(r.incidents)-flightCap:]
	}
	r.flightMu.Unlock()
}

// Incidents returns the retained flight-recorder snapshots, newest first.
func (r *Recorder) Incidents() []Incident {
	r.flightMu.Lock()
	out := make([]Incident, len(r.incidents))
	for i := range r.incidents {
		out[i] = r.incidents[len(r.incidents)-1-i]
	}
	r.flightMu.Unlock()
	return out
}

// recentSpans copies the newest k spans across all shards, newest first.
func (r *Recorder) recentSpans(k int) []Span {
	var all []Span
	for _, sh := range r.shards {
		sh.mu.Lock()
		n := sh.n
		cnt := int(n)
		if cnt > ringCap {
			cnt = ringCap
		}
		for i := 0; i < cnt; i++ {
			all = append(all, sh.ring[(n-1-uint64(i))&(ringCap-1)])
		}
		sh.mu.Unlock()
	}
	sortSpansByEndDesc(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// sortSpansByEndDesc orders spans newest-first (insertion sort would be
// fine at these sizes; use a simple comparison sort without package sort
// generics noise).
func sortSpansByEndDesc(s []Span) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].EndNS > s[j-1].EndNS; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// StageHist is one stage's merged latency histogram (export).
type StageHist struct {
	Stage   string
	Count   uint64
	SumNS   int64
	Buckets [nBuckets]uint64 // raw per-bucket counts; bucket i upper bound bucketUpperNS(i)
}

// NumStageBuckets exposes the bucket count for exporters.
const NumStageBuckets = nBuckets

// StageBucketUpperNS exposes bucket bounds for exporters.
func StageBucketUpperNS(i int) int64 { return bucketUpperNS(i) }

// StageHists merges every shard's per-stage histograms.
func (r *Recorder) StageHists() [NumStages]StageHist {
	var out [NumStages]StageHist
	for st := 0; st < NumStages; st++ {
		out[st].Stage = Stage(st).Name()
	}
	for _, sh := range r.shards {
		sh.mu.Lock()
		for st := 0; st < NumStages; st++ {
			out[st].Count += sh.count[st]
			out[st].SumNS += sh.sum[st]
			for b := 0; b < nBuckets; b++ {
				out[st].Buckets[b] += uint64(sh.buckets[st][b])
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// quantileNS estimates a quantile from a log-bucket histogram (upper
// bound of the bucket holding the q-th sample).
func (h *StageHist) quantileNS(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var cum uint64
	for i := 0; i < nBuckets; i++ {
		cum += h.Buckets[i]
		if cum > target {
			return bucketUpperNS(i)
		}
	}
	return bucketUpperNS(nBuckets - 1)
}
