// Raw invariant-TSC read for the trace fast clock (see clock_amd64.go for
// the calibration and safety gates that decide whether it is ever used).

#include "textflag.h"

// func rdtsc() int64
TEXT ·rdtsc(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
