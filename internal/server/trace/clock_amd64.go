//go:build amd64

package trace

import (
	"math/bits"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"
)

// The trace plane stamps every invocation at ~5 lifecycle boundaries, so
// the clock read IS the overhead: on virtualized hosts vDSO
// clock_gettime costs 25-35 ns while a raw RDTSC costs ~10, and the
// difference multiplied across stamps decides whether always-on tracing
// fits its 5% budget. The fast path therefore reads the invariant TSC
// directly and converts ticks to nanoseconds with a fixed-point scale
// calibrated once per process against the runtime clock.
//
// Safety gates — ALL must hold or the recorder stays on time.Since:
//   - Linux reports clocksource "tsc": the kernel has already validated
//     that the TSC is invariant, synchronized across cores, and not
//     stopping in deep C-states; it demotes to hpet/acpi_pm otherwise.
//     This also rules out kvm-clock guests where the host hides an
//     unstable TSC.
//   - RDTSC is cheaper than the fallback it replaces: a hypervisor that
//     traps RDTSC makes it ~100x slower, which calibration detects by
//     timing a read loop.
//   - The calibrated frequency lands in a sane 0.1-10 GHz band.
//
// Calibration error (two pairs ~2 ms apart, bracketed reads) is ~1e-4 in
// rate. All of a span's stamps come from the SAME clock domain, so stage
// math is unaffected; the error only shows where trace time meets wall
// time, and Recorder.Wall anchors on the current instant precisely so
// that residual drift scales with trace age, not process uptime.

func rdtsc() int64 // clock_amd64.s

var (
	fastClockOnce sync.Once
	tscEnabled    bool
	tscScale      uint64 // ns per tick, 32.32 fixed point
)

// tscToNS converts a tick delta to nanoseconds (128-bit intermediate, no
// overflow for centuries of uptime).
func tscToNS(ticks int64) int64 {
	hi, lo := bits.Mul64(uint64(ticks), tscScale)
	return int64(hi<<32 | lo>>32)
}

// tscNow returns nanoseconds on the process-wide TSC clock. Only called
// when tscEnabled.
func tscNow() int64 { return tscToNS(rdtsc()) }

func initFastClock() { fastClockOnce.Do(calibrateTSC) }

// clockPair reads a (monotonic ns, tsc) pair with the tightest RDTSC
// bracket out of a few attempts, so the pair's skew is bounded by one
// clock-read latency.
func clockPair(epoch time.Time) (ns, ticks int64) {
	bestGap := int64(1 << 62)
	for i := 0; i < 8; i++ {
		c0 := rdtsc()
		t := time.Since(epoch).Nanoseconds()
		c1 := rdtsc()
		if gap := c1 - c0; gap >= 0 && gap < bestGap {
			bestGap = gap
			ns = t
			ticks = c0 + gap/2
		}
	}
	return ns, ticks
}

func calibrateTSC() {
	if runtime.GOOS == "linux" {
		cs, err := os.ReadFile("/sys/devices/system/clocksource/clocksource0/current_clocksource")
		if err != nil || strings.TrimSpace(string(cs)) != "tsc" {
			return
		}
	} else {
		// No kernel-vetted stability signal off Linux; stay on time.Since.
		return
	}

	// A trapped RDTSC (paranoid hypervisor) must not be installed as the
	// "fast" path: time a read loop against the clock it would replace.
	const probeN = 2000
	start := time.Now()
	for i := 0; i < probeN; i++ {
		rdtsc()
	}
	perRead := time.Since(start).Nanoseconds() / probeN
	if perRead > 25 {
		return
	}

	epoch := time.Now()
	ns0, c0 := clockPair(epoch)
	time.Sleep(2 * time.Millisecond)
	ns1, c1 := clockPair(epoch)
	if c1 <= c0 || ns1 <= ns0 {
		return
	}
	nsPerTick := float64(ns1-ns0) / float64(c1-c0)
	hz := 1e9 / nsPerTick
	if hz < 0.1e9 || hz > 10e9 {
		return
	}
	tscScale = uint64(nsPerTick * (1 << 32))
	if tscScale == 0 {
		return
	}
	tscEnabled = true
}
