//go:build !amd64

package trace

// Non-amd64: no TSC fast path; the recorder clock stays on the runtime's
// monotonic clock (time.Since), which every stamp site already handles.

const tscEnabled = false

func tscNow() int64 { return 0 }

func initFastClock() {}
