package trace

// Export views: the JSON shapes served by GET /tracez and GET /flightz.
// These run off the hot path and may allocate freely.

// SpanView is the wire form of one span.
type SpanView struct {
	ID       uint64           `json:"id"`
	ParentID uint64           `json:"parent_id,omitempty"`
	Func     string           `json:"func"`
	External bool             `json:"external"`
	Outcome  string           `json:"outcome"`
	Watchdog bool             `json:"watchdog,omitempty"`
	StartNS  int64            `json:"start_ns"`
	DurNS    int64            `json:"dur_ns"`
	Children int32            `json:"children,omitempty"`
	StateOps int32            `json:"state_ops,omitempty"`
	Stages   map[string]int64 `json:"stages"`
	OtherNS  int64            `json:"other_ns,omitempty"` // dur minus attributed stages
}

// StageView is one stage's merged latency summary.
type StageView struct {
	Stage string `json:"stage"`
	Count uint64 `json:"count"`
	AvgNS int64  `json:"avg_ns"`
	P50NS int64  `json:"p50_ns"`
	P99NS int64  `json:"p99_ns"`
}

// FuncSlowView is one function's slowest retained traces.
type FuncSlowView struct {
	Func  string     `json:"func"`
	Spans []SpanView `json:"spans"`
}

// Doc is the /tracez document.
type Doc struct {
	NowNS  int64          `json:"now_ns"`
	Stages []StageView    `json:"stages"`
	Slow   []FuncSlowView `json:"slow"`
	Errors []SpanView     `json:"errors"`
	Recent []SpanView     `json:"recent"`
}

// IncidentView is the /flightz wire form of one incident.
type IncidentView struct {
	Seq    uint64       `json:"seq"`
	Reason string       `json:"reason"`
	Wall   string       `json:"wall"`
	AtNS   int64        `json:"at_ns"`
	Stats  *FlightStats `json:"stats,omitempty"`
	Traces []SpanView   `json:"traces"`
}

// view converts a span for export.
func (r *Recorder) view(s *Span) SpanView {
	v := SpanView{
		ID:       s.ID,
		ParentID: s.ParentID,
		Func:     r.FuncName(s.FuncID),
		External: s.External,
		Outcome:  s.Outcome.Name(),
		Watchdog: s.Flagged,
		StartNS:  s.StartNS,
		DurNS:    s.Dur(),
		Children: s.Children,
		StateOps: s.StateOps,
		Stages:   make(map[string]int64, 4),
	}
	var attributed int64
	for st := 0; st < NumStages; st++ {
		d := s.Stages[st]
		if d <= 0 {
			continue
		}
		v.Stages[Stage(st).Name()] = d
		if Stage(st) != StageState { // state is a break-out of exec
			attributed += d
		}
	}
	if other := v.DurNS - attributed; other > 0 {
		v.OtherNS = other
	}
	return v
}

// Tracez builds the /tracez document. fn filters the slow/error/recent
// span lists to one function name ("" = all); limit bounds each span list
// (<= 0 picks a default of 32).
func (r *Recorder) Tracez(fn string, limit int) Doc {
	if limit <= 0 {
		limit = 32
	}
	doc := Doc{NowNS: r.Now()}

	hists := r.StageHists()
	for st := range hists {
		h := &hists[st]
		if h.Count == 0 {
			continue
		}
		doc.Stages = append(doc.Stages, StageView{
			Stage: h.Stage,
			Count: h.Count,
			AvgNS: h.SumNS / int64(h.Count),
			P50NS: h.quantileNS(0.50),
			P99NS: h.quantileNS(0.99),
		})
	}

	r.slowMu.Lock()
	for id, fs := range r.funcs {
		name := r.FuncName(int32(id))
		if fn != "" && name != fn {
			continue
		}
		if fs.n == 0 {
			continue
		}
		fv := FuncSlowView{Func: name}
		spans := make([]Span, fs.n)
		copy(spans, fs.spans[:fs.n])
		for i := range spans {
			fv.Spans = append(fv.Spans, r.view(&spans[i]))
		}
		doc.Slow = append(doc.Slow, fv)
	}
	r.slowMu.Unlock()

	r.errMu.Lock()
	n := r.errN
	cnt := int(n)
	if cnt > errCap {
		cnt = errCap
	}
	errs := make([]Span, 0, cnt)
	for i := 0; i < cnt; i++ {
		errs = append(errs, r.errRing[(n-1-uint64(i))&(errCap-1)])
	}
	r.errMu.Unlock()
	for i := range errs {
		if fn != "" && r.FuncName(errs[i].FuncID) != fn {
			continue
		}
		doc.Errors = append(doc.Errors, r.view(&errs[i]))
		if len(doc.Errors) >= limit {
			break
		}
	}

	recent := r.recentSpans(ringCap * len(r.shards))
	for i := range recent {
		if fn != "" && r.FuncName(recent[i].FuncID) != fn {
			continue
		}
		doc.Recent = append(doc.Recent, r.view(&recent[i]))
		if len(doc.Recent) >= limit {
			break
		}
	}
	return doc
}

// Flightz builds the /flightz document, newest incident first.
func (r *Recorder) Flightz() []IncidentView {
	incs := r.Incidents()
	out := make([]IncidentView, 0, len(incs))
	for i := range incs {
		inc := &incs[i]
		iv := IncidentView{
			Seq:    inc.Seq,
			Reason: inc.Reason,
			Wall:   inc.Wall.UTC().Format("2006-01-02T15:04:05.000Z"),
			AtNS:   inc.AtNS,
		}
		if inc.HasStats {
			st := inc.Stats
			iv.Stats = &st
		}
		for j := range inc.Traces {
			iv.Traces = append(iv.Traces, r.view(&inc.Traces[j]))
		}
		out = append(out, iv)
	}
	return out
}
