package pool

import (
	"fmt"
	"sync"

	"jord/internal/mem/vmatable"
)

// nvte is the size of the inline per-PD permission sub-array — the same 20
// entries the paper's VTE carries in its cache block (Fig. 8, §4.3).
const nvte = vmatable.SubEntries

// pdPerm is one inline (or overflow) permission slot.
type pdPerm struct {
	pd   PDID
	perm Perm
	used bool // a slot revoked to PermNone is distinguishable from free
}

// VMA is a live in-address-space buffer with per-PD permissions — the live
// analogue of a simulated VMA plus its VTE permission sub-array (Fig. 8).
// ArgBufs, function code regions, and scratch buffers are all VMAs. Every
// read, write, and permission transfer is checked against the caller's
// protection domain, so a function touching a buffer it does not own
// faults exactly as it would under the paper's hardware checks.
//
// Permissions live in a fixed inline array searched linearly, spilling
// into a rarely-used overflow list past nvte sharers — the VTE layout —
// instead of a per-VMA heap map. An ArgBuf has at most two sharers over
// its whole life, so its permission traffic never leaves the first slots
// and never allocates.
type VMA struct {
	table *Table
	mu    sync.Mutex
	sub   [nvte]pdPerm
	over  []pdPerm // overflow list (VTE ptr field) beyond nvte sharers

	// global, when nonzero, grants this permission to every PD — the VTE
	// G bit. Function code regions are global RX: every invocation PD may
	// execute them without a per-invocation pcopy/pmove pair.
	global Perm

	data []byte
}

// NewVMA allocates a buffer owned by pd with the given permission
// (PrivLib: mmap into pd). The VMA structure comes from a recycle pool;
// its permission state is always empty on return.
func (t *Table) NewVMA(owner PDID, data []byte, perm Perm) *VMA {
	v := vmaPool.Get().(*VMA)
	v.table = t
	v.data = data
	v.sub[0] = pdPerm{pd: owner, perm: perm, used: true}
	return v
}

// NewGlobalVMA allocates a buffer every PD holds perm on (the VTE G bit) —
// used for function code regions, which all invocation domains execute.
func (t *Table) NewGlobalVMA(data []byte, perm Perm) *VMA {
	v := vmaPool.Get().(*VMA)
	v.table = t
	v.data = data
	v.global = perm
	return v
}

// Global reports the VMA's G-bit permission (PermNone when not global).
func (v *VMA) Global() Perm {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.global
}

var vmaPool = sync.Pool{New: func() any { return new(VMA) }}

// putVMA recycles a VMA structure once no PD references it anymore. The
// data slice is dropped, not reused — readers may still alias it (the
// zero-copy Read contract); only the structure and its permission arrays
// recycle.
func putVMA(v *VMA) {
	v.table = nil
	v.data = nil
	v.global = 0
	v.sub = [nvte]pdPerm{}
	v.over = v.over[:0]
	vmaPool.Put(v)
}

// Free destroys the VMA (the live munmap): owner must be its sole
// remaining sharer and the G bit must be clear, so no other domain can be
// holding a live grant on the storage being retired. On success the
// structure recycles; prior Read aliases stay valid (recycling never
// reuses a data slice).
func (v *VMA) Free(owner PDID) error {
	v.mu.Lock()
	if v.global != 0 {
		err := v.table.fault(&Fault{Op: "free", PD: owner,
			Detail: fmt.Sprintf("VMA still global %v", v.global)})
		v.mu.Unlock()
		return err
	}
	sharers := 0
	ownerHeld := false
	for i := range v.sub {
		if v.sub[i].used {
			sharers++
			if v.sub[i].pd == owner {
				ownerHeld = true
			}
		}
	}
	for i := range v.over {
		sharers++
		if v.over[i].pd == owner {
			ownerHeld = true
		}
	}
	if !ownerHeld || sharers != 1 {
		err := v.table.fault(&Fault{Op: "free", PD: owner,
			Detail: fmt.Sprintf("%d sharers, owner held=%v", sharers, ownerHeld)})
		v.mu.Unlock()
		return err
	}
	v.mu.Unlock()
	putVMA(v)
	return nil
}

// permFor returns the permission pd holds. Callers hold v.mu.
func (v *VMA) permFor(pd PDID) Perm {
	p := v.global
	for i := range v.sub {
		if v.sub[i].used && v.sub[i].pd == pd {
			return p | v.sub[i].perm
		}
	}
	for i := range v.over {
		if v.over[i].pd == pd {
			return p | v.over[i].perm
		}
	}
	return p
}

// orPerm grants pd the given permission bits on top of any it holds,
// claiming a free inline slot or spilling to the overflow list. Callers
// hold v.mu.
func (v *VMA) orPerm(pd PDID, perm Perm) {
	freeSlot := -1
	for i := range v.sub {
		if v.sub[i].used {
			if v.sub[i].pd == pd {
				v.sub[i].perm |= perm
				return
			}
		} else if freeSlot < 0 {
			freeSlot = i
		}
	}
	for i := range v.over {
		if v.over[i].pd == pd {
			v.over[i].perm |= perm
			return
		}
	}
	if freeSlot >= 0 {
		v.sub[freeSlot] = pdPerm{pd: pd, perm: perm, used: true}
		return
	}
	v.over = append(v.over, pdPerm{pd: pd, perm: perm, used: true})
}

// clearPerm removes pd's entry entirely. Callers hold v.mu.
func (v *VMA) clearPerm(pd PDID) {
	for i := range v.sub {
		if v.sub[i].used && v.sub[i].pd == pd {
			v.sub[i] = pdPerm{}
			return
		}
	}
	for i := range v.over {
		if v.over[i].pd == pd {
			last := len(v.over) - 1
			v.over[i] = v.over[last]
			v.over[last] = pdPerm{}
			v.over = v.over[:last]
			return
		}
	}
}

// Pmove transfers this VMA's permission from one PD to another, removing
// it from the source (Table 1: pmove — ownership transfer, the zero-copy
// ArgBuf handoff of §3.4).
func (v *VMA) Pmove(from, to PDID, perm Perm) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	held := v.permFor(from)
	if held&perm != perm {
		return v.table.fault(&Fault{Op: "pmove", PD: from,
			Detail: fmt.Sprintf("holds %v, cannot transfer %v", held, perm)})
	}
	v.clearPerm(from)
	v.orPerm(to, perm)
	return nil
}

// Pcopy grants a copy of this VMA's permission to another PD while the
// source keeps its own (Table 1: pcopy — e.g. sharing a function's code
// region with a fresh invocation PD).
func (v *VMA) Pcopy(from, to PDID, perm Perm) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	held := v.permFor(from)
	if held&perm != perm {
		return v.table.fault(&Fault{Op: "pcopy", PD: from,
			Detail: fmt.Sprintf("holds %v, cannot grant %v", held, perm)})
	}
	v.orPerm(to, perm)
	return nil
}

// PromoteGlobal sets perm in the VMA's G bit, granting it to every PD (the
// VTE G-bit promotion for hot read-mostly objects: subsequent readers pay
// no pcopy, no per-PD slot, and no revocation on release). The promoting PD
// must already hold perm in its own right.
func (v *VMA) PromoteGlobal(from PDID, perm Perm) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	held := v.permFor(from)
	if held&perm != perm {
		return v.table.fault(&Fault{Op: "promote", PD: from,
			Detail: fmt.Sprintf("holds %v, cannot promote %v to global", held, perm)})
	}
	v.global |= perm
	return nil
}

// DemoteGlobal clears perm from the VMA's G bit — the revocation a writer
// performs before mutating a promoted object. Per-PD entries are untouched,
// so the owner's own grant survives the demotion. The demoting PD must hold
// perm through a per-PD entry (not merely via the G bit it is revoking).
func (v *VMA) DemoteGlobal(from PDID, perm Perm) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	held := vmatable.PermNone
	for i := range v.sub {
		if v.sub[i].used && v.sub[i].pd == from {
			held = v.sub[i].perm
			break
		}
	}
	if held == vmatable.PermNone {
		for i := range v.over {
			if v.over[i].pd == from {
				held = v.over[i].perm
				break
			}
		}
	}
	if held&perm != perm {
		return v.table.fault(&Fault{Op: "demote", PD: from,
			Detail: fmt.Sprintf("holds %v in its own right, cannot revoke global %v", held, perm)})
	}
	v.global &^= perm
	return nil
}

// Check verifies pd holds want on this VMA (the live stand-in for the
// hardware VLB/VTW permission check on each access).
func (v *VMA) Check(pd PDID, want Perm) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.check(pd, want)
}

func (v *VMA) check(pd PDID, want Perm) error {
	if held := v.permFor(pd); held&want != want {
		op := "access"
		switch want {
		case vmatable.PermR:
			op = "read"
		case vmatable.PermW:
			op = "write"
		case vmatable.PermX, vmatable.PermRX:
			op = "execute"
		}
		return v.table.fault(&Fault{Op: op, PD: pd,
			Detail: fmt.Sprintf("holds %v, needs %v", held, want)})
	}
	return nil
}

// Read returns the buffer contents after a permission check.
//
// Aliasing contract: the returned slice aliases the VMA's storage
// (zero-copy, like the paper's ArgBufs) — it stays valid for the reader
// even after the VMA structure is recycled, because Write and Append
// replace or extend the backing slice rather than mutating shared bytes
// in place, and recycling never reuses a data slice. Callers must hold
// the permission for as long as they use the contents.
func (v *VMA) Read(pd PDID) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.check(pd, vmatable.PermR); err != nil {
		return nil, err
	}
	return v.data, nil
}

// Write replaces the buffer contents after a permission check (a function
// writing its outputs into its ArgBuf before handing it back). The VMA
// takes ownership of data; previous Read aliases keep seeing the old
// contents.
func (v *VMA) Write(pd PDID, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.check(pd, vmatable.PermW); err != nil {
		return err
	}
	v.data = data
	return nil
}

// Append extends the buffer contents in place after a permission check, so
// echo-style functions can build outputs directly in the ArgBuf instead of
// allocating a private slice and Write-replacing the whole payload. It
// grows the existing backing array (amortized), never copies the payload
// twice. Prior Read aliases may or may not observe appended bytes — treat
// a Read taken before an Append as a snapshot of the earlier length only.
func (v *VMA) Append(pd PDID, data ...byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.check(pd, vmatable.PermW); err != nil {
		return err
	}
	v.data = append(v.data, data...)
	return nil
}

// Len returns the current payload size in bytes.
func (v *VMA) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.data)
}
