package pool

import (
	"math/rand"
	"testing"
)

func TestDequeFIFO(t *testing.T) {
	var d deque[int]
	if _, ok := d.PopFront(); ok {
		t.Fatal("pop on empty deque should fail")
	}
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < 100; i++ {
		x, ok := d.PopFront()
		if !ok || x != i {
			t.Fatalf("pop %d = %d, %v", i, x, ok)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("len after drain = %d", d.Len())
	}
}

func TestDequePushFront(t *testing.T) {
	var d deque[int]
	d.PushBack(2)
	d.PushBack(3)
	d.PushFront(1)
	d.PushFront(0)
	for i := 0; i < 4; i++ {
		if got := d.At(i); got != i {
			t.Fatalf("At(%d) = %d", i, got)
		}
	}
	for i := 0; i < 4; i++ {
		if x, _ := d.PopFront(); x != i {
			t.Fatalf("pop = %d, want %d", x, i)
		}
	}
}

func TestDequeWrapAround(t *testing.T) {
	// Force head to migrate through the ring repeatedly.
	var d deque[int]
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			d.PushBack(next)
			next++
		}
		for i := 0; i < 5; i++ {
			x, ok := d.PopFront()
			if !ok || x != want {
				t.Fatalf("round %d: pop = %d/%v, want %d", round, x, ok, want)
			}
			want++
		}
	}
	for d.Len() > 0 {
		x, _ := d.PopFront()
		if x != want {
			t.Fatalf("drain: pop = %d, want %d", x, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d, pushed %d", want, next)
	}
}

// TestDequeRemoveAt cross-checks RemoveAt against a reference slice under
// randomized push/remove traffic, covering both shift directions and the
// ring wrap.
func TestDequeRemoveAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var d deque[int]
	var ref []int
	next := 0
	for op := 0; op < 5000; op++ {
		switch {
		case d.Len() == 0 || rng.Intn(3) != 0:
			if rng.Intn(4) == 0 {
				d.PushFront(next)
				ref = append([]int{next}, ref...)
			} else {
				d.PushBack(next)
				ref = append(ref, next)
			}
			next++
		default:
			i := rng.Intn(d.Len())
			got := d.RemoveAt(i)
			want := ref[i]
			ref = append(ref[:i], ref[i+1:]...)
			if got != want {
				t.Fatalf("op %d: RemoveAt(%d) = %d, want %d", op, i, got, want)
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("op %d: len %d != ref %d", op, d.Len(), len(ref))
		}
		for i, want := range ref {
			if got := d.At(i); got != want {
				t.Fatalf("op %d: At(%d) = %d, want %d", op, i, got, want)
			}
		}
	}
}
