// Package pool is the live serving path's runtime: a faithful port of the
// paper's worker-server architecture (§3.3/§3.4, Figure 4) from the
// deterministic simulator (internal/core) onto real goroutines.
//
//   - Orchestrator goroutines accept external requests from the HTTP
//     gateway and internal (nested) requests from executors, and dispatch
//     both into per-executor bounded queues with JBSQ load balancing.
//     Internal requests have absolute priority and bypass the JBSQ bound,
//     the paper's §3.3 deadlock-avoidance design.
//   - Executor goroutines run each invocation as a suspendable
//     continuation goroutine inside a fresh protection domain: a nested
//     Call suspends the continuation (cexit) and returns the executor to
//     its loop, so executors never block on children.
//   - Per-invocation ArgBufs are VMAs whose ownership moves between
//     protection domains with pmove/pcopy, enforced by software permission
//     checks (Table) that mirror internal/privlib's security policy.
//
// Where the simulator charges modelled latencies for these operations, the
// live path pays their real cost; the semantics — who may touch what, in
// which domain, in what order — are the same.
package pool

import (
	"fmt"
	"sync"

	"jord/internal/mem/vmatable"
)

// PDID and Perm are shared with the simulated memory system so the live
// and simulated paths speak the same protection vocabulary.
type (
	PDID = vmatable.PDID
	Perm = vmatable.Perm
)

// ExecutorPD is the protection domain of trusted runtime code
// (orchestrators, executors, the gateway) — the live analogue of
// privlib.ExecutorPD.
const ExecutorPD PDID = 0

// Fault is an isolation violation on the live path: a PD touched a VMA it
// holds no (sufficient) permission for, or misused the PD lifecycle. It
// mirrors privlib.Fault.
type Fault struct {
	Op     string // the PrivLib-style operation ("pmove", "read", "cput", ...)
	PD     PDID   // the offending protection domain
	Detail string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("jord fault: %s from pd %d: %s", f.Op, f.PD, f.Detail)
}

// Table manages the live PD space: a free list of PD IDs plus fault
// accounting. It is the live-path analogue of PrivLib's cget/cput PD
// free list, safe for concurrent use.
type Table struct {
	mu   sync.Mutex
	free []PDID
	live map[PDID]bool

	// onFree, when set (by the pool), runs after every Cput so executors
	// stalled on PD exhaustion can re-check capacity.
	onFree func()

	cgets, cputs uint64
	faults       uint64
}

// NewTable creates a PD space with IDs 1..numPDs (0 is ExecutorPD).
func NewTable(numPDs int) *Table {
	if numPDs < 1 {
		numPDs = 1
	}
	t := &Table{live: map[PDID]bool{ExecutorPD: true}}
	for id := numPDs; id >= 1; id-- {
		t.free = append(t.free, PDID(id))
	}
	return t
}

// Cget allocates a fresh protection domain (Table 1: cget).
func (t *Table) Cget() (PDID, error) { return t.CgetAbove(0) }

// CgetAbove allocates a PD only while more than reserve remain free.
// Executors start external requests with the pool's internal-reserve
// floor and internal (nested) requests with reserve 0, extending §3.3's
// internal-priority deadlock avoidance from queue slots to the PD
// resource: the last PDs are always available to the children that
// suspended parents are waiting on.
func (t *Table) CgetAbove(reserve int) (PDID, error) {
	t.mu.Lock()
	if len(t.free) <= reserve {
		if len(t.free) == 0 {
			// True exhaustion is an accounted fault; a reserve-gated
			// refusal is ordinary backpressure.
			t.faults++
		}
		t.mu.Unlock()
		return 0, &Fault{Op: "cget", PD: ExecutorPD, Detail: "protection domain space exhausted"}
	}
	pd := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	t.live[pd] = true
	t.cgets++
	t.mu.Unlock()
	return pd, nil
}

// Cput destroys a protection domain, returning its ID to the free list
// (Table 1: cput).
func (t *Table) Cput(pd PDID) error {
	t.mu.Lock()
	if pd == ExecutorPD || !t.live[pd] {
		t.faults++
		t.mu.Unlock()
		return &Fault{Op: "cput", PD: pd, Detail: "not a live user protection domain"}
	}
	delete(t.live, pd)
	t.free = append(t.free, pd)
	t.cputs++
	cb := t.onFree
	t.mu.Unlock()
	if cb != nil {
		cb()
	}
	return nil
}

// HasFree reports whether a Cget can currently succeed. Executors check it
// before starting new work, exactly as the simulator's executors consult
// privlib.HasFreePDs (suspended continuations hold PDs; starting new work
// with none free would fault).
func (t *Table) HasFree() bool { return t.FreeCount() > 0 }

// FreeCount returns the number of free PDs.
func (t *Table) FreeCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.free)
}

// LivePDs returns the number of currently allocated user PDs.
func (t *Table) LivePDs() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live) - 1 // minus ExecutorPD
}

// Faults returns the cumulative isolation-violation count.
func (t *Table) Faults() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults
}

func (t *Table) fault(f *Fault) error {
	t.mu.Lock()
	t.faults++
	t.mu.Unlock()
	return f
}

// VMA is a live in-address-space buffer with per-PD permissions — the live
// analogue of a simulated VMA plus its VTE permission sub-array (Fig. 8).
// ArgBufs, function code regions, and scratch buffers are all VMAs. Every
// read, write, and permission transfer is checked against the caller's
// protection domain, so a function touching a buffer it does not own
// faults exactly as it would under the paper's hardware checks.
type VMA struct {
	table *Table
	mu    sync.Mutex
	perms map[PDID]Perm
	data  []byte
}

// NewVMA allocates a buffer owned by pd with the given permission
// (PrivLib: mmap into pd).
func (t *Table) NewVMA(owner PDID, data []byte, perm Perm) *VMA {
	return &VMA{table: t, perms: map[PDID]Perm{owner: perm}, data: data}
}

// Pmove transfers this VMA's permission from one PD to another, removing
// it from the source (Table 1: pmove — ownership transfer, the zero-copy
// ArgBuf handoff of §3.4).
func (v *VMA) Pmove(from, to PDID, perm Perm) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	held := v.perms[from]
	if held&perm != perm {
		return v.table.fault(&Fault{Op: "pmove", PD: from,
			Detail: fmt.Sprintf("holds %v, cannot transfer %v", held, perm)})
	}
	delete(v.perms, from)
	v.perms[to] |= perm
	return nil
}

// Pcopy grants a copy of this VMA's permission to another PD while the
// source keeps its own (Table 1: pcopy — e.g. sharing a function's code
// region with a fresh invocation PD).
func (v *VMA) Pcopy(from, to PDID, perm Perm) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	held := v.perms[from]
	if held&perm != perm {
		return v.table.fault(&Fault{Op: "pcopy", PD: from,
			Detail: fmt.Sprintf("holds %v, cannot grant %v", held, perm)})
	}
	v.perms[to] |= perm
	return nil
}

// Check verifies pd holds want on this VMA (the live stand-in for the
// hardware VLB/VTW permission check on each access).
func (v *VMA) Check(pd PDID, want Perm) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.check(pd, want)
}

func (v *VMA) check(pd PDID, want Perm) error {
	if v.perms[pd]&want != want {
		op := "access"
		switch want {
		case vmatable.PermR:
			op = "read"
		case vmatable.PermW:
			op = "write"
		case vmatable.PermX, vmatable.PermRX:
			op = "execute"
		}
		return v.table.fault(&Fault{Op: op, PD: pd,
			Detail: fmt.Sprintf("holds %v, needs %v", v.perms[pd], want)})
	}
	return nil
}

// Read returns the buffer contents after a permission check. The returned
// slice aliases the VMA's storage (zero-copy, like the paper's ArgBufs);
// callers must hold the permission for as long as they use it.
func (v *VMA) Read(pd PDID) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.check(pd, vmatable.PermR); err != nil {
		return nil, err
	}
	return v.data, nil
}

// Write replaces the buffer contents after a permission check (a function
// writing its outputs into its ArgBuf before handing it back).
func (v *VMA) Write(pd PDID, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.check(pd, vmatable.PermW); err != nil {
		return err
	}
	v.data = data
	return nil
}

// Len returns the current payload size in bytes.
func (v *VMA) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.data)
}
