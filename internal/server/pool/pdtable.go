// Package pool is the live serving path's runtime: a faithful port of the
// paper's worker-server architecture (§3.3/§3.4, Figure 4) from the
// deterministic simulator (internal/core) onto real goroutines.
//
//   - Orchestrator goroutines accept external requests from the HTTP
//     gateway and internal (nested) requests from executors, and dispatch
//     both into per-executor bounded queues with JBSQ load balancing.
//     Internal requests have absolute priority and bypass the JBSQ bound,
//     the paper's §3.3 deadlock-avoidance design.
//   - Executor goroutines run each invocation as a suspendable
//     continuation inside a fresh protection domain: a nested Call
//     suspends the continuation (cexit) and returns the executor to its
//     loop, so executors never block on children.
//   - Per-invocation ArgBufs are VMAs whose ownership moves between
//     protection domains with pmove/pcopy, enforced by software permission
//     checks that mirror internal/privlib's security policy.
//
// Where the simulator charges modelled latencies for these operations, the
// live path pays their real cost, so the hot path is engineered like the
// paper engineers its hardware: PD allocation runs through per-executor
// free-list caches over a sharded global pool (the live analogue of
// PrivLib's per-core free lists), VMA permissions live in a fixed inline
// sub-array with an overflow list (the Fig. 8 VTE layout), continuations
// run on recycled parked goroutines, and per-function statistics shard per
// executor. The semantics — who may touch what, in which domain, in what
// order — are unchanged.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"jord/internal/mem/vmatable"
)

// PDID and Perm are shared with the simulated memory system so the live
// and simulated paths speak the same protection vocabulary.
type (
	PDID = vmatable.PDID
	Perm = vmatable.Perm
)

// ExecutorPD is the protection domain of trusted runtime code
// (orchestrators, executors, the gateway) — the live analogue of
// privlib.ExecutorPD.
const ExecutorPD PDID = 0

// Fault is an isolation violation on the live path: a PD touched a VMA it
// holds no (sufficient) permission for, or misused the PD lifecycle. It
// mirrors privlib.Fault.
type Fault struct {
	Op     string // the PrivLib-style operation ("pmove", "read", "cput", ...)
	PD     PDID   // the offending protection domain
	Detail string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("jord fault: %s from pd %d: %s", f.Op, f.PD, f.Detail)
}

// pdBatch is how many PD IDs a per-executor cache pulls from (or flushes
// to) the global shards at once — PrivLib refills its per-core free lists
// in batches the same way, so the shard locks are touched once per batch,
// not once per invocation.
const pdBatch = 16

// pdCacheMax bounds a per-executor cache; beyond it, Cput flushes a batch
// back to the shards so free IDs cannot strand on an idle executor.
const pdCacheMax = 2 * pdBatch

// creditBatch is how many units of free-counter supply an executor carves
// off the global counter at once. With credits in hand, the §3.3 reserve
// check costs one CAS on the executor's OWN cache line instead of a CAS on
// the shared counter — the shared line is touched (read-only for internals,
// one load for externals) but never written on the hot path.
const creditBatch = 16

// pdShard is one slice of the global free list, under its own lock.
type pdShard struct {
	mu   sync.Mutex
	free []PDID
	_    [32]byte // keep neighbouring shard locks off one cache line
}

// Table manages the live PD space: sharded free lists of PD IDs, an atomic
// free counter for the §3.3 reserve check, per-PD live flags for lifecycle
// (double-free) enforcement, and fault accounting. It is the live-path
// analogue of PrivLib's cget/cput PD free list, safe for concurrent use.
//
// The free counter counts every unallocated PD — whether it sits in a
// global shard or in a per-executor cache — so the internal-priority
// reserve invariant ("external requests start only while more than
// PDReserve PDs remain free") holds across all shards and caches: Cget
// reserves a unit with one CAS on the counter before touching any list.
//
// Under many cores that single CAS becomes the contention point (every
// invocation RMWs the same cache line), so executors additionally carve
// per-cache CREDIT batches off the counter while supply is plentiful
// (nfree >= creditFloor+creditBatch). A credit is one unit of pre-paid
// reservation: consuming it replaces the shared CAS with a CAS on the
// executor's private line. Safety: the physical free supply always equals
// nfree + Σcredits(+in-flight consumes), so physFree >= nfree, and an
// external consume additionally checks nfree >= reserve — together with
// the distinct credit being consumed this gives physFree >= reserve+1,
// exactly the "admit iff free > reserve" rule of the legacy CAS. Near the
// floor no credits are carved and the legacy CAS runs, so the invariant
// stays EXACT where it matters (reserve/shedding territory); tests with
// small tables never carve at all (floor >= numPDs).
type Table struct {
	nfree  atomic.Int64  // unallocated PDs (shards + caches) minus outstanding credits
	shards []pdShard     // IDs round-robined across shards
	live   []atomic.Bool // indexed by PDID; true while allocated
	numPDs int

	// creditFloor: no credits are carved while nfree would drop below it.
	// Set before concurrent use (NewTable default, SetCreditFloor).
	creditFloor int64

	// caches registered by executors (newCache); Cget steals from them
	// when the shards run dry but the counter says IDs exist.
	cacheMu sync.Mutex
	caches  []*pdCache

	// scan rotates the starting shard for refills and uncached gets so
	// concurrent allocators spread across shard locks instead of all
	// hammering shard 0.
	scan atomic.Uint32

	// onFree, when set (by the pool), runs after every Cput so executors
	// stalled on PD exhaustion can re-check capacity.
	onFree func()

	cgets, cputs atomic.Uint64
	faults       atomic.Uint64
}

// NewTable creates a PD space with IDs 1..numPDs (0 is ExecutorPD).
func NewTable(numPDs int) *Table {
	if numPDs < 1 {
		numPDs = 1
	}
	// One shard per core, clamped: a floor of 4 keeps the sharded paths
	// exercised on small machines, a ceiling of 16 bounds the scan cost
	// when the shards run dry.
	ns := runtime.GOMAXPROCS(0)
	if ns < 4 {
		ns = 4
	}
	if ns > 16 {
		ns = 16
	}
	if ns > numPDs {
		ns = numPDs
	}
	t := &Table{
		shards: make([]pdShard, ns),
		live:   make([]atomic.Bool, numPDs+1),
		numPDs: numPDs,
	}
	t.live[ExecutorPD].Store(true)
	for id := numPDs; id >= 1; id-- {
		s := &t.shards[(id-1)%ns]
		s.free = append(s.free, PDID(id))
	}
	t.nfree.Store(int64(numPDs))
	// Default floor: only plentiful tables carve credits; small tables
	// (and every pre-existing test fixture) run the exact legacy CAS.
	t.creditFloor = int64(numPDs / 4)
	if t.creditFloor < 64 {
		t.creditFloor = 64
	}
	return t
}

// SetCreditFloor overrides the credit-carving floor: while the free counter
// is at or below floor+creditBatch, Cget runs the exact legacy reserve CAS
// and no supply moves into per-executor credits. The pool raises this above
// its shedding threshold so credits never blur the counter in reserve or
// shedding territory. Not safe to call concurrently with allocations.
func (t *Table) SetCreditFloor(floor int) {
	if floor < 0 {
		floor = 0
	}
	t.creditFloor = int64(floor)
}

// pdCache is one executor's private PD free list. The owner refills it in
// batches from the table's shards; other executors may steal from it under
// its lock when the shards run dry, so no free ID can strand here.
type pdCache struct {
	// credits is this executor's pre-carved share of the free counter —
	// the owner's reserve check CASes this private line, not t.nfree.
	// Padded so the list lock and thieves never share its cache line.
	credits atomic.Int64
	_       [56]byte

	t    *Table
	mu   sync.Mutex
	free []PDID
}

// newCache registers a per-executor free-list cache.
func (t *Table) newCache() *pdCache {
	c := &pdCache{t: t, free: make([]PDID, 0, pdCacheMax+pdBatch)}
	t.cacheMu.Lock()
	t.caches = append(t.caches, c)
	t.cacheMu.Unlock()
	return c
}

// reserveOne claims one unit of PD supply iff more than reserve units
// remain — the atomic-counter fast path for the §3.3 reserve check. A
// successful reservation entitles the caller to exactly one physical ID
// from some shard or cache.
func (t *Table) reserveOne(reserve int) bool {
	for {
		cur := t.nfree.Load()
		if cur <= int64(reserve) {
			return false
		}
		if t.nfree.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// tryCredit claims one unit of supply from the executor's pre-carved
// credits, carving a fresh batch off the global counter when the cache is
// dry and supply sits comfortably above the floor. A consumed credit is
// exactly a successful reserveOne: the caller owns one physical ID.
//
// Externals (reserve > 0) take one extra pure LOAD of the shared counter:
// admitting on nfree >= reserve while also holding a distinct credit means
// the physical free supply exceeds reserve after the admit — the same
// guarantee the legacy CAS gives — without writing the shared line.
func (t *Table) tryCredit(reserve int, cache *pdCache) bool {
	carved := false
	for {
		cur := cache.credits.Load()
		if cur > 0 {
			if reserve > 0 && t.nfree.Load() < int64(reserve) {
				return false
			}
			if cache.credits.CompareAndSwap(cur, cur-1) {
				return true
			}
			continue
		}
		if carved {
			return false
		}
		carved = true
		free := t.nfree.Load()
		if free < t.creditFloor+creditBatch {
			return false
		}
		if !t.nfree.CompareAndSwap(free, free-creditBatch) {
			return false
		}
		cache.credits.Add(creditBatch)
	}
}

// reclaimCredits returns every outstanding credit to the global counter.
// Called wherever a stranded credit could matter: an executor about to
// stall on PD exhaustion, a failed cget retrying, Drain, and VerifyIdle.
// Concurrent consumers are safe: Swap and the consume CAS serialize, so a
// credit is counted exactly once — either consumed or reclaimed.
func (t *Table) reclaimCredits() {
	t.cacheMu.Lock()
	caches := t.caches
	t.cacheMu.Unlock()
	for _, c := range caches {
		if n := c.credits.Swap(0); n > 0 {
			t.nfree.Add(n)
		}
	}
}

// takeID redeems a successful reservation for a physical PD ID. The
// counter guarantees an ID exists in some shard or cache; the loop rides
// out the transient window in which a batch is in flight between lists.
func (t *Table) takeID(cache *pdCache) PDID {
	for {
		if cache != nil {
			cache.mu.Lock()
			if n := len(cache.free); n > 0 {
				pd := cache.free[n-1]
				cache.free = cache.free[:n-1]
				cache.mu.Unlock()
				return pd
			}
			cache.mu.Unlock()
			if pd, ok := t.refill(cache); ok {
				return pd
			}
		} else if pd, ok := t.takeFromShards(); ok {
			return pd
		}
		// Shards (and own cache) empty: the reserved ID must be in some
		// other executor's cache — steal it.
		if pd, ok := t.steal(cache); ok {
			return pd
		}
		runtime.Gosched()
	}
}

// takeFromShards pops one ID from the first non-empty shard, starting at
// a rotating index.
func (t *Table) takeFromShards() (PDID, bool) {
	start := int(t.cgets.Load()) // cheap rotation; exactness is irrelevant
	for j := range t.shards {
		s := &t.shards[(start+j)%len(t.shards)]
		s.mu.Lock()
		if n := len(s.free); n > 0 {
			pd := s.free[n-1]
			s.free = s.free[:n-1]
			s.mu.Unlock()
			return pd, true
		}
		s.mu.Unlock()
	}
	return 0, false
}

// refill moves up to pdBatch IDs from one shard into the cache and returns
// the first of them.
func (t *Table) refill(cache *pdCache) (PDID, bool) {
	start := int(t.scan.Add(1))
	for j := range t.shards {
		s := &t.shards[(start+j)%len(t.shards)]
		s.mu.Lock()
		n := len(s.free)
		if n == 0 {
			s.mu.Unlock()
			continue
		}
		take := pdBatch
		if take > n {
			take = n
		}
		batch := s.free[n-take:]
		pd := batch[take-1]
		cache.mu.Lock()
		cache.free = append(cache.free, batch[:take-1]...)
		cache.mu.Unlock()
		s.free = s.free[:n-take]
		s.mu.Unlock()
		return pd, true
	}
	return 0, false
}

// steal takes one ID out of another executor's cache.
func (t *Table) steal(self *pdCache) (PDID, bool) {
	t.cacheMu.Lock()
	caches := t.caches
	t.cacheMu.Unlock()
	for _, c := range caches {
		if c == self {
			continue
		}
		c.mu.Lock()
		if n := len(c.free); n > 0 {
			pd := c.free[n-1]
			c.free = c.free[:n-1]
			c.mu.Unlock()
			return pd, true
		}
		c.mu.Unlock()
	}
	return 0, false
}

// Cget allocates a fresh protection domain (Table 1: cget).
func (t *Table) Cget() (PDID, error) { return t.cget(0, nil) }

// CgetAbove allocates a PD only while more than reserve remain free.
// Executors start external requests with the pool's internal-reserve
// floor and internal (nested) requests with reserve 0, extending §3.3's
// internal-priority deadlock avoidance from queue slots to the PD
// resource: the last PDs are always available to the children that
// suspended parents are waiting on.
func (t *Table) CgetAbove(reserve int) (PDID, error) { return t.cget(reserve, nil) }

// cgetCached is CgetAbove through an executor's free-list cache.
func (t *Table) cgetCached(reserve int, cache *pdCache) (PDID, error) {
	return t.cget(reserve, cache)
}

func (t *Table) cget(reserve int, cache *pdCache) (PDID, error) {
	ok := cache != nil && t.tryCredit(reserve, cache)
	if !ok {
		ok = t.reserveOne(reserve)
		if !ok {
			// The last supply may be stranded as credits on idle
			// executors; pull it back and retry once.
			t.reclaimCredits()
			ok = t.reserveOne(reserve)
		}
	}
	if !ok {
		if t.nfree.Load() <= 0 {
			// True exhaustion is an accounted fault; a reserve-gated
			// refusal is ordinary backpressure.
			t.faults.Add(1)
		}
		return 0, &Fault{Op: "cget", PD: ExecutorPD, Detail: "protection domain space exhausted"}
	}
	pd := t.takeID(cache)
	t.live[pd].Store(true)
	t.cgets.Add(1)
	return pd, nil
}

// Cput destroys a protection domain, returning its ID to the free list
// (Table 1: cput).
func (t *Table) Cput(pd PDID) error { return t.cput(pd, nil) }

// cputCached is Cput through an executor's free-list cache.
func (t *Table) cputCached(pd PDID, cache *pdCache) error { return t.cput(pd, cache) }

func (t *Table) cput(pd PDID, cache *pdCache) error {
	if pd == ExecutorPD || int(pd) > t.numPDs || !t.live[pd].CompareAndSwap(true, false) {
		t.faults.Add(1)
		return &Fault{Op: "cput", PD: pd, Detail: "not a live user protection domain"}
	}
	if cache != nil {
		cache.mu.Lock()
		cache.free = append(cache.free, pd)
		flush := len(cache.free) > pdCacheMax
		var batch [pdBatch]PDID
		if flush {
			n := len(cache.free)
			copy(batch[:], cache.free[n-pdBatch:])
			cache.free = cache.free[:n-pdBatch]
		}
		cache.mu.Unlock()
		if flush {
			s := &t.shards[int(pd)%len(t.shards)]
			s.mu.Lock()
			s.free = append(s.free, batch[:]...)
			s.mu.Unlock()
		}
	} else {
		s := &t.shards[int(pd)%len(t.shards)]
		s.mu.Lock()
		s.free = append(s.free, pd)
		s.mu.Unlock()
	}
	t.nfree.Add(1)
	t.cputs.Add(1)
	if cb := t.onFree; cb != nil {
		cb()
	}
	return nil
}

// HasFree reports whether a Cget can currently succeed. Executors check it
// before starting new work, exactly as the simulator's executors consult
// privlib.HasFreePDs (suspended continuations hold PDs; starting new work
// with none free would fault).
func (t *Table) HasFree() bool { return t.FreeCount() > 0 }

// FreeCount returns the number of free PDs (global shards plus every
// per-executor cache) — one atomic load. While executors hold carved
// credits the value is CONSERVATIVE: it undercounts the physical supply by
// at most ncaches*creditBatch. Capacity checks built on it (shedding,
// nextRunnable's advisory gate) therefore err toward refusing work, never
// toward over-admitting; reclaimCredits restores exactness on the stall,
// drain, and verify paths.
func (t *Table) FreeCount() int { return int(t.nfree.Load()) }

// FreeCountExact is FreeCount with outstanding per-executor credits
// counted back in — the exact physical free supply at quiescence. It walks
// the caches, so it is for cold (observability/test) paths only.
func (t *Table) FreeCountExact() int { return t.numPDs - t.LivePDs() }

// LivePDs returns the number of currently allocated user PDs. Unlike the
// hot-path FreeCount, it counts outstanding per-executor credits back into
// the free supply (a cold walk over the caches), so at quiescence it is
// exact — the lifecycle and chaos suites poll it for leak detection.
func (t *Table) LivePDs() int {
	free := t.nfree.Load()
	t.cacheMu.Lock()
	caches := t.caches
	t.cacheMu.Unlock()
	for _, c := range caches {
		free += c.credits.Load()
	}
	return t.numPDs - int(free)
}

// Faults returns the cumulative isolation-violation count.
func (t *Table) Faults() uint64 { return t.faults.Load() }

// Cgets and Cputs return the cumulative successful allocation and
// deallocation counts — exported for /varz.
func (t *Table) Cgets() uint64 { return t.cgets.Load() }
func (t *Table) Cputs() uint64 { return t.cputs.Load() }

// Shards returns the number of global free-list shards.
func (t *Table) Shards() int { return len(t.shards) }

// VerifyIdle checks the post-drain invariant the fault-injection suite
// asserts: with no invocation in flight, every PD must be free — the
// atomic counter equals NumPDs, the shard and cache free lists together
// hold each user PD ID exactly once, and no live flag is set. It takes
// every list lock, so it is for quiescent (test/drain) use only.
func (t *Table) VerifyIdle() error {
	t.reclaimCredits()
	if got := int(t.nfree.Load()); got != t.numPDs {
		return fmt.Errorf("pdtable: free counter %d, want %d (PD leak)", got, t.numPDs)
	}
	seen := make([]bool, t.numPDs+1)
	count := 0
	note := func(where string, ids []PDID) error {
		for _, pd := range ids {
			if pd == ExecutorPD || int(pd) > t.numPDs {
				return fmt.Errorf("pdtable: invalid PD %d on %s free list", pd, where)
			}
			if seen[pd] {
				return fmt.Errorf("pdtable: PD %d on multiple free lists (aliasing)", pd)
			}
			seen[pd] = true
			count++
		}
		return nil
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		err := note("shard", s.free)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	t.cacheMu.Lock()
	caches := t.caches
	t.cacheMu.Unlock()
	for _, c := range caches {
		c.mu.Lock()
		err := note("cache", c.free)
		c.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if count != t.numPDs {
		return fmt.Errorf("pdtable: %d PDs across free lists, want %d", count, t.numPDs)
	}
	for id := 1; id <= t.numPDs; id++ {
		if t.live[id].Load() {
			return fmt.Errorf("pdtable: PD %d still live after drain", id)
		}
	}
	return nil
}

func (t *Table) fault(f *Fault) error {
	t.faults.Add(1)
	return f
}
