package pool

import (
	"fmt"
	"time"

	"jord/internal/mem/vmatable"
	"jord/internal/server/router"
)

// Ctx is the live programming interface a function body sees — the same
// Listing 1 surface as the simulator's core.Ctx (call/async/wait over
// zero-copy ArgBufs), implemented over real goroutines. It satisfies
// router.Ctx.
type Ctx struct {
	pool *Pool
	cont *continuation
}

var _ router.Ctx = (*Ctx)(nil)

// PD returns the protection domain this invocation runs in.
func (c *Ctx) PD() PDID { return c.cont.pd }

// FuncName names the function this invocation runs.
func (c *Ctx) FuncName() string { return c.cont.req.fn.Name }

// Payload returns the invocation's input ArgBuf contents. The read is
// permission-checked against this invocation's PD; since the runtime
// pmoved the buffer in before entering the function, the check can only
// fail if the body leaked the buffer away (e.g. via a nested call that is
// still holding it) — which is exactly the misuse the check exists to
// catch, so it panics the invocation (recovered into a 500).
func (c *Ctx) Payload() []byte {
	b, err := c.cont.req.buf.Read(c.cont.pd)
	if err != nil {
		panic(err)
	}
	return b
}

// Call invokes fn synchronously: submit, then suspend until the callee
// finishes (Listing 1: jord::call).
func (c *Ctx) Call(fn string, payload []byte) ([]byte, error) {
	ck, err := c.Async(fn, payload)
	if err != nil {
		return nil, err
	}
	return c.Wait(ck)
}

// Async submits a nested invocation of fn and returns a cookie to Wait on
// (Listing 1: jord::async). The child's ArgBuf is allocated in this PD,
// populated, then pmoved to the runtime domain — the child request rides
// the internal queue, which has absolute dispatch priority (§3.3).
func (c *Ctx) Async(fn string, payload []byte) (router.Cookie, error) {
	p := c.pool
	cont := c.cont
	def := p.reg.Lookup(fn)
	if def == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	// Allocate the child's ArgBuf in the caller's PD and hand it to the
	// runtime (pmove), exactly as core.Ctx.submit stages nested calls.
	buf := p.tab.NewVMA(cont.pd, payload, vmatable.PermRW)
	if err := buf.Pmove(cont.pd, ExecutorPD, vmatable.PermRW); err != nil {
		return 0, err
	}
	child := &request{
		fn:       def,
		buf:      buf,
		external: false,
		arrival:  time.Now(),
		deadline: cont.req.deadline, // nested work inherits the deadline
		parent:   cont,
		done:     make(chan struct{}),
	}
	cont.mu.Lock()
	cont.children = append(cont.children, child)
	ck := router.Cookie(len(cont.children) - 1)
	cont.mu.Unlock()
	cont.exec.orch.submitInternal(child)
	return ck, nil
}

// Wait blocks until the invocation named by cookie completes, suspending
// the continuation (cexit) if necessary, and hands the result ArgBuf back
// to this PD (Listing 1: jord::wait).
func (c *Ctx) Wait(ck router.Cookie) ([]byte, error) {
	cont := c.cont
	cont.mu.Lock()
	if int(ck) < 0 || int(ck) >= len(cont.children) {
		cont.mu.Unlock()
		return nil, fmt.Errorf("pool: wait on unknown cookie %d", ck)
	}
	child := cont.children[ck]
	if child == nil {
		cont.mu.Unlock()
		return nil, fmt.Errorf("pool: wait on already-collected cookie %d", ck)
	}
	cont.children[ck] = nil

	// Decide atomically with the child's completion handshake whether to
	// suspend: finish() closes child.done before it checks cont.waiting
	// under this same lock, so exactly one side sees the other.
	suspend := false
	select {
	case <-child.done:
	default:
		cont.waiting = child
		suspend = true
	}
	cont.mu.Unlock()

	if suspend {
		// cexit: hand the executor back; it runs other work until the
		// child completes and readyResume re-centers us.
		cont.exec.suspends.Add(1)
		cont.yieldCh <- struct{}{}
		<-cont.resumeCh
	}

	if child.err != nil {
		return nil, child.err
	}
	// Collect: the result ArgBuf returns to this PD (pmove) and is read
	// in place — zero-copy, like the simulator's collect path.
	if err := child.buf.Pmove(ExecutorPD, cont.pd, vmatable.PermRW); err != nil {
		return nil, err
	}
	return child.buf.Read(cont.pd)
}
