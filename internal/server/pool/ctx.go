package pool

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"jord/internal/mem/vmatable"
	"jord/internal/server/router"
	"jord/internal/server/trace"
)

// Ctx is the live programming interface a function body sees — the same
// Listing 1 surface as the simulator's core.Ctx (call/async/wait over
// zero-copy ArgBufs), implemented over real goroutines. It is embedded in
// the continuation (no per-invocation allocation) and satisfies
// router.Ctx. It must not be retained past the function body's return:
// the invocation's bookkeeping recycles once the body finishes.
type Ctx struct {
	pool *Pool
	cont *continuation
}

var _ router.Ctx = (*Ctx)(nil)

// PD returns the protection domain this invocation runs in.
func (c *Ctx) PD() PDID { return c.cont.pd }

// FuncName names the function this invocation runs.
func (c *Ctx) FuncName() string { return c.cont.req.fn.Name }

// Err reports whether this invocation should stop: context.Canceled once
// the external caller abandoned the request tree (or this invocation was
// orphaned by its parent's teardown), context.DeadlineExceeded once the
// inherited deadline passed, nil otherwise. Cancellation is cooperative —
// the runtime checks it at every queue dequeue, Async, and Wait, and
// long-running bodies should poll it (or select on Done) so stuck work
// releases its PD and runner promptly.
func (c *Ctx) Err() error {
	r := c.cont.req
	if r.canceled.Load() {
		return context.Canceled
	}
	if !r.deadline.IsZero() && time.Now().After(r.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// Deadline returns the invocation's deadline (inherited from the external
// request's context by every nested call), like context.Context.Deadline.
func (c *Ctx) Deadline() (time.Time, bool) {
	dl := c.cont.req.deadline
	return dl, !dl.IsZero()
}

// cancelPollInterval is how often a Done watcher re-evaluates the
// cancellation state. Coarse on purpose: Done is for long-running bodies
// (milliseconds and up), and the watcher exists only while one is using it.
const cancelPollInterval = time.Millisecond

// Done returns a channel closed when Err would return non-nil, like
// context.Context.Done — the select-friendly form of Err for bodies that
// block on their own channels or timers. The channel (and its watcher
// goroutine, retired at invocation teardown) is created lazily on first
// call, so bodies that never ask pay nothing. Like Ctx itself it must not
// be retained past the body's return.
func (c *Ctx) Done() <-chan struct{} {
	cont := c.cont
	cont.mu.Lock()
	if cont.doneCh == nil {
		cont.doneCh = make(chan struct{})
		cont.stopCh = make(chan struct{})
		r := cont.req
		go watchCancel(r.deadline, &r.canceled, cont.doneCh, cont.stopCh)
	}
	d := cont.doneCh
	cont.mu.Unlock()
	return d
}

// watchCancel closes done once the deadline passes or the canceled flag
// flips, and exits when stop closes (invocation teardown). It captures the
// deadline by value and the canceled flag by pointer so it never touches
// other request fields after the request recycles; the atomic load of a
// recycled flag in the teardown window is race-free and its result is
// discarded with the channel.
func watchCancel(deadline time.Time, canceled *atomic.Bool, done, stop chan struct{}) {
	t := time.NewTicker(cancelPollInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if canceled.Load() || (!deadline.IsZero() && time.Now().After(deadline)) {
				close(done)
				<-stop
				return
			}
		}
	}
}

// Payload returns the invocation's input ArgBuf contents. The read is
// permission-checked against this invocation's PD; since the runtime
// pmoved the buffer in before entering the function, the check can only
// fail if the body leaked the buffer away (e.g. via a nested call that is
// still holding it) — which is exactly the misuse the check exists to
// catch, so it panics the invocation (recovered into a 500).
func (c *Ctx) Payload() []byte {
	b, err := c.cont.req.buf.Read(c.cont.pd)
	if err != nil {
		panic(err)
	}
	return b
}

// Call invokes fn synchronously: submit, then suspend until the callee
// finishes (Listing 1: jord::call).
func (c *Ctx) Call(fn string, payload []byte) ([]byte, error) {
	ck, err := c.Async(fn, payload)
	if err != nil {
		return nil, err
	}
	return c.Wait(ck)
}

// Async submits a nested invocation of fn and returns a cookie to Wait on
// (Listing 1: jord::async). The child's ArgBuf is allocated in this PD,
// populated, then pmoved to the runtime domain — the child request rides
// the internal queue, which has absolute dispatch priority (§3.3).
func (c *Ctx) Async(fn string, payload []byte) (router.Cookie, error) {
	p := c.pool
	cont := c.cont
	// A dead invocation submits no new work: once the caller is gone or
	// the deadline passed, fan-outs stop growing and unwind instead.
	if err := c.Err(); err != nil {
		return 0, err
	}
	def := p.reg.Lookup(fn)
	if def == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownFunction, fn)
	}
	// Allocate the child's ArgBuf in the caller's PD and hand it to the
	// runtime (pmove), exactly as core.Ctx.submit stages nested calls.
	buf := p.tab.NewVMA(cont.pd, payload, vmatable.PermRW)
	if err := buf.Pmove(cont.pd, ExecutorPD, vmatable.PermRW); err != nil {
		putVMA(buf)
		return 0, err
	}
	child := p.getRequest()
	child.fn = def
	child.buf = buf
	child.deadline = cont.req.deadline // nested work inherits the deadline
	child.parent = cont
	if tr := p.tr; tr != nil {
		// Sub-span: the child gets its own span linked to the parent. The
		// parent's span ID is assigned lazily here on its first Async —
		// the plain no-fan-out hot path never touches the shared counter.
		// As in Pool.submit, the trace stamp IS the arrival record: no
		// traced-path reader of child.arrival exists, so time.Now is
		// skipped.
		pr := cont.req
		if pr.span.ID == 0 {
			pr.span.ID = tr.NextID()
		}
		m := tr.Now()
		child.span.StartNS = m
		child.span.ParentID = pr.span.ID
		child.span.FuncID = int32(def.ID)
		child.tSubmit = m
		child.tMark = m
		pr.span.Children++
	} else {
		child.arrival = time.Now()
	}
	cont.mu.Lock()
	cont.children = append(cont.children, child)
	cont.live++
	ck := router.Cookie(len(cont.children) - 1)
	cont.mu.Unlock()
	if !child.deadline.IsZero() {
		p.sweepableAdd() // balanced by the child's finish
	}
	cont.exec.orch.submitInternal(child)
	return ck, nil
}

// Wait blocks until the invocation named by cookie completes, suspending
// the continuation (cexit) if necessary, and hands the result ArgBuf back
// to this PD (Listing 1: jord::wait).
func (c *Ctx) Wait(ck router.Cookie) ([]byte, error) {
	cont := c.cont
	// A dead invocation stops collecting: propagate the cancellation to
	// every outstanding child (queued ones then die at dequeue or sweep;
	// running ones observe it via their own Err) and unwind immediately.
	// The un-collected children — including ck's — stay in the children
	// list, where finishInvocation's orphan reaping owns their teardown.
	if err := c.Err(); err != nil {
		cont.cancelChildren()
		return nil, err
	}
	cont.mu.Lock()
	if int(ck) < 0 || int(ck) >= len(cont.children) {
		cont.mu.Unlock()
		return nil, fmt.Errorf("pool: wait on unknown cookie %d", ck)
	}
	child := cont.children[ck]
	if child == nil {
		cont.mu.Unlock()
		return nil, fmt.Errorf("pool: wait on already-collected cookie %d", ck)
	}
	cont.children[ck] = nil
	cont.live--

	// Decide atomically with the child's completion handshake whether to
	// suspend: finish() flips child.completed and checks cont.waiting
	// under this same lock, so exactly one side sees the other.
	suspend := false
	if !child.completed {
		cont.waiting = child
		suspend = true
	}
	cont.mu.Unlock()

	if suspend {
		// cexit: hand the executor back; it runs other work until the
		// child completes and readyResume re-centers us. The suspended
		// window is the span's wait stage, bracketing exec around it.
		tr := c.pool.tr
		if tr != nil {
			r := cont.req
			now := tr.Now()
			r.span.Stages[trace.StageExec] += now - r.tMark
			r.tMark = now
		}
		cont.exec.suspends.Add(1)
		cont.yieldCh <- struct{}{}
		<-cont.resumeCh
		if tr != nil {
			r := cont.req
			now := tr.Now()
			r.span.Stages[trace.StageWait] += now - r.tMark
			r.tMark = now
		}
	}

	if err := child.err; err != nil {
		c.pool.releaseRequest(child)
		return nil, err
	}
	// Collect: the result ArgBuf returns to this PD (pmove) and is read
	// in place — zero-copy, like the simulator's collect path. Once read,
	// the child request and ArgBuf structure recycle; the returned bytes
	// stay valid (see VMA.Read).
	if err := child.buf.Pmove(ExecutorPD, cont.pd, vmatable.PermRW); err != nil {
		c.pool.putRequest(child)
		return nil, err
	}
	b, err := child.buf.Read(cont.pd)
	c.pool.releaseRequest(child)
	return b, err
}

// StateGet returns a read snapshot of a shared-state key. The store hands
// this PD a pcopy R grant on the value's VMA — or, for globally promoted
// hot keys (the VTE G bit), no grant at all: the bytes are readable under
// the global permission with zero PD traffic and zero copies. The handle
// is tracked on the continuation and force-released at teardown if the
// body does not Release it.
func (c *Ctx) StateGet(scope router.StateScope, key string) (router.StateSnap, error) {
	p := c.pool
	if p.state == nil {
		return nil, ErrNoState
	}
	t0 := c.stateStart()
	s, err := p.state.Get(c.cont.pd, c.cont.req.fn.Name, scope, key)
	c.stateEnd(t0)
	if err != nil {
		return nil, err
	}
	c.cont.holds = append(c.cont.holds, s)
	return s, nil
}

// stateStart/stateEnd bracket one state-tier operation for the span's
// state stage (a break-out of exec time, not subtracted from it).
func (c *Ctx) stateStart() int64 {
	if tr := c.pool.tr; tr != nil {
		return tr.Now()
	}
	return 0
}

func (c *Ctx) stateEnd(t0 int64) {
	if tr := c.pool.tr; tr != nil {
		r := c.cont.req
		r.span.Stages[trace.StageState] += tr.Now() - t0
		r.span.StateOps++
	}
}

// StateTake acquires exclusive write ownership of a key: the store pmoves
// the value's VMA RW into this PD. An open transaction at teardown (return,
// panic, watchdog-killed stuck body unwinding) is discarded — ownership
// pmoves back, the committed value untouched.
func (c *Ctx) StateTake(scope router.StateScope, key string) (router.StateTx, error) {
	p := c.pool
	if p.state == nil {
		return nil, ErrNoState
	}
	t0 := c.stateStart()
	tx, err := p.state.Take(c.cont.pd, c.cont.req.fn.Name, scope, key)
	c.stateEnd(t0)
	if err != nil {
		return nil, err
	}
	c.cont.holds = append(c.cont.holds, tx)
	return tx, nil
}

// StatePut atomically creates or replaces a key's value — a take/commit
// micro-transaction held entirely inside the store, never across body code.
func (c *Ctx) StatePut(scope router.StateScope, key string, val []byte) (uint64, error) {
	p := c.pool
	if p.state == nil {
		return 0, ErrNoState
	}
	t0 := c.stateStart()
	ver, err := p.state.Put(c.cont.pd, c.cont.req.fn.Name, scope, key, val)
	c.stateEnd(t0)
	return ver, err
}

// StateDelete removes a key (fails while another invocation owns it).
func (c *Ctx) StateDelete(scope router.StateScope, key string) error {
	p := c.pool
	if p.state == nil {
		return ErrNoState
	}
	t0 := c.stateStart()
	err := p.state.Delete(c.cont.pd, c.cont.req.fn.Name, scope, key)
	c.stateEnd(t0)
	return err
}

// cancelChildren marks every outstanding (submitted, un-collected,
// unfinished) child canceled, cascading an observed cancellation one
// level down the call tree. Deeper descendants observe it the same way
// when those children hit their own Async/Wait/Err checks.
func (c *continuation) cancelChildren() {
	c.mu.Lock()
	for _, ch := range c.children {
		if ch != nil && !ch.completed {
			ch.canceled.Store(true)
		}
	}
	c.mu.Unlock()
}
