package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPDTableCreditStress hammers the credit-cached PD table from many
// goroutines (run under -race and GOMAXPROCS >= 8 in CI) and checks the
// free-list invariants the credit scheme must preserve:
//
//  1. No PD is ever handed to two holders at once (free-list integrity
//     across per-cache credits, shard refills, and steals).
//  2. External grants (reserve = PDReserve) never push the number of
//     concurrently held external PDs past numPDs - reserve — the paper's
//     §3.3 guarantee that internal invocations always find a PD, which the
//     credit batching must not weaken.
//  3. At quiescence every PD is back: reclaim + VerifyIdle sees the exact
//     physical supply, i.e. no PD (or credit) leaked into a private cache.
func TestPDTableCreditStress(t *testing.T) {
	const (
		numPDs  = 512
		reserve = 64
		workers = 16
		iters   = 3000
	)
	tab := NewTable(numPDs)
	// Force the credit path on even under contention-induced dips: the
	// floor only needs to keep the reserve honest.
	tab.SetCreditFloor(reserve + 2*creditBatch)

	held := make([]atomic.Int32, numPDs) // per-PD holder flag: invariant 1
	var extHeld atomic.Int64             // concurrently held external PDs: invariant 2
	var grants, faults atomic.Uint64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cache := tab.newCache()
			// Even workers take external grants (above the reserve), odd
			// workers internal ones — both roles contend on the same table.
			rsv := 0
			if w%2 == 0 {
				rsv = reserve
			}
			local := make([]PDID, 0, 8)
			for i := 0; i < iters; i++ {
				pd, err := tab.cgetCached(rsv, cache)
				if err != nil {
					faults.Add(1)
					// Exhaustion is a legal outcome under contention; drop
					// what we hold and keep going.
					for _, p := range local {
						if held[p].Swap(0) != 1 {
							t.Errorf("double free of PD %d", p)
						}
						if rsv > 0 {
							extHeld.Add(-1)
						}
						tab.cputCached(p, cache)
					}
					local = local[:0]
					continue
				}
				grants.Add(1)
				if held[pd].Swap(1) != 0 {
					t.Errorf("PD %d granted while already held", pd)
				}
				if rsv > 0 {
					if n := extHeld.Add(1); n > numPDs-reserve {
						t.Errorf("external holds %d exceed numPDs-reserve=%d", n, numPDs-reserve)
					}
				}
				local = append(local, pd)
				// Hold a small working set to keep real concurrency in the
				// held population, then release oldest-first.
				if len(local) >= 4+w%5 {
					p := local[0]
					local = local[1:]
					if held[p].Swap(0) != 1 {
						t.Errorf("double free of PD %d", p)
					}
					if rsv > 0 {
						extHeld.Add(-1)
					}
					if err := tab.cputCached(p, cache); err != nil {
						t.Errorf("cput(%d): %v", p, err)
					}
				}
			}
			for _, p := range local {
				if held[p].Swap(0) != 1 {
					t.Errorf("double free of PD %d", p)
				}
				if rsv > 0 {
					extHeld.Add(-1)
				}
				tab.cputCached(p, cache)
			}
		}(w)
	}
	wg.Wait()

	if extHeld.Load() != 0 {
		t.Fatalf("external hold accounting drifted: %d", extHeld.Load())
	}
	if tab.LivePDs() != 0 {
		t.Fatalf("LivePDs=%d at quiescence, want 0", tab.LivePDs())
	}
	if got := tab.FreeCountExact(); got != numPDs {
		t.Fatalf("FreeCountExact=%d at quiescence, want %d", got, numPDs)
	}
	if err := tab.VerifyIdle(); err != nil {
		t.Fatalf("VerifyIdle: %v", err)
	}
	t.Logf("grants=%d faults=%d procs=%d", grants.Load(), faults.Load(), runtime.GOMAXPROCS(0))
}

// TestPDTableCreditCarveReclaim pins the credit lifecycle at the unit
// level: carving only happens above the floor, consuming spends the
// private line, and reclaim folds every outstanding credit back into the
// shared counter so exact accounting is restored.
func TestPDTableCreditCarveReclaim(t *testing.T) {
	const numPDs = 256
	tab := NewTable(numPDs)
	tab.SetCreditFloor(64)
	cache := tab.newCache()

	// First grant through the cache carves a batch: the shared counter
	// drops by creditBatch while only one PD is actually live.
	pd, err := tab.cgetCached(0, cache)
	if err != nil {
		t.Fatal(err)
	}
	if free := tab.FreeCount(); free != numPDs-creditBatch {
		t.Fatalf("after carve: FreeCount=%d, want %d (batch carved)", free, numPDs-creditBatch)
	}
	if live := tab.LivePDs(); live != 1 {
		t.Fatalf("after carve: LivePDs=%d, want 1 (credits are not live PDs)", live)
	}
	if exact := tab.FreeCountExact(); exact != numPDs-1 {
		t.Fatalf("after carve: FreeCountExact=%d, want %d", exact, numPDs-1)
	}

	// The next creditBatch-1 grants spend the carved line without touching
	// the shared counter.
	pds := []PDID{pd}
	for i := 0; i < creditBatch-1; i++ {
		p, err := tab.cgetCached(0, cache)
		if err != nil {
			t.Fatal(err)
		}
		pds = append(pds, p)
	}
	if free := tab.FreeCount(); free != numPDs-creditBatch {
		t.Fatalf("spending credits moved FreeCount to %d, want %d", free, numPDs-creditBatch)
	}

	for _, p := range pds {
		if err := tab.cputCached(p, cache); err != nil {
			t.Fatal(err)
		}
	}
	// Reclaim folds the (now fully unspent) credits back; the conservative
	// and exact views converge on the full supply.
	tab.reclaimCredits()
	if free := tab.FreeCount(); free != numPDs {
		t.Fatalf("after reclaim: FreeCount=%d, want %d", free, numPDs)
	}
	if err := tab.VerifyIdle(); err != nil {
		t.Fatalf("VerifyIdle: %v", err)
	}
}

// TestPDTableCreditRespectsReserve: an external grant must fail while the
// CONSERVATIVE free count sits at the reserve, even when the consumer
// holds unspent credits — credits accelerate allocation, they never
// weaken the §3.3 admission predicate.
func TestPDTableCreditRespectsReserve(t *testing.T) {
	const (
		numPDs  = 128
		reserve = 96
	)
	tab := NewTable(numPDs)
	tab.SetCreditFloor(1) // carve aggressively
	cache := tab.newCache()

	var held []PDID
	for {
		pd, err := tab.cgetCached(reserve, cache)
		if err != nil {
			break
		}
		held = append(held, pd)
	}
	// Every successful external grant observed nfree >= reserve at grant
	// time; with credits outstanding the exact count can sit above the
	// conservative one, but the number of grants can never exceed
	// numPDs - reserve.
	if len(held) > numPDs-reserve {
		t.Fatalf("%d external grants exceed numPDs-reserve=%d", len(held), numPDs-reserve)
	}
	// Internal grants (reserve 0) must still succeed — the reserve exists
	// exactly so internals cannot starve.
	pd, err := tab.cgetCached(0, cache)
	if err != nil {
		t.Fatalf("internal grant starved despite reserve: %v", err)
	}
	tab.cputCached(pd, cache)
	for _, p := range held {
		tab.cputCached(p, cache)
	}
	tab.reclaimCredits()
	if err := tab.VerifyIdle(); err != nil {
		t.Fatalf("VerifyIdle: %v", err)
	}
}
