package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/mem/vmatable"
	"jord/internal/metrics"
	"jord/internal/server/router"
)

// Errors returned by the external invoke path. The gateway maps them onto
// HTTP statuses (429 / 404 / 503).
var (
	// ErrSaturated means the target orchestrator's external queue is at
	// capacity — the admission-control backpressure signal.
	ErrSaturated = errors.New("pool: saturated: external queue full")
	// ErrUnknownFunction means no function is registered under the name.
	ErrUnknownFunction = errors.New("pool: unknown function")
	// ErrDraining means the pool no longer accepts external work.
	ErrDraining = errors.New("pool: draining")
)

// Config sizes one live worker pool. The shape mirrors core.Config: a few
// orchestrators dispatching into many executors, JBSQ-bounded.
type Config struct {
	// Orchestrators is the number of dispatcher goroutines. Executors are
	// partitioned among them into proximity groups. 0 picks one per 8
	// executors (minimum 1), matching the simulator's default ratio.
	Orchestrators int

	// Executors is the number of executor goroutines. 0 picks GOMAXPROCS.
	Executors int

	// JBSQBound is the queue-depth bound k of JBSQ(k). External requests
	// are dispatched only to executors below the bound; internal (nested)
	// requests bypass it (§3.3).
	JBSQBound int

	// ExternalQueueCap bounds each orchestrator's external queue; arrivals
	// beyond it are rejected with ErrSaturated (the gateway's 429).
	// 0 defaults to 256.
	ExternalQueueCap int

	// NumPDs sizes the protection-domain space. Every in-flight
	// invocation — including suspended parents of nested calls — holds
	// one PD, so this must exceed MaxInflight × (1 + max nesting depth).
	// 0 defaults to 4096.
	NumPDs int

	// PDReserve is the number of PDs held back from *external* requests:
	// executors start an external invocation only while more than
	// PDReserve PDs are free, while internal (nested) requests may
	// consume the reserve. Without it, every PD can end up held by a
	// suspended parent whose child then cannot start — the PD-space
	// analogue of the queue deadlock §3.3's internal priority exists to
	// prevent. 0 defaults to NumPDs/8 (minimum 1). The reserve guarantees
	// progress for depth-1 call chains; deeper fan-outs additionally need
	// NumPDs sized per the rule above.
	PDReserve int
}

// Normalized returns the configuration with every zero field replaced by
// its default — what a pool built from c will actually run with.
func (c Config) Normalized() Config {
	c.normalize()
	return c
}

func (c *Config) normalize() {
	if c.Executors <= 0 {
		c.Executors = runtime.GOMAXPROCS(0)
	}
	if c.Orchestrators <= 0 {
		c.Orchestrators = c.Executors / 8
		if c.Orchestrators < 1 {
			c.Orchestrators = 1
		}
	}
	if c.Orchestrators > c.Executors {
		c.Orchestrators = c.Executors
	}
	if c.JBSQBound < 1 {
		c.JBSQBound = 4
	}
	if c.ExternalQueueCap <= 0 {
		c.ExternalQueueCap = 256
	}
	if c.NumPDs <= 0 {
		c.NumPDs = 4096
	}
	if c.PDReserve <= 0 {
		c.PDReserve = c.NumPDs / 8
		if c.PDReserve < 1 {
			c.PDReserve = 1
		}
	}
	if c.PDReserve >= c.NumPDs {
		c.PDReserve = c.NumPDs - 1
	}
}

// request is one invocation flowing through the live runtime — the live
// analogue of core.Request. Requests are recycled through a pool; the
// done channel (capacity 1) carries a completion token instead of being
// closed, so it survives reuse.
type request struct {
	fn       *router.Func
	buf      *VMA // the ArgBuf carrying inputs and outputs
	external bool

	arrival  time.Time
	deadline time.Time // zero = none; nested requests inherit the parent's

	parent *continuation // nested-call linkage

	canceled atomic.Bool // external caller gave up (ctx done)

	// done receives exactly one token when an EXTERNAL request finishes
	// (err valid; written before the token). Nested requests signal
	// completion through the completed flag instead, guarded by the
	// parent continuation's mutex — a recycled request pointer must never
	// deposit into a channel its new owner is already using.
	done      chan struct{}
	completed bool // nested only; guarded by parent.mu
	err       error
}

// FuncStats accumulates per-function live measurements. The latency
// histogram shards per executor so the completion path never contends on
// one histogram mutex; reads merge the shards.
type FuncStats struct {
	Name    string
	Count   atomic.Uint64 // completed invocations (external + nested)
	Errors  atomic.Uint64
	Latency metrics.ShardedHistogram // arrival -> completion, ns
}

// Stats is the pool-wide counter set.
type Stats struct {
	perFunc map[string]*FuncStats // immutable after Start
	funcs   []*FuncStats          // registration order

	Dispatched atomic.Uint64 // orchestrator -> executor handoffs
	Completed  atomic.Uint64 // finished invocations
	Expired    atomic.Uint64 // dequeued past their deadline
	Rejected   atomic.Uint64 // ErrSaturated external submissions
}

// FuncStats returns the accumulator for a function name (nil if unknown).
func (s *Stats) FuncStats(name string) *FuncStats { return s.perFunc[name] }

// Funcs returns the per-function accumulators in registration order.
func (s *Stats) Funcs() []*FuncStats { return s.funcs }

// Pool is the live worker runtime: orchestrators, executors, the PD table,
// per-function code VMAs, and measurement state.
type Pool struct {
	cfg   Config
	reg   *router.Registry
	tab   *Table
	orchs []*orchestrator
	execs []*executor

	// code holds each function's code VMA (global RX — the VTE G bit, so
	// every invocation PD may execute it without a per-invocation pcopy),
	// indexed by router.Func.ID.
	code []*VMA

	stats Stats

	// reqPool and contPool recycle the per-invocation bookkeeping objects
	// (request structs with their done channels, continuations with their
	// handshake channels and children slices).
	reqPool  sync.Pool
	contPool sync.Pool

	// runners holds parked runner goroutines awaiting a continuation.
	// Only executor goroutines put runners back, so after the executor
	// loops exit the channel is quiescent and Drain can empty it.
	runners chan *runner

	// pdWait is set by an executor about to stall on PD supply; Cput
	// (via tab.onFree) checks it so ordinary completions skip the
	// wake-every-executor broadcast the old path paid on every Cput.
	pdWait atomic.Bool

	rr       atomic.Uint64 // round-robin external submission
	draining atomic.Bool
	started  atomic.Bool
	startAt  time.Time

	inflight sync.WaitGroup // external requests in flight
	loops    sync.WaitGroup // orchestrator/executor goroutines
}

// New assembles a pool over a function registry. Start must be called
// before Invoke; registration closes at Start.
func New(cfg Config, reg *router.Registry) *Pool {
	cfg.normalize()
	p := &Pool{cfg: cfg, reg: reg, tab: NewTable(cfg.NumPDs)}
	p.reqPool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	p.contPool.New = func() any {
		return &continuation{
			yieldCh:  make(chan struct{}),
			resumeCh: make(chan struct{}),
		}
	}
	p.runners = make(chan *runner, 4*cfg.Executors+16)
	return p
}

// getRequest returns a recycled (or fresh) request with an empty done
// channel and cleared linkage.
func (p *Pool) getRequest() *request {
	return p.reqPool.Get().(*request)
}

// putRequest recycles a request. The done channel is drained defensively
// so a stale completion token can never leak into the next invocation.
func (p *Pool) putRequest(r *request) {
	select {
	case <-r.done:
	default:
	}
	r.fn = nil
	r.buf = nil
	r.external = false
	r.arrival = time.Time{}
	r.deadline = time.Time{}
	r.parent = nil
	r.canceled.Store(false)
	r.completed = false
	r.err = nil
	p.reqPool.Put(r)
}

// releaseRequest recycles a finished request and its ArgBuf structure.
func (p *Pool) releaseRequest(r *request) {
	putVMA(r.buf)
	p.putRequest(r)
}

// getCont returns a recycled (or fresh) continuation.
func (p *Pool) getCont() *continuation {
	return p.contPool.Get().(*continuation)
}

// putCont recycles a finished continuation. Its channels are reused (both
// handshakes complete strictly before recycling); the children slice keeps
// its capacity.
func (p *Pool) putCont(c *continuation) {
	c.req = nil
	c.exec = nil
	c.pd = 0
	c.runner = nil
	c.waiting = nil
	c.children = c.children[:0]
	c.finished = false
	c.resp = nil
	c.err = nil
	c.ctx = Ctx{}
	p.contPool.Put(c)
}

// getRunner pops a parked runner goroutine, or spawns one.
func (p *Pool) getRunner() *runner {
	select {
	case rn := <-p.runners:
		return rn
	default:
	}
	rn := &runner{work: make(chan *continuation, 1)}
	go rn.loop(p)
	return rn
}

// putRunner parks a runner for reuse; if the pool is full, the runner's
// goroutine is released instead. Called only from executor goroutines.
func (p *Pool) putRunner(rn *runner) {
	select {
	case p.runners <- rn:
	default:
		close(rn.work)
	}
}

// Config returns the normalized configuration.
func (p *Pool) Config() Config { return p.cfg }

// Table exposes the PD table (tests, stats).
func (p *Pool) Table() *Table { return p.tab }

// Stats exposes the live counters.
func (p *Pool) Stats() *Stats { return &p.stats }

// StartedAt returns when the pool started serving.
func (p *Pool) StartedAt() time.Time { return p.startAt }

// Start freezes the registry, loads every function's code VMA, and launches
// the orchestrator and executor goroutines.
func (p *Pool) Start() {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	p.reg.Freeze()
	funcs := p.reg.Funcs()
	p.code = make([]*VMA, len(funcs))
	p.stats.perFunc = make(map[string]*FuncStats, len(funcs))
	for _, f := range funcs {
		// Register loads the function code into an executable VMA shared
		// with every PD (the Fig. 8 G bit), cf. core.System.Register.
		p.code[f.ID] = p.tab.NewGlobalVMA(nil, vmatable.PermRX)
		fs := &FuncStats{Name: f.Name}
		fs.Latency.SetShards(p.cfg.Executors)
		p.stats.perFunc[f.Name] = fs
		p.stats.funcs = append(p.stats.funcs, fs)
	}

	for i := 0; i < p.cfg.Executors; i++ {
		p.execs = append(p.execs, newExecutor(p, i))
	}
	for i := 0; i < p.cfg.Orchestrators; i++ {
		p.orchs = append(p.orchs, newOrchestrator(p, i))
	}
	// Partition executors among orchestrators round-robin (the simulator
	// balances group sizes the same way; there is no mesh distance to
	// break ties by on the live path).
	for i, e := range p.execs {
		o := p.orchs[i%len(p.orchs)]
		o.group = append(o.group, e)
		e.orch = o
	}
	// A freed PD may unblock an executor stalled in its capacity check.
	// The pdWait flag gates the broadcast so the common Cput pays one
	// atomic load, not a wake of every executor.
	p.tab.onFree = func() {
		if p.pdWait.Load() && p.pdWait.Swap(false) {
			for _, e := range p.execs {
				e.wake()
			}
		}
	}
	for _, e := range p.execs {
		p.loops.Add(1)
		go e.run()
	}
	for _, o := range p.orchs {
		p.loops.Add(1)
		go o.run()
	}
	p.startAt = time.Now()
}

// Invoke runs one external request through the live runtime: stage the
// ArgBuf, submit to an orchestrator, wait for completion or ctx expiry.
// The orchestrator is chosen round-robin, as the simulator spreads
// arrivals by request ID.
func (p *Pool) Invoke(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	if !p.started.Load() {
		return nil, errors.New("pool: not started")
	}
	if p.draining.Load() {
		return nil, ErrDraining
	}
	def := p.reg.Lookup(fn)
	if def == nil {
		return nil, ErrUnknownFunction
	}
	// Stage the request payload into a fresh ArgBuf owned by the runtime
	// domain (§3.3: "orchestrators save these requests into ArgBufs").
	r := p.getRequest()
	r.fn = def
	r.buf = p.tab.NewVMA(ExecutorPD, payload, vmatable.PermRW)
	r.external = true
	r.arrival = time.Now()
	if dl, ok := ctx.Deadline(); ok {
		r.deadline = dl
	}
	p.inflight.Add(1)
	o := p.orchs[int(p.rr.Add(1))%len(p.orchs)]
	if err := o.submitExternal(r); err != nil {
		p.inflight.Done()
		p.stats.Rejected.Add(1)
		p.releaseRequest(r)
		return nil, err
	}
	select {
	case <-r.done:
		if err := r.err; err != nil {
			p.releaseRequest(r)
			return nil, err
		}
		// The executor pmoved the result ArgBuf back to the runtime
		// domain; read it from there. The returned slice stays valid
		// after the VMA structure recycles (see VMA.Read).
		b, err := r.buf.Read(ExecutorPD)
		p.releaseRequest(r)
		return b, err
	case <-ctx.Done():
		// Abandon: the request still drains through the runtime (and
		// releases its inflight slot there), but the caller leaves now.
		// The abandoned request is NOT recycled — the runtime still owns
		// it until its finish, after which the GC reclaims it.
		r.canceled.Store(true)
		return nil, ctx.Err()
	}
}

// finish completes a request: record stats (latency on the finishing
// executor's shard), publish the error, then signal completion — a token
// on the done channel for external requests (Invoke's select), or the
// completed flag under the parent's lock for nested ones (Wait's check).
// Exactly one finish happens per submitted request. Once completion is
// signalled the request may be recycled by its consumer, so no field is
// touched afterwards.
func (p *Pool) finish(shard int, r *request, err error) {
	r.err = err
	fs := p.stats.perFunc[r.fn.Name]
	fs.Latency.RecordShard(shard, time.Since(r.arrival).Nanoseconds())
	fs.Count.Add(1)
	if err != nil {
		fs.Errors.Add(1)
	}
	p.stats.Completed.Add(1)
	if r.external {
		r.done <- struct{}{}
		p.inflight.Done()
		return
	}
	// Nested request: flip completed and collect the resume decision in
	// one critical section with Wait's suspend decision, so exactly one
	// side sees the other (cf. executor.finishInvocation in the
	// simulator).
	parent := r.parent
	parent.mu.Lock()
	r.completed = true
	resume := parent.waiting == r
	if resume {
		parent.waiting = nil
	}
	parent.mu.Unlock()
	if resume {
		parent.exec.readyResume(parent)
	}
}

// QueueDepths reports current external, internal, and executor queue
// occupancy — the /statsz gauges.
func (p *Pool) QueueDepths() (ext, internal, execQ int) {
	for _, o := range p.orchs {
		e, i := o.depths()
		ext += e
		internal += i
	}
	for _, e := range p.execs {
		execQ += int(e.qlen.Load())
	}
	return ext, internal, execQ
}

// Draining reports whether the pool has stopped accepting external work.
func (p *Pool) Draining() bool { return p.draining.Load() }

// Drain stops accepting external requests, waits for all in-flight work
// (including nested calls) to complete, then shuts the loops and parked
// runner goroutines down. It returns ctx.Err() if the context expires
// first, leaving the loops running so stragglers still complete.
func (p *Pool) Drain(ctx context.Context) error {
	p.draining.Store(true)
	done := make(chan struct{})
	go func() {
		p.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	for _, o := range p.orchs {
		o.close()
	}
	for _, e := range p.execs {
		e.close()
	}
	p.loops.Wait()
	// Only executor goroutines park runners; with the loops gone the
	// channel is quiescent and every parked runner can be released.
	for {
		select {
		case rn := <-p.runners:
			close(rn.work)
		default:
			return nil
		}
	}
}
