package pool

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/mem/vmatable"
	"jord/internal/metrics"
	"jord/internal/server/router"
)

// Errors returned by the external invoke path. The gateway maps them onto
// HTTP statuses (429 / 404 / 503).
var (
	// ErrSaturated means the target orchestrator's external queue is at
	// capacity — the admission-control backpressure signal.
	ErrSaturated = errors.New("pool: saturated: external queue full")
	// ErrUnknownFunction means no function is registered under the name.
	ErrUnknownFunction = errors.New("pool: unknown function")
	// ErrDraining means the pool no longer accepts external work.
	ErrDraining = errors.New("pool: draining")
)

// Config sizes one live worker pool. The shape mirrors core.Config: a few
// orchestrators dispatching into many executors, JBSQ-bounded.
type Config struct {
	// Orchestrators is the number of dispatcher goroutines. Executors are
	// partitioned among them into proximity groups. 0 picks one per 8
	// executors (minimum 1), matching the simulator's default ratio.
	Orchestrators int

	// Executors is the number of executor goroutines. 0 picks GOMAXPROCS.
	Executors int

	// JBSQBound is the queue-depth bound k of JBSQ(k). External requests
	// are dispatched only to executors below the bound; internal (nested)
	// requests bypass it (§3.3).
	JBSQBound int

	// ExternalQueueCap bounds each orchestrator's external queue; arrivals
	// beyond it are rejected with ErrSaturated (the gateway's 429).
	// 0 defaults to 256.
	ExternalQueueCap int

	// NumPDs sizes the protection-domain space. Every in-flight
	// invocation — including suspended parents of nested calls — holds
	// one PD, so this must exceed MaxInflight × (1 + max nesting depth).
	// 0 defaults to 4096.
	NumPDs int

	// PDReserve is the number of PDs held back from *external* requests:
	// executors start an external invocation only while more than
	// PDReserve PDs are free, while internal (nested) requests may
	// consume the reserve. Without it, every PD can end up held by a
	// suspended parent whose child then cannot start — the PD-space
	// analogue of the queue deadlock §3.3's internal priority exists to
	// prevent. 0 defaults to NumPDs/8 (minimum 1). The reserve guarantees
	// progress for depth-1 call chains; deeper fan-outs additionally need
	// NumPDs sized per the rule above.
	PDReserve int
}

// Normalized returns the configuration with every zero field replaced by
// its default — what a pool built from c will actually run with.
func (c Config) Normalized() Config {
	c.normalize()
	return c
}

func (c *Config) normalize() {
	if c.Executors <= 0 {
		c.Executors = runtime.GOMAXPROCS(0)
	}
	if c.Orchestrators <= 0 {
		c.Orchestrators = c.Executors / 8
		if c.Orchestrators < 1 {
			c.Orchestrators = 1
		}
	}
	if c.Orchestrators > c.Executors {
		c.Orchestrators = c.Executors
	}
	if c.JBSQBound < 1 {
		c.JBSQBound = 4
	}
	if c.ExternalQueueCap <= 0 {
		c.ExternalQueueCap = 256
	}
	if c.NumPDs <= 0 {
		c.NumPDs = 4096
	}
	if c.PDReserve <= 0 {
		c.PDReserve = c.NumPDs / 8
		if c.PDReserve < 1 {
			c.PDReserve = 1
		}
	}
	if c.PDReserve >= c.NumPDs {
		c.PDReserve = c.NumPDs - 1
	}
}

// request is one invocation flowing through the live runtime — the live
// analogue of core.Request.
type request struct {
	fn       *router.Func
	buf      *VMA // the ArgBuf carrying inputs and outputs
	external bool

	arrival  time.Time
	deadline time.Time // zero = none; nested requests inherit the parent's

	parent *continuation // nested-call linkage

	canceled atomic.Bool // external caller gave up (ctx done)

	// done closes once the request finished (resp/err valid). err is
	// written before done closes.
	done chan struct{}
	err  error
}

// FuncStats accumulates per-function live measurements.
type FuncStats struct {
	Name    string
	Count   atomic.Uint64 // completed invocations (external + nested)
	Errors  atomic.Uint64
	Latency metrics.Histogram // arrival -> completion, ns
}

// Stats is the pool-wide counter set.
type Stats struct {
	perFunc map[string]*FuncStats // immutable after Start
	funcs   []*FuncStats          // registration order

	Dispatched atomic.Uint64 // orchestrator -> executor handoffs
	Completed  atomic.Uint64 // finished invocations
	Expired    atomic.Uint64 // dequeued past their deadline
	Rejected   atomic.Uint64 // ErrSaturated external submissions
}

// FuncStats returns the accumulator for a function name (nil if unknown).
func (s *Stats) FuncStats(name string) *FuncStats { return s.perFunc[name] }

// Funcs returns the per-function accumulators in registration order.
func (s *Stats) Funcs() []*FuncStats { return s.funcs }

// Pool is the live worker runtime: orchestrators, executors, the PD table,
// per-function code VMAs, and measurement state.
type Pool struct {
	cfg   Config
	reg   *router.Registry
	tab   *Table
	orchs []*orchestrator
	execs []*executor

	// code holds each function's code VMA (owned by ExecutorPD with RX),
	// from which invocation PDs receive execute permission via pcopy,
	// indexed by router.Func.ID.
	code []*VMA

	stats Stats

	rr       atomic.Uint64 // round-robin external submission
	draining atomic.Bool
	started  atomic.Bool
	startAt  time.Time

	inflight sync.WaitGroup // external requests in flight
	loops    sync.WaitGroup // orchestrator/executor goroutines
}

// New assembles a pool over a function registry. Start must be called
// before Invoke; registration closes at Start.
func New(cfg Config, reg *router.Registry) *Pool {
	cfg.normalize()
	return &Pool{cfg: cfg, reg: reg, tab: NewTable(cfg.NumPDs)}
}

// Config returns the normalized configuration.
func (p *Pool) Config() Config { return p.cfg }

// Table exposes the PD table (tests, stats).
func (p *Pool) Table() *Table { return p.tab }

// Stats exposes the live counters.
func (p *Pool) Stats() *Stats { return &p.stats }

// StartedAt returns when the pool started serving.
func (p *Pool) StartedAt() time.Time { return p.startAt }

// Start freezes the registry, loads every function's code VMA, and launches
// the orchestrator and executor goroutines.
func (p *Pool) Start() {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	p.reg.Freeze()
	funcs := p.reg.Funcs()
	p.code = make([]*VMA, len(funcs))
	p.stats.perFunc = make(map[string]*FuncStats, len(funcs))
	for _, f := range funcs {
		// Register loads the function code into an executable VMA owned
		// by the executor domain (cf. core.System.Register).
		p.code[f.ID] = p.tab.NewVMA(ExecutorPD, nil, vmatable.PermRX)
		fs := &FuncStats{Name: f.Name}
		p.stats.perFunc[f.Name] = fs
		p.stats.funcs = append(p.stats.funcs, fs)
	}

	for i := 0; i < p.cfg.Executors; i++ {
		p.execs = append(p.execs, newExecutor(p, i))
	}
	for i := 0; i < p.cfg.Orchestrators; i++ {
		p.orchs = append(p.orchs, newOrchestrator(p, i))
	}
	// Partition executors among orchestrators round-robin (the simulator
	// balances group sizes the same way; there is no mesh distance to
	// break ties by on the live path).
	for i, e := range p.execs {
		o := p.orchs[i%len(p.orchs)]
		o.group = append(o.group, e)
		e.orch = o
	}
	// A freed PD may unblock any executor stalled in its capacity check.
	p.tab.onFree = func() {
		for _, e := range p.execs {
			e.wake()
		}
	}
	for _, e := range p.execs {
		p.loops.Add(1)
		go e.run()
	}
	for _, o := range p.orchs {
		p.loops.Add(1)
		go o.run()
	}
	p.startAt = time.Now()
}

// Invoke runs one external request through the live runtime: stage the
// ArgBuf, submit to an orchestrator, wait for completion or ctx expiry.
// The orchestrator is chosen round-robin, as the simulator spreads
// arrivals by request ID.
func (p *Pool) Invoke(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	if !p.started.Load() {
		return nil, errors.New("pool: not started")
	}
	if p.draining.Load() {
		return nil, ErrDraining
	}
	def := p.reg.Lookup(fn)
	if def == nil {
		return nil, ErrUnknownFunction
	}
	// Stage the request payload into a fresh ArgBuf owned by the runtime
	// domain (§3.3: "orchestrators save these requests into ArgBufs").
	r := &request{
		fn:       def,
		buf:      p.tab.NewVMA(ExecutorPD, payload, vmatable.PermRW),
		external: true,
		arrival:  time.Now(),
		done:     make(chan struct{}),
	}
	if dl, ok := ctx.Deadline(); ok {
		r.deadline = dl
	}
	p.inflight.Add(1)
	o := p.orchs[int(p.rr.Add(1))%len(p.orchs)]
	if err := o.submitExternal(r); err != nil {
		p.inflight.Done()
		p.stats.Rejected.Add(1)
		return nil, err
	}
	select {
	case <-r.done:
		if r.err != nil {
			return nil, r.err
		}
		// The executor pmoved the result ArgBuf back to the runtime
		// domain; read it from there.
		return r.buf.Read(ExecutorPD)
	case <-ctx.Done():
		// Abandon: the request still drains through the runtime (and
		// releases its inflight slot there), but the caller leaves now.
		r.canceled.Store(true)
		return nil, ctx.Err()
	}
}

// finish completes a request: record stats, publish the error, close done,
// and either release the external in-flight slot or wake the suspended
// parent continuation. Exactly one finish happens per submitted request.
func (p *Pool) finish(r *request, err error) {
	r.err = err
	fs := p.stats.perFunc[r.fn.Name]
	fs.Latency.Record(time.Since(r.arrival).Nanoseconds())
	fs.Count.Add(1)
	if err != nil {
		fs.Errors.Add(1)
	}
	p.stats.Completed.Add(1)
	close(r.done) // before the parent handshake: Wait re-checks done under the lock

	if r.external {
		p.inflight.Done()
		return
	}
	// Nested request: make the parent runnable if it suspended on us
	// (cf. executor.finishInvocation in the simulator).
	parent := r.parent
	parent.mu.Lock()
	resume := parent.waiting == r
	if resume {
		parent.waiting = nil
	}
	parent.mu.Unlock()
	if resume {
		parent.exec.readyResume(parent)
	}
}

// QueueDepths reports current external, internal, and executor queue
// occupancy — the /statsz gauges.
func (p *Pool) QueueDepths() (ext, internal, execQ int) {
	for _, o := range p.orchs {
		e, i := o.depths()
		ext += e
		internal += i
	}
	for _, e := range p.execs {
		execQ += int(e.qlen.Load())
	}
	return ext, internal, execQ
}

// Draining reports whether the pool has stopped accepting external work.
func (p *Pool) Draining() bool { return p.draining.Load() }

// Drain stops accepting external requests, waits for all in-flight work
// (including nested calls) to complete, then shuts the loops down. It
// returns ctx.Err() if the context expires first, leaving the loops
// running so stragglers still complete.
func (p *Pool) Drain(ctx context.Context) error {
	p.draining.Store(true)
	done := make(chan struct{})
	go func() {
		p.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	for _, o := range p.orchs {
		o.close()
	}
	for _, e := range p.execs {
		e.close()
	}
	p.loops.Wait()
	return nil
}
