package pool

import (
	"context"
	"errors"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/mem/vmatable"
	"jord/internal/metrics"
	"jord/internal/server/router"
	"jord/internal/server/trace"
)

// Errors returned by the external invoke path. The gateway maps them onto
// HTTP statuses (429 / 404 / 503).
var (
	// ErrSaturated means the target orchestrator's external queue is at
	// capacity — the admission-control backpressure signal.
	ErrSaturated = errors.New("pool: saturated: external queue full")
	// ErrUnknownFunction means no function is registered under the name.
	ErrUnknownFunction = errors.New("pool: unknown function")
	// ErrDraining means the pool no longer accepts external work.
	ErrDraining = errors.New("pool: draining")
	// ErrDegraded means tiered shedding refused an external request because
	// the free-PD count is within PDShedMargin of the internal reserve —
	// the worker keeps its last PDs for the nested calls that suspended
	// parents are waiting on, and degrades EXTERNAL service first (the
	// §3.3 invariant extended from "never deadlock" to "degrade external
	// before internal"). The gateway answers 429 with Retry-After.
	ErrDegraded = errors.New("pool: degraded: protection-domain supply near internal reserve")
	// ErrPanicked wraps the error of an invocation whose body panicked, so
	// the gateway (and circuit breakers) can tell a crash from a function
	// that merely returned an error.
	ErrPanicked = errors.New("pool: function panicked")
	// ErrNoState means a body used a Ctx.State* accessor on a pool with no
	// shared-state store attached (SetState was never called).
	ErrNoState = errors.New("pool: no shared-state store configured")
)

// StateBackend is the runtime's view of the shared-state tier
// (internal/server/state.Store): permission-checked KV operations keyed by
// the calling invocation's protection domain. The pool depends only on
// this interface so the state package can build on pool's VMA/Table
// primitives without an import cycle. Handles returned by Get/Take are
// tracked on the invocation and force-released at teardown (see
// router.StateHold).
type StateBackend interface {
	Get(pd PDID, fn string, scope router.StateScope, key string) (router.StateSnap, error)
	Take(pd PDID, fn string, scope router.StateScope, key string) (router.StateTx, error)
	Put(pd PDID, fn string, scope router.StateScope, key string, val []byte) (uint64, error)
	Delete(pd PDID, fn string, scope router.StateScope, key string) error
}

// Config sizes one live worker pool. The shape mirrors core.Config: a few
// orchestrators dispatching into many executors, JBSQ-bounded.
type Config struct {
	// Orchestrators is the number of dispatcher goroutines. Executors are
	// partitioned among them into proximity groups. 0 picks one per 8
	// executors (minimum 1), matching the simulator's default ratio.
	Orchestrators int

	// Executors is the number of executor goroutines. 0 picks GOMAXPROCS.
	Executors int

	// JBSQBound is the queue-depth bound k of JBSQ(k). External requests
	// are dispatched only to executors below the bound; internal (nested)
	// requests bypass it (§3.3).
	JBSQBound int

	// ExternalQueueCap bounds each orchestrator's external queue; arrivals
	// beyond it are rejected with ErrSaturated (the gateway's 429).
	// 0 defaults to 256.
	ExternalQueueCap int

	// NumPDs sizes the protection-domain space. Every in-flight
	// invocation — including suspended parents of nested calls — holds
	// one PD, so this must exceed MaxInflight × (1 + max nesting depth).
	// 0 defaults to 4096.
	NumPDs int

	// PDReserve is the number of PDs held back from *external* requests:
	// executors start an external invocation only while more than
	// PDReserve PDs are free, while internal (nested) requests may
	// consume the reserve. Without it, every PD can end up held by a
	// suspended parent whose child then cannot start — the PD-space
	// analogue of the queue deadlock §3.3's internal priority exists to
	// prevent. 0 defaults to NumPDs/8 (minimum 1). The reserve guarantees
	// progress for depth-1 call chains; deeper fan-outs additionally need
	// NumPDs sized per the rule above.
	PDReserve int

	// SweepInterval is how often the lifecycle sweeper scans orchestrator
	// queues for requests that died before dispatch (deadline expired or
	// caller gone) and, when ExecTimeout is set, running invocations for
	// watchdog flagging. Without the sweeper a dead request is only
	// discovered when an executor dequeues it — potentially never on a
	// saturated worker. The sweeper holds no timer while nothing is
	// sweepable (no deadline-carrying requests, nothing watchdog-tracked),
	// so deadline-free workloads pay nothing for it (see sweeper).
	// 0 defaults to 5ms; < 0 disables the sweeper.
	SweepInterval time.Duration

	// ExecTimeout is the per-invocation watchdog threshold: an invocation
	// (running or suspended on nested calls) still alive past it is
	// flagged once on Stats.Watchdog and its function's counter — the
	// operator signal for stuck bodies holding PDs and runners. It does
	// not kill the body (Go cannot preempt it); cancellation stays
	// cooperative via Ctx.Err/Ctx.Done. 0 disables the watchdog.
	ExecTimeout time.Duration

	// PDShedMargin enables tiered shedding: while at most
	// PDReserve+PDShedMargin PDs are free, Invoke refuses EXTERNAL
	// requests with ErrDegraded instead of queueing them toward a stall.
	// Internal (nested) requests are never shed — they may consume the
	// reserve itself — so external service tightens strictly before
	// internal calls feel any pressure, extending §3.3's internal
	// priority from "never deadlock" to "degrade external before
	// internal". <= 0 disables tiered shedding (the raw-pool default;
	// the live daemon enables it, see server.Config).
	PDShedMargin int

	// ObserveQueueDelay, when set, receives every external request's
	// measured queue delay (Invoke submission -> executor pickup) — the
	// signal the gateway's adaptive admission controller steers on. Called
	// from executor goroutines on the dispatch path: it must be fast,
	// allocation-free, and non-blocking.
	ObserveQueueDelay func(d time.Duration)

	// OnWatchdog, when set, is called (from the sweeper, with the owning
	// executor's lock held) each time the ExecTimeout watchdog flags an
	// invocation, with the stuck function's name — the live feed that
	// lets per-function circuit breakers count stuck bodies as failures.
	// Must be fast and non-blocking.
	OnWatchdog func(fnName string)

	// NoTrace disables the always-on per-invocation tracing layer
	// (internal/server/trace). Tracing is ON by default — the invoke
	// benchmarks and alloc gates run with it enabled — and this knob
	// exists for the on-vs-off overhead comparison jordbench reports.
	NoTrace bool
}

// Normalized returns the configuration with every zero field replaced by
// its default — what a pool built from c will actually run with.
func (c Config) Normalized() Config {
	c.normalize()
	return c
}

func (c *Config) normalize() {
	if c.Executors <= 0 {
		c.Executors = runtime.GOMAXPROCS(0)
	}
	if c.Orchestrators <= 0 {
		c.Orchestrators = c.Executors / 8
		if c.Orchestrators < 1 {
			c.Orchestrators = 1
		}
	}
	if c.Orchestrators > c.Executors {
		c.Orchestrators = c.Executors
	}
	if c.JBSQBound < 1 {
		c.JBSQBound = 4
	}
	if c.ExternalQueueCap <= 0 {
		c.ExternalQueueCap = 256
	}
	if c.NumPDs <= 0 {
		c.NumPDs = 4096
	}
	if c.PDReserve <= 0 {
		c.PDReserve = c.NumPDs / 8
		if c.PDReserve < 1 {
			c.PDReserve = 1
		}
	}
	if c.PDReserve >= c.NumPDs {
		c.PDReserve = c.NumPDs - 1
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 5 * time.Millisecond
	}
	if c.PDShedMargin < 0 {
		c.PDShedMargin = 0
	}
	// The shed threshold must leave headroom below NumPDs or no external
	// request could ever start.
	if c.PDShedMargin > 0 && c.PDReserve+c.PDShedMargin >= c.NumPDs {
		c.PDShedMargin = c.NumPDs - 1 - c.PDReserve
		if c.PDShedMargin < 0 {
			c.PDShedMargin = 0
		}
	}
}

// request is one invocation flowing through the live runtime — the live
// analogue of core.Request. Requests are recycled through a pool; the
// done channel (capacity 1) carries a completion token instead of being
// closed, so it survives reuse.
type request struct {
	fn       *router.Func
	buf      *VMA // the ArgBuf carrying inputs and outputs
	external bool

	arrival  time.Time
	deadline time.Time // zero = none; nested requests inherit the parent's

	parent *continuation // nested-call linkage

	canceled atomic.Bool // external caller gave up (ctx done)

	// done receives exactly one token when an EXTERNAL request finishes
	// (err valid; written before the token). Nested requests signal
	// completion through the completed flag instead, guarded by the
	// parent continuation's mutex — a recycled request pointer must never
	// deposit into a channel its new owner is already using.
	done      chan struct{}
	completed bool // nested only; guarded by parent.mu
	orphaned  bool // nested only; parent finished without Wait (guarded by parent.mu)
	err       error

	// span is the invocation's trace record, embedded by value so tracing
	// allocates nothing and recycles with the request. Ownership follows
	// the request's: the runtime stamps stages until finish; a traced
	// external caller (the edge, see InvokeTimed) copies it out after the
	// done token and publishes it itself once the response is written.
	span    trace.Span
	tSubmit int64 // submission mark on the trace clock (latency origin)
	tMark   int64 // last stage boundary on the trace clock
	traced  bool  // an external caller owns response stamping + publish
}

// FuncStats accumulates per-function live measurements. The latency
// histogram and the hot counters shard per executor so the completion path
// touches only the finishing executor's cache lines; reads merge the
// shards.
type FuncStats struct {
	Name     string
	Count    metrics.StripedUint64 // completed invocations (external + nested)
	Errors   metrics.StripedUint64
	Watchdog atomic.Uint64            // invocations flagged past ExecTimeout
	Latency  metrics.ShardedHistogram // arrival -> completion, ns
}

// Stats is the pool-wide counter set. Counters bumped on every request
// (Dispatched per handoff, Completed/Expired/Canceled per finish) stripe
// per orchestrator/executor so 32-way completion traffic never ping-pongs
// one cache line; rare-event counters stay plain atomics.
type Stats struct {
	perFunc map[string]*FuncStats // immutable after Start
	funcs   []*FuncStats          // registration order

	Dispatched metrics.StripedUint64 // orchestrator -> executor handoffs (shard = orchestrator)
	Completed  metrics.StripedUint64 // finished invocations (shard = finishing executor)
	Expired    metrics.StripedUint64 // finished with context.DeadlineExceeded
	Canceled   metrics.StripedUint64 // finished with context.Canceled (caller gone / kin canceled)
	Rejected   atomic.Uint64         // ErrSaturated external submissions
	Shed       atomic.Uint64         // ErrDegraded external submissions (PD pressure, tiered shedding)
	Orphaned   atomic.Uint64         // children detached at parent teardown without a Wait
	Watchdog   atomic.Uint64         // invocations flagged stuck past ExecTimeout
	Swept      atomic.Uint64         // dead requests reaped from orchestrator queues pre-dispatch
}

// FuncStats returns the accumulator for a function name (nil if unknown).
func (s *Stats) FuncStats(name string) *FuncStats { return s.perFunc[name] }

// Funcs returns the per-function accumulators in registration order.
func (s *Stats) Funcs() []*FuncStats { return s.funcs }

// Pool is the live worker runtime: orchestrators, executors, the PD table,
// per-function code VMAs, and measurement state.
type Pool struct {
	cfg   Config
	reg   *router.Registry
	tab   *Table
	orchs []*orchestrator
	execs []*executor

	// code holds each function's code VMA (global RX — the VTE G bit, so
	// every invocation PD may execute it without a per-invocation pcopy),
	// indexed by router.Func.ID.
	code []*VMA

	stats Stats

	// reqPool and contPool recycle the per-invocation bookkeeping objects
	// (request structs with their done channels, continuations with their
	// handshake channels and children slices).
	reqPool  sync.Pool
	contPool sync.Pool

	// runners holds parked runner goroutines awaiting a continuation.
	// Only executor goroutines put runners back, so after the executor
	// loops exit the channel is quiescent and Drain can empty it.
	runners chan *runner

	// pdWaiters counts executors currently stalled on PD supply; Cput
	// (via tab.onFree) checks it so ordinary completions skip the
	// wake-every-executor broadcast. A counter rather than a flag: a
	// waiter stays registered until it actually wakes, so one executor's
	// stall re-check finding work cannot consume another's wakeup.
	// Padded: every cput LOADS this line — it must not be invalidated by
	// the per-request RMWs on inflightN/sweepables below.
	_         [56]byte
	pdWaiters atomic.Int64
	_         [56]byte

	// shedThr is the tiered-shedding threshold (PDReserve+PDShedMargin,
	// 0 = disabled): Invoke refuses external requests while the free-PD
	// count is at or below it. Immutable after New; the check is one
	// atomic load on the submit path.
	shedThr int

	// state is the shared-state tier, nil unless SetState attached one.
	// Immutable after Start.
	state StateBackend

	// tr is the per-invocation tracing plane (nil iff Config.NoTrace).
	// Immutable after New; every hot-path stamp is gated on one nil check.
	tr *trace.Recorder

	draining atomic.Bool
	started  atomic.Bool
	startAt  time.Time

	sweepStop chan struct{} // closes when Drain stops the lifecycle sweeper
	drainOnce sync.Once

	// sweepables counts the work the sweeper exists for: deadline-carrying
	// requests in flight plus (when ExecTimeout is on) watchdog-tracked
	// invocations. While it is zero the sweeper parks without a timer —
	// a pending runtime timer taxes every scheduler pass, which deadline-
	// free workloads must not pay (see sweeper). sweepKick (cap 1) carries
	// the counter's 0→1 wakeup.
	sweepables atomic.Int64
	_          [56]byte
	sweepKick  chan struct{}

	// inflightN counts external requests in flight (a raw counter, not a
	// WaitGroup: Invoke increments concurrently with Drain's wait, which
	// WaitGroup forbids from a zero counter). Decrements that cross zero
	// while draining signal idleCh so Drain can stop waiting. Padded onto
	// its own cache line: it is the one RMW every external request pays
	// twice, and it must not share a line with read-mostly neighbours.
	inflightN atomic.Int64
	_         [56]byte
	idleCh    chan struct{}  // cap 1; drain-time zero-crossing signal
	loops     sync.WaitGroup // orchestrator/executor/sweeper goroutines
}

// New assembles a pool over a function registry. Start must be called
// before Invoke; registration closes at Start.
func New(cfg Config, reg *router.Registry) *Pool {
	cfg.normalize()
	p := &Pool{cfg: cfg, reg: reg, tab: NewTable(cfg.NumPDs)}
	if cfg.PDShedMargin > 0 {
		p.shedThr = cfg.PDReserve + cfg.PDShedMargin
	}
	// Credit carving must stop strictly above both the §3.3 reserve and
	// the shedding band, so the exact legacy CAS governs all admission
	// decisions anywhere near those thresholds (see Table.SetCreditFloor).
	floor := cfg.NumPDs / 4
	if m := cfg.PDReserve + 2*creditBatch; floor < m {
		floor = m
	}
	if m := p.shedThr + 2*creditBatch; floor < m {
		floor = m
	}
	if floor < 64 {
		floor = 64
	}
	p.tab.SetCreditFloor(floor)
	if !cfg.NoTrace {
		p.tr = trace.NewRecorder(cfg.Executors)
	}
	p.reqPool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	p.contPool.New = func() any {
		return &continuation{
			yieldCh:  make(chan struct{}),
			resumeCh: make(chan struct{}),
		}
	}
	p.runners = make(chan *runner, 4*cfg.Executors+16)
	p.idleCh = make(chan struct{}, 1)
	p.sweepKick = make(chan struct{}, 1)
	return p
}

// inflightDone retires one external request from the in-flight count; the
// decrement that reaches zero during a drain wakes the waiting Drain.
func (p *Pool) inflightDone() {
	if p.inflightN.Add(-1) == 0 && p.draining.Load() {
		select {
		case p.idleCh <- struct{}{}:
		default:
		}
	}
}

// getRequest returns a recycled (or fresh) request with an empty done
// channel and cleared linkage.
func (p *Pool) getRequest() *request {
	return p.reqPool.Get().(*request)
}

// putRequest recycles a request. The done channel is drained defensively
// so a stale completion token can never leak into the next invocation.
func (p *Pool) putRequest(r *request) {
	select {
	case <-r.done:
	default:
	}
	r.fn = nil
	r.buf = nil
	r.external = false
	r.arrival = time.Time{}
	r.deadline = time.Time{}
	r.parent = nil
	r.canceled.Store(false)
	r.completed = false
	r.orphaned = false
	r.err = nil
	r.span = trace.Span{}
	r.tSubmit = 0
	r.tMark = 0
	r.traced = false
	p.reqPool.Put(r)
}

// releaseRequest recycles a finished request and its ArgBuf structure.
func (p *Pool) releaseRequest(r *request) {
	putVMA(r.buf)
	p.putRequest(r)
}

// getCont returns a recycled (or fresh) continuation.
func (p *Pool) getCont() *continuation {
	return p.contPool.Get().(*continuation)
}

// putCont recycles a finished continuation. Its channels are reused (both
// handshakes complete strictly before recycling); the children slice keeps
// its capacity. A detached continuation (outstanding orphan children) is
// recycled by the LAST orphan's finish, never by finishInvocation — the
// children still lock c.mu through their parent pointers until then.
func (p *Pool) putCont(c *continuation) {
	c.req = nil
	c.exec = nil
	c.pd = 0
	c.runner = nil
	c.waiting = nil
	c.children = c.children[:0]
	c.live = 0
	c.finished = false
	c.resp = nil
	c.err = nil
	c.detached = false
	c.orphans = 0
	c.startAt = time.Time{}
	c.wdFlagged = false
	c.doneCh = nil
	c.stopCh = nil
	c.holds = c.holds[:0] // capacity recycles; entries were released at teardown
	c.ctx = Ctx{}
	p.contPool.Put(c)
}

// getRunner pops a parked runner goroutine, or spawns one.
func (p *Pool) getRunner() *runner {
	select {
	case rn := <-p.runners:
		return rn
	default:
	}
	rn := &runner{work: make(chan *continuation, 1)}
	go rn.loop(p)
	return rn
}

// putRunner parks a runner for reuse; if the pool is full, the runner's
// goroutine is released instead. Called only from executor goroutines.
func (p *Pool) putRunner(rn *runner) {
	select {
	case p.runners <- rn:
	default:
		close(rn.work)
	}
}

// SetState attaches the shared-state tier. Must be called before Start;
// bodies reach it through Ctx.StateGet/StateTake/StatePut/StateDelete.
func (p *Pool) SetState(b StateBackend) { p.state = b }

// State returns the attached shared-state tier (nil if none).
func (p *Pool) State() StateBackend { return p.state }

// Trace returns the tracing recorder (nil iff Config.NoTrace).
func (p *Pool) Trace() *trace.Recorder { return p.tr }

// Config returns the normalized configuration.
func (p *Pool) Config() Config { return p.cfg }

// Table exposes the PD table (tests, stats).
func (p *Pool) Table() *Table { return p.tab }

// Stats exposes the live counters.
func (p *Pool) Stats() *Stats { return &p.stats }

// StartedAt returns when the pool started serving.
func (p *Pool) StartedAt() time.Time { return p.startAt }

// ShedThreshold returns the free-PD count at or below which external
// submissions are refused with ErrDegraded (0 = tiered shedding disabled).
func (p *Pool) ShedThreshold() int { return p.shedThr }

// Start freezes the registry, loads every function's code VMA, and launches
// the orchestrator and executor goroutines.
func (p *Pool) Start() {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	p.reg.Freeze()
	funcs := p.reg.Funcs()
	p.code = make([]*VMA, len(funcs))
	p.stats.perFunc = make(map[string]*FuncStats, len(funcs))
	// Hot counters stripe across their writers: per-finish counters over
	// the executors, the dispatch counter over the orchestrators.
	p.stats.Completed.SetShards(p.cfg.Executors)
	p.stats.Expired.SetShards(p.cfg.Executors)
	p.stats.Canceled.SetShards(p.cfg.Executors)
	p.stats.Dispatched.SetShards(p.cfg.Orchestrators)
	for _, f := range funcs {
		// Register loads the function code into an executable VMA shared
		// with every PD (the Fig. 8 G bit), cf. core.System.Register.
		p.code[f.ID] = p.tab.NewGlobalVMA(nil, vmatable.PermRX)
		fs := &FuncStats{Name: f.Name}
		fs.Latency.SetShards(p.cfg.Executors)
		fs.Count.SetShards(p.cfg.Executors)
		fs.Errors.SetShards(p.cfg.Executors)
		p.stats.perFunc[f.Name] = fs
		p.stats.funcs = append(p.stats.funcs, fs)
	}
	if p.tr != nil {
		names := make([]string, len(funcs))
		for _, f := range funcs {
			names[f.ID] = f.Name
		}
		p.tr.InitFuncs(names)
	}

	for i := 0; i < p.cfg.Executors; i++ {
		p.execs = append(p.execs, newExecutor(p, i))
	}
	for i := 0; i < p.cfg.Orchestrators; i++ {
		p.orchs = append(p.orchs, newOrchestrator(p, i))
	}
	// Partition executors among orchestrators round-robin (the simulator
	// balances group sizes the same way; there is no mesh distance to
	// break ties by on the live path).
	for i, e := range p.execs {
		o := p.orchs[i%len(p.orchs)]
		o.group = append(o.group, e)
		e.orch = o
	}
	// A freed PD may unblock an executor stalled in its capacity check.
	// The pdWaiters count gates the broadcast so the common Cput pays one
	// atomic load, not a wake of every executor. The count is never reset
	// here: each waiter deregisters itself when it wakes, so a broadcast
	// cannot strand another executor that registered concurrently.
	p.tab.onFree = func() {
		if p.pdWaiters.Load() > 0 {
			for _, e := range p.execs {
				e.wake()
			}
		}
	}
	for _, e := range p.execs {
		p.loops.Add(1)
		go e.run()
	}
	for _, o := range p.orchs {
		p.loops.Add(1)
		go o.run()
	}
	p.sweepStop = make(chan struct{})
	if p.cfg.SweepInterval > 0 {
		p.loops.Add(1)
		go p.sweeper()
	}
	p.startAt = time.Now()
}

// sweeper is the lifecycle background loop: at SweepInterval it reaps
// dead requests (deadline expired, caller gone) out of the orchestrator
// queues so they stop occupying queue slots on a worker that may never
// dequeue them, and — when ExecTimeout is set — flags invocations stuck
// past the watchdog threshold. Executor queues are not swept; their
// entries are checked at dequeue, which is at most JBSQBound requests away.
//
// A pool with nothing sweepable must not pay for the sweeper: a pending
// runtime timer — at ANY period — taxes every scheduler pass with a timer
// heap check, which costs ~10% on this handshake-heavy hot path. So the
// sweeper holds no timer at all while p.sweepables is zero: it parks on
// sweepKick, and the 0→1 transition of the counter (first deadline-
// carrying request, or first watchdog-tracked invocation) wakes it. It
// then ticks at SweepInterval until the count drains and it parks again.
//
// Requests whose caller can only vanish (canceled, no deadline, watchdog
// off) do not arm the sweeper; they are reaped at executor dequeue, which
// is how the pre-sweeper runtime handled all queue deaths.
func (p *Pool) sweeper() {
	defer p.loops.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var dead []*request // reused across sweeps
	for {
		if p.sweepables.Load() == 0 {
			select {
			case <-p.sweepStop:
				return
			case <-p.sweepKick:
				continue // re-check: the kick may be stale
			}
		}
		timer.Reset(p.cfg.SweepInterval)
		select {
		case <-p.sweepStop:
			return
		case <-timer.C:
		}
		now := time.Now()
		for _, o := range p.orchs {
			dead = o.sweep(dead[:0], now)
			for _, r := range dead {
				p.stats.Swept.Add(1)
				// Deadline first: an expired request is usually ALSO marked
				// canceled (Invoke's abandon path fires at the same instant),
				// and the deadline is the deterministic cause.
				if !r.deadline.IsZero() && now.After(r.deadline) {
					p.finish(-1, r, context.DeadlineExceeded)
				} else {
					p.finish(-1, r, context.Canceled)
				}
			}
		}
		if p.cfg.ExecTimeout > 0 {
			cut := now.Add(-p.cfg.ExecTimeout)
			for _, e := range p.execs {
				e.flagStuck(cut)
			}
		}
	}
}

// sweepableAdd registers one sweeper-relevant unit of work (a deadline-
// carrying request in flight, or a watchdog-tracked invocation) and wakes
// the parked sweeper on the zero crossing.
func (p *Pool) sweepableAdd() {
	if p.sweepables.Add(1) == 1 {
		select {
		case p.sweepKick <- struct{}{}:
		default:
		}
	}
}

// sweepableDone retires one sweeper-relevant unit; at zero the sweeper's
// next pass parks it (and its timer) again.
func (p *Pool) sweepableDone() {
	p.sweepables.Add(-1)
}

// submit stages one external request and hands it to an orchestrator: the
// admission/shedding checks, the ArgBuf staging, and the queue handoff
// shared by Invoke and InvokeTimed. On success the caller owns the wait on
// r.done; on error everything is already released.
func (p *Pool) submit(def *router.Func, payload []byte, deadline time.Time, sp *trace.Span) (*request, error) {
	// Count ourselves in flight BEFORE checking the drain flag, so no
	// accepted request can strand in a queue nobody services: either our
	// increment lands before Drain's flag flip (Drain then waits for us),
	// or we observe the flip here and withdraw without submitting. (The
	// other order leaves a window where Drain sees zero, shuts the loops
	// down, and our request is enqueued into a dead pool.)
	p.inflightN.Add(1)
	if p.draining.Load() {
		p.inflightDone()
		return nil, ErrDraining
	}
	// Tiered shedding (one atomic load): refuse external work while the
	// free-PD supply is within the shed margin of the internal reserve,
	// BEFORE staging anything — external admission tightens here so
	// internal (nested) calls, which may consume the reserve itself,
	// never stall behind externals hoarding the last PDs.
	if thr := p.shedThr; thr > 0 && p.tab.FreeCount() <= thr {
		p.inflightDone()
		p.stats.Shed.Add(1)
		if p.tr != nil {
			p.tr.NoteShed() // shed-burst flight-recorder trigger
		}
		return nil, ErrDegraded
	}
	// Stage the request payload into a fresh ArgBuf owned by the runtime
	// domain (§3.3: "orchestrators save these requests into ArgBufs").
	r := p.getRequest()
	r.fn = def
	r.buf = p.tab.NewVMA(ExecutorPD, payload, vmatable.PermRW)
	r.external = true
	r.deadline = deadline
	if tr := p.tr; tr != nil {
		// One trace-clock read is the only arrival stamp a traced request
		// needs: every downstream reader of r.arrival (untraced latency,
		// the ObserveQueueDelay fallback) has a traced branch running off
		// the span marks instead, so the time.Now below is skipped. A
		// traced caller (the edge) hands in a pre-stamped span —
		// parse/admit stages and the earlier start — and takes publish
		// ownership back with the completion token.
		m := tr.Now()
		if sp != nil {
			r.span = *sp
			r.traced = true
		} else {
			r.span.StartNS = m
		}
		r.span.FuncID = int32(def.ID)
		r.span.External = true
		r.tSubmit = m
		r.tMark = m
	} else {
		r.arrival = time.Now()
	}
	// Spread submissions across orchestrators with the per-P random
	// source: rand/v2's global generator never touches a shared cache
	// line, unlike the old round-robin counter whose single atomic was
	// RMW'd by every submitting goroutine.
	o := p.orchs[0]
	if len(p.orchs) > 1 {
		o = p.orchs[rand.IntN(len(p.orchs))]
	}
	if err := o.submitExternal(r); err != nil {
		p.inflightDone()
		p.stats.Rejected.Add(1)
		p.releaseRequest(r)
		return nil, err
	}
	if !deadline.IsZero() {
		// A deadline makes the request sweepable; arm the sweeper for its
		// lifetime (balanced by finish). Deadline-free requests leave the
		// sweeper parked and timer-free.
		p.sweepableAdd()
	}
	return r, nil
}

// Invoke runs one external request through the live runtime: stage the
// ArgBuf, submit to an orchestrator, wait for completion or ctx expiry.
func (p *Pool) Invoke(ctx context.Context, fn string, payload []byte) ([]byte, error) {
	if !p.started.Load() {
		return nil, errors.New("pool: not started")
	}
	def := p.reg.Lookup(fn)
	if def == nil {
		return nil, ErrUnknownFunction
	}
	var deadline time.Time
	if dl, ok := ctx.Deadline(); ok {
		deadline = dl
	}
	r, err := p.submit(def, payload, deadline, nil)
	if err != nil {
		return nil, err
	}
	select {
	case <-r.done:
		if err := r.err; err != nil {
			p.releaseRequest(r)
			return nil, err
		}
		// The executor pmoved the result ArgBuf back to the runtime
		// domain; read it from there. The returned slice stays valid
		// after the VMA structure recycles (see VMA.Read).
		b, err := r.buf.Read(ExecutorPD)
		p.releaseRequest(r)
		return b, err
	case <-ctx.Done():
		// Abandon: the request still drains through the runtime (and
		// releases its inflight slot there), but the caller leaves now.
		// The abandoned request is NOT recycled — the runtime still owns
		// it until its finish, after which the GC reclaims it.
		r.canceled.Store(true)
		return nil, ctx.Err()
	}
}

// InvokeTimed is Invoke for callers that manage deadlines without a
// context — the zero-allocation HTTP edge, which cannot afford
// context.WithTimeout's allocations. def comes from Registry.Lookup or
// LookupBytes; deadline may be zero (none); expired, when non-nil, is the
// caller's own timer channel armed for that deadline (nil blocks that
// select arm, i.e. wait forever).
//
// On timeout the request is ABANDONED (abandoned=true, err =
// context.DeadlineExceeded): the runtime still owns the request and its
// ArgBuf, which may alias the caller's payload buffer — the caller must
// treat that buffer as lost and must not drain/reuse the fired timer
// channel entry it consumed here.
//
// sp, when non-nil (and tracing is on), is the caller's pre-stamped trace
// span (edge parse/admit stages): the runtime adopts it for the request's
// lifetime and copies it back — stages, outcome, finishing shard — before
// returning a completion, at which point the caller owns stamping the
// response-write stage and publishing. On abandonment the span stays with
// the runtime, which publishes the canceled trace itself at finish.
func (p *Pool) InvokeTimed(def *router.Func, payload []byte, deadline time.Time, expired <-chan time.Time, sp *trace.Span) (resp []byte, abandoned bool, err error) {
	if !p.started.Load() {
		return nil, false, errors.New("pool: not started")
	}
	if def == nil {
		return nil, false, ErrUnknownFunction
	}
	r, err := p.submit(def, payload, deadline, sp)
	if err != nil {
		return nil, false, err
	}
	select {
	case <-r.done:
		if r.traced && sp != nil {
			*sp = r.span
		}
		if err := r.err; err != nil {
			p.releaseRequest(r)
			return nil, false, err
		}
		b, err := r.buf.Read(ExecutorPD)
		p.releaseRequest(r)
		return b, false, err
	case <-expired:
		r.canceled.Store(true)
		return nil, true, context.DeadlineExceeded
	}
}

// finish completes a request: record stats (latency on the finishing
// executor's shard), publish the error, then signal completion — a token
// on the done channel for external requests (Invoke's select), or the
// completed flag under the parent's lock for nested ones (Wait's check).
// Exactly one finish happens per submitted request. Once completion is
// signalled the request may be recycled by its consumer, so no field is
// touched afterwards.
func (p *Pool) finish(shard int, r *request, err error) {
	if !r.deadline.IsZero() {
		p.sweepableDone() // balances the sweepableAdd at submission
	}
	r.err = err
	fs := p.stats.perFunc[r.fn.Name]
	var latNS int64
	if tr := p.tr; tr != nil {
		// One clock read closes both the span and the latency histogram.
		end := tr.Now()
		latNS = end - r.tSubmit
		s := &r.span
		s.EndNS = end
		// Whatever ran after the exec-end stamp (output write-back, ArgBuf
		// pmove, handle release, PD cput) is teardown; a request that died
		// before PD init never reached that stamp and keeps the remainder
		// unattributed ("other" in /tracez).
		if s.Stages[trace.StageInit] > 0 {
			s.Stages[trace.StageTeardown] += end - r.tMark
		}
		s.Outcome = outcomeOf(err)
		s.Shard = int32(shard)
		// Publish unless a traced external caller owns the span (it will
		// stamp the response write and publish after the done token). An
		// abandoned traced request has no caller left to publish — the
		// runtime does it here. (A finish racing the abandonment's flag
		// store may drop that one trace; never double-publish.)
		if !r.traced || r.canceled.Load() {
			tr.Publish(shard, s)
		}
	} else {
		latNS = time.Since(r.arrival).Nanoseconds()
	}
	fs.Latency.RecordShard(shard, latNS)
	fs.Count.AddShard(shard, 1)
	if err != nil {
		fs.Errors.AddShard(shard, 1)
		// Lifecycle accounting is centralized here so queue sweeps,
		// dequeue checks, and cooperative in-body unwinding all count the
		// same way (the gateway maps Canceled onto 499, Expired onto 504).
		switch {
		case errors.Is(err, context.Canceled):
			p.stats.Canceled.AddShard(shard, 1)
		case errors.Is(err, context.DeadlineExceeded):
			p.stats.Expired.AddShard(shard, 1)
		}
	}
	p.stats.Completed.AddShard(shard, 1)
	if r.external {
		r.done <- struct{}{}
		p.inflightDone()
		return
	}
	// Nested request: flip completed and collect the resume decision in
	// one critical section with Wait's suspend decision, so exactly one
	// side sees the other (cf. executor.finishInvocation in the
	// simulator).
	parent := r.parent
	parent.mu.Lock()
	r.completed = true
	if r.orphaned {
		// The parent finished without Wait and detached us: nobody will
		// ever collect this result, so the pool releases the request and
		// its ArgBuf here. The LAST orphan also recycles the parent
		// continuation finishInvocation left un-pooled for us.
		parent.orphans--
		last := parent.detached && parent.orphans == 0
		parent.mu.Unlock()
		p.releaseRequest(r)
		if last {
			p.putCont(parent)
		}
		return
	}
	resume := parent.waiting == r
	if resume {
		parent.waiting = nil
	}
	parent.mu.Unlock()
	if resume {
		parent.exec.readyResume(parent)
	}
}

// outcomeOf maps a finish error onto the span's outcome enum — no error
// strings, so publishing an errored span allocates nothing.
func outcomeOf(err error) trace.Outcome {
	switch {
	case err == nil:
		return trace.OutcomeOK
	case errors.Is(err, ErrPanicked):
		return trace.OutcomePanicked
	case errors.Is(err, context.DeadlineExceeded):
		return trace.OutcomeExpired
	case errors.Is(err, context.Canceled):
		return trace.OutcomeCanceled
	default:
		return trace.OutcomeError
	}
}

// QueueDepths reports current external, internal, and executor queue
// occupancy — the /statsz gauges.
func (p *Pool) QueueDepths() (ext, internal, execQ int) {
	for _, o := range p.orchs {
		e, i := o.depths()
		ext += e
		internal += i
	}
	for _, e := range p.execs {
		execQ += int(e.qlen.Load())
	}
	return ext, internal, execQ
}

// Draining reports whether the pool has stopped accepting external work.
func (p *Pool) Draining() bool { return p.draining.Load() }

// Drain stops accepting external requests, waits for all in-flight work
// (including nested calls) to complete, then shuts the loops and parked
// runner goroutines down. It returns ctx.Err() if the context expires
// first, leaving the loops running so stragglers still complete.
func (p *Pool) Drain(ctx context.Context) error {
	p.draining.Store(true)
	// Wait for the in-flight count to reach zero. Every decrement that
	// crosses zero after the flag flip signals idleCh (see inflightDone);
	// an Invoke racing the flip either lands its increment first — then
	// its finish delivers the signal — or sees the flag and withdraws,
	// itself signalling its transient zero crossing. Re-checking the
	// count after each signal makes spurious or stale tokens harmless.
	for p.inflightN.Load() != 0 {
		select {
		case <-p.idleCh:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// The sweeper stops with the dispatch loops: external work has
	// drained, and the orchestrator/executor loops run their remaining
	// (internal, orphan) queues to empty without it.
	p.drainOnce.Do(func() {
		if p.sweepStop != nil {
			close(p.sweepStop)
		}
	})
	for _, o := range p.orchs {
		o.close()
	}
	for _, e := range p.execs {
		e.close()
	}
	p.loops.Wait()
	// Return carved credits so post-drain accounting (FreeCount,
	// VerifyIdle) sees the exact physical supply.
	p.tab.reclaimCredits()
	// Only executor goroutines park runners; with the loops gone the
	// channel is quiescent and every parked runner can be released.
	for {
		select {
		case rn := <-p.runners:
			close(rn.work)
		default:
			return nil
		}
	}
}
