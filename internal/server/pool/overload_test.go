// Overload chaos: drives a shed-enabled pool past 2x its PD capacity with
// a panicking function mixed into healthy nested-call traffic, and proves
// the tiered-degradation contract: external submissions are refused with
// ErrDegraded while the free-PD supply nears the internal reserve, nested
// (internal) calls are NEVER shed, healthy externals that do get in finish
// with bounded latency, and the post-drain invariants (idle PD table, no
// leaked goroutines) still hold.
//
// Named TestChaos* so CI's chaos job (-run 'TestChaos|...') picks it up.
package pool_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jord/internal/server/pool"
	"jord/internal/server/router"
)

func TestChaosOverloadTieredShedding(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 100
	}
	const workers = 32
	baseline := runtime.NumGoroutine()

	var internalShed atomic.Uint64 // nested calls refused by shed/saturation: must stay 0

	reg := router.New()
	reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
		time.Sleep(time.Millisecond) // hold the PD long enough to build pressure
		return ctx.Payload(), nil
	})
	reg.MustRegister("healthy", func(ctx router.Ctx) ([]byte, error) {
		got, err := ctx.Call("leaf", ctx.Payload())
		if errors.Is(err, pool.ErrDegraded) || errors.Is(err, pool.ErrSaturated) {
			internalShed.Add(1)
		}
		return got, err
	})
	reg.MustRegister("poison", func(ctx router.Ctx) ([]byte, error) {
		panic("poison: unconditional crash")
	})

	// A PD space sized so 2x-capacity load visits the shed threshold:
	// 12 PDs, reserve 2, margin 4 => externals refused while free <= 6.
	// Each healthy invocation holds 2 PDs at nested-call time (suspended
	// parent + leaf), so ~3 in-flight chains cross the threshold.
	p := pool.New(pool.Config{
		Executors:        4,
		Orchestrators:    2,
		JBSQBound:        2,
		ExternalQueueCap: 16,
		NumPDs:           12,
		PDReserve:        2,
		PDShedMargin:     4,
		SweepInterval:    time.Millisecond,
		ExecTimeout:      50 * time.Millisecond,
	}, reg)
	if got := p.ShedThreshold(); got != 6 {
		t.Fatalf("shed threshold = %d, want 6", got)
	}
	p.Start()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  []string
		healthyOK atomic.Uint64
		degraded  atomic.Uint64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte{byte(w), byte(w >> 1)}
			for i := 0; i < iters; i++ {
				fn := "healthy"
				if i%4 == 3 {
					fn = "poison"
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				start := time.Now()
				got, err := p.Invoke(ctx, fn, payload)
				d := time.Since(start)
				cancel()
				switch {
				case errors.Is(err, pool.ErrDegraded):
					degraded.Add(1)
				case fn == "healthy" && err == nil:
					healthyOK.Add(1)
					if !bytes.Equal(got, payload) {
						mu.Lock()
						failures = append(failures, fmt.Sprintf("healthy(%v) = %v: corrupted", payload, got))
						mu.Unlock()
					}
					mu.Lock()
					latencies = append(latencies, d)
					mu.Unlock()
				case fn == "poison" && err == nil:
					mu.Lock()
					failures = append(failures, "poison returned success")
					mu.Unlock()
				}
				// Saturation, deadline, and panic errors are expected storm
				// products; the invariants below are what must hold.
			}
		}(w)
	}
	wg.Wait()

	if n := internalShed.Load(); n != 0 {
		t.Errorf("internal (nested) calls were shed %d times: externals must degrade first", n)
	}
	if healthyOK.Load() == 0 {
		t.Error("no healthy invocation completed under overload")
	}
	st := p.Stats()
	if st.Shed.Load() == 0 {
		t.Error("tiered shedding never fired at 2x capacity")
	}
	if degraded.Load() == 0 {
		t.Error("no caller observed ErrDegraded")
	}
	if st.Shed.Load() < degraded.Load() {
		t.Errorf("Stats.Shed = %d < callers' degraded count %d", st.Shed.Load(), degraded.Load())
	}

	// Healthy-path p99 stays bounded: shedding keeps queues short, so
	// admitted requests finish promptly instead of aging in line. The bound
	// is generous (race detector, loaded CI) — the failure mode it guards
	// against is multi-second queue collapse.
	mu.Lock()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	mu.Unlock()
	if p99 > time.Second {
		t.Errorf("healthy p99 = %v under overload, want <= 1s", p99)
	}

	drainAndVerify(t, p, baseline)

	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
}

// TestErrPanickedClassification pins the error-wrapping contract the
// breaker's failure classifier depends on: a panicking body surfaces as
// ErrPanicked (with the panic text preserved), while queue saturation and
// degradation do NOT match it.
func TestErrPanickedClassification(t *testing.T) {
	reg := router.New()
	reg.MustRegister("boom", func(ctx router.Ctx) ([]byte, error) {
		panic("kaboom-classify")
	})
	p := pool.New(pool.Config{Executors: 1, NumPDs: 4}, reg)
	p.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = p.Drain(ctx)
	}()

	_, err := p.Invoke(context.Background(), "boom", nil)
	if !errors.Is(err, pool.ErrPanicked) {
		t.Fatalf("panic error %v does not match ErrPanicked", err)
	}
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("kaboom-classify")) {
		t.Fatalf("panic text lost: %v", err)
	}
	if errors.Is(pool.ErrSaturated, pool.ErrPanicked) || errors.Is(pool.ErrDegraded, pool.ErrPanicked) {
		t.Fatal("shed errors must not classify as panics")
	}
}
