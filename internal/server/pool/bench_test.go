package pool

import (
	"context"
	"testing"

	"jord/internal/mem/vmatable"
	"jord/internal/server/router"
)

// startBenchPool builds and starts a pool sized for benchmarking, torn down
// when the benchmark ends.
func startBenchPool(b *testing.B, cfg Config, register func(*router.Registry)) *Pool {
	b.Helper()
	reg := router.New()
	register(reg)
	p := New(cfg, reg)
	p.Start()
	b.Cleanup(func() {
		if err := p.Drain(context.Background()); err != nil {
			b.Errorf("drain: %v", err)
		}
	})
	return p
}

// BenchmarkInvoke measures the full external hot path — submit, dispatch,
// PD cget, code pcopy, ArgBuf pmove, continuation run, teardown, complete —
// for a trivial function. allocs/op here is the per-invocation fixed cost
// the paper's hardware reduces to ~120 ns; every release should push it
// down, never up.
func BenchmarkInvoke(b *testing.B) {
	p := startBenchPool(b, Config{Executors: 4, Orchestrators: 1, ExternalQueueCap: 4096},
		func(reg *router.Registry) {
			reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
				return ctx.Payload(), nil
			})
		})
	payload := []byte("benchmark-payload")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeParallel is BenchmarkInvoke under contention: many
// submitter goroutines against the shared PD table, stats, and queues.
func BenchmarkInvokeParallel(b *testing.B) {
	p := startBenchPool(b, Config{Executors: 4, Orchestrators: 2, ExternalQueueCap: 65536},
		func(reg *router.Registry) {
			reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
				return ctx.Payload(), nil
			})
		})
	payload := []byte("benchmark-payload")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := p.Invoke(ctx, "echo", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNestedCall measures a two-deep call chain: the parent suspends
// (cexit), the child rides the internal queue, and the parent resumes
// (center) — the §3.3/§3.4 path nested workloads live on.
func BenchmarkNestedCall(b *testing.B) {
	p := startBenchPool(b, Config{Executors: 4, Orchestrators: 1, ExternalQueueCap: 4096},
		func(reg *router.Registry) {
			reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
				return ctx.Payload(), nil
			})
			reg.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
				return ctx.Call("leaf", ctx.Payload())
			})
		})
	payload := []byte("benchmark-payload")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, "root", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDTable measures one cget/cput pair — the live analogue of the
// paper's Table 1 PD lifecycle cost.
func BenchmarkPDTable(b *testing.B) {
	tab := NewTable(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd, err := tab.Cget()
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Cput(pd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDTableParallel is the contended variant: every goroutine
// hammers cget/cput at once, the case the sharded free lists exist for.
func BenchmarkPDTableParallel(b *testing.B) {
	tab := NewTable(4096)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pd, err := tab.Cget()
			if err != nil {
				b.Fatal(err)
			}
			if err := tab.Cput(pd); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVMAPermCheck measures the grant + check + revoke cycle every
// invocation pays on its ArgBuf — the software stand-in for the VTE
// sub-array walk of Fig. 8.
func BenchmarkVMAPermCheck(b *testing.B) {
	tab := NewTable(64)
	pd, err := tab.Cget()
	if err != nil {
		b.Fatal(err)
	}
	v := tab.NewVMA(ExecutorPD, []byte("x"), vmatable.PermRW)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Pmove(ExecutorPD, pd, vmatable.PermRW); err != nil {
			b.Fatal(err)
		}
		if err := v.Check(pd, vmatable.PermR); err != nil {
			b.Fatal(err)
		}
		if err := v.Pmove(pd, ExecutorPD, vmatable.PermRW); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMALifecycle measures allocating a fresh ArgBuf, transferring it
// through an invocation PD, and releasing it — the per-request VMA churn.
func BenchmarkVMALifecycle(b *testing.B) {
	tab := NewTable(4096)
	payload := []byte("benchmark-payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd, err := tab.Cget()
		if err != nil {
			b.Fatal(err)
		}
		v := tab.NewVMA(ExecutorPD, payload, vmatable.PermRW)
		if err := v.Pmove(ExecutorPD, pd, vmatable.PermRW); err != nil {
			b.Fatal(err)
		}
		if err := v.Pmove(pd, ExecutorPD, vmatable.PermRW); err != nil {
			b.Fatal(err)
		}
		if err := tab.Cput(pd); err != nil {
			b.Fatal(err)
		}
	}
}
