package pool

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/mem/vmatable"
)

// executor is the live port of core.Executor: one worker goroutine with a
// bounded queue of dispatched-but-unstarted requests and a list of
// suspended continuations ready to resume. Resumptions have priority so
// in-flight work drains before new work starts (§3.4). The executor never
// blocks inside a function: invocations run as continuation goroutines
// that hand the "core" back when they finish or suspend on a nested call.
type executor struct {
	pool *Pool
	id   int
	orch *orchestrator

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*request
	resume []*continuation
	closed bool

	// qlen mirrors len(queue) for the orchestrators' lock-free JBSQ
	// probes (the live stand-in for the simulator's cross-core queue-
	// length loads).
	qlen atomic.Int32

	started   atomic.Uint64
	completed atomic.Uint64
	suspends  atomic.Uint64
}

func newExecutor(p *Pool, id int) *executor {
	e := &executor{pool: p, id: id}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// enqueue accepts a dispatched request (called by orchestrators, never
// while holding o.mu and e.mu together).
func (e *executor) enqueue(r *request) {
	e.mu.Lock()
	e.queue = append(e.queue, r)
	e.qlen.Store(int32(len(e.queue)))
	e.cond.Signal()
	e.mu.Unlock()
}

// readyResume queues a suspended continuation for resumption.
func (e *executor) readyResume(c *continuation) {
	e.mu.Lock()
	e.resume = append(e.resume, c)
	e.cond.Signal()
	e.mu.Unlock()
}

// wake re-checks the loop condition (a PD was freed).
func (e *executor) wake() {
	e.mu.Lock()
	e.cond.Signal()
	e.mu.Unlock()
}

func (e *executor) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// run is the executor loop: resume suspended continuations first, then
// start queued requests (only while PDs are available — suspended
// continuations hold theirs, cf. privlib.HasFreePDs), else sleep.
func (e *executor) run() {
	defer e.pool.loops.Done()
	e.mu.Lock()
	for {
		if len(e.resume) > 0 {
			c := e.resume[0]
			e.resume = e.resume[1:]
			e.mu.Unlock()
			e.resumeContinuation(c)
			e.mu.Lock()
			continue
		}
		if idx := e.nextRunnable(); idx >= 0 {
			r := e.queue[idx]
			e.queue = append(e.queue[:idx], e.queue[idx+1:]...)
			e.qlen.Store(int32(len(e.queue)))
			e.mu.Unlock()
			// Capacity freed: a stalled orchestrator can dispatch again.
			e.orch.capacityFreed()
			e.startInvocation(r)
			e.mu.Lock()
			continue
		}
		if e.closed && len(e.queue) == 0 && len(e.resume) == 0 {
			e.mu.Unlock()
			return
		}
		// Nothing runnable: empty queues, or queued work gated on PD
		// supply (a Cput or a resumption will wake us — resumptions are
		// what free PDs, so this cannot livelock).
		e.cond.Wait()
	}
}

// nextRunnable returns the index of the first queued request allowed to
// start under the current PD supply, or -1. Internal (nested) requests may
// take any free PD; external requests must leave PDReserve PDs behind for
// the children that suspended parents wait on — §3.3's internal priority
// extended from queue slots to the PD resource, so a PD-starved external
// at the head of the queue cannot block an internal behind it. The check
// here is advisory (lock-free against the table); Cget re-checks
// atomically and losers are requeued. Called with e.mu held.
func (e *executor) nextRunnable() int {
	if len(e.queue) == 0 {
		return -1
	}
	free := e.pool.tab.FreeCount()
	if free <= 0 {
		return -1
	}
	extOK := free > e.pool.cfg.PDReserve
	for i, r := range e.queue {
		if r.external && !extOK {
			continue
		}
		return i
	}
	return -1
}

// requeueFront puts a request back at the head of the queue (lost a PD
// race between the capacity check and Cget).
func (e *executor) requeueFront(r *request) {
	e.mu.Lock()
	e.queue = append([]*request{r}, e.queue...)
	e.qlen.Store(int32(len(e.queue)))
	e.mu.Unlock()
}

// startInvocation is the live Figure 4 flow: initialize the PD (code
// pcopy, ArgBuf pmove), launch the continuation goroutine (ccall), and —
// if it finishes without suspending — tear everything down.
func (e *executor) startInvocation(r *request) {
	p := e.pool

	// Deadline/cancellation check at dequeue: a request that died in the
	// queue is completed without running (the gateway already answered).
	if r.canceled.Load() {
		p.finish(r, context.Canceled)
		return
	}
	if !r.deadline.IsZero() && time.Now().After(r.deadline) {
		p.stats.Expired.Add(1)
		p.finish(r, context.DeadlineExceeded)
		return
	}

	reserve := 0
	if r.external {
		reserve = p.cfg.PDReserve
	}
	pd, err := p.tab.CgetAbove(reserve)
	if err != nil {
		// PD supply changed between the loop's capacity check and now;
		// put the request back and let the loop stall until a Cput.
		e.requeueFront(r)
		return
	}
	c := &continuation{
		req:      r,
		exec:     e,
		pd:       pd,
		yieldCh:  make(chan struct{}),
		resumeCh: make(chan struct{}),
	}

	// --- Initialize PD (Figure 4): share code, transfer the ArgBuf ---
	code := p.code[r.fn.ID]
	if err := code.Pcopy(ExecutorPD, pd, vmatable.PermRX); err != nil {
		_ = p.tab.Cput(pd)
		p.finish(r, err)
		return
	}
	if err := r.buf.Pmove(ExecutorPD, pd, vmatable.PermRW); err != nil {
		_ = code.Pmove(pd, ExecutorPD, vmatable.PermRX)
		_ = p.tab.Cput(pd)
		p.finish(r, err)
		return
	}

	e.started.Add(1)
	// --- Enter the PD (ccall): launch the continuation and lend it the
	// executor until it yields ---
	go c.run(p)
	<-c.yieldCh
	if c.finished {
		e.finishInvocation(c)
	}
	// Otherwise the continuation suspended on a nested call; it comes
	// back through the resume list when its child completes.
}

// resumeContinuation re-enters a suspended continuation (center) after its
// awaited child completed.
func (e *executor) resumeContinuation(c *continuation) {
	c.resumeCh <- struct{}{}
	<-c.yieldCh
	if c.finished {
		e.finishInvocation(c)
	}
}

// finishInvocation is the right half of Figure 4: write the outputs into
// the ArgBuf, transfer it back to the runtime domain, revoke the code
// grant, destroy the PD, then complete the request.
func (e *executor) finishInvocation(c *continuation) {
	p := e.pool
	r := c.req

	ferr := c.err
	if ferr == nil {
		// The function writes its outputs into the ArgBuf while its PD
		// still owns it.
		if err := r.buf.Write(c.pd, c.resp); err != nil {
			ferr = err
		}
	}
	// Transfer the ArgBuf (now holding outputs) back to the runtime
	// domain, and revoke the PD's code grant (pmove back onto the
	// executor domain's retained permission).
	if err := r.buf.Pmove(c.pd, ExecutorPD, vmatable.PermRW); err != nil && ferr == nil {
		ferr = err
	}
	if err := p.code[r.fn.ID].Pmove(c.pd, ExecutorPD, vmatable.PermRX); err != nil && ferr == nil {
		ferr = err
	}
	if err := p.tab.Cput(c.pd); err != nil && ferr == nil {
		ferr = err
	}
	e.completed.Add(1)
	p.finish(r, ferr)
}

// continuation is one executing function instance: its goroutine, its
// protection domain, and its nested-call state — the live analogue of
// core.Continuation. The yield/resume channels are the cexit/center
// handshake with the owning executor.
type continuation struct {
	req  *request
	exec *executor
	pd   PDID

	// yieldCh: continuation -> executor, "I finished or suspended".
	// resumeCh: executor -> continuation, "your child completed, go on".
	yieldCh  chan struct{}
	resumeCh chan struct{}

	mu       sync.Mutex
	waiting  *request   // child currently suspended on
	children []*request // Async cookies index into this

	finished bool
	resp     []byte
	err      error
}

// run executes the function body and hands the executor back. A panicking
// body is caught and surfaced as an invocation error — one function must
// not take down the worker (the whole point of the paper's isolation).
func (c *continuation) run(p *Pool) {
	defer func() {
		if rec := recover(); rec != nil {
			c.err = fmt.Errorf("function %s panicked: %v", c.req.fn.Name, rec)
		}
		c.finished = true
		c.yieldCh <- struct{}{}
	}()
	ctx := &Ctx{pool: p, cont: c}
	c.resp, c.err = c.req.fn.Body(ctx)
}
