package pool

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/mem/vmatable"
	"jord/internal/server/router"
	"jord/internal/server/trace"
)

// executor is the live port of core.Executor: one worker goroutine with a
// bounded queue of dispatched-but-unstarted requests and a list of
// suspended continuations ready to resume. Resumptions have priority so
// in-flight work drains before new work starts (§3.4). The executor never
// blocks inside a function: invocations run as continuations on pooled
// runner goroutines that hand the "core" back when they finish or suspend
// on a nested call.
type executor struct {
	pool *Pool
	id   int
	orch *orchestrator

	// pds is this executor's private PD free-list cache over the table's
	// sharded global pool — cget/cput usually touch only this list.
	pds *pdCache

	mu     sync.Mutex
	cond   *sync.Cond
	queue  deque[*request]
	resume deque[*continuation]
	closed bool

	// active tracks this executor's started-but-unfinished invocations
	// (running or suspended) for the ExecTimeout watchdog. Maintained only
	// when the watchdog is enabled, so the default hot path pays nothing.
	active []*continuation

	// qlen mirrors queue.Len() for the orchestrators' lock-free JBSQ
	// probes (the live stand-in for the simulator's cross-core queue-
	// length loads).
	qlen atomic.Int32

	started   atomic.Uint64
	completed atomic.Uint64
	suspends  atomic.Uint64
}

func newExecutor(p *Pool, id int) *executor {
	e := &executor{pool: p, id: id, pds: p.tab.newCache()}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// enqueue accepts a dispatched request (called by orchestrators, never
// while holding o.mu and e.mu together).
func (e *executor) enqueue(r *request) {
	e.mu.Lock()
	e.queue.PushBack(r)
	e.qlen.Store(int32(e.queue.Len()))
	e.cond.Signal()
	e.mu.Unlock()
}

// readyResume queues a suspended continuation for resumption.
func (e *executor) readyResume(c *continuation) {
	e.mu.Lock()
	e.resume.PushBack(c)
	e.cond.Signal()
	e.mu.Unlock()
}

// wake re-checks the loop condition (a PD was freed).
func (e *executor) wake() {
	e.mu.Lock()
	e.cond.Signal()
	e.mu.Unlock()
}

func (e *executor) close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// run is the executor loop: resume suspended continuations first, then
// start queued requests (only while PDs are available — suspended
// continuations hold theirs, cf. privlib.HasFreePDs), else sleep.
func (e *executor) run() {
	defer e.pool.loops.Done()
	e.mu.Lock()
	for {
		if c, ok := e.resume.PopFront(); ok {
			e.mu.Unlock()
			e.resumeContinuation(c)
			e.mu.Lock()
			continue
		}
		if idx := e.nextRunnable(); idx >= 0 {
			r := e.queue.RemoveAt(idx)
			e.qlen.Store(int32(e.queue.Len()))
			e.mu.Unlock()
			// Capacity freed: a stalled orchestrator can dispatch again.
			e.orch.capacityFreed()
			e.startInvocation(r)
			e.mu.Lock()
			continue
		}
		if e.closed && e.queue.Len() == 0 && e.resume.Len() == 0 {
			e.mu.Unlock()
			return
		}
		if e.queue.Len() > 0 {
			// About to stall on PD supply — but the supply may be sitting
			// as carved credits on idle executors' caches, invisible to
			// nextRunnable's FreeCount check. Pull every credit back first
			// so a stall only happens against the true physical count.
			e.pool.tab.reclaimCredits()
			// Queued work gated on PD supply. Register as a PD waiter,
			// then re-check: Cput increments the free counter before
			// reading the waiter count, so either our re-check sees the
			// new supply or the Cput sees our registration and wakes us —
			// no lost wakeup. We stay registered until we actually wake
			// (not merely until the re-check), so another executor's
			// re-check finding work can never consume our wakeup: the
			// count only drops when its owner stops waiting.
			e.pool.pdWaiters.Add(1)
			if e.nextRunnable() >= 0 {
				e.pool.pdWaiters.Add(-1)
				continue
			}
			e.cond.Wait()
			e.pool.pdWaiters.Add(-1)
			continue
		}
		// Nothing runnable: a dispatch, a resumption, or a Cput (via
		// pdWaiters) will wake us — resumptions are what free PDs, so
		// this cannot livelock.
		e.cond.Wait()
	}
}

// nextRunnable returns the index of the first queued request allowed to
// start under the current PD supply, or -1. Internal (nested) requests may
// take any free PD; external requests must leave PDReserve PDs behind for
// the children that suspended parents wait on — §3.3's internal priority
// extended from queue slots to the PD resource, so a PD-starved external
// at the head of the queue cannot block an internal behind it. The check
// here is advisory (one atomic load against the table); Cget re-checks
// atomically and losers are requeued. Called with e.mu held.
func (e *executor) nextRunnable() int {
	n := e.queue.Len()
	if n == 0 {
		return -1
	}
	free := e.pool.tab.FreeCount()
	if free <= 0 {
		return -1
	}
	extOK := free > e.pool.cfg.PDReserve
	for i := 0; i < n; i++ {
		if e.queue.At(i).external && !extOK {
			continue
		}
		return i
	}
	return -1
}

// requeueFront puts a request back at the head of the queue (lost a PD
// race between the capacity check and Cget).
func (e *executor) requeueFront(r *request) {
	e.mu.Lock()
	e.queue.PushFront(r)
	e.qlen.Store(int32(e.queue.Len()))
	e.mu.Unlock()
}

// startInvocation is the live Figure 4 flow: initialize the PD (ArgBuf
// pmove; code regions are global-RX VMAs, the VTE G bit, so no per-
// invocation code grant is needed), run the continuation on a pooled
// runner goroutine (ccall), and — if it finishes without suspending —
// tear everything down.
func (e *executor) startInvocation(r *request) {
	p := e.pool

	// Dequeue stamp: close the queue stage (submission -> pickup,
	// accumulating across PD-stall requeues via +=).
	tr := p.tr
	var tDeq int64
	if tr != nil {
		tDeq = tr.Now()
		r.span.Stages[trace.StageQueue] += tDeq - r.tMark
		r.tMark = tDeq
	}

	// Feed the adaptive admission loop: the external queue delay (gateway
	// submission -> executor pickup) is the signal CoDel steers on. Gated
	// on the hook so raw pools pay nothing; with tracing on it rides the
	// dequeue stamp instead of reading the clock again.
	if r.external {
		if obs := p.cfg.ObserveQueueDelay; obs != nil {
			if tr != nil {
				obs(time.Duration(tDeq - r.tSubmit))
			} else {
				obs(time.Since(r.arrival))
			}
		}
	}

	// Deadline/cancellation check at dequeue: a request that died in the
	// queue is completed without running (the gateway already answered).
	// Deadline first, matching the sweeper's classification — an expired
	// request is usually also marked canceled by Invoke's abandon path.
	if !r.deadline.IsZero() && time.Now().After(r.deadline) {
		p.finish(e.id, r, context.DeadlineExceeded)
		return
	}
	if r.canceled.Load() {
		p.finish(e.id, r, context.Canceled)
		return
	}

	reserve := 0
	if r.external {
		reserve = p.cfg.PDReserve
	}
	pd, err := p.tab.cgetCached(reserve, e.pds)
	if err != nil {
		// PD supply changed between the loop's capacity check and now;
		// put the request back and let the loop stall until a Cput.
		e.requeueFront(r)
		return
	}
	c := p.getCont()
	c.req = r
	c.exec = e
	c.pd = pd

	// --- Initialize PD (Figure 4): the function's code VMA is global RX
	// (every PD may execute it — the Fig. 8 G bit), so only the ArgBuf
	// ownership transfer remains per-invocation. ---
	if err := r.buf.Pmove(ExecutorPD, pd, vmatable.PermRW); err != nil {
		_ = p.tab.cputCached(pd, e.pds)
		p.putCont(c)
		p.finish(e.id, r, err)
		return
	}

	// PD-init stamp: cget + pmove done, the body is about to enter.
	if tr != nil {
		t := tr.Now()
		r.span.Stages[trace.StageInit] += t - r.tMark
		r.tMark = t
	}

	if p.cfg.ExecTimeout > 0 {
		c.startAt = time.Now()
		e.mu.Lock()
		e.active = append(e.active, c)
		e.mu.Unlock()
		p.sweepableAdd() // the watchdog needs sweeper passes while work runs
	}
	e.started.Add(1)
	// --- Enter the PD (ccall): hand the continuation to a pooled runner
	// goroutine and lend it the executor until it yields ---
	rn := p.getRunner()
	c.runner = rn
	rn.work <- c
	<-c.yieldCh
	if c.finished {
		e.finishInvocation(c)
	}
	// Otherwise the continuation suspended on a nested call; it comes
	// back through the resume list when its child completes.
}

// resumeContinuation re-enters a suspended continuation (center) after its
// awaited child completed.
func (e *executor) resumeContinuation(c *continuation) {
	c.resumeCh <- struct{}{}
	<-c.yieldCh
	if c.finished {
		e.finishInvocation(c)
	}
}

// finishInvocation is the right half of Figure 4: write the outputs into
// the ArgBuf, transfer it back to the runtime domain, destroy the PD, reap
// any children the body never Waited on, then complete the request and
// recycle the continuation and its runner.
func (e *executor) finishInvocation(c *continuation) {
	p := e.pool
	r := c.req

	// Exec-end stamp: everything from here to finish is teardown, closed
	// by finish's end-of-span clock read (no extra read for it).
	if tr := p.tr; tr != nil {
		t := tr.Now()
		r.span.Stages[trace.StageExec] += t - r.tMark
		r.tMark = t
	}

	ferr := c.err
	if ferr == nil {
		// The function writes its outputs into the ArgBuf while its PD
		// still owns it.
		if err := r.buf.Write(c.pd, c.resp); err != nil {
			ferr = err
		}
	}
	// Transfer the ArgBuf (now holding outputs) back to the runtime
	// domain and destroy the PD. The code region is global (G bit), so
	// there is no per-invocation grant to revoke.
	if err := r.buf.Pmove(c.pd, ExecutorPD, vmatable.PermRW); err != nil && ferr == nil {
		ferr = err
	}
	// Force-release state handles the body left held — un-Released read
	// snapshots and open Take transactions (discarded, the Groundhog
	// rollback) — strictly BEFORE the PD is destroyed: a recycled PD ID
	// must never inherit grants on store VMAs. Only the body's own runner
	// appends to holds, and its final yield handshake happens-before this,
	// so no lock is needed.
	for i, h := range c.holds {
		h.ReleaseHold()
		c.holds[i] = nil
	}
	c.holds = c.holds[:0]
	if err := p.tab.cputCached(c.pd, e.pds); err != nil && ferr == nil {
		ferr = err
	}
	e.completed.Add(1)
	if p.cfg.ExecTimeout > 0 {
		e.untrack(c)
		p.sweepableDone()
		if c.wdFlagged {
			r.span.Flagged = true // watchdog-flagged traces are always retained
		}
	}

	// Reap un-Waited children before the continuation can recycle — a
	// body that Asyncs and returns (or panics) must not leave children
	// whose finish would lock a recycled, reused continuation. Completed
	// children release here; in-flight ones are detached: marked orphaned
	// (their finish releases them and never resumes us) and canceled (so
	// queued ones die at dequeue and running ones can unwind via
	// Ctx.Err). The continuation itself is then recycled by the LAST
	// orphan's finish, keeping its mutex valid for every child that still
	// holds a parent pointer.
	// Fast path: no un-collected children and no Done watcher means no
	// other goroutine can be holding (or about to take) c.mu — both fields
	// are written only by the body's own runner, whose final yield
	// handshake happens-before this read. The common no-fault invocation
	// skips the lock entirely.
	if c.live == 0 && c.stopCh == nil {
		p.putRunner(c.runner)
		p.putCont(c)
		p.finish(e.id, r, ferr)
		return
	}

	c.mu.Lock()
	if ch := c.stopCh; ch != nil {
		// Stop the Ctx.Done watcher goroutine before anything recycles.
		close(ch)
		c.stopCh = nil
		c.doneCh = nil
	}
	detached := false
	if c.live > 0 {
		orphans := 0
		for i, ch := range c.children {
			if ch == nil {
				continue
			}
			if ch.completed {
				p.releaseRequest(ch)
				c.children[i] = nil
			} else {
				ch.orphaned = true
				ch.canceled.Store(true)
				orphans++
			}
		}
		if orphans > 0 {
			c.orphans = orphans
			c.detached = true
			detached = true
			p.stats.Orphaned.Add(uint64(orphans))
		}
	}
	// Capture the runner before releasing c.mu: once detached, the LAST
	// orphan's finish may recycle c (putCont nils c.runner) the moment
	// the lock drops, racing an unlocked read of the field.
	runner := c.runner
	c.mu.Unlock()

	// The runner finished its final yield and is parked on its work
	// channel again; re-pool it, then recycle the continuation (unless
	// detached — see above).
	p.putRunner(runner)
	if !detached {
		p.putCont(c)
	}
	p.finish(e.id, r, ferr)
}

// untrack removes a finishing continuation from the watchdog's active list.
func (e *executor) untrack(c *continuation) {
	e.mu.Lock()
	for i, a := range e.active {
		if a == c {
			last := len(e.active) - 1
			e.active[i] = e.active[last]
			e.active[last] = nil
			e.active = e.active[:last]
			break
		}
	}
	e.mu.Unlock()
}

// flagStuck flags (once per invocation) every active invocation that
// started before cut — the ExecTimeout watchdog scan, called by the pool
// sweeper while tracked invocations keep it armed. Flagging is an
// operator signal (Stats.Watchdog, per-function counters, /varz), not a
// kill: Go cannot preempt a spinning body, so teardown stays cooperative.
func (e *executor) flagStuck(cut time.Time) {
	p := e.pool
	e.mu.Lock()
	for _, c := range e.active {
		if !c.wdFlagged && c.startAt.Before(cut) {
			c.wdFlagged = true
			p.stats.Watchdog.Add(1)
			if fs := p.stats.perFunc[c.req.fn.Name]; fs != nil {
				fs.Watchdog.Add(1)
			}
			if cb := p.cfg.OnWatchdog; cb != nil {
				cb(c.req.fn.Name)
			}
			if tr := p.tr; tr != nil {
				// Freeze a flight-recorder incident: a stuck body holding
				// a PD and runner is exactly the state worth forensics.
				// Rate-limited inside; the capture reads only atomics and
				// trace-internal locks (safe under e.mu).
				tr.TripWatchdog(c.req.fn.Name)
			}
		}
	}
	e.mu.Unlock()
}

// runner is a parked goroutine that executes continuations. Instead of
// spawning a goroutine per invocation, executors hand continuations to
// pooled runners over a channel (park/unpark instead of spawn/exit); a
// runner whose continuation suspends stays bound to it until the final
// resume, exactly as the invocation-private goroutine did.
type runner struct {
	work chan *continuation
}

// loop executes continuations until the pool closes the work channel.
// After execute's final yieldCh send, the runner touches nothing of the
// continuation — the executor re-pools the runner (and recycles the
// continuation) on its side of the handshake.
func (rn *runner) loop(p *Pool) {
	for c := range rn.work {
		c.execute(p)
	}
}

// continuation is one executing function instance: its runner goroutine,
// its protection domain, and its nested-call state — the live analogue of
// core.Continuation. The yield/resume channels are the cexit/center
// handshake with the owning executor. Continuations are recycled through
// a pool; their channels and children slice survive reuse.
type continuation struct {
	req    *request
	exec   *executor
	pd     PDID
	runner *runner

	// yieldCh: continuation -> executor, "I finished or suspended".
	// resumeCh: executor -> continuation, "your child completed, go on".
	yieldCh  chan struct{}
	resumeCh chan struct{}

	mu       sync.Mutex
	waiting  *request   // child currently suspended on
	children []*request // Async cookies index into this
	live     int        // non-nil children entries (submitted, not collected)

	// holds tracks state handles (snapshots, open transactions) the body
	// obtained, for force-release at teardown. Appended only by the body's
	// runner, read by finishInvocation after the final yield handshake —
	// no lock needed. Capacity recycles with the continuation.
	holds []router.StateHold

	// detached/orphans track teardown with in-flight un-Waited children:
	// finishInvocation leaves the continuation un-pooled and the last
	// orphan's finish recycles it (guarded by mu).
	detached bool
	orphans  int

	// doneCh/stopCh back Ctx.Done: lazily created on first call (guarded
	// by mu); stopCh closing at finishInvocation retires the watcher
	// goroutine before any recycling.
	doneCh chan struct{}
	stopCh chan struct{}

	// startAt/wdFlagged are the ExecTimeout watchdog state, maintained
	// only when the watchdog is on (guarded by exec.mu via the active
	// list).
	startAt   time.Time
	wdFlagged bool

	finished bool
	resp     []byte
	err      error

	// ctx is the invocation's programming interface, embedded so entering
	// a function allocates nothing.
	ctx Ctx
}

// execute runs the function body and hands the executor back. A panicking
// body is caught and surfaced as an invocation error — one function must
// not take down the worker (the whole point of the paper's isolation).
func (c *continuation) execute(p *Pool) {
	defer func() {
		if rec := recover(); rec != nil {
			c.err = fmt.Errorf("%w: %s: %v", ErrPanicked, c.req.fn.Name, rec)
		}
		c.finished = true
		c.yieldCh <- struct{}{}
	}()
	c.ctx.pool = p
	c.ctx.cont = c
	c.resp, c.err = c.req.fn.Body(&c.ctx)
}
