// Regression tests for the request-lifecycle holes this runtime closes:
// fire-and-forget Asyncs (orphan reaping), Wait after the deadline passed
// (cancellation cascade), Drain racing Invoke (WaitGroup ordering), queue
// sweeping of dead requests, cooperative cancellation via Ctx.Err/Done,
// and the ExecTimeout watchdog.
package pool

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"jord/internal/server/router"
)

// waitFor polls cond for up to 5s — lifecycle teardown (orphan finishes,
// watcher exits) is asynchronous with the external response.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A body that Asyncs a child and returns without Wait must not leak the
// child: the runtime detaches it (Orphaned counter), lets it finish, and
// reclaims every PD.
func TestFireAndForgetAsyncReturn(t *testing.T) {
	release := make(chan struct{})
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("child", func(ctx router.Ctx) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done(): // orphaning cancels the child; unwind either way
			}
			return []byte("late"), nil
		})
		reg.MustRegister("parent", func(ctx router.Ctx) ([]byte, error) {
			if _, err := ctx.Async("child", nil); err != nil {
				return nil, err
			}
			return []byte("gone"), nil
		})
	})
	got, err := p.Invoke(context.Background(), "parent", nil)
	if err != nil || string(got) != "gone" {
		t.Fatalf("parent: %q %v", got, err)
	}
	// Orphan accounting happens before the parent's completion is
	// published, so the counter is already visible here.
	if n := p.Stats().Orphaned.Load(); n != 1 {
		t.Fatalf("orphaned = %d, want 1", n)
	}
	close(release)
	waitFor(t, "orphan PD reclaim", func() bool { return p.Table().LivePDs() == 0 })
}

// Same hole, uglier exit: the parent panics with the child in flight. The
// panic surfaces as the invocation error AND the child is still reaped.
func TestFireAndForgetAsyncPanic(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("child", func(ctx router.Ctx) ([]byte, error) {
			for ctx.Err() == nil {
				time.Sleep(time.Millisecond)
			}
			return nil, ctx.Err()
		})
		reg.MustRegister("parent", func(ctx router.Ctx) ([]byte, error) {
			if _, err := ctx.Async("child", nil); err != nil {
				return nil, err
			}
			panic("parent bailed")
		})
	})
	_, err := p.Invoke(context.Background(), "parent", nil)
	if err == nil || !strings.Contains(err.Error(), "parent bailed") {
		t.Fatalf("parent panic should surface: %v", err)
	}
	if n := p.Stats().Orphaned.Load(); n != 1 {
		t.Fatalf("orphaned = %d, want 1", n)
	}
	waitFor(t, "orphan PD reclaim after panic", func() bool { return p.Table().LivePDs() == 0 })
}

// Wait called after the inherited deadline passed must fail immediately
// with DeadlineExceeded and cascade cancellation to the outstanding child
// (which then unwinds cooperatively) — no PD may stay held.
func TestWaitAfterDeadline(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
			for ctx.Err() == nil {
				time.Sleep(time.Millisecond)
			}
			return nil, ctx.Err()
		})
		reg.MustRegister("parent", func(ctx router.Ctx) ([]byte, error) {
			ck, err := ctx.Async("leaf", nil)
			if err != nil {
				return nil, err
			}
			dl, ok := ctx.Deadline()
			if !ok {
				return nil, errors.New("no inherited deadline")
			}
			time.Sleep(time.Until(dl) + 10*time.Millisecond)
			return ctx.Wait(ck)
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := p.Invoke(ctx, "parent", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	waitFor(t, "cascade teardown", func() bool { return p.Table().LivePDs() == 0 })
	st := p.Stats()
	if st.Expired.Load() == 0 {
		t.Error("parent expiry not counted")
	}
	if st.Canceled.Load() == 0 {
		t.Error("leaf cancellation not counted")
	}
}

// Drain racing a stampede of Invokes: every request either completes
// normally or is rejected with ErrDraining — never stranded in a queue
// nobody services (the Add-before-check WaitGroup ordering).
func TestConcurrentDrainInvoke(t *testing.T) {
	reg := router.New()
	reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) { return ctx.Payload(), nil })
	p := New(Config{Executors: 4, Orchestrators: 2, ExternalQueueCap: 1024}, reg)
	p.Start()

	const n = 300
	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := p.Invoke(context.Background(), "echo", []byte("x")); err != nil && !errors.Is(err, ErrDraining) {
				errs <- err
			}
		}()
	}
	close(start)
	time.Sleep(500 * time.Microsecond) // let some Invokes land mid-flight
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Requests whose deadline expires while still queued behind a wedged
// executor are reaped by the background sweeper — their inflight slots
// release without waiting for a dequeue that may never come.
func TestQueueSweepExpiry(t *testing.T) {
	release := make(chan struct{})
	p := startPool(t, Config{Executors: 1, Orchestrators: 1, JBSQBound: 1, ExternalQueueCap: 64,
		SweepInterval: time.Millisecond},
		func(reg *router.Registry) {
			reg.MustRegister("block", func(ctx router.Ctx) ([]byte, error) { <-release; return nil, nil })
			reg.MustRegister("fast", func(ctx router.Ctx) ([]byte, error) { return nil, nil })
		})
	go p.Invoke(context.Background(), "block", nil) //nolint:errcheck
	time.Sleep(10 * time.Millisecond)               // blocker owns the only executor

	const n = 4
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			_, err := p.Invoke(ctx, "fast", nil)
			errCh <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errCh; !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("queued request: %v, want DeadlineExceeded", err)
		}
	}
	// The proof the SWEEPER did it (not a dequeue): the executor never
	// freed up, yet the requests were finished out of the queues.
	waitFor(t, "sweeper reap", func() bool { return p.Stats().Swept.Load() > 0 })
	if got := p.Stats().Expired.Load(); got == 0 {
		t.Error("expired requests not counted")
	}
	close(release)
}

// A body blocked on Ctx.Done unwinds promptly when the external caller
// abandons the request, and the pool counts the cancellation.
func TestDoneObservesAbandon(t *testing.T) {
	entered := make(chan struct{}, 1)
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("waiter", func(ctx router.Ctx) ([]byte, error) {
			entered <- struct{}{}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return nil, errors.New("cancellation never observed")
			}
		})
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { <-entered; cancel() }()
	if _, err := p.Invoke(ctx, "waiter", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	waitFor(t, "canceled body teardown", func() bool {
		return p.Stats().Canceled.Load() >= 1 && p.Table().LivePDs() == 0
	})
}

// Ctx.Err surfaces the inherited deadline inside a still-running body.
func TestErrObservesDeadline(t *testing.T) {
	p := startPool(t, Config{Executors: 1, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("poller", func(ctx router.Ctx) ([]byte, error) {
			for i := 0; i < 5000; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				time.Sleep(time.Millisecond)
			}
			return nil, errors.New("deadline never observed")
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Invoke(ctx, "poller", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	waitFor(t, "expired body teardown", func() bool { return p.Table().LivePDs() == 0 })
}

// An invocation alive past ExecTimeout is flagged exactly once, on both
// the pool-wide and the per-function watchdog counters.
func TestWatchdogFlagsStuck(t *testing.T) {
	p := startPool(t, Config{Executors: 1, Orchestrators: 1,
		SweepInterval: time.Millisecond, ExecTimeout: 5 * time.Millisecond},
		func(reg *router.Registry) {
			reg.MustRegister("stuck", func(ctx router.Ctx) ([]byte, error) {
				time.Sleep(40 * time.Millisecond) // ignores cancellation
				return []byte("done"), nil
			})
		})
	got, err := p.Invoke(context.Background(), "stuck", nil)
	if err != nil || string(got) != "done" {
		t.Fatalf("stuck: %q %v", got, err)
	}
	if n := p.Stats().Watchdog.Load(); n != 1 {
		t.Fatalf("Stats.Watchdog = %d, want 1 (flag must fire once, not per tick)", n)
	}
	if n := p.Stats().FuncStats("stuck").Watchdog.Load(); n != 1 {
		t.Fatalf("per-function watchdog = %d, want 1", n)
	}
}
