package pool

import (
	"sync"
	"time"
)

// orchestrator is the live port of core.Orchestrator: it owns an external
// and an internal request queue and JBSQ-dispatches into its executor
// group. Internal (nested) requests have absolute priority and bypass the
// JBSQ bound — §3.3's deadlock avoidance: a saturated system keeps
// dispatching the children its suspended parents are waiting on.
type orchestrator struct {
	pool  *Pool
	id    int
	group []*executor

	mu     sync.Mutex
	cond   *sync.Cond
	extQ   deque[*request]
	intQ   deque[*request]
	closed bool

	// rr rotates the JBSQ scan's starting point so ties spread across the
	// group instead of always landing on the first executor.
	rr int
}

func newOrchestrator(p *Pool, id int) *orchestrator {
	o := &orchestrator{pool: p, id: id}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// submitExternal enqueues an external request, applying the bounded-queue
// admission check (ErrSaturated -> the gateway's 429).
func (o *orchestrator) submitExternal(r *request) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed || o.pool.draining.Load() {
		return ErrDraining
	}
	if o.extQ.Len() >= o.pool.cfg.ExternalQueueCap {
		return ErrSaturated
	}
	o.extQ.PushBack(r)
	o.cond.Signal()
	return nil
}

// submitInternal enqueues a nested request from a function running on one
// of this orchestrator's executors. The internal queue is unbounded:
// rejecting it would deadlock the suspended parent (§3.3).
func (o *orchestrator) submitInternal(r *request) {
	o.mu.Lock()
	o.intQ.PushBack(r)
	o.cond.Signal()
	o.mu.Unlock()
}

// capacityFreed is called by executors after each dequeue: a stalled
// orchestrator (all queues at the JBSQ bound) re-probes. Signal and Wait
// both run under o.mu, so the wakeup cannot be lost between the probe and
// the Wait.
func (o *orchestrator) capacityFreed() {
	o.mu.Lock()
	o.cond.Signal()
	o.mu.Unlock()
}

func (o *orchestrator) close() {
	o.mu.Lock()
	o.closed = true
	o.cond.Broadcast()
	o.mu.Unlock()
}

func (o *orchestrator) depths() (ext, internal int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.extQ.Len(), o.intQ.Len()
}

// sweep removes requests that died before dispatch — deadline already
// expired, or caller gone (canceled) — from both queues and appends them
// to dead. The caller finishes the dead outside o.mu (finish takes parent
// locks for nested requests). Without this, a dead request on a saturated
// worker occupies a queue slot until an executor happens to dequeue it —
// potentially forever for a PD-gated external behind a stuck body.
func (o *orchestrator) sweep(dead []*request, now time.Time) []*request {
	o.mu.Lock()
	for _, q := range [2]*deque[*request]{&o.extQ, &o.intQ} {
		for i := 0; i < q.Len(); {
			r := q.At(i)
			if r.canceled.Load() || (!r.deadline.IsZero() && now.After(r.deadline)) {
				dead = append(dead, q.RemoveAt(i))
				continue
			}
			i++
		}
	}
	o.mu.Unlock()
	return dead
}

// run is the dispatch loop: pick the next request — internal queue first —
// then JBSQ it into the group. The mutex is held across the probe so an
// executor's capacityFreed cannot slip between a failed probe and the
// Wait; it is released around the actual enqueue to keep the executor and
// orchestrator locks disjoint (no lock-order cycles).
func (o *orchestrator) run() {
	defer o.pool.loops.Done()
	o.mu.Lock()
	for {
		if o.closed && o.intQ.Len() == 0 && o.extQ.Len() == 0 {
			o.mu.Unlock()
			return
		}
		var r *request
		internal := false
		switch {
		case o.intQ.Len() > 0:
			r, internal = o.intQ.At(0), true
		case o.extQ.Len() > 0:
			r = o.extQ.At(0)
		default:
			o.cond.Wait()
			continue
		}

		target := o.jbsq(internal)
		if target == nil {
			// Every executor queue is at the bound: wait for a dequeue
			// (capacityFreed) or a new internal arrival.
			o.cond.Wait()
			continue
		}

		// Pop from the owning queue, then hand off outside the lock.
		if internal {
			o.intQ.PopFront()
		} else {
			o.extQ.PopFront()
		}
		o.mu.Unlock()
		target.enqueue(r)
		o.pool.stats.Dispatched.AddShard(o.id, 1)
		o.mu.Lock()
	}
}

// jbsq scans the executor group and returns the member with the shortest
// queue (Join-Bounded-Shortest-Queue). External requests only dispatch
// below the JBSQ bound; internal requests ignore it (bypassBound). The
// queue lengths are atomic reads — like the simulator's cross-core probe
// loads, they are racy against concurrent enqueues by other orchestrators,
// which bounds (not eliminates) queue depth exactly as real JBSQ does.
func (o *orchestrator) jbsq(bypassBound bool) *executor {
	var best *executor
	bestLen := int32(1 << 30)
	o.rr++
	for i := range o.group {
		e := o.group[(o.rr+i)%len(o.group)]
		if l := e.qlen.Load(); l < bestLen {
			bestLen, best = l, e
		}
	}
	if !bypassBound && best != nil && bestLen >= int32(o.pool.cfg.JBSQBound) {
		return nil
	}
	return best
}
