//go:build race

package pool

// race reports whether the race detector instruments this build; its
// allocations disqualify allocation-count assertions.
const race = true
