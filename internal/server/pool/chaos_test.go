// Fault-injection chaos suite: drives the live pool's public API with the
// faultfn vocabulary — panicking bodies, fire-and-forget Asyncs, stuck
// sleepers, abandoning callers, deep nesting, PD pressure — and then
// proves the request-lifecycle invariants hold once the dust settles:
// after Drain, zero live PDs (every PD accounted for exactly once across
// the free lists), zero leaked goroutines, and zero recycled-object
// aliasing (every validated result matched its payload).
//
// The suite is seeded and all per-job randomness is drawn on one
// goroutine, so a failing mix replays. Run it the way CI does:
//
//	go test -race -short -run 'TestChaos' ./internal/server/pool
package pool_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"jord/internal/server/pool"
	"jord/internal/server/pool/faultfn"
	"jord/internal/server/router"
	"jord/internal/server/state"
)

// chaosJob is one pre-rolled invocation: which fault body, its payload,
// how patient the caller is, and whether the caller walks away mid-flight.
type chaosJob struct {
	fn        string
	payload   []byte
	deadline  time.Duration
	abandonAt time.Duration // 0 = caller waits the deadline out
}

func TestChaosMixedFaults(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 100
	}
	const workers = 8
	baseline := runtime.NumGoroutine()

	reg := router.New()
	faultfn.RegisterAll(reg)
	// Small PD space (but above the worst case of `workers` concurrent
	// depth-6 chains, 7 PDs each, so suspended holders can always make
	// progress), fast sweep, tight watchdog: every lifecycle mechanism
	// added for this suite is hot.
	p := pool.New(pool.Config{
		Executors:        4,
		Orchestrators:    2,
		JBSQBound:        2,
		ExternalQueueCap: 64,
		NumPDs:           64,
		SweepInterval:    time.Millisecond,
		ExecTimeout:      10 * time.Millisecond,
	}, reg)
	p.Start()

	rng := rand.New(rand.NewSource(20250806))
	names := faultfn.Names()

	var (
		mu       sync.Mutex
		failures []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	jobs := make(chan chaosJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				ctx, cancel := context.WithTimeout(context.Background(), j.deadline)
				if j.abandonAt > 0 {
					time.AfterFunc(j.abandonAt, cancel)
				}
				got, err := p.Invoke(ctx, j.fn, j.payload)
				cancel()
				switch {
				case err != nil && strings.Contains(err.Error(), "aliasing"):
					// A validating body saw someone else's bytes: the exact
					// recycled-object corruption this suite exists to catch.
					fail("%s(%v): %v", j.fn, j.payload, err)
				case err == nil && (j.fn == "echo" || j.fn == "fan") && !bytes.Equal(got, j.payload):
					fail("%s(%v) = %v: result corrupted", j.fn, j.payload, got)
				}
				// Every other error is an expected storm product: deadlines,
				// abandons, panics-turned-500s, saturation.
			}
		}()
	}

	for i := 0; i < iters; i++ {
		var j chaosJob
		// Weight the validating bodies up so aliasing has dense coverage.
		if rng.Intn(3) == 0 {
			j.fn = []string{"echo", "fan"}[rng.Intn(2)]
		} else {
			j.fn = names[rng.Intn(len(names))]
		}
		j.payload = make([]byte, rng.Intn(7))
		for k := range j.payload {
			j.payload[k] = byte(rng.Intn(25)) // sleeps ≤ 24ms, chains ≤ depth 6
		}
		j.deadline = time.Duration(5+rng.Intn(40)) * time.Millisecond
		if rng.Intn(4) == 0 {
			j.abandonAt = time.Duration(1+rng.Intn(8)) * time.Millisecond
		}
		jobs <- j
	}
	close(jobs)
	wg.Wait()

	// Deterministic tail: guarantee each lifecycle path fired at least once
	// no matter how the random mix above played out.
	if _, err := p.Invoke(context.Background(), "forget", []byte{3}); err != nil {
		t.Errorf("forget: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "forgetboom", []byte{3}); err == nil ||
		!strings.Contains(err.Error(), "forgetboom") {
		t.Errorf("forgetboom should surface its panic, got %v", err)
	}
	if _, err := p.Invoke(context.Background(), "stuck", []byte{40}); err != nil {
		t.Errorf("stuck: %v", err)
	}

	drainAndVerify(t, p, baseline)

	st := p.Stats()
	if st.Completed.Load() == 0 {
		t.Error("chaos run completed nothing")
	}
	if st.Orphaned.Load() == 0 {
		t.Error("orphan reaping never fired (forget ran above)")
	}
	if st.Watchdog.Load() == 0 {
		t.Error("watchdog never flagged the stuck body")
	}

	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
}

// TestChaosStateful runs the storm against a pool with the shared-state
// tier attached, mixing the stateful fault bodies (panics with open
// transactions and held snapshots, rude sleepers that return with a tx
// open, snapshot pile-ups that are never released) with the lifecycle
// faults, under tight deadlines and abandoning callers. The settle-down
// invariant is the one ISSUE 6 demands: after Drain the store has zero
// outstanding handles, zero taken keys, and zero grants besides its own
// resident ownership — every state-held PD grant the bodies leaked was
// mopped up by invocation teardown.
func TestChaosStateful(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 100
	}
	const workers = 8
	baseline := runtime.NumGoroutine()

	reg := router.New()
	faultfn.RegisterAll(reg)
	p := pool.New(pool.Config{
		Executors:        4,
		Orchestrators:    2,
		JBSQBound:        2,
		ExternalQueueCap: 64,
		NumPDs:           64,
		SweepInterval:    time.Millisecond,
		ExecTimeout:      10 * time.Millisecond,
	}, reg)
	// Low promotion threshold so the storm crosses the global-RO
	// promote/demote boundary constantly, with readers in flight.
	st, err := state.New(state.Config{PromoteAfter: 4}, p.Table())
	if err != nil {
		t.Fatal(err)
	}
	p.SetState(st)
	p.Start()

	rng := rand.New(rand.NewSource(20250807))
	stateful := []string{"stateboom", "statestuck", "stateforget", "staterw"}
	names := faultfn.Names()

	var (
		mu       sync.Mutex
		failures []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	jobs := make(chan chaosJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				ctx, cancel := context.WithTimeout(context.Background(), j.deadline)
				if j.abandonAt > 0 {
					time.AfterFunc(j.abandonAt, cancel)
				}
				_, err := p.Invoke(ctx, j.fn, j.payload)
				cancel()
				if err != nil && strings.Contains(err.Error(), "aliasing") {
					// staterw (or a validating lifecycle body) read someone
					// else's bytes through the state tier.
					fail("%s(%v): %v", j.fn, j.payload, err)
				}
			}
		}()
	}

	for i := 0; i < iters; i++ {
		var j chaosJob
		// Half the mix is stateful so every teardown path (discard open tx,
		// release piled-up grants, both under panic and under kill) gets
		// dense coverage; the other half keeps the lifecycle storm alive
		// around it.
		if rng.Intn(2) == 0 {
			j.fn = stateful[rng.Intn(len(stateful))]
		} else {
			j.fn = names[rng.Intn(len(names))]
		}
		j.payload = make([]byte, 1+rng.Intn(6))
		for k := range j.payload {
			j.payload[k] = byte(rng.Intn(25))
		}
		j.deadline = time.Duration(5+rng.Intn(40)) * time.Millisecond
		if rng.Intn(4) == 0 {
			j.abandonAt = time.Duration(1+rng.Intn(8)) * time.Millisecond
		}
		jobs <- j
	}
	close(jobs)
	wg.Wait()

	// Deterministic tail: each stateful teardown path fires at least once
	// regardless of how the random mix played out.
	if _, err := p.Invoke(context.Background(), "stateboom", []byte{1}); err == nil ||
		!strings.Contains(err.Error(), "stateboom") {
		t.Errorf("stateboom should surface its panic, got %v", err)
	}
	if _, err := p.Invoke(context.Background(), "statestuck", []byte{2, 40}); err != nil &&
		!strings.Contains(err.Error(), "taken") {
		t.Errorf("statestuck: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "stateforget", []byte{3}); err != nil {
		t.Errorf("stateforget: %v", err)
	}
	if got, err := p.Invoke(context.Background(), "staterw", []byte{4}); err != nil {
		t.Errorf("staterw: %v", err)
	} else if !bytes.Equal(got, []byte{4}) {
		t.Errorf("staterw = %v, want [4]", got)
	}

	drainAndVerify(t, p, baseline, func() error {
		if err := st.VerifyIdle(); err != nil {
			return fmt.Errorf("state store not idle after drain: %w", err)
		}
		return st.Close()
	})

	ss := st.StatsSnapshot()
	if ss.Takes == 0 || ss.Gets == 0 {
		t.Errorf("stateful mix never hit the store: %+v", ss)
	}
	if ss.Discards == 0 {
		t.Error("teardown never discarded an open transaction (stateboom/statestuck ran above)")
	}
	if ss.Outstanding != 0 {
		t.Errorf("%d state handles outstanding after drain", ss.Outstanding)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
}

// TestChaosPDStarvation hammers a PD space sized barely above the depth-1
// progress guarantee (reserve rule, pool.Config.PDReserve) with
// validating fan-outs and abandoning callers, so every invocation fights
// through the cget stall/wake path while results must still come back
// uncorrupted.
func TestChaosPDStarvation(t *testing.T) {
	rounds := 50
	if testing.Short() {
		rounds = 15
	}
	const workers = 8
	baseline := runtime.NumGoroutine()

	reg := router.New()
	faultfn.RegisterAll(reg)
	p := pool.New(pool.Config{
		Executors:     4,
		Orchestrators: 1,
		NumPDs:        6,
		SweepInterval: time.Millisecond,
	}, reg)
	p.Start()

	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte{byte(w), byte(w + 1), byte(w + 2), byte(w + 3)}
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				got, err := p.Invoke(ctx, "fan", payload)
				cancel()
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %w", w, i, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("worker %d round %d: fan = %v, want %v", w, i, got, payload)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	drainAndVerify(t, p, baseline)
}

// drainAndVerify shuts the pool down and asserts the post-drain
// invariants: Drain converges, the PD table is exactly idle (free count
// equals capacity and every PD sits on exactly one free list), and the
// process goroutine count returns to its pre-pool baseline. Any post
// hooks run between Drain and the table check — a store rig uses them to
// verify and close its state tier, whose resident PD would otherwise
// (correctly) fail the idle check.
func drainAndVerify(t *testing.T, p *pool.Pool, baseline int, post ...func() error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, fn := range post {
		if err := fn(); err != nil {
			t.Error(err)
		}
	}
	if err := p.Table().VerifyIdle(); err != nil {
		t.Errorf("PD table not idle after drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		// Slack of 3 over baseline: runtime-internal goroutines (timer
		// scavenger, race runtime) come and go independent of the pool.
		if n = runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutines leaked: %d live vs %d baseline\n%s", n, baseline, buf)
}
