package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"jord/internal/server/router"
	"jord/internal/server/trace"
)

// TestTraceSpansPublished proves the tentpole end to end on the pool path:
// every invocation lands in the recorder with its lifecycle stages stamped
// and its outcome classified, with tracing ON BY DEFAULT (no opt-in knob
// on the serving path).
func TestTraceSpansPublished(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Payload(), nil
		})
		reg.MustRegister("boom", func(ctx router.Ctx) ([]byte, error) {
			return nil, errors.New("deliberate")
		})
	})
	rec := p.Trace()
	if rec == nil {
		t.Fatal("tracing must be on by default")
	}

	for i := 0; i < 8; i++ {
		if _, err := p.Invoke(context.Background(), "echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Invoke(context.Background(), "boom", nil); err == nil {
		t.Fatal("boom should fail")
	}

	doc := rec.Tracez("", 0)
	if len(doc.Recent) != 9 {
		t.Fatalf("recent = %d spans, want 9", len(doc.Recent))
	}
	var okSeen, errSeen bool
	for _, v := range doc.Recent {
		switch v.Func {
		case "echo":
			okSeen = true
			if v.Outcome != "ok" {
				t.Fatalf("echo outcome = %q", v.Outcome)
			}
			for _, stage := range []string{"queue", "exec", "teardown"} {
				if v.Stages[stage] <= 0 {
					t.Fatalf("echo span missing stage %q: %v", stage, v.Stages)
				}
			}
			if v.DurNS <= 0 {
				t.Fatalf("echo span dur = %d", v.DurNS)
			}
		case "boom":
			errSeen = true
			if v.Outcome != "error" {
				t.Fatalf("boom outcome = %q", v.Outcome)
			}
		}
	}
	if !okSeen || !errSeen {
		t.Fatalf("missing spans: ok=%v err=%v", okSeen, errSeen)
	}

	// The errored invocation also landed in the error ring.
	if len(doc.Errors) != 1 || doc.Errors[0].Func != "boom" {
		t.Fatalf("errors = %+v, want the one boom span", doc.Errors)
	}

	// Stage histograms saw every span.
	hists := rec.StageHists()
	if got := hists[trace.StageExec].Count; got != 9 {
		t.Fatalf("exec hist count = %d, want 9", got)
	}
}

// TestTraceNestedLinkage checks parent/child span identity across Async:
// the parent takes an explicit ID at its first child, every child records
// it as ParentID, and the parent counts its children.
func TestTraceNestedLinkage(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Payload(), nil
		})
		reg.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
			ck1, err := ctx.Async("leaf", []byte("a"))
			if err != nil {
				return nil, err
			}
			ck2, err := ctx.Async("leaf", []byte("b"))
			if err != nil {
				return nil, err
			}
			if _, err := ctx.Wait(ck1); err != nil {
				return nil, err
			}
			return ctx.Wait(ck2)
		})
	})
	if _, err := p.Invoke(context.Background(), "root", []byte("x")); err != nil {
		t.Fatal(err)
	}

	doc := p.Trace().Tracez("", 0)
	var rootID uint64
	var rootChildren int32
	for _, v := range doc.Recent {
		if v.Func == "root" {
			rootID, rootChildren = v.ID, v.Children
		}
	}
	if rootID == 0 {
		t.Fatal("root span not retained")
	}
	if rootChildren != 2 {
		t.Fatalf("root children = %d, want 2", rootChildren)
	}
	leaves := 0
	for _, v := range doc.Recent {
		if v.Func == "leaf" {
			leaves++
			if v.ParentID != rootID {
				t.Fatalf("leaf parent = %d, want root %d", v.ParentID, rootID)
			}
			if v.External {
				t.Fatal("nested leaf marked external")
			}
			if v.Stages["wait"] != 0 {
				t.Fatalf("leaf has wait time: %v", v.Stages)
			}
		}
	}
	if leaves != 2 {
		t.Fatalf("leaf spans = %d, want 2", leaves)
	}
	// The parent suspended on its children: wait time must be attributed.
	for _, v := range doc.Recent {
		if v.Func == "root" && v.Stages["wait"] <= 0 {
			t.Fatalf("root has no wait stage: %v", v.Stages)
		}
	}
}

// TestTraceExpiredOutcome checks deadline classification: a function that
// outlives its deadline publishes OutcomeExpired (via the canceled-abandon
// rule — the runtime owns publication when the caller gave up).
func TestTraceExpiredOutcome(t *testing.T) {
	block := make(chan struct{})
	p := startPool(t, Config{Executors: 1, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("slow", func(ctx router.Ctx) ([]byte, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Invoke(ctx, "slow", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	close(block)

	// The abandoned request finishes asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		doc := p.Trace().Tracez("slow", 0)
		found := false
		for _, v := range doc.Errors {
			if v.Outcome == "expired" || v.Outcome == "canceled" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired span never published")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceShedBurstFreezesIncident checks that tiered-shedding refusals
// feed the flight recorder's burst detector: hold a PD so the free count
// sits at the shed threshold, fire a burst of externals, and expect a
// frozen shed_burst incident.
func TestTraceShedBurstFreezesIncident(t *testing.T) {
	held := make(chan struct{})
	release := make(chan struct{})
	p := startPool(t, Config{Executors: 2, Orchestrators: 1, NumPDs: 4, PDShedMargin: 64},
		func(reg *router.Registry) {
			reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
				return ctx.Payload(), nil
			})
			reg.MustRegister("hold", func(ctx router.Ctx) ([]byte, error) {
				close(held)
				<-release
				return nil, nil
			})
		})
	if thr := p.ShedThreshold(); thr <= 0 {
		t.Fatalf("shed threshold = %d; tiered shedding not armed", thr)
	}
	holdDone := make(chan error, 1)
	go func() {
		_, err := p.Invoke(context.Background(), "hold", nil)
		holdDone <- err
	}()
	<-held // the hold function occupies a PD: free is now at/below the threshold

	var sheds int
	for i := 0; i < 3*shedBurstTestSize && sheds < shedBurstTestSize; i++ {
		if _, err := p.Invoke(context.Background(), "echo", nil); errors.Is(err, ErrDegraded) {
			sheds++
		}
	}
	close(release)
	if err := <-holdDone; err != nil {
		t.Fatalf("hold invocation failed: %v", err)
	}
	if sheds < shedBurstTestSize {
		t.Fatalf("only %d sheds; cannot drive the burst detector", sheds)
	}
	incs := p.Trace().Incidents()
	found := false
	for _, inc := range incs {
		if inc.Reason == "shed_burst" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shed_burst incident frozen: %+v", incs)
	}
}

// shedBurstTestSize mirrors trace's shedBurst threshold (32) with headroom.
const shedBurstTestSize = 40

// TestNoTraceDisables checks the overhead-comparison knob.
func TestNoTraceDisables(t *testing.T) {
	p := startPool(t, Config{Executors: 1, Orchestrators: 1, NoTrace: true},
		func(reg *router.Registry) {
			reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
				return ctx.Payload(), nil
			})
		})
	if p.Trace() != nil {
		t.Fatal("NoTrace pool still has a recorder")
	}
	if _, err := p.Invoke(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestInvokeZeroAllocWithTracing is the tentpole's hard gate at the unit
// level: the full invoke round trip — with tracing ON — allocates nothing
// once the recycle pools are warm.
func TestInvokeZeroAllocWithTracing(t *testing.T) {
	if race {
		t.Skip("race instrumentation allocates")
	}
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Payload(), nil
		})
	})
	if p.Trace() == nil {
		t.Fatal("tracing must be on for this gate")
	}
	ctx := context.Background()
	payload := []byte("alloc-gate-payload")
	for i := 0; i < 2000; i++ { // warm every pool and ring
		if _, err := p.Invoke(ctx, "echo", payload); err != nil {
			t.Fatal(err)
		}
	}

	const n = 5000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		if _, err := p.Invoke(ctx, "echo", payload); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / n
	t.Logf("allocs/op with tracing: %.4f", perOp)
	if perOp > 0.01 {
		t.Fatalf("invoke with tracing allocates %.4f/op (want <= 0.01)", perOp)
	}
}

// TestTraceIntervalStageAccumulation checks += semantics: a span that
// requeues (PD stall) accrues queue time rather than overwriting it. The
// cheap proxy: hammer a tiny-PD pool and require every completed span's
// stage sum to stay within its total duration.
func TestTraceStageSumWithinDuration(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1, NumPDs: 8}, func(reg *router.Registry) {
		reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Payload(), nil
		})
	})
	for i := 0; i < 200; i++ {
		if _, err := p.Invoke(context.Background(), "echo", []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	doc := p.Trace().Tracez("", 64)
	for _, v := range doc.Recent {
		var sum int64
		for name, d := range v.Stages {
			if name == "state" {
				continue
			}
			sum += d
		}
		if sum > v.DurNS {
			t.Fatalf("stages sum %d exceeds span duration %d: %v", sum, v.DurNS, v.Stages)
		}
	}
}
