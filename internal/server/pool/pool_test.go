package pool

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jord/internal/server/router"
)

func startPool(t *testing.T, cfg Config, register func(*router.Registry)) *Pool {
	t.Helper()
	reg := router.New()
	register(reg)
	p := New(cfg, reg)
	p.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := p.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return p
}

func TestInvokeEcho(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Payload(), nil
		})
	})
	got, err := p.Invoke(context.Background(), "echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("echo = %q", got)
	}
	if _, err := p.Invoke(context.Background(), "nope", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("unknown function: %v", err)
	}
}

func TestNestedCallChain(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
			return bytes.ToUpper(ctx.Payload()), nil
		})
		reg.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
			a, err := ctx.Call("leaf", ctx.Payload())
			if err != nil {
				return nil, err
			}
			b, err := ctx.Call("leaf", []byte("again"))
			if err != nil {
				return nil, err
			}
			return append(append([]byte{}, a...), b...), nil
		})
	})
	got, err := p.Invoke(context.Background(), "root", []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ABCAGAIN" {
		t.Fatalf("root = %q", got)
	}
}

// TestNestedOnSingleExecutor proves the continuation-suspension design: a
// parent and its children share ONE executor, which would deadlock if the
// executor goroutine blocked inside the parent during the nested call.
func TestNestedOnSingleExecutor(t *testing.T) {
	p := startPool(t, Config{Executors: 1, Orchestrators: 1, JBSQBound: 1}, func(reg *router.Registry) {
		reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
			return []byte("x"), nil
		})
		reg.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
			var out []byte
			for i := 0; i < 3; i++ {
				b, err := ctx.Call("leaf", nil)
				if err != nil {
					return nil, err
				}
				out = append(out, b...)
			}
			return out, nil
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := p.Invoke(ctx, "root", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "xxx" {
		t.Fatalf("root = %q", got)
	}
}

func TestAsyncFanout(t *testing.T) {
	p := startPool(t, Config{Executors: 4, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Payload(), nil
		})
		reg.MustRegister("fan", func(ctx router.Ctx) ([]byte, error) {
			var cookies []router.Cookie
			for i := 0; i < 4; i++ {
				ck, err := ctx.Async("leaf", []byte{byte('a' + i)})
				if err != nil {
					return nil, err
				}
				cookies = append(cookies, ck)
			}
			var out []byte
			for _, ck := range cookies {
				b, err := ctx.Wait(ck)
				if err != nil {
					return nil, err
				}
				out = append(out, b...)
			}
			return out, nil
		})
	})
	got, err := p.Invoke(context.Background(), "fan", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Fatalf("fan = %q", got)
	}
}

func TestFunctionErrorAndPanic(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("fail", func(ctx router.Ctx) ([]byte, error) {
			return nil, errors.New("application error")
		})
		reg.MustRegister("boom", func(ctx router.Ctx) ([]byte, error) {
			panic("kaboom")
		})
		reg.MustRegister("ok", func(ctx router.Ctx) ([]byte, error) {
			return []byte("fine"), nil
		})
	})
	if _, err := p.Invoke(context.Background(), "fail", nil); err == nil || err.Error() != "application error" {
		t.Fatalf("fail: %v", err)
	}
	if _, err := p.Invoke(context.Background(), "boom", nil); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("boom: %v", err)
	}
	// A crashed function must not poison the worker: PDs are reclaimed and
	// the pool keeps serving.
	got, err := p.Invoke(context.Background(), "ok", nil)
	if err != nil || string(got) != "fine" {
		t.Fatalf("ok after boom: %q %v", got, err)
	}
	if n := p.Table().LivePDs(); n != 0 {
		t.Fatalf("leaked %d PDs", n)
	}
}

func TestDeadlineExpiresQueuedRequest(t *testing.T) {
	block := make(chan struct{})
	p := startPool(t, Config{Executors: 1, Orchestrators: 1, JBSQBound: 1, ExternalQueueCap: 16},
		func(reg *router.Registry) {
			reg.MustRegister("block", func(ctx router.Ctx) ([]byte, error) {
				<-block
				return nil, nil
			})
			reg.MustRegister("fast", func(ctx router.Ctx) ([]byte, error) { return nil, nil })
		})
	defer close(block)

	// Occupy the only executor.
	go p.Invoke(context.Background(), "block", nil) //nolint:errcheck

	time.Sleep(20 * time.Millisecond) // let the blocker start
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := p.Invoke(ctx, "fast", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request past deadline: %v", err)
	}
}

func TestPDExhaustionRecovers(t *testing.T) {
	// 2 PDs, parents that each hold one across a nested call: run several
	// concurrently; the PD-capacity stall must resolve, not deadlock.
	p := startPool(t, Config{Executors: 2, Orchestrators: 1, NumPDs: 2}, func(reg *router.Registry) {
		reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) { return []byte("y"), nil })
		reg.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Call("leaf", nil)
		})
	})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if _, err := p.Invoke(ctx, "root", nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("invoke under PD pressure: %v", err)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	reg := router.New()
	reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) { return ctx.Payload(), nil })
	p := New(Config{Executors: 2}, reg)
	p.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "echo", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain invoke: %v", err)
	}
}

func TestStatsRecorded(t *testing.T) {
	p := startPool(t, Config{Executors: 2, Orchestrators: 1}, func(reg *router.Registry) {
		reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) { return nil, nil })
		reg.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Call("leaf", nil)
		})
	})
	for i := 0; i < 10; i++ {
		if _, err := p.Invoke(context.Background(), "root", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	rootStats := st.FuncStats("root")
	leafStats := st.FuncStats("leaf")
	if rootStats.Count.Load() != 10 || leafStats.Count.Load() != 10 {
		t.Fatalf("counts: root=%d leaf=%d", rootStats.Count.Load(), leafStats.Count.Load())
	}
	if rootStats.Latency.Count() != 10 {
		t.Fatalf("latency samples: %d", rootStats.Latency.Count())
	}
	if rootStats.Latency.Percentile(50) <= 0 {
		t.Fatal("p50 should be positive")
	}
	if got := st.Completed.Load(); got != 20 {
		t.Fatalf("completed = %d, want 20", got)
	}
}

func TestConcurrentInvokes(t *testing.T) {
	p := startPool(t, Config{Executors: 4, Orchestrators: 2, ExternalQueueCap: 4096},
		func(reg *router.Registry) {
			reg.MustRegister("sum", func(ctx router.Ctx) ([]byte, error) {
				var s byte
				for _, b := range ctx.Payload() {
					s += b
				}
				return []byte{s}, nil
			})
		})
	const n = 500
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := p.Invoke(context.Background(), "sum", []byte{byte(i), 1})
			if err != nil {
				errs <- err
				return
			}
			if len(got) != 1 || got[0] != byte(i)+1 {
				errs <- fmt.Errorf("sum(%d) = %v", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
