package pool

// deque is a growable ring buffer used for every queue on the hot path:
// executor run queues, resume lists, and the orchestrators' external and
// internal queues. The slice-based queues it replaces reallocated on every
// front-insert (`append([]*T{x}, q...)`) and shifted on every mid-delete;
// the ring buffer makes PushFront/PopFront O(1) and amortizes growth, so a
// steady-state queue stops allocating entirely. Not safe for concurrent
// use — callers hold their own locks, as the queues always did.
type deque[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (d *deque[T]) Len() int { return d.n }

// grow doubles the backing array, re-linearizing the ring at index 0.
func (d *deque[T]) grow() {
	nc := len(d.buf) * 2
	if nc == 0 {
		nc = 8
	}
	nb := make([]T, nc)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf, d.head = nb, 0
}

// PushBack appends x at the tail.
func (d *deque[T]) PushBack(x T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = x
	d.n++
}

// PushFront prepends x at the head (requeue after a lost PD race).
func (d *deque[T]) PushFront(x T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = x
	d.n++
}

// PopFront removes and returns the head element. ok is false when empty.
func (d *deque[T]) PopFront() (x T, ok bool) {
	if d.n == 0 {
		return x, false
	}
	var zero T
	x = d.buf[d.head]
	d.buf[d.head] = zero // drop the reference so pooled objects can recycle
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return x, true
}

// At returns the i-th element from the front without removing it.
// i must be in [0, Len).
func (d *deque[T]) At(i int) T {
	return d.buf[(d.head+i)%len(d.buf)]
}

// RemoveAt removes and returns the i-th element from the front, shifting
// whichever side of the ring is shorter. i must be in [0, Len). The common
// cases — i == 0 (dequeue) and i near the head (skipping a PD-gated
// external in front of an internal) — touch only a few slots.
func (d *deque[T]) RemoveAt(i int) T {
	m := len(d.buf)
	x := d.buf[(d.head+i)%m]
	var zero T
	if i < d.n-i-1 {
		// Shift the front forward over the hole.
		for j := i; j > 0; j-- {
			d.buf[(d.head+j)%m] = d.buf[(d.head+j-1)%m]
		}
		d.buf[d.head] = zero
		d.head = (d.head + 1) % m
	} else {
		// Shift the back backward over the hole.
		for j := i; j < d.n-1; j++ {
			d.buf[(d.head+j)%m] = d.buf[(d.head+j+1)%m]
		}
		d.buf[(d.head+d.n-1)%m] = zero
	}
	d.n--
	return x
}
