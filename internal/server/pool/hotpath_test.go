package pool

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"jord/internal/mem/vmatable"
	"jord/internal/server/router"
)

// TestShardedReserveInvariant hammers the sharded table with concurrent
// cached gets/puts and checks the §3.3 reserve invariant holds globally:
// external-style gets (CgetAbove(reserve)) can never hold more than
// numPDs-reserve domains at once, no matter how IDs migrate between
// shards and per-executor caches. Run with -race.
func TestShardedReserveInvariant(t *testing.T) {
	const (
		numPDs  = 64
		reserve = 16
		workers = 8
		iters   = 2000
	)
	tab := NewTable(numPDs)

	var (
		held    atomic.Int64 // PDs currently held via reserve-gated gets
		maxHeld atomic.Int64
		dup     [numPDs + 1]atomic.Bool // detects double allocation
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cache := tab.newCache()
			local := make([]PDID, 0, 8)
			for i := 0; i < iters; i++ {
				pd, err := tab.cgetCached(reserve, cache)
				if err == nil {
					if !dup[pd].CompareAndSwap(false, true) {
						t.Errorf("pd %d allocated twice", pd)
					}
					// held is incremented inside the hold window, so it
					// lower-bounds the true number of outstanding
					// reservations — which reserveOne caps at
					// numPDs-reserve.
					h := held.Add(1)
					for {
						m := maxHeld.Load()
						if h <= m || maxHeld.CompareAndSwap(m, h) {
							break
						}
					}
					local = append(local, pd)
				}
				// Release in bursts so caches fill past pdCacheMax and
				// exercise the flush-back-to-shard path.
				if len(local) == cap(local) || (err != nil && len(local) > 0) {
					for _, pd := range local {
						held.Add(-1)
						dup[pd].Store(false)
						if err := tab.cputCached(pd, cache); err != nil {
							t.Errorf("cput %d: %v", pd, err)
						}
					}
					local = local[:0]
				}
			}
			for _, pd := range local {
				held.Add(-1)
				dup[pd].Store(false)
				if err := tab.cputCached(pd, cache); err != nil {
					t.Errorf("cput %d: %v", pd, err)
				}
			}
		}()
	}
	wg.Wait()

	if m := maxHeld.Load(); m > numPDs-reserve {
		t.Fatalf("reserve breached: %d PDs held concurrently, cap %d", m, numPDs-reserve)
	}
	if free := tab.FreeCount(); free != numPDs {
		t.Fatalf("leaked PDs: FreeCount = %d, want %d", free, numPDs)
	}
	if live := tab.LivePDs(); live != 0 {
		t.Fatalf("LivePDs = %d after all puts", live)
	}
	if f := tab.Faults(); f != 0 {
		t.Fatalf("faults = %d", f)
	}
}

// TestInternalGetsDrainReserve checks the other half of the invariant:
// reserve-0 (internal) gets may consume the reserve down to zero — the
// reserve throttles external admission, it does not strand capacity.
func TestInternalGetsDrainReserve(t *testing.T) {
	const numPDs = 12
	tab := NewTable(numPDs)
	cache := tab.newCache()

	// External-style gets stop at the reserve...
	var got []PDID
	for {
		pd, err := tab.cgetCached(4, cache)
		if err != nil {
			break
		}
		got = append(got, pd)
	}
	if len(got) != numPDs-4 {
		t.Fatalf("external gets = %d, want %d", len(got), numPDs-4)
	}
	// ...internal gets take the table to empty.
	for i := 0; i < 4; i++ {
		pd, err := tab.cgetCached(0, cache)
		if err != nil {
			t.Fatalf("internal get %d: %v", i, err)
		}
		got = append(got, pd)
	}
	if _, err := tab.cgetCached(0, cache); err == nil {
		t.Fatal("get beyond capacity should fail")
	}
	for _, pd := range got {
		if err := tab.cputCached(pd, cache); err != nil {
			t.Fatal(err)
		}
	}
	if free := tab.FreeCount(); free != numPDs {
		t.Fatalf("FreeCount = %d, want %d", free, numPDs)
	}
}

// TestVMAOverflowSharers drives a VMA's sharer count past the inline VTE
// sub-array so permissions spill into (and retract from) the overflow list.
func TestVMAOverflowSharers(t *testing.T) {
	const sharers = nvte + 12
	tab := NewTable(sharers + 4)
	v := tab.NewVMA(ExecutorPD, []byte("shared"), vmatable.PermRW)

	pds := make([]PDID, sharers)
	for i := range pds {
		pd, err := tab.Cget()
		if err != nil {
			t.Fatal(err)
		}
		pds[i] = pd
		if err := v.Pcopy(ExecutorPD, pd, vmatable.PermR); err != nil {
			t.Fatalf("pcopy to sharer %d: %v", i, err)
		}
	}
	if got := len(v.over); got == 0 {
		t.Fatalf("expected overflow entries past %d inline slots", nvte)
	}

	// Every sharer — inline or overflow — can read; none can write.
	for i, pd := range pds {
		if _, err := v.Read(pd); err != nil {
			t.Fatalf("sharer %d read: %v", i, err)
		}
		if err := v.Write(pd, []byte("nope")); err == nil {
			t.Fatalf("sharer %d write should fault", i)
		}
	}

	// Revoke every other sharer (hitting both inline zeroing and overflow
	// swap-remove), then verify revoked PDs fault and survivors still read.
	for i := 0; i < sharers; i += 2 {
		if err := v.Pmove(pds[i], ExecutorPD, vmatable.PermR); err != nil {
			t.Fatalf("revoke sharer %d: %v", i, err)
		}
	}
	for i, pd := range pds {
		_, err := v.Read(pd)
		if i%2 == 0 && err == nil {
			t.Fatalf("revoked sharer %d still reads", i)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving sharer %d: %v", i, err)
		}
	}

	// The owner's write permission was untouched throughout.
	if err := v.Write(ExecutorPD, []byte("updated")); err != nil {
		t.Fatal(err)
	}
}

// TestVMAAppendInPlace covers the Append fast path and its documented
// aliasing contract: a Read taken before an Append is a snapshot of the
// earlier length.
func TestVMAAppendInPlace(t *testing.T) {
	tab := NewTable(4)
	pd, err := tab.Cget()
	if err != nil {
		t.Fatal(err)
	}
	v := tab.NewVMA(pd, nil, vmatable.PermRW)

	before, err := v.Read(pd)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Append(pd, []byte("hello ")...); err != nil {
		t.Fatal(err)
	}
	if err := v.Append(pd, []byte("world")...); err != nil {
		t.Fatal(err)
	}
	got, err := v.Read(pd)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("after append: %q", got)
	}
	if len(before) != 0 {
		t.Fatalf("pre-append alias grew: %q", before)
	}
	other, err := tab.Cget()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Append(other, 'x'); err == nil {
		t.Fatal("append without PermW should fault")
	}
}

// TestRecyclingLeaksNoPDs runs many waves of nested invocations through a
// small pool and verifies the recycling paths — request/continuation/VMA
// pools, runner park/unpark, per-executor PD caches — return every PD:
// after the traffic, zero PDs are live and no faults were recorded.
func TestRecyclingLeaksNoPDs(t *testing.T) {
	p := startPool(t, Config{Executors: 4, Orchestrators: 1, NumPDs: 64}, func(reg *router.Registry) {
		reg.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
			return bytes.ToUpper(ctx.Payload()), nil
		})
		reg.MustRegister("mid", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Call("leaf", ctx.Payload())
		})
		reg.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
			// Payload() aliases the ArgBuf (zero-copy) — copy before
			// appending, or the two children would share a backing array.
			p1 := append(append([]byte(nil), ctx.Payload()...), '1')
			p2 := append(append([]byte(nil), ctx.Payload()...), '2')
			ck1, err := ctx.Async("mid", p1)
			if err != nil {
				return nil, err
			}
			ck2, err := ctx.Async("mid", p2)
			if err != nil {
				return nil, err
			}
			a, err := ctx.Wait(ck1)
			if err != nil {
				return nil, err
			}
			b, err := ctx.Wait(ck2)
			if err != nil {
				return nil, err
			}
			return append(a, b...), nil
		})
	})

	const (
		rounds  = 50
		clients = 8
	)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				payload := []byte(fmt.Sprintf("r%dc%d", round, c))
				got, err := p.Invoke(context.Background(), "root", payload)
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				want := bytes.ToUpper([]byte(string(payload) + "1" + string(payload) + "2"))
				if !bytes.Equal(got, want) {
					t.Errorf("round %d client %d: got %q, want %q", round, c, got, want)
				}
			}(c)
		}
		wg.Wait()

		// Between waves the pool is quiescent: every PD must be back in
		// some free list (shard or executor cache).
		if live := p.tab.LivePDs(); live != 0 {
			t.Fatalf("round %d: %d PDs leaked", round, live)
		}
	}
	if f := p.tab.Faults(); f != 0 {
		t.Fatalf("faults = %d", f)
	}
	st := p.Stats()
	if want := uint64(rounds * clients); st.Completed.Load() < want {
		t.Fatalf("completed = %d, want >= %d", st.Completed.Load(), want)
	}
}
