// Package faultfn is a registry of deliberately misbehaving live function
// bodies — the fault-injection vocabulary the pool's chaos suite (and any
// jordd operator wanting to rehearse failure) drives the runtime with.
// Each body exercises one request-lifecycle hazard the runtime must
// survive: panics mid-flight, fire-and-forget Asyncs whose children
// outlive their parent, bodies that stall past every deadline, fan-outs
// that amplify cancellation, and nesting deep enough to exhaust the PD
// space.
//
// Bodies are deterministic given their payload: all randomness lives in
// the driver, which encodes the behavior it wants in the bytes it sends.
// Every validating body checks its own results and reports corruption as
// an error, so recycled-object aliasing shows up as test failures rather
// than silent wrong answers.
package faultfn

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"jord/internal/server/pool"
	"jord/internal/server/router"
	"jord/internal/server/state"
)

// MaxSleep caps every sleeping body so a chaos run cannot wedge on one
// absurd payload.
const MaxSleep = 250 * time.Millisecond

// sleepFor decodes a payload byte into a bounded sleep duration.
func sleepFor(b byte) time.Duration {
	d := time.Duration(b) * time.Millisecond
	if d > MaxSleep {
		d = MaxSleep
	}
	return d
}

// RegisterAll deploys the whole fault vocabulary onto a registry:
//
//	echo         returns the payload unchanged (the aliasing canary).
//	boom         panics immediately.
//	slow         sleeps payload[0] milliseconds, then echoes.
//	stuck        like slow, but ignores cancellation entirely — the body
//	             the ExecTimeout watchdog exists for.
//	poll         sleeps in 1ms slices, honoring ctx.Err — the cooperative
//	             citizen that unwinds promptly when canceled.
//	selectdone   like poll, but blocks on ctx.Done instead of polling.
//	forget       Asyncs payload[0]%4+1 echo children and returns WITHOUT
//	             Wait — the orphan factory.
//	forgetboom   Asyncs children, then panics with them in flight.
//	fan          Asyncs one echo child per payload byte, Waits for all,
//	             and validates every result (detects cross-request
//	             corruption); returns the concatenation.
//	chain        recurses payload[0] levels deep (bounded by 6), one PD
//	             per level — the PD-pressure generator.
//
// The stateful vocabulary abuses the shared-state tier, leaving handles
// for the runtime's teardown to mop up (on a pool without a store they
// degrade to no-ops, so the vocabulary stays usable everywhere):
//
//	stateboom    creates a key, holds a read snapshot of it and exclusive
//	             ownership of a second key, then panics with both live —
//	             teardown must release the grant and discard the tx.
//	statestuck   takes exclusive ownership and sleeps without honoring
//	             cancellation, then returns with the transaction OPEN —
//	             the watchdog flags it, teardown rolls it back.
//	stateforget  piles up unreleased snapshots (including double-gets of
//	             one key) plus an un-Waited child, then returns — holds
//	             and orphan both fall to the runtime.
//	staterw      the validating stateful citizen: put/get round trip with
//	             version checks; corruption reports as an "aliasing" error.
//
// The names are stable API for the chaos suite and jordd -faultfns.
func RegisterAll(reg *router.Registry) {
	reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})

	reg.MustRegister("boom", func(ctx router.Ctx) ([]byte, error) {
		panic("faultfn: boom")
	})

	reg.MustRegister("slow", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		if len(p) > 0 {
			time.Sleep(sleepFor(p[0]))
		}
		return p, nil
	})

	reg.MustRegister("stuck", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		if len(p) > 0 {
			time.Sleep(sleepFor(p[0])) // no Err check: deliberately rude
		}
		return p, nil
	})

	reg.MustRegister("poll", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		var total time.Duration
		if len(p) > 0 {
			total = sleepFor(p[0])
		}
		for done := time.Duration(0); done < total; done += time.Millisecond {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			time.Sleep(time.Millisecond)
		}
		return p, nil
	})

	reg.MustRegister("selectdone", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		var total time.Duration
		if len(p) > 0 {
			total = sleepFor(p[0])
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(total):
			return p, nil
		}
	})

	forget := func(ctx router.Ctx, thenPanic bool) ([]byte, error) {
		p := ctx.Payload()
		n := 1
		if len(p) > 0 {
			n = int(p[0])%4 + 1
		}
		for i := 0; i < n; i++ {
			// Children copy the parent payload plus a lane byte; a short
			// sleep keeps them in flight past the parent's return.
			child := append(append([]byte(nil), p...), byte(i), 5)
			if _, err := ctx.Async("slow", child); err != nil {
				return nil, err
			}
		}
		if thenPanic {
			panic(fmt.Sprintf("faultfn: forgetboom with %d children in flight", n))
		}
		return []byte("forgot"), nil // no Wait: the runtime must reap
	}
	reg.MustRegister("forget", func(ctx router.Ctx) ([]byte, error) {
		return forget(ctx, false)
	})
	reg.MustRegister("forgetboom", func(ctx router.Ctx) ([]byte, error) {
		return forget(ctx, true)
	})

	reg.MustRegister("fan", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		cookies := make([]router.Cookie, len(p))
		for i := range p {
			ck, err := ctx.Async("echo", []byte{p[i]})
			if err != nil {
				return nil, err
			}
			cookies[i] = ck
		}
		out := make([]byte, 0, len(p))
		for i, ck := range cookies {
			b, err := ctx.Wait(ck)
			if err != nil {
				return nil, err
			}
			if len(b) != 1 || b[0] != p[i] {
				return nil, fmt.Errorf("faultfn: fan lane %d got %q, want %q (aliasing?)", i, b, []byte{p[i]})
			}
			out = append(out, b...)
		}
		if !bytes.Equal(out, p) {
			return nil, fmt.Errorf("faultfn: fan got %q, want %q (aliasing?)", out, p)
		}
		return out, nil
	})

	reg.MustRegister("chain", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		depth := 0
		if len(p) > 0 {
			depth = int(p[0]) % 7
		}
		if depth == 0 {
			return []byte{'*'}, nil
		}
		b, err := ctx.Call("chain", []byte{byte(depth - 1)})
		if err != nil {
			return nil, err
		}
		return append(b, '*'), nil
	})

	reg.MustRegister("stateboom", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		k := laneKey("boom", p)
		if _, err := ctx.StatePut(router.StateGlobal, k, p); err != nil {
			if errors.Is(err, pool.ErrNoState) {
				return []byte("nostate"), nil
			}
			return nil, err
		}
		// Snapshot held (never released) and exclusive ownership open
		// (never committed) across the panic: teardown owns both.
		if _, err := ctx.StateGet(router.StateGlobal, k); err != nil {
			return nil, err
		}
		if _, err := ctx.StateTake(router.StateGlobal, k+":tx"); err != nil && !errors.Is(err, state.ErrTaken) {
			return nil, err
		}
		panic("faultfn: stateboom with state handles live")
	})

	reg.MustRegister("statestuck", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		tx, err := ctx.StateTake(router.StateGlobal, laneKey("stuck", p))
		if err != nil {
			if errors.Is(err, pool.ErrNoState) || errors.Is(err, state.ErrTaken) {
				return []byte("contended"), nil
			}
			return nil, err
		}
		_ = tx // deliberately neither Commit nor Discard
		if len(p) > 1 {
			time.Sleep(sleepFor(p[1])) // no Err check: deliberately rude
		}
		return p, nil // transaction still open: teardown rolls it back
	})

	reg.MustRegister("stateforget", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		k := laneKey("forget", p)
		if _, err := ctx.StatePut(router.StateGlobal, k, p); err != nil {
			if errors.Is(err, pool.ErrNoState) {
				return []byte("nostate"), nil
			}
			return nil, err
		}
		// Double-gets pile refcounts onto one read grant; none released.
		for i := 0; i < 3; i++ {
			if _, err := ctx.StateGet(router.StateGlobal, k); err != nil {
				return nil, err
			}
		}
		child := append(append([]byte(nil), p...), 5)
		if _, err := ctx.Async("slow", child); err != nil {
			return nil, err
		}
		return []byte("forgot"), nil // holds and orphan both fall to the runtime
	})

	reg.MustRegister("staterw", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		k := laneKey("rw", p)
		ver, err := ctx.StatePut(router.StateGlobal, k, p)
		if err != nil {
			if errors.Is(err, pool.ErrNoState) {
				return []byte("nostate"), nil
			}
			return nil, err
		}
		sn, err := ctx.StateGet(router.StateGlobal, k)
		if err != nil {
			return nil, err
		}
		defer sn.Release()
		// Versions are monotonic per key; a concurrent staterw on the same
		// lane may have published past ours, but never behind it.
		if sn.Version() < ver {
			return nil, fmt.Errorf("faultfn: staterw read version %d after writing %d", sn.Version(), ver)
		}
		if sn.Version() == ver && !bytes.Equal(sn.Bytes(), p) {
			return nil, fmt.Errorf("faultfn: staterw got %q, want %q (aliasing?)", sn.Bytes(), p)
		}
		return append([]byte(nil), sn.Bytes()...), nil
	})
}

// laneKey derives a contention lane from the payload's first byte so
// concurrent invocations collide on a small shared keyspace.
func laneKey(prefix string, p []byte) string {
	lane := byte(0)
	if len(p) > 0 {
		lane = p[0] % 8
	}
	return fmt.Sprintf("%s:%d", prefix, lane)
}

// Names lists the registered fault vocabulary in a stable order (the
// chaos driver indexes into it).
func Names() []string {
	return []string{
		"echo", "boom", "slow", "stuck", "poll", "selectdone",
		"forget", "forgetboom", "fan", "chain",
		"stateboom", "statestuck", "stateforget", "staterw",
	}
}
