// Package faultfn is a registry of deliberately misbehaving live function
// bodies — the fault-injection vocabulary the pool's chaos suite (and any
// jordd operator wanting to rehearse failure) drives the runtime with.
// Each body exercises one request-lifecycle hazard the runtime must
// survive: panics mid-flight, fire-and-forget Asyncs whose children
// outlive their parent, bodies that stall past every deadline, fan-outs
// that amplify cancellation, and nesting deep enough to exhaust the PD
// space.
//
// Bodies are deterministic given their payload: all randomness lives in
// the driver, which encodes the behavior it wants in the bytes it sends.
// Every validating body checks its own results and reports corruption as
// an error, so recycled-object aliasing shows up as test failures rather
// than silent wrong answers.
package faultfn

import (
	"bytes"
	"fmt"
	"time"

	"jord/internal/server/router"
)

// MaxSleep caps every sleeping body so a chaos run cannot wedge on one
// absurd payload.
const MaxSleep = 250 * time.Millisecond

// sleepFor decodes a payload byte into a bounded sleep duration.
func sleepFor(b byte) time.Duration {
	d := time.Duration(b) * time.Millisecond
	if d > MaxSleep {
		d = MaxSleep
	}
	return d
}

// RegisterAll deploys the whole fault vocabulary onto a registry:
//
//	echo         returns the payload unchanged (the aliasing canary).
//	boom         panics immediately.
//	slow         sleeps payload[0] milliseconds, then echoes.
//	stuck        like slow, but ignores cancellation entirely — the body
//	             the ExecTimeout watchdog exists for.
//	poll         sleeps in 1ms slices, honoring ctx.Err — the cooperative
//	             citizen that unwinds promptly when canceled.
//	selectdone   like poll, but blocks on ctx.Done instead of polling.
//	forget       Asyncs payload[0]%4+1 echo children and returns WITHOUT
//	             Wait — the orphan factory.
//	forgetboom   Asyncs children, then panics with them in flight.
//	fan          Asyncs one echo child per payload byte, Waits for all,
//	             and validates every result (detects cross-request
//	             corruption); returns the concatenation.
//	chain        recurses payload[0] levels deep (bounded by 6), one PD
//	             per level — the PD-pressure generator.
//
// The names are stable API for the chaos suite and jordd -faultfns.
func RegisterAll(reg *router.Registry) {
	reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})

	reg.MustRegister("boom", func(ctx router.Ctx) ([]byte, error) {
		panic("faultfn: boom")
	})

	reg.MustRegister("slow", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		if len(p) > 0 {
			time.Sleep(sleepFor(p[0]))
		}
		return p, nil
	})

	reg.MustRegister("stuck", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		if len(p) > 0 {
			time.Sleep(sleepFor(p[0])) // no Err check: deliberately rude
		}
		return p, nil
	})

	reg.MustRegister("poll", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		var total time.Duration
		if len(p) > 0 {
			total = sleepFor(p[0])
		}
		for done := time.Duration(0); done < total; done += time.Millisecond {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			time.Sleep(time.Millisecond)
		}
		return p, nil
	})

	reg.MustRegister("selectdone", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		var total time.Duration
		if len(p) > 0 {
			total = sleepFor(p[0])
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(total):
			return p, nil
		}
	})

	forget := func(ctx router.Ctx, thenPanic bool) ([]byte, error) {
		p := ctx.Payload()
		n := 1
		if len(p) > 0 {
			n = int(p[0])%4 + 1
		}
		for i := 0; i < n; i++ {
			// Children copy the parent payload plus a lane byte; a short
			// sleep keeps them in flight past the parent's return.
			child := append(append([]byte(nil), p...), byte(i), 5)
			if _, err := ctx.Async("slow", child); err != nil {
				return nil, err
			}
		}
		if thenPanic {
			panic(fmt.Sprintf("faultfn: forgetboom with %d children in flight", n))
		}
		return []byte("forgot"), nil // no Wait: the runtime must reap
	}
	reg.MustRegister("forget", func(ctx router.Ctx) ([]byte, error) {
		return forget(ctx, false)
	})
	reg.MustRegister("forgetboom", func(ctx router.Ctx) ([]byte, error) {
		return forget(ctx, true)
	})

	reg.MustRegister("fan", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		cookies := make([]router.Cookie, len(p))
		for i := range p {
			ck, err := ctx.Async("echo", []byte{p[i]})
			if err != nil {
				return nil, err
			}
			cookies[i] = ck
		}
		out := make([]byte, 0, len(p))
		for i, ck := range cookies {
			b, err := ctx.Wait(ck)
			if err != nil {
				return nil, err
			}
			if len(b) != 1 || b[0] != p[i] {
				return nil, fmt.Errorf("faultfn: fan lane %d got %q, want %q (aliasing?)", i, b, []byte{p[i]})
			}
			out = append(out, b...)
		}
		if !bytes.Equal(out, p) {
			return nil, fmt.Errorf("faultfn: fan got %q, want %q (aliasing?)", out, p)
		}
		return out, nil
	})

	reg.MustRegister("chain", func(ctx router.Ctx) ([]byte, error) {
		p := ctx.Payload()
		depth := 0
		if len(p) > 0 {
			depth = int(p[0]) % 7
		}
		if depth == 0 {
			return []byte{'*'}, nil
		}
		b, err := ctx.Call("chain", []byte{byte(depth - 1)})
		if err != nil {
			return nil, err
		}
		return append(b, '*'), nil
	})
}

// Names lists the registered fault vocabulary in a stable order (the
// chaos driver indexes into it).
func Names() []string {
	return []string{
		"echo", "boom", "slow", "stuck", "poll", "selectdone",
		"forget", "forgetboom", "fan", "chain",
	}
}
