package pool

import (
	"errors"
	"testing"

	"jord/internal/mem/vmatable"
)

func TestCgetCputLifecycle(t *testing.T) {
	tab := NewTable(2)
	a, err := tab.Cget()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tab.Cget()
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == ExecutorPD || b == ExecutorPD {
		t.Fatalf("bad PD ids %d %d", a, b)
	}
	if tab.HasFree() {
		t.Fatal("2-PD table should be exhausted")
	}
	if _, err := tab.Cget(); err == nil {
		t.Fatal("cget on exhausted table should fault")
	}
	if err := tab.Cput(a); err != nil {
		t.Fatal(err)
	}
	if !tab.HasFree() {
		t.Fatal("cput should free capacity")
	}
	// Double free faults.
	if err := tab.Cput(a); err == nil {
		t.Fatal("double cput should fault")
	}
	// The runtime domain is not destroyable.
	if err := tab.Cput(ExecutorPD); err == nil {
		t.Fatal("cput of ExecutorPD should fault")
	}
	if tab.Faults() == 0 {
		t.Fatal("faults should be counted")
	}
}

func TestPmoveTransfersOwnership(t *testing.T) {
	tab := NewTable(4)
	pd1, _ := tab.Cget()
	pd2, _ := tab.Cget()
	buf := tab.NewVMA(pd1, []byte("args"), vmatable.PermRW)

	if _, err := buf.Read(pd1); err != nil {
		t.Fatalf("owner read: %v", err)
	}
	// Another PD cannot touch the buffer (the threat model's forged
	// access).
	if _, err := buf.Read(pd2); err == nil {
		t.Fatal("non-owner read should fault")
	}
	var f *Fault
	if err := buf.Write(pd2, nil); !errors.As(err, &f) {
		t.Fatalf("non-owner write should return *Fault, got %v", err)
	}

	// pmove: ownership transfers, source loses access.
	if err := buf.Pmove(pd1, pd2, vmatable.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := buf.Read(pd2); err != nil {
		t.Fatalf("new owner read: %v", err)
	}
	if _, err := buf.Read(pd1); err == nil {
		t.Fatal("old owner should have lost access after pmove")
	}
	// A PD cannot transfer what it does not hold.
	if err := buf.Pmove(pd1, pd2, vmatable.PermRW); err == nil {
		t.Fatal("pmove from non-owner should fault")
	}
}

func TestPcopyKeepsSource(t *testing.T) {
	tab := NewTable(4)
	pd, _ := tab.Cget()
	code := tab.NewVMA(ExecutorPD, nil, vmatable.PermRX)

	if err := code.Pcopy(ExecutorPD, pd, vmatable.PermRX); err != nil {
		t.Fatal(err)
	}
	// Both domains hold the grant now.
	if err := code.Check(pd, vmatable.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := code.Check(ExecutorPD, vmatable.PermRX); err != nil {
		t.Fatal(err)
	}
	// A read-only grant cannot be escalated through pcopy.
	if err := code.Pcopy(pd, pd, vmatable.PermW); err == nil {
		t.Fatal("pcopy escalating RX to W should fault")
	}
	// Revocation: pmove the copy back onto the retained grant.
	if err := code.Pmove(pd, ExecutorPD, vmatable.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := code.Check(pd, vmatable.PermRX); err == nil {
		t.Fatal("pd grant should be revoked after pmove back")
	}
}
