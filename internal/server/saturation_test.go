package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// TestSaturationBackpressure floods a deliberately tiny pool far past its
// external queue capacity and checks the two §3.3 properties at once:
// externals beyond capacity are shed with 429 (ErrSaturated backpressure,
// not hangs), while every admitted request — whose nested internal call
// must jump the saturated external queue — completes correctly.
func TestSaturationBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pool = pool.Config{
		Executors:        1,
		Orchestrators:    1,
		JBSQBound:        1,
		ExternalQueueCap: 4,
		NumPDs:           64,
	}
	// Admission must not mask queue saturation: make ErrSaturated from the
	// orchestrator's external queue the only backpressure source.
	cfg.MaxInflight = 100000
	cfg.RequestTimeout = 30 * time.Second
	_, base := startDaemon(t, cfg, func(d *Daemon) {
		d.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
			time.Sleep(2 * time.Millisecond) // hold the executor so queues build
			return ctx.Payload(), nil
		})
		d.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Call("leaf", ctx.Payload())
		})
	})
	client := newClient()

	const n = 150
	var (
		ok, rejected atomic.Uint64
		wg           sync.WaitGroup
	)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := fmt.Sprintf("p%d", i)
			resp, err := client.Post(base+"/invoke/root", "application/octet-stream",
				strings.NewReader(payload))
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				if string(body) != payload {
					errs <- fmt.Errorf("request %d: got %q, want %q", i, body, payload)
					return
				}
				ok.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					errs <- fmt.Errorf("request %d: 429 without Retry-After", i)
					return
				}
				rejected.Add(1)
			default:
				errs <- fmt.Errorf("request %d: unexpected status %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if ok.Load() == 0 {
		t.Fatal("no request was served under saturation")
	}
	if rejected.Load() == 0 {
		t.Fatalf("no request was shed: queue cap %d absorbed %d concurrent arrivals",
			cfg.Pool.ExternalQueueCap, n)
	}
	if got := ok.Load() + rejected.Load(); got != n {
		t.Fatalf("accounted for %d of %d requests", got, n)
	}
	t.Logf("saturation: %d served, %d shed with 429", ok.Load(), rejected.Load())
}
