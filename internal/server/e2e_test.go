package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"jord/internal/server/gateway"
	"jord/internal/server/router"
)

// startDaemon boots a daemon on an ephemeral loopback port and tears it
// down (graceful drain, Serve must return cleanly) when the test ends.
func startDaemon(t *testing.T, cfg Config, register func(*Daemon)) (*Daemon, string) {
	t.Helper()
	d := New(cfg)
	register(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return d, "http://" + ln.Addr().String()
}

func newClient() *http.Client {
	return &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512},
	}
}

// TestEndToEndNestedChain is the live-path acceptance test: a real daemon
// on loopback, a two-function nested chain, 1000 concurrent HTTP requests
// with zero errors, and /statsz histograms that saw all of it.
func TestEndToEndNestedChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pool.Executors = 4
	cfg.Pool.Orchestrators = 1
	cfg.Pool.ExternalQueueCap = 2048
	cfg.MaxInflight = 2048
	// Pin the static admission cap: on a loaded CI machine the adaptive
	// controller would legitimately 429 part of the burst, and this test is
	// about nested-call correctness, not overload policy (that contract has
	// its own suite in overload_e2e_test.go).
	cfg.AdmitTarget = -1
	d, base := startDaemon(t, cfg, func(d *Daemon) {
		d.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
			return bytes.ToUpper(ctx.Payload()), nil
		})
		d.MustRegister("root", func(ctx router.Ctx) ([]byte, error) {
			up, err := ctx.Call("leaf", ctx.Payload())
			if err != nil {
				return nil, err
			}
			return append(up, '!'), nil
		})
	})
	client := newClient()

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	const n = 1000
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := fmt.Sprintf("req-%d", i)
			resp, err := client.Post(base+"/invoke/root", "application/octet-stream",
				strings.NewReader(payload))
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			want := strings.ToUpper(payload) + "!"
			if string(body) != want {
				errs <- fmt.Errorf("request %d: got %q, want %q", i, body, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err = client.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st gateway.Statsz
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.PoolCompleted < 2*n { // every root carries one nested leaf
		t.Fatalf("pool_completed = %d, want >= %d", st.PoolCompleted, 2*n)
	}
	// The state store's resident PD is the only legitimate live PD once
	// the request tide has gone out; anything beyond it is a leak.
	wantPDs := 0
	if d.State() != nil {
		wantPDs = 1
	}
	if st.LivePDs != wantPDs {
		t.Fatalf("live_pds = %d after quiescence, want %d (PD leak)", st.LivePDs, wantPDs)
	}
	if st.Faults != 0 {
		t.Fatalf("isolation_faults = %d", st.Faults)
	}
	byName := map[string]gateway.FuncStatsz{}
	for _, f := range st.Funcs {
		byName[f.Name] = f
	}
	for _, name := range []string{"root", "leaf"} {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("/statsz missing function %q", name)
		}
		if f.Count != n || f.Errors != 0 {
			t.Fatalf("%s: count=%d errors=%d, want count=%d errors=0", name, f.Count, f.Errors, n)
		}
		if f.P50Us <= 0 || f.P99Us < f.P50Us {
			t.Fatalf("%s: degenerate latency histogram p50=%f p99=%f", name, f.P50Us, f.P99Us)
		}
	}

	resp, err = client.Get(base + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var vz gateway.Varz
	err = json.NewDecoder(resp.Body).Decode(&vz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if vz.Executors <= 0 || vz.NumPDs <= 0 || vz.PDReserve <= 0 || vz.PDShards <= 0 {
		t.Fatalf("/varz config not populated: %+v", vz)
	}
	if vz.PDFree != vz.NumPDs-wantPDs || vz.PDLive != wantPDs {
		t.Fatalf("/varz PD supply at quiescence: free=%d live=%d num=%d (want %d live)",
			vz.PDFree, vz.PDLive, vz.NumPDs, wantPDs)
	}
	// The store's own cget holds until Shutdown, hence the wantPDs skew.
	if vz.Cgets < 2*n || vz.Cgets != vz.Cputs+uint64(wantPDs) {
		t.Fatalf("/varz churn: cgets=%d cputs=%d, want matched and >= %d", vz.Cgets, vz.Cputs, 2*n)
	}
	if !vz.StateEnabled || vz.State == nil {
		t.Fatalf("/varz missing state section: %+v", vz)
	}
}

// TestEndToEndUnknownAndDrain covers the gateway's error surface: 404 for
// unregistered functions, and 503 from /healthz and /invoke once draining.
func TestEndToEndUnknownAndDrain(t *testing.T) {
	d, base := startDaemon(t, DefaultConfig(), func(d *Daemon) {
		d.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
			return ctx.Payload(), nil
		})
	})
	client := newClient()

	resp, err := client.Post(base+"/invoke/ghost", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown function: status %d", resp.StatusCode)
	}

	d.Gateway().SetDraining(true)
	defer d.Gateway().SetDraining(false) // let cleanup's Shutdown run its own flip
	for _, path := range []string{"/healthz", "/invoke/echo"} {
		req, _ := http.NewRequest(http.MethodGet, base+path, nil)
		if path == "/invoke/echo" {
			req, _ = http.NewRequest(http.MethodPost, base+path, strings.NewReader("x"))
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: status %d", path, resp.StatusCode)
		}
	}
}
