package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"jord/internal/server/trace"
)

// The observability plane: GET /tracez (per-invocation stage traces),
// GET /flightz (flight-recorder incidents), GET /metrics (Prometheus text).
// All three run off the hot path and may allocate freely; the data they
// serve was collected allocation-free (see internal/server/trace).

// handleTracez serves the trace recorder's document. Query parameters:
// fn= filters the span lists to one function, n= bounds each list.
func (g *Gateway) handleTracez(w http.ResponseWriter, r *http.Request) {
	rec := g.Pool.Trace()
	if rec == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	limit := 0
	if v := q.Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			limit = n
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rec.Tracez(q.Get("fn"), limit))
}

// handleFlightz serves the flight recorder's frozen incidents, newest first.
func (g *Gateway) handleFlightz(w http.ResponseWriter, _ *http.Request) {
	rec := g.Pool.Trace()
	if rec == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rec.Flightz())
}

// promEscape escapes a label value per the Prometheus text exposition
// format (backslash, double-quote, newline).
func promEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// promWriter accumulates Prometheus text exposition output.
type promWriter struct {
	buf bytes.Buffer
}

func (p *promWriter) header(name, help, typ string) {
	fmt.Fprintf(&p.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	fmt.Fprintf(&p.buf, "%s %s\n", name, promFloat(v))
}

func (p *promWriter) counter(name, help string, v uint64) {
	p.header(name, help, "counter")
	fmt.Fprintf(&p.buf, "%s %d\n", name, v)
}

// promFloat renders a float without the exponent forms Go's %v picks for
// large values (Prometheus accepts them, but plain decimals read better).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// breakerStateVal maps a breaker state name to its /metrics gauge value.
func breakerStateVal(s string) int {
	switch s {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

// handleMetrics serves the /varz + /statsz counters and the trace plane's
// per-stage latency histograms in the Prometheus text exposition format,
// hand-written (no client library on purpose — the daemon takes no
// dependencies for its hot path, and the export plane follows suit).
func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var p promWriter
	st := g.Pool.Stats()
	tab := g.Pool.Table()
	ext, internal, execQ := g.Pool.QueueDepths()

	p.gauge("jord_uptime_seconds", "Seconds since the pool started.",
		time.Since(g.Pool.StartedAt()).Seconds())
	p.gauge("jord_draining", "1 while the daemon is draining.", b2f(g.draining.Load()))
	p.gauge("jord_degraded", "1 while tiered shedding is active (PD pressure).", b2f(g.Degraded()))

	p.gauge("jord_inflight", "Admitted requests currently in flight.", float64(g.Adm.Inflight()))
	p.counter("jord_admitted_total", "Requests admitted by the gateway.", g.Adm.Admitted())
	p.counter("jord_admission_rejected_total", "Requests refused at the admission gate.", g.Adm.Rejected())
	p.gauge("jord_admit_limit", "Current (AIMD-steered) admission limit.", float64(g.Adm.Limit()))
	p.gauge("jord_admit_max", "Hard admission cap.", float64(g.Adm.Max()))

	p.header("jord_queue_depth", "Instantaneous queue depths by tier.", "gauge")
	fmt.Fprintf(&p.buf, "jord_queue_depth{queue=\"external\"} %d\n", ext)
	fmt.Fprintf(&p.buf, "jord_queue_depth{queue=\"internal\"} %d\n", internal)
	fmt.Fprintf(&p.buf, "jord_queue_depth{queue=\"executor\"} %d\n", execQ)

	p.gauge("jord_pd_free", "Free protection domains.", float64(tab.FreeCountExact()))
	p.gauge("jord_pd_live", "Live (bound) protection domains.", float64(tab.LivePDs()))
	p.counter("jord_pd_cgets_total", "PD credit-cache gets.", tab.Cgets())
	p.counter("jord_pd_cputs_total", "PD credit-cache puts.", tab.Cputs())
	p.counter("jord_isolation_faults_total", "Isolation faults detected.", tab.Faults())

	p.counter("jord_pool_dispatched_total", "Invocations dispatched to executors.", st.Dispatched.Load())
	p.counter("jord_pool_completed_total", "Invocations completed.", st.Completed.Load())
	p.counter("jord_pool_expired_total", "Deadline-exceeded completions.", st.Expired.Load())
	p.counter("jord_pool_canceled_total", "Caller-gone completions.", st.Canceled.Load())
	p.counter("jord_pool_rejected_total", "External-queue rejections.", st.Rejected.Load())
	p.counter("jord_pool_shed_total", "Externals refused by tiered shedding.", st.Shed.Load())
	p.counter("jord_pool_orphaned_total", "Children detached at parent teardown.", st.Orphaned.Load())
	p.counter("jord_pool_watchdog_total", "Invocations flagged past ExecTimeout.", st.Watchdog.Load())
	p.counter("jord_pool_swept_total", "Dead requests reaped pre-dispatch.", st.Swept.Load())

	// Per-function serving metrics: counts, errors, and the latency summary
	// (quantiles from the sharded histogram, sum reconstructed from mean).
	funcs := st.Funcs()
	if len(funcs) > 0 {
		p.header("jord_function_invocations_total", "Completed invocations by function.", "counter")
		for _, fs := range funcs {
			fmt.Fprintf(&p.buf, "jord_function_invocations_total{fn=%q} %d\n", promEscape(fs.Name), fs.Count.Load())
		}
		p.header("jord_function_errors_total", "Errored invocations by function.", "counter")
		for _, fs := range funcs {
			fmt.Fprintf(&p.buf, "jord_function_errors_total{fn=%q} %d\n", promEscape(fs.Name), fs.Errors.Load())
		}
		p.header("jord_function_latency_seconds", "Invocation latency by function (arrival to completion).", "summary")
		for _, fs := range funcs {
			snap := fs.Latency.Snapshot()
			name := promEscape(fs.Name)
			fmt.Fprintf(&p.buf, "jord_function_latency_seconds{fn=%q,quantile=\"0.5\"} %s\n", name, promFloat(float64(snap.P50)/1e9))
			fmt.Fprintf(&p.buf, "jord_function_latency_seconds{fn=%q,quantile=\"0.99\"} %s\n", name, promFloat(float64(snap.P99)/1e9))
			fmt.Fprintf(&p.buf, "jord_function_latency_seconds{fn=%q,quantile=\"0.999\"} %s\n", name, promFloat(float64(snap.P999)/1e9))
			fmt.Fprintf(&p.buf, "jord_function_latency_seconds_sum{fn=%q} %s\n", name, promFloat(snap.Mean*float64(snap.Count)/1e9))
			fmt.Fprintf(&p.buf, "jord_function_latency_seconds_count{fn=%q} %d\n", name, snap.Count)
		}
	}

	// Breakers: numeric state (0 closed, 1 half-open, 2 open) plus trips.
	if g.Breakers != nil && len(funcs) > 0 {
		p.header("jord_breaker_state", "Circuit breaker state by function: 0 closed, 1 half-open, 2 open.", "gauge")
		wrote := false
		var trips bytes.Buffer
		for _, fs := range funcs {
			b := g.Breakers.For(fs.Name)
			if b == nil {
				continue
			}
			wrote = true
			fmt.Fprintf(&p.buf, "jord_breaker_state{fn=%q} %d\n", promEscape(fs.Name), breakerStateVal(b.State().String()))
			fmt.Fprintf(&trips, "jord_breaker_trips_total{fn=%q} %d\n", promEscape(fs.Name), b.Trips())
		}
		if wrote {
			p.header("jord_breaker_trips_total", "Circuit breaker trips by function.", "counter")
			p.buf.Write(trips.Bytes())
		}
	}

	// Shared-state tier counters (stateless daemons skip the family).
	if g.Store != nil {
		ss := g.Store.StatsSnapshot()
		p.gauge("jord_state_entries", "Entries in the shared-state store.", float64(ss.Entries))
		p.gauge("jord_state_bytes", "Bytes held by the shared-state store.", float64(ss.Bytes))
		p.counter("jord_state_gets_total", "State get operations.", ss.Gets)
		p.counter("jord_state_puts_total", "State put operations.", ss.Puts)
		p.counter("jord_state_deletes_total", "State delete operations.", ss.Deletes)
		p.counter("jord_state_commits_total", "State transaction commits.", ss.Commits)
		p.counter("jord_state_copy_bytes_avoided_total", "Bytes not copied thanks to ownership transfer.", ss.CopyBytesAvoided)
	}

	// Per-stage latency histograms from the trace plane: log2(ns) buckets,
	// cumulative per the exposition format, bounds converted to seconds.
	if rec := g.Pool.Trace(); rec != nil {
		hists := rec.StageHists()
		p.header("jord_stage_duration_seconds", "Per-invocation stage durations from the trace plane.", "histogram")
		for i := range hists {
			h := &hists[i]
			if h.Count == 0 {
				continue
			}
			stage := promEscape(h.Stage)
			var cum uint64
			for b := 0; b < trace.NumStageBuckets; b++ {
				if h.Buckets[b] == 0 {
					continue // empty buckets add nothing; cumulative stays correct
				}
				cum += h.Buckets[b]
				le := promFloat(float64(trace.StageBucketUpperNS(b)) / 1e9)
				fmt.Fprintf(&p.buf, "jord_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n", stage, le, cum)
			}
			fmt.Fprintf(&p.buf, "jord_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, h.Count)
			fmt.Fprintf(&p.buf, "jord_stage_duration_seconds_sum{stage=%q} %s\n", stage, promFloat(float64(h.SumNS)/1e9))
			fmt.Fprintf(&p.buf, "jord_stage_duration_seconds_count{stage=%q} %d\n", stage, h.Count)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(p.buf.Bytes())
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
