package gateway

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"jord/internal/server/admission"
	"jord/internal/server/breaker"
	"jord/internal/server/pool"
	"jord/internal/server/router"

	"context"
)

// newEdgeRig builds a small live daemon stack served through the edge on a
// loopback listener, returning its address and a shutdown func.
func newEdgeRig(t *testing.T, pc pool.Config) (addr string, g *Gateway, stop func()) {
	t.Helper()
	reg := router.New()
	reg.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	reg.MustRegister("fail", func(ctx router.Ctx) ([]byte, error) {
		return nil, fmt.Errorf("intentional")
	})
	p := pool.New(pc, reg)
	p.Start()
	g = &Gateway{
		Reg:            reg,
		Pool:           p,
		Adm:            admission.New(1024),
		Breakers:       breaker.NewSet(breaker.Config{}, reg.Names()),
		RequestTimeout: 5 * time.Second,
		MaxBodyBytes:   1 << 20,
	}
	e := NewEdge(g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Serve(ln) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("edge shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("edge serve: %v", err)
		}
		if err := p.Drain(ctx); err != nil {
			t.Errorf("pool drain: %v", err)
		}
	}
	return ln.Addr().String(), g, stop
}

func smallPool() pool.Config {
	return pool.Config{Executors: 2, Orchestrators: 1, NumPDs: 64}
}

// TestEdgeHTTPInterop drives the edge with a stock net/http client: the
// hand-rolled HTTP must interoperate with a real implementation, including
// keep-alive reuse across requests and the management endpoints.
func TestEdgeHTTPInterop(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + addr

	for i := 0; i < 3; i++ { // repeated: exercises keep-alive reuse
		resp, err := client.Post(base+"/invoke/echo", "application/octet-stream",
			strings.NewReader("hello edge"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != "hello edge" {
			t.Fatalf("echo %d: status=%d body=%q", i, resp.StatusCode, body)
		}
	}

	// Unknown function: 404, connection stays usable.
	resp, err := client.Post(base+"/invoke/nosuch", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown function: status=%d want 404", resp.StatusCode)
	}

	// Function error: 500 with the message.
	resp, err = client.Post(base+"/invoke/fail", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(body), "intentional") {
		t.Fatalf("fail: status=%d body=%q", resp.StatusCode, body)
	}

	// Cold-path management endpoints through the same port.
	for _, path := range []string{"/healthz", "/readyz", "/statsz", "/varz"} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status=%d body=%q", path, resp.StatusCode, b)
		}
	}
	resp, err = client.Get(base + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"num_cpu"`) {
		t.Fatalf("/varz missing num_cpu: %q", b)
	}
}

// TestEdgeOversizedBody asserts the 413 path refuses by Content-Length
// alone: the declared-oversized body is never read off the wire (satellite
// requirement — no buffering of oversized payloads). The client writes
// headers declaring 10 MiB, sends nothing, and still gets the 413.
func TestEdgeOversizedBody(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "POST /invoke/echo HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n", 10<<20)
	// No body bytes follow — a response can only arrive if the edge
	// answered without waiting for the payload.
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	br := bufio.NewReader(c)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading 413 status line: %v", err)
	}
	if !strings.Contains(line, "413") {
		t.Fatalf("status line %q, want 413", line)
	}
	// The connection must close (the unread body would desync keep-alive).
	io.Copy(io.Discard, br)
}

// TestEdgeChunkedRejected: the fast path requires Content-Length; chunked
// uploads get 411 rather than a misparsed body.
func TestEdgeChunkedRejected(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	io.WriteString(c, "POST /invoke/echo HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n")
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "411") {
		t.Fatalf("status line %q, want 411", line)
	}
}

// TestEdgeExpectContinue covers the 100-continue handshake curl sends for
// larger uploads.
func TestEdgeExpectContinue(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	io.WriteString(c, "POST /invoke/echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\nExpect: 100-continue\r\n\r\n")
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "100") {
		t.Fatalf("interim status %q, want 100 Continue", line)
	}
	// Skip the blank line ending the interim response, send the body.
	br.ReadString('\n')
	io.WriteString(c, "hello")
	line, err = br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "200") {
		t.Fatalf("final status %q, want 200", line)
	}
}

// TestEdgeColdPathBodyFraming: a cold-path request carrying a body must
// not desync the connection — the body bytes have to be consumed before
// the next keep-alive request is parsed, or they would be read as a
// request line (a request-smuggling vector behind a proxy). The POST to
// /statsz 404s through the mux (no POST route), but the pipelined GET
// after it must still parse and answer cleanly.
func TestEdgeColdPathBodyFraming(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	io.WriteString(c, "POST /statsz HTTP/1.1\r\nHost: x\r\nContent-Length: 17\r\n\r\nGET /x HTTP/1.1\r\n")
	io.WriteString(c, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	br := bufio.NewReader(c)
	readResponse := func() string {
		status, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading status line: %v", err)
		}
		cl := -1
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("reading headers: %v", err)
			}
			if line == "\r\n" {
				break
			}
			if n, err := fmt.Sscanf(line, "Content-Length: %d", &cl); n == 1 && err == nil {
				continue
			}
		}
		if cl < 0 {
			t.Fatalf("response %q missing Content-Length", status)
		}
		if _, err := io.CopyN(io.Discard, br, int64(cl)); err != nil {
			t.Fatalf("reading body: %v", err)
		}
		return status
	}
	first := readResponse()
	second := readResponse()
	if !strings.Contains(second, "200") {
		t.Fatalf("pipelined GET after cold POST: first=%q second=%q (body bytes leaked into framing)", first, second)
	}
}

// TestEdgeExpectContinueRejected: a 100-continue client that hits a
// rejection path (unknown function here) has not sent its body — the edge
// must answer the final status immediately instead of blocking in Discard
// waiting for bytes the client will never send, and then close (the
// declared-but-unsent body would otherwise desync keep-alive).
func TestEdgeExpectContinueRejected(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	io.WriteString(c, "POST /invoke/nosuch HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\nExpect: 100-continue\r\n\r\n")
	// No body sent. The 404 must arrive well before any expect-timeout; the
	// read deadline is the stall detector.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	br := bufio.NewReader(c)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("edge stalled waiting for an unsent 100-continue body: %v", err)
	}
	if !strings.Contains(line, "404") {
		t.Fatalf("status line %q, want 404", line)
	}
	// The connection must close after the final status.
	if _, err := io.Copy(io.Discard, br); err != nil {
		t.Fatalf("draining to EOF: %v", err)
	}
}

// TestEdgeContentLengthOverflow: a Content-Length long enough to wrap
// int64 back to a small positive value must be rejected as malformed, not
// used for framing.
func TestEdgeContentLengthOverflow(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	for _, cl := range []string{
		"92233720368547758080",  // 10*MaxInt64: wraps positive
		"184467440737095516165", // 2^64+5: aliases to 5
	} {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "POST /invoke/echo HTTP/1.1\r\nHost: x\r\nContent-Length: %s\r\n\r\n", cl)
		c.SetReadDeadline(time.Now().Add(3 * time.Second))
		all, err := io.ReadAll(c) // refusal closes the conn: read to EOF
		if err != nil {
			t.Fatalf("cl=%s: %v", cl, err)
		}
		if !strings.HasPrefix(string(all), "HTTP/1.1 400") {
			t.Fatalf("cl=%s: response %q, want 400", cl, all)
		}
		// Exactly one response: the old readHead returned nil after the
		// 400 write and stacked a second response on the same request.
		if n := strings.Count(string(all), "HTTP/1.1 "); n != 1 {
			t.Fatalf("cl=%s: %d responses on one request: %q", cl, n, all)
		}
		c.Close()
	}
}

// TestEdgeColdConnectionClose: Connection: close on a cold-path request
// must actually close the connection after the response.
func TestEdgeColdConnectionClose(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	io.WriteString(c, "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	b, err := io.ReadAll(c) // must reach EOF, not hang until deadline
	if err != nil {
		t.Fatalf("connection not closed after Connection: close: %v", err)
	}
	if !strings.Contains(string(b), "200") {
		t.Fatalf("response %q, want 200", b)
	}
}

// TestEdgeInvokeAllocs is the PR's headline invariant: the socket ->
// function -> response path allocates nothing per request in steady state.
// It measures whole-process allocation deltas (runtime.MemStats.Mallocs)
// around a batch of raw-TCP keep-alive requests — covering the edge parse,
// admission, breaker, pool submit, executor dispatch, ArgBuf transfer, and
// response write, not just a handler in isolation.
func TestEdgeInvokeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement in -short")
	}
	if race {
		t.Skip("race instrumentation allocates")
	}
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := []byte("POST /invoke/echo HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world")
	rbuf := make([]byte, 4096)
	roundtrip := func() {
		if _, err := c.Write(req); err != nil {
			t.Fatal(err)
		}
		// The whole response fits one read on loopback; parse-free drain.
		if _, err := c.Read(rbuf); err != nil {
			t.Fatal(err)
		}
	}

	// Warm up: connection state, pooled buffers, runner goroutines, map
	// internals all reach steady state.
	for i := 0; i < 200; i++ {
		roundtrip()
	}

	const N = 2000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < N; i++ {
		roundtrip()
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / N

	// Tolerance absorbs runtime background noise (timer wheels, GC
	// bookkeeping, netpoll) — the invariant is "no per-request allocation",
	// i.e. the amortized count must be far below 1.
	const tolerance = 0.05
	t.Logf("edge invoke: %.4f allocs/op over %d requests", perOp, N)
	if perOp > tolerance {
		t.Fatalf("edge invoke path allocates: %.4f allocs/op (want <= %.2f)", perOp, tolerance)
	}
}

// TestEdgeShutdownDrains: Shutdown must finish in-flight work and then
// refuse the connection.
func TestEdgeShutdownDrains(t *testing.T) {
	pc := smallPool()
	addr, _, stop := newEdgeRig(t, pc)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post("http://"+addr+"/invoke/echo", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	stop()
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
