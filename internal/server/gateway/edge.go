package gateway

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/server/pool"
	"jord/internal/server/trace"
)

// Edge is the zero-allocation HTTP/1.1 front end: a purpose-built server
// for the POST /invoke/{fn} fast path that takes a request from socket to
// function and back without a single heap allocation per request. Go's
// net/http cannot make that promise (it allocates request/header objects
// per request by design), so the edge speaks just enough HTTP/1.1 itself —
// the fasthttp approach, specialized further to jordd's two-endpoint
// surface:
//
//   - POST /invoke/{fn}: parsed with ReadSlice (no line copies), function
//     looked up via Registry.LookupBytes (no string materialization), body
//     read with io.ReadFull straight into a per-connection pooled buffer
//     that becomes the invocation's ArgBuf payload zero-copy, deadline
//     managed by a recycled per-connection timer through pool.InvokeTimed
//     (no context allocation), and the response written with one writev
//     (net.Buffers) straight from the VMA-backed result bytes.
//   - Everything else (GET /healthz, /readyz, /statsz, /varz, and any
//     unrecognized request) delegates to the normal gateway handlers
//     through a buffered adapter — the cold path, where allocations are
//     irrelevant.
//
// Keep-alive is supported (the steady state for load balancers and
// benchmarks); per-CONNECTION state is pooled and reused across requests,
// so the amortized per-request allocation count on the fast path is zero —
// measured, not aspirational (see TestEdgeInvokeAllocs and the http_echo
// scenario in jordbench).
type Edge struct {
	g   *Gateway
	mux http.Handler // cold-path delegate, built once

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]*connState
	wg       sync.WaitGroup
	draining atomic.Bool
}

// NewEdge builds the edge front end over a configured gateway.
func NewEdge(g *Gateway) *Edge {
	return &Edge{g: g, mux: g.Handler(), conns: make(map[net.Conn]*connState)}
}

// connState is one connection's reusable machinery. Everything a request
// needs lives here and survives across requests (and, via csPool, across
// connections), so the steady-state request touches no allocator.
type connState struct {
	conn net.Conn
	br   *bufio.Reader

	wbuf  []byte // response head (and small error bodies)
	body  []byte // request body; becomes the ArgBuf payload zero-copy
	fname []byte // function name, copied out of the volatile read buffer
	host  []byte // Host header, copied out of the volatile read buffer
	ikey  []byte // idempotency key header, copied out of the read buffer

	// nb is the writev pair (head + VMA-backed response). WriteTo CONSUMES
	// a net.Buffers, so nb is rebuilt each response from the persistent
	// backing array nbArr — appending to the consumed slice would
	// reallocate it every request.
	nb    net.Buffers
	nbArr [2][]byte

	timer      *time.Timer // per-request deadline for InvokeTimed, recycled
	timerArmed bool

	// span is the per-request trace record for the fast path, embedded
	// here (not on the stack) so handing its address to InvokeTimed can
	// never force a heap allocation. The runtime adopts it at submit and
	// hands it back with the completion; refusals publish it directly.
	span trace.Span

	// busy is true while a request is being processed; Shutdown only
	// deadline-kicks conns parked between requests.
	busy atomic.Bool
}

// csPool recycles connStates across connections.
var csPool = sync.Pool{New: func() any {
	return &connState{
		br:    bufio.NewReaderSize(nil, 16<<10),
		wbuf:  make([]byte, 0, 256),
		fname: make([]byte, 0, 64),
		host:  make([]byte, 0, 64),
		ikey:  make([]byte, 0, 64),
	}
}}

// Serve accepts connections on ln until Shutdown closes it.
func (e *Edge) Serve(ln net.Listener) error {
	e.mu.Lock()
	e.ln = ln
	e.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if e.draining.Load() {
				return nil // Shutdown closed the listener
			}
			return err
		}
		cs := csPool.Get().(*connState)
		cs.conn = c
		cs.br.Reset(c)
		e.mu.Lock()
		e.conns[c] = cs
		e.mu.Unlock()
		e.wg.Add(1)
		go e.serveConn(cs)
	}
}

// Shutdown stops accepting, kicks idle connections, and waits (until ctx
// expires) for in-flight requests to finish; stragglers are then closed
// hard. Mirrors http.Server.Shutdown closely enough for server.go to treat
// the two interchangeably.
func (e *Edge) Shutdown(ctx context.Context) error {
	e.draining.Store(true)
	e.mu.Lock()
	if e.ln != nil {
		e.ln.Close()
	}
	for c, cs := range e.conns {
		if !cs.busy.Load() {
			// Parked between requests: fail its pending read now. A conn
			// whose request line has just arrived but which has not yet
			// reached markBusy will observe draining there (both sides
			// cross e.mu) and clear this deadline before its header and
			// body reads — the kick only ever kills the parked ReadSlice.
			c.SetReadDeadline(time.Now())
		}
	}
	e.mu.Unlock()
	done := make(chan struct{})
	go func() { e.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.mu.Lock()
		for c := range e.conns {
			c.Close()
		}
		e.mu.Unlock()
		return ctx.Err()
	}
}

// release returns a connection's state to the pool after closing it.
func (e *Edge) release(cs *connState) {
	c := cs.conn
	c.Close()
	e.mu.Lock()
	delete(e.conns, c)
	e.mu.Unlock()
	if cs.timer != nil {
		cs.timer.Stop()
	}
	cs.conn = nil
	cs.br.Reset(nil)
	cs.busy.Store(false)
	csPool.Put(cs)
	e.wg.Done()
}

// Header byte constants for allocation-free case-insensitive matching.
var (
	hdrContentLength    = []byte("Content-Length")
	hdrConnection       = []byte("Connection")
	hdrExpect           = []byte("Expect")
	hdrTransferEncoding = []byte("Transfer-Encoding")
	hdrHost             = []byte("Host")
	hdrIdemKey          = []byte(IdempotencyKeyHeader)
	valClose            = []byte("close")
	val100Continue      = []byte("100-continue")
	pathInvoke          = []byte("/invoke/")
	methodPost          = []byte("POST")
	proto11             = []byte("HTTP/1.1")
	continue100         = []byte("HTTP/1.1 100 Continue\r\n\r\n")
)

// serveConn runs the per-connection request loop.
func (e *Edge) serveConn(cs *connState) {
	defer e.release(cs)
	for {
		keepAlive, err := e.serveOne(cs)
		if err != nil || !keepAlive {
			return
		}
		if e.draining.Load() {
			return
		}
	}
}

// markBusy flags the connection as mid-request, synchronizing with
// Shutdown's idle-kick through e.mu. Without it there is a window between
// ReadSlice returning a request line and busy flipping true in which
// Shutdown sees a "parked" connection and arms an already-expired read
// deadline — failing the in-flight request's header/body reads and
// dropping it without a response. Taking the lock orders the two: either
// Shutdown saw busy=true and skipped the kick, or this side sees draining
// and clears the deadline so the final request completes (serveConn exits
// after it via the draining check).
func (e *Edge) markBusy(cs *connState) {
	e.mu.Lock()
	cs.busy.Store(true)
	kicked := e.draining.Load()
	e.mu.Unlock()
	if kicked {
		cs.conn.SetReadDeadline(time.Time{})
	}
}

// reqHead is the parsed request envelope, filled per request.
type reqHead struct {
	contentLen     int64 // -1 = absent
	wantClose      bool
	expectContinue bool
	chunked        bool
}

// serveOne reads, dispatches, and answers exactly one request. It returns
// whether the connection should stay open.
func (e *Edge) serveOne(cs *connState) (keepAlive bool, err error) {
	// Request line. A clean EOF between requests is a normal close.
	line, err := cs.br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			e.markBusy(cs)
			return false, cs.writeSimple(http.StatusRequestURITooLong, "request line too long", 0, false)
		}
		return false, err
	}
	e.markBusy(cs)
	defer cs.busy.Store(false)

	line = trimCRLF(line)
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 < 0 {
		return false, cs.writeSimple(http.StatusBadRequest, "malformed request line", 0, false)
	}
	sp2 := bytes.IndexByte(line[sp1+1:], ' ')
	if sp2 < 0 {
		return false, cs.writeSimple(http.StatusBadRequest, "malformed request line", 0, false)
	}
	sp2 += sp1 + 1
	method, path, proto := line[:sp1], line[sp1+1:sp2], line[sp2+1:]
	http11 := bytes.Equal(proto, proto11)

	// The fast path: POST /invoke/{fn}. The function name is copied into
	// connection-owned scratch space because every subsequent ReadSlice may
	// invalidate the request-line bytes.
	fastPath := bytes.Equal(method, methodPost) && bytes.HasPrefix(path, pathInvoke)
	if fastPath {
		cs.fname = append(cs.fname[:0], path[len(pathInvoke):]...)
	} else {
		// Cold path (GET endpoints, anything else): reconstruct a request
		// for the normal mux. Copies and allocations are fine here, but
		// framing is not — serveCold must consume (or refuse-and-close)
		// any declared body, or its bytes would be parsed as the next
		// request line under keep-alive.
		methodS, pathS := string(method), string(path)
		var h reqHead
		if err := e.readHead(cs, &h); err != nil {
			return false, err
		}
		return e.serveCold(cs, methodS, pathS, http11, &h)
	}

	// Trace origin: after the request line is in hand (the blocking
	// keep-alive read must not count) and before the header/body reads.
	rec := e.g.Pool.Trace()
	var tMark int64
	if rec != nil {
		tMark = rec.Now()
		cs.span = trace.Span{FuncID: -1, External: true, StartNS: tMark}
	}

	var h reqHead
	if err := e.readHead(cs, &h); err != nil {
		return false, err
	}
	keepAlive = http11 && !h.wantClose
	if rec != nil {
		t := rec.Now()
		cs.span.Stages[trace.StageParse] += t - tMark
		tMark = t
	}

	// Keyed requests leave the zero-alloc path: idempotent replay rides
	// the dedup cache shared with the net/http handler, so the edge
	// PARSES the header without allocating (readHead) and FORWARDS the
	// request through the cold-path delegate, key intact. Allocating here
	// is fine — keys ride only on dispatcher retries and chaos drills,
	// never the steady state, and the keyless fast path is untouched.
	if len(cs.ikey) > 0 && e.g.Dedup != nil {
		return e.serveCold(cs, "POST", "/invoke/"+string(cs.fname), http11, &h)
	}

	// Header-derived refusals, before any body byte moves:
	// declared-oversized payloads must not cost pool memory or bandwidth
	// (the connection closes — the body is unread on the wire), and
	// chunked bodies belong to the net/http gateway, not the fast path.
	if h.contentLen > e.g.maxBody() {
		return false, cs.writeSimple(http.StatusRequestEntityTooLarge, "payload too large", 0, false)
	}
	if h.chunked || h.contentLen < 0 {
		return false, cs.writeSimple(http.StatusLengthRequired, "content-length required", 0, false)
	}
	cl := int(h.contentLen)

	if e.draining.Load() || e.g.Pool.Draining() {
		refuseTrace(rec, cs, tMark)
		return cs.reject(&h, keepAlive, http.StatusServiceUnavailable, "draining", 5, true)
	}

	def := e.g.Reg.LookupBytes(cs.fname)
	if def == nil {
		refuseTrace(rec, cs, tMark)
		return cs.reject(&h, keepAlive, http.StatusNotFound, "unknown function", 0, false)
	}
	if rec != nil {
		cs.span.FuncID = int32(def.ID)
	}

	// Circuit breaker, then admission — the same order and semantics as
	// handleInvoke, lookup via bytes so the closed path stays alloc-free.
	var (
		brk   = e.g.Breakers.ForBytes(cs.fname)
		probe bool
	)
	if brk != nil {
		p, ok, retry := brk.Allow(time.Now())
		if !ok {
			refuseTrace(rec, cs, tMark)
			return cs.reject(&h, keepAlive, http.StatusServiceUnavailable, "circuit open", retrySecs(retry), false)
		}
		probe = p
	}
	if !e.g.Adm.TryAdmit() {
		if probe {
			brk.CancelProbe()
		}
		refuseTrace(rec, cs, tMark)
		return cs.reject(&h, keepAlive, http.StatusTooManyRequests, "saturated", 1, false)
	}
	defer e.g.Adm.Release()
	if rec != nil {
		t := rec.Now()
		cs.span.Stages[trace.StageAdmit] += t - tMark
		tMark = t
	}

	if h.expectContinue {
		if _, err := cs.conn.Write(continue100); err != nil {
			if probe {
				brk.CancelProbe()
			}
			return false, err
		}
	}

	// Read the body straight into the connection's reusable buffer — the
	// exact bytes the ArgBuf will alias, no intermediate copy or slice.
	if cap(cs.body) < cl {
		cs.body = make([]byte, cl)
	}
	payload := cs.body[:cl]
	if _, err := io.ReadFull(cs.br, payload); err != nil {
		if probe {
			brk.CancelProbe()
		}
		return false, err
	}
	if rec != nil {
		// The body read folds into parse: wire time, not runtime time.
		t := rec.Now()
		cs.span.Stages[trace.StageParse] += t - tMark
		tMark = t
	}

	// Deadline via the connection's recycled timer: InvokeTimed selects on
	// its channel directly, so no context (or timer) is allocated.
	var (
		deadline time.Time
		expired  <-chan time.Time
	)
	if d := e.g.RequestTimeout; d > 0 {
		deadline = time.Now().Add(d)
		if cs.timer == nil {
			cs.timer = time.NewTimer(d)
		} else {
			cs.timer.Reset(d)
		}
		cs.timerArmed = true
		expired = cs.timer.C
	}

	var spp *trace.Span
	if rec != nil {
		spp = &cs.span
	}
	resp, abandoned, err := e.g.Pool.InvokeTimed(def, payload, deadline, expired, spp)

	if cs.timerArmed {
		cs.timerArmed = false
		if abandoned {
			// InvokeTimed consumed the fired tick; the timer is clean.
		} else if !cs.timer.Stop() {
			// Fired between completion and Stop: drain the stale tick so
			// the next Reset cannot deliver it into a fresh invocation.
			select {
			case <-cs.timer.C:
			default:
			}
		}
	}
	if abandoned {
		// The runtime still owns the ArgBuf aliasing cs.body: surrender
		// the buffer to the GC and start fresh next request (rare path).
		cs.body = nil
	}

	if brk != nil {
		e.g.recordOutcome(brk, probe, err)
	}
	if err != nil {
		// Abandoned requests are published by the runtime when they finally
		// finish (the canceled rule in pool.finish); everything else is the
		// edge's to publish. A span the runtime never adopted (submit-time
		// refusal) has no EndNS — classify and close it here.
		if rec != nil && !abandoned {
			sh := int(cs.span.Shard)
			if cs.span.EndNS == 0 {
				sh = -1
				cs.span.EndNS = rec.Now()
				switch {
				case errors.Is(err, pool.ErrDegraded):
					cs.span.Outcome = trace.OutcomeShed
				case errors.Is(err, pool.ErrSaturated):
					cs.span.Outcome = trace.OutcomeSaturated
				default:
					cs.span.Outcome = trace.OutcomeError
				}
			}
			rec.Publish(sh, &cs.span)
		}
		return keepAlive, cs.writeInvokeError(err)
	}

	// Answer straight from the VMA-backed response bytes: build the head
	// in connection scratch, then one writev for head + body.
	b := cs.wbuf[:0]
	b = append(b, "HTTP/1.1 200 OK\r\nContent-Length: "...)
	b = strconv.AppendInt(b, int64(len(resp)), 10)
	b = append(b, "\r\nContent-Type: application/octet-stream\r\n\r\n"...)
	cs.wbuf = b
	if err := cs.writev(b, resp); err != nil {
		return false, err
	}
	if rec != nil {
		// Response writev, stamped after the bytes hit the socket; then the
		// completed span lands on the shard of the executor that finished it.
		t := rec.Now()
		if cs.span.EndNS > 0 {
			cs.span.Stages[trace.StageResp] += t - cs.span.EndNS
		}
		cs.span.EndNS = t
		rec.Publish(int(cs.span.Shard), &cs.span)
	}
	return keepAlive, nil
}

// refuseTrace closes and publishes a span for a request refused at the edge
// (draining, unknown function, open breaker, admission). The time since the
// last mark is charged to admit — the refusal verdict IS the admission work.
func refuseTrace(rec *trace.Recorder, cs *connState, tMark int64) {
	if rec == nil {
		return
	}
	t := rec.Now()
	cs.span.Stages[trace.StageAdmit] += t - tMark
	cs.span.EndNS = t
	cs.span.Outcome = trace.OutcomeRefused
	rec.Publish(-1, &cs.span)
}

// writev writes head+body with one gathered write, rebuilding the
// net.Buffers from the connection's backing array (WriteTo consumes it).
func (cs *connState) writev(head, body []byte) error {
	cs.nbArr[0], cs.nbArr[1] = head, body
	cs.nb = net.Buffers(cs.nbArr[:2])
	_, err := cs.nb.WriteTo(cs.conn)
	cs.nbArr[0], cs.nbArr[1] = nil, nil
	return err
}

// errRefused marks a request readHead already answered (400/431): the
// caller must close the connection without writing anything further. The
// previous code returned writeSimple's error here — nil on a successful
// write — so serveOne carried on and stacked a second response (e.g. 411)
// onto the same request.
var errRefused = errors.New("edge: refusal already written")

// readHead parses the header block into h, leaving the reader positioned
// at the body. Unknown headers are skipped; only the five the edge acts on
// are matched (case-insensitively, without copies).
func (e *Edge) readHead(cs *connState, h *reqHead) error {
	h.contentLen = -1
	cs.host = cs.host[:0]
	cs.ikey = cs.ikey[:0]
	for {
		line, err := cs.br.ReadSlice('\n')
		if err != nil {
			if err == bufio.ErrBufferFull {
				if werr := cs.writeSimple(http.StatusRequestHeaderFieldsTooLarge, "header too large", 0, false); werr != nil {
					return werr
				}
				return errRefused
			}
			return err
		}
		line = trimCRLF(line)
		if len(line) == 0 {
			return nil
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key, val := line[:colon], trimOWS(line[colon+1:])
		switch {
		case bytes.EqualFold(key, hdrContentLength):
			n, ok := parseDecimal(val)
			if !ok {
				if werr := cs.writeSimple(http.StatusBadRequest, "bad content-length", 0, false); werr != nil {
					return werr
				}
				return errRefused
			}
			h.contentLen = n
		case bytes.EqualFold(key, hdrConnection):
			if bytes.EqualFold(val, valClose) {
				h.wantClose = true
			}
		case bytes.EqualFold(key, hdrExpect):
			if bytes.EqualFold(val, val100Continue) {
				h.expectContinue = true
			}
		case bytes.EqualFold(key, hdrTransferEncoding):
			h.chunked = true
		case bytes.EqualFold(key, hdrHost):
			// Copied into connection scratch: the value's bytes live in
			// the volatile read buffer, invalidated by the next ReadSlice.
			cs.host = append(cs.host[:0], val...)
		case bytes.EqualFold(key, hdrIdemKey):
			cs.ikey = append(cs.ikey[:0], val...)
		}
	}
}

// discard consumes n unread body bytes so a refused request leaves the
// connection aligned on the next request (keep-alive under rejection — the
// retry-heavy overload pattern must not pay connection setup per 429).
func (cs *connState) discard(n int) error {
	if n <= 0 {
		return nil
	}
	_, err := cs.br.Discard(n)
	return err
}

// reject answers a refusal issued before any body byte was consumed. A
// normal client has the declared body in flight, so it is discarded and
// the connection kept alive. An Expect: 100-continue client has NOT sent
// the body and is waiting for the interim response — blocking in Discard
// would stall both sides until the client's expect timeout — so the final
// status goes out immediately and the connection closes, which RFC 9110
// §10.1.1 permits in place of the 100.
func (cs *connState) reject(h *reqHead, keepAlive bool, status int, msg string, retry int, drain bool) (bool, error) {
	if h.expectContinue {
		return false, cs.writeSimple(status, msg, retry, drain)
	}
	if err := cs.discard(int(h.contentLen)); err != nil {
		return false, err
	}
	return keepAlive, cs.writeSimple(status, msg, retry, drain)
}

// serveCold feeds a non-fast-path request through the regular gateway mux
// via a buffered ResponseWriter, then serializes the result. Allocation
// cost is irrelevant here; connection framing is not. A declared body is
// read off the wire before the mux runs (so keep-alive stays aligned on a
// request-line boundary), oversized or chunked bodies are refused with the
// connection closing (never buffered), and Connection: close is honored.
func (e *Edge) serveCold(cs *connState, method, path string, http11 bool, h *reqHead) (bool, error) {
	keepAlive := http11 && !h.wantClose
	if h.chunked {
		return false, cs.writeSimple(http.StatusLengthRequired, "content-length required", 0, false)
	}
	if h.contentLen > e.g.maxBody() {
		return false, cs.writeSimple(http.StatusRequestEntityTooLarge, "payload too large", 0, false)
	}
	var body io.Reader
	if h.contentLen > 0 {
		if h.expectContinue {
			if _, err := cs.conn.Write(continue100); err != nil {
				return false, err
			}
		}
		buf := make([]byte, h.contentLen)
		if _, err := io.ReadFull(cs.br, buf); err != nil {
			return false, err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, "http://jordd"+path, body)
	if err != nil {
		return false, cs.writeSimple(http.StatusBadRequest, "malformed request", 0, false)
	}
	if len(cs.host) > 0 {
		req.Host = string(cs.host)
	}
	if len(cs.ikey) > 0 {
		req.Header.Set(IdempotencyKeyHeader, string(cs.ikey))
	}
	cw := &coldWriter{h: make(http.Header), status: http.StatusOK}
	e.mux.ServeHTTP(cw, req)

	b := cs.wbuf[:0]
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(cw.status), 10)
	b = append(b, ' ')
	b = append(b, http.StatusText(cw.status)...)
	b = append(b, "\r\nContent-Length: "...)
	b = strconv.AppendInt(b, int64(cw.buf.Len()), 10)
	b = append(b, "\r\n"...)
	for k, vs := range cw.h {
		for _, v := range vs {
			b = append(b, k...)
			b = append(b, ": "...)
			b = append(b, v...)
			b = append(b, "\r\n"...)
		}
	}
	b = append(b, "\r\n"...)
	cs.wbuf = b
	if err := cs.writev(b, cw.buf.Bytes()); err != nil {
		return false, err
	}
	return keepAlive, nil
}

// coldWriter is the minimal ResponseWriter behind serveCold.
type coldWriter struct {
	h      http.Header
	buf    bytes.Buffer
	status int
	wrote  bool
}

func (w *coldWriter) Header() http.Header { return w.h }
func (w *coldWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
}
func (w *coldWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.buf.Write(p)
}

// writeSimple answers a status with a short plain-text body (retrySecs > 0
// adds Retry-After; drain adds the DrainingHeader cluster marker), built
// entirely in connection scratch — error paths stay allocation-free too,
// so overload answers are as cheap as successes.
func (cs *connState) writeSimple(status int, msg string, retrySecs int, drain bool) error {
	b := cs.wbuf[:0]
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(status), 10)
	b = append(b, ' ')
	b = append(b, http.StatusText(status)...)
	b = append(b, "\r\nContent-Length: "...)
	b = strconv.AppendInt(b, int64(len(msg)+1), 10)
	b = append(b, "\r\nContent-Type: text/plain; charset=utf-8\r\n"...)
	if retrySecs > 0 {
		b = append(b, "Retry-After: "...)
		b = strconv.AppendInt(b, int64(retrySecs), 10)
		b = append(b, "\r\n"...)
	}
	if drain {
		b = append(b, DrainingHeader...)
		b = append(b, ": 1\r\n"...)
	}
	b = append(b, "\r\n"...)
	b = append(b, msg...)
	b = append(b, '\n')
	cs.wbuf = b
	_, err := cs.conn.Write(b)
	return err
}

// writeInvokeError is writeInvokeError's status mapping for the edge path.
func (cs *connState) writeInvokeError(err error) error {
	switch {
	case errors.Is(err, pool.ErrSaturated):
		return cs.writeSimple(http.StatusTooManyRequests, "saturated", 1, false)
	case errors.Is(err, pool.ErrDegraded):
		return cs.writeSimple(http.StatusServiceUnavailable, "degraded", 1, false)
	case errors.Is(err, pool.ErrDraining):
		return cs.writeSimple(http.StatusServiceUnavailable, "draining", 5, true)
	case errors.Is(err, pool.ErrUnknownFunction):
		return cs.writeSimple(http.StatusNotFound, "unknown function", 0, false)
	case errors.Is(err, context.DeadlineExceeded):
		return cs.writeSimple(http.StatusGatewayTimeout, "deadline exceeded", 0, false)
	case errors.Is(err, context.Canceled):
		return cs.writeSimple(StatusClientClosedRequest, "client closed request", 0, false)
	default:
		return cs.writeSimple(http.StatusInternalServerError, err.Error(), 0, false)
	}
}

// retrySecs converts a breaker's retry hint to whole seconds, minimum 1.
func retrySecs(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func trimCRLF(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// trimOWS strips optional whitespace (spaces/tabs) from both ends.
func trimOWS(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for n := len(b); n > 0 && (b[n-1] == ' ' || b[n-1] == '\t'); n = len(b) {
		b = b[:n-1]
	}
	return b
}

// parseDecimal parses a non-negative decimal without allocating. Inputs
// longer than 18 digits are rejected outright: 18 digits always fit int64,
// while longer strings could wrap the n*10+digit accumulator past the sign
// bit and back to a small positive value — a Content-Length alias that
// would let the edge misframe the body (checking n < 0 alone misses the
// double-wrap case).
func parseDecimal(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}
