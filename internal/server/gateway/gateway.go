// Package gateway is the live serving path's HTTP front end: the jordd
// endpoints (POST /invoke/{fn}, GET /healthz, GET /readyz, GET /statsz,
// GET /varz) in front of the worker pool, with admission control,
// per-function circuit breakers, per-request deadlines, and drain
// awareness. It plays the role tinyFaaS-style reverse proxies and faasd's
// gateway play in single-binary FaaS daemons, but dispatches into
// in-process protection domains instead of containers.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/server/admission"
	"jord/internal/server/breaker"
	"jord/internal/server/pool"
	"jord/internal/server/router"
	"jord/internal/server/state"
)

// Gateway wires the HTTP surface to the pool.
type Gateway struct {
	Reg  *router.Registry
	Pool *pool.Pool
	Adm  *admission.Controller

	// Store is the shared-state tier, surfaced in /statsz and /varz.
	// nil when the daemon runs stateless.
	Store *state.Store

	// Breakers holds one circuit breaker per registered function; a
	// function whose breaker is open answers 503 + Retry-After without
	// touching the pool. nil disables breakers entirely.
	Breakers *breaker.Set

	// Dedup is the idempotent-replay cache: a request carrying an
	// IdempotencyKeyHeader whose key already completed here is answered
	// from the recorded response without executing again (see dedup.go).
	// nil disables replay — keyed requests then execute normally.
	Dedup *DedupCache

	// RequestTimeout is the per-request deadline applied to every
	// invocation (0 = none). Requests that exceed it — queued or running —
	// answer 504.
	RequestTimeout time.Duration

	// MaxBodyBytes bounds /invoke payloads (0 = 1 MiB).
	MaxBodyBytes int64

	draining atomic.Bool

	// Interval-rate bookkeeping for /statsz: per-function completion counts
	// at the previous Snapshot, so each report carries a windowed rate
	// (delta since the last scrape) alongside the lifetime average.
	snapMu     sync.Mutex
	lastCounts map[string]uint64
	lastSnapAt time.Time
}

// SetDraining flips the health signal: while draining, /healthz answers
// 503 so load balancers stop routing here, and /invoke refuses new work.
func (g *Gateway) SetDraining(v bool) { g.draining.Store(v) }

// Draining reports the drain state.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Handler returns the gateway's HTTP mux.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke/{fn}", g.handleInvoke)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /statsz", g.handleStatsz)
	mux.HandleFunc("GET /varz", g.handleVarz)
	mux.HandleFunc("GET /tracez", g.handleTracez)
	mux.HandleFunc("GET /flightz", g.handleFlightz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

// DrainingHeader marks a 503 as caused by THIS worker going away rather
// than by load. A front-end dispatcher (internal/cluster) uses it to tell
// "this node is draining — place the request on another worker" apart from
// "the fleet is saturated — pass the 503 through to the client".
const DrainingHeader = "X-Jord-Draining"

// retryAfter stamps the client-backoff hint every 429/503 carries. The
// header is whole seconds, rounded up, minimum 1 — sub-second hints would
// serialize as "0", which clients read as "retry immediately".
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// Degraded reports whether the pool is inside its tiered-shedding band:
// the free-PD supply is at or below the shed threshold, so external
// admissions are being refused to protect internal (nested) progress.
func (g *Gateway) Degraded() bool {
	thr := g.Pool.ShedThreshold()
	return thr > 0 && g.Pool.Table().FreeCount() <= thr
}

func (g *Gateway) maxBody() int64 {
	if g.MaxBodyBytes > 0 {
		return g.MaxBodyBytes
	}
	return 1 << 20
}

// bodyPool recycles request-body buffers so the /invoke read path does not
// allocate a fresh slice per request. A buffer read here becomes the
// invocation's ArgBuf payload zero-copy, so it may only return to the pool
// once the runtime has certainly released the aliasing VMA — see
// bodyRecyclable.
var bodyPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// getBody returns a pooled buffer with capacity for n bytes.
func getBody(n int64) *[]byte {
	bp := bodyPool.Get().(*[]byte)
	if int64(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	return bp
}

// bodyRecyclable reports whether an Invoke outcome guarantees the runtime
// no longer aliases the request's payload buffer. Every completed outcome
// (success, function error, pre-submit refusal) qualifies: the ArgBuf was
// released before Invoke returned. Deadline/cancel outcomes do NOT — they
// may be ABANDONS, where the in-flight invocation still owns the ArgBuf
// aliasing our buffer; those buffers are leaked to the GC (rare path) and
// the pool simply allocates a fresh one later.
func bodyRecyclable(err error) bool {
	return !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)
}

func (g *Gateway) handleInvoke(w http.ResponseWriter, r *http.Request) {
	fn := r.PathValue("fn")
	if g.draining.Load() {
		retryAfter(w, 5*time.Second)
		w.Header().Set(DrainingHeader, "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if g.Reg.Lookup(fn) == nil {
		http.Error(w, fmt.Sprintf("unknown function %q", fn), http.StatusNotFound)
		return
	}

	// Idempotent replay before any resource is spent: a re-sent
	// invocation (a dispatcher retrying across a broken connection) whose
	// key already completed is answered from the cache — no admission
	// slot, no pool work, no duplicated side effects.
	ded, served := g.dedupBegin(w, r)
	if served {
		return
	}
	committed := false
	if ded != nil {
		defer func() {
			if !committed {
				g.Dedup.Abort(ded)
			}
		}()
	}

	// Circuit breaker first: a quarantined function is refused before it
	// can consume an admission slot or pool resources.
	var (
		brk   *breaker.Breaker
		probe bool
	)
	if b := g.Breakers.For(fn); b != nil {
		p, ok, retry := b.Allow(time.Now())
		if !ok {
			retryAfter(w, retry)
			http.Error(w, fmt.Sprintf("circuit open for %q", fn), http.StatusServiceUnavailable)
			return
		}
		brk, probe = b, p
	}

	if !g.Adm.TryAdmit() {
		if probe {
			brk.CancelProbe() // the refusal says nothing about the function
		}
		retryAfter(w, time.Second)
		http.Error(w, "saturated: too many requests in flight", http.StatusTooManyRequests)
		return
	}
	defer g.Adm.Release()

	// Declared-oversized payloads are refused BEFORE a single body byte is
	// buffered: the 413 must not cost pool memory or read bandwidth.
	if r.ContentLength > g.maxBody() {
		if probe {
			brk.CancelProbe()
		}
		http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
		return
	}

	var (
		payload []byte
		pooled  *[]byte
	)
	if cl := r.ContentLength; cl >= 0 {
		// Known length within bounds: read straight into a pooled buffer
		// that becomes the ArgBuf payload zero-copy.
		pooled = getBody(cl)
		payload = (*pooled)[:cl]
		if _, err := io.ReadFull(r.Body, payload); err != nil {
			bodyPool.Put(pooled)
			if probe {
				brk.CancelProbe()
			}
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		// Unknown length (chunked): the rare compatibility path — buffer
		// plainly, enforce the cap after the fact.
		var err error
		payload, err = io.ReadAll(io.LimitReader(r.Body, g.maxBody()+1))
		if err != nil {
			if probe {
				brk.CancelProbe()
			}
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(payload)) > g.maxBody() {
			if probe {
				brk.CancelProbe()
			}
			http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
			return
		}
	}

	ctx := r.Context()
	if g.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.RequestTimeout)
		defer cancel()
	}

	resp, err := g.Pool.Invoke(ctx, fn, payload)
	if brk != nil {
		g.recordOutcome(brk, probe, err)
	}
	if err != nil {
		if pooled != nil && bodyRecyclable(err) {
			bodyPool.Put(pooled)
		}
		// A function-level failure is still a COMPLETED execution: record
		// it so a retry replays the verdict instead of running the body a
		// second time. Refusals and ambiguous outcomes abort instead (see
		// invokeExecuted) and the retry re-executes.
		if ded != nil && invokeExecuted(err) {
			g.Dedup.Commit(ded, http.StatusInternalServerError, "text/plain; charset=utf-8", []byte(err.Error()+"\n"))
			committed = true
		}
		g.writeInvokeError(w, err)
		return
	}
	// Commit BEFORE writing to the client: the reason a retry exists is
	// that this very write can fail mid-flight, and the replay must
	// already be visible when the re-sent request races in.
	if ded != nil {
		g.Dedup.Commit(ded, http.StatusOK, "application/octet-stream", resp)
		committed = true
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(resp)
	// The response may alias the request buffer (echo-shaped functions);
	// recycle only after the write has copied it out.
	if pooled != nil {
		bodyPool.Put(pooled)
	}
}

// dedupBegin resolves a keyed request against the replay cache: it
// either claims leadership (the caller executes and must Commit/Abort
// the returned entry), replays a completed response (served=true), or
// answers the client-gone error while waiting on a concurrent leader.
// Unkeyed requests (or a nil cache) pass straight through.
func (g *Gateway) dedupBegin(w http.ResponseWriter, r *http.Request) (e *dedupEntry, served bool) {
	if g.Dedup == nil {
		return nil, false
	}
	key := r.Header.Get(IdempotencyKeyHeader)
	if key == "" {
		return nil, false
	}
	for {
		e, leader := g.Dedup.Begin(key)
		if leader {
			return e, false
		}
		// Single-flight: a concurrent request holds the key. Wait for its
		// outcome rather than executing the same invocation twice.
		select {
		case <-e.Done():
		case <-r.Context().Done():
			g.writeInvokeError(w, r.Context().Err())
			return nil, true
		}
		if status, ctype, body, ok := e.Result(); ok {
			h := w.Header()
			if ctype != "" {
				h.Set("Content-Type", ctype)
			}
			h.Set(DedupHeader, "1")
			w.WriteHeader(status)
			_, _ = w.Write(body)
			return nil, true
		}
		// The leader aborted without completing (refusal, cancellation):
		// loop and race to become the next leader ourselves.
	}
}

// invokeExecuted reports whether an Invoke error implies the function
// body ran to completion — only those outcomes are recorded for replay.
// Backpressure refusals say nothing about the invocation (a retry should
// execute), and deadline/cancel outcomes are ambiguous: the invocation
// may still be running, so recording a verdict could contradict a side
// effect that lands later. Those paths keep at-least-once semantics.
func invokeExecuted(err error) bool {
	switch {
	case errors.Is(err, pool.ErrSaturated), errors.Is(err, pool.ErrDegraded),
		errors.Is(err, pool.ErrDraining), errors.Is(err, pool.ErrUnknownFunction),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return false
	}
	return true
}

// recordOutcome classifies one invocation result for the function's
// breaker. Failures are signals the FUNCTION is sick: panics and blown
// deadlines. Backpressure outcomes (saturation, degradation, drain, client
// gone) say nothing about the function and are not recorded — for a probe
// they release the slot so the next request probes again. Everything else,
// including application errors the body returned deliberately, counts as
// success: a function returning errors is working as programmed.
func (g *Gateway) recordOutcome(brk *breaker.Breaker, probe bool, err error) {
	switch {
	case err == nil:
		brk.Record(false, probe, time.Now())
	case errors.Is(err, pool.ErrPanicked), errors.Is(err, context.DeadlineExceeded):
		brk.Record(true, probe, time.Now())
	case errors.Is(err, pool.ErrSaturated), errors.Is(err, pool.ErrDegraded),
		errors.Is(err, pool.ErrDraining), errors.Is(err, context.Canceled):
		if probe {
			brk.CancelProbe()
		}
	default:
		brk.Record(false, probe, time.Now())
	}
}

// StatusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response was ready. Pool cancellations map onto it so
// abandoned requests are accounted as client behavior, not server errors.
const StatusClientClosedRequest = 499

// writeInvokeError maps pool errors onto HTTP statuses: saturation is
// backpressure (429), tiered degradation and drain are 503, deadlines are
// gateway timeouts (504), cancellations are client-closed-request (499),
// anything else — including isolation faults and function errors — is a
// plain 500 with the message. Every 429/503 carries Retry-After.
func (g *Gateway) writeInvokeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, pool.ErrSaturated):
		retryAfter(w, time.Second)
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, pool.ErrDegraded), errors.Is(err, state.ErrDegraded):
		retryAfter(w, time.Second)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, pool.ErrDraining):
		retryAfter(w, 5*time.Second)
		w.Header().Set(DrainingHeader, "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, pool.ErrUnknownFunction):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// Usually unreachable over real HTTP (the client is gone), but it
		// keeps the accounting honest for in-process callers and tests.
		http.Error(w, "client closed request", StatusClientClosedRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// Readyz is the /readyz document: the overload-control view of the node,
// distinguishing WHY it is (or is not) taking traffic — drain (going
// away), degraded (PD pressure, shedding externals), quarantined
// functions (per-function breakers open; the node itself still serves).
type Readyz struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// Degraded is the tiered-shedding state: free PDs at or below the shed
	// threshold, externals refused to protect internal progress.
	Degraded bool `json:"degraded"`
	// AdmitLimit is the current (AIMD-steered) admission limit vs its cap.
	AdmitLimit int64 `json:"admit_limit"`
	AdmitMax   int64 `json:"admit_max"`
	// OpenBreakers lists functions currently quarantined (breaker open or
	// half-open). The node stays ready: other functions serve normally.
	OpenBreakers []string `json:"open_breakers,omitempty"`
	// Executors and JBSQBound size the worker for a front-end dispatcher:
	// internal/cluster auto-sizes its per-worker outstanding bound (JBSQ k)
	// to 4 x executors x jbsq — the same proportion as the worker's own
	// default admission cap, so the dispatcher saturates exactly when the
	// worker would start refusing.
	Executors int `json:"executors"`
	JBSQBound int `json:"jbsq_bound"`
}

// handleReadyz answers 200 while the node should receive traffic and 503
// while it should not (draining, or degraded by PD pressure) — always with
// the full JSON state so operators see WHICH condition tripped. Open
// breakers alone do not fail readiness: they quarantine single functions,
// not the node.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	cfg := g.Pool.Config().Normalized()
	doc := Readyz{
		Draining:     g.draining.Load(),
		Degraded:     g.Degraded(),
		AdmitLimit:   g.Adm.Limit(),
		AdmitMax:     g.Adm.Max(),
		OpenBreakers: g.Breakers.NotClosed(),
		Executors:    cfg.Executors,
		JBSQBound:    cfg.JBSQBound,
	}
	doc.Ready = !doc.Draining && !doc.Degraded
	w.Header().Set("Content-Type", "application/json")
	if !doc.Ready {
		retryAfter(w, time.Second)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// FuncStatsz is one function's row in the /statsz report. Latencies are
// microseconds, measured arrival -> completion on the live path.
type FuncStatsz struct {
	Name          string `json:"name"`
	Count         uint64 `json:"count"`
	Errors        uint64 `json:"errors"`
	Watchdog      uint64 `json:"watchdog,omitempty"` // flagged past ExecTimeout
	Breaker       string `json:"breaker,omitempty"`  // closed | open | half-open
	BreakerTrips  uint64 `json:"breaker_trips,omitempty"`
	ShortCircuits uint64 `json:"short_circuits,omitempty"` // 503s served while not closed
	// ThroughputRPS is the LIFETIME average (count / uptime) — stable but
	// stale under changing load. IntervalRPS is the windowed rate since the
	// previous /statsz scrape (falls back to the lifetime average on the
	// first scrape), which is what a dashboard should plot.
	ThroughputRPS float64 `json:"throughput_rps"`
	IntervalRPS   float64 `json:"interval_rps"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	P999Us        float64 `json:"p999_us"`
	MeanUs        float64 `json:"mean_us"`
	MaxUs         float64 `json:"max_us"`
}

// Statsz is the /statsz document.
type Statsz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Inflight int64  `json:"inflight"`
	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"` // gateway admission rejections

	// Adaptive admission: the AIMD-steered limit under the hard cap, and
	// how often each direction has fired.
	AdmitLimit     int64  `json:"admit_limit"`
	AdmitMax       int64  `json:"admit_max"`
	AdmitAdaptive  bool   `json:"admit_adaptive"`
	AdmitIncreases uint64 `json:"admit_increases,omitempty"`
	AdmitDecreases uint64 `json:"admit_decreases,omitempty"`

	// Degraded mirrors /readyz: free PDs at or below the shed threshold.
	Degraded     bool     `json:"degraded"`
	OpenBreakers []string `json:"open_breakers,omitempty"`

	PoolDispatched uint64 `json:"pool_dispatched"`
	PoolCompleted  uint64 `json:"pool_completed"`
	PoolExpired    uint64 `json:"pool_expired"`  // deadline-exceeded completions (504)
	PoolCanceled   uint64 `json:"pool_canceled"` // caller-gone completions (499)
	PoolRejected   uint64 `json:"pool_rejected"` // external-queue 429s
	PoolShed       uint64 `json:"pool_shed"`     // tiered-shedding 503s (PD pressure)
	PoolOrphaned   uint64 `json:"pool_orphaned"` // children detached at parent teardown
	PoolWatchdog   uint64 `json:"pool_watchdog"` // invocations flagged past ExecTimeout
	PoolSwept      uint64 `json:"pool_swept"`    // dead requests reaped pre-dispatch

	ExternalQueue int    `json:"external_queue_depth"`
	InternalQueue int    `json:"internal_queue_depth"`
	ExecutorQueue int    `json:"executor_queue_depth"`
	LivePDs       int    `json:"live_pds"`
	Faults        uint64 `json:"isolation_faults"`

	// State is the shared-state tier's counter snapshot (store size,
	// snapshot/promotion/ownership-transfer counters, copy-bytes-avoided);
	// absent on stateless daemons.
	State *state.Stats `json:"state,omitempty"`

	Funcs []FuncStatsz `json:"funcs"`
}

// Snapshot assembles the current stats document.
func (g *Gateway) Snapshot() Statsz {
	st := g.Pool.Stats()
	ext, internal, execQ := g.Pool.QueueDepths()
	uptime := time.Since(g.Pool.StartedAt()).Seconds()
	doc := Statsz{
		UptimeSeconds:  uptime,
		Draining:       g.draining.Load(),
		Inflight:       g.Adm.Inflight(),
		Admitted:       g.Adm.Admitted(),
		Rejected:       g.Adm.Rejected(),
		AdmitLimit:     g.Adm.Limit(),
		AdmitMax:       g.Adm.Max(),
		AdmitAdaptive:  g.Adm.Adaptive(),
		AdmitIncreases: g.Adm.Increases(),
		AdmitDecreases: g.Adm.Decreases(),
		Degraded:       g.Degraded(),
		OpenBreakers:   g.Breakers.NotClosed(),
		PoolDispatched: st.Dispatched.Load(),
		PoolCompleted:  st.Completed.Load(),
		PoolExpired:    st.Expired.Load(),
		PoolCanceled:   st.Canceled.Load(),
		PoolRejected:   st.Rejected.Load(),
		PoolShed:       st.Shed.Load(),
		PoolOrphaned:   st.Orphaned.Load(),
		PoolWatchdog:   st.Watchdog.Load(),
		PoolSwept:      st.Swept.Load(),
		ExternalQueue:  ext,
		InternalQueue:  internal,
		ExecutorQueue:  execQ,
		LivePDs:        g.Pool.Table().LivePDs(),
		Faults:         g.Pool.Table().Faults(),
	}
	if g.Store != nil {
		st := g.Store.StatsSnapshot()
		doc.State = &st
	}
	// Windowed rates: one lock per Snapshot, never on the serving path.
	now := time.Now()
	g.snapMu.Lock()
	elapsed := now.Sub(g.lastSnapAt).Seconds()
	first := g.lastSnapAt.IsZero() || elapsed <= 0
	if g.lastCounts == nil {
		g.lastCounts = make(map[string]uint64)
	}
	for _, fs := range st.Funcs() {
		snap := fs.Latency.Snapshot()
		row := FuncStatsz{
			Name:     fs.Name,
			Count:    fs.Count.Load(),
			Errors:   fs.Errors.Load(),
			Watchdog: fs.Watchdog.Load(),
			P50Us:    float64(snap.P50) / 1e3,
			P99Us:    float64(snap.P99) / 1e3,
			P999Us:   float64(snap.P999) / 1e3,
			MeanUs:   snap.Mean / 1e3,
			MaxUs:    float64(snap.Max) / 1e3,
		}
		if b := g.Breakers.For(fs.Name); b != nil {
			row.Breaker = b.State().String()
			row.BreakerTrips = b.Trips()
			row.ShortCircuits = b.ShortCircuits()
		}
		if uptime > 0 {
			row.ThroughputRPS = float64(row.Count) / uptime
		}
		if first {
			row.IntervalRPS = row.ThroughputRPS
		} else if prev := g.lastCounts[fs.Name]; row.Count >= prev {
			row.IntervalRPS = float64(row.Count-prev) / elapsed
		}
		g.lastCounts[fs.Name] = row.Count
		doc.Funcs = append(doc.Funcs, row)
	}
	g.lastSnapAt = now
	g.snapMu.Unlock()
	return doc
}

func (g *Gateway) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(g.Snapshot())
}

// Varz is the /varz document: the pool's effective configuration plus the
// runtime gauges an operator checks first when the hot path misbehaves —
// PD supply (free count vs reserve), allocation churn, and queue depths.
// Where /statsz is per-function serving metrics, /varz is the runtime's
// own internals.
type Varz struct {
	NumCPU           int     `json:"num_cpu"`    // physical parallelism available
	GOMAXPROCS       int     `json:"gomaxprocs"` // parallelism the runtime may use
	Executors        int     `json:"executors"`
	Orchestrators    int     `json:"orchestrators"`
	JBSQBound        int     `json:"jbsq_bound"`
	ExternalQueueCap int     `json:"external_queue_cap"`
	NumPDs           int     `json:"num_pds"`
	PDReserve        int     `json:"pd_reserve"`
	PDShedMargin     int     `json:"pd_shed_margin"` // 0 = tiered shedding off
	ShedThreshold    int     `json:"shed_threshold"` // free PDs <= this => degraded
	PDShards         int     `json:"pd_shards"`
	ExecTimeoutMs    float64 `json:"exec_timeout_ms"`   // 0 = watchdog off
	SweepIntervalMs  float64 `json:"sweep_interval_ms"` // <= 0 = sweeper off

	// Admission: the AIMD-steered limit (== admit_max on static gates) and
	// the controller's knobs.
	AdmitLimit      int64   `json:"admit_limit"`
	AdmitMax        int64   `json:"admit_max"`
	AdmitAdaptive   bool    `json:"admit_adaptive"`
	AdmitTargetMs   float64 `json:"admit_target_ms,omitempty"`   // queue-delay SLO
	AdmitIntervalMs float64 `json:"admit_interval_ms,omitempty"` // AIMD window

	// Breakers: shared configuration; per-function state lives in /statsz.
	BreakersEnabled   bool    `json:"breakers_enabled"`
	BreakerWindowMs   float64 `json:"breaker_window_ms,omitempty"`
	BreakerCooldownMs float64 `json:"breaker_cooldown_ms,omitempty"`
	BreakerRatio      float64 `json:"breaker_ratio,omitempty"`

	PDFree   int    `json:"pd_free"`
	PDLive   int    `json:"pd_live"`
	Cgets    uint64 `json:"cgets"`
	Cputs    uint64 `json:"cputs"`
	Faults   uint64 `json:"isolation_faults"`
	Canceled uint64 `json:"canceled"` // completions with caller gone (499)
	Expired  uint64 `json:"expired"`  // deadline-exceeded completions (504)
	Orphaned uint64 `json:"orphaned"` // children detached at parent teardown
	Watchdog uint64 `json:"watchdog"` // invocations flagged past ExecTimeout
	Swept    uint64 `json:"swept"`    // dead requests reaped pre-dispatch
	Shed     uint64 `json:"shed"`     // externals refused by tiered shedding
	Draining bool   `json:"draining"`
	Degraded bool   `json:"degraded"` // free PDs at or below shed threshold

	ExternalQueue int `json:"external_queue_depth"`
	InternalQueue int `json:"internal_queue_depth"`
	ExecutorQueue int `json:"executor_queue_depth"`

	// Shared-state tier internals (absent on stateless daemons).
	StateEnabled bool         `json:"state_enabled"`
	State        *state.Stats `json:"state,omitempty"`
}

func (g *Gateway) handleVarz(w http.ResponseWriter, _ *http.Request) {
	cfg := g.Pool.Config().Normalized()
	tab := g.Pool.Table()
	ext, internal, execQ := g.Pool.QueueDepths()
	st := g.Pool.Stats()
	doc := Varz{
		NumCPU:           runtime.NumCPU(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Executors:        cfg.Executors,
		Orchestrators:    cfg.Orchestrators,
		JBSQBound:        cfg.JBSQBound,
		ExternalQueueCap: cfg.ExternalQueueCap,
		NumPDs:           cfg.NumPDs,
		PDReserve:        cfg.PDReserve,
		PDShedMargin:     cfg.PDShedMargin,
		ShedThreshold:    g.Pool.ShedThreshold(),
		PDShards:         tab.Shards(),
		ExecTimeoutMs:    float64(cfg.ExecTimeout) / 1e6,
		SweepIntervalMs:  float64(cfg.SweepInterval) / 1e6,
		AdmitLimit:       g.Adm.Limit(),
		AdmitMax:         g.Adm.Max(),
		AdmitAdaptive:    g.Adm.Adaptive(),
		AdmitTargetMs:    float64(g.Adm.Target()) / 1e6,
		AdmitIntervalMs:  float64(g.Adm.Interval()) / 1e6,
		PDFree:           tab.FreeCountExact(),
		PDLive:           tab.LivePDs(),
		Cgets:            tab.Cgets(),
		Cputs:            tab.Cputs(),
		Faults:           tab.Faults(),
		Canceled:         st.Canceled.Load(),
		Expired:          st.Expired.Load(),
		Orphaned:         st.Orphaned.Load(),
		Watchdog:         st.Watchdog.Load(),
		Swept:            st.Swept.Load(),
		Shed:             st.Shed.Load(),
		Draining:         g.draining.Load(),
		Degraded:         g.Degraded(),
		ExternalQueue:    ext,
		InternalQueue:    internal,
		ExecutorQueue:    execQ,
	}
	if g.Breakers != nil {
		bc := g.Breakers.Config()
		doc.BreakersEnabled = true
		doc.BreakerWindowMs = float64(bc.Window) / 1e6
		doc.BreakerCooldownMs = float64(bc.Cooldown) / 1e6
		doc.BreakerRatio = bc.FailureRatio
	}
	if g.Store != nil {
		doc.StateEnabled = true
		st := g.Store.StatsSnapshot()
		doc.State = &st
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
