package gateway

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// IdempotencyKeyHeader names the header a front-end dispatcher stamps on
// every forwarded invocation. A worker that sees a key it has already
// completed replays the recorded response instead of executing the
// function again — the mechanism that turns the dispatcher's
// retry-after-a-broken-connection from at-least-once into at-most-once
// per worker. Clients may supply their own key; absent one, the
// dispatcher generates it.
const IdempotencyKeyHeader = "X-Jord-Idempotency-Key"

// DedupHeader marks a response that was replayed from the idempotency
// cache rather than executed ("1"). The dispatcher forwards it so a
// client (and the dispatcher's own dedup_hits counter) can tell a replay
// from a fresh execution.
const DedupHeader = "X-Jord-Dedup"

// maxDedupBody caps the response size the cache will remember. A
// completed response larger than this is not cached (the Commit degrades
// to an Abort): replaying it would be nice, but pinning megabytes per key
// is how a retry cache becomes a memory leak.
const maxDedupBody = 256 << 10

// dedupEntry is one idempotency key's slot: in progress until the leader
// commits or aborts, then (if committed) a recorded response.
type dedupEntry struct {
	key  string
	done chan struct{} // closed once the outcome is recorded

	// Written before close(done), read only after <-done (or under the
	// cache mutex).
	committed bool
	status    int
	ctype     string
	body      []byte

	elem *list.Element // LRU position; nil while in progress
}

// Done is closed once the entry's outcome (commit or abort) is recorded.
func (e *dedupEntry) Done() <-chan struct{} { return e.done }

// Result returns the recorded response after Done. ok=false means the
// leader aborted (refusal, cancellation, oversized body): the request
// was NOT completed and the caller should race for leadership itself.
func (e *dedupEntry) Result() (status int, ctype string, body []byte, ok bool) {
	if !e.committed {
		return 0, "", nil, false
	}
	return e.status, e.ctype, e.body, true
}

// DedupCache is the bounded idempotent-replay cache: completed /invoke
// responses keyed by IdempotencyKeyHeader, evicted LRU by entry count and
// total body bytes. Concurrent arrivals of the same key single-flight:
// the first caller (the leader) executes, the rest wait on Done and
// replay the committed result.
//
// The cache is per worker. A retry that lands on a DIFFERENT worker will
// not find the key — which is why the dispatcher's retry policy replays
// unsafe (post-delivery) failures on the same worker first.
type DedupCache struct {
	mu       sync.Mutex
	maxEnt   int
	maxBytes int64
	bytes    int64
	entries  map[string]*dedupEntry
	lru      *list.List // completed entries only; front = most recent

	hits      atomic.Uint64 // Begin found a committed or in-progress entry
	evictions atomic.Uint64
}

// NewDedupCache builds a cache holding up to maxEntries completed
// responses (0 = 4096) within a total body-byte budget of
// maxEntries x 16 KiB (min 4 MiB).
func NewDedupCache(maxEntries int) *DedupCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	maxBytes := int64(maxEntries) * (16 << 10)
	if maxBytes < 4<<20 {
		maxBytes = 4 << 20
	}
	return &DedupCache{
		maxEnt:   maxEntries,
		maxBytes: maxBytes,
		entries:  make(map[string]*dedupEntry),
		lru:      list.New(),
	}
}

// Begin claims or joins the entry for key. leader=true: the caller owns
// the execution and MUST finish with Commit or Abort. leader=false: some
// other request holds (or held) the key — wait on e.Done(), then read
// e.Result(); if ok=false the leader aborted and the caller should call
// Begin again (it may now become the leader).
func (c *DedupCache) Begin(key string) (e *dedupEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.hits.Add(1)
		return e, false
	}
	e = &dedupEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// Commit records the leader's completed response (body is copied) and
// wakes every waiter. Oversized bodies are not cached — the entry aborts
// instead, and a late retry re-executes (at-least-once for that key).
func (c *DedupCache) Commit(e *dedupEntry, status int, ctype string, body []byte) {
	if len(body) > maxDedupBody {
		c.Abort(e)
		return
	}
	cp := make([]byte, len(body))
	copy(cp, body)
	c.mu.Lock()
	e.committed = true
	e.status = status
	e.ctype = ctype
	e.body = cp
	e.elem = c.lru.PushFront(e)
	c.bytes += int64(len(cp))
	// Evict completed entries LRU-first until within both budgets.
	// In-progress entries never sit in the list, so they are never evicted
	// out from under their waiters.
	for c.lru.Len() > c.maxEnt || c.bytes > c.maxBytes {
		tail := c.lru.Back()
		if tail == nil || tail == e.elem {
			break
		}
		c.removeLocked(tail.Value.(*dedupEntry))
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	close(e.done)
}

// Abort discards an entry whose request did not complete (refusal,
// cancellation): waiters wake with ok=false and race to become the next
// leader.
func (c *DedupCache) Abort(e *dedupEntry) {
	c.mu.Lock()
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
	close(e.done)
}

func (c *DedupCache) removeLocked(e *dedupEntry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	c.bytes -= int64(len(e.body))
}

// Len reports the number of completed cached responses.
func (c *DedupCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Hits reports how many Begin calls found an existing entry.
func (c *DedupCache) Hits() uint64 { return c.hits.Load() }

// Evictions reports how many completed entries the budgets pushed out.
func (c *DedupCache) Evictions() uint64 { return c.evictions.Load() }
