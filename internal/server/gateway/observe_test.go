package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// drive posts n echo invocations through the edge.
func drive(t *testing.T, client *http.Client, base string, fn string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := client.Post(base+"/invoke/"+fn, "application/octet-stream",
			strings.NewReader("observability"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestTracezEndpoint checks the tentpole's primary export surface: after
// real traffic through the edge, /tracez serves recent spans with per-stage
// breakdowns, honors ?fn= and ?n=, and reports aggregate stage histograms.
func TestTracezEndpoint(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + addr

	drive(t, client, base, "echo", 6)
	// One error too: it must land in the errors ring.
	resp, err := client.Post(base+"/invoke/fail", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var doc struct {
		Funcs  []string `json:"funcs"`
		Recent []struct {
			Func     string           `json:"func"`
			External bool             `json:"external"`
			Outcome  string           `json:"outcome"`
			DurNS    int64            `json:"dur_ns"`
			Stages   map[string]int64 `json:"stages"`
		} `json:"recent"`
		Errors []struct {
			Func    string `json:"func"`
			Outcome string `json:"outcome"`
		} `json:"errors"`
		Stages []struct {
			Stage string `json:"stage"`
			Count uint64 `json:"count"`
		} `json:"stages"`
		Slow []struct {
			Func string `json:"func"`
		} `json:"slow"`
	}
	getJSONDoc(t, client, base+"/tracez", &doc)

	if len(doc.Recent) != 7 {
		t.Fatalf("recent = %d spans, want 7", len(doc.Recent))
	}
	for _, v := range doc.Recent {
		if !v.External {
			t.Fatalf("edge span not marked external: %+v", v)
		}
		if v.Func != "echo" {
			continue
		}
		if v.Outcome != "ok" {
			t.Fatalf("echo outcome = %q", v.Outcome)
		}
		// The edge stamps the full Figure 4 flow on the hot path.
		for _, stage := range []string{"parse", "admit", "queue", "exec", "resp"} {
			if v.Stages[stage] <= 0 {
				t.Fatalf("echo span missing stage %q: %v", stage, v.Stages)
			}
		}
	}
	if len(doc.Errors) == 0 || doc.Errors[0].Func != "fail" {
		t.Fatalf("errors ring missed the failed invocation: %+v", doc.Errors)
	}
	execSeen := false
	for _, sh := range doc.Stages {
		if sh.Stage == "exec" && sh.Count >= 7 {
			execSeen = true
		}
	}
	if !execSeen {
		t.Fatalf("aggregate exec histogram missing or undercounted: %+v", doc.Stages)
	}
	if len(doc.Slow) == 0 {
		t.Fatal("no slowest-N retention after traffic")
	}

	// ?fn= filters, ?n= caps.
	var filtered struct {
		Recent []struct {
			Func string `json:"func"`
		} `json:"recent"`
	}
	getJSONDoc(t, client, base+"/tracez?fn=echo&n=3", &filtered)
	if len(filtered.Recent) != 3 {
		t.Fatalf("?n=3 returned %d spans", len(filtered.Recent))
	}
	for _, v := range filtered.Recent {
		if v.Func != "echo" {
			t.Fatalf("?fn=echo leaked %q", v.Func)
		}
	}
}

// TestFlightzEndpoint checks the incident plane over HTTP: idle it serves
// an empty incident list; the e2e breaker-trip capture lives in the server
// package test.
func TestFlightzEndpoint(t *testing.T) {
	addr, g, stop := newEdgeRig(t, smallPool())
	defer stop()
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + addr

	var incidents []struct {
		Reason string `json:"reason"`
	}
	getJSONDoc(t, client, base+"/flightz", &incidents)
	if len(incidents) != 0 {
		t.Fatalf("idle daemon has incidents: %+v", incidents)
	}

	// Trip directly through the recorder and confirm it surfaces.
	g.Pool.Trace().Trip("test", "manual")
	getJSONDoc(t, client, base+"/flightz", &incidents)
	if len(incidents) != 1 || incidents[0].Reason != "manual" {
		t.Fatalf("tripped incident not exported: %+v", incidents)
	}
}

var (
	promMetricLine = regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)
	promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
)

// TestMetricsEndpoint validates /metrics as Prometheus text exposition
// format 0.0.4 with a line-level parser: HELP/TYPE pairs precede samples,
// every sample line is well-formed, histograms are cumulative and end in a
// +Inf bucket matching _count, and the load-bearing series are present.
func TestMetricsEndpoint(t *testing.T) {
	addr, _, stop := newEdgeRig(t, smallPool())
	defer stop()
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + addr

	drive(t, client, base, "echo", 8)

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not Prometheus text 0.0.4", ct)
	}

	typed := map[string]string{}    // base metric name -> TYPE
	samples := map[string]float64{} // full series (name+labels) -> value
	var order []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		if !promMetricLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := promNameRe.FindString(line)
		bare := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[bare]; !ok {
				t.Fatalf("sample %q has no preceding TYPE", line)
			}
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		series := line[:sp]
		samples[series] = v
		order = append(order, series)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"jord_uptime_seconds", "jord_inflight", "jord_admitted_total",
		"jord_queue_depth", "jord_pd_free", "jord_pool_completed_total",
		"jord_function_invocations_total", "jord_function_latency_seconds",
		"jord_breaker_state", "jord_stage_duration_seconds",
	} {
		if _, ok := typed[want]; !ok {
			t.Fatalf("missing # TYPE for %s", want)
		}
	}
	if typed["jord_stage_duration_seconds"] != "histogram" {
		t.Fatalf("stage duration TYPE = %q", typed["jord_stage_duration_seconds"])
	}
	if typed["jord_function_latency_seconds"] != "summary" {
		t.Fatalf("latency TYPE = %q", typed["jord_function_latency_seconds"])
	}

	// Function counters saw the traffic.
	if v := samples[`jord_function_invocations_total{fn="echo"}`]; v < 8 {
		t.Fatalf("echo invocations = %v, want >= 8", v)
	}

	// Histogram discipline per stage label: buckets cumulative and
	// monotone in le, +Inf bucket present and equal to _count.
	stageBuckets := map[string][]string{} // stage -> bucket series in emit order
	for _, series := range order {
		if strings.HasPrefix(series, "jord_stage_duration_seconds_bucket{") {
			stage := labelValue(series, "stage")
			stageBuckets[stage] = append(stageBuckets[stage], series)
		}
	}
	if len(stageBuckets) == 0 {
		t.Fatal("no stage histogram buckets emitted")
	}
	for stage, buckets := range stageBuckets {
		var prev float64
		var les []float64
		last := buckets[len(buckets)-1]
		if labelValue(last, "le") != "+Inf" {
			t.Fatalf("stage %q: last bucket is %q, not +Inf", stage, last)
		}
		for _, b := range buckets {
			v := samples[b]
			if v < prev {
				t.Fatalf("stage %q: non-cumulative bucket %q (%v < %v)", stage, b, v, prev)
			}
			prev = v
			if le := labelValue(b, "le"); le != "+Inf" {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("stage %q: bad le %q", stage, le)
				}
				les = append(les, f)
			}
		}
		if !sort.Float64sAreSorted(les) {
			t.Fatalf("stage %q: le bounds not ascending: %v", stage, les)
		}
		count := samples[fmt.Sprintf(`jord_stage_duration_seconds_count{stage=%q}`, stage)]
		if samples[last] != count {
			t.Fatalf("stage %q: +Inf bucket %v != _count %v", stage, samples[last], count)
		}
	}
}

// labelValue extracts one label's value from a series string like
// name{a="x",b="y"}.
func labelValue(series, label string) string {
	i := strings.Index(series, label+`="`)
	if i < 0 {
		return ""
	}
	rest := series[i+len(label)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// TestIntervalRPS checks the windowed throughput satellite: the second
// snapshot reports the rate over the scrape interval, not the lifetime
// average.
func TestIntervalRPS(t *testing.T) {
	addr, g, stop := newEdgeRig(t, smallPool())
	defer stop()
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + addr

	drive(t, client, base, "echo", 4)
	s1 := g.Snapshot()
	fn1 := findFunc(t, s1.Funcs, "echo")
	// First scrape has no prior window: falls back to the lifetime average.
	if fn1.IntervalRPS != fn1.ThroughputRPS {
		t.Fatalf("first scrape interval=%v lifetime=%v, want equal", fn1.IntervalRPS, fn1.ThroughputRPS)
	}

	time.Sleep(50 * time.Millisecond)
	drive(t, client, base, "echo", 10)
	s2 := g.Snapshot()
	fn2 := findFunc(t, s2.Funcs, "echo")
	if fn2.IntervalRPS <= 0 {
		t.Fatalf("second scrape interval rps = %v", fn2.IntervalRPS)
	}
	if fn2.Count != 14 {
		t.Fatalf("lifetime count = %d, want 14", fn2.Count)
	}

	// A quiet window must decay the interval rate to zero while the
	// lifetime average stays positive.
	time.Sleep(50 * time.Millisecond)
	s3 := g.Snapshot()
	fn3 := findFunc(t, s3.Funcs, "echo")
	if fn3.IntervalRPS != 0 {
		t.Fatalf("quiet window interval rps = %v, want 0", fn3.IntervalRPS)
	}
	if fn3.ThroughputRPS <= 0 {
		t.Fatalf("lifetime rps = %v, want > 0", fn3.ThroughputRPS)
	}
}

func findFunc(t *testing.T, fns []FuncStatsz, name string) FuncStatsz {
	t.Helper()
	for _, f := range fns {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %q missing from snapshot", name)
	return FuncStatsz{}
}

func getJSONDoc(t *testing.T, client *http.Client, url string, v any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status=%d body=%q", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
