package gateway

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"context"

	"jord/internal/server/admission"
	"jord/internal/server/breaker"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// newDedupRig builds a live gateway with the idempotency cache enabled, a
// counting function, and both serving paths: a net/http mux server and the
// zero-alloc edge on a loopback listener.
func newDedupRig(t *testing.T) (muxURL, edgeAddr string, calls *atomic.Int64, g *Gateway, stop func()) {
	t.Helper()
	calls = &atomic.Int64{}
	reg := router.New()
	reg.MustRegister("count", func(ctx router.Ctx) ([]byte, error) {
		n := calls.Add(1)
		return []byte(fmt.Sprintf("call-%d:%s", n, ctx.Payload())), nil
	})
	reg.MustRegister("fail", func(ctx router.Ctx) ([]byte, error) {
		calls.Add(1)
		return nil, fmt.Errorf("intentional")
	})
	p := pool.New(pool.Config{Executors: 2, Orchestrators: 1, NumPDs: 64}, reg)
	p.Start()
	g = &Gateway{
		Reg:            reg,
		Pool:           p,
		Adm:            admission.New(1024),
		Breakers:       breaker.NewSet(breaker.Config{}, reg.Names()),
		RequestTimeout: 5 * time.Second,
		MaxBodyBytes:   1 << 20,
		Dedup:          NewDedupCache(64),
	}
	srv := httptest.NewServer(g.Handler())
	e := NewEdge(g)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Serve(ln) }()
	stop = func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("edge shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("edge serve: %v", err)
		}
		if err := p.Drain(ctx); err != nil {
			t.Errorf("pool drain: %v", err)
		}
	}
	return srv.URL, ln.Addr().String(), calls, g, stop
}

func keyedInvoke(t *testing.T, base, fn, key, payload string) (status int, dedup bool, body string) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/invoke/"+fn, strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		req.Header.Set(IdempotencyKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(DedupHeader) == "1", string(b)
}

// TestDedupReplayBothPaths: the same idempotency key executes once and
// replays byte-identically, whether the retry arrives over the net/http
// mux or the hand-rolled edge.
func TestDedupReplayBothPaths(t *testing.T) {
	muxURL, edgeAddr, calls, _, stop := newDedupRig(t)
	defer stop()
	edgeURL := "http://" + edgeAddr

	status, dedup, first := keyedInvoke(t, muxURL, "count", "k1", "hello")
	if status != 200 || dedup {
		t.Fatalf("first: status=%d dedup=%v", status, dedup)
	}
	// Replay over the mux, then over the edge: identical body, marked
	// replay, no second execution.
	for i, base := range []string{muxURL, edgeURL} {
		status, dedup, body := keyedInvoke(t, base, "count", "k1", "hello")
		if status != 200 || !dedup || body != first {
			t.Fatalf("replay %d: status=%d dedup=%v body=%q want %q", i, status, dedup, body, first)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("function executed %d times, want 1", n)
	}

	// Keyless requests on the edge keep the fast path: fresh execution.
	status, dedup, _ = keyedInvoke(t, edgeURL, "count", "", "hello")
	if status != 200 || dedup {
		t.Fatalf("keyless: status=%d dedup=%v", status, dedup)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("keyless should execute, calls=%d want 2", n)
	}
}

// TestDedupCachesFunctionError: a function-level failure is a completed
// execution — the 500 replays rather than re-running the function.
func TestDedupCachesFunctionError(t *testing.T) {
	muxURL, _, calls, _, stop := newDedupRig(t)
	defer stop()

	status, _, body := keyedInvoke(t, muxURL, "fail", "ek", "x")
	if status != 500 || !strings.Contains(body, "intentional") {
		t.Fatalf("first: status=%d body=%q", status, body)
	}
	status, dedup, _ := keyedInvoke(t, muxURL, "fail", "ek", "x")
	if status != 500 || !dedup {
		t.Fatalf("replay: status=%d dedup=%v", status, dedup)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fail executed %d times, want 1", n)
	}
}

// TestDedupSingleFlight: concurrent arrivals of one key execute the
// function once; every caller gets the same completed response.
func TestDedupSingleFlight(t *testing.T) {
	muxURL, _, calls, _, stop := newDedupRig(t)
	defer stop()

	const clients = 8
	bodies := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, body := keyedInvoke(t, muxURL, "count", "sf", "p")
			if status != 200 {
				t.Errorf("client %d: status=%d", i, status)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("function executed %d times, want 1", n)
	}
	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d saw %q, client 0 saw %q", i, bodies[i], bodies[0])
		}
	}
}

// TestDedupAbortReRace: when the leader aborts (request not completed),
// a waiter wakes with ok=false and can claim leadership itself.
func TestDedupAbortReRace(t *testing.T) {
	c := NewDedupCache(8)
	e1, leader := c.Begin("k")
	if !leader {
		t.Fatal("first Begin should lead")
	}
	e2, leader := c.Begin("k")
	if leader {
		t.Fatal("second Begin should follow")
	}
	c.Abort(e1)
	<-e2.Done()
	if _, _, _, ok := e2.Result(); ok {
		t.Fatal("aborted entry should report ok=false")
	}
	if _, leader := c.Begin("k"); !leader {
		t.Fatal("post-abort Begin should lead again")
	}
	if c.Hits() != 1 {
		t.Fatalf("hits=%d want 1", c.Hits())
	}
}

// TestDedupLRUEviction: the entry-count budget evicts oldest-first, and
// oversized bodies degrade to an abort rather than pinning memory.
func TestDedupLRUEviction(t *testing.T) {
	c := NewDedupCache(4)
	for i := 0; i < 6; i++ {
		e, leader := c.Begin(fmt.Sprintf("k%d", i))
		if !leader {
			t.Fatalf("k%d: not leader", i)
		}
		c.Commit(e, 200, "text/plain", []byte("r"))
	}
	if c.Len() != 4 {
		t.Fatalf("len=%d want 4", c.Len())
	}
	if c.Evictions() != 2 {
		t.Fatalf("evictions=%d want 2", c.Evictions())
	}
	// k0, k1 evicted; k5 still present.
	if _, leader := c.Begin("k0"); !leader {
		t.Fatal("evicted key should lead again")
	}
	e, leader := c.Begin("k5")
	if leader {
		t.Fatal("k5 should still be cached")
	}
	if status, _, body, ok := e.Result(); !ok || status != 200 || string(body) != "r" {
		t.Fatalf("k5 result: ok=%v status=%d body=%q", ok, status, body)
	}

	// Oversized commit: not cached, key free for re-execution.
	big, leader := c.Begin("big")
	if !leader {
		t.Fatal("big: not leader")
	}
	c.Commit(big, 200, "text/plain", make([]byte, maxDedupBody+1))
	if _, leader := c.Begin("big"); !leader {
		t.Fatal("oversized body must not be cached")
	}
}

// TestDedupByteBudget: the total-body-bytes budget evicts even when the
// entry count is within bounds.
func TestDedupByteBudget(t *testing.T) {
	c := NewDedupCache(8)
	c.maxBytes = 100
	for i := 0; i < 4; i++ {
		e, _ := c.Begin(fmt.Sprintf("b%d", i))
		c.Commit(e, 200, "", make([]byte, 40))
	}
	if c.bytes > 100 {
		t.Fatalf("bytes=%d exceeds budget 100", c.bytes)
	}
	if c.Evictions() == 0 {
		t.Fatal("byte budget should have evicted")
	}
}
