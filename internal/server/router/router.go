// Package router holds the live serving path's function registry: the
// mapping from HTTP-visible function names to registered Go bodies. It is
// the live analogue of the simulator's function registry in internal/core
// (System.Register), and it defines the programming interface live
// functions see — the same shape as the paper's Listing 1 (call / async /
// wait over zero-copy ArgBufs), expressed over byte payloads instead of
// simulated cache blocks.
package router

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Cookie identifies an asynchronous invocation for Wait (Listing 1).
type Cookie int

// StateScope selects the shared-state tier a key lives in. Function-local
// keys are namespaced by function name (Faasm's "function-local" tier);
// node-global keys are shared by every function on the worker.
type StateScope uint8

const (
	// StateLocal keys are private to the calling function's namespace.
	StateLocal StateScope = iota
	// StateGlobal keys are shared across all functions on this worker.
	StateGlobal
)

// String renders the scope for diagnostics.
func (s StateScope) String() string {
	if s == StateGlobal {
		return "global"
	}
	return "local"
}

// StateHold is the runtime-facing face of a state handle: whatever a body
// obtained from the store and may not have released is force-released at
// invocation teardown, exactly as unwaited children are reaped. Bodies
// never call ReleaseHold themselves — they use Release/Commit/Discard.
type StateHold interface {
	// ReleaseHold releases the handle's permission grant if the body left
	// it held, and recycles the handle. Only the runtime calls it, exactly
	// once, after the body has returned.
	ReleaseHold()
}

// StateSnap is a read snapshot of a state value, obtained via Ctx.StateGet.
// Its bytes are a zero-copy alias of the value's VMA, readable under a
// pcopy R grant to the invocation's protection domain (or under the VMA's
// global-RO G bit for promoted hot keys, in which case no per-PD grant
// exists at all). The snapshot stays consistent even if a writer commits a
// new version meanwhile: writers replace the backing bytes, never mutate
// them in place.
type StateSnap interface {
	StateHold
	// Bytes returns the snapshot contents. The slice must not be written,
	// and must not be retained past the body's return.
	Bytes() []byte
	// Version returns the value's version at snapshot time (1 for the
	// first committed value; a key created empty by StateTake starts at 0).
	Version() uint64
	// Release returns the read grant to the store. Optional — teardown
	// releases unreleased snapshots — but long bodies holding many
	// snapshots should release early to keep permission slots free.
	Release()
}

// StateTx is exclusive ownership of a state value, obtained via
// Ctx.StateTake. The value's VMA is pmoved RW into the invocation's
// protection domain; no other writer can take the key until the
// transaction ends. End it with exactly one of Commit or Discard; an
// invocation that returns (or panics, or is killed) with the transaction
// open has it discarded at teardown — the Groundhog-style rollback: the
// committed value is untouched until Commit, so abandoning the ownership
// restores the pre-take state by construction.
type StateTx interface {
	StateHold
	// Bytes returns the current committed value (zero-copy alias; treat as
	// read-only — commit a new slice instead of mutating in place).
	Bytes() []byte
	// Version returns the value's version at take time.
	Version() uint64
	// Commit publishes val as the value's next version, bumps the version,
	// and returns ownership to the store. Returns the new version.
	Commit(val []byte) (uint64, error)
	// Discard returns ownership without publishing — the pre-take value
	// stays current.
	Discard()
}

// Ctx is the interface a live function body programs against. It is
// implemented by internal/server/pool.Ctx; it lives here so the registry
// does not depend on the runtime that executes its functions.
type Ctx interface {
	// Payload returns the invocation's input ArgBuf contents. The read is
	// permission-checked against the invocation's protection domain.
	Payload() []byte
	// Call invokes another registered function synchronously, suspending
	// this continuation until the callee finishes (Listing 1: jord::call).
	Call(fn string, payload []byte) ([]byte, error)
	// Async submits a nested invocation and returns immediately
	// (Listing 1: jord::async).
	Async(fn string, payload []byte) (Cookie, error)
	// Wait blocks on an Async cookie and returns the callee's result
	// (Listing 1: jord::wait).
	Wait(ck Cookie) ([]byte, error)
	// Err reports whether this invocation should stop — context.Canceled
	// once the external caller abandoned the request tree (or the parent
	// finished without collecting this invocation), or
	// context.DeadlineExceeded once the inherited deadline passed.
	// Cancellation is cooperative: the runtime checks it at dequeue,
	// Async, and Wait; long-running bodies should poll it so stuck work
	// unwinds promptly instead of holding a protection domain forever.
	Err() error
	// Done returns a channel closed when Err would return non-nil — the
	// select-friendly form of Err, like context.Context.Done. It must not
	// be retained past the body's return.
	Done() <-chan struct{}
	// Deadline returns the invocation's deadline, inherited by every
	// nested call from the external request's context.
	Deadline() (time.Time, bool)
	// FuncName names the function this invocation runs.
	FuncName() string
	// StateGet returns a read snapshot of a shared-state key (pcopy R
	// grant, or zero permission traffic for globally promoted keys). The
	// runtime releases unreleased snapshots at invocation teardown.
	StateGet(scope StateScope, key string) (StateSnap, error)
	// StateTake acquires exclusive write ownership of a key (pmove RW),
	// creating it empty at version 0 if absent. At most one taker holds a
	// key at a time; a second concurrent StateTake fails rather than
	// blocks. The runtime discards open transactions at teardown.
	StateTake(scope StateScope, key string) (StateTx, error)
	// StatePut atomically replaces a key's value (create or update) without
	// holding ownership across body code — a take/commit micro-transaction.
	// Returns the new version.
	StatePut(scope StateScope, key string, val []byte) (uint64, error)
	// StateDelete removes a key. Deleting a key another invocation
	// currently owns via StateTake fails.
	StateDelete(scope StateScope, key string) error
}

// Body is a live function body: input via ctx.Payload, output via the
// returned byte slice (written back into the invocation's ArgBuf).
type Body func(ctx Ctx) ([]byte, error)

// Func is one registered live function.
type Func struct {
	ID   int
	Name string
	Body Body
}

// Registry maps function names to bodies. Registration happens before the
// pool starts (Freeze); lookups are concurrent afterwards.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Func
	list   []*Func
	frozen bool
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*Func)}
}

// Register deploys a function under name. It fails on duplicate or empty
// names and after the registry is frozen (the pool has started).
func (r *Registry) Register(name string, body Body) (*Func, error) {
	if name == "" {
		return nil, fmt.Errorf("router: empty function name")
	}
	if body == nil {
		return nil, fmt.Errorf("router: registering %s: nil body", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen {
		return nil, fmt.Errorf("router: registering %s: registry frozen (server already started)", name)
	}
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("router: duplicate function %q", name)
	}
	f := &Func{ID: len(r.list), Name: name, Body: body}
	r.byName[name] = f
	r.list = append(r.list, f)
	return f, nil
}

// MustRegister is Register for static function sets.
func (r *Registry) MustRegister(name string, body Body) *Func {
	f, err := r.Register(name, body)
	if err != nil {
		panic(err)
	}
	return f
}

// Freeze closes the registry for further registration.
func (r *Registry) Freeze() {
	r.mu.Lock()
	r.frozen = true
	r.mu.Unlock()
}

// Lookup resolves a function name (nil if unknown).
func (r *Registry) Lookup(name string) *Func {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// LookupBytes is Lookup keyed by raw bytes — the zero-allocation edge
// parses function names out of the request line and must not materialize a
// string per request. The m[string(b)] form compiles to a map probe
// without converting (no allocation); the key string is only built on a
// miss-free hit path internally by the runtime, never on the heap.
func (r *Registry) LookupBytes(name []byte) *Func {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[string(name)]
}

// Funcs returns all registered functions in registration order.
func (r *Registry) Funcs() []*Func {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Func, len(r.list))
	copy(out, r.list)
	return out
}

// Names returns the registered function names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.list))
	for _, f := range r.list {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
