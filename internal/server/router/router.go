// Package router holds the live serving path's function registry: the
// mapping from HTTP-visible function names to registered Go bodies. It is
// the live analogue of the simulator's function registry in internal/core
// (System.Register), and it defines the programming interface live
// functions see — the same shape as the paper's Listing 1 (call / async /
// wait over zero-copy ArgBufs), expressed over byte payloads instead of
// simulated cache blocks.
package router

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Cookie identifies an asynchronous invocation for Wait (Listing 1).
type Cookie int

// Ctx is the interface a live function body programs against. It is
// implemented by internal/server/pool.Ctx; it lives here so the registry
// does not depend on the runtime that executes its functions.
type Ctx interface {
	// Payload returns the invocation's input ArgBuf contents. The read is
	// permission-checked against the invocation's protection domain.
	Payload() []byte
	// Call invokes another registered function synchronously, suspending
	// this continuation until the callee finishes (Listing 1: jord::call).
	Call(fn string, payload []byte) ([]byte, error)
	// Async submits a nested invocation and returns immediately
	// (Listing 1: jord::async).
	Async(fn string, payload []byte) (Cookie, error)
	// Wait blocks on an Async cookie and returns the callee's result
	// (Listing 1: jord::wait).
	Wait(ck Cookie) ([]byte, error)
	// Err reports whether this invocation should stop — context.Canceled
	// once the external caller abandoned the request tree (or the parent
	// finished without collecting this invocation), or
	// context.DeadlineExceeded once the inherited deadline passed.
	// Cancellation is cooperative: the runtime checks it at dequeue,
	// Async, and Wait; long-running bodies should poll it so stuck work
	// unwinds promptly instead of holding a protection domain forever.
	Err() error
	// Done returns a channel closed when Err would return non-nil — the
	// select-friendly form of Err, like context.Context.Done. It must not
	// be retained past the body's return.
	Done() <-chan struct{}
	// Deadline returns the invocation's deadline, inherited by every
	// nested call from the external request's context.
	Deadline() (time.Time, bool)
	// FuncName names the function this invocation runs.
	FuncName() string
}

// Body is a live function body: input via ctx.Payload, output via the
// returned byte slice (written back into the invocation's ArgBuf).
type Body func(ctx Ctx) ([]byte, error)

// Func is one registered live function.
type Func struct {
	ID   int
	Name string
	Body Body
}

// Registry maps function names to bodies. Registration happens before the
// pool starts (Freeze); lookups are concurrent afterwards.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Func
	list   []*Func
	frozen bool
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*Func)}
}

// Register deploys a function under name. It fails on duplicate or empty
// names and after the registry is frozen (the pool has started).
func (r *Registry) Register(name string, body Body) (*Func, error) {
	if name == "" {
		return nil, fmt.Errorf("router: empty function name")
	}
	if body == nil {
		return nil, fmt.Errorf("router: registering %s: nil body", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen {
		return nil, fmt.Errorf("router: registering %s: registry frozen (server already started)", name)
	}
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("router: duplicate function %q", name)
	}
	f := &Func{ID: len(r.list), Name: name, Body: body}
	r.byName[name] = f
	r.list = append(r.list, f)
	return f, nil
}

// MustRegister is Register for static function sets.
func (r *Registry) MustRegister(name string, body Body) *Func {
	f, err := r.Register(name, body)
	if err != nil {
		panic(err)
	}
	return f
}

// Freeze closes the registry for further registration.
func (r *Registry) Freeze() {
	r.mu.Lock()
	r.frozen = true
	r.mu.Unlock()
}

// Lookup resolves a function name (nil if unknown).
func (r *Registry) Lookup(name string) *Func {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// Funcs returns all registered functions in registration order.
func (r *Registry) Funcs() []*Func {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Func, len(r.list))
	copy(out, r.list)
	return out
}

// Names returns the registered function names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.list))
	for _, f := range r.list {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
