// Package admission implements the gateway's load shedding: a hard cap on
// concurrently admitted external requests. Together with the pool's
// bounded external queues it gives the live path the same two-level
// backpressure the paper's worker has (bounded orchestrator queues in
// front of JBSQ-bounded executor queues): beyond capacity, clients get an
// immediate 429 instead of unbounded queueing.
package admission

import "sync/atomic"

// Controller is a concurrency-safe admission gate. The zero value admits
// nothing; use New.
type Controller struct {
	max      int64
	inflight atomic.Int64

	admitted atomic.Uint64
	rejected atomic.Uint64
}

// New returns a Controller admitting at most max concurrent requests
// (max <= 0 means unlimited).
func New(max int) *Controller {
	return &Controller{max: int64(max)}
}

// Admit tries to take one slot. It returns a release function and true on
// success; the caller must invoke release exactly once when the request
// finishes. On false the request must be rejected (429).
func (c *Controller) Admit() (release func(), ok bool) {
	if n := c.inflight.Add(1); c.max > 0 && n > c.max {
		c.inflight.Add(-1)
		c.rejected.Add(1)
		return nil, false
	}
	c.admitted.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			c.inflight.Add(-1)
		}
	}, true
}

// Inflight returns the number of currently admitted requests.
func (c *Controller) Inflight() int64 { return c.inflight.Load() }

// Admitted returns the cumulative admitted count.
func (c *Controller) Admitted() uint64 { return c.admitted.Load() }

// Rejected returns the cumulative rejected count.
func (c *Controller) Rejected() uint64 { return c.rejected.Load() }

// Max returns the configured cap (0 = unlimited).
func (c *Controller) Max() int64 { return c.max }
