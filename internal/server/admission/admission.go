// Package admission implements the gateway's load shedding. Together with
// the pool's bounded external queues it gives the live path the same
// two-level backpressure the paper's worker has (bounded orchestrator
// queues in front of JBSQ-bounded executor queues): beyond capacity,
// clients get an immediate 429 instead of unbounded queueing.
//
// Two modes share one Controller:
//
//   - Static (New): a hard cap on concurrently admitted requests — the
//     original single-knob gate.
//   - Adaptive (NewAdaptive): a CoDel-style queue-delay controller layered
//     under the hard cap. The pool reports each external request's queue
//     delay (gateway submission -> executor pickup); the controller tracks
//     the MINIMUM delay per interval — the standing queue, immune to
//     transient bursts, exactly what CoDel's sojourn-time minimum isolates —
//     and steers the admit limit by AIMD: if even the best-served request
//     waited longer than the target, the worker is oversubscribed and the
//     limit decreases multiplicatively; otherwise it recovers additively
//     toward the hard cap. The SLO (the delay target) drives admission, so
//     goodput holds near capacity instead of collapsing into queueing.
//
// The hot path stays allocation-free and lock-free: Admit is two atomic
// ops, Observe is an atomic min plus, once per interval, one CAS.
package admission

import (
	"math"
	"sync/atomic"
	"time"
)

// Controller is a concurrency-safe admission gate. The zero value admits
// nothing; use New or NewAdaptive.
//
// Field layout is deliberate: the hot RMW counters (inflight; the windowed
// winMin/winEnd pair) each sit on their own cache line, away from the
// read-mostly limit that every TryAdmit loads — under 32-way admission
// traffic the inflight Adds must not invalidate the line the limit (or the
// adaptive configuration) is read from.
type Controller struct {
	max int64 // hard cap (0 = unlimited); the adaptive limit never exceeds it

	// Adaptive configuration; all zero for a static controller. Read-only
	// after construction, shares its lines with max/limit reads happily.
	targetNS   int64 // queue-delay SLO the AIMD loop steers to
	intervalNS int64 // evaluation window
	minLimit   int64 // decrease floor (keep every executor busy)
	step       int64 // additive-increase step per good interval

	limit atomic.Int64 // read every TryAdmit, written once per interval

	_        [56]byte
	inflight atomic.Int64 // RMW'd twice per request — own line
	_        [56]byte

	admitted atomic.Uint64 // RMW'd once per admitted request
	rejected atomic.Uint64 // RMW'd only under overload
	_        [48]byte

	winMin    atomic.Int64 // minimum observed queue delay this interval
	winEnd    atomic.Int64 // unix ns at which the current interval closes
	increases atomic.Uint64
	decreases atomic.Uint64
}

// New returns a static Controller admitting at most max concurrent
// requests (max <= 0 means unlimited).
func New(max int) *Controller {
	c := &Controller{max: int64(max)}
	c.limit.Store(int64(max))
	return c
}

// NewAdaptive returns a Controller whose admit limit starts at max and is
// steered by AIMD on the queue delays fed to Observe: if the minimum delay
// over an interval exceeds target the limit shrinks multiplicatively
// (never below minLimit), otherwise it grows additively back toward max.
// max must be positive — the adaptive limit needs a finite ceiling.
func NewAdaptive(max, minLimit int, target, interval time.Duration) *Controller {
	if max < 1 {
		max = 1
	}
	if minLimit < 1 {
		minLimit = 1
	}
	if minLimit > max {
		minLimit = max
	}
	if target <= 0 {
		target = 5 * time.Millisecond
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	c := &Controller{
		max:        int64(max),
		targetNS:   target.Nanoseconds(),
		intervalNS: interval.Nanoseconds(),
		minLimit:   int64(minLimit),
	}
	// Recover a fully collapsed limit to max in ~1s of good intervals.
	c.step = c.max / 8
	if c.step < 1 {
		c.step = 1
	}
	c.limit.Store(c.max)
	c.winMin.Store(math.MaxInt64)
	c.winEnd.Store(time.Now().UnixNano() + c.intervalNS)
	return c
}

// TryAdmit tries to take one slot. On true the caller owns the slot and
// must call Release exactly once when the request finishes; on false the
// request must be rejected (429). Unlike Admit it allocates nothing — the
// zero-alloc HTTP edge's gate — at the price of an unguarded Release: the
// caller, not a closure, enforces exactly-once.
func (c *Controller) TryAdmit() bool {
	lim := c.limit.Load()
	if n := c.inflight.Add(1); lim > 0 && n > lim {
		c.inflight.Add(-1)
		c.rejected.Add(1)
		return false
	}
	c.admitted.Add(1)
	return true
}

// Release returns a slot taken by a successful TryAdmit.
func (c *Controller) Release() { c.inflight.Add(-1) }

// Admit tries to take one slot. It returns a release function and true on
// success; the caller must invoke release exactly once when the request
// finishes (extra invocations are no-ops). On false the request must be
// rejected (429). Callers on allocation-sensitive paths should prefer
// TryAdmit/Release — the closure and its guard allocate per request.
func (c *Controller) Admit() (release func(), ok bool) {
	if !c.TryAdmit() {
		return nil, false
	}
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			c.inflight.Add(-1)
		}
	}, true
}

// Observe feeds one external request's measured queue delay (gateway
// submission -> executor pickup) into the adaptive loop. A no-op on static
// controllers. Safe for concurrent use from executor goroutines; the cost
// is an atomic min, plus one AIMD step per elapsed interval.
func (c *Controller) Observe(d time.Duration) {
	if c.intervalNS == 0 {
		return
	}
	c.observe(d.Nanoseconds(), time.Now().UnixNano())
}

func (c *Controller) observe(delayNS, now int64) {
	// Track the interval's minimum: the standing queue delay. The CAS loop
	// terminates because winMin only decreases within an interval.
	for {
		cur := c.winMin.Load()
		if delayNS >= cur {
			break
		}
		if c.winMin.CompareAndSwap(cur, delayNS) {
			break
		}
	}
	end := c.winEnd.Load()
	if now < end {
		return
	}
	// Interval boundary: exactly one observer wins the CAS and applies the
	// AIMD step. A sample racing between the CAS and the Swap may land in
	// either interval — harmless for a control signal.
	if !c.winEnd.CompareAndSwap(end, now+c.intervalNS) {
		return
	}
	minDelay := c.winMin.Swap(math.MaxInt64)
	if minDelay == math.MaxInt64 {
		return // no samples this interval (cannot normally happen: ours landed)
	}
	lim := c.limit.Load()
	var next int64
	if minDelay > c.targetNS {
		// Even the best-served request waited past the target: the worker
		// is oversubscribed. Multiplicative decrease.
		next = lim * 7 / 8
		if next < c.minLimit {
			next = c.minLimit
		}
		if next != lim {
			c.decreases.Add(1)
		}
	} else {
		// Standing queue within the SLO: additive recovery toward the cap.
		next = lim + c.step
		if next > c.max {
			next = c.max
		}
		if next != lim {
			c.increases.Add(1)
		}
	}
	c.limit.Store(next)
}

// Inflight returns the number of currently admitted requests.
func (c *Controller) Inflight() int64 { return c.inflight.Load() }

// Admitted returns the cumulative admitted count.
func (c *Controller) Admitted() uint64 { return c.admitted.Load() }

// Rejected returns the cumulative rejected count.
func (c *Controller) Rejected() uint64 { return c.rejected.Load() }

// Max returns the configured hard cap (0 = unlimited).
func (c *Controller) Max() int64 { return c.max }

// Limit returns the current admit limit: the AIMD-steered value on an
// adaptive controller, the hard cap on a static one.
func (c *Controller) Limit() int64 { return c.limit.Load() }

// Adaptive reports whether the AIMD loop is active.
func (c *Controller) Adaptive() bool { return c.intervalNS != 0 }

// Target returns the queue-delay SLO (0 on static controllers).
func (c *Controller) Target() time.Duration { return time.Duration(c.targetNS) }

// Interval returns the AIMD evaluation interval (0 on static controllers).
func (c *Controller) Interval() time.Duration { return time.Duration(c.intervalNS) }

// Increases and Decreases return the cumulative AIMD step counts — the
// /statsz view of how hard the controller is working.
func (c *Controller) Increases() uint64 { return c.increases.Load() }
func (c *Controller) Decreases() uint64 { return c.decreases.Load() }
