package admission

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStaticAdmitCap(t *testing.T) {
	c := New(2)
	r1, ok := c.Admit()
	r2, ok2 := c.Admit()
	if !ok || !ok2 {
		t.Fatal("first two admits must succeed")
	}
	if _, ok := c.Admit(); ok {
		t.Fatal("third admit must be rejected at cap 2")
	}
	if got := c.Rejected(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	r1()
	if _, ok := c.Admit(); !ok {
		t.Fatal("admit after release must succeed")
	}
	r2()
	if got := c.Admitted(); got != 3 {
		t.Fatalf("admitted = %d, want 3", got)
	}
}

func TestUnlimitedController(t *testing.T) {
	c := New(0)
	for i := 0; i < 100; i++ {
		if _, ok := c.Admit(); !ok {
			t.Fatal("unlimited controller rejected")
		}
	}
	if c.Rejected() != 0 {
		t.Fatal("unlimited controller counted rejections")
	}
}

// TestDoubleReleaseIdempotent proves release is exactly-once: calling it
// again (including concurrently) must not free a second slot or drive the
// inflight count negative.
func TestDoubleReleaseIdempotent(t *testing.T) {
	c := New(1)
	release, ok := c.Admit()
	if !ok {
		t.Fatal("admit failed")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release()
			release()
		}()
	}
	wg.Wait()
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after double releases, want 0", got)
	}
	// The slot freed exactly once: the cap still holds.
	r, ok := c.Admit()
	if !ok {
		t.Fatal("admit after release failed")
	}
	if _, ok := c.Admit(); ok {
		t.Fatal("cap 1 violated after double release")
	}
	r()
}

// TestConcurrentAdmitAtBoundary hammers Admit/release from many goroutines
// against a small cap and asserts the invariant the gate exists for: the
// number of concurrently admitted requests never exceeds the limit. Run
// under -race, this is also the memory-safety test for the atomics.
func TestConcurrentAdmitAtBoundary(t *testing.T) {
	const (
		cap     = 7
		workers = 32
		iters   = 2000
	)
	c := New(cap)
	var (
		cur, peak atomic.Int64
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				release, ok := c.Admit()
				if !ok {
					continue
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				runtime.Gosched() // hold the slot so peers hit the boundary
				cur.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("admitted concurrency peaked at %d, cap is %d", p, cap)
	}
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after all releases, want 0", got)
	}
	if c.Admitted() == 0 || c.Rejected() == 0 {
		t.Fatalf("boundary never exercised: admitted=%d rejected=%d", c.Admitted(), c.Rejected())
	}
}

// TestAIMDDecreaseAndRecovery drives the adaptive loop with synthetic
// delays: sustained delays above the target must shrink the limit
// multiplicatively (floored at minLimit), and delays back under the target
// must recover it additively to the cap.
func TestAIMDDecreaseAndRecovery(t *testing.T) {
	const (
		max      = 640
		minLimit = 10
	)
	target := 5 * time.Millisecond
	interval := 100 * time.Millisecond
	c := NewAdaptive(max, minLimit, target, interval)
	if !c.Adaptive() {
		t.Fatal("controller not adaptive")
	}
	if c.Limit() != max {
		t.Fatalf("initial limit = %d, want %d", c.Limit(), max)
	}

	now := time.Now().UnixNano()
	bad := (10 * time.Millisecond).Nanoseconds()
	// Each tick past the interval boundary applies one AIMD step.
	c.observe(bad, now)
	for i := 1; i <= 3; i++ {
		now += interval.Nanoseconds() + 1
		c.observe(bad, now)
	}
	if got, want := c.Limit(), int64(max*7/8*7/8*7/8); got != want {
		t.Fatalf("limit after 3 bad intervals = %d, want %d", got, want)
	}
	if c.Decreases() != 3 {
		t.Fatalf("decreases = %d, want 3", c.Decreases())
	}

	// Collapse to the floor.
	for i := 0; i < 100; i++ {
		now += interval.Nanoseconds() + 1
		c.observe(bad, now)
	}
	if got := c.Limit(); got != minLimit {
		t.Fatalf("limit = %d, want floor %d", got, minLimit)
	}

	// Recovery: good intervals climb back to max and stop there.
	good := time.Millisecond.Nanoseconds()
	for i := 0; i < 100; i++ {
		now += interval.Nanoseconds() + 1
		c.observe(good, now)
	}
	if got := c.Limit(); got != max {
		t.Fatalf("limit after recovery = %d, want %d", got, max)
	}
	if c.Increases() == 0 {
		t.Fatal("no additive increases counted")
	}
}

// TestAIMDUsesIntervalMinimum checks the CoDel property: one slow outlier
// inside an otherwise healthy interval must NOT shrink the limit — only a
// standing queue (minimum above target) does.
func TestAIMDUsesIntervalMinimum(t *testing.T) {
	c := NewAdaptive(100, 4, 5*time.Millisecond, 100*time.Millisecond)
	// Force one decrease so the limit is below max (recovery is visible).
	now := time.Now().UnixNano()
	c.observe((50 * time.Millisecond).Nanoseconds(), now)
	now += c.intervalNS + 1
	c.observe((50 * time.Millisecond).Nanoseconds(), now)
	lowered := c.Limit()
	if lowered >= 100 {
		t.Fatalf("setup: limit = %d, want < 100", lowered)
	}
	// Mixed interval: a burst outlier plus a fast request. Minimum is fast,
	// so the next boundary must increase, not decrease.
	c.observe((80 * time.Millisecond).Nanoseconds(), now+1)
	c.observe(time.Millisecond.Nanoseconds(), now+2)
	now += c.intervalNS + 1
	c.observe(time.Millisecond.Nanoseconds(), now)
	if got := c.Limit(); got <= lowered {
		t.Fatalf("limit = %d after healthy-minimum interval, want > %d", got, lowered)
	}
}

// TestAdaptiveAdmitRespectsLoweredLimit verifies Admit enforces the
// AIMD-steered limit, not just the hard cap.
func TestAdaptiveAdmitRespectsLoweredLimit(t *testing.T) {
	c := NewAdaptive(1000, 1, 5*time.Millisecond, 100*time.Millisecond)
	// Drive the limit down to the floor.
	now := time.Now().UnixNano()
	bad := time.Second.Nanoseconds()
	for i := 0; i < 200; i++ {
		c.observe(bad, now)
		now += c.intervalNS + 1
	}
	if c.Limit() != 1 {
		t.Fatalf("limit = %d, want 1", c.Limit())
	}
	release, ok := c.Admit()
	if !ok {
		t.Fatal("first admit under limit 1 failed")
	}
	if _, ok := c.Admit(); ok {
		t.Fatal("second admit exceeded the adaptive limit")
	}
	release()
}

// TestAdaptiveConcurrentObserve runs Observe and Admit concurrently under
// -race: the control loop must be safe against itself and the admit path.
func TestAdaptiveConcurrentObserve(t *testing.T) {
	c := NewAdaptive(64, 2, time.Millisecond, 2*time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(w) * 700 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					c.Observe(d)
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if release, ok := c.Admit(); ok {
						release()
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if lim := c.Limit(); lim < 2 || lim > 64 {
		t.Fatalf("limit %d escaped [minLimit, max]", lim)
	}
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}
