package state

import (
	"testing"

	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// TestGetFastPathZeroAlloc pins the promoted-key snapshot path at 0
// allocs/op: one atomic pointer load, a recycled handle, no permission
// traffic, no copy. This is the CI gate for the G-bit fast path.
func TestGetFastPathZeroAlloc(t *testing.T) {
	tab := pool.NewTable(16)
	st, err := New(Config{PromoteAfter: 1}, tab)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	pd, err := tab.Cget()
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Cput(pd)

	if _, err := st.Put(pd, "", router.StateGlobal, "hot", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// One granted read crosses the PromoteAfter=1 threshold.
	sn, err := st.Get(pd, "", router.StateGlobal, "hot")
	if err != nil {
		t.Fatal(err)
	}
	sn.ReleaseHold()
	if st.StatsSnapshot().Promotions != 1 {
		t.Fatal("key did not promote")
	}

	allocs := testing.AllocsPerRun(1000, func() {
		sn, err := st.Get(pd, "", router.StateGlobal, "hot")
		if err != nil {
			t.Fatal(err)
		}
		if len(sn.Bytes()) != 7 {
			t.Fatal("bad snapshot")
		}
		sn.ReleaseHold()
	})
	if allocs != 0 {
		t.Fatalf("promoted Get = %.1f allocs/op, want 0", allocs)
	}
	if err := st.Delete(pd, "", router.StateGlobal, "hot"); err != nil {
		t.Fatal(err)
	}
}

// TestGetGrantedPathZeroAlloc pins the steady-state pcopy path too: after
// the first grant the per-PD permission slot and the grants-map bucket both
// recycle, so repeated snapshot/release cycles do not allocate either.
func TestGetGrantedPathZeroAlloc(t *testing.T) {
	tab := pool.NewTable(16)
	st, err := New(Config{PromoteAfter: -1}, tab) // promotion off: always the granted path
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	pd, err := tab.Cget()
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Cput(pd)

	if _, err := st.Put(pd, "", router.StateGlobal, "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Warm the grants map and handle pool once.
	sn, err := st.Get(pd, "", router.StateGlobal, "k")
	if err != nil {
		t.Fatal(err)
	}
	sn.ReleaseHold()

	allocs := testing.AllocsPerRun(1000, func() {
		sn, err := st.Get(pd, "", router.StateGlobal, "k")
		if err != nil {
			t.Fatal(err)
		}
		if len(sn.Bytes()) != 7 {
			t.Fatal("bad snapshot")
		}
		sn.ReleaseHold()
	})
	if allocs != 0 {
		t.Fatalf("granted Get = %.1f allocs/op, want 0", allocs)
	}
	if err := st.Delete(pd, "", router.StateGlobal, "k"); err != nil {
		t.Fatal(err)
	}
	if err := st.VerifyIdle(); err != nil {
		t.Fatal(err)
	}
}
