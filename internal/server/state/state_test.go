package state

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// rig is one store over a fresh PD table plus a handful of reader/writer
// PDs standing in for invocations.
type rig struct {
	tab *pool.Table
	st  *Store
	pds []pool.PDID
}

func newRig(t *testing.T, cfg Config, npds int) *rig {
	t.Helper()
	tab := pool.NewTable(npds + 8)
	st, err := New(cfg, tab)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{tab: tab, st: st}
	for i := 0; i < npds; i++ {
		pd, err := tab.Cget()
		if err != nil {
			t.Fatal(err)
		}
		r.pds = append(r.pds, pd)
	}
	t.Cleanup(func() {
		if err := st.VerifyIdle(); err != nil {
			t.Errorf("post-test: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		for _, pd := range r.pds {
			if err := tab.Cput(pd); err != nil {
				t.Errorf("cput %d: %v", pd, err)
			}
		}
		if err := tab.VerifyIdle(); err != nil {
			t.Errorf("post-test table: %v", err)
		}
		if n := tab.Faults(); n != 0 {
			t.Errorf("post-test: %d isolation faults", n)
		}
	})
	return r
}

func TestPutGetDeleteLifecycle(t *testing.T) {
	r := newRig(t, Config{}, 2)
	pd := r.pds[0]

	if _, err := r.st.Get(pd, "fn", router.StateLocal, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing = %v, want ErrNotFound", err)
	}

	ver, err := r.st.Put(pd, "fn", router.StateLocal, "k", []byte("hello"))
	if err != nil || ver != 1 {
		t.Fatalf("put = (%d, %v), want (1, nil)", ver, err)
	}

	sn, err := r.st.Get(r.pds[1], "fn", router.StateLocal, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sn.Bytes(), []byte("hello")) || sn.Version() != 1 {
		t.Fatalf("snapshot = (%q, v%d), want (hello, v1)", sn.Bytes(), sn.Version())
	}
	sn.ReleaseHold()

	// Local tiers are namespaced by function; the same key under another
	// function or the global tier is a different value.
	if _, err := r.st.Get(pd, "other", router.StateLocal, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-function local get = %v, want ErrNotFound", err)
	}
	if _, err := r.st.Get(pd, "fn", router.StateGlobal, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("global get of local key = %v, want ErrNotFound", err)
	}

	if err := r.st.Delete(pd, "fn", router.StateLocal, "k"); err != nil {
		t.Fatal(err)
	}
	if err := r.st.Delete(pd, "fn", router.StateLocal, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	if _, err := r.st.Get(pd, "fn", router.StateLocal, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete = %v, want ErrNotFound", err)
	}
}

func TestTakeCommitDiscard(t *testing.T) {
	r := newRig(t, Config{}, 3)
	w, w2, rd := r.pds[0], r.pds[1], r.pds[2]

	// Take of an absent key creates it empty at version 0.
	tx, err := r.st.Take(w, "fn", router.StateLocal, "acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Bytes()) != 0 || tx.Version() != 0 {
		t.Fatalf("fresh take = (%q, v%d), want empty v0", tx.Bytes(), tx.Version())
	}

	// Single-writer: a second taker is refused, not blocked.
	if _, err := r.st.Take(w2, "fn", router.StateLocal, "acct"); !errors.Is(err, ErrTaken) {
		t.Fatalf("concurrent take = %v, want ErrTaken", err)
	}
	// So is Put and Delete while owned.
	if _, err := r.st.Put(w2, "fn", router.StateLocal, "acct", []byte("x")); !errors.Is(err, ErrTaken) {
		t.Fatalf("put while taken = %v, want ErrTaken", err)
	}
	if err := r.st.Delete(w2, "fn", router.StateLocal, "acct"); !errors.Is(err, ErrTaken) {
		t.Fatalf("delete while taken = %v, want ErrTaken", err)
	}

	ver, err := tx.Commit([]byte("balance=10"))
	if err != nil || ver != 1 {
		t.Fatalf("commit = (%d, %v), want (1, nil)", ver, err)
	}
	if _, err := tx.Commit([]byte("again")); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("double commit = %v, want ErrTxClosed", err)
	}
	tx.ReleaseHold()

	// Discard rolls back: the committed value stays current.
	tx2, err := r.st.Take(w, "fn", router.StateLocal, "acct")
	if err != nil {
		t.Fatal(err)
	}
	if string(tx2.Bytes()) != "balance=10" || tx2.Version() != 1 {
		t.Fatalf("retake = (%q, v%d), want (balance=10, v1)", tx2.Bytes(), tx2.Version())
	}
	tx2.Discard()
	tx2.ReleaseHold()

	sn, err := r.st.Get(rd, "fn", router.StateLocal, "acct")
	if err != nil {
		t.Fatal(err)
	}
	if string(sn.Bytes()) != "balance=10" || sn.Version() != 1 {
		t.Fatalf("after discard = (%q, v%d), want (balance=10, v1)", sn.Bytes(), sn.Version())
	}
	sn.ReleaseHold()

	if err := r.st.Delete(w, "fn", router.StateLocal, "acct"); err != nil {
		t.Fatal(err)
	}
}

// TestStaleReadWhileTaken: a Get during another invocation's open ownership
// serves the committed (pre-take) version without a grant, and the snapshot
// stays readable across the concurrent Commit.
func TestStaleReadWhileTaken(t *testing.T) {
	r := newRig(t, Config{}, 2)
	w, rd := r.pds[0], r.pds[1]

	if _, err := r.st.Put(w, "", router.StateGlobal, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	tx, err := r.st.Take(w, "", router.StateGlobal, "k")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := r.st.Get(rd, "", router.StateGlobal, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(sn.Bytes()) != "v1" || sn.Version() != 1 {
		t.Fatalf("stale snapshot = (%q, v%d), want (v1, v1)", sn.Bytes(), sn.Version())
	}
	if _, err := tx.Commit([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	// The old snapshot still reads its version: Commit replaced the backing
	// slice, it never mutates in place.
	if string(sn.Bytes()) != "v1" {
		t.Fatalf("snapshot mutated under reader: %q", sn.Bytes())
	}
	tx.ReleaseHold()
	sn.ReleaseHold()

	st := r.st.StatsSnapshot()
	if st.StaleGets != 1 {
		t.Fatalf("stale_gets = %d, want 1", st.StaleGets)
	}
	if err := r.st.Delete(w, "", router.StateGlobal, "k"); err != nil {
		t.Fatal(err)
	}
}

// TestConflictGetThenTake: an invocation holding a read grant on a key may
// not Take or Put it — the ownership pmove would destroy its own R slot.
func TestConflictGetThenTake(t *testing.T) {
	r := newRig(t, Config{}, 2)
	pd := r.pds[0]

	if _, err := r.st.Put(pd, "fn", router.StateLocal, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	sn, err := r.st.Get(pd, "fn", router.StateLocal, "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.st.Take(pd, "fn", router.StateLocal, "k"); !errors.Is(err, ErrConflict) {
		t.Fatalf("take with own snapshot live = %v, want ErrConflict", err)
	}
	if _, err := r.st.Put(pd, "fn", router.StateLocal, "k", []byte("w")); !errors.Is(err, ErrConflict) {
		t.Fatalf("put with own snapshot live = %v, want ErrConflict", err)
	}
	// A different PD is unaffected.
	if _, err := r.st.Put(r.pds[1], "fn", router.StateLocal, "k", []byte("w")); err != nil {
		t.Fatal(err)
	}
	sn.Release()
	// Released: the same PD may now write.
	if _, err := r.st.Put(pd, "fn", router.StateLocal, "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	sn.ReleaseHold()
	if err := r.st.Delete(pd, "fn", router.StateLocal, "k"); err != nil {
		t.Fatal(err)
	}
}

func TestCapacity(t *testing.T) {
	r := newRig(t, Config{CapBytes: 10}, 1)
	pd := r.pds[0]

	if _, err := r.st.Put(pd, "", router.StateGlobal, "a", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.st.Put(pd, "", router.StateGlobal, "b", []byte("123")); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-cap put = %v, want ErrCapacity", err)
	}
	// Replacing within the cap is fine (delta accounting, not absolute).
	if _, err := r.st.Put(pd, "", router.StateGlobal, "a", []byte("1234567890")); err != nil {
		t.Fatal(err)
	}
	// A transaction hitting the cap stays open and can commit smaller.
	tx, err := r.st.Take(pd, "", router.StateGlobal, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit([]byte("xyz")); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-cap commit = %v, want ErrCapacity", err)
	}
	if _, err := tx.Commit(nil); err != nil {
		t.Fatalf("empty commit after capacity refusal: %v", err)
	}
	tx.ReleaseHold()

	st := r.st.StatsSnapshot()
	if st.CapacityRefusals != 2 {
		t.Fatalf("capacity_refusals = %d, want 2", st.CapacityRefusals)
	}
	for _, k := range []string{"a", "b"} {
		if err := r.st.Delete(pd, "", router.StateGlobal, k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDegradedRefusesMutation(t *testing.T) {
	degraded := false
	r := newRig(t, Config{Degraded: func() bool { return degraded }}, 1)
	pd := r.pds[0]

	if _, err := r.st.Put(pd, "", router.StateGlobal, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	degraded = true
	if _, err := r.st.Put(pd, "", router.StateGlobal, "k", []byte("w")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded put = %v, want ErrDegraded", err)
	}
	if _, err := r.st.Take(pd, "", router.StateGlobal, "k"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded take = %v, want ErrDegraded", err)
	}
	// Reads keep being served in the degraded band.
	sn, err := r.st.Get(pd, "", router.StateGlobal, "k")
	if err != nil {
		t.Fatalf("degraded get = %v, want nil", err)
	}
	sn.ReleaseHold()
	degraded = false
	if r.st.StatsSnapshot().DegradedRefusals != 2 {
		t.Fatalf("degraded_refusals = %d, want 2", r.st.StatsSnapshot().DegradedRefusals)
	}
	if err := r.st.Delete(pd, "", router.StateGlobal, "k"); err != nil {
		t.Fatal(err)
	}
}

// TestPromotionDemotion drives a key across the promotion threshold, checks
// the fast path serves it, then demotes it with a write.
func TestPromotionDemotion(t *testing.T) {
	const threshold = 4
	r := newRig(t, Config{PromoteAfter: threshold}, 2)
	w, rd := r.pds[0], r.pds[1]

	if _, err := r.st.Put(w, "", router.StateGlobal, "hot", []byte("cfg")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < threshold; i++ {
		sn, err := r.st.Get(rd, "", router.StateGlobal, "hot")
		if err != nil {
			t.Fatal(err)
		}
		sn.ReleaseHold()
	}
	st := r.st.StatsSnapshot()
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d after %d reads, want 1", st.Promotions, threshold)
	}

	// Promoted: the next Get is the zero-traffic fast path.
	sn, err := r.st.Get(rd, "", router.StateGlobal, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if string(sn.Bytes()) != "cfg" || sn.Version() != 1 {
		t.Fatalf("fast-path snapshot = (%q, v%d)", sn.Bytes(), sn.Version())
	}
	if got := r.st.StatsSnapshot().FastGets; got != 1 {
		t.Fatalf("fast_gets = %d, want 1", got)
	}

	// A write demotes; the in-flight fast-path snapshot keeps its version.
	if _, err := r.st.Put(w, "", router.StateGlobal, "hot", []byte("cfg2")); err != nil {
		t.Fatal(err)
	}
	if string(sn.Bytes()) != "cfg" {
		t.Fatalf("promoted snapshot mutated under reader: %q", sn.Bytes())
	}
	sn.ReleaseHold()
	if got := r.st.StatsSnapshot().Demotions; got != 1 {
		t.Fatalf("demotions = %d, want 1", got)
	}

	// Post-demotion reads are the granted slow path again and see v2.
	sn2, err := r.st.Get(rd, "", router.StateGlobal, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if string(sn2.Bytes()) != "cfg2" || sn2.Version() != 2 {
		t.Fatalf("post-demotion snapshot = (%q, v%d), want (cfg2, v2)", sn2.Bytes(), sn2.Version())
	}
	sn2.ReleaseHold()
	if err := r.st.Delete(w, "", router.StateGlobal, "hot"); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteWithReadersInFlight: Delete with outstanding snapshots defers
// the VMA free to the last release; the key vanishes from the map at once.
func TestDeleteWithReadersInFlight(t *testing.T) {
	r := newRig(t, Config{}, 2)
	w, rd := r.pds[0], r.pds[1]

	if _, err := r.st.Put(w, "", router.StateGlobal, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	sn, err := r.st.Get(rd, "", router.StateGlobal, "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.st.Delete(w, "", router.StateGlobal, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.st.Get(rd, "", router.StateGlobal, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete = %v, want ErrNotFound", err)
	}
	// The straggler still reads its immutable alias.
	if string(sn.Bytes()) != "v" {
		t.Fatalf("snapshot after delete = %q", sn.Bytes())
	}
	sn.ReleaseHold() // last ref retires the VMA; rig cleanup verifies idle
}

// TestSamePDDoubleGet: two snapshots from one PD share a single pcopy grant
// (refcounted) and the grant clears only when both release.
func TestSamePDDoubleGet(t *testing.T) {
	r := newRig(t, Config{PromoteAfter: -1}, 2)
	pd := r.pds[0]

	if _, err := r.st.Put(r.pds[1], "", router.StateGlobal, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	sn1, err := r.st.Get(pd, "", router.StateGlobal, "k")
	if err != nil {
		t.Fatal(err)
	}
	sn2, err := r.st.Get(pd, "", router.StateGlobal, "k")
	if err != nil {
		t.Fatal(err)
	}
	sn1.Release()
	// One release down, the other snapshot must still read under the grant.
	if string(sn2.Bytes()) != "v" {
		t.Fatalf("second snapshot = %q", sn2.Bytes())
	}
	sn1.ReleaseHold()
	sn2.ReleaseHold()
	if err := r.st.Delete(pd, "", router.StateGlobal, "k"); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStore(t *testing.T) {
	tab := pool.NewTable(8)
	st, err := New(Config{}, tab)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := tab.Cget()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(pd, "", router.StateGlobal, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close = %v, want nil", err)
	}
	if _, err := st.Take(pd, "", router.StateGlobal, "k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("take after close = %v, want ErrClosed", err)
	}
	if _, err := st.Put(pd, "", router.StateGlobal, "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close = %v, want ErrClosed", err)
	}
	if err := tab.Cput(pd); err != nil {
		t.Fatal(err)
	}
	// Close freed every VMA and returned the store PD.
	if err := tab.VerifyIdle(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersWriters is the -race workhorse: many reader PDs
// snapshotting one key (crossing the promotion threshold repeatedly) while
// writers Take/Commit and Put against it. Values carry their version so
// readers can assert snapshot consistency.
func TestConcurrentReadersWriters(t *testing.T) {
	const (
		readers = 8
		writers = 2
		rounds  = 400
	)
	r := newRig(t, Config{PromoteAfter: 16}, readers+writers)
	st := r.st

	val := func(ver uint64) []byte { return []byte(fmt.Sprintf("v%020d", ver)) }
	if _, err := st.Put(r.pds[0], "", router.StateGlobal, "k", val(1)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for i := 0; i < readers; i++ {
		pd := r.pds[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				sn, err := st.Get(pd, "", router.StateGlobal, "k")
				if err != nil {
					errs <- fmt.Errorf("get: %w", err)
					return
				}
				// The bytes must be exactly the version the snapshot claims:
				// torn or in-place-mutated values fail here.
				if !bytes.Equal(sn.Bytes(), val(sn.Version())) {
					errs <- fmt.Errorf("torn snapshot: v%d reads %q", sn.Version(), sn.Bytes())
					sn.ReleaseHold()
					return
				}
				sn.ReleaseHold()
			}
		}()
	}
	for i := 0; i < writers; i++ {
		pd := r.pds[readers+i]
		wg.Add(1)
		go func(alt bool) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				if alt && n%2 == 0 {
					tx, err := st.Take(pd, "", router.StateGlobal, "k")
					if err != nil {
						if errors.Is(err, ErrTaken) {
							continue // the other writer owns it this instant
						}
						errs <- fmt.Errorf("take: %w", err)
						return
					}
					if _, err := tx.Commit(val(tx.Version() + 1)); err != nil {
						errs <- fmt.Errorf("commit: %w", err)
						tx.ReleaseHold()
						return
					}
					tx.ReleaseHold()
					continue
				}
				tx, err := st.Take(pd, "", router.StateGlobal, "k")
				if err != nil {
					if errors.Is(err, ErrTaken) {
						continue
					}
					errs <- fmt.Errorf("take: %w", err)
					return
				}
				next := val(tx.Version() + 1)
				if _, err := tx.Commit(next); err != nil {
					errs <- fmt.Errorf("commit: %w", err)
					tx.ReleaseHold()
					return
				}
				tx.ReleaseHold()
			}
		}(i == 0)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := st.StatsSnapshot()
	if stats.Promotions == 0 || stats.Demotions == 0 {
		t.Fatalf("want promotion/demotion churn under contention, got %d/%d",
			stats.Promotions, stats.Demotions)
	}
	if err := st.Delete(r.pds[0], "", router.StateGlobal, "k"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCreateDelete races getOrCreate against Delete on one key.
func TestConcurrentCreateDelete(t *testing.T) {
	const n = 4
	r := newRig(t, Config{}, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		pd := r.pds[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				if _, err := r.st.Put(pd, "", router.StateGlobal, "churn", []byte("x")); err != nil &&
					!errors.Is(err, ErrTaken) {
					errs <- err
					return
				}
				err := r.st.Delete(pd, "", router.StateGlobal, "churn")
				if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrTaken) {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Whatever survived the churn, clean it up for the idle check.
	err := r.st.Delete(r.pds[0], "", router.StateGlobal, "churn")
	if err != nil && !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
}
