// Package state is the live runtime's in-address-space shared-state tier:
// a two-tier (function-local / node-global) key-value store whose values
// live in VMAs and are reached only through the paper's permission model.
//
// Every committed value rests in one VMA owned by the store's dedicated
// protection domain (StatePD). Readers get zero-copy snapshots: Get pcopies
// an R grant onto the invocation's PD and hands back an alias of the
// committed bytes (Table 1: pcopy). Writers take exclusive ownership: Take
// pmoves the VMA RW into the invocation's PD, and Commit pmoves it back
// with the next version (Table 1: pmove — the same ownership-transfer
// mechanism as the ArgBuf handoff of §3.4). Hot read-mostly keys promote to
// global-RO mappings — the Fig. 8 VTE G bit — after which readers pay zero
// permission traffic and zero copies: the snapshot fast path is one atomic
// pointer load.
//
// Consistency follows Faasm's two-tier sharing shape and Groundhog's
// rollback discipline: snapshots are immutable (writers replace the backing
// bytes, never mutate them), a key has at most one owner at a time, and an
// abandoned ownership (body returned, panicked, or was killed with the
// transaction open) simply pmoves back — the committed value was untouched,
// so rollback is free by construction.
package state

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"jord/internal/mem/vmatable"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// Store errors. The gateway maps ErrDegraded like the pool's shed signal
// (429 Retry-After); the rest surface as function errors.
var (
	// ErrNotFound means the key does not exist in the addressed tier.
	ErrNotFound = errors.New("state: key not found")
	// ErrTaken means another invocation currently owns the key via Take.
	ErrTaken = errors.New("state: key taken by another invocation")
	// ErrTxClosed means Commit was called on an already-ended transaction.
	ErrTxClosed = errors.New("state: transaction already committed or discarded")
	// ErrCapacity means the write would push the store past its byte cap.
	ErrCapacity = errors.New("state: store capacity exceeded")
	// ErrDegraded means a mutating operation was refused because the worker
	// is shedding load (the pool's free-PD supply is inside the tiered-
	// shedding band): state growth degrades with external admission, reads
	// keep being served.
	ErrDegraded = errors.New("state: degraded: worker is shedding load")
	// ErrConflict means an invocation tried to Take or Put a key while
	// itself holding a read snapshot of that key — release the snapshot
	// first (the ownership pmove would destroy the PD's read grant and the
	// later snapshot release would fault).
	ErrConflict = errors.New("state: take/put while holding a read snapshot of the same key")
	// ErrClosed means the store has been shut down.
	ErrClosed = errors.New("state: store closed")
)

// Config sizes one store.
type Config struct {
	// CapBytes caps the total committed value bytes across both tiers.
	// A write that would exceed it fails with ErrCapacity. 0 defaults to
	// 64 MiB; < 0 removes the cap.
	CapBytes int64

	// PromoteAfter is the reads-since-last-write threshold at which a key
	// is promoted to a global-RO mapping (the VTE G bit): past it, Get
	// serves snapshots with zero permission traffic until the next write
	// demotes the key. 0 defaults to 64; < 0 disables promotion.
	PromoteAfter int

	// Degraded, when set, is consulted before every mutating operation
	// (Take, Put, create); returning true refuses it with ErrDegraded.
	// The server wires this to the pool's tiered-shedding band so state
	// growth tightens exactly when external admission does. Must be fast
	// and non-blocking.
	Degraded func() bool
}

func (c *Config) normalize() {
	if c.CapBytes == 0 {
		c.CapBytes = 64 << 20
	}
	if c.PromoteAfter == 0 {
		c.PromoteAfter = 64
	}
}

// mapKey addresses one value: fn is the owning function's name for the
// local tier, "" for the global tier. A struct key keeps lookups
// allocation-free.
type mapKey struct {
	fn  string
	key string
}

// pub is the published face of a globally promoted key: an immutable
// (bytes, version) pair readers load with one atomic pointer load. Writers
// unpublish (nil) before demoting.
type pub struct {
	bytes   []byte
	version uint64
}

// entry is one key's state. The VMA is allocated at entry creation and
// lives until the entry dies; commits replace its contents in place
// (VMA.Write swaps the backing slice), so snapshot aliases handed out
// earlier keep reading the version they saw.
type entry struct {
	mu sync.Mutex

	v       *pool.VMA
	bytes   []byte // committed contents (alias of what v holds)
	version uint64

	taken   bool                 // exclusive owner exists
	takenBy pool.PDID            // the owner (diagnostics)
	refs    int                  // outstanding handles: granted snapshots + open tx
	reads   int                  // snapshot reads since last write (promotion trigger)
	grants  map[pool.PDID]uint32 // outstanding pcopy R grants per reader PD

	promoted bool // G bit set on v
	dead     bool // deleted; VMA freed when refs drains to 0

	// published is non-nil while the key is globally promoted — the Get
	// fast path. Swung to nil (before the G-bit demotion) by any write.
	published atomic.Pointer[pub]
}

const numShards = 16

type shard struct {
	mu sync.RWMutex
	m  map[mapKey]*entry
}

// Store is the shared-state tier: sharded key → entry maps over VMAs owned
// by a dedicated protection domain. It implements pool.StateBackend.
type Store struct {
	cfg Config
	tab *pool.Table
	pd  pool.PDID // StatePD: owns every value VMA at rest

	shards [numShards]shard

	entries     atomic.Int64
	bytes       atomic.Int64
	outstanding atomic.Int64 // granted snapshots + open transactions

	gets        atomic.Uint64
	fastGets    atomic.Uint64 // served off the global-RO published pointer
	staleGets   atomic.Uint64 // served while the key was taken
	takes       atomic.Uint64
	commits     atomic.Uint64
	discards    atomic.Uint64
	puts        atomic.Uint64
	creates     atomic.Uint64
	deletes     atomic.Uint64
	promotions  atomic.Uint64
	demotions   atomic.Uint64
	copyAvoided atomic.Uint64 // bytes handed out as aliases a copying store would have memcpy'd
	degradedRef atomic.Uint64
	capacityRef atomic.Uint64

	closed atomic.Bool
}

var _ pool.StateBackend = (*Store)(nil)

// New builds a store over the pool's PD table, allocating its dedicated
// protection domain (one cget against the shared PD space — the store is a
// resident of the same address space as the functions it serves).
func New(cfg Config, tab *pool.Table) (*Store, error) {
	cfg.normalize()
	pd, err := tab.Cget()
	if err != nil {
		return nil, fmt.Errorf("state: allocating store PD: %w", err)
	}
	s := &Store{cfg: cfg, tab: tab, pd: pd}
	for i := range s.shards {
		s.shards[i].m = make(map[mapKey]*entry)
	}
	return s, nil
}

// PD returns the store's protection domain (tests, diagnostics).
func (s *Store) PD() pool.PDID { return s.pd }

// skey maps (fn, scope, key) onto the store key: the local tier namespaces
// by function name, the global tier by the empty name (no registered
// function has an empty name, so the tiers cannot collide).
func skey(fn string, scope router.StateScope, key string) mapKey {
	if scope == router.StateGlobal {
		return mapKey{key: key}
	}
	return mapKey{fn: fn, key: key}
}

// shardFor picks the shard by FNV-1a over both key components.
func (s *Store) shardFor(k mapKey) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.fn); i++ {
		h = (h ^ uint64(k.fn[i])) * 1099511628211
	}
	h = (h ^ 0xff) * 1099511628211 // separator: ("ab","c") != ("a","bc")
	for i := 0; i < len(k.key); i++ {
		h = (h ^ uint64(k.key[i])) * 1099511628211
	}
	return &s.shards[h%numShards]
}

// Get returns a read snapshot of key for the invocation running in pd.
//
// Fast path (globally promoted key): one atomic pointer load, no lock, no
// permission traffic, no copy, no allocation — the VTE G bit already
// grants every PD read access.
//
// Slow path: pcopy an R grant onto pd and hand out an alias of the
// committed bytes. If the key is currently taken by a writer, the snapshot
// is served from the committed (pre-take) version without a grant — the
// committed bytes are immutable, so the alias is safe without a
// per-reader permission entry.
func (s *Store) Get(pd pool.PDID, fn string, scope router.StateScope, key string) (router.StateSnap, error) {
	k := skey(fn, scope, key)
	sh := s.shardFor(k)
	sh.mu.RLock()
	e := sh.m[k]
	sh.mu.RUnlock()
	if e == nil {
		return nil, ErrNotFound
	}
	s.gets.Add(1)
	if p := e.published.Load(); p != nil {
		s.fastGets.Add(1)
		s.copyAvoided.Add(uint64(len(p.bytes)))
		sn := getSnap()
		sn.store, sn.entry, sn.pd = s, e, pd
		sn.bytes, sn.version = p.bytes, p.version
		return sn, nil
	}
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return nil, ErrNotFound
	}
	if e.taken {
		// Stale-while-written: serve the committed version. No grant — the
		// store vouches for the alias (committed bytes are never mutated in
		// place), exactly like the published fast path but per-request.
		sn := getSnap()
		sn.store, sn.entry, sn.pd = s, e, pd
		sn.bytes, sn.version = e.bytes, e.version
		s.staleGets.Add(1)
		s.copyAvoided.Add(uint64(len(e.bytes)))
		e.mu.Unlock()
		return sn, nil
	}
	if e.grants[pd] == 0 {
		if err := e.v.Pcopy(s.pd, pd, vmatable.PermR); err != nil {
			e.mu.Unlock()
			return nil, err
		}
	}
	b, err := e.v.Read(pd) // the checked read the grant exists for
	if err != nil {
		if e.grants[pd] == 0 {
			_ = e.v.Pmove(pd, s.pd, vmatable.PermR)
		}
		e.mu.Unlock()
		return nil, err
	}
	if e.grants == nil {
		e.grants = make(map[pool.PDID]uint32, 4)
	}
	e.grants[pd]++
	e.refs++
	e.reads++
	if s.cfg.PromoteAfter > 0 && !e.promoted && e.reads >= s.cfg.PromoteAfter {
		// Hot read-mostly key: set the G bit so every later reader pays
		// nothing, and publish the (bytes, version) pair the fast path
		// serves. Demoted again by the next write.
		if e.v.PromoteGlobal(s.pd, vmatable.PermR) == nil {
			e.promoted = true
			e.published.Store(&pub{bytes: e.bytes, version: e.version})
			s.promotions.Add(1)
		}
	}
	ver := e.version
	e.mu.Unlock()
	s.outstanding.Add(1)
	s.copyAvoided.Add(uint64(len(b)))
	sn := getSnap()
	sn.store, sn.entry, sn.pd = s, e, pd
	sn.bytes, sn.version = b, ver
	sn.granted = true
	return sn, nil
}

// getOrCreate finds or creates the entry for k and returns it with its
// mutex HELD. created reports a fresh (empty, version 0) entry.
func (s *Store) getOrCreate(k mapKey) (e *entry, created bool) {
	sh := s.shardFor(k)
	for {
		sh.mu.RLock()
		e = sh.m[k]
		sh.mu.RUnlock()
		if e == nil {
			sh.mu.Lock()
			if e = sh.m[k]; e == nil {
				e = &entry{v: s.tab.NewVMA(s.pd, nil, vmatable.PermRW)}
				e.mu.Lock()
				sh.m[k] = e
				sh.mu.Unlock()
				s.entries.Add(1)
				return e, true
			}
			sh.mu.Unlock()
		}
		e.mu.Lock()
		if !e.dead {
			return e, false
		}
		e.mu.Unlock() // lost to a concurrent Delete; retry
	}
}

// demoteLocked clears a key's global promotion ahead of a write: unpublish
// first (fast-path readers stop seeing the old pointer), then clear the G
// bit. Readers that loaded the pointer just before the swing keep their
// (immutable, now previous-version) snapshot — the same staleness window
// the taken path has. Caller holds e.mu.
func (s *Store) demoteLocked(e *entry) {
	if !e.promoted {
		return
	}
	e.published.Store(nil)
	_ = e.v.DemoteGlobal(s.pd, vmatable.PermR)
	e.promoted = false
	s.demotions.Add(1)
}

// Take acquires exclusive write ownership of key for the invocation in pd,
// creating the key empty (version 0) if absent. The value VMA pmoves RW
// into pd; it returns to the store at Commit or Discard. A key has at most
// one owner: a concurrent Take fails with ErrTaken rather than blocking
// (the store never parks an executor's runner on state contention).
func (s *Store) Take(pd pool.PDID, fn string, scope router.StateScope, key string) (router.StateTx, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if d := s.cfg.Degraded; d != nil && d() {
		s.degradedRef.Add(1)
		return nil, ErrDegraded
	}
	e, created := s.getOrCreate(skey(fn, scope, key))
	// e.mu held.
	if e.taken {
		e.mu.Unlock()
		return nil, ErrTaken
	}
	if e.grants[pd] > 0 {
		e.mu.Unlock()
		return nil, ErrConflict
	}
	s.demoteLocked(e)
	if err := e.v.Pmove(s.pd, pd, vmatable.PermRW); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.taken = true
	e.takenBy = pd
	e.refs++
	t := getTx()
	t.store, t.entry, t.pd = s, e, pd
	t.bytes, t.version = e.bytes, e.version
	t.open = true
	e.mu.Unlock()
	s.outstanding.Add(1)
	s.takes.Add(1)
	if created {
		s.creates.Add(1)
	}
	return t, nil
}

// Put atomically creates or replaces key's value — a take/commit
// micro-transaction that never spans body code: pmove the VMA to the
// writer, checked Write, pmove back, bump the version.
func (s *Store) Put(pd pool.PDID, fn string, scope router.StateScope, key string, val []byte) (uint64, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if d := s.cfg.Degraded; d != nil && d() {
		s.degradedRef.Add(1)
		return 0, ErrDegraded
	}
	e, created := s.getOrCreate(skey(fn, scope, key))
	// e.mu held.
	if e.taken {
		e.mu.Unlock()
		return 0, ErrTaken
	}
	if e.grants[pd] > 0 {
		e.mu.Unlock()
		return 0, ErrConflict
	}
	delta := int64(len(val)) - int64(len(e.bytes))
	if s.cfg.CapBytes > 0 && delta > 0 && s.bytes.Load()+delta > s.cfg.CapBytes {
		e.mu.Unlock()
		s.capacityRef.Add(1)
		return 0, ErrCapacity
	}
	s.demoteLocked(e)
	err := e.v.Pmove(s.pd, pd, vmatable.PermRW)
	if err == nil {
		err = e.v.Write(pd, val)
		if mvErr := e.v.Pmove(pd, s.pd, vmatable.PermRW); err == nil {
			err = mvErr
		}
	}
	if err != nil {
		e.mu.Unlock()
		return 0, err
	}
	e.bytes = val
	e.version++
	e.reads = 0
	ver := e.version
	e.mu.Unlock()
	s.bytes.Add(delta)
	s.puts.Add(1)
	if created {
		s.creates.Add(1)
	}
	return ver, nil
}

// Delete removes key. It fails with ErrTaken while a writer owns the key;
// with read snapshots outstanding the entry leaves the map immediately and
// its VMA is retired when the last grant releases.
func (s *Store) Delete(pd pool.PDID, fn string, scope router.StateScope, key string) error {
	k := skey(fn, scope, key)
	sh := s.shardFor(k)
	sh.mu.Lock()
	e := sh.m[k]
	if e == nil {
		sh.mu.Unlock()
		return ErrNotFound
	}
	e.mu.Lock()
	if e.taken {
		e.mu.Unlock()
		sh.mu.Unlock()
		return ErrTaken
	}
	s.demoteLocked(e)
	delete(sh.m, k)
	sh.mu.Unlock()
	e.dead = true
	free := e.refs == 0
	n := int64(len(e.bytes))
	e.mu.Unlock()
	if free {
		_ = e.v.Free(s.pd)
	}
	s.bytes.Add(-n)
	s.entries.Add(-1)
	s.deletes.Add(1)
	return nil
}

// Stats is a point-in-time counter snapshot for /statsz and /varz.
type Stats struct {
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Outstanding int64 `json:"outstanding"` // live snapshots + open transactions

	Gets      uint64 `json:"gets"`
	FastGets  uint64 `json:"fast_gets"` // served via the global-RO fast path
	StaleGets uint64 `json:"stale_gets"`
	Takes     uint64 `json:"takes"`
	Commits   uint64 `json:"commits"`
	Discards  uint64 `json:"discards"`
	Puts      uint64 `json:"puts"`
	Creates   uint64 `json:"creates"`
	Deletes   uint64 `json:"deletes"`

	Promotions uint64 `json:"promotions"`
	Demotions  uint64 `json:"demotions"`

	CopyBytesAvoided uint64 `json:"copy_bytes_avoided"`
	DegradedRefusals uint64 `json:"degraded_refusals"`
	CapacityRefusals uint64 `json:"capacity_refusals"`
}

// StatsSnapshot reads the counters.
func (s *Store) StatsSnapshot() Stats {
	return Stats{
		Entries:          s.entries.Load(),
		Bytes:            s.bytes.Load(),
		Outstanding:      s.outstanding.Load(),
		Gets:             s.gets.Load(),
		FastGets:         s.fastGets.Load(),
		StaleGets:        s.staleGets.Load(),
		Takes:            s.takes.Load(),
		Commits:          s.commits.Load(),
		Discards:         s.discards.Load(),
		Puts:             s.puts.Load(),
		Creates:          s.creates.Load(),
		Deletes:          s.deletes.Load(),
		Promotions:       s.promotions.Load(),
		Demotions:        s.demotions.Load(),
		CopyBytesAvoided: s.copyAvoided.Load(),
		DegradedRefusals: s.degradedRef.Load(),
		CapacityRefusals: s.capacityRef.Load(),
	}
}

// VerifyIdle checks the quiescent invariant the chaos suite asserts after
// a drain: no key taken, no handle outstanding, no grant live. For
// quiescent (test/drain) use only.
func (s *Store) VerifyIdle() error {
	if n := s.outstanding.Load(); n != 0 {
		return fmt.Errorf("state: %d handles outstanding after drain", n)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			e.mu.Lock()
			taken, refs, ng := e.taken, e.refs, len(e.grants)
			e.mu.Unlock()
			if taken || refs != 0 || ng != 0 {
				sh.mu.RUnlock()
				return fmt.Errorf("state: key %q/%q not idle after drain (taken=%v refs=%d grants=%d)",
					k.fn, k.key, taken, refs, ng)
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}

// Close shuts the store down after the pool has drained: every entry VMA
// is freed and the store's protection domain returns to the table, so the
// table's post-drain VerifyIdle holds again. Outstanding handles at Close
// are a lifecycle bug and surface as faults from VMA.Free.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	var firstErr error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			e.mu.Lock()
			s.demoteLocked(e)
			e.dead = true
			busy := e.taken || e.refs != 0
			e.mu.Unlock()
			delete(sh.m, k)
			if busy {
				if firstErr == nil {
					firstErr = fmt.Errorf("state: closing with key %q/%q still held", k.fn, k.key)
				}
				continue
			}
			if err := e.v.Free(s.pd); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.mu.Unlock()
	}
	s.entries.Store(0)
	s.bytes.Store(0)
	if err := s.tab.Cput(s.pd); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
