package state

import (
	"sync"

	"jord/internal/mem/vmatable"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// snapshot is a read snapshot handle (router.StateSnap). granted marks a
// pcopy R grant the release must pmove back; fast-path (globally promoted)
// and stale-while-taken snapshots carry no grant — their bytes are
// immutable aliases. Handles recycle through a sync.Pool; only the runtime
// (ReleaseHold, at invocation teardown) recycles, so a body that kept the
// handle after Release cannot race a reused one.
type snapshot struct {
	store    *Store
	entry    *entry
	pd       pool.PDID
	bytes    []byte
	version  uint64
	granted  bool
	released bool
}

var _ router.StateSnap = (*snapshot)(nil)

var snapPool = sync.Pool{New: func() any { return new(snapshot) }}

func getSnap() *snapshot { return snapPool.Get().(*snapshot) }

// Bytes returns the snapshot contents (zero-copy alias; read-only).
func (sn *snapshot) Bytes() []byte { return sn.bytes }

// Version returns the value version this snapshot observed.
func (sn *snapshot) Version() uint64 { return sn.version }

// Release returns the read grant early. Idempotent; the handle itself
// stays valid (and is recycled by the runtime at teardown).
func (sn *snapshot) Release() {
	if sn.released {
		return
	}
	sn.released = true
	if !sn.granted {
		return
	}
	s, e := sn.store, sn.entry
	e.mu.Lock()
	e.grants[sn.pd]--
	if e.grants[sn.pd] == 0 {
		delete(e.grants, sn.pd)
		// The grant pmoves back rather than being dropped: StatePD reabsorbs
		// the R it copied out, and the reader PD's slot clears — a recycled
		// PD ID must inherit nothing.
		_ = e.v.Pmove(sn.pd, s.pd, vmatable.PermR)
	}
	e.refs--
	free := e.dead && e.refs == 0
	e.mu.Unlock()
	s.outstanding.Add(-1)
	if free {
		// Last handle on a deleted key retires its VMA.
		_ = e.v.Free(s.pd)
	}
}

// ReleaseHold is the runtime's teardown path: release if the body did not,
// then recycle the handle.
func (sn *snapshot) ReleaseHold() {
	sn.Release()
	*sn = snapshot{}
	snapPool.Put(sn)
}

// tx is an exclusive-ownership handle (router.StateTx).
type tx struct {
	store   *Store
	entry   *entry
	pd      pool.PDID
	bytes   []byte
	version uint64
	open    bool
}

var _ router.StateTx = (*tx)(nil)

var txPool = sync.Pool{New: func() any { return new(tx) }}

func getTx() *tx { return txPool.Get().(*tx) }

// Bytes returns the committed value at take time (zero-copy alias; commit
// a new slice rather than mutating it).
func (t *tx) Bytes() []byte { return t.bytes }

// Version returns the value version at take time.
func (t *tx) Version() uint64 { return t.version }

// Commit publishes val as the next version: checked Write into the owned
// VMA, pmove ownership back to the store, version bump. On ErrCapacity the
// transaction stays open (the body may Discard or commit something
// smaller).
func (t *tx) Commit(val []byte) (uint64, error) {
	if !t.open {
		return 0, ErrTxClosed
	}
	s, e := t.store, t.entry
	e.mu.Lock()
	delta := int64(len(val)) - int64(len(e.bytes))
	if s.cfg.CapBytes > 0 && delta > 0 && s.bytes.Load()+delta > s.cfg.CapBytes {
		e.mu.Unlock()
		s.capacityRef.Add(1)
		return 0, ErrCapacity
	}
	err := e.v.Write(t.pd, val)
	if mvErr := e.v.Pmove(t.pd, s.pd, vmatable.PermRW); err == nil {
		err = mvErr
	}
	t.open = false
	e.taken = false
	e.takenBy = 0
	e.refs--
	if err != nil {
		e.mu.Unlock()
		s.outstanding.Add(-1)
		return 0, err
	}
	e.bytes = val
	e.version++
	e.reads = 0
	ver := e.version
	e.mu.Unlock()
	s.bytes.Add(delta)
	s.outstanding.Add(-1)
	s.commits.Add(1)
	return ver, nil
}

// Discard ends the transaction without publishing: ownership pmoves back,
// the committed value untouched — the Groundhog rollback, free because
// mutation only ever happens at Commit.
func (t *tx) Discard() {
	if !t.open {
		return
	}
	t.open = false
	s, e := t.store, t.entry
	e.mu.Lock()
	_ = e.v.Pmove(t.pd, s.pd, vmatable.PermRW)
	e.taken = false
	e.takenBy = 0
	e.refs--
	e.mu.Unlock()
	s.outstanding.Add(-1)
	s.discards.Add(1)
}

// ReleaseHold is the runtime's teardown path: an open transaction is
// discarded (the body returned, panicked, or was killed mid-ownership),
// then the handle recycles.
func (t *tx) ReleaseHold() {
	t.Discard()
	*t = tx{}
	txPool.Put(t)
}
