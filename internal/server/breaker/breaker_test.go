package breaker

import (
	"sync"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Window:       time.Second,
		Buckets:      10,
		MinSamples:   5,
		FailureRatio: 0.5,
		Cooldown:     100 * time.Millisecond,
	}
}

// record n outcomes at now.
func record(b *Breaker, n int, failure bool, now time.Time) {
	for i := 0; i < n; i++ {
		b.Record(failure, false, now)
	}
}

func TestTripOnFailureRatio(t *testing.T) {
	b := New(testConfig())
	now := time.Unix(1000, 0)
	record(b, 4, true, now)
	if b.State() != Closed {
		t.Fatalf("tripped below MinSamples: state %v after 4 failures", b.State())
	}
	record(b, 1, true, now)
	if b.State() != Open {
		t.Fatalf("state = %v after 5/5 failures, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	probe, ok, retry := b.Allow(now.Add(10 * time.Millisecond))
	if ok || probe {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, cooldown]", retry)
	}
	if b.ShortCircuits() != 1 {
		t.Fatalf("short circuits = %d, want 1", b.ShortCircuits())
	}
}

func TestStaysClosedUnderRatio(t *testing.T) {
	b := New(testConfig())
	now := time.Unix(1000, 0)
	// 40% failures over plenty of samples: below the 0.5 ratio.
	record(b, 12, false, now)
	record(b, 8, true, now)
	if b.State() != Closed {
		t.Fatalf("state = %v at 40%% failures, want closed", b.State())
	}
	if probe, ok, _ := b.Allow(now); !ok || probe {
		t.Fatal("closed breaker refused a request")
	}
}

func TestHalfOpenProbeSuccessCloses(t *testing.T) {
	b := New(testConfig())
	now := time.Unix(1000, 0)
	record(b, 5, true, now)
	if b.State() != Open {
		t.Fatal("setup: breaker did not trip")
	}
	after := now.Add(150 * time.Millisecond) // past cooldown
	probe, ok, _ := b.Allow(after)
	if !ok || !probe {
		t.Fatalf("post-cooldown Allow = (probe=%v ok=%v), want probe admission", probe, ok)
	}
	// A second request during the probe is still refused.
	if _, ok2, retry := b.Allow(after); ok2 {
		t.Fatal("second request admitted during half-open probe")
	} else if retry <= 0 {
		t.Fatal("half-open refusal carried no retry hint")
	}
	b.Record(false, true, after)
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	// Window was reset: old failures must not re-trip on the next outcome.
	b.Record(true, false, after)
	if b.State() != Closed {
		t.Fatal("breaker re-tripped from stale window after close")
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	b := New(testConfig())
	now := time.Unix(1000, 0)
	record(b, 5, true, now)
	after := now.Add(150 * time.Millisecond)
	probe, ok, _ := b.Allow(after)
	if !ok || !probe {
		t.Fatal("probe not admitted")
	}
	b.Record(true, true, after)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	// The fresh cooldown starts at the probe failure.
	if _, ok, _ := b.Allow(after.Add(50 * time.Millisecond)); ok {
		t.Fatal("admitted inside the re-opened cooldown")
	}
	if probe, ok, _ := b.Allow(after.Add(150 * time.Millisecond)); !ok || !probe {
		t.Fatal("no new probe after the re-opened cooldown")
	}
}

func TestCancelProbeFreesSlot(t *testing.T) {
	b := New(testConfig())
	now := time.Unix(1000, 0)
	record(b, 5, true, now)
	after := now.Add(150 * time.Millisecond)
	if probe, ok, _ := b.Allow(after); !ok || !probe {
		t.Fatal("probe not admitted")
	}
	// The probe never reached the function (e.g. admission shed): no verdict.
	b.CancelProbe()
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after canceled probe, want half-open", b.State())
	}
	if probe, ok, _ := b.Allow(after.Add(time.Millisecond)); !ok || !probe {
		t.Fatal("next request did not become the new probe")
	}
}

func TestFailuresAgeOutOfWindow(t *testing.T) {
	b := New(testConfig())
	now := time.Unix(1000, 0)
	// 4 failures now (below MinSamples), then one more two windows later:
	// the old ones must have aged out, so no trip.
	record(b, 4, true, now)
	later := now.Add(2 * time.Second)
	record(b, 1, true, later)
	if b.State() != Closed {
		t.Fatalf("state = %v: aged-out failures still tripped the breaker", b.State())
	}
}

func TestWatchdogFaultTrips(t *testing.T) {
	s := NewSet(testConfig(), []string{"stuck", "fine"})
	b := s.For("stuck")
	now := time.Now()
	for i := 0; i < 5; i++ {
		b.RecordFault(now)
	}
	if b.State() != Open {
		t.Fatalf("state = %v after 5 watchdog faults, want open", b.State())
	}
	if s.For("fine").State() != Closed {
		t.Fatal("unrelated function's breaker moved")
	}
	nc := s.NotClosed()
	if len(nc) != 1 || nc[0] != "stuck" {
		t.Fatalf("NotClosed = %v, want [stuck]", nc)
	}
}

func TestSetLookup(t *testing.T) {
	var nilSet *Set
	if nilSet.For("x") != nil {
		t.Fatal("nil set returned a breaker")
	}
	if nilSet.NotClosed() != nil {
		t.Fatal("nil set reported open breakers")
	}
	s := NewSet(Config{}, []string{"a"})
	if s.For("a") == nil || s.For("b") != nil {
		t.Fatal("set lookup wrong")
	}
	if s.Config().Window != 10*time.Second {
		t.Fatalf("defaults not applied: window = %v", s.Config().Window)
	}
}

// TestConcurrentTraffic hammers one breaker from many goroutines under
// -race: failures trip it, probes cycle it, and the state must always be
// one of the three legal values with counters consistent.
func TestConcurrentTraffic(t *testing.T) {
	b := New(Config{
		Window:       100 * time.Millisecond,
		Buckets:      4,
		MinSamples:   10,
		FailureRatio: 0.5,
		Cooldown:     5 * time.Millisecond,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				now := time.Now()
				probe, ok, _ := b.Allow(now)
				if !ok {
					continue
				}
				// Half the workers always fail, half always succeed.
				b.Record(w%2 == 0, probe, now)
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s := b.State(); s != Closed && s != Open && s != HalfOpen {
		t.Fatalf("illegal state %d", s)
	}
}
