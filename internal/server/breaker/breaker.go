// Package breaker implements per-function circuit breakers for the live
// serving path: blast-radius containment as a first-class runtime duty.
// Jord's protection domains isolate a faulty function's MEMORY; a breaker
// isolates its RESOURCE FOOTPRINT — a function that keeps panicking,
// blowing its deadline, or tripping the stuck-body watchdog is quarantined
// with fast 503s so it stops consuming executors, PDs, and queue slots that
// healthy functions need.
//
// Each breaker is the classic three-state machine over a sliding failure
// window:
//
//	Closed    normal service. Outcomes are counted into a bucketed sliding
//	          window; when the window holds at least MinSamples outcomes
//	          and the failure ratio reaches FailureRatio, the breaker trips.
//	Open      requests are refused immediately (the gateway answers 503
//	          with Retry-After) until Cooldown elapses.
//	HalfOpen  exactly one probe request is admitted; its outcome decides
//	          between re-opening (fresh Cooldown) and closing (window
//	          reset).
//
// The closed-state hot path is one atomic load in Allow plus a few atomic
// adds in Record; the mutex guards only state transitions, which are rare
// by construction.
package breaker

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a breaker's position in the trip cycle.
type State int32

const (
	Closed State = iota
	Open
	HalfOpen
)

// String returns the conventional lowercase state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Config tunes one breaker (and, via Set, every breaker of a daemon).
type Config struct {
	// Window is the sliding interval over which failures are counted
	// (default 10s).
	Window time.Duration
	// Buckets subdivides the window; finer buckets age failures out more
	// smoothly (default 10).
	Buckets int
	// MinSamples is the minimum number of recorded outcomes in the window
	// before the ratio can trip the breaker — a floor against tripping on
	// the first unlucky request (default 20).
	MinSamples uint64
	// FailureRatio is the windowed failure fraction that trips the breaker
	// (default 0.5).
	FailureRatio float64
	// Cooldown is how long an open breaker refuses requests before
	// admitting a half-open probe (default 2s).
	Cooldown time.Duration
	// OnTrip, when set, is invoked with the function name each time a
	// breaker opens. It runs under the breaker's mutex, so it must be fast
	// and must never call back into the breaker — it exists so the flight
	// recorder can freeze state at the moment of the trip.
	OnTrip func(name string)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinSamples == 0 {
		c.MinSamples = 20
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// bucket is one slice of the sliding window. start identifies the bucket
// epoch the counters belong to; a bucket whose epoch has passed is lazily
// reset by the next recorder (CAS on start).
type bucket struct {
	start atomic.Int64 // unix ns of this bucket's epoch start; 0 = empty
	total atomic.Uint64
	fail  atomic.Uint64
}

// Breaker is one function's circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg      Config
	bucketNS int64
	name     string // for Config.OnTrip; set by NewSet, empty on bare New

	// state sits alone on its cache line: the closed-state Allow fast path
	// is a single load of it, and that line must not be invalidated by the
	// window buckets or counters mutating under traffic.
	_     [60]byte
	state atomic.Int32 // State; the Allow fast path reads only this
	_     [60]byte

	// mu guards state TRANSITIONS (trip, probe admission, close) and the
	// fields below — all off the closed-state hot path.
	mu       sync.Mutex
	openedAt time.Time
	probing  bool

	buckets []bucket

	trips   atomic.Uint64
	shorted atomic.Uint64 // requests refused while open/half-open
}

// New builds a breaker in the Closed state.
func New(cfg Config) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:      cfg,
		bucketNS: cfg.Window.Nanoseconds() / int64(cfg.Buckets),
		buckets:  make([]bucket, cfg.Buckets),
	}
}

// Allow decides whether one request to this breaker's function may
// proceed. On ok, the caller MUST later call Record (or CancelProbe when
// probe is true and the request never reached the function) with the
// outcome. On !ok the request must be refused — retryAfter is the
// suggested client backoff (the gateway's Retry-After header).
func (b *Breaker) Allow(now time.Time) (probe, ok bool, retryAfter time.Duration) {
	if State(b.state.Load()) == Closed {
		return false, true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch State(b.state.Load()) {
	case Closed: // closed under us — admit normally
		return false, true, 0
	case Open:
		if rem := b.cfg.Cooldown - now.Sub(b.openedAt); rem > 0 {
			b.shorted.Add(1)
			return false, false, rem
		}
		// Cooldown over: this request becomes the half-open probe.
		b.state.Store(int32(HalfOpen))
		b.probing = true
		return true, true, 0
	default: // HalfOpen
		if !b.probing {
			b.probing = true
			return true, true, 0
		}
		b.shorted.Add(1)
		return false, false, b.cfg.Cooldown / 2
	}
}

// Record reports one admitted request's outcome. probe must be the value
// Allow returned. A probe's outcome decides the half-open verdict:
// failure re-opens (fresh cooldown), success closes and resets the window.
// Non-probe outcomes feed the sliding window and may trip a closed
// breaker.
func (b *Breaker) Record(failure, probe bool, now time.Time) {
	if probe {
		b.mu.Lock()
		if State(b.state.Load()) == HalfOpen {
			if failure {
				b.reopenLocked(now)
			} else {
				b.resetWindow()
				b.state.Store(int32(Closed))
			}
		}
		b.probing = false
		b.mu.Unlock()
		return
	}
	bk := b.bucketFor(now)
	bk.total.Add(1)
	if !failure {
		return
	}
	bk.fail.Add(1)
	if State(b.state.Load()) != Closed {
		return
	}
	total, fails := b.windowCounts(now)
	if total < b.cfg.MinSamples || float64(fails) < b.cfg.FailureRatio*float64(total) {
		return
	}
	b.mu.Lock()
	if State(b.state.Load()) == Closed {
		b.reopenLocked(now)
	}
	b.mu.Unlock()
}

// RecordFault feeds one failure that was detected OUTSIDE a gateway
// request — the ExecTimeout watchdog flagging a stuck invocation. It
// counts into the window and may trip the breaker exactly like a failed
// request.
func (b *Breaker) RecordFault(now time.Time) { b.Record(true, false, now) }

// CancelProbe releases the half-open probe slot without a verdict — the
// probe request died of something that says nothing about the function
// (admission shed, drain, client gone). The next Allow admits a new probe.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// reopenLocked trips the breaker (from Closed or HalfOpen). Caller holds mu.
func (b *Breaker) reopenLocked(now time.Time) {
	b.openedAt = now
	b.resetWindow()
	b.state.Store(int32(Open))
	b.trips.Add(1)
	if b.cfg.OnTrip != nil {
		b.cfg.OnTrip(b.name)
	}
}

// resetWindow clears the sliding window (trip and close both start the
// next episode from zero evidence). Racy against concurrent recorders —
// a sample landing mid-reset may be lost, which only delays the next trip
// by one sample.
func (b *Breaker) resetWindow() {
	for i := range b.buckets {
		bk := &b.buckets[i]
		bk.start.Store(0)
		bk.total.Store(0)
		bk.fail.Store(0)
	}
}

// bucketFor returns now's bucket, lazily recycling it when its previous
// epoch has aged out. The CAS winner zeroes the counters; a concurrent
// add racing the zeroing can be lost — acceptable for a trip heuristic.
func (b *Breaker) bucketFor(now time.Time) *bucket {
	ns := now.UnixNano()
	epoch := ns - ns%b.bucketNS
	bk := &b.buckets[(ns/b.bucketNS)%int64(len(b.buckets))]
	if s := bk.start.Load(); s != epoch {
		if bk.start.CompareAndSwap(s, epoch) {
			bk.total.Store(0)
			bk.fail.Store(0)
		}
	}
	return bk
}

// windowCounts sums the buckets still inside the sliding window.
func (b *Breaker) windowCounts(now time.Time) (total, fails uint64) {
	cut := now.UnixNano() - b.cfg.Window.Nanoseconds()
	for i := range b.buckets {
		bk := &b.buckets[i]
		if s := bk.start.Load(); s != 0 && s > cut {
			total += bk.total.Load()
			fails += bk.fail.Load()
		}
	}
	return total, fails
}

// State returns the breaker's current state.
func (b *Breaker) State() State { return State(b.state.Load()) }

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 { return b.trips.Load() }

// ShortCircuits returns how many requests were refused while not closed.
func (b *Breaker) ShortCircuits() uint64 { return b.shorted.Load() }

// Set is a daemon's breaker collection, one per registered function. The
// map is immutable after NewSet, so For is a lock-free lookup.
type Set struct {
	cfg Config
	m   map[string]*Breaker
}

// NewSet builds one breaker per function name.
func NewSet(cfg Config, names []string) *Set {
	s := &Set{cfg: cfg.withDefaults(), m: make(map[string]*Breaker, len(names))}
	for _, n := range names {
		b := New(s.cfg)
		b.name = n
		s.m[n] = b
	}
	return s
}

// Config returns the set's effective (defaulted) configuration.
func (s *Set) Config() Config { return s.cfg }

// For returns the breaker for a function name (nil if unknown, or if the
// set itself is nil — breakers disabled).
func (s *Set) For(name string) *Breaker {
	if s == nil {
		return nil
	}
	return s.m[name]
}

// ForBytes is For keyed by raw bytes — the zero-allocation edge's lookup.
// The m[string(b)] form compiles to a map probe without materializing the
// string, so the closed-path breaker check stays allocation-free.
func (s *Set) ForBytes(name []byte) *Breaker {
	if s == nil {
		return nil
	}
	return s.m[string(name)]
}

// RecordFault counts one out-of-band failure (watchdog flag) against a
// function's breaker. Shaped to plug directly into pool.Config.OnWatchdog.
func (s *Set) RecordFault(name string) {
	if b := s.For(name); b != nil {
		b.RecordFault(time.Now())
	}
}

// NotClosed returns the names of functions whose breaker is currently
// open or half-open, sorted for stable output — the /readyz view.
func (s *Set) NotClosed() []string {
	if s == nil {
		return nil
	}
	var out []string
	for name, b := range s.m {
		if b.State() != Closed {
			out = append(out, name)
		}
	}
	sortStrings(out)
	return out
}

// sortStrings is a dependency-free insertion sort; breaker sets are small.
func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
