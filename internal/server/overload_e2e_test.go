// Overload-control end-to-end suite: a real daemon on loopback with the
// full adaptive stack enabled — CoDel-style admission, per-function
// circuit breakers, tiered PD shedding — driven past capacity with one
// deliberately faulty function in the mix. The contract under test is the
// blast-radius one: the faulty function gets quarantined (fast 503s with
// Retry-After), healthy traffic keeps serving with bounded latency, and
// after drain the runtime is exactly idle (no live PDs, no leaked
// goroutines).
package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jord/internal/server/gateway"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// postInvoke fires one invocation and returns status, body, Retry-After.
func postInvoke(t *testing.T, client *http.Client, base, fn, payload string) (int, string, string) {
	t.Helper()
	resp, err := client.Post(base+"/invoke/"+fn, "application/octet-stream",
		strings.NewReader(payload))
	if err != nil {
		t.Fatalf("invoke %s: %v", fn, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("invoke %s: reading body: %v", fn, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Retry-After")
}

func getJSON(t *testing.T, client *http.Client, url string, into any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp.StatusCode
}

// TestOverloadQuarantineAndBoundedLatency is the acceptance chaos run:
// a broken function is hammered until its breaker opens, then 2x-capacity
// load on the healthy function must keep serving with bounded p99 while
// the quarantined function answers fast 503s; internal (nested) calls are
// never shed; post-drain the PD table is idle and goroutines return to
// baseline.
func TestOverloadQuarantineAndBoundedLatency(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cfg := DefaultConfig()
	cfg.Pool = pool.Config{
		Executors:        2,
		Orchestrators:    1,
		JBSQBound:        2,
		ExternalQueueCap: 64,
		NumPDs:           64,
		SweepInterval:    time.Millisecond,
	}
	cfg.MaxInflight = 16 // 2x capacity load below overflows this
	cfg.AdmitTarget = 5 * time.Millisecond
	cfg.AdmitInterval = 20 * time.Millisecond
	cfg.BreakerWindow = 500 * time.Millisecond
	cfg.BreakerCooldown = 200 * time.Millisecond
	cfg.BreakerRatio = 0.5
	cfg.BreakerMinSamples = 5
	cfg.RequestTimeout = 5 * time.Second

	var internalShed atomic.Uint64 // nested-call refusals: must stay 0
	var broken atomic.Bool
	broken.Store(true)

	d := New(cfg)
	d.MustRegister("leaf", func(ctx router.Ctx) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return ctx.Payload(), nil
	})
	d.MustRegister("healthy", func(ctx router.Ctx) ([]byte, error) {
		got, err := ctx.Call("leaf", ctx.Payload())
		if err != nil && (strings.Contains(err.Error(), "degraded") ||
			strings.Contains(err.Error(), "saturated")) {
			internalShed.Add(1)
		}
		return got, err
	})
	d.MustRegister("poison", func(ctx router.Ctx) ([]byte, error) {
		if broken.Load() {
			panic("poison: still broken")
		}
		return []byte("recovered"), nil
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := newClient()

	// --- Phase 1: trip poison's breaker. ---
	deadline := time.Now().Add(10 * time.Second)
	tripped := false
	for time.Now().Before(deadline) {
		status, body, retry := postInvoke(t, client, base, "poison", "x")
		if status == http.StatusServiceUnavailable && strings.Contains(body, "circuit open") {
			if retry == "" {
				t.Fatal("circuit-open 503 without Retry-After")
			}
			tripped = true
			break
		}
		if status != http.StatusInternalServerError {
			t.Fatalf("poison answered %d %q, want 500 until the breaker trips", status, body)
		}
	}
	if !tripped {
		t.Fatal("breaker never opened on an always-failing function")
	}

	// Quarantine is per-function: healthy serves, readyz stays ready but
	// reports the open breaker.
	if status, body, _ := postInvoke(t, client, base, "healthy", "hello"); status != http.StatusOK || body != "hello" {
		t.Fatalf("healthy = %d %q while poison quarantined, want 200 hello", status, body)
	}
	var ready gateway.Readyz
	if status := getJSON(t, client, base+"/readyz", &ready); status != http.StatusOK {
		t.Fatalf("readyz = %d with only a function quarantined, want 200", status)
	}
	if !ready.Ready || ready.Draining {
		t.Fatalf("readyz = %+v, want ready and not draining", ready)
	}
	if sort.SearchStrings(ready.OpenBreakers, "poison") == len(ready.OpenBreakers) {
		t.Fatalf("readyz open_breakers = %v, want to include poison", ready.OpenBreakers)
	}

	// --- Phase 2: 2x-capacity healthy load with poison still quarantined.
	// Every quarantined hit must be a FAST 503 (no pool resources), and
	// healthy p99 stays bounded. ---
	const workers = 32 // 2x MaxInflight
	iters := 50
	if testing.Short() {
		iters = 20
	}
	var (
		mu                          sync.Mutex
		latencies                   []time.Duration
		healthyOK, shed429, shed503 atomic.Uint64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn := "healthy"
			if w%4 == 3 {
				fn = "poison"
			}
			for i := 0; i < iters; i++ {
				start := time.Now()
				status, body, retry := postInvoke(t, client, base, fn, "p")
				dur := time.Since(start)
				switch status {
				case http.StatusOK:
					if fn == "poison" {
						t.Errorf("poison served 200 while broken")
						return
					}
					healthyOK.Add(1)
					if body != "p" {
						t.Errorf("healthy returned %q, want p", body)
						return
					}
					mu.Lock()
					latencies = append(latencies, dur)
					mu.Unlock()
				case http.StatusTooManyRequests:
					if retry == "" {
						t.Errorf("429 without Retry-After")
						return
					}
					shed429.Add(1)
				case http.StatusServiceUnavailable:
					if retry == "" {
						t.Errorf("503 without Retry-After: %q", body)
						return
					}
					shed503.Add(1)
				case http.StatusInternalServerError:
					// A half-open probe reaching the still-broken body.
				default:
					t.Errorf("%s: unexpected status %d: %q", fn, status, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if healthyOK.Load() == 0 {
		t.Fatal("no healthy request served at 2x capacity")
	}
	if n := internalShed.Load(); n != 0 {
		t.Errorf("nested calls shed %d times: internal must never shed", n)
	}
	mu.Lock()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	mu.Unlock()
	if p99 > 2*time.Second {
		t.Errorf("healthy p99 = %v under overload, want <= 2s", p99)
	}
	t.Logf("overload: %d healthy OK (p99 %v), %d 429s, %d 503s",
		healthyOK.Load(), p99, shed429.Load(), shed503.Load())

	// /statsz sees the breaker and the admission controller.
	var st gateway.Statsz
	getJSON(t, client, base+"/statsz", &st)
	if !st.AdmitAdaptive || st.AdmitMax != int64(cfg.MaxInflight) {
		t.Errorf("statsz admission = adaptive=%v max=%d, want adaptive max=%d",
			st.AdmitAdaptive, st.AdmitMax, cfg.MaxInflight)
	}
	var poisonRow *gateway.FuncStatsz
	for i := range st.Funcs {
		if st.Funcs[i].Name == "poison" {
			poisonRow = &st.Funcs[i]
		}
	}
	if poisonRow == nil || poisonRow.BreakerTrips == 0 || poisonRow.ShortCircuits == 0 {
		t.Errorf("statsz poison row = %+v, want trips and short circuits", poisonRow)
	}

	// --- Phase 3: the function is fixed; the half-open probe must close
	// the breaker and service resumes. ---
	broken.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		status, body, _ := postInvoke(t, client, base, "poison", "x")
		if status == http.StatusOK && body == "recovered" {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker never closed after the function recovered")
	}

	// --- Drain and verify idle. ---
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := d.Pool().Table().VerifyIdle(); err != nil {
		t.Errorf("PD table not idle after drain: %v", err)
	}
	client.CloseIdleConnections()
	waitDeadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(waitDeadline) {
		if n = runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutines leaked: %d live vs %d baseline\n%s", n, baseline, buf)
}

// TestReadyzDrainAndRetryAfter pins the drain-vs-degraded separation on
// /readyz and the Retry-After satellite: once draining, /invoke answers
// 503 with Retry-After and /readyz reports draining (not degraded).
func TestReadyzDrainAndRetryAfter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pool.Executors = 1
	cfg.Pool.Orchestrators = 1
	d := New(cfg)
	d.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := newClient()

	var ready gateway.Readyz
	if status := getJSON(t, client, base+"/readyz", &ready); status != http.StatusOK || !ready.Ready {
		t.Fatalf("readyz = %d %+v on a fresh daemon, want 200 ready", status, ready)
	}

	// Flip drain directly (Shutdown would also close the listener).
	d.Gateway().SetDraining(true)
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var drained gateway.Readyz
	if err := json.NewDecoder(resp.Body).Decode(&drained); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !drained.Draining || drained.Degraded {
		t.Fatalf("draining readyz = %d %+v, want 503 draining not degraded", resp.StatusCode, drained)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining /readyz without Retry-After")
	}
	status, _, retry := postInvoke(t, client, base, "echo", "x")
	if status != http.StatusServiceUnavailable || retry == "" {
		t.Fatalf("draining invoke = %d retry %q, want 503 with Retry-After", status, retry)
	}

	d.Gateway().SetDraining(false)
	if status, body, _ := postInvoke(t, client, base, "echo", "back"); status != http.StatusOK || body != "back" {
		t.Fatalf("post-undrain invoke = %d %q, want 200 back", status, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
