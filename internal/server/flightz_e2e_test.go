package server

// End-to-end flight-recorder test: a forced breaker trip on a live daemon
// must freeze an incident — reason, recent traces, and runtime gauges —
// retrievable over GET /flightz. This is the ISSUE acceptance criterion
// for the incident plane.

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"jord/internal/server/pool"
	"jord/internal/server/router"
)

func TestFlightzCapturesBreakerTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pool = pool.Config{
		Executors:     2,
		Orchestrators: 1,
		NumPDs:        64,
	}
	cfg.BreakerWindow = 500 * time.Millisecond
	cfg.BreakerCooldown = 5 * time.Second // keep it open for the scrape
	cfg.BreakerRatio = 0.5
	cfg.BreakerMinSamples = 5
	cfg.RequestTimeout = 5 * time.Second

	d := New(cfg)
	d.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	d.MustRegister("poison", func(ctx router.Ctx) ([]byte, error) {
		panic("poison: always broken")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := newClient()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		client.CloseIdleConnections()
	}()

	// Some healthy traffic first so the frozen incident has spans to carry.
	for i := 0; i < 8; i++ {
		if status, body, _ := postInvoke(t, client, base, "echo", "warm"); status != 200 || body != "warm" {
			t.Fatalf("echo: status=%d body=%q", status, body)
		}
	}

	// Hammer poison until the breaker opens.
	deadline := time.Now().Add(10 * time.Second)
	tripped := false
	for time.Now().Before(deadline) {
		status, body, _ := postInvoke(t, client, base, "poison", "x")
		if status == http.StatusServiceUnavailable && strings.Contains(body, "circuit open") {
			tripped = true
			break
		}
		if status != http.StatusInternalServerError {
			t.Fatalf("poison answered %d %q, want 500 until the trip", status, body)
		}
	}
	if !tripped {
		t.Fatal("breaker never opened")
	}

	// The trip must have frozen a flight-recorder incident with the
	// breaker reason, recent traces, and the runtime gauge snapshot.
	var incidents []struct {
		Seq    uint64 `json:"seq"`
		Reason string `json:"reason"`
		Wall   string `json:"wall"`
		Traces []struct {
			Func    string `json:"func"`
			Outcome string `json:"outcome"`
		} `json:"traces"`
		Stats *struct {
			FreePDs    int `json:"free_pds"`
			AdmitLimit int `json:"admit_limit"`
		} `json:"stats"`
	}
	if status := getJSON(t, client, base+"/flightz", &incidents); status != http.StatusOK {
		t.Fatalf("/flightz status = %d", status)
	}
	if len(incidents) == 0 {
		t.Fatal("breaker trip froze no incident")
	}
	inc := incidents[len(incidents)-1]
	found := false
	for _, i := range incidents {
		if i.Reason == "breaker_trip:poison" {
			inc, found = i, true
		}
	}
	if !found {
		t.Fatalf("no breaker_trip:poison incident; got %+v", incidents)
	}
	if len(inc.Traces) == 0 {
		t.Fatal("incident froze no traces")
	}
	poisonSeen := false
	for _, tr := range inc.Traces {
		if tr.Func == "poison" && tr.Outcome == "panicked" {
			poisonSeen = true
		}
	}
	if !poisonSeen {
		t.Fatalf("frozen traces lack the panicking invocations: %+v", inc.Traces)
	}
	if inc.Stats == nil {
		t.Fatal("incident has no runtime gauge snapshot")
	}
	if inc.Stats.FreePDs <= 0 || inc.Stats.AdmitLimit <= 0 {
		t.Fatalf("gauge snapshot looks unfrozen: %+v", inc.Stats)
	}
	if inc.Wall == "" {
		t.Fatal("incident has no wall-clock stamp")
	}

	// The same trip shows up in /tracez error retention too: panicked
	// spans are tail-sampled regardless of load.
	var doc struct {
		Errors []struct {
			Func    string `json:"func"`
			Outcome string `json:"outcome"`
		} `json:"errors"`
	}
	if status := getJSON(t, client, base+"/tracez?fn=poison", &doc); status != http.StatusOK {
		t.Fatalf("/tracez status = %d", status)
	}
	if len(doc.Errors) == 0 {
		t.Fatal("panicked invocations missing from /tracez errors")
	}
	for _, e := range doc.Errors {
		if e.Func != "poison" {
			t.Fatalf("?fn=poison leaked %q", e.Func)
		}
	}
}
