package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jord/internal/cluster/chaos"
	"jord/internal/server"
	"jord/internal/server/gateway"
	"jord/internal/server/router"
)

// startFaultRig boots nWorkers real jordd daemons behind a dispatcher
// whose transport injects the given fault schedule. The returned counter
// counts REAL executions of the "count" function across all workers —
// the ground truth for every at-most-once assertion.
func startFaultRig(t *testing.T, nWorkers int, mut func(*Config),
	rules ...*chaos.Rule) (front *httptest.Server, d *Dispatcher, addrs []string, calls *atomic.Int64) {

	t.Helper()
	calls = &atomic.Int64{}
	for i := 0; i < nWorkers; i++ {
		daemon, addr, serveErr := startRealWorker(t, func(dm *server.Daemon) {
			registerEcho(dm)
			dm.MustRegister("count", func(ctx router.Ctx) ([]byte, error) {
				calls.Add(1)
				return ctx.Payload(), nil
			})
		})
		t.Cleanup(func() { shutdownWorker(t, daemon, serveErr) })
		addrs = append(addrs, addr)
	}
	cfg := Config{Workers: addrs, HealthInterval: -1, RequestTimeout: 10 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	if len(rules) > 0 {
		cfg.Client = &http.Client{Transport: chaos.New(nil, 42, rules...)}
	}
	d = New(cfg)
	front = httptest.NewServer(d.Handler())
	t.Cleanup(front.Close)
	return front, d, addrs, calls
}

func invokeCount(t *testing.T, front string) (status int, dedup bool, body string) {
	t.Helper()
	resp, err := http.Post(front+"/invoke/count", "text/plain", strings.NewReader("payload-1"))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get(gateway.DedupHeader) == "1", string(b)
}

// TestFaultRefusedReplaced: a dial-time refusal never reached the worker,
// so the retry is unconditionally safe — re-placed on the other worker,
// executed exactly once.
func TestFaultRefusedReplaced(t *testing.T) {
	front, d, _, calls := startFaultRig(t, 2, nil, &chaos.Rule{Fault: chaos.FaultRefused, Count: 1})
	status, dedup, body := invokeCount(t, front.URL)
	if status != 200 || dedup || body != "payload-1" {
		t.Fatalf("status=%d dedup=%v body=%q", status, dedup, body)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1", n)
	}
	if d.errRetries.Load() != 1 || d.unsafeRetries.Load() != 0 {
		t.Fatalf("errRetries=%d unsafeRetries=%d want 1/0", d.errRetries.Load(), d.unsafeRetries.Load())
	}
}

// TestFaultResetBeforeWriteReplaced: a reset while writing the request is
// still the safe class — the worker gateway's ReadFull turns the short
// body into a 400 without invoking, so re-placement cannot double-run.
func TestFaultResetBeforeWriteReplaced(t *testing.T) {
	front, d, _, calls := startFaultRig(t, 2, nil, &chaos.Rule{Fault: chaos.FaultResetBeforeWrite, Count: 1})
	status, dedup, body := invokeCount(t, front.URL)
	if status != 200 || dedup || body != "payload-1" {
		t.Fatalf("status=%d dedup=%v body=%q", status, dedup, body)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1", n)
	}
	if d.errRetries.Load() != 1 {
		t.Fatalf("errRetries=%d want 1", d.errRetries.Load())
	}
}

// TestFaultResetAfterWriteReplaysWithKey is the heart of the idempotent
// retry path: the worker EXECUTED, the connection died on the read side,
// and the same-worker replay serves the cached response — exactly one
// execution, byte-identical answer, marked as a replay.
func TestFaultResetAfterWriteReplaysWithKey(t *testing.T) {
	front, d, _, calls := startFaultRig(t, 1, nil, &chaos.Rule{Fault: chaos.FaultResetAfterWrite, Count: 1})
	status, dedup, body := invokeCount(t, front.URL)
	if status != 200 || body != "payload-1" {
		t.Fatalf("status=%d body=%q", status, body)
	}
	if !dedup {
		t.Fatal("retry should be served from the worker's idempotency cache")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executed %d times, want exactly 1", n)
	}
	if d.unsafeRetries.Load() != 1 || d.dedupHits.Load() != 1 || d.unsafe502.Load() != 0 {
		t.Fatalf("unsafeRetries=%d dedupHits=%d unsafe502=%d want 1/1/0",
			d.unsafeRetries.Load(), d.dedupHits.Load(), d.unsafe502.Load())
	}

	// The counters surface in /statsz for operators.
	resp, err := http.Get(front.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Statsz
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.UnsafeRetries != 1 || doc.DedupHits != 1 {
		t.Fatalf("statsz unsafe_retries=%d dedup_hits=%d want 1/1", doc.UnsafeRetries, doc.DedupHits)
	}
}

// TestFaultResetAfterWriteKeyless502: without idempotency keys the same
// failure is NOT retried — the worker may have executed, so the client
// gets 502 and the function must have run at most once.
func TestFaultResetAfterWriteKeyless502(t *testing.T) {
	front, d, _, calls := startFaultRig(t, 2,
		func(c *Config) { c.DisableIdempotency = true },
		&chaos.Rule{Fault: chaos.FaultResetAfterWrite, Count: 1})
	status, _, body := invokeCount(t, front.URL)
	if status != http.StatusBadGateway {
		t.Fatalf("status=%d body=%q, want 502", status, body)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1 (never re-run without a key)", n)
	}
	if d.unsafe502.Load() != 1 || d.unsafeRetries.Load() != 0 || d.errRetries.Load() != 0 {
		t.Fatalf("unsafe502=%d unsafeRetries=%d errRetries=%d want 1/0/0",
			d.unsafe502.Load(), d.unsafeRetries.Load(), d.errRetries.Load())
	}
}

// TestFaultResetMidBodyReplays: the response head arrived but the body
// broke off. Nothing has reached the client, so the keyed replay against
// the same worker recovers the full response without re-executing.
func TestFaultResetMidBodyReplays(t *testing.T) {
	front, d, _, calls := startFaultRig(t, 1, nil,
		&chaos.Rule{Fault: chaos.FaultResetMidBody, MidBody: 3, Count: 1})
	status, dedup, body := invokeCount(t, front.URL)
	if status != 200 || body != "payload-1" {
		t.Fatalf("status=%d body=%q", status, body)
	}
	if !dedup {
		t.Fatal("mid-body retry should replay from the idempotency cache")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executed %d times, want exactly 1", n)
	}
	if d.unsafeRetries.Load() != 1 {
		t.Fatalf("unsafeRetries=%d want 1", d.unsafeRetries.Load())
	}
}

// TestFaultStallHedgeRescue: the first placement black-holes; the hedge
// fires after the (cold) hedge delay, lands on the healthy worker, and
// the client is rescued long before the request timeout.
func TestFaultStallHedgeRescue(t *testing.T) {
	front, d, addrs, calls := startFaultRig(t, 2,
		func(c *Config) {
			c.Hedge = true
			c.HedgeDelay = 30 * time.Millisecond
		})
	// Swap in the chaos transport after rig construction so the rule can
	// target the first worker's address (JBSQ ties break to it).
	d.client = &http.Client{Transport: chaos.New(nil, 7,
		&chaos.Rule{Worker: addrs[0], Fault: chaos.FaultStall, Count: 1})}

	start := time.Now()
	status, _, body := invokeCount(t, front.URL)
	elapsed := time.Since(start)
	if status != 200 || body != "payload-1" {
		t.Fatalf("status=%d body=%q", status, body)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("hedge did not rescue: took %v", elapsed)
	}
	if d.hedgesIssued.Load() != 1 || d.hedgesWon.Load() != 1 {
		t.Fatalf("hedgesIssued=%d hedgesWon=%d want 1/1", d.hedgesIssued.Load(), d.hedgesWon.Load())
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executed %d times, want 1 (stalled request never arrived)", n)
	}
}

// TestDrainMarked503Exhaustion: when EVERY worker answers a drain-marked
// 503, the re-placement loop runs out of peers and the final 503 falls
// through to the client, drain marker intact.
func TestDrainMarked503Exhaustion(t *testing.T) {
	drainHandler := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(gateway.DrainingHeader, "1")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "worker draining", http.StatusServiceUnavailable)
	}
	addrA := stubWorker(t, drainHandler)
	addrB := stubWorker(t, drainHandler)
	d, front := newTestDispatcher(t, Config{Workers: []string{addrA, addrB}, Bound: 4})

	resp := postInvoke(t, front.URL, "echo", "x")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d want 503", resp.StatusCode)
	}
	if resp.Header.Get(gateway.DrainingHeader) == "" {
		t.Fatal("final 503 should keep the drain marker")
	}
	if d.drainRetries.Load() != 1 {
		t.Fatalf("drainRetries=%d want 1 (A re-placed once, B exhausted the set)", d.drainRetries.Load())
	}
	if d.passthrough.Load() != 1 {
		t.Fatalf("passthrough=%d want 1", d.passthrough.Load())
	}
}

// TestRemoveWorkerForceWithOutstanding: force-removal with requests still
// outstanding takes the worker out of placement immediately, while the
// in-flight request it was serving still completes.
func TestRemoveWorkerForceWithOutstanding(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	addr := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		io.WriteString(w, "late but fine")
	})
	d, front := newTestDispatcher(t, Config{Workers: []string{addr}, Bound: 4})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postInvoke(t, front.URL, "echo", "x")
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 || string(body) != "late but fine" {
			t.Errorf("in-flight request: status=%d body=%q", resp.StatusCode, body)
		}
	}()
	<-entered

	if err := d.RemoveWorker(addr, false); err == nil {
		t.Fatal("unforced removal should refuse while outstanding > 0")
	}
	if err := d.RemoveWorker(addr, true); err != nil {
		t.Fatalf("forced removal: %v", err)
	}
	if len(d.Workers()) != 0 {
		t.Fatalf("worker list %v, want empty", d.Workers())
	}

	// No workers left: new requests get the dispatcher's own 503.
	resp := postInvoke(t, front.URL, "echo", "y")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-removal status=%d want 503", resp.StatusCode)
	}

	close(release)
	wg.Wait()
}
