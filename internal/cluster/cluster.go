// Package cluster is the front-end dispatcher tier: one process that
// spreads POST /invoke/{fn} across N jordd workers over real sockets,
// using the same placement policy the paper's orchestrators use one level
// down — JBSQ(k), join-the-bounded-shortest-queue. Each worker gets a
// bounded number of outstanding dispatcher requests (k); a new request
// joins the ready worker with the fewest outstanding, and when every
// worker is at its bound the dispatcher answers 429 with Retry-After
// instead of buffering unboundedly. This mirrors tinyFaaS's rproxy /
// faasd's gateway shape — a thin, health-aware reverse-proxy in front of
// single-node FaaS daemons — with Jord's queue-bounding discipline.
//
// Health awareness rides the workers' own overload surface: the
// dispatcher polls each worker's /readyz (which jordd already exposes,
// distinguishing draining / degraded / breaker state) and ejects workers
// that stop being ready, re-admitting them when they recover. Transport
// failures eject passively and immediately. A 503 carrying the gateway's
// X-Jord-Draining marker means THAT worker is going away — the request is
// re-placed on another worker instead of surfacing the 503 — while plain
// 429/503s (saturation, degradation) are forwarded verbatim, Retry-After
// included: overload policy belongs to the workers, not the proxy.
//
// Workers can be drained and replaced at runtime without dropping
// in-flight requests: drain stops new placement while outstanding
// requests finish, remove refuses until the worker is idle, and add
// admits a fresh worker into the JBSQ scan.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jord/internal/server/gateway"
)

// DefaultBound is the per-worker outstanding bound used until the
// worker's /readyz reveals its real capacity (see Config.Bound).
const DefaultBound = 64

// Config assembles one dispatcher.
type Config struct {
	// Workers is the initial worker set, as host:port addresses.
	Workers []string

	// Bound is JBSQ's k: the max outstanding dispatcher requests per
	// worker. 0 auto-sizes each worker from its /readyz document to
	// 4 x executors x jbsq_bound — the same proportion as the worker's
	// own default admission cap, so the dispatcher saturates exactly when
	// the worker would start refusing (DefaultBound until the first
	// successful poll).
	Bound int

	// HealthInterval is the /readyz polling period (default 250ms;
	// < 0 disables active polling — passive ejection still applies, but
	// nothing re-admits an ejected worker, so only tests want this).
	HealthInterval time.Duration

	// RequestTimeout bounds one client request end to end, including
	// re-placement attempts (default 60s; < 0 = none).
	RequestTimeout time.Duration

	// MaxBodyBytes bounds /invoke payloads (default 1 MiB). Bodies are
	// buffered — that is what makes re-placement after a worker failure
	// possible — so the bound is also the dispatcher's memory guard.
	MaxBodyBytes int64

	// Client overrides the forwarding HTTP client (tests). The default
	// keeps a large idle pool per worker so steady-state forwarding rides
	// keep-alive connections.
	Client *http.Client
}

func (c *Config) normalize() {
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4096,
				MaxIdleConnsPerHost: 1024,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
}

// worker is one jordd behind the dispatcher.
type worker struct {
	addr string
	base string // "http://" + addr

	outstanding atomic.Int64  // dispatcher requests currently placed here
	dispatched  atomic.Uint64 // lifetime placements
	bound       atomic.Int64  // current k (0 = DefaultBound, pre-poll)

	// ejected is the health verdict: true while the worker must not
	// receive new work (failed /readyz, transport error, drain marker).
	// The health loop owns re-admission.
	ejected atomic.Bool
	// draining is the ADMIN verdict (drain/replace workflow): no new
	// work, never auto-re-admitted. Orthogonal to ejected.
	draining atomic.Bool

	mu       sync.Mutex
	lastErr  string
	lastPoll time.Time
	ready    readyzDoc // last successfully decoded /readyz
}

// readyzDoc is the subset of the worker gateway's /readyz document the
// dispatcher consumes. Kept local so the dispatcher binary does not
// depend on the worker's internals beyond the wire format.
type readyzDoc struct {
	Ready        bool     `json:"ready"`
	Draining     bool     `json:"draining"`
	Degraded     bool     `json:"degraded"`
	OpenBreakers []string `json:"open_breakers"`
	Executors    int      `json:"executors"`
	JBSQBound    int      `json:"jbsq_bound"`
}

func (w *worker) boundNow() int64 {
	if b := w.bound.Load(); b > 0 {
		return b
	}
	return DefaultBound
}

func (w *worker) setErr(err error) {
	w.mu.Lock()
	if err != nil {
		w.lastErr = err.Error()
	} else {
		w.lastErr = ""
	}
	w.mu.Unlock()
}

// admittable reports whether JBSQ may place new work here at all
// (independent of the outstanding bound).
func (w *worker) admittable() bool {
	return !w.ejected.Load() && !w.draining.Load()
}

// Dispatcher spreads invocations across the worker set.
type Dispatcher struct {
	cfg    Config
	client *http.Client

	mu      sync.RWMutex
	workers []*worker

	draining atomic.Bool
	started  time.Time

	// Stats. dispatched counts successful placements (a response was
	// relayed); rejectedBusy is the dispatcher's own 429 (every ready
	// worker at its bound); rejectedDown its own 503 (no ready worker);
	// errRetries / drainRetries are re-placements after a transport error
	// / a draining worker's marked 503; lost counts requests that ran out
	// of workers after at least one attempt (relayed as 503).
	dispatched   atomic.Uint64
	rejectedBusy atomic.Uint64
	rejectedDown atomic.Uint64
	errRetries   atomic.Uint64
	drainRetries atomic.Uint64
	lost         atomic.Uint64
	passthrough  atomic.Uint64 // worker 429/503s forwarded verbatim

	healthStop chan struct{}
	healthDone chan struct{}
}

// New builds a dispatcher over the configured worker set. Call Start to
// begin health polling, and serve Handler() on a listener.
func New(cfg Config) *Dispatcher {
	cfg.normalize()
	d := &Dispatcher{cfg: cfg, client: cfg.Client, started: time.Now()}
	for _, addr := range cfg.Workers {
		d.workers = append(d.workers, d.newWorker(addr))
	}
	return d
}

func (d *Dispatcher) newWorker(addr string) *worker {
	w := &worker{addr: addr, base: "http://" + addr}
	if d.cfg.Bound > 0 {
		w.bound.Store(int64(d.cfg.Bound))
	}
	return w
}

// Start launches the health loop (no-op when HealthInterval < 0).
func (d *Dispatcher) Start() {
	if d.cfg.HealthInterval < 0 || d.healthStop != nil {
		return
	}
	d.healthStop = make(chan struct{})
	d.healthDone = make(chan struct{})
	go d.healthLoop()
}

// Stop ends the health loop. In-flight forwards are unaffected; callers
// stop traffic via their HTTP server's Shutdown.
func (d *Dispatcher) Stop() {
	if d.healthStop == nil {
		return
	}
	close(d.healthStop)
	<-d.healthDone
	d.healthStop = nil
	d.healthDone = nil
}

// SetDraining flips the dispatcher-level drain signal: /invoke refuses
// new work with a marked 503 and /healthz goes 503, while in-flight
// forwards finish under the HTTP server's own Shutdown.
func (d *Dispatcher) SetDraining(v bool) { d.draining.Store(v) }

// snapshot returns the current worker slice (copy-on-write: safe to
// iterate without the lock).
func (d *Dispatcher) snapshot() []*worker {
	d.mu.RLock()
	ws := d.workers
	d.mu.RUnlock()
	return ws
}

// Handler returns the dispatcher's HTTP surface.
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke/{fn}", d.handleInvoke)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /statsz", d.handleStatsz)
	mux.HandleFunc("GET /varz", d.handleVarz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /workers", d.handleWorkers)
	mux.HandleFunc("POST /workers/add", d.handleWorkerAdd)
	mux.HandleFunc("POST /workers/drain", d.handleWorkerDrain)
	mux.HandleFunc("POST /workers/remove", d.handleWorkerRemove)
	return mux
}

// retryAfter mirrors the worker gateway's hint: whole seconds, minimum 1.
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

// bodyPool recycles request-body buffers; a buffered body is what makes
// re-placement after a worker failure possible.
var bodyPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

func getBody(n int64) *[]byte {
	bp := bodyPool.Get().(*[]byte)
	if int64(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	return bp
}

// pick runs the JBSQ(k) scan: among admittable workers not yet tried for
// this request, reserve a slot on the one with the fewest outstanding
// requests (ties to the earlier worker — stable, and with equal queues
// placement quality is identical). Returns the reserved worker (caller
// MUST release via outstanding.Add(-1)) or nil with anyReady reporting
// whether ANY admittable worker exists (429 vs 503 at the caller).
func (d *Dispatcher) pick(tried map[*worker]bool) (wk *worker, anyReady bool) {
	ws := d.snapshot()
	// The scan-then-reserve pair races with concurrent picks; a failed
	// reservation rescans. Bounded so pathological contention degrades to
	// "busy" instead of spinning.
	for rescan := 0; rescan < 4; rescan++ {
		var best *worker
		var bestN int64
		anyReady = false
		for _, w := range ws {
			if !w.admittable() {
				continue
			}
			anyReady = true
			if tried[w] {
				continue
			}
			n := w.outstanding.Load()
			if n >= w.boundNow() {
				continue
			}
			if best == nil || n < bestN {
				best, bestN = w, n
			}
		}
		if best == nil {
			return nil, anyReady
		}
		if best.outstanding.Add(1) <= best.boundNow() {
			return best, true
		}
		best.outstanding.Add(-1) // lost the reservation race
	}
	return nil, anyReady
}

func (d *Dispatcher) handleInvoke(w http.ResponseWriter, r *http.Request) {
	fn := r.PathValue("fn")
	if d.draining.Load() {
		retryAfter(w, 5*time.Second)
		w.Header().Set(gateway.DrainingHeader, "1")
		http.Error(w, "dispatcher draining", http.StatusServiceUnavailable)
		return
	}

	// Buffer the body up front (bounded): a request is only "in flight"
	// against a worker once delivery starts, so a worker that dies takes
	// no request bytes with it — the buffered body is re-sent elsewhere.
	if r.ContentLength > d.cfg.MaxBodyBytes {
		http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
		return
	}
	var (
		payload []byte
		pooled  *[]byte
	)
	if cl := r.ContentLength; cl >= 0 {
		pooled = getBody(cl)
		payload = (*pooled)[:cl]
		if _, err := io.ReadFull(r.Body, payload); err != nil {
			bodyPool.Put(pooled)
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		var err error
		payload, err = io.ReadAll(io.LimitReader(r.Body, d.cfg.MaxBodyBytes+1))
		if err != nil {
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(payload)) > d.cfg.MaxBodyBytes {
			http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
			return
		}
	}
	if pooled != nil {
		defer bodyPool.Put(pooled)
	}

	ctx := r.Context()
	if d.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.RequestTimeout)
		defer cancel()
	}

	contentType := r.Header.Get("Content-Type")
	tried := make(map[*worker]bool)
	attempts := 0
	for {
		wk, anyReady := d.pick(tried)
		if wk == nil {
			switch {
			case attempts > 0:
				// At least one worker was tried and failed mid-stream;
				// the remaining set is exhausted. 503: the CLUSTER could
				// not serve this, distinct from per-request saturation.
				d.lost.Add(1)
				retryAfter(w, time.Second)
				http.Error(w, "no worker could serve the request", http.StatusServiceUnavailable)
			case anyReady:
				// Ready workers exist but all sit at their JBSQ bound:
				// the cluster is saturated, tell the client to back off.
				d.rejectedBusy.Add(1)
				retryAfter(w, time.Second)
				http.Error(w, "cluster saturated: all workers at bound", http.StatusTooManyRequests)
			default:
				d.rejectedDown.Add(1)
				retryAfter(w, time.Second)
				http.Error(w, "no ready workers", http.StatusServiceUnavailable)
			}
			return
		}
		attempts++
		done, relayErr := d.attempt(ctx, w, wk, fn, contentType, payload, tried)
		wk.outstanding.Add(-1)
		if done {
			if relayErr == nil {
				d.dispatched.Add(1)
			}
			return
		}
		if ctx.Err() != nil {
			// The request deadline expired while re-placing.
			http.Error(w, "deadline exceeded while dispatching", http.StatusGatewayTimeout)
			return
		}
	}
}

// attempt forwards the request to one worker. It returns done=false when
// the request should be re-placed on another worker (transport failure
// before/while receiving the response head, or a drain-marked 503).
func (d *Dispatcher) attempt(ctx context.Context, w http.ResponseWriter, wk *worker,
	fn, contentType string, payload []byte, tried map[*worker]bool) (done bool, relayErr error) {

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.base+"/invoke/"+fn, bytes.NewReader(payload))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return true, err
	}
	req.ContentLength = int64(len(payload))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := d.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The client's deadline, not the worker's health: answer 504
			// without ejecting anyone.
			http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
			return true, err
		}
		// Transport failure: eject passively (the health loop re-admits
		// once /readyz answers again) and re-place. Note the at-least-once
		// caveat: a connection that broke AFTER delivery re-executes the
		// function on another worker, the same trade every FaaS
		// reverse-proxy tier makes on worker death.
		wk.ejected.Store(true)
		wk.setErr(err)
		tried[wk] = true
		d.errRetries.Add(1)
		return false, nil
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get(gateway.DrainingHeader) != "" {
		// This worker is going away; that is a placement problem, not an
		// answer. Eject it (its /readyz will hold it out until it either
		// disappears or comes back ready) and try the rest of the fleet.
		// Only when NO other worker can take the request does the drain
		// 503 fall through to the client via the exhaustion path above.
		ws := d.snapshot()
		untried := 0
		for _, other := range ws {
			if other != wk && other.admittable() && !tried[other] {
				untried++
			}
		}
		if untried > 0 {
			io.Copy(io.Discard, resp.Body)
			wk.ejected.Store(true)
			wk.setErr(errors.New("draining (marked 503)"))
			tried[wk] = true
			d.drainRetries.Add(1)
			return false, nil
		}
	}

	wk.dispatched.Add(1)
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		d.passthrough.Add(1)
	}
	return true, d.relay(w, resp)
}

// relay copies one worker response to the client verbatim: status,
// Retry-After and drain markers included — the dispatcher adds no
// interpretation to worker verdicts it did not re-place.
func (d *Dispatcher) relay(w http.ResponseWriter, resp *http.Response) error {
	h := w.Header()
	for _, k := range []string{"Content-Type", "Retry-After", gateway.DrainingHeader} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	if resp.ContentLength >= 0 {
		h.Set("Content-Length", fmt.Sprintf("%d", resp.ContentLength))
	}
	w.WriteHeader(resp.StatusCode)
	_, err := io.Copy(w, resp.Body)
	return err
}

// AddWorker admits a new worker into the JBSQ scan. It starts admittable
// and is probed at the next health tick.
func (d *Dispatcher) AddWorker(addr string) error {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return errors.New("cluster: empty worker address")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, w := range d.workers {
		if w.addr == addr {
			return fmt.Errorf("cluster: worker %s already present", addr)
		}
	}
	ws := make([]*worker, len(d.workers), len(d.workers)+1)
	copy(ws, d.workers)
	d.workers = append(ws, d.newWorker(addr))
	return nil
}

// DrainWorker stops new placement on a worker; outstanding requests
// finish normally. Returns the outstanding count at the time of the call
// so operators can poll for idleness before RemoveWorker.
func (d *Dispatcher) DrainWorker(addr string) (outstanding int64, err error) {
	w := d.find(addr)
	if w == nil {
		return 0, fmt.Errorf("cluster: unknown worker %s", addr)
	}
	w.draining.Store(true)
	return w.outstanding.Load(), nil
}

// ResumeWorker clears a worker's admin drain.
func (d *Dispatcher) ResumeWorker(addr string) error {
	w := d.find(addr)
	if w == nil {
		return fmt.Errorf("cluster: unknown worker %s", addr)
	}
	w.draining.Store(false)
	return nil
}

// RemoveWorker takes a worker out of the set. Unless force is set it
// refuses while requests are still outstanding — drain first, poll, then
// remove, and no in-flight request is ever dropped.
func (d *Dispatcher) RemoveWorker(addr string, force bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, w := range d.workers {
		if w.addr != addr {
			continue
		}
		if n := w.outstanding.Load(); n > 0 && !force {
			return fmt.Errorf("cluster: worker %s has %d outstanding requests (drain first, or force)", addr, n)
		}
		ws := make([]*worker, 0, len(d.workers)-1)
		ws = append(ws, d.workers[:i]...)
		ws = append(ws, d.workers[i+1:]...)
		d.workers = ws
		return nil
	}
	return fmt.Errorf("cluster: unknown worker %s", addr)
}

func (d *Dispatcher) find(addr string) *worker {
	for _, w := range d.snapshot() {
		if w.addr == addr {
			return w
		}
	}
	return nil
}

// Workers lists addresses in scan order (tests, admin).
func (d *Dispatcher) Workers() []string {
	ws := d.snapshot()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.addr
	}
	sort.Strings(out)
	return out
}
