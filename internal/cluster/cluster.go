// Package cluster is the front-end dispatcher tier: one process that
// spreads POST /invoke/{fn} across N jordd workers over real sockets,
// using the same placement policy the paper's orchestrators use one level
// down — JBSQ(k), join-the-bounded-shortest-queue. Each worker gets a
// bounded number of outstanding dispatcher requests (k); a new request
// joins the ready worker with the fewest outstanding, and when every
// worker is at its bound the dispatcher answers 429 with Retry-After
// instead of buffering unboundedly. This mirrors tinyFaaS's rproxy /
// faasd's gateway shape — a thin, health-aware reverse-proxy in front of
// single-node FaaS daemons — with Jord's queue-bounding discipline.
//
// Health awareness rides the workers' own overload surface: the
// dispatcher polls each worker's /readyz (which jordd already exposes,
// distinguishing draining / degraded / breaker state) and ejects workers
// that stop being ready, re-admitting them when they recover. Transport
// failures eject passively and immediately. A 503 carrying the gateway's
// X-Jord-Draining marker means THAT worker is going away — the request is
// re-placed on another worker instead of surfacing the 503 — while plain
// 429/503s (saturation, degradation) are forwarded verbatim, Retry-After
// included: overload policy belongs to the workers, not the proxy.
//
// Workers can be drained and replaced at runtime without dropping
// in-flight requests: drain stops new placement while outstanding
// requests finish, remove refuses until the worker is idle, and add
// admits a fresh worker into the JBSQ scan.
package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBound is the per-worker outstanding bound used until the
// worker's /readyz reveals its real capacity (see Config.Bound).
const DefaultBound = 64

// Config assembles one dispatcher.
type Config struct {
	// Workers is the initial worker set, as host:port addresses.
	Workers []string

	// Bound is JBSQ's k: the max outstanding dispatcher requests per
	// worker. 0 auto-sizes each worker from its /readyz document to
	// 4 x executors x jbsq_bound — the same proportion as the worker's
	// own default admission cap, so the dispatcher saturates exactly when
	// the worker would start refusing (DefaultBound until the first
	// successful poll).
	Bound int

	// HealthInterval is the /readyz polling period (default 250ms;
	// < 0 disables active polling — passive ejection still applies, but
	// nothing re-admits an ejected worker, so only tests want this).
	HealthInterval time.Duration

	// RequestTimeout bounds one client request end to end, including
	// re-placement attempts (default 60s; < 0 = none).
	RequestTimeout time.Duration

	// MaxBodyBytes bounds /invoke payloads (default 1 MiB). Bodies are
	// buffered — that is what makes re-placement after a worker failure
	// possible — so the bound is also the dispatcher's memory guard.
	MaxBodyBytes int64

	// Client overrides the forwarding HTTP client (tests). The default
	// keeps a large idle pool per worker so steady-state forwarding rides
	// keep-alive connections.
	Client *http.Client

	// DisableIdempotency stops the dispatcher from stamping a generated
	// X-Jord-Idempotency-Key on keyless invocations. With keys on (the
	// default), a post-delivery connection break replays against the same
	// worker's dedup cache instead of surfacing a 502 or double-executing;
	// without them such failures are answered 502 and never retried.
	DisableIdempotency bool

	// Hedge enables tail-latency hedging: when the first placement has
	// not answered within the function's adaptive hedge delay, a
	// duplicate is placed on a second worker and the first response wins.
	// Requires idempotency keys (hedges are never issued without one).
	Hedge bool

	// HedgeDelay overrides the cold-start hedge delay used until enough
	// per-function latency samples exist (default 50ms). Once warmed, the
	// delay is the function's clamped p95.
	HedgeDelay time.Duration
}

func (c *Config) normalize() {
	if c.HealthInterval == 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4096,
				MaxIdleConnsPerHost: 1024,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
}

// worker is one jordd behind the dispatcher.
type worker struct {
	addr string
	base string // "http://" + addr

	outstanding atomic.Int64  // dispatcher requests currently placed here
	dispatched  atomic.Uint64 // lifetime placements
	bound       atomic.Int64  // current k (0 = DefaultBound, pre-poll)

	// ejected is the health verdict: true while the worker must not
	// receive new work (failed /readyz, transport error, drain marker).
	// The health loop owns re-admission.
	ejected atomic.Bool
	// ejectEpoch counts passive ejections. A /readyz poll captures the
	// epoch before its round-trip and discards a READY verdict when the
	// epoch moved underneath it — otherwise a poll that raced a passive
	// ejection would re-admit a worker that just dropped a connection.
	ejectEpoch atomic.Uint64
	// draining is the ADMIN verdict (drain/replace workflow): no new
	// work, never auto-re-admitted. Orthogonal to ejected.
	draining atomic.Bool

	mu       sync.Mutex
	lastErr  string
	lastPoll time.Time
	ready    readyzDoc // last successfully decoded /readyz
}

// readyzDoc is the subset of the worker gateway's /readyz document the
// dispatcher consumes. Kept local so the dispatcher binary does not
// depend on the worker's internals beyond the wire format.
type readyzDoc struct {
	Ready        bool     `json:"ready"`
	Draining     bool     `json:"draining"`
	Degraded     bool     `json:"degraded"`
	OpenBreakers []string `json:"open_breakers"`
	Executors    int      `json:"executors"`
	JBSQBound    int      `json:"jbsq_bound"`
}

func (w *worker) boundNow() int64 {
	if b := w.bound.Load(); b > 0 {
		return b
	}
	return DefaultBound
}

// eject takes the worker out of placement on a passive signal (transport
// failure, drain-marked 503, relay break), bumping the epoch so an
// in-flight health poll cannot immediately re-admit it on stale evidence.
func (w *worker) eject(err error) {
	w.ejectEpoch.Add(1)
	w.ejected.Store(true)
	w.setErr(err)
}

func (w *worker) setErr(err error) {
	w.mu.Lock()
	if err != nil {
		w.lastErr = err.Error()
	} else {
		w.lastErr = ""
	}
	w.mu.Unlock()
}

// admittable reports whether JBSQ may place new work here at all
// (independent of the outstanding bound).
func (w *worker) admittable() bool {
	return !w.ejected.Load() && !w.draining.Load()
}

// Dispatcher spreads invocations across the worker set.
type Dispatcher struct {
	cfg    Config
	client *http.Client

	mu      sync.RWMutex
	workers []*worker

	draining atomic.Bool
	started  time.Time

	// Stats. dispatched counts successful placements (a response was
	// relayed); rejectedBusy is the dispatcher's own 429 (every ready
	// worker at its bound); rejectedDown its own 503 (no ready worker);
	// errRetries / drainRetries are re-placements after a transport error
	// / a draining worker's marked 503; lost counts requests that ran out
	// of workers after at least one attempt (relayed as 503).
	dispatched   atomic.Uint64
	rejectedBusy atomic.Uint64
	rejectedDown atomic.Uint64
	errRetries   atomic.Uint64
	drainRetries atomic.Uint64
	lost         atomic.Uint64
	passthrough  atomic.Uint64 // worker 429/503s forwarded verbatim

	// Fault-tolerance counters. unsafeRetries are same-worker idempotent
	// replays after a post-delivery break; unsafe502 the keyless ones
	// surfaced as 502 instead. dedupHits counts responses the winning
	// worker replayed from its idempotency cache. relay*Errs split
	// mid-relay failures by which side broke.
	unsafeRetries   atomic.Uint64
	unsafe502       atomic.Uint64
	hedgesIssued    atomic.Uint64
	hedgesWon       atomic.Uint64
	hedgesWasted    atomic.Uint64
	dedupHits       atomic.Uint64
	relayWorkerErrs atomic.Uint64
	relayClientErrs atomic.Uint64

	hedge *hedgeTracker

	healthStop chan struct{}
	healthDone chan struct{}
}

// New builds a dispatcher over the configured worker set. Call Start to
// begin health polling, and serve Handler() on a listener.
func New(cfg Config) *Dispatcher {
	cfg.normalize()
	d := &Dispatcher{cfg: cfg, client: cfg.Client, started: time.Now(), hedge: newHedgeTracker()}
	for _, addr := range cfg.Workers {
		d.workers = append(d.workers, d.newWorker(addr))
	}
	return d
}

func (d *Dispatcher) newWorker(addr string) *worker {
	w := &worker{addr: addr, base: "http://" + addr}
	if d.cfg.Bound > 0 {
		w.bound.Store(int64(d.cfg.Bound))
	}
	return w
}

// Start launches the health loop (no-op when HealthInterval < 0).
func (d *Dispatcher) Start() {
	if d.cfg.HealthInterval < 0 || d.healthStop != nil {
		return
	}
	d.healthStop = make(chan struct{})
	d.healthDone = make(chan struct{})
	go d.healthLoop()
}

// Stop ends the health loop. In-flight forwards are unaffected; callers
// stop traffic via their HTTP server's Shutdown.
func (d *Dispatcher) Stop() {
	if d.healthStop == nil {
		return
	}
	close(d.healthStop)
	<-d.healthDone
	d.healthStop = nil
	d.healthDone = nil
}

// SetDraining flips the dispatcher-level drain signal: /invoke refuses
// new work with a marked 503 and /healthz goes 503, while in-flight
// forwards finish under the HTTP server's own Shutdown.
func (d *Dispatcher) SetDraining(v bool) { d.draining.Store(v) }

// snapshot returns the current worker slice (copy-on-write: safe to
// iterate without the lock).
func (d *Dispatcher) snapshot() []*worker {
	d.mu.RLock()
	ws := d.workers
	d.mu.RUnlock()
	return ws
}

// Handler returns the dispatcher's HTTP surface.
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke/{fn}", d.handleInvoke)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /statsz", d.handleStatsz)
	mux.HandleFunc("GET /varz", d.handleVarz)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /workers", d.handleWorkers)
	mux.HandleFunc("POST /workers/add", d.handleWorkerAdd)
	mux.HandleFunc("POST /workers/drain", d.handleWorkerDrain)
	mux.HandleFunc("POST /workers/remove", d.handleWorkerRemove)
	return mux
}

// retryAfter mirrors the worker gateway's hint: whole seconds, minimum 1.
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

// bodyPool recycles request-body buffers; a buffered body is what makes
// re-placement after a worker failure possible.
var bodyPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

func getBody(n int64) *[]byte {
	bp := bodyPool.Get().(*[]byte)
	if int64(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	return bp
}

// pick runs the JBSQ(k) scan: among admittable workers not yet tried for
// this request, reserve a slot on the one with the fewest outstanding
// requests (ties to the earlier worker — stable, and with equal queues
// placement quality is identical). Returns the reserved worker (caller
// MUST release via outstanding.Add(-1)) or nil with anyReady reporting
// whether ANY admittable worker exists (429 vs 503 at the caller).
func (d *Dispatcher) pick(tried map[*worker]bool) (wk *worker, anyReady bool) {
	ws := d.snapshot()
	// The scan-then-reserve pair races with concurrent picks; a failed
	// reservation rescans. Bounded so pathological contention degrades to
	// "busy" instead of spinning.
	for rescan := 0; rescan < 4; rescan++ {
		var best *worker
		var bestN int64
		anyReady = false
		for _, w := range ws {
			if !w.admittable() {
				continue
			}
			anyReady = true
			if tried[w] {
				continue
			}
			n := w.outstanding.Load()
			if n >= w.boundNow() {
				continue
			}
			if best == nil || n < bestN {
				best, bestN = w, n
			}
		}
		if best == nil {
			return nil, anyReady
		}
		if best.outstanding.Add(1) <= best.boundNow() {
			return best, true
		}
		best.outstanding.Add(-1) // lost the reservation race
	}
	return nil, anyReady
}

// AddWorker admits a new worker into the JBSQ scan. It starts admittable
// and is probed at the next health tick.
func (d *Dispatcher) AddWorker(addr string) error {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return errors.New("cluster: empty worker address")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, w := range d.workers {
		if w.addr == addr {
			return fmt.Errorf("cluster: worker %s already present", addr)
		}
	}
	ws := make([]*worker, len(d.workers), len(d.workers)+1)
	copy(ws, d.workers)
	d.workers = append(ws, d.newWorker(addr))
	return nil
}

// DrainWorker stops new placement on a worker; outstanding requests
// finish normally. Returns the outstanding count at the time of the call
// so operators can poll for idleness before RemoveWorker.
func (d *Dispatcher) DrainWorker(addr string) (outstanding int64, err error) {
	w := d.find(addr)
	if w == nil {
		return 0, fmt.Errorf("cluster: unknown worker %s", addr)
	}
	w.draining.Store(true)
	return w.outstanding.Load(), nil
}

// ResumeWorker clears a worker's admin drain.
func (d *Dispatcher) ResumeWorker(addr string) error {
	w := d.find(addr)
	if w == nil {
		return fmt.Errorf("cluster: unknown worker %s", addr)
	}
	w.draining.Store(false)
	return nil
}

// RemoveWorker takes a worker out of the set. Unless force is set it
// refuses while requests are still outstanding — drain first, poll, then
// remove, and no in-flight request is ever dropped.
func (d *Dispatcher) RemoveWorker(addr string, force bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, w := range d.workers {
		if w.addr != addr {
			continue
		}
		if n := w.outstanding.Load(); n > 0 && !force {
			return fmt.Errorf("cluster: worker %s has %d outstanding requests (drain first, or force)", addr, n)
		}
		ws := make([]*worker, 0, len(d.workers)-1)
		ws = append(ws, d.workers[:i]...)
		ws = append(ws, d.workers[i+1:]...)
		d.workers = ws
		return nil
	}
	return fmt.Errorf("cluster: unknown worker %s", addr)
}

func (d *Dispatcher) find(addr string) *worker {
	for _, w := range d.snapshot() {
		if w.addr == addr {
			return w
		}
	}
	return nil
}

// Workers lists addresses in scan order (tests, admin).
func (d *Dispatcher) Workers() []string {
	ws := d.snapshot()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.addr
	}
	sort.Strings(out)
	return out
}
