package cluster

import (
	"sort"
	"sync"
	"time"
)

// Hedging ("The Tail at Scale"): when the first placement has not
// answered within roughly the function's own p95, a duplicate goes to a
// second worker and the first response wins. The delay adapts per
// function so a 2ms echo hedges at milliseconds while a 500ms batch job
// is left alone.
const (
	hedgeColdDelay = 50 * time.Millisecond // until enough samples exist
	hedgeSampleMin = 16
	hedgeRingSize  = 64
	hedgeMinDelay  = 2 * time.Millisecond
	hedgeMaxDelay  = 2 * time.Second
)

type latRing struct {
	mu      sync.Mutex
	samples [hedgeRingSize]time.Duration
	n       int // filled entries (caps at hedgeRingSize)
	idx     int
}

// hedgeTracker keeps a small ring of recent successful-invoke latencies
// per function.
type hedgeTracker struct {
	mu  sync.RWMutex
	fns map[string]*latRing
}

func newHedgeTracker() *hedgeTracker {
	return &hedgeTracker{fns: make(map[string]*latRing)}
}

func (t *hedgeTracker) ring(fn string) *latRing {
	t.mu.RLock()
	r := t.fns[fn]
	t.mu.RUnlock()
	if r != nil {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r = t.fns[fn]; r == nil {
		r = &latRing{}
		t.fns[fn] = r
	}
	return r
}

func (t *hedgeTracker) observe(fn string, d time.Duration) {
	r := t.ring(fn)
	r.mu.Lock()
	r.samples[r.idx] = d
	r.idx = (r.idx + 1) % hedgeRingSize
	if r.n < hedgeRingSize {
		r.n++
	}
	r.mu.Unlock()
}

// delay reports how long to wait before hedging fn: the clamped p95 of
// recent successes, or cold (0 = 50ms) until hedgeSampleMin samples
// exist.
func (t *hedgeTracker) delay(fn string, cold time.Duration) time.Duration {
	if cold <= 0 {
		cold = hedgeColdDelay
	}
	r := t.ring(fn)
	r.mu.Lock()
	n := r.n
	if n < hedgeSampleMin {
		r.mu.Unlock()
		return cold
	}
	tmp := make([]time.Duration, n)
	copy(tmp, r.samples[:n])
	r.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	d := tmp[n*95/100]
	if d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	if d > hedgeMaxDelay {
		d = hedgeMaxDelay
	}
	return d
}
