package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxReadyzBody bounds how much of a worker's /readyz answer the
// dispatcher will read: a confused (or malicious) worker must not be able
// to balloon the poller with an unbounded document.
const maxReadyzBody = 256 << 10

// healthLoop polls every worker's /readyz each HealthInterval. It is the
// only path that RE-ADMITS a worker: passive ejection (transport errors,
// drain-marked 503s) takes a worker out instantly, and it stays out until
// a poll sees it ready again — so a flapping worker costs at most one
// failed request per flap, not one per in-flight request.
func (d *Dispatcher) healthLoop() {
	defer close(d.healthDone)
	// First round immediately: a dispatcher booted against a dead worker
	// should eject it before the first client request, not 250ms later.
	d.pollAll()
	t := time.NewTicker(d.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-d.healthStop:
			return
		case <-t.C:
			d.pollAll()
		}
	}
}

func (d *Dispatcher) pollAll() {
	ws := d.snapshot()
	done := make(chan struct{}, len(ws))
	for _, w := range ws {
		go func(w *worker) {
			d.poll(w)
			done <- struct{}{}
		}(w)
	}
	for range ws {
		<-done
	}
}

// poll probes one worker's /readyz and applies the verdict. The worker
// gateway answers the document on BOTH 200 (ready) and 503 (draining or
// degraded), so a decoded body is authoritative either way; only
// transport-level failures fall back to "unreachable".
func (d *Dispatcher) poll(w *worker) {
	// Captured BEFORE the round-trip: a verdict formed against the worker
	// as it was when the poll began must not overwrite ejections that
	// happened while the poll was in flight.
	epoch := w.ejectEpoch.Load()
	timeout := d.cfg.HealthInterval
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/readyz", nil)
	if err != nil {
		d.applyVerdict(w, readyzDoc{}, err, epoch)
		return
	}
	resp, err := d.client.Do(req)
	if err != nil {
		d.applyVerdict(w, readyzDoc{}, err, epoch)
		return
	}
	defer resp.Body.Close()
	var doc readyzDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReadyzBody)).Decode(&doc); err != nil {
		d.applyVerdict(w, readyzDoc{}, fmt.Errorf("decoding /readyz: %w", err), epoch)
		return
	}
	d.applyVerdict(w, doc, nil, epoch)
}

func (d *Dispatcher) applyVerdict(w *worker, doc readyzDoc, err error, epoch uint64) {
	now := time.Now()
	if err != nil {
		w.ejected.Store(true)
		w.mu.Lock()
		w.lastErr = err.Error()
		w.lastPoll = now
		w.mu.Unlock()
		return
	}
	// Auto-size the JBSQ bound from the worker's declared capacity: the
	// same 4 x executors x jbsq proportion as the worker's own default
	// admission cap. Fixed Config.Bound wins when set.
	if d.cfg.Bound == 0 && doc.Executors > 0 && doc.JBSQBound > 0 {
		w.bound.Store(int64(4 * doc.Executors * doc.JBSQBound))
	}
	if doc.Ready && w.ejectEpoch.Load() != epoch {
		// Stale ready verdict: the worker was passively ejected (dropped a
		// connection, sent a drain marker) AFTER this poll started, so the
		// "ready" answer predates the failure. Discard the re-admission;
		// the next round decides with fresh evidence.
		w.mu.Lock()
		w.lastErr = "stale ready verdict discarded"
		w.lastPoll = now
		w.mu.Unlock()
		return
	}
	w.ejected.Store(!doc.Ready)
	w.mu.Lock()
	w.lastErr = ""
	if !doc.Ready {
		switch {
		case doc.Draining:
			w.lastErr = "worker draining"
		case doc.Degraded:
			w.lastErr = "worker degraded"
		default:
			w.lastErr = "worker not ready"
		}
	}
	w.ready = doc
	w.lastPoll = now
	w.mu.Unlock()
}
