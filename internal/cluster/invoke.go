package cluster

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"context"

	"jord/internal/server/gateway"
)

// workerResp is one worker response, buffered so it can be (a) discarded
// and retried when the worker turns out to be draining, and (b) relayed
// by whichever attempt wins a hedge race without two goroutines writing
// the client connection.
type workerResp struct {
	status int
	ctype  string
	retryA string
	drainM string
	dedup  string
	clen   int64 // advertised Content-Length (-1 unknown)
	body   []byte
	pooled *[]byte       // bodyPool buffer backing body
	rest   io.ReadCloser // non-nil: body overflowed the buffer budget, stream the tail
}

func (r *workerResp) release() {
	if r.rest != nil {
		r.rest.Close()
		r.rest = nil
	}
	if r.pooled != nil {
		bodyPool.Put(r.pooled)
		r.pooled = nil
	}
	r.body = nil
}

// outcome is one attempt's result, reported to the dispatch loop.
type outcome struct {
	wk        *worker
	resp      *workerResp
	err       error
	class     respClass
	hedge     bool // this attempt was the hedged duplicate
	sameRetry bool // this attempt was the same-worker idempotent replay
}

var errDrainMarked = errors.New("draining (marked 503)")

func (d *Dispatcher) handleInvoke(w http.ResponseWriter, r *http.Request) {
	fn := r.PathValue("fn")
	if d.draining.Load() {
		retryAfter(w, 5*time.Second)
		w.Header().Set(gateway.DrainingHeader, "1")
		http.Error(w, "dispatcher draining", http.StatusServiceUnavailable)
		return
	}

	// Buffer the body up front (bounded): a request is only "in flight"
	// against a worker once delivery starts, so a worker that dies takes
	// no request bytes with it — the buffered body is re-sent elsewhere.
	if r.ContentLength > d.cfg.MaxBodyBytes {
		http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
		return
	}
	var (
		payload []byte
		pooled  *[]byte
	)
	if cl := r.ContentLength; cl >= 0 {
		pooled = getBody(cl)
		payload = (*pooled)[:cl]
		if _, err := io.ReadFull(r.Body, payload); err != nil {
			bodyPool.Put(pooled)
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		// Chunked (unknown-length) bodies ride the same pooled buffers as
		// framed ones, growing by doubling up to the bound, instead of
		// handing io.ReadAll a fresh allocation per request.
		pooled = getBody(32 << 10)
		buf := (*pooled)[:cap(*pooled)]
		total := 0
		for {
			if total == len(buf) {
				if int64(len(buf)) > d.cfg.MaxBodyBytes {
					break // read past the bound; rejected below
				}
				grown := len(buf) * 2
				if int64(grown) > d.cfg.MaxBodyBytes+1 {
					grown = int(d.cfg.MaxBodyBytes + 1)
				}
				nb := make([]byte, grown)
				copy(nb, buf)
				*pooled = nb
				buf = nb
			}
			n, err := r.Body.Read(buf[total:])
			total += n
			if err == io.EOF {
				break
			}
			if err != nil {
				bodyPool.Put(pooled)
				http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if int64(total) > d.cfg.MaxBodyBytes {
			bodyPool.Put(pooled)
			http.Error(w, "payload too large", http.StatusRequestEntityTooLarge)
			return
		}
		payload = buf[:total]
	}

	ctx := r.Context()
	if d.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.RequestTimeout)
		defer cancel()
	}

	// Every invocation carries an idempotency key (client-supplied wins)
	// so post-delivery failures can replay from the worker's dedup cache
	// instead of double-executing.
	key := r.Header.Get(gateway.IdempotencyKeyHeader)
	if key == "" && !d.cfg.DisableIdempotency {
		key = newIdemKey()
	}
	d.dispatch(ctx, w, fn, r.Header.Get("Content-Type"), key, payload, pooled)
}

// dispatch runs the placement/retry/hedge loop for one buffered request.
// It owns pooled: the buffer returns to the pool only after every
// launched attempt has stopped reading payload.
func (d *Dispatcher) dispatch(ctx context.Context, w http.ResponseWriter,
	fn, contentType, key string, payload []byte, pooled *[]byte) {

	results := make(chan outcome, 8)
	var cancels []context.CancelFunc
	inflight := 0
	attempts := 0
	tried := make(map[*worker]bool)       // failed here; do not re-place
	active := make(map[*worker]bool)      // attempt currently running here
	sameRetried := make(map[*worker]bool) // idempotent replay already tried here
	everHedged := false

	defer func() {
		for _, c := range cancels {
			c()
		}
		if inflight == 0 {
			if pooled != nil {
				bodyPool.Put(pooled)
			}
			return
		}
		// Losing attempts are still running (hedge losers, canceled
		// stragglers) and still read payload while their request write
		// winds down: drain them off-path, then recycle the buffer.
		n, p := inflight, pooled
		go func() {
			for i := 0; i < n; i++ {
				if o := <-results; o.resp != nil {
					o.resp.release()
				}
			}
			if p != nil {
				bodyPool.Put(p)
			}
		}()
	}()

	launch := func(wk *worker, isHedge, sameRetry bool) {
		attempts++
		inflight++
		active[wk] = true
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			resp, err := d.forward(actx, wk, fn, contentType, key, payload)
			wk.outstanding.Add(-1)
			o := outcome{wk: wk, resp: resp, err: err, hedge: isHedge, sameRetry: sameRetry}
			if err != nil {
				o.class = classifyTransport(err)
			}
			results <- o
		}()
	}

	// place reserves the best untried worker and launches an attempt; on
	// refusal it writes the dispatcher's own verdict and reports false.
	place := func() bool {
		wk, anyReady := d.pick(tried)
		if wk == nil {
			switch {
			case attempts > 0:
				// At least one worker was tried and failed mid-stream;
				// the remaining set is exhausted. 503: the CLUSTER could
				// not serve this, distinct from per-request saturation.
				d.lost.Add(1)
				retryAfter(w, time.Second)
				http.Error(w, "no worker could serve the request", http.StatusServiceUnavailable)
			case anyReady:
				// Ready workers exist but all sit at their JBSQ bound:
				// the cluster is saturated, tell the client to back off.
				d.rejectedBusy.Add(1)
				retryAfter(w, time.Second)
				http.Error(w, "cluster saturated: all workers at bound", http.StatusTooManyRequests)
			default:
				d.rejectedDown.Add(1)
				retryAfter(w, time.Second)
				http.Error(w, "no ready workers", http.StatusServiceUnavailable)
			}
			return false
		}
		launch(wk, false, false)
		return true
	}

	if !place() {
		return
	}

	// Hedge only with a key: the duplicate may race a completed primary,
	// and only the replay cache keeps that from double-executing.
	var hedgeC <-chan time.Time
	if d.cfg.Hedge && key != "" {
		t := time.NewTimer(d.hedge.delay(fn, d.cfg.HedgeDelay))
		defer t.Stop()
		hedgeC = t.C
	}

	for {
		select {
		case <-ctx.Done():
			http.Error(w, "deadline exceeded while dispatching", http.StatusGatewayTimeout)
			return

		case <-hedgeC:
			hedgeC = nil
			excl := make(map[*worker]bool, len(tried)+len(active))
			for wk := range tried {
				excl[wk] = true
			}
			for wk := range active {
				excl[wk] = true
			}
			if hw, _ := d.pick(excl); hw != nil {
				d.hedgesIssued.Add(1)
				everHedged = true
				launch(hw, true, false)
			}

		case o := <-results:
			inflight--
			delete(active, o.wk)

			if o.err == nil {
				if o.resp.status == http.StatusServiceUnavailable && o.resp.drainM != "" &&
					d.untriedOthers(o.wk, tried) > 0 {
					// This worker is going away; that is a placement
					// problem, not an answer. Eject it and try the rest of
					// the fleet. Only when NO other worker can take the
					// request does the drain 503 fall through to the client.
					o.resp.release()
					o.wk.eject(errDrainMarked)
					tried[o.wk] = true
					d.drainRetries.Add(1)
					if inflight == 0 && !place() {
						return
					}
					continue
				}
				// First clean response wins; everything else is canceled by
				// the deferred cancels on return.
				d.finish(w, o, everHedged)
				return
			}

			switch o.class {
			case classCtx:
				if ctx.Err() != nil {
					if inflight > 0 {
						continue
					}
					http.Error(w, "deadline exceeded while dispatching", http.StatusGatewayTimeout)
					return
				}
				// A per-attempt cancellation without the request deadline
				// firing: treat like a safe transport failure.
				fallthrough

			case classSafe:
				// The request never reached the worker: eject passively
				// (the health loop re-admits once /readyz answers again)
				// and re-place anywhere.
				o.wk.eject(o.err)
				tried[o.wk] = true
				d.errRetries.Add(1)
				if inflight == 0 && !place() {
					return
				}

			case classUnsafe:
				o.wk.eject(o.err)
				if key != "" && !sameRetried[o.wk] {
					// Delivered (or possibly delivered): the only retry that
					// cannot double-execute targets the SAME worker, whose
					// idempotency cache replays the completed response.
					sameRetried[o.wk] = true
					d.unsafeRetries.Add(1)
					o.wk.outstanding.Add(1)
					launch(o.wk, o.hedge, true)
					continue
				}
				if key != "" {
					// The same-worker replay failed too: the worker is gone
					// and its replay cache died with it. Re-place elsewhere;
					// if the dead worker completed the call in its final
					// moment this is the documented at-least-once residue.
					tried[o.wk] = true
					d.errRetries.Add(1)
					if inflight == 0 && !place() {
						return
					}
					continue
				}
				// No idempotency key: a post-delivery failure is not safely
				// retryable — the worker may have executed. Surface it.
				d.unsafe502.Add(1)
				http.Error(w, "upstream connection failed after request delivery; no idempotency key, not retried", http.StatusBadGateway)
				return
			}
		}
	}
}

// untriedOthers counts admittable workers (other than wk) this request
// has not failed against yet.
func (d *Dispatcher) untriedOthers(wk *worker, tried map[*worker]bool) int {
	n := 0
	for _, other := range d.snapshot() {
		if other != wk && other.admittable() && !tried[other] {
			n++
		}
	}
	return n
}

// forward sends one attempt and buffers the response (bounded). A body
// that overflows MaxBodyBytes keeps rest open for streaming — an
// overflowing response cannot be retried mid-stream anyway.
func (d *Dispatcher) forward(ctx context.Context, wk *worker,
	fn, contentType, key string, payload []byte) (*workerResp, error) {

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.base+"/invoke/"+fn, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.ContentLength = int64(len(payload))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if key != "" {
		req.Header.Set(gateway.IdempotencyKeyHeader, key)
	}
	start := time.Now()
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	wr := &workerResp{
		status: resp.StatusCode,
		ctype:  resp.Header.Get("Content-Type"),
		retryA: resp.Header.Get("Retry-After"),
		drainM: resp.Header.Get(gateway.DrainingHeader),
		dedup:  resp.Header.Get(gateway.DedupHeader),
		clen:   resp.ContentLength,
	}
	max := d.cfg.MaxBodyBytes
	if cl := resp.ContentLength; cl >= 0 && cl <= max {
		wr.pooled = getBody(cl)
		wr.body = (*wr.pooled)[:cl]
		if _, err := io.ReadFull(resp.Body, wr.body); err != nil {
			resp.Body.Close()
			wr.release()
			// The head arrived but the body broke off (reset mid-body).
			// Nothing has reached the client, so the dispatch loop can
			// still retry this — classified unsafe, like any
			// post-delivery break.
			return nil, err
		}
		resp.Body.Close()
	} else {
		wr.pooled = getBody(32 << 10)
		buf := (*wr.pooled)[:cap(*wr.pooled)]
		total := 0
	read:
		for {
			if total == len(buf) {
				if int64(len(buf)) > max {
					wr.body = buf[:total]
					wr.rest = resp.Body
					return wr, nil
				}
				grown := len(buf) * 2
				if int64(grown) > max+1 {
					grown = int(max + 1)
				}
				nb := make([]byte, grown)
				copy(nb, buf)
				*wr.pooled = nb
				buf = nb
			}
			n, rerr := resp.Body.Read(buf[total:])
			total += n
			switch {
			case rerr == io.EOF:
				break read
			case rerr != nil:
				resp.Body.Close()
				wr.release()
				return nil, rerr
			}
		}
		wr.body = buf[:total]
		resp.Body.Close()
	}
	if wr.status == http.StatusOK && d.cfg.Hedge {
		d.hedge.observe(fn, time.Since(start))
	}
	return wr, nil
}

// finish relays the winning response and settles the counters.
func (d *Dispatcher) finish(w http.ResponseWriter, o outcome, everHedged bool) {
	if o.hedge {
		d.hedgesWon.Add(1)
	} else if everHedged {
		d.hedgesWasted.Add(1)
	}
	resp := o.resp
	if resp.dedup != "" {
		d.dedupHits.Add(1)
	}
	o.wk.dispatched.Add(1)
	if resp.status == http.StatusTooManyRequests || resp.status == http.StatusServiceUnavailable {
		d.passthrough.Add(1)
	}
	clientErr, workerErr := d.writeResp(w, resp)
	resp.release()
	switch {
	case workerErr != nil:
		// The worker died mid-relay after the head was committed: the
		// client sees a truncated body and nothing can be retried. Count
		// it and keep the worker out until health clears it.
		d.relayWorkerErrs.Add(1)
		o.wk.eject(workerErr)
	case clientErr != nil:
		d.relayClientErrs.Add(1)
	default:
		d.dispatched.Add(1)
	}
}

// writeResp copies one worker response to the client verbatim: status,
// Retry-After, drain and replay markers included — the dispatcher adds
// no interpretation to worker verdicts it did not re-place.
func (d *Dispatcher) writeResp(w http.ResponseWriter, r *workerResp) (clientErr, workerErr error) {
	h := w.Header()
	if r.ctype != "" {
		h.Set("Content-Type", r.ctype)
	}
	if r.retryA != "" {
		h.Set("Retry-After", r.retryA)
	}
	if r.drainM != "" {
		h.Set(gateway.DrainingHeader, r.drainM)
	}
	if r.dedup != "" {
		h.Set(gateway.DedupHeader, r.dedup)
	}
	if r.rest == nil {
		h.Set("Content-Length", strconv.Itoa(len(r.body)))
	} else if r.clen >= 0 {
		h.Set("Content-Length", strconv.FormatInt(r.clen, 10))
	}
	w.WriteHeader(r.status)
	if len(r.body) > 0 {
		if _, err := w.Write(r.body); err != nil {
			return err, nil
		}
	}
	if r.rest == nil {
		return nil, nil
	}
	bp := getBody(32 << 10)
	defer bodyPool.Put(bp)
	buf := (*bp)[:cap(*bp)]
	for {
		n, rerr := r.rest.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr, nil
			}
		}
		if rerr == io.EOF {
			return nil, nil
		}
		if rerr != nil {
			return nil, rerr
		}
	}
}
