package chaos

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func testServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/invoke/") {
			hits.Add(1)
		}
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("response-body-0123456789"))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func doInvoke(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/invoke/echo", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

func TestRefusedNeverReachesWorker(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, &hits)
	client := &http.Client{Transport: New(nil, 1, &Rule{Fault: FaultRefused})}

	_, err := doInvoke(t, client, srv.URL)
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "dial" || !errors.Is(op.Err, syscall.ECONNREFUSED) {
		t.Fatalf("want dial ECONNREFUSED OpError, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatal("refused request must not reach the worker")
	}
}

func TestResetBeforeWriteNeverReachesWorker(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, &hits)
	client := &http.Client{Transport: New(nil, 1, &Rule{Fault: FaultResetBeforeWrite})}

	_, err := doInvoke(t, client, srv.URL)
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "write" || !errors.Is(op.Err, syscall.ECONNRESET) {
		t.Fatalf("want write ECONNRESET OpError, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatal("reset-before-write must not reach the worker")
	}
}

func TestResetAfterWriteExecutesWorker(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, &hits)
	client := &http.Client{Transport: New(nil, 1, &Rule{Fault: FaultResetAfterWrite})}

	_, err := doInvoke(t, client, srv.URL)
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "read" || !errors.Is(op.Err, syscall.ECONNRESET) {
		t.Fatalf("want read ECONNRESET OpError, got %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("reset-after-write must execute the worker once, hits=%d", hits.Load())
	}
}

func TestResetMidBodyTruncates(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, &hits)
	client := &http.Client{Transport: New(nil, 1, &Rule{Fault: FaultResetMidBody, MidBody: 5})}

	resp, err := doInvoke(t, client, srv.URL)
	if err != nil {
		t.Fatalf("mid-body reset should deliver headers: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("body read should fail with a reset")
	}
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "read" {
		t.Fatalf("want read OpError, got %v", err)
	}
	if len(body) != 5 {
		t.Fatalf("delivered %d bytes before reset, want 5", len(body))
	}
	if hits.Load() != 1 {
		t.Fatal("mid-body reset still executes the worker")
	}
}

func TestStallBlocksUntilContextCancel(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, &hits)
	client := &http.Client{Transport: New(nil, 1, &Rule{Fault: FaultStall})}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", srv.URL+"/invoke/echo", strings.NewReader("p"))
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("stall should fail once the context expires")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("stall returned before the context deadline")
	}
	if hits.Load() != 0 {
		t.Fatal("stalled request must not reach the worker")
	}
}

func TestLatencyDelaysThenForwards(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, &hits)
	client := &http.Client{Transport: New(nil, 1,
		&Rule{Fault: FaultLatency, Latency: 60 * time.Millisecond})}

	start := time.Now()
	resp, err := doInvoke(t, client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 55*time.Millisecond {
		t.Fatalf("latency fault returned in %v, want >= 60ms", d)
	}
	if hits.Load() != 1 {
		t.Fatal("latency fault must still execute")
	}
}

func TestCountCapAndInvokeOnly(t *testing.T) {
	var hits atomic.Int64
	srv := testServer(t, &hits)
	rule := &Rule{Fault: FaultRefused, Count: 2}
	tr := New(nil, 1, rule)
	client := &http.Client{Transport: tr}

	for i := 0; i < 2; i++ {
		if _, err := doInvoke(t, client, srv.URL); err == nil {
			t.Fatalf("request %d should be refused", i)
		}
	}
	resp, err := doInvoke(t, client, srv.URL)
	if err != nil {
		t.Fatalf("after count cap, requests should pass: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if rule.Fired() != 2 || tr.Injected() != 2 {
		t.Fatalf("fired=%d injected=%d want 2/2", rule.Fired(), tr.Injected())
	}

	// Non-invoke paths (health polls) bypass injection entirely.
	rule2 := &Rule{Fault: FaultRefused}
	client2 := &http.Client{Transport: New(nil, 1, rule2)}
	resp, err = client2.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatalf("health poll must bypass chaos: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestWorkerTargeting(t *testing.T) {
	var hitsA, hitsB atomic.Int64
	srvA := testServer(t, &hitsA)
	srvB := testServer(t, &hitsB)
	hostA := strings.TrimPrefix(srvA.URL, "http://")
	client := &http.Client{Transport: New(nil, 1, &Rule{Worker: hostA, Fault: FaultRefused})}

	if _, err := doInvoke(t, client, srvA.URL); err == nil {
		t.Fatal("worker A should be refused")
	}
	resp, err := doInvoke(t, client, srvB.URL)
	if err != nil {
		t.Fatalf("worker B should be untouched: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hitsA.Load() != 0 || hitsB.Load() != 1 {
		t.Fatalf("hitsA=%d hitsB=%d want 0/1", hitsA.Load(), hitsB.Load())
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	run := func() int64 {
		var hits atomic.Int64
		srv := testServer(t, &hits)
		rule := &Rule{Fault: FaultRefused, P: 0.5}
		client := &http.Client{Transport: New(nil, 42, rule)}
		for i := 0; i < 40; i++ {
			if resp, err := doInvoke(t, client, srv.URL); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return rule.Fired()
	}
	// NOTE: the per-host RNG is seeded by seed^hash(host); two servers on
	// different ports draw different streams, so we only assert the roll
	// count is plausible, not byte-identical across runs.
	fired := run()
	if fired == 0 || fired == 40 {
		t.Fatalf("p=0.5 fired %d/40 — roll not applied", fired)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("refused:0.1, 127.0.0.1:9011=stall x1,reset-after-write", 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	if rules[0].Fault != FaultRefused || rules[0].P != 0.1 || rules[0].Worker != "" {
		t.Fatalf("rule 0: %+v", rules[0])
	}
	if rules[1].Fault != FaultStall || rules[1].Worker != "127.0.0.1:9011" || rules[1].Count != 1 {
		t.Fatalf("rule 1: %+v", rules[1])
	}
	if rules[2].Fault != FaultResetAfterWrite || rules[2].Latency != 250*time.Millisecond {
		t.Fatalf("rule 2: %+v", rules[2])
	}

	for _, bad := range []string{"", "nosuch", "refused:1.5", "refused:zero"} {
		if _, err := ParseSpec(bad, 0); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}
