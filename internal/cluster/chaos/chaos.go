// Package chaos is a deterministic fault-injection layer for the cluster
// dispatcher's HTTP transport. It wraps an http.RoundTripper and, per a
// seeded schedule, synthesizes the hard failures a real cluster sees:
// connections refused, resets before or after the request is written,
// resets mid-response-body, latency spikes, and black-hole stalls.
//
// Determinism: each target host draws from its own rand.Rand seeded by
// Seed ^ hash(host), so a given (seed, rule set, request order) replays
// the same faults — a failing chaos test reproduces.
package chaos

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Fault enumerates the injectable failure modes.
type Fault int

const (
	// FaultRefused synthesizes a dial-time "connection refused": the
	// request never leaves the client. Always safe to retry.
	FaultRefused Fault = iota
	// FaultResetBeforeWrite synthesizes a connection reset while writing
	// the request: the worker never received a complete request, so it
	// never invoked. Safe to retry.
	FaultResetBeforeWrite
	// FaultResetAfterWrite performs the real round-trip (the worker
	// EXECUTES the function), then discards the response and reports a
	// read-side reset. Retrying without an idempotency key double-executes.
	FaultResetAfterWrite
	// FaultResetMidBody performs the real round-trip but truncates the
	// response body partway with a reset. The worker executed.
	FaultResetMidBody
	// FaultLatency delays the request by the rule's Latency, then forwards
	// it normally.
	FaultLatency
	// FaultStall black-holes the request: it blocks until the request
	// context is canceled and returns the context error. The worker never
	// sees the request.
	FaultStall
)

var faultNames = map[Fault]string{
	FaultRefused:          "refused",
	FaultResetBeforeWrite: "reset-before-write",
	FaultResetAfterWrite:  "reset-after-write",
	FaultResetMidBody:     "reset-mid-body",
	FaultLatency:          "latency",
	FaultStall:            "stall",
}

func (f Fault) String() string {
	if s, ok := faultNames[f]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Rule injects one fault class against one worker (or all of them).
type Rule struct {
	// Worker selects the target by host:port; "" or "*" matches every
	// worker.
	Worker string
	Fault  Fault
	// P is the per-request injection probability; 0 means 1.0 (always).
	P float64
	// Count caps how many times the rule fires; 0 = unlimited.
	Count int
	// Latency is the injected delay for FaultLatency (default 100ms).
	Latency time.Duration
	// MidBody is how many response-body bytes to deliver before the reset
	// for FaultResetMidBody (default 1).
	MidBody int

	fired atomic.Int64
}

func (r *Rule) matches(host string) bool {
	return r.Worker == "" || r.Worker == "*" || r.Worker == host
}

// Fired reports how many times the rule has injected its fault.
func (r *Rule) Fired() int64 { return r.fired.Load() }

// Transport wraps a base RoundTripper with the fault schedule.
type Transport struct {
	base  http.RoundTripper
	rules []*Rule
	seed  int64

	// InvokeOnly restricts injection to /invoke/ requests so health polls
	// keep reporting the truth. On by default via New.
	invokeOnly bool

	mu   sync.Mutex
	rnds map[string]*rand.Rand

	injected atomic.Int64
}

// New builds a fault-injecting transport over base (nil =
// http.DefaultTransport). Injection is restricted to /invoke/ paths;
// use AllPaths to also fault health polls.
func New(base http.RoundTripper, seed int64, rules ...*Rule) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:       base,
		rules:      rules,
		seed:       seed,
		invokeOnly: true,
		rnds:       make(map[string]*rand.Rand),
	}
}

// AllPaths widens injection to every request, including health polls.
func (t *Transport) AllPaths() *Transport {
	t.invokeOnly = false
	return t
}

// Injected reports the total number of faults injected.
func (t *Transport) Injected() int64 { return t.injected.Load() }

func (t *Transport) rnd(host string) *rand.Rand {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rnds[host]
	if r == nil {
		h := fnv.New64a()
		io.WriteString(h, host)
		r = rand.New(rand.NewSource(t.seed ^ int64(h.Sum64())))
		t.rnds[host] = r
	}
	return r
}

// pick returns the first matching rule that rolls a hit, consuming one of
// its Count charges.
func (t *Transport) pick(req *http.Request) *Rule {
	host := req.URL.Host
	for _, r := range t.rules {
		if !r.matches(host) {
			continue
		}
		p := r.P
		if p <= 0 {
			p = 1.0
		}
		if p < 1.0 {
			rnd := t.rnd(host)
			t.mu.Lock()
			roll := rnd.Float64()
			t.mu.Unlock()
			if roll >= p {
				continue
			}
		}
		if r.Count > 0 {
			if n := r.fired.Add(1); n > int64(r.Count) {
				r.fired.Add(-1)
				continue
			}
		} else {
			r.fired.Add(1)
		}
		return r
	}
	return nil
}

// RoundTrip implements http.RoundTripper. Synthetic transport errors close
// req.Body first, as the contract requires.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.invokeOnly && !strings.HasPrefix(req.URL.Path, "/invoke/") {
		return t.base.RoundTrip(req)
	}
	r := t.pick(req)
	if r == nil {
		return t.base.RoundTrip(req)
	}
	t.injected.Add(1)
	switch r.Fault {
	case FaultRefused:
		closeBody(req)
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case FaultResetBeforeWrite:
		closeBody(req)
		return nil, &net.OpError{Op: "write", Net: "tcp", Err: syscall.ECONNRESET}
	case FaultResetAfterWrite:
		// The worker really executes: forward, then lose the response.
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	case FaultResetMidBody:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		n := r.MidBody
		if n <= 0 {
			n = 1
		}
		resp.Body = &truncatingBody{rc: resp.Body, remain: n}
		// The advertised length no longer matches what we will deliver;
		// the reader hits the reset before noticing.
		return resp, nil
	case FaultLatency:
		d := r.Latency
		if d <= 0 {
			d = 100 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			closeBody(req)
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)
	case FaultStall:
		closeBody(req)
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	return t.base.RoundTrip(req)
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// truncatingBody delivers remain bytes, then fails with a read-side reset.
type truncatingBody struct {
	rc     io.ReadCloser
	remain int
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err != nil {
		return n, err
	}
	if b.remain <= 0 {
		return n, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	return n, nil
}

func (b *truncatingBody) Close() error { return b.rc.Close() }

// ParseSpec parses a comma-separated fault schedule, one rule per clause:
//
//	[worker=]fault[:p][xN]
//
// fault is one of refused, reset-before-write, reset-after-write,
// reset-mid-body, latency, stall. p is the injection probability (default
// 1.0); xN caps the rule at N firings. Examples:
//
//	refused:0.1                      10% of requests to any worker refused
//	127.0.0.1:9011=stall x1          first request to that worker stalls
//	reset-after-write:0.05,latency:0.2
//
// latency rules use defaultLatency (0 = 100ms) as the injected delay.
func ParseSpec(spec string, defaultLatency time.Duration) ([]*Rule, error) {
	var rules []*Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r := &Rule{Latency: defaultLatency}
		// The worker address may itself contain ':' (host:port), so split
		// on the LAST '=' for the worker part.
		if i := strings.LastIndex(clause, "="); i >= 0 {
			r.Worker = strings.TrimSpace(clause[:i])
			clause = strings.TrimSpace(clause[i+1:])
		}
		// Trailing xN count cap.
		if i := strings.LastIndex(clause, "x"); i > 0 {
			if n, err := strconv.Atoi(clause[i+1:]); err == nil {
				r.Count = n
				clause = strings.TrimSpace(clause[:i])
			}
		}
		name := clause
		if i := strings.IndexByte(clause, ':'); i >= 0 {
			name = clause[:i]
			p, err := strconv.ParseFloat(clause[i+1:], 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("chaos: bad probability %q in %q", clause[i+1:], spec)
			}
			r.P = p
		}
		found := false
		for f, s := range faultNames {
			if s == name {
				r.Fault = f
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("chaos: unknown fault %q (want one of refused, reset-before-write, reset-after-write, reset-mid-body, latency, stall)", name)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: empty spec")
	}
	return rules, nil
}
