package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net"
	"strconv"
	"sync/atomic"
)

// respClass partitions transport failures by what the worker may have
// seen — the whole retry policy hangs off this split.
type respClass int

const (
	// classSafe: the request never reached the worker complete (dial
	// failure, reset while writing). Re-placing it cannot double-execute.
	classSafe respClass = iota
	// classUnsafe: the failure happened after the request was delivered
	// (reset while reading the response, truncated body). The worker may
	// have executed; only an idempotency-keyed replay is safe.
	classUnsafe
	// classCtx: our own context fired (client deadline or hedge-loser
	// cancellation). Not a worker failure at all.
	classCtx
)

// classifyTransport maps a client.Do (or response-body read) error onto
// the retry-safety split.
//
// Write-side failures are safe because of how the worker gateway frames
// requests: the body is Content-Length-framed and read with ReadFull, so
// a connection that broke mid-write leaves a short read the gateway turns
// into a 400 WITHOUT invoking the function. Read-side failures are unsafe
// by construction — the response only exists because the invoke ran.
func classifyTransport(err error) respClass {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return classCtx
	}
	var op *net.OpError
	if errors.As(err, &op) {
		switch op.Op {
		case "dial", "write":
			return classSafe
		}
	}
	// Read errors, unexpected EOFs, protocol breakage: assume delivered.
	return classUnsafe
}

// Idempotency keys: a random per-process prefix plus a counter. The
// prefix keeps two dispatchers (or a restart) from colliding in a
// worker's replay cache; the counter keeps generation allocation-light.
var (
	keyPrefix = func() string {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "jordkey0"
		}
		return hex.EncodeToString(b[:])
	}()
	keySeq atomic.Uint64
)

func newIdemKey() string {
	return keyPrefix + "-" + strconv.FormatUint(keySeq.Add(1), 36)
}
