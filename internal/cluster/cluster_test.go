package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jord/internal/server/gateway"
)

// stubWorker is a scriptable fake jordd: an httptest server whose
// /invoke handler the test controls, with a ready /readyz.
func stubWorker(t *testing.T, invoke http.HandlerFunc) (addr string) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ready":true,"executors":2,"jbsq_bound":4}`)
	})
	mux.HandleFunc("/invoke/", invoke)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// newTestDispatcher builds a dispatcher with active polling disabled so
// unit tests control health state deterministically.
func newTestDispatcher(t *testing.T, cfg Config) (*Dispatcher, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1
	}
	d := New(cfg)
	front := httptest.NewServer(d.Handler())
	t.Cleanup(front.Close)
	return d, front
}

func postInvoke(t *testing.T, front, fn, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(front+"/invoke/"+fn, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	return resp
}

// TestJBSQBoundEnforced: with k=1 and the single worker's slot occupied
// by a blocked request, the next request must get the dispatcher's own
// 429 with a Retry-After hint — not queue behind it.
func TestJBSQBoundEnforced(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	addr := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		io.WriteString(w, "done")
	})
	_, front := newTestDispatcher(t, Config{Workers: []string{addr}, Bound: 1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postInvoke(t, front.URL, "echo", "first")
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked request finished %d, want 200", resp.StatusCode)
		}
	}()
	<-entered // the slot is now held

	resp := postInvoke(t, front.URL, "echo", "second")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound request got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("dispatcher 429 missing Retry-After")
	}
	close(release)
	wg.Wait()
}

// TestShedPassthrough: worker 429/503s that are NOT drain-marked are an
// overload verdict and must reach the client verbatim — status,
// Retry-After, and body.
func TestShedPassthrough(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		addr := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(status)
			io.WriteString(w, "worker overloaded\n")
		})
		d, front := newTestDispatcher(t, Config{Workers: []string{addr}})

		resp := postInvoke(t, front.URL, "echo", "x")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Fatalf("passthrough status %d, want %d", resp.StatusCode, status)
		}
		if got := resp.Header.Get("Retry-After"); got != "7" {
			t.Fatalf("Retry-After %q, want the worker's \"7\"", got)
		}
		if string(body) != "worker overloaded\n" {
			t.Fatalf("body %q not relayed verbatim", body)
		}
		if n := d.passthrough.Load(); n != 1 {
			t.Fatalf("passthrough counter = %d, want 1", n)
		}
	}
}

// TestDrainMarked503Replaced: a 503 carrying X-Jord-Draining means THAT
// worker is going away; the request must be re-placed on the healthy
// worker and succeed, and the draining worker must be ejected.
func TestDrainMarked503Replaced(t *testing.T) {
	draining := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(gateway.DrainingHeader, "1")
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	healthy := stubWorker(t, func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		w.Write(b)
	})
	d, front := newTestDispatcher(t, Config{Workers: []string{draining, healthy}})

	// JBSQ may pick either worker first; run enough requests that the
	// draining one is hit at least once.
	for i := 0; i < 8; i++ {
		resp := postInvoke(t, front.URL, "echo", "payload")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d, want 200 after re-placement", i, resp.StatusCode)
		}
		if string(body) != "payload" {
			t.Fatalf("request %d: body %q", i, body)
		}
	}
	if d.find(draining) == nil || !d.find(draining).ejected.Load() {
		t.Fatal("drain-marked worker not ejected")
	}
	if d.drainRetries.Load() == 0 {
		t.Fatal("no drain re-placements recorded")
	}
}

// TestDrainMarked503FallsThroughWhenAlone: with no other worker to take
// the request, the drain 503 (marker and all) must reach the client
// rather than spin.
func TestDrainMarked503FallsThroughWhenAlone(t *testing.T) {
	draining := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(gateway.DrainingHeader, "1")
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	_, front := newTestDispatcher(t, Config{Workers: []string{draining}})

	resp := postInvoke(t, front.URL, "echo", "x")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(gateway.DrainingHeader) == "" {
		t.Fatal("drain marker stripped from the fallthrough 503")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("Retry-After stripped from the fallthrough 503")
	}
}

// TestTransportErrorReplaced: a dead worker (connection refused) must be
// ejected passively and the buffered body re-sent to a live one.
func TestTransportErrorReplaced(t *testing.T) {
	// A closed httptest server leaves a refused port behind.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()
	var served int
	var mu sync.Mutex
	healthy := stubWorker(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		served++
		mu.Unlock()
		b, _ := io.ReadAll(r.Body)
		w.Write(b)
	})
	d, front := newTestDispatcher(t, Config{Workers: []string{deadAddr, healthy}})

	for i := 0; i < 8; i++ {
		resp := postInvoke(t, front.URL, "echo", "re-sent body")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "re-sent body" {
			t.Fatalf("request %d: %d %q", i, resp.StatusCode, body)
		}
	}
	if !d.find(deadAddr).ejected.Load() {
		t.Fatal("dead worker not ejected")
	}
	mu.Lock()
	defer mu.Unlock()
	if served != 8 {
		t.Fatalf("healthy worker served %d, want all 8", served)
	}
}

// TestNoReadyWorkers: every worker ejected → the dispatcher's own 503
// with Retry-After.
func TestNoReadyWorkers(t *testing.T) {
	addr := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "never reached")
	})
	d, front := newTestDispatcher(t, Config{Workers: []string{addr}})
	d.find(addr).ejected.Store(true)

	resp := postInvoke(t, front.URL, "echo", "x")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}

	// /readyz must agree.
	rz, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz %d, want 503 with no ready workers", rz.StatusCode)
	}
	var doc Readyz
	if err := json.NewDecoder(rz.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Ready || doc.ReadyWorkers != 0 || doc.Workers != 1 {
		t.Fatalf("readyz doc %+v", doc)
	}
}

// TestJBSQPlacesOnShortestQueue: with one worker's queue held deep and
// another idle, new work must land on the idle one.
func TestJBSQPlacesOnShortestQueue(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	busy := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		io.WriteString(w, "slow")
	})
	idle := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "fast")
	})
	d, front := newTestDispatcher(t, Config{Workers: []string{busy, idle}, Bound: 8})

	// Occupy the busy worker: issue blocked requests until one lands
	// there (the first goes wherever the tie broke; the second must
	// avoid the occupied queue... so force occupancy directly).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postInvoke(t, front.URL, "echo", "block")
		resp.Body.Close()
	}()
	select {
	case <-entered:
		// The blocked request landed on busy (tie broke toward it).
	case <-time.After(2 * time.Second):
		// Tie broke toward idle; that request already finished. Either
		// way busy has >= as many outstanding as idle from here on.
	}

	bw, iw := d.find(busy), d.find(idle)
	for i := 0; i < 6; i++ {
		before := iw.dispatched.Load()
		resp := postInvoke(t, front.URL, "echo", "quick")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if bw.outstanding.Load() > 0 {
			// The busy queue is strictly deeper: JBSQ must have picked
			// idle, and the response proves it.
			if string(body) != "fast" {
				t.Fatalf("request %d answered %q; placed on the deeper queue", i, body)
			}
			if iw.dispatched.Load() != before+1 {
				t.Fatalf("request %d not dispatched to the idle worker", i)
			}
		}
	}
	close(release)
	wg.Wait()
}

// TestBodyTooLarge: the buffering bound answers 413 before any worker is
// touched.
func TestBodyTooLarge(t *testing.T) {
	addr := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) {
		t.Error("oversized body reached a worker")
	})
	_, front := newTestDispatcher(t, Config{Workers: []string{addr}, MaxBodyBytes: 16})

	resp := postInvoke(t, front.URL, "echo", strings.Repeat("x", 64))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("got %d, want 413", resp.StatusCode)
	}
}

// TestAdminWorkflow drives the add / drain / remove surface over HTTP:
// the worker-replacement workflow with its refusal edges.
func TestAdminWorkflow(t *testing.T) {
	a := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, "a") })
	b := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, "b") })
	d, front := newTestDispatcher(t, Config{Workers: []string{a}})

	post := func(path string) *http.Response {
		resp, err := http.Post(front.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Duplicate add refused.
	if resp := post("/workers/add?addr=" + a); resp.StatusCode != http.StatusConflict {
		t.Fatalf("dup add: %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// Fresh add admitted into the scan.
	if resp := post("/workers/add?addr=" + b); resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if got := d.Workers(); len(got) != 2 {
		t.Fatalf("workers = %v", got)
	}

	// Drain a: no new placement there.
	if resp := post("/workers/drain?addr=" + a); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	for i := 0; i < 5; i++ {
		resp := postInvoke(t, front.URL, "echo", "x")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "b" {
			t.Fatalf("request %d served by drained worker", i)
		}
	}

	// Remove with a fabricated outstanding count refuses without force.
	d.find(a).outstanding.Add(1)
	if resp := post("/workers/remove?addr=" + a); resp.StatusCode != http.StatusConflict {
		t.Fatalf("remove busy: %d, want 409", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	d.find(a).outstanding.Add(-1)
	if resp := post("/workers/remove?addr=" + a); resp.StatusCode != http.StatusOK {
		t.Fatalf("remove idle: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if got := d.Workers(); len(got) != 1 || got[0] != b {
		t.Fatalf("workers after remove = %v", got)
	}

	// Unknown workers 404.
	if resp := post("/workers/drain?addr=nope:1"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown: %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestDispatcherDraining: the dispatcher's own drain answers marked 503s
// so an upstream tier can re-place around IT too.
func TestDispatcherDraining(t *testing.T) {
	addr := stubWorker(t, func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, "x") })
	d, front := newTestDispatcher(t, Config{Workers: []string{addr}})
	d.SetDraining(true)

	resp := postInvoke(t, front.URL, "echo", "x")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(gateway.DrainingHeader) == "" {
		t.Fatal("dispatcher drain 503 missing the marker")
	}
}

// TestHealthPollAutoBoundAndReadmission: with active polling on, an
// unready worker is ejected and then re-admitted when its /readyz
// recovers, and an unset Bound auto-sizes from the worker's document.
func TestHealthPollAutoBoundAndReadmission(t *testing.T) {
	var mu sync.Mutex
	ready := true
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		r := ready
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if !r {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"ready":false,"draining":true,"executors":3,"jbsq_bound":4}`)
			return
		}
		fmt.Fprintf(w, `{"ready":true,"executors":3,"jbsq_bound":4}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	d := New(Config{Workers: []string{addr}, HealthInterval: 20 * time.Millisecond})
	d.Start()
	defer d.Stop()

	w := d.find(addr)
	wait := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// First poll admits the worker and auto-sizes k = 4 x 3 x 4.
	wait(func() bool { return !w.ejected.Load() && w.boundNow() == 48 }, "auto-sized bound")

	// The worker stops being ready: the health loop must eject it.
	mu.Lock()
	ready = false
	mu.Unlock()
	wait(func() bool { return w.ejected.Load() }, "ejection")

	// And re-admit it on recovery.
	mu.Lock()
	ready = true
	mu.Unlock()
	wait(func() bool { return !w.ejected.Load() }, "re-admission")
}
