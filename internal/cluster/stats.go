package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// WorkerStatus is one worker's row in /workers and /readyz: the
// dispatcher-side view (placement state, outstanding, bound) joined with
// the last polled worker-side view.
type WorkerStatus struct {
	Addr        string `json:"addr"`
	Admittable  bool   `json:"admittable"` // JBSQ may place new work here
	Ejected     bool   `json:"ejected"`    // health verdict (auto re-admitted)
	Draining    bool   `json:"draining"`   // admin drain (sticky)
	Outstanding int64  `json:"outstanding"`
	Bound       int64  `json:"bound"`
	Dispatched  uint64 `json:"dispatched"`
	LastError   string `json:"last_error,omitempty"`
	LastPollMs  int64  `json:"last_poll_age_ms,omitempty"`

	// Worker-side /readyz echo from the last successful poll.
	WorkerReady    bool     `json:"worker_ready"`
	WorkerDegraded bool     `json:"worker_degraded,omitempty"`
	Executors      int      `json:"executors,omitempty"`
	OpenBreakers   []string `json:"open_breakers,omitempty"`
}

func (d *Dispatcher) workerStatuses() []WorkerStatus {
	ws := d.snapshot()
	out := make([]WorkerStatus, 0, len(ws))
	for _, w := range ws {
		w.mu.Lock()
		st := WorkerStatus{
			Addr:           w.addr,
			Admittable:     w.admittable(),
			Ejected:        w.ejected.Load(),
			Draining:       w.draining.Load(),
			Outstanding:    w.outstanding.Load(),
			Bound:          w.boundNow(),
			Dispatched:     w.dispatched.Load(),
			LastError:      w.lastErr,
			WorkerReady:    w.ready.Ready,
			WorkerDegraded: w.ready.Degraded,
			Executors:      w.ready.Executors,
			OpenBreakers:   w.ready.OpenBreakers,
		}
		if !w.lastPoll.IsZero() {
			st.LastPollMs = time.Since(w.lastPoll).Milliseconds()
		}
		w.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Readyz is the dispatcher's /readyz document: ready while at least one
// worker can take traffic and the dispatcher itself is not draining.
type Readyz struct {
	Ready        bool           `json:"ready"`
	Draining     bool           `json:"draining"`
	Workers      int            `json:"workers"`
	ReadyWorkers int            `json:"ready_workers"`
	WorkerState  []WorkerStatus `json:"worker_state"`
}

func (d *Dispatcher) readyzDocNow() Readyz {
	doc := Readyz{
		Draining:    d.draining.Load(),
		WorkerState: d.workerStatuses(),
	}
	doc.Workers = len(doc.WorkerState)
	for _, w := range doc.WorkerState {
		if w.Admittable {
			doc.ReadyWorkers++
		}
	}
	doc.Ready = !doc.Draining && doc.ReadyWorkers > 0
	return doc
}

func (d *Dispatcher) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	doc := d.readyzDocNow()
	w.Header().Set("Content-Type", "application/json")
	if !doc.Ready {
		retryAfter(w, time.Second)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func (d *Dispatcher) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if d.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// workerStatsz is the subset of a worker's /statsz the dispatcher
// aggregates.
type workerStatsz struct {
	PoolDispatched uint64 `json:"pool_dispatched"`
	PoolCompleted  uint64 `json:"pool_completed"`
	PoolExpired    uint64 `json:"pool_expired"`
	PoolCanceled   uint64 `json:"pool_canceled"`
	PoolRejected   uint64 `json:"pool_rejected"`
	PoolShed       uint64 `json:"pool_shed"`
	Inflight       int64  `json:"inflight"`
	Funcs          []struct {
		Name   string `json:"name"`
		Count  uint64 `json:"count"`
		Errors uint64 `json:"errors"`
	} `json:"funcs"`
}

// FuncTotals is one function's cluster-wide completion count.
type FuncTotals struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
}

// Statsz is the dispatcher's /statsz document: its own placement counters
// plus pool counters aggregated across every reachable worker. Latency
// percentiles deliberately stay per-worker (quantiles do not sum); scrape
// each worker's /statsz for those.
type Statsz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Workers       int     `json:"workers"`
	ReadyWorkers  int     `json:"ready_workers"`

	Dispatched        uint64 `json:"dispatched"`
	RejectedSaturated uint64 `json:"rejected_saturated"` // dispatcher 429s: all bounds full
	RejectedNoWorkers uint64 `json:"rejected_no_workers"`
	ErrRetries        uint64 `json:"transport_retries"`
	DrainRetries      uint64 `json:"drain_retries"`
	Exhausted         uint64 `json:"exhausted"` // 503 after trying every worker
	Passthrough       uint64 `json:"passthrough_sheds"`
	Outstanding       int64  `json:"outstanding"`

	// Fault-tolerance counters (see the retry policy in invoke.go).
	UnsafeRetries   uint64 `json:"unsafe_retries"`     // same-worker idempotent replays
	Unsafe502       uint64 `json:"unsafe_bad_gateway"` // keyless post-delivery failures
	HedgesIssued    uint64 `json:"hedges_issued"`
	HedgesWon       uint64 `json:"hedges_won"`
	HedgesWasted    uint64 `json:"hedges_wasted"`
	DedupHits       uint64 `json:"dedup_hits"` // responses replayed from a worker cache
	RelayErrsWorker uint64 `json:"relay_errors_worker"`
	RelayErrsClient uint64 `json:"relay_errors_client"`

	// Totals aggregates pool counters over workers that answered /statsz.
	Totals struct {
		PoolDispatched uint64 `json:"pool_dispatched"`
		PoolCompleted  uint64 `json:"pool_completed"`
		PoolExpired    uint64 `json:"pool_expired"`
		PoolCanceled   uint64 `json:"pool_canceled"`
		PoolRejected   uint64 `json:"pool_rejected"`
		PoolShed       uint64 `json:"pool_shed"`
		Inflight       int64  `json:"inflight"`
	} `json:"totals"`
	StatszWorkers int            `json:"statsz_workers"` // workers that answered
	Funcs         []FuncTotals   `json:"funcs"`
	WorkerState   []WorkerStatus `json:"worker_state"`
}

// fetchJSON GETs one worker endpoint into out with a short deadline.
func (d *Dispatcher) fetchJSON(base, path string, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// aggregateStatsz assembles the cluster stats document, fanning the
// /statsz scrape out to every worker concurrently.
func (d *Dispatcher) aggregateStatsz() Statsz {
	doc := Statsz{
		UptimeSeconds:     time.Since(d.started).Seconds(),
		Draining:          d.draining.Load(),
		Dispatched:        d.dispatched.Load(),
		RejectedSaturated: d.rejectedBusy.Load(),
		RejectedNoWorkers: d.rejectedDown.Load(),
		ErrRetries:        d.errRetries.Load(),
		DrainRetries:      d.drainRetries.Load(),
		Exhausted:         d.lost.Load(),
		Passthrough:       d.passthrough.Load(),
		UnsafeRetries:     d.unsafeRetries.Load(),
		Unsafe502:         d.unsafe502.Load(),
		HedgesIssued:      d.hedgesIssued.Load(),
		HedgesWon:         d.hedgesWon.Load(),
		HedgesWasted:      d.hedgesWasted.Load(),
		DedupHits:         d.dedupHits.Load(),
		RelayErrsWorker:   d.relayWorkerErrs.Load(),
		RelayErrsClient:   d.relayClientErrs.Load(),
		WorkerState:       d.workerStatuses(),
	}
	doc.Workers = len(doc.WorkerState)
	for _, w := range doc.WorkerState {
		doc.Outstanding += w.Outstanding
		if w.Admittable {
			doc.ReadyWorkers++
		}
	}

	ws := d.snapshot()
	var (
		mu    sync.Mutex
		funcs = map[string]*FuncTotals{}
		wg    sync.WaitGroup
	)
	for _, wk := range ws {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			var st workerStatsz
			if err := d.fetchJSON(wk.base, "/statsz", &st); err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			doc.StatszWorkers++
			doc.Totals.PoolDispatched += st.PoolDispatched
			doc.Totals.PoolCompleted += st.PoolCompleted
			doc.Totals.PoolExpired += st.PoolExpired
			doc.Totals.PoolCanceled += st.PoolCanceled
			doc.Totals.PoolRejected += st.PoolRejected
			doc.Totals.PoolShed += st.PoolShed
			doc.Totals.Inflight += st.Inflight
			for _, f := range st.Funcs {
				ft := funcs[f.Name]
				if ft == nil {
					ft = &FuncTotals{Name: f.Name}
					funcs[f.Name] = ft
				}
				ft.Count += f.Count
				ft.Errors += f.Errors
			}
		}(wk)
	}
	wg.Wait()
	for _, ft := range funcs {
		doc.Funcs = append(doc.Funcs, *ft)
	}
	sort.Slice(doc.Funcs, func(i, j int) bool { return doc.Funcs[i].Name < doc.Funcs[j].Name })
	return doc
}

func (d *Dispatcher) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(d.aggregateStatsz())
}

// Varz is the dispatcher's /varz: enough of the worker-shaped document
// (num_cpu, gomaxprocs, executors, orchestrators) that jordload's
// per-core summary works unchanged against a cluster, with executors and
// orchestrators summed across the workers that answered.
type Varz struct {
	NumCPU        int   `json:"num_cpu"`
	GOMAXPROCS    int   `json:"gomaxprocs"`
	Executors     int   `json:"executors"`
	Orchestrators int   `json:"orchestrators"`
	Workers       int   `json:"workers"`
	VarzWorkers   int   `json:"varz_workers"` // workers that answered
	Bound         int64 `json:"jbsq_worker_bound,omitempty"`
}

func (d *Dispatcher) handleVarz(w http.ResponseWriter, _ *http.Request) {
	ws := d.snapshot()
	doc := Varz{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    len(ws),
		Bound:      int64(d.cfg.Bound),
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, wk := range ws {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			var vz struct {
				Executors     int `json:"executors"`
				Orchestrators int `json:"orchestrators"`
			}
			if err := d.fetchJSON(wk.base, "/varz", &vz); err != nil {
				return
			}
			mu.Lock()
			doc.VarzWorkers++
			doc.Executors += vz.Executors
			doc.Orchestrators += vz.Orchestrators
			mu.Unlock()
		}(wk)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// handleMetrics writes Prometheus text (format 0.0.4): the dispatcher's
// placement counters, per-worker gauges, and cluster totals aggregated
// from the workers' /statsz.
func (d *Dispatcher) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	doc := d.aggregateStatsz()
	var b strings.Builder
	metric := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	b2f := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	metric("jord_dispatcher_up", "1 while the dispatcher accepts traffic.", "gauge")
	fmt.Fprintf(&b, "jord_dispatcher_up %d\n", b2f(!doc.Draining))
	metric("jord_dispatcher_workers", "Configured workers.", "gauge")
	fmt.Fprintf(&b, "jord_dispatcher_workers %d\n", doc.Workers)
	metric("jord_dispatcher_ready_workers", "Workers currently admittable.", "gauge")
	fmt.Fprintf(&b, "jord_dispatcher_ready_workers %d\n", doc.ReadyWorkers)
	metric("jord_dispatcher_dispatched_total", "Requests relayed to a worker.", "counter")
	fmt.Fprintf(&b, "jord_dispatcher_dispatched_total %d\n", doc.Dispatched)
	metric("jord_dispatcher_rejected_total", "Requests the dispatcher refused itself, by reason.", "counter")
	fmt.Fprintf(&b, "jord_dispatcher_rejected_total{reason=\"saturated\"} %d\n", doc.RejectedSaturated)
	fmt.Fprintf(&b, "jord_dispatcher_rejected_total{reason=\"no_workers\"} %d\n", doc.RejectedNoWorkers)
	fmt.Fprintf(&b, "jord_dispatcher_rejected_total{reason=\"exhausted\"} %d\n", doc.Exhausted)
	metric("jord_dispatcher_retries_total", "Re-placements after a failure, by cause.", "counter")
	fmt.Fprintf(&b, "jord_dispatcher_retries_total{cause=\"transport\"} %d\n", doc.ErrRetries)
	fmt.Fprintf(&b, "jord_dispatcher_retries_total{cause=\"drain\"} %d\n", doc.DrainRetries)
	fmt.Fprintf(&b, "jord_dispatcher_retries_total{cause=\"unsafe_same_worker\"} %d\n", doc.UnsafeRetries)
	metric("jord_dispatcher_passthrough_sheds_total", "Worker 429/503s forwarded verbatim.", "counter")
	fmt.Fprintf(&b, "jord_dispatcher_passthrough_sheds_total %d\n", doc.Passthrough)
	metric("jord_dispatcher_hedges_total", "Hedged (duplicate) placements, by result.", "counter")
	fmt.Fprintf(&b, "jord_dispatcher_hedges_total{result=\"issued\"} %d\n", doc.HedgesIssued)
	fmt.Fprintf(&b, "jord_dispatcher_hedges_total{result=\"won\"} %d\n", doc.HedgesWon)
	fmt.Fprintf(&b, "jord_dispatcher_hedges_total{result=\"wasted\"} %d\n", doc.HedgesWasted)
	metric("jord_dispatcher_dedup_hits_total", "Responses replayed from a worker idempotency cache.", "counter")
	fmt.Fprintf(&b, "jord_dispatcher_dedup_hits_total %d\n", doc.DedupHits)
	metric("jord_dispatcher_unsafe_bad_gateway_total", "Keyless post-delivery failures surfaced as 502.", "counter")
	fmt.Fprintf(&b, "jord_dispatcher_unsafe_bad_gateway_total %d\n", doc.Unsafe502)
	metric("jord_dispatcher_relay_errors_total", "Relay failures after the response head, by failing side.", "counter")
	fmt.Fprintf(&b, "jord_dispatcher_relay_errors_total{side=\"worker\"} %d\n", doc.RelayErrsWorker)
	fmt.Fprintf(&b, "jord_dispatcher_relay_errors_total{side=\"client\"} %d\n", doc.RelayErrsClient)

	metric("jord_dispatcher_worker_outstanding", "Outstanding requests per worker (JBSQ queue).", "gauge")
	for _, ws := range doc.WorkerState {
		fmt.Fprintf(&b, "jord_dispatcher_worker_outstanding{worker=%q} %d\n", ws.Addr, ws.Outstanding)
	}
	metric("jord_dispatcher_worker_bound", "JBSQ outstanding bound per worker.", "gauge")
	for _, ws := range doc.WorkerState {
		fmt.Fprintf(&b, "jord_dispatcher_worker_bound{worker=%q} %d\n", ws.Addr, ws.Bound)
	}
	metric("jord_dispatcher_worker_ready", "1 while the worker is admittable.", "gauge")
	for _, ws := range doc.WorkerState {
		fmt.Fprintf(&b, "jord_dispatcher_worker_ready{worker=%q} %d\n", ws.Addr, b2f(ws.Admittable))
	}
	metric("jord_dispatcher_worker_dispatched_total", "Requests relayed, per worker.", "counter")
	for _, ws := range doc.WorkerState {
		fmt.Fprintf(&b, "jord_dispatcher_worker_dispatched_total{worker=%q} %d\n", ws.Addr, ws.Dispatched)
	}

	metric("jord_cluster_pool_completed_total", "Invocations completed, summed across workers.", "counter")
	fmt.Fprintf(&b, "jord_cluster_pool_completed_total %d\n", doc.Totals.PoolCompleted)
	metric("jord_cluster_pool_shed_total", "Tiered-shedding refusals, summed across workers.", "counter")
	fmt.Fprintf(&b, "jord_cluster_pool_shed_total %d\n", doc.Totals.PoolShed)
	metric("jord_cluster_pool_rejected_total", "External-queue rejections, summed across workers.", "counter")
	fmt.Fprintf(&b, "jord_cluster_pool_rejected_total %d\n", doc.Totals.PoolRejected)
	metric("jord_cluster_inflight", "Admitted in-flight requests, summed across workers.", "gauge")
	fmt.Fprintf(&b, "jord_cluster_inflight %d\n", doc.Totals.Inflight)
	metric("jord_cluster_function_invocations_total", "Completed invocations by function, summed across workers.", "counter")
	for _, f := range doc.Funcs {
		fmt.Fprintf(&b, "jord_cluster_function_invocations_total{fn=%q} %d\n", f.Name, f.Count)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}

// --- admin handlers -------------------------------------------------

func (d *Dispatcher) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(d.workerStatuses())
}

func adminAddr(w http.ResponseWriter, r *http.Request) (string, bool) {
	addr := strings.TrimSpace(r.URL.Query().Get("addr"))
	if addr == "" {
		http.Error(w, "missing ?addr=host:port", http.StatusBadRequest)
		return "", false
	}
	return addr, true
}

func (d *Dispatcher) handleWorkerAdd(w http.ResponseWriter, r *http.Request) {
	addr, ok := adminAddr(w, r)
	if !ok {
		return
	}
	if err := d.AddWorker(addr); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "added %s\n", addr)
}

func (d *Dispatcher) handleWorkerDrain(w http.ResponseWriter, r *http.Request) {
	addr, ok := adminAddr(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("resume") != "" {
		if err := d.ResumeWorker(addr); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "resumed %s\n", addr)
		return
	}
	n, err := d.DrainWorker(addr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "draining %s (%d outstanding)\n", addr, n)
}

func (d *Dispatcher) handleWorkerRemove(w http.ResponseWriter, r *http.Request) {
	addr, ok := adminAddr(w, r)
	if !ok {
		return
	}
	force := r.URL.Query().Get("force") != ""
	if err := d.RemoveWorker(addr, force); err != nil {
		status := http.StatusNotFound
		if strings.Contains(err.Error(), "outstanding") {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	fmt.Fprintf(w, "removed %s\n", addr)
}
