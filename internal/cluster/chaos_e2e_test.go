package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jord/internal/server"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// TestMain doubles as the chaos worker's entry point: the SIGKILL e2e
// re-execs the test binary with JORD_CHAOS_WORKER=1 to get real worker
// PROCESSES it can hard-kill — in-process daemons cannot model a machine
// death, because Go cannot SIGKILL a goroutine.
func TestMain(m *testing.M) {
	if os.Getenv("JORD_CHAOS_WORKER") == "1" {
		runChaosWorker()
		return
	}
	os.Exit(m.Run())
}

// runChaosWorker is a real jordd daemon (idempotency cache on, as
// everywhere) with a side-effect-counting function: "record" bumps a
// worker-local counter per payload id, "dump" reports the counts. The
// counts are the ground truth for duplicate-execution assertions.
func runChaosWorker() {
	cfg := server.DefaultConfig()
	cfg.Pool = pool.Config{Executors: 2, JBSQBound: 4}
	cfg.AdmitTarget = -1
	d := server.New(cfg)
	var mu sync.Mutex
	seen := map[string]int{}
	d.MustRegister("record", func(ctx router.Ctx) ([]byte, error) {
		id := string(ctx.Payload())
		mu.Lock()
		seen[id]++
		mu.Unlock()
		// Long enough that a SIGKILL lands mid-execution for some
		// requests, short enough to keep the run quick.
		time.Sleep(3 * time.Millisecond)
		return []byte("recorded " + id), nil
	})
	d.MustRegister("dump", func(ctx router.Ctx) ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		return json.Marshal(seen)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos worker listen:", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR %s\n", ln.Addr())
	if err := d.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "chaos worker serve:", err)
		os.Exit(1)
	}
}

// startChaosWorkerProc launches one worker subprocess and reads its
// listening address off stdout.
func startChaosWorkerProc(t *testing.T) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "JORD_CHAOS_WORKER=1")
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading worker address: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "ADDR "))
	if addr == "" {
		t.Fatalf("bad worker banner %q", line)
	}
	return cmd, addr
}

// TestE2ESIGKILLWorkerMidLoad is the hard-failure headline: one of three
// worker PROCESSES is SIGKILLed (no drain, no goodbye) under load. The
// cluster must (a) eject it within two health intervals, (b) keep
// client-visible failures bounded (idempotent retries re-place every
// interrupted request), and (c) never duplicate a side effect on the
// surviving workers.
func TestE2ESIGKILLWorkerMidLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos e2e")
	}
	const (
		workers        = 3
		clients        = 8
		perClient      = 50
		healthInterval = 250 * time.Millisecond
	)
	var (
		procs []*exec.Cmd
		addrs []string
	)
	for i := 0; i < workers; i++ {
		cmd, addr := startChaosWorkerProc(t)
		procs = append(procs, cmd)
		addrs = append(addrs, addr)
	}

	d := New(Config{
		Workers:        addrs,
		HealthInterval: healthInterval,
		RequestTimeout: 15 * time.Second,
	})
	front := startFront(t, d, workers)

	var (
		completed atomic.Int64
		failed    atomic.Int64
		killOnce  sync.Once
		killedAt  atomic.Int64 // unix nanos of the SIGKILL
	)
	total := int64(clients * perClient)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := fmt.Sprintf("c%d-%d", c, i)
				resp, err := http.Post(front.URL+"/invoke/record", "text/plain", strings.NewReader(id))
				if err != nil {
					failed.Add(1)
				} else {
					if resp.StatusCode != http.StatusOK {
						failed.Add(1)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if n := completed.Add(1); n == total/4 {
					// A quarter of the way in: hard-kill worker 0. No
					// Shutdown, no drain — the process is simply gone.
					killOnce.Do(func() {
						killedAt.Store(time.Now().UnixNano())
						if err := procs[0].Process.Kill(); err != nil {
							t.Errorf("SIGKILL: %v", err)
						}
					})
				}
			}
		}(c)
	}

	// Ejection watcher: the dead worker must leave the ready set within
	// two health intervals of the kill (passive ejection usually beats
	// the poller by a wide margin — the first broken connection does it).
	ejectDone := make(chan time.Duration, 1)
	go func() {
		for {
			if at := killedAt.Load(); at != 0 {
				doc := d.readyzDocNow()
				if doc.ReadyWorkers <= workers-1 {
					ejectDone <- time.Since(time.Unix(0, at))
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	select {
	case ejectLag := <-ejectDone:
		if ejectLag > 2*healthInterval {
			t.Errorf("ejection took %v, want <= two health intervals (%v)", ejectLag, 2*healthInterval)
		}
	case <-time.After(5 * time.Second):
		t.Error("killed worker was never ejected")
	}

	// Bounded client-visible damage: with idempotent retries, requests
	// interrupted by the kill re-place and succeed; only pathological
	// timing should surface anything, and never more than a handful.
	if f := failed.Load(); f > 3 {
		t.Errorf("%d/%d client-visible failures, want <= 3", f, total)
	}

	// Zero duplicated side effects across the survivors: every recorded
	// id ran exactly once per worker and never on two workers.
	counts := map[string][]int{}
	for _, addr := range addrs[1:] {
		resp, err := http.Post("http://"+addr+"/invoke/dump", "text/plain", nil)
		if err != nil {
			t.Fatalf("dump from survivor %s: %v", addr, err)
		}
		var seen map[string]int
		if err := json.NewDecoder(resp.Body).Decode(&seen); err != nil {
			t.Fatalf("decoding dump: %v", err)
		}
		resp.Body.Close()
		for id, n := range seen {
			counts[id] = append(counts[id], n)
		}
	}
	dups := 0
	for id, ns := range counts {
		if len(ns) > 1 {
			t.Errorf("id %s executed on %d workers", id, len(ns))
			dups++
		}
		for _, n := range ns {
			if n != 1 {
				t.Errorf("id %s executed %d times on one worker", id, n)
				dups++
			}
		}
		if dups > 10 {
			t.Fatal("too many duplicates, stopping")
		}
	}
	if len(counts) == 0 {
		t.Fatal("survivors recorded nothing — load never reached them")
	}
	t.Logf("SIGKILL e2e: %d requests, %d failed, %d ids on survivors, retries=%d unsafeRetries=%d",
		total, failed.Load(), len(counts), d.errRetries.Load(), d.unsafeRetries.Load())
}
