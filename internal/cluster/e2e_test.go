package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jord/internal/server"
	"jord/internal/server/pool"
	"jord/internal/server/router"
)

// startRealWorker boots a real jordd daemon on loopback. Unlike the
// stubs in cluster_test.go this exercises the genuine /readyz, /statsz,
// drain-marked 503s, and graceful drain of the worker gateway.
func startRealWorker(t *testing.T, register func(*server.Daemon)) (*server.Daemon, string, chan error) {
	t.Helper()
	cfg := server.DefaultConfig()
	cfg.Pool = pool.Config{Executors: 2, JBSQBound: 4}
	// Static admission: these tests assert placement behavior, not the
	// workers' AIMD policy (which has its own suite in internal/server).
	cfg.AdmitTarget = -1
	d := server.New(cfg)
	register(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	return d, ln.Addr().String(), serveErr
}

func registerEcho(d *server.Daemon) {
	d.MustRegister("echo", func(ctx router.Ctx) ([]byte, error) {
		return ctx.Payload(), nil
	})
	d.MustRegister("sleep50", func(ctx router.Ctx) ([]byte, error) {
		time.Sleep(50 * time.Millisecond)
		return ctx.Payload(), nil
	})
	d.MustRegister("sleep5", func(ctx router.Ctx) ([]byte, error) {
		time.Sleep(5 * time.Millisecond)
		return ctx.Payload(), nil
	})
}

func shutdownWorker(t *testing.T, d *server.Daemon, serveErr chan error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Errorf("worker shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("worker serve: %v", err)
	}
}

// startFront serves the dispatcher and waits until every worker is
// admitted.
func startFront(t *testing.T, d *Dispatcher, wantReady int) *httptest.Server {
	t.Helper()
	d.Start()
	t.Cleanup(d.Stop)
	front := httptest.NewServer(d.Handler())
	t.Cleanup(front.Close)
	waitReadyWorkers(t, front.URL, wantReady)
	return front
}

func waitReadyWorkers(t *testing.T, frontURL string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(frontURL + "/readyz")
		if err == nil {
			var doc Readyz
			derr := json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if derr == nil && doc.ReadyWorkers == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher never reached %d ready workers", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestE2EKillWorkerMidLoad is the issue's headline scenario: N real
// workers behind the dispatcher, one torn down gracefully mid-load, and
// ZERO lost in-flight requests — every request must come back 200 with
// the right body (drain-marked 503s re-placed, broken connections
// re-sent), never a client-visible transport error or refusal.
func TestE2EKillWorkerMidLoad(t *testing.T) {
	const workers = 3
	var (
		daemons []*server.Daemon
		addrs   []string
		serves  []chan error
	)
	for i := 0; i < workers; i++ {
		d, addr, ch := startRealWorker(t, registerEcho)
		daemons = append(daemons, d)
		addrs = append(addrs, addr)
		serves = append(serves, ch)
	}
	// Workers 1 and 2 shut down at the end; worker 0 dies mid-test.
	t.Cleanup(func() {
		for i := 1; i < workers; i++ {
			shutdownWorker(t, daemons[i], serves[i])
		}
	})

	// Health polling OFF (-1): ejection must happen purely passively, from
	// a request that crossed the drain-marked 503 or the closed socket.
	// With an active poll the dispatcher can eject the dying worker before
	// any placement touches it — a benign ordering, but it makes the
	// re-placement-trace assertion below racy. The active poll path gets
	// its own coverage in TestE2EEjectionAndReadmission.
	disp := New(Config{
		Workers:        addrs,
		HealthInterval: -1,
		RequestTimeout: 20 * time.Second,
	})
	front := startFront(t, disp, workers)

	const (
		clients = 8
		perC    = 60
	)
	client := &http.Client{
		Timeout:   25 * time.Second,
		Transport: &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64},
	}
	var (
		wg        sync.WaitGroup
		failed    atomic.Int64
		completed atomic.Int64
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				payload := fmt.Sprintf("c%d-r%d", c, i)
				// sleep5, not echo: 5ms bodies keep requests in flight on
				// every worker when the kill lands, so the drain window
				// is guaranteed to cross live traffic at any test speed.
				resp, err := client.Post(front.URL+"/invoke/sleep5", "text/plain", bytes.NewReader([]byte(payload)))
				if err != nil {
					t.Errorf("client %d req %d: transport error %v", c, i, err)
					failed.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || string(body) != payload {
					t.Errorf("client %d req %d: lost (%d %q)", c, i, resp.StatusCode, body)
					failed.Add(1)
				}
				completed.Add(1)
			}
		}(c)
	}

	// Once the load is established — a quarter of it done, three quarters
	// still to come — take worker 0 away GRACEFULLY: its gateway flips to
	// drain-marked 503s, in-flight invocations finish, the listener
	// closes. The dispatcher must ride through on the marker (re-place)
	// and then on connection errors (eject + re-send).
	for completed.Load() < clients*perC/4 {
		time.Sleep(time.Millisecond)
	}
	shutdownWorker(t, daemons[0], serves[0])
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d requests lost in-flight", n, clients*perC)
	}

	// The dead worker must end up ejected, leaving the fleet at N-1.
	waitReadyWorkers(t, front.URL, workers-1)

	// And the re-placement machinery must actually have fired. With the
	// active health poll disabled this is deterministic: the ejection
	// asserted just above can ONLY have come from a passive path, and
	// both passive paths (drain-marked 503, transport error) bump a
	// retry counter atomically with the eject.
	if disp.drainRetries.Load()+disp.errRetries.Load() == 0 {
		t.Error("worker death left no re-placement trace; kill missed the load window")
	}
}

// TestE2EEjectionAndReadmission: a real worker that starts draining is
// ejected by the health loop (visible in the dispatcher's /readyz),
// traffic flows around it, and clearing the drain re-admits it.
func TestE2EEjectionAndReadmission(t *testing.T) {
	d1, addr1, ch1 := startRealWorker(t, registerEcho)
	d2, addr2, ch2 := startRealWorker(t, registerEcho)
	t.Cleanup(func() {
		shutdownWorker(t, d1, ch1)
		shutdownWorker(t, d2, ch2)
	})

	disp := New(Config{
		Workers:        []string{addr1, addr2},
		HealthInterval: 25 * time.Millisecond,
	})
	front := startFront(t, disp, 2)

	// Worker 1 starts draining (as jordd does at the start of Shutdown):
	// its /readyz flips to 503 {draining:true} and the health loop must
	// hold it out.
	d1.Gateway().SetDraining(true)
	waitReadyWorkers(t, front.URL, 1)

	// Traffic keeps flowing — entirely via worker 2.
	before := disp.find(addr2).dispatched.Load()
	for i := 0; i < 10; i++ {
		resp, err := http.Post(front.URL+"/invoke/echo", "text/plain", bytes.NewReader([]byte("x")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d with one worker ejected", i, resp.StatusCode)
		}
	}
	if got := disp.find(addr2).dispatched.Load() - before; got != 10 {
		t.Fatalf("healthy worker served %d of 10", got)
	}

	// Recovery: the worker stops draining and the health loop re-admits
	// it without operator action.
	d1.Gateway().SetDraining(false)
	waitReadyWorkers(t, front.URL, 2)
}

// TestE2ESaturationPassthrough: when every REAL worker sheds (tiny
// admission cap, slow function, deep burst), the worker 429s must reach
// the client verbatim, Retry-After included — the dispatcher adds no
// interpretation of its own.
func TestE2ESaturationPassthrough(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Pool = pool.Config{Executors: 1, JBSQBound: 1}
	cfg.MaxInflight = 1
	cfg.AdmitTarget = -1
	d := server.New(cfg)
	registerEcho(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()
	t.Cleanup(func() { shutdownWorker(t, d, serveErr) })

	// Dispatcher bound far above the worker's cap, so saturation hits the
	// WORKER's admission first and the verdict flows back through.
	disp := New(Config{
		Workers:        []string{ln.Addr().String()},
		Bound:          64,
		HealthInterval: 25 * time.Millisecond,
	})
	front := startFront(t, disp, 1)

	var (
		wg       sync.WaitGroup
		got429   atomic.Int64
		badHint  atomic.Int64
		badOther atomic.Int64
	)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(front.URL+"/invoke/sleep50", "text/plain", bytes.NewReader([]byte("x")))
				if err != nil {
					badOther.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					got429.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						badHint.Add(1)
					}
				default:
					badOther.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got429.Load() == 0 {
		t.Fatal("burst never saturated the worker; passthrough untested")
	}
	if n := badHint.Load(); n != 0 {
		t.Fatalf("%d shed responses missing Retry-After", n)
	}
	if n := badOther.Load(); n != 0 {
		t.Fatalf("%d unexpected outcomes under saturation", n)
	}
	if disp.passthrough.Load() == 0 {
		t.Fatal("dispatcher recorded no passthrough sheds")
	}
}

// TestE2EDrainReplaceWorkflow drives the operator workflow end to end:
// drain a worker while slow requests are in flight on it, watch its
// outstanding hit zero WITHOUT any request being dropped, remove it, and
// add a replacement that then takes traffic.
func TestE2EDrainReplaceWorkflow(t *testing.T) {
	d1, addr1, ch1 := startRealWorker(t, registerEcho)
	d2, addr2, ch2 := startRealWorker(t, registerEcho)
	d3, addr3, ch3 := startRealWorker(t, registerEcho)
	t.Cleanup(func() {
		shutdownWorker(t, d1, ch1)
		shutdownWorker(t, d2, ch2)
		shutdownWorker(t, d3, ch3)
	})

	// Only workers 1 and 2 start in the set; 3 is the replacement.
	disp := New(Config{
		Workers:        []string{addr1, addr2},
		HealthInterval: 25 * time.Millisecond,
	})
	front := startFront(t, disp, 2)

	// Slow requests in flight across both workers.
	var wg sync.WaitGroup
	var lost atomic.Int64
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(front.URL+"/invoke/sleep50", "text/plain", bytes.NewReader([]byte("inflight")))
			if err != nil {
				lost.Add(1)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || string(body) != "inflight" {
				lost.Add(1)
			}
		}()
	}

	// Drain worker 1 while those are running: placement stops, but
	// nothing is cancelled.
	if _, err := disp.DrainWorker(addr1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := lost.Load(); n != 0 {
		t.Fatalf("%d in-flight requests lost across drain", n)
	}

	// Outstanding drains to zero; then removal succeeds without force.
	w1 := disp.find(addr1)
	deadline := time.Now().Add(5 * time.Second)
	for w1.outstanding.Load() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker 1 still has %d outstanding after drain", w1.outstanding.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := disp.RemoveWorker(addr1, false); err != nil {
		t.Fatalf("remove after drain: %v", err)
	}

	// Replacement joins and serves. Sequential probes would never reach
	// it — JBSQ ties (0 outstanding everywhere) break toward the earlier
	// worker — so drive CONCURRENT slow requests: with worker 2's queue
	// occupied, the shortest-queue scan must spill onto worker 3.
	if err := disp.AddWorker(addr3); err != nil {
		t.Fatal(err)
	}
	waitReadyWorkers(t, front.URL, 2)
	w3 := disp.find(addr3)
	deadline = time.Now().Add(10 * time.Second)
	for w3.dispatched.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replacement worker never received traffic")
		}
		var batch sync.WaitGroup
		for c := 0; c < 8; c++ {
			batch.Add(1)
			go func() {
				defer batch.Done()
				resp, err := http.Post(front.URL+"/invoke/sleep50", "text/plain", bytes.NewReader([]byte("x")))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}()
		}
		batch.Wait()
	}
}

// TestE2EAggregatedStats: the dispatcher's /statsz must sum real worker
// pool counters and function totals across the fleet.
func TestE2EAggregatedStats(t *testing.T) {
	d1, addr1, ch1 := startRealWorker(t, registerEcho)
	d2, addr2, ch2 := startRealWorker(t, registerEcho)
	t.Cleanup(func() {
		shutdownWorker(t, d1, ch1)
		shutdownWorker(t, d2, ch2)
	})
	disp := New(Config{
		Workers:        []string{addr1, addr2},
		HealthInterval: 25 * time.Millisecond,
	})
	front := startFront(t, disp, 2)

	const n = 40
	for i := 0; i < n; i++ {
		resp, err := http.Post(front.URL+"/invoke/echo", "text/plain", bytes.NewReader([]byte("x")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(front.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Statsz
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Dispatched != n {
		t.Fatalf("dispatched = %d, want %d", doc.Dispatched, n)
	}
	if doc.StatszWorkers != 2 {
		t.Fatalf("statsz_workers = %d, want 2", doc.StatszWorkers)
	}
	if doc.Totals.PoolCompleted < n {
		t.Fatalf("pool_completed total = %d, want >= %d", doc.Totals.PoolCompleted, n)
	}
	var echo *FuncTotals
	for i := range doc.Funcs {
		if doc.Funcs[i].Name == "echo" {
			echo = &doc.Funcs[i]
		}
	}
	if echo == nil || echo.Count < n {
		t.Fatalf("aggregated echo totals missing or short: %+v", doc.Funcs)
	}

	// Both REAL workers should have taken a share under JBSQ: with 40
	// sequential requests and empty queues the tie-break alternates as
	// outstanding flips 0/1... at minimum neither worker can have taken
	// everything while the other took none AND both be admittable; assert
	// the aggregate saw both via /metrics' per-worker series instead.
	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"jord_dispatcher_up 1",
		"jord_dispatcher_workers 2",
		"jord_dispatcher_ready_workers 2",
		fmt.Sprintf("jord_dispatcher_dispatched_total %d", n),
		"jord_cluster_function_invocations_total{fn=\"echo\"}",
	} {
		if !bytes.Contains(mb, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
