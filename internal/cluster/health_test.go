package cluster

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestStaleHealthVerdictDiscarded is the regression test for the
// poll-vs-passive-ejection race: a /readyz poll that began before the
// worker dropped a connection must not re-admit it on its stale "ready"
// answer.
func TestStaleHealthVerdictDiscarded(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ready":true,"executors":2,"jbsq_bound":4}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	addr := strings.TrimPrefix(srv.URL, "http://")

	// Polling stays disabled (newTestDispatcher defaults HealthInterval to
	// -1); the test drives poll by hand for determinism.
	d, _ := newTestDispatcher(t, Config{Workers: []string{addr}, Bound: 4})
	wk := d.snapshot()[0]

	pollDone := make(chan struct{})
	go func() {
		d.poll(wk)
		close(pollDone)
	}()
	<-entered
	// The worker drops a connection while the poll is parked in its
	// handler: passive ejection, epoch bump.
	wk.eject(errors.New("connection reset by peer"))
	close(release)
	<-pollDone

	if !wk.ejected.Load() {
		t.Fatal("stale ready verdict re-admitted a just-ejected worker")
	}
	wk.mu.Lock()
	lastErr := wk.lastErr
	wk.mu.Unlock()
	if !strings.Contains(lastErr, "stale") {
		t.Fatalf("lastErr = %q, want the stale-verdict marker", lastErr)
	}

	// The next poll starts AFTER the ejection, so its epoch matches and
	// its ready verdict re-admits.
	d.poll(wk)
	if wk.ejected.Load() {
		t.Fatal("fresh ready verdict should re-admit the worker")
	}
}

// TestEjectVerdictAppliesDespiteEpoch: only READY verdicts are subject to
// the staleness check — an eject verdict is always safe to apply.
func TestEjectVerdictAppliesDespiteEpoch(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"ready":false,"draining":true}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	addr := strings.TrimPrefix(srv.URL, "http://")

	d, _ := newTestDispatcher(t, Config{Workers: []string{addr}, Bound: 4})
	wk := d.snapshot()[0]
	// Stale epoch on purpose: bump after capturing nothing.
	wk.ejectEpoch.Add(3)
	d.poll(wk)
	if !wk.ejected.Load() {
		t.Fatal("not-ready verdict must eject regardless of epoch")
	}
}

// TestReadyzBodyBounded: a worker answering /readyz with an unbounded
// body must be treated as broken (ejected), not buffered wholesale.
func TestReadyzBodyBounded(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ready":true`)
		pad := strings.Repeat(" ", 64<<10)
		for i := 0; i < 8; i++ { // ~512 KiB of padding, over maxReadyzBody
			io.WriteString(w, pad)
		}
		io.WriteString(w, `}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	addr := strings.TrimPrefix(srv.URL, "http://")

	d, _ := newTestDispatcher(t, Config{Workers: []string{addr}, Bound: 4})
	wk := d.snapshot()[0]
	d.poll(wk)
	if !wk.ejected.Load() {
		t.Fatal("oversized /readyz should eject, not re-admit")
	}
	wk.mu.Lock()
	lastErr := wk.lastErr
	wk.mu.Unlock()
	if !strings.Contains(lastErr, "decoding /readyz") {
		t.Fatalf("lastErr = %q, want a decode error", lastErr)
	}
}
