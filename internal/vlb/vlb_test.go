package vlb

import (
	"testing"

	"jord/internal/mem/vmatable"
)

func mkEntry(class int, index uint64) Entry {
	return Entry{
		Class:   class,
		Index:   index,
		VTEAddr: uint64(class)*64 + index*26*64,
		VTE:     &vmatable.VTE{Bound: 128},
	}
}

func TestVLBHitMiss(t *testing.T) {
	v := NewVLB(4)
	if _, ok := v.Lookup(0, 1); ok {
		t.Fatal("hit in empty VLB")
	}
	v.Insert(mkEntry(0, 1))
	if _, ok := v.Lookup(0, 1); !ok {
		t.Fatal("miss after insert")
	}
	if v.Hits != 1 || v.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1,1", v.Hits, v.Misses)
	}
}

func TestVLBLRUEviction(t *testing.T) {
	v := NewVLB(2)
	v.Insert(mkEntry(0, 1))
	v.Insert(mkEntry(0, 2))
	v.Lookup(0, 1) // make (0,2) the LRU
	v.Insert(mkEntry(0, 3))
	if _, ok := v.Lookup(0, 2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := v.Lookup(0, 1); !ok {
		t.Fatal("MRU entry evicted")
	}
	if v.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", v.Evictions)
	}
}

func TestVLBInsertUpdatesInPlace(t *testing.T) {
	v := NewVLB(2)
	v.Insert(mkEntry(0, 1))
	e := mkEntry(0, 1)
	e.Priv = true
	v.Insert(e)
	if v.Len() != 1 {
		t.Fatalf("len = %d, want 1 (update in place)", v.Len())
	}
	got, _ := v.Lookup(0, 1)
	if !got.Priv {
		t.Fatal("update lost")
	}
}

func TestVLBInvalidateByVTEAddr(t *testing.T) {
	v := NewVLB(4)
	e := mkEntry(1, 7)
	v.Insert(e)
	v.Insert(mkEntry(2, 9))
	if !v.InvalidateVTE(e.VTEAddr) {
		t.Fatal("invalidate missed a cached entry")
	}
	if _, ok := v.Lookup(1, 7); ok {
		t.Fatal("invalidated entry still present")
	}
	if _, ok := v.Lookup(2, 9); !ok {
		t.Fatal("unrelated entry dropped")
	}
	if v.InvalidateVTE(0xdead) {
		t.Fatal("invalidate of absent tag reported true")
	}
}

func TestVLBMinimumCapacityOne(t *testing.T) {
	v := NewVLB(0)
	if v.Capacity() != 1 {
		t.Fatalf("capacity = %d, want clamped to 1", v.Capacity())
	}
	v.Insert(mkEntry(0, 1))
	v.Insert(mkEntry(0, 2))
	if v.Len() != 1 {
		t.Fatalf("len = %d, want 1", v.Len())
	}
}

func TestVLBInvalidateAll(t *testing.T) {
	v := NewVLB(4)
	v.Insert(mkEntry(0, 1))
	v.Insert(mkEntry(0, 2))
	v.InvalidateAll()
	if v.Len() != 0 {
		t.Fatal("entries survived InvalidateAll")
	}
	if v.Invals != 2 {
		t.Fatalf("invals = %d, want 2", v.Invals)
	}
}
