package vlb

import (
	"testing"

	"jord/internal/mem/va"
	"jord/internal/mem/vmatable"
	"jord/internal/sim/memmodel"
	"jord/internal/sim/topo"
)

// TestVictimCachePessimism covers the §4.2 corner case: a VLB can evict a
// translation while the VTE line stays cached, and the core may later
// reinstall the translation "without informing VTD to track it". The
// model (like the paper's hardware) stays pessimistic: sharer sets only
// shrink on shootdowns, so a writer still invalidates the reinstalling
// core.
func TestVictimCachePessimism(t *testing.T) {
	m := topo.MustMachine(topo.QFlex32())
	mm := memmodel.New(m)
	tbl, err := vmatable.New(va.Default(), 0x4000_0000_0000, vmatable.DefaultTableBytes)
	if err != nil {
		t.Fatal(err)
	}
	// A 1-entry D-VLB guarantees evictions.
	s := NewSubsystem(m, mm, tbl, Config{IVLBEntries: 1, DVLBEntries: 1})

	mk := func(class int, index uint64) uint64 {
		vte := &vmatable.VTE{Bound: 128}
		vte.SetPerm(1, vmatable.PermRW)
		if err := tbl.Insert(class, index, vte); err != nil {
			t.Fatal(err)
		}
		return tbl.Enc.Encode(class, index)
	}
	a1 := mk(0, 1)
	a2 := mk(0, 2)

	// Core 5 caches a1, then evicts it by touching a2, then silently
	// re-installs a1 from its (still warm) L1.
	s.Access(5, 1, a1, vmatable.PermR, false, false)
	s.Access(5, 1, a2, vmatable.PermR, false, false) // evicts a1 from the 1-entry VLB
	s.Access(5, 1, a1, vmatable.PermR, false, false) // reinstall

	// Despite the eviction dance, the VTD still counts core 5 as a sharer
	// of a1: a writer's shootdown must reach it.
	sharers := s.VTD.Sharers(tbl.VTEAddr(0, 1), 0)
	found := false
	for _, c := range sharers {
		if c == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("VTD lost a sharer across VLB eviction/reinstall (victim-cache pessimism violated)")
	}
	_, res := s.VTEWrite(0, 0, 1)
	if res.Sharers == 0 {
		t.Fatal("shootdown skipped the reinstalled sharer")
	}
	if _, ok := s.Cores[5].DVLB.Lookup(0, 1); ok {
		t.Fatal("reinstalled translation survived the shootdown")
	}
}

// TestGrantOnlyWritePreservesRemoteEntries verifies the monotonic-grant
// optimization: adding a PD's permission does not invalidate other cores'
// cached translations (their decisions are unaffected), while a
// revocation does.
func TestGrantOnlyWritePreservesRemoteEntries(t *testing.T) {
	m := topo.MustMachine(topo.QFlex32())
	mm := memmodel.New(m)
	tbl, _ := vmatable.New(va.Default(), 0x4000_0000_0000, vmatable.DefaultTableBytes)
	s := NewSubsystem(m, mm, tbl, DefaultConfig())

	vte := &vmatable.VTE{Bound: 128}
	vte.SetPerm(1, vmatable.PermRW)
	if err := tbl.Insert(0, 1, vte); err != nil {
		t.Fatal(err)
	}
	addr := tbl.Enc.Encode(0, 1)

	s.Access(7, 1, addr, vmatable.PermR, false, false) // core 7 caches it
	if s.Cores[7].DVLB.Len() != 1 {
		t.Fatal("setup failed")
	}

	// Grant-only write from core 0: core 7's entry survives.
	s.VTEWriteGrant(0, 0, 1)
	if s.Cores[7].DVLB.Len() != 1 {
		t.Fatal("grant-only write invalidated a remote VLB entry")
	}

	// Revoking write from core 0: core 7's entry must go.
	s.VTEWrite(0, 0, 1)
	if s.Cores[7].DVLB.Len() != 0 {
		t.Fatal("revoking write left a stale remote VLB entry")
	}
}

// TestShootdownCrossSocketLatency checks the Figure 14 mechanism: a
// shootdown reaching a sharer on the other socket pays the inter-socket
// link both ways.
func TestShootdownCrossSocketLatency(t *testing.T) {
	m := topo.MustMachine(topo.DualSocket256())
	mm := memmodel.New(m)
	tbl, _ := vmatable.New(va.Default(), 0x4000_0000_0000, vmatable.DefaultTableBytes)
	s := NewSubsystem(m, mm, tbl, DefaultConfig())
	vteAddr := tbl.VTEAddr(0, 1)

	s.VTD.RegisterSharer(vteAddr, 1) // same socket
	local := s.VTD.Shootdown(0, vteAddr, func(topo.CoreID) {})

	s.VTD.RegisterSharer(vteAddr, 200) // other socket
	remote := s.VTD.Shootdown(0, vteAddr, func(topo.CoreID) {})

	crossing := 2 * m.Cfg.NSToCycles(m.Cfg.InterSocketNS)
	if remote.Latency < local.Latency+crossing/2 {
		t.Fatalf("cross-socket shootdown %d cycles should far exceed local %d",
			remote.Latency, local.Latency)
	}
}
