// Package vlb models Jord's user-level translation hardware (paper §4):
// per-core instruction and data virtual lookaside buffers (I/D-VLBs) that
// cache VMA translations, the VMA table walker (VTW) that services misses
// with a single position computation plus one cache access, and the
// virtual translation directory (VTD) that tracks VLB sharers per VTE and
// performs hardware VLB shootdowns by piggybacking a T bit on ordinary
// coherence messages (§4.2, Figure 7).
package vlb

import (
	"jord/internal/mem/vmatable"
)

// vmaKey identifies a VMA by its plain-list coordinates.
type vmaKey struct {
	class int
	index uint64
}

// Entry is one VLB entry: a cached VMA translation tagged with its VTE
// address so coherence invalidations (which carry VTE addresses) can be
// matched against it (§4.2).
type Entry struct {
	Class   int
	Index   uint64
	VTEAddr uint64
	VTE     *vmatable.VTE
	Priv    bool // cached P bit, propagated down the pipeline (§4.3)
}

// VLB is a fully associative, LRU virtual lookaside buffer (Table 2: the
// I/D-VLBs are 16-entry fully associative; Figure 12 explores 1-16).
type VLB struct {
	capacity int
	entries  []Entry // LRU order: most recently used last

	Hits      uint64
	Misses    uint64
	Evictions uint64
	Invals    uint64
}

// NewVLB returns a VLB with the given entry count (minimum 1).
func NewVLB(capacity int) *VLB {
	if capacity < 1 {
		capacity = 1
	}
	return &VLB{capacity: capacity}
}

// Capacity returns the configured entry count.
func (v *VLB) Capacity() int { return v.capacity }

// Len returns the number of live entries.
func (v *VLB) Len() int { return len(v.entries) }

// Lookup returns the cached entry for a VMA, refreshing its LRU position.
func (v *VLB) Lookup(class int, index uint64) (Entry, bool) {
	for i := range v.entries {
		if v.entries[i].Class == class && v.entries[i].Index == index {
			e := v.entries[i]
			v.entries = append(append(v.entries[:i:i], v.entries[i+1:]...), e)
			v.Hits++
			return e, true
		}
	}
	v.Misses++
	return Entry{}, false
}

// Insert caches a translation, evicting the LRU entry when full. A VLB
// eviction does not notify the VTD (the coherence directory acts as a
// victim cache for it, §4.2), so the VTD's sharer sets stay pessimistic.
func (v *VLB) Insert(e Entry) {
	for i := range v.entries {
		if v.entries[i].Class == e.Class && v.entries[i].Index == e.Index {
			v.entries[i] = e
			return
		}
	}
	if len(v.entries) >= v.capacity {
		copy(v.entries, v.entries[1:])
		v.entries = v.entries[:len(v.entries)-1]
		v.Evictions++
	}
	v.entries = append(v.entries, e)
}

// InvalidateVTE drops any entry whose VTE-address tag matches an incoming
// T-bit invalidation, reporting whether one was dropped.
func (v *VLB) InvalidateVTE(vteAddr uint64) bool {
	for i := range v.entries {
		if v.entries[i].VTEAddr == vteAddr {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			v.Invals++
			return true
		}
	}
	return false
}

// InvalidateAll flushes the VLB (context switch of the whole process).
func (v *VLB) InvalidateAll() {
	v.Invals += uint64(len(v.entries))
	v.entries = v.entries[:0]
}
