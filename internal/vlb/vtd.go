package vlb

import (
	"sort"

	"jord/internal/sim/engine"
	"jord/internal/sim/memmodel"
	"jord/internal/sim/topo"
)

// VTD is the virtual translation directory (§4.2): a structure co-located
// with the LLC slices that tracks, per VTE address, which cores' VLBs may
// hold the corresponding translation. On a VTE write it generates T-bit
// invalidation messages to all sharers in parallel; the shootdown
// completes when the farthest sharer acks.
//
// The model is deliberately pessimistic in the same way the paper's
// hardware is: VLB evictions do not remove sharers (the coherence
// directory acts as a victim cache for the VTD), so sharer sets only
// shrink on shootdowns.
type VTD struct {
	mm *memmodel.Model

	sharers map[uint64]map[topo.CoreID]bool // VTE addr -> sharer set
	// l1owner tracks which core last wrote each VTE cache line, to decide
	// whether a walker fetch is an L1 hit, a cache-to-cache transfer, or
	// an LLC hit.
	l1owner map[uint64]topo.CoreID

	Registrations uint64
	Shootdowns    uint64
	InvalsSent    uint64
}

// NewVTD returns an empty directory over the given timing model.
func NewVTD(mm *memmodel.Model) *VTD {
	return &VTD{
		mm:      mm,
		sharers: make(map[uint64]map[topo.CoreID]bool),
		l1owner: make(map[uint64]topo.CoreID),
	}
}

// RegisterSharer records that core's VLB now holds the translation at
// vteAddr (a T-bit read reached the directory).
func (d *VTD) RegisterSharer(vteAddr uint64, core topo.CoreID) {
	set := d.sharers[vteAddr]
	if set == nil {
		set = make(map[topo.CoreID]bool)
		d.sharers[vteAddr] = set
	}
	if !set[core] {
		set[core] = true
		d.Registrations++
	}
}

// Sharers returns the sharer set for vteAddr in deterministic (sorted)
// order, excluding the given core.
func (d *VTD) Sharers(vteAddr uint64, except topo.CoreID) []topo.CoreID {
	set := d.sharers[vteAddr]
	if len(set) == 0 {
		return nil
	}
	out := make([]topo.CoreID, 0, len(set))
	for c := range set {
		if c != except {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LastWriter returns the core whose L1 holds the VTE line dirty, if any.
func (d *VTD) LastWriter(vteAddr uint64) (topo.CoreID, bool) {
	c, ok := d.l1owner[vteAddr]
	return c, ok
}

// RecordWriter notes that core now owns the VTE line dirty in its L1.
func (d *VTD) RecordWriter(vteAddr uint64, core topo.CoreID) {
	d.l1owner[vteAddr] = core
}

// ShootdownResult describes one hardware VLB shootdown.
type ShootdownResult struct {
	Latency engine.Time
	Sharers int // remote VLBs invalidated
	Local   bool
}

// Shootdown performs the write-triggered invalidation protocol for
// vteAddr initiated by writer: if no remote core shares the translation
// and the writer owns the line, only a local VLB invalidation happens (no
// coherence traffic, §4.2); otherwise the VTD fans out T-bit
// invalidations in parallel and the latency is gated by the farthest
// sharer. invalidate is called for every remote sharer so the caller can
// drop the corresponding VLB entries.
func (d *VTD) Shootdown(writer topo.CoreID, vteAddr uint64, invalidate func(topo.CoreID)) ShootdownResult {
	remote := d.Sharers(vteAddr, writer)
	owner, hasOwner := d.l1owner[vteAddr]

	if len(remote) == 0 && (!hasOwner || owner == writer) {
		// Write hits a privately held line: local VLB invalidation only.
		d.resetAfterWrite(vteAddr, writer)
		return ShootdownResult{Latency: d.mm.L1Hit(), Sharers: 0, Local: true}
	}

	lat := d.mm.UpgradeWrite(writer, remote, vteAddr/64)
	for _, c := range remote {
		invalidate(c)
	}
	d.InvalsSent += uint64(len(remote))
	d.Shootdowns++
	d.resetAfterWrite(vteAddr, writer)
	return ShootdownResult{Latency: lat, Sharers: len(remote)}
}

// resetAfterWrite collapses the sharer set to the writer and marks it the
// dirty owner of the line.
func (d *VTD) resetAfterWrite(vteAddr uint64, writer topo.CoreID) {
	set := d.sharers[vteAddr]
	if set == nil {
		set = make(map[topo.CoreID]bool)
		d.sharers[vteAddr] = set
	} else {
		clear(set)
	}
	set[writer] = true
	d.l1owner[vteAddr] = writer
}

// Forget drops all state for a VTE (its VMA was deleted and the slot
// reused later gets a fresh set).
func (d *VTD) Forget(vteAddr uint64) {
	delete(d.sharers, vteAddr)
	delete(d.l1owner, vteAddr)
}
