package vlb

import (
	"jord/internal/mem/vmatable"
	"jord/internal/sim/engine"
	"jord/internal/sim/memmodel"
	"jord/internal/sim/topo"
)

// walkAddrCalcCycles is the VTW's position computation: shift/mask the VA,
// scale by the interleaving function, add the table base. It is a fixed-
// function FSM, so its latency does not scale with the core's IPC — Table 4
// reports identical VMA lookup latency (2 ns) on the simulator and the FPGA
// ("raw hardware latencies are identical between the two models").
const walkAddrCalcCycles = 6

// l1VTELines approximates how many VTE cache lines a core's L1D retains;
// walker fetches within this working set hit L1 (the paper's 2 ns common
// case).
const l1VTELines = 256

// Core bundles one core's translation structures.
type Core struct {
	ID   topo.CoreID
	IVLB *VLB
	DVLB *VLB

	// l1 is an LRU set of VTE addresses resident in this core's L1D.
	l1      map[uint64]int // addr -> LRU tick
	l1tick  int
	l1limit int
}

func newCore(id topo.CoreID, ivlbEntries, dvlbEntries int) *Core {
	return &Core{
		ID:      id,
		IVLB:    NewVLB(ivlbEntries),
		DVLB:    NewVLB(dvlbEntries),
		l1:      make(map[uint64]int),
		l1limit: l1VTELines,
	}
}

func (c *Core) l1Contains(addr uint64) bool {
	_, ok := c.l1[addr]
	return ok
}

func (c *Core) l1Touch(addr uint64) {
	c.l1tick++
	c.l1[addr] = c.l1tick
	if len(c.l1) > c.l1limit {
		// Evict the stalest line.
		var victim uint64
		best := 1 << 62
		for a, tick := range c.l1 {
			if tick < best {
				best = tick
				victim = a
			}
		}
		delete(c.l1, victim)
	}
}

// Config selects VLB sizes (Figure 12's sensitivity knobs).
type Config struct {
	IVLBEntries int
	DVLBEntries int
}

// DefaultConfig is Table 2's 16-entry fully associative I/D-VLBs.
func DefaultConfig() Config { return Config{IVLBEntries: 16, DVLBEntries: 16} }

// Subsystem is the machine-wide translation hardware: per-core VLBs, the
// shared VMA table, and the VTD.
type Subsystem struct {
	M     *topo.Machine
	MM    *memmodel.Model
	Table *vmatable.Table
	VTD   *VTD
	Cores []*Core

	WalkCount uint64 // VTW activations (VLB misses)
}

// NewSubsystem builds the translation hardware for machine m over table t.
func NewSubsystem(m *topo.Machine, mm *memmodel.Model, t *vmatable.Table, cfg Config) *Subsystem {
	s := &Subsystem{
		M:     m,
		MM:    mm,
		Table: t,
		VTD:   NewVTD(mm),
	}
	n := m.Cfg.TotalCores()
	s.Cores = make([]*Core, n)
	for i := 0; i < n; i++ {
		s.Cores[i] = newCore(topo.CoreID(i), cfg.IVLBEntries, cfg.DVLBEntries)
	}
	return s
}

// fetchVTE returns the latency of the walker's single memory access for a
// VTE line, using the VTD's writer tracking to decide between L1 hit,
// cache-to-cache transfer, and LLC hit.
func (s *Subsystem) fetchVTE(c *Core, vteAddr uint64) engine.Time {
	var lat engine.Time
	switch {
	case c.l1Contains(vteAddr):
		lat = s.MM.L1Hit()
	default:
		if owner, ok := s.VTD.LastWriter(vteAddr); ok && owner != c.ID {
			lat = s.MM.RemoteOwnerHit(c.ID, owner, vteAddr/64)
		} else {
			lat = s.MM.LLCHit(c.ID, vteAddr/64)
		}
	}
	c.l1Touch(vteAddr)
	return lat
}

// Walk performs a VTW traversal for (class, index) on core: position
// computation plus one VTE fetch. It registers the core as a VTD sharer
// (the fetch carried the T bit) and fills the chosen VLB. The returned
// VTE is nil when the slot is empty (translation fault).
func (s *Subsystem) Walk(core topo.CoreID, class int, index uint64, instr bool) (engine.Time, *vmatable.VTE) {
	c := s.Cores[core]
	s.WalkCount++
	vteAddr := s.Table.VTEAddr(class, index)
	lat := engine.Time(walkAddrCalcCycles) + s.fetchVTE(c, vteAddr)
	vte := s.Table.Get(class, index)
	if vte == nil {
		return lat, nil
	}
	s.VTD.RegisterSharer(vteAddr, core)
	e := Entry{Class: class, Index: index, VTEAddr: vteAddr, VTE: vte, Priv: vte.Priv}
	if instr {
		c.IVLB.Insert(e)
	} else {
		c.DVLB.Insert(e)
	}
	return lat, vte
}

// Access models one load/store/fetch by a PD on a core: VLB lookup (free
// on a hit — translation overlaps the L1 pipeline), VTW walk on a miss,
// then the permission and privilege checks of §3.2/§4.3.
//
// privileged reports whether the executing code is itself covered by a
// privileged VMA (the instruction stream's P bit); accesses to privileged
// VMAs from unprivileged code fault regardless of PD permissions.
func (s *Subsystem) Access(core topo.CoreID, pd vmatable.PDID, addr uint64, need vmatable.Perm, instr, privileged bool) (engine.Time, vmatable.FaultKind) {
	c := s.Cores[core]
	d, ok := s.Table.Enc.Decode(addr)
	if !ok {
		// Outside the Jord region: the conventional TLB path serves it.
		return 0, vmatable.FaultUnmapped
	}
	buf := c.DVLB
	if instr {
		buf = c.IVLB
	}
	var lat engine.Time
	entry, hit := buf.Lookup(d.Class, d.Index)
	var vte *vmatable.VTE
	if hit {
		vte = entry.VTE
	} else {
		var wlat engine.Time
		wlat, vte = s.Walk(core, d.Class, d.Index, instr)
		lat += wlat
		if vte == nil {
			return lat, vmatable.FaultUnmapped
		}
	}
	if d.Offset >= vte.Bound {
		return lat, vmatable.FaultUnmapped
	}
	if vte.Priv && !privileged {
		return lat, vmatable.FaultPrivilege
	}
	perm, held, _ := vte.PermFor(pd)
	if !held || !perm.Has(need) {
		return lat, vmatable.FaultPermission
	}
	return lat, vmatable.FaultNone
}

// VTEWrite models PrivLib mutating the VTE of (class, index) from core:
// the store itself plus the T-bit shootdown protocol. The VLBs of all
// remote sharers are invalidated; so is the local one (its cached copy is
// stale). It returns the store+shootdown latency and the shootdown
// details for instrumentation.
func (s *Subsystem) VTEWrite(core topo.CoreID, class int, index uint64) (engine.Time, ShootdownResult) {
	vteAddr := s.Table.VTEAddr(class, index)
	c := s.Cores[core]
	res := s.VTD.Shootdown(core, vteAddr, func(victim topo.CoreID) {
		vc := s.Cores[victim]
		vc.IVLB.InvalidateVTE(vteAddr)
		vc.DVLB.InvalidateVTE(vteAddr)
	})
	c.IVLB.InvalidateVTE(vteAddr)
	c.DVLB.InvalidateVTE(vteAddr)
	c.l1Touch(vteAddr)
	return res.Latency, res
}

// VTEWriteGrant models a permission-granting VTE write. Grants are
// monotonic: a remote core's cached copy still makes correct decisions for
// the PDs it is executing (the new PD has never run there), so no remote
// invalidation is needed — only the local copy is refreshed and the line
// is fetched for writing. Revocations and deletions must use VTEWrite.
func (s *Subsystem) VTEWriteGrant(core topo.CoreID, class int, index uint64) engine.Time {
	vteAddr := s.Table.VTEAddr(class, index)
	c := s.Cores[core]
	var lat engine.Time
	if owner, ok := s.VTD.LastWriter(vteAddr); ok && owner != core {
		lat = s.MM.RemoteOwnerHit(core, owner, vteAddr/64)
	} else if c.l1Contains(vteAddr) {
		lat = s.MM.L1Hit()
	} else {
		lat = s.MM.LLCHit(core, vteAddr/64)
	}
	c.IVLB.InvalidateVTE(vteAddr)
	c.DVLB.InvalidateVTE(vteAddr)
	c.l1Touch(vteAddr)
	s.VTD.RecordWriter(vteAddr, core)
	s.VTD.RegisterSharer(vteAddr, core)
	return lat
}

// VTEDelete is VTEWrite for a VMA being destroyed: same shootdown, plus
// the VTD forgets the entry so a reused slot starts clean.
func (s *Subsystem) VTEDelete(core topo.CoreID, class int, index uint64) (engine.Time, ShootdownResult) {
	lat, res := s.VTEWrite(core, class, index)
	s.VTD.Forget(s.Table.VTEAddr(class, index))
	return lat, res
}

// FlushCore drops all VLB state of one core (OS context switch: uatp et
// al. are swapped, cached user translations must go).
func (s *Subsystem) FlushCore(core topo.CoreID) {
	c := s.Cores[core]
	c.IVLB.InvalidateAll()
	c.DVLB.InvalidateAll()
}
