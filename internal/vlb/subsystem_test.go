package vlb

import (
	"testing"

	"jord/internal/mem/va"
	"jord/internal/mem/vmatable"
	"jord/internal/sim/memmodel"
	"jord/internal/sim/topo"
)

func newSubsystem(t *testing.T) *Subsystem {
	t.Helper()
	m := topo.MustMachine(topo.QFlex32())
	mm := memmodel.New(m)
	tbl, err := vmatable.New(va.Default(), 0x4000_0000_0000, vmatable.DefaultTableBytes)
	if err != nil {
		t.Fatal(err)
	}
	return NewSubsystem(m, mm, tbl, DefaultConfig())
}

// install maps a VMA into the table and grants pd permission.
func install(t *testing.T, s *Subsystem, class int, index uint64, pd vmatable.PDID, perm vmatable.Perm) uint64 {
	t.Helper()
	vte := &vmatable.VTE{Bound: s.Table.Enc.ClassSize(class), Offs: 0x100000}
	vte.SetPerm(pd, perm)
	if err := s.Table.Insert(class, index, vte); err != nil {
		t.Fatal(err)
	}
	return s.Table.Enc.Encode(class, index)
}

func TestAccessHitIsFree(t *testing.T) {
	s := newSubsystem(t)
	addr := install(t, s, 0, 1, 5, vmatable.PermRW)

	lat1, fault := s.Access(3, 5, addr, vmatable.PermR, false, false)
	if fault != vmatable.FaultNone {
		t.Fatalf("first access fault: %v", fault)
	}
	if lat1 == 0 {
		t.Fatal("VLB miss should cost a walk")
	}
	lat2, fault := s.Access(3, 5, addr, vmatable.PermR, false, false)
	if fault != vmatable.FaultNone || lat2 != 0 {
		t.Fatalf("VLB hit: lat=%d fault=%v, want 0,none", lat2, fault)
	}
}

func TestWalkCommonCaseMatchesPaper(t *testing.T) {
	s := newSubsystem(t)
	install(t, s, 0, 1, 5, vmatable.PermRW)
	// Warm the L1 with the VTE line (e.g., PrivLib just wrote it).
	s.Cores[3].l1Touch(s.Table.VTEAddr(0, 1))
	lat, vte := s.Walk(3, 0, 1, false)
	if vte == nil {
		t.Fatal("walk missed an installed VMA")
	}
	// §6.2: VMA lookup (the walk) is 2 ns = 8 cycles at 4 GHz when the
	// traversal hits the L1D.
	if got := s.M.Cfg.CyclesToNS(lat); got < 1 || got > 3 {
		t.Fatalf("L1-hit walk = %.1f ns, want ~2 ns", got)
	}
}

func TestAccessPermissionChecks(t *testing.T) {
	s := newSubsystem(t)
	addr := install(t, s, 0, 1, 5, vmatable.PermR)

	if _, fault := s.Access(0, 5, addr, vmatable.PermW, false, false); fault != vmatable.FaultPermission {
		t.Fatalf("write with r-- perm: fault=%v, want permission", fault)
	}
	// A different PD has no grant at all.
	if _, fault := s.Access(0, 9, addr, vmatable.PermR, false, false); fault != vmatable.FaultPermission {
		t.Fatalf("foreign PD: fault=%v, want permission", fault)
	}
	// Unmapped index.
	if _, fault := s.Access(0, 5, s.Table.Enc.Encode(0, 2), vmatable.PermR, false, false); fault != vmatable.FaultUnmapped {
		t.Fatalf("unmapped: fault=%v, want unmapped", fault)
	}
	// Address outside the Jord region entirely.
	if _, fault := s.Access(0, 5, 0x1234, vmatable.PermR, false, false); fault != vmatable.FaultUnmapped {
		t.Fatalf("foreign addr: fault=%v, want unmapped", fault)
	}
}

func TestPrivilegedVMAProtection(t *testing.T) {
	s := newSubsystem(t)
	// A privileged VMA (e.g., the VMA table itself or PrivLib's heap).
	vte := &vmatable.VTE{Bound: 4096, Priv: true, Global: true, GlobalPerm: vmatable.PermRW}
	if err := s.Table.Insert(5, 1, vte); err != nil {
		t.Fatal(err)
	}
	addr := s.Table.Enc.Encode(5, 1)
	// Untrusted code (P bit clear) faults even though permissions allow.
	if _, fault := s.Access(0, 5, addr, vmatable.PermR, false, false); fault != vmatable.FaultPrivilege {
		t.Fatalf("unprivileged access: fault=%v, want privilege", fault)
	}
	// PrivLib (P bit set) proceeds.
	if _, fault := s.Access(0, 5, addr, vmatable.PermR, false, true); fault != vmatable.FaultNone {
		t.Fatalf("privileged access: fault=%v, want none", fault)
	}
}

func TestBoundCheckInsideChunk(t *testing.T) {
	s := newSubsystem(t)
	vte := &vmatable.VTE{Bound: 100} // 128B chunk, 100B VMA
	vte.SetPerm(5, vmatable.PermRW)
	if err := s.Table.Insert(0, 1, vte); err != nil {
		t.Fatal(err)
	}
	base := s.Table.Enc.Encode(0, 1)
	if _, fault := s.Access(0, 5, base+99, vmatable.PermR, false, false); fault != vmatable.FaultNone {
		t.Fatal("in-bound access faulted")
	}
	if _, fault := s.Access(0, 5, base+100, vmatable.PermR, false, false); fault != vmatable.FaultUnmapped {
		t.Fatal("out-of-bound access within chunk did not fault")
	}
}

func TestShootdownInvalidatesRemoteVLBs(t *testing.T) {
	s := newSubsystem(t)
	addr := install(t, s, 0, 1, 5, vmatable.PermRW)

	// Cores 1, 2, 31 cache the translation.
	for _, c := range []topo.CoreID{1, 2, 31} {
		if _, fault := s.Access(c, 5, addr, vmatable.PermR, false, false); fault != vmatable.FaultNone {
			t.Fatal(fault)
		}
	}
	lat, res := s.VTEWrite(0, 0, 1)
	if res.Sharers != 3 {
		t.Fatalf("shootdown hit %d sharers, want 3", res.Sharers)
	}
	if lat <= s.MM.L1Hit() {
		t.Fatal("remote shootdown should cost more than a local store")
	}
	// All remote VLBs must have dropped the entry: next access walks.
	for _, c := range []topo.CoreID{1, 2, 31} {
		misses := s.Cores[c].DVLB.Misses
		if _, fault := s.Access(c, 5, addr, vmatable.PermR, false, false); fault != vmatable.FaultNone {
			t.Fatal(fault)
		}
		if s.Cores[c].DVLB.Misses != misses+1 {
			t.Fatalf("core %d VLB not invalidated", c)
		}
	}
}

func TestLocalShootdownIsCheap(t *testing.T) {
	s := newSubsystem(t)
	install(t, s, 0, 1, 5, vmatable.PermRW)
	// Writer is the only toucher: write hits its own L1, no traffic.
	s.VTEWrite(4, 0, 1) // first write claims ownership
	lat, res := s.VTEWrite(4, 0, 1)
	if !res.Local {
		t.Fatal("second write by same core should be a local invalidation")
	}
	if lat != s.MM.L1Hit() {
		t.Fatalf("local shootdown = %d cycles, want L1 cost %d", lat, s.MM.L1Hit())
	}
}

func TestShootdownLatencyGatedByFarthestSharer(t *testing.T) {
	m := topo.MustMachine(topo.QFlex32())
	mm := memmodel.New(m)
	tbl, _ := vmatable.New(va.Default(), 0x4000_0000_0000, vmatable.DefaultTableBytes)
	mk := func(sharers []topo.CoreID) (lat, mlat int64) {
		s := NewSubsystem(m, mm, tbl, DefaultConfig())
		vteAddr := tbl.VTEAddr(0, 1)
		for _, c := range sharers {
			s.VTD.RegisterSharer(vteAddr, c)
		}
		res := s.VTD.Shootdown(0, vteAddr, func(topo.CoreID) {})
		return int64(res.Latency), 0
	}
	near, _ := mk([]topo.CoreID{1})
	far, _ := mk([]topo.CoreID{31})
	both, _ := mk([]topo.CoreID{1, 31})
	if !(near < far) {
		t.Fatalf("near=%d far=%d", near, far)
	}
	if both != far {
		t.Fatalf("parallel fanout: both=%d, want farthest-only %d", both, far)
	}
}

func TestVTEDeleteForgetsSharers(t *testing.T) {
	s := newSubsystem(t)
	addr := install(t, s, 0, 1, 5, vmatable.PermRW)
	s.Access(7, 5, addr, vmatable.PermR, false, false)
	s.VTEDelete(0, 0, 1)
	if got := s.VTD.Sharers(s.Table.VTEAddr(0, 1), -1); len(got) != 0 {
		t.Fatalf("sharers after delete = %v, want none", got)
	}
}

func TestFlushCore(t *testing.T) {
	s := newSubsystem(t)
	addr := install(t, s, 0, 1, 5, vmatable.PermRW)
	s.Access(2, 5, addr, vmatable.PermR, false, false)
	s.FlushCore(2)
	if s.Cores[2].DVLB.Len() != 0 {
		t.Fatal("flush left VLB entries")
	}
}

func TestIVLBAndDVLBSeparate(t *testing.T) {
	s := newSubsystem(t)
	// Executable VMA fetched as instruction; data VMA loaded as data.
	code := install(t, s, 0, 1, 5, vmatable.PermRX)
	data := install(t, s, 0, 2, 5, vmatable.PermRW)
	s.Access(0, 5, code, vmatable.PermX, true, false)
	s.Access(0, 5, data, vmatable.PermR, false, false)
	c := s.Cores[0]
	if c.IVLB.Len() != 1 || c.DVLB.Len() != 1 {
		t.Fatalf("IVLB=%d DVLB=%d, want 1,1", c.IVLB.Len(), c.DVLB.Len())
	}
}

func TestVLBThrashingWithOneEntry(t *testing.T) {
	m := topo.MustMachine(topo.QFlex32())
	mm := memmodel.New(m)
	tbl, _ := vmatable.New(va.Default(), 0x4000_0000_0000, vmatable.DefaultTableBytes)
	s := NewSubsystem(m, mm, tbl, Config{IVLBEntries: 1, DVLBEntries: 1})
	a1 := install(t, s, 0, 1, 5, vmatable.PermRW)
	a2 := install(t, s, 0, 2, 5, vmatable.PermRW)
	// Alternate: every access misses after the first pair.
	start := s.WalkCount
	for i := 0; i < 10; i++ {
		s.Access(0, 5, a1, vmatable.PermR, false, false)
		s.Access(0, 5, a2, vmatable.PermR, false, false)
	}
	walks := s.WalkCount - start
	if walks != 20 {
		t.Fatalf("1-entry D-VLB alternating walks = %d, want 20 (full thrash)", walks)
	}
}
