package pagetable

import (
	"testing"
	"testing/quick"

	"jord/internal/mem/vmatable"
	"jord/internal/sim/topo"
)

func TestMapWalkUnmap(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1000, 0x8000, vmatable.PermRW); err != nil {
		t.Fatal(err)
	}
	pa, perm, levels, ok := pt.Walk(0x1234)
	if !ok || pa != 0x8234 || perm != vmatable.PermRW || levels != 4 {
		t.Fatalf("walk: pa=%#x perm=%v levels=%d ok=%v", pa, perm, levels, ok)
	}
	if _, _, _, ok := pt.Walk(0x2000); ok {
		t.Fatal("walk of unmapped page succeeded")
	}
	if !pt.Unmap(0x1000) {
		t.Fatal("unmap failed")
	}
	if _, _, _, ok := pt.Walk(0x1000); ok {
		t.Fatal("walk after unmap succeeded")
	}
	if pt.Unmap(0x1000) {
		t.Fatal("double unmap succeeded")
	}
}

func TestMapValidation(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1001, 0, vmatable.PermR); err == nil {
		t.Error("unaligned map accepted")
	}
	if err := pt.Map(1<<50, 0, vmatable.PermR); err == nil {
		t.Error("over-wide VA accepted")
	}
	if err := pt.Map(0x1000, 0, vmatable.PermR); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x1000, 0x100, vmatable.PermR); err == nil {
		t.Error("double map accepted")
	}
}

func TestProtect(t *testing.T) {
	pt := New()
	if err := pt.Map(0x4000, 0x0, vmatable.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := pt.Protect(0x4000, vmatable.PermR); err != nil {
		t.Fatal(err)
	}
	_, perm, _, _ := pt.Walk(0x4000)
	if perm != vmatable.PermR {
		t.Fatalf("perm = %v after protect, want r--", perm)
	}
	if err := pt.Protect(0x5000, vmatable.PermR); err == nil {
		t.Error("protect of unmapped page accepted")
	}
}

func TestQuickMapWalkRoundTrip(t *testing.T) {
	pt := New()
	f := func(vpn uint32, pframe uint32) bool {
		va := uint64(vpn) << PageShift
		pa := uint64(pframe) << PageShift
		if pt.lookup(va) != nil {
			return true // already mapped by a previous quick case
		}
		if err := pt.Map(va, pa, vmatable.PermRWX); err != nil {
			return false
		}
		got, _, _, ok := pt.Walk(va + 7)
		return ok && got == pa+7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0x1000, 0xa000, vmatable.PermR)
	tlb.Insert(0x2000, 0xb000, vmatable.PermR)
	// Touch 0x1000 so 0x2000 becomes LRU.
	if _, _, ok := tlb.Lookup(0x1000); !ok {
		t.Fatal("expected hit")
	}
	tlb.Insert(0x3000, 0xc000, vmatable.PermR)
	if _, _, ok := tlb.Lookup(0x2000); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, _, ok := tlb.Lookup(0x1000); !ok {
		t.Fatal("MRU entry evicted")
	}
	if tlb.Len() != 2 {
		t.Fatalf("len = %d, want 2", tlb.Len())
	}
}

func TestTLBTranslation(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(0x1000, 0xa000, vmatable.PermRW)
	pa, perm, ok := tlb.Lookup(0x1abc)
	if !ok || pa != 0xaabc || perm != vmatable.PermRW {
		t.Fatalf("lookup: pa=%#x perm=%v ok=%v", pa, perm, ok)
	}
	if tlb.Hits != 1 || tlb.Misses != 0 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
	tlb.Lookup(0x9000)
	if tlb.Misses != 1 {
		t.Fatalf("misses = %d, want 1", tlb.Misses)
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(0x1000, 0xa000, vmatable.PermR)
	tlb.Insert(0x2000, 0xb000, vmatable.PermR)
	tlb.InvalidatePage(0x1000)
	if _, _, ok := tlb.Lookup(0x1000); ok {
		t.Fatal("invalidated page still cached")
	}
	tlb.InvalidatePage(0x7000) // no-op
	tlb.InvalidateAll()
	if tlb.Len() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestOSCostsScaleWithCores(t *testing.T) {
	o := OSCosts{Cfg: topo.QFlex32()}
	local := o.ShootdownCycles(1)
	small := o.ShootdownCycles(4)
	big := o.ShootdownCycles(32)
	if !(local < small && small < big) {
		t.Fatalf("shootdown not monotonic: %d %d %d", local, small, big)
	}
	// The paper's motivating gap: OS mprotect must be orders of magnitude
	// slower than Jord's nanosecond-scale VMA ops (>= 1 us here).
	if o.MprotectCycles(1, 32) < o.Cfg.NSToCycles(1000) {
		t.Fatalf("mprotect = %d cycles, expected microsecond scale", o.MprotectCycles(1, 32))
	}
	if o.MmapCycles(1) <= o.SyscallCycles() {
		t.Fatal("mmap should cost more than a bare syscall")
	}
}
