// Package pagetable models the conventional page-based virtual memory
// that Jord extends rather than replaces (paper §2.2, §4.1): a 4-level
// radix page table (Sv48-style), a per-core TLB, and the IPI-based TLB
// shootdown whose cost motivates Jord's hardware VLB coherence. The
// baseline FaaS systems pay these costs for every memory map/protect;
// Jord pays them only on the OS path (uat_config refills).
package pagetable

import (
	"fmt"

	"jord/internal/mem/vmatable"
	"jord/internal/sim/engine"
	"jord/internal/sim/topo"
)

// Page geometry (Sv48: 4 KB pages, 9 bits per level, 4 levels).
const (
	PageShift  = 12
	PageSize   = 1 << PageShift
	levelBits  = 9
	Levels     = 4
	vaBitsUsed = PageShift + Levels*levelBits // 48
)

// Perm reuses the VMA permission type.
type Perm = vmatable.Perm

type ptNode struct {
	children [1 << levelBits]*ptNode // non-leaf levels
	ptes     []pte                   // leaf level only
}

type pte struct {
	valid bool
	pa    uint64
	perm  Perm
}

// Table is a 4-level radix page table.
type Table struct {
	root *ptNode
	live int
}

// New returns an empty page table.
func New() *Table { return &Table{root: &ptNode{}} }

// Live returns the number of mapped pages.
func (t *Table) Live() int { return t.live }

func index(va uint64, level int) int {
	shift := PageShift + (Levels-1-level)*levelBits
	return int(va >> uint(shift) & (1<<levelBits - 1))
}

func checkAligned(va uint64) error {
	if va%PageSize != 0 {
		return fmt.Errorf("pagetable: unaligned address %#x", va)
	}
	if va>>vaBitsUsed != 0 {
		return fmt.Errorf("pagetable: address %#x exceeds %d-bit VA", va, vaBitsUsed)
	}
	return nil
}

// Map installs a translation for one page. Remapping a live page is an
// error (unmap first, as mmap(MAP_FIXED) semantics are not modelled).
func (t *Table) Map(va, pa uint64, perm Perm) error {
	if err := checkAligned(va); err != nil {
		return err
	}
	n := t.root
	for level := 0; level < Levels-1; level++ {
		i := index(va, level)
		if n.children[i] == nil {
			n.children[i] = &ptNode{}
			if level == Levels-2 {
				n.children[i].ptes = make([]pte, 1<<levelBits)
			}
		}
		n = n.children[i]
	}
	e := &n.ptes[index(va, Levels-1)]
	if e.valid {
		return fmt.Errorf("pagetable: page %#x already mapped", va)
	}
	*e = pte{valid: true, pa: pa, perm: perm}
	t.live++
	return nil
}

// Protect changes the permission of a mapped page.
func (t *Table) Protect(va uint64, perm Perm) error {
	e := t.lookup(va)
	if e == nil {
		return fmt.Errorf("pagetable: protect of unmapped page %#x", va)
	}
	e.perm = perm
	return nil
}

// Unmap removes a page mapping, reporting whether it existed.
func (t *Table) Unmap(va uint64) bool {
	e := t.lookup(va)
	if e == nil {
		return false
	}
	*e = pte{}
	t.live--
	return true
}

func (t *Table) lookup(va uint64) *pte {
	if checkAligned(va&^uint64(PageSize-1)) != nil {
		return nil
	}
	n := t.root
	for level := 0; level < Levels-1; level++ {
		n = n.children[index(va, level)]
		if n == nil {
			return nil
		}
	}
	e := &n.ptes[index(va, Levels-1)]
	if !e.valid {
		return nil
	}
	return e
}

// Walk translates va, returning the physical address, page permission, and
// the number of page-table levels touched (always Levels on success — the
// cost of a full walk).
func (t *Table) Walk(va uint64) (pa uint64, perm Perm, levels int, ok bool) {
	page := va &^ uint64(PageSize-1)
	e := t.lookup(page)
	if e == nil {
		return 0, 0, Levels, false
	}
	return e.pa + va%PageSize, e.perm, Levels, true
}

// --- TLB ---

// TLB is a fully-associative, LRU translation lookaside buffer keyed by
// virtual page number.
type TLB struct {
	capacity int
	order    []uint64 // LRU order, most recent last
	entries  map[uint64]tlbEntry

	Hits   uint64
	Misses uint64
}

type tlbEntry struct {
	pa   uint64
	perm Perm
}

// NewTLB returns a TLB with the given entry count.
func NewTLB(capacity int) *TLB {
	if capacity < 1 {
		capacity = 1
	}
	return &TLB{capacity: capacity, entries: make(map[uint64]tlbEntry)}
}

// Lookup translates va if cached.
func (t *TLB) Lookup(va uint64) (pa uint64, perm Perm, ok bool) {
	vpn := va >> PageShift
	e, ok := t.entries[vpn]
	if !ok {
		t.Misses++
		return 0, 0, false
	}
	t.Hits++
	t.touch(vpn)
	return e.pa + va%PageSize, e.perm, true
}

// Insert caches a translation, evicting the LRU entry if full.
func (t *TLB) Insert(va, paPage uint64, perm Perm) {
	vpn := va >> PageShift
	if _, exists := t.entries[vpn]; !exists && len(t.entries) >= t.capacity {
		victim := t.order[0]
		t.order = t.order[1:]
		delete(t.entries, victim)
	}
	t.entries[vpn] = tlbEntry{pa: paPage, perm: perm}
	t.touch(vpn)
}

func (t *TLB) touch(vpn uint64) {
	for i, v := range t.order {
		if v == vpn {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	t.order = append(t.order, vpn)
}

// InvalidatePage drops one translation.
func (t *TLB) InvalidatePage(va uint64) {
	vpn := va >> PageShift
	if _, ok := t.entries[vpn]; !ok {
		return
	}
	delete(t.entries, vpn)
	for i, v := range t.order {
		if v == vpn {
			t.order = append(t.order[:i], t.order[i+1:]...)
			return
		}
	}
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	t.entries = make(map[uint64]tlbEntry)
	t.order = t.order[:0]
}

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }

// --- OS cost model ---

// OSCosts models the latency of OS-mediated memory management: what the
// baseline pays per mmap/mprotect/munmap and what Jord pays only on its
// uat_config refill path. Constants follow the ranges the paper cites
// ([7,8,47,71,90]: tens to thousands of microseconds for permission
// switches including shootdowns).
type OSCosts struct {
	Cfg topo.Config
}

// SyscallCycles is the user->kernel->user round trip (~0.5 us on modern
// mitigated kernels).
func (o OSCosts) SyscallCycles() engine.Time { return o.Cfg.NSToCycles(500) }

// WalkCycles is the cost of one software page-table walk plus PTE update.
func (o OSCosts) WalkCycles(levels int) engine.Time {
	// Each level is roughly an LLC-latency pointer chase plus updates.
	return engine.Time(levels) * (o.Cfg.LLCCycles + o.Cfg.NSToCycles(20))
}

// ShootdownCycles is the IPI-based TLB shootdown across nCores responders:
// IPI dispatch, per-core interrupt handling (~1 us), and ack collection;
// responders run in parallel but the initiator pays dispatch serially.
func (o OSCosts) ShootdownCycles(nCores int) engine.Time {
	if nCores <= 1 {
		return o.Cfg.NSToCycles(200) // local invalidation only
	}
	dispatch := engine.Time(nCores-1) * o.Cfg.NSToCycles(120) // APIC writes
	remote := o.Cfg.NSToCycles(1000)                          // interrupt + handler + ack
	return dispatch + remote
}

// MmapCycles is a complete OS mmap of n pages including shootdown-free
// installation (first touch faults folded in).
func (o OSCosts) MmapCycles(pages int) engine.Time {
	return o.SyscallCycles() + engine.Time(pages)*o.WalkCycles(Levels)
}

// MprotectCycles is a permission change over n pages on a process with
// nCores concurrently running threads: syscall, per-page PTE updates, one
// shootdown.
func (o OSCosts) MprotectCycles(pages, nCores int) engine.Time {
	return o.SyscallCycles() + engine.Time(pages)*o.WalkCycles(Levels) + o.ShootdownCycles(nCores)
}
