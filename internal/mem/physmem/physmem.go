// Package physmem models the physical memory that the OS reserves for
// Jord (paper §4.1, §4.4): pinned, non-swappable chunks handed to PrivLib
// through the uat_config syscall, carved into per-size-class free lists.
// Each VMA of size class S is backed by one contiguous chunk of at least
// S bytes; VMAs smaller than a page share non-overlapping portions of a
// single physical page.
package physmem

import (
	"fmt"

	"jord/internal/mem/va"
)

// RefillFunc requests more reserved physical memory from the OS (the
// uat_config model). It returns the base of a newly reserved contiguous
// region of the requested size, or ok=false when the OS is out of memory
// for Jord.
type RefillFunc func(bytes uint64) (base uint64, ok bool)

// Allocator hands out physical chunks per size class.
type Allocator struct {
	enc    va.Encoding
	free   [][]uint64 // per-class LIFO free lists of chunk base PAs
	refill RefillFunc

	// Bump region currently being carved.
	cur, curEnd uint64

	// RefillBytes is the granularity of uat_config requests.
	RefillBytes uint64

	// Statistics.
	Allocs, Frees, Refills uint64
	ReservedBytes          uint64
	inUse                  map[uint64]int // chunk base -> class, for double-free checks
}

// DefaultRefillBytes is the per-uat_config reservation granularity (2 MB,
// a huge page).
const DefaultRefillBytes = 2 << 20

// New creates an allocator over the encoding's size classes. refill may be
// nil, in which case a monotonically growing fake physical space is used
// (an OS with unbounded reserved memory).
func New(enc va.Encoding, refill RefillFunc) *Allocator {
	a := &Allocator{
		enc:         enc,
		free:        make([][]uint64, enc.NumClasses()),
		refill:      refill,
		RefillBytes: DefaultRefillBytes,
		inUse:       make(map[uint64]int),
	}
	if a.refill == nil {
		next := uint64(0x1_0000_0000) // fake PA space starts at 4 GB
		a.refill = func(bytes uint64) (uint64, bool) {
			base := next
			next += bytes
			return base, true
		}
	}
	return a
}

// Alloc pops a chunk for size class c. refilled reports whether the OS had
// to be asked for more memory (the slow uat_config path the caller charges
// for).
func (a *Allocator) Alloc(c int) (pa uint64, refilled bool, err error) {
	if c < 0 || c >= len(a.free) {
		return 0, false, fmt.Errorf("physmem: class %d out of range", c)
	}
	if fl := a.free[c]; len(fl) > 0 {
		pa = fl[len(fl)-1]
		a.free[c] = fl[:len(fl)-1]
		a.Allocs++
		a.inUse[pa] = c
		return pa, false, nil
	}
	size := a.enc.ClassSize(c)
	// Natural alignment: round the bump pointer up to the class size.
	if aligned := (a.cur + size - 1) &^ (size - 1); aligned <= a.curEnd {
		a.cur = aligned
	} else {
		a.cur = a.curEnd
	}
	if a.curEnd-a.cur < size {
		want := a.RefillBytes
		if size > want {
			want = size
		}
		base, ok := a.refill(want)
		if !ok {
			return 0, true, fmt.Errorf("physmem: OS refused reservation of %d bytes", want)
		}
		// Align the bump pointer to the class size so chunks are naturally
		// aligned (sub-page chunks pack within pages; larger chunks start
		// on their own boundary).
		a.cur = (base + size - 1) &^ (size - 1)
		a.curEnd = base + want
		a.ReservedBytes += want
		a.Refills++
		refilled = true
	}
	pa = a.cur
	a.cur += size
	a.Allocs++
	a.inUse[pa] = c
	return pa, refilled, nil
}

// Free returns a chunk to its class free list.
func (a *Allocator) Free(c int, pa uint64) error {
	got, ok := a.inUse[pa]
	if !ok {
		return fmt.Errorf("physmem: free of unallocated chunk %#x", pa)
	}
	if got != c {
		return fmt.Errorf("physmem: chunk %#x belongs to class %d, freed as %d", pa, got, c)
	}
	delete(a.inUse, pa)
	a.free[c] = append(a.free[c], pa)
	a.Frees++
	return nil
}

// FreeChunks returns the number of chunks on class c's free list.
func (a *Allocator) FreeChunks(c int) int { return len(a.free[c]) }

// InUse returns the number of live chunks.
func (a *Allocator) InUse() int { return len(a.inUse) }
